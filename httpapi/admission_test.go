package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	keysearch "repro"
	"repro/internal/metrics"
)

// getHealth fetches and decodes /healthz.
func getHealth(t *testing.T, client *http.Client, base string) HealthResponse {
	t.Helper()
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// searchBody is a valid /v1/search request against the demo dataset.
func searchBody(t *testing.T, eng *keysearch.Engine) string {
	t.Helper()
	qs := eng.SampleQueries(1)
	if len(qs) == 0 {
		t.Fatal("no sample queries")
	}
	return fmt.Sprintf(`{"query":%q,"k":3}`, qs[0])
}

// TestAdmissionGateBoundsConcurrency drives far more clients than the
// gate admits and asserts the two core invariants from the counters:
// handler concurrency never exceeded MaxConcurrent, and the wait queue
// never grew past MaxQueue (no unbounded queue growth).
func TestAdmissionGateBoundsConcurrency(t *testing.T) {
	eng := demoEngine(t)
	srv := New(eng, WithAdmission(AdmissionConfig{
		MaxConcurrent: 2,
		MaxQueue:      3,
		QueueTimeout:  2 * time.Second,
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := searchBody(t, eng)
	var wg sync.WaitGroup
	var ok2xx, shed atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok2xx.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()

	h := getHealth(t, ts.Client(), ts.URL).Admission
	if h.MaxInFlight > 2 {
		t.Fatalf("max in-flight %d exceeded MaxConcurrent 2", h.MaxInFlight)
	}
	if h.MaxQueued > 3 {
		t.Fatalf("max queued %d exceeded MaxQueue 3", h.MaxQueued)
	}
	if ok2xx.Load() == 0 {
		t.Fatal("no request succeeded under the gate")
	}
	if got := h.ShedQueueFull + h.ShedQueueTimeout; got != shed.Load() {
		t.Fatalf("shed counters %d != shed responses %d", got, shed.Load())
	}
	if h.Served != ok2xx.Load() {
		t.Fatalf("served %d != 2xx responses %d", h.Served, ok2xx.Load())
	}
}

// TestAdmissionQueueFairness holds every execution slot, lines up
// waiters, then releases the slots: every queued request must complete
// (no waiter starves), and the queue must drain in arrival order — the
// FIFO guarantee of the gate's channel semaphore.
func TestAdmissionQueueFairness(t *testing.T) {
	stats := &metrics.ServingStats{}
	g := newGate(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second}.withDefaults(), stats)

	// Occupy the single slot.
	rec := httptest.NewRecorder()
	release, ok := g.admit(rec, httptest.NewRequest("POST", "/v1/search", nil))
	if !ok {
		t.Fatal("first admit failed")
	}

	const waiters = 8
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stagger arrival so queue order is deterministic.
			for {
				if g.stats.Snapshot().Queued == int64(i) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			started <- struct{}{}
			rel, ok := g.admit(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/search", nil))
			if !ok {
				t.Errorf("waiter %d shed", i)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}()
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	release() // open the floodgate; waiters should drain FIFO
	wg.Wait()

	if len(order) != waiters {
		t.Fatalf("only %d of %d waiters completed", len(order), waiters)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("queue drained out of arrival order: %v", order)
		}
	}
}

// TestAdmissionQueueTimeout pins the 503 shed path: with the only slot
// held and a tiny queue timeout, a queued request is rejected with 503,
// a Retry-After header, and a structured body.
func TestAdmissionQueueTimeout(t *testing.T) {
	stats := &metrics.ServingStats{}
	g := newGate(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 30 * time.Millisecond, RetryAfter: 2 * time.Second}.withDefaults(), stats)

	release, ok := g.admit(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/search", nil))
	if !ok {
		t.Fatal("first admit failed")
	}
	defer release()

	rec := httptest.NewRecorder()
	if _, ok := g.admit(rec, httptest.NewRequest("POST", "/v1/search", nil)); ok {
		t.Fatal("queued request admitted despite held slot")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var body ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "queue_timeout" || body.RetryAfterSeconds != 2 || body.Error == "" {
		t.Fatalf("body = %+v", body)
	}
	if s := stats.Snapshot(); s.ShedQueueTimeout != 1 || s.Queued != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestAdmissionQueueFull pins the 429 shed path: slot and queue both at
// capacity, the next arrival is rejected instantly.
func TestAdmissionQueueFull(t *testing.T) {
	stats := &metrics.ServingStats{}
	g := newGate(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Second}.withDefaults(), stats)

	release, ok := g.admit(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/search", nil))
	if !ok {
		t.Fatal("first admit failed")
	}
	defer release()

	// Fill the one queue slot with a goroutine that will wait.
	queued := make(chan struct{})
	go func() {
		close(queued)
		rel, ok := g.admit(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/search", nil))
		if ok {
			rel()
		}
	}()
	<-queued
	for stats.Snapshot().Queued == 0 {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	if _, ok := g.admit(rec, httptest.NewRequest("POST", "/v1/search", nil)); ok {
		t.Fatal("admitted past a full queue")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	var body ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "queue_full" || body.RetryAfterSeconds < 1 {
		t.Fatalf("body = %+v", body)
	}
	if stats.Snapshot().ShedQueueFull != 1 {
		t.Fatalf("stats = %+v", stats.Snapshot())
	}
	release()
}

// TestRequestTimeoutMapsTo504 pins the default-deadline path end to
// end: a request timeout far below the engine's work cost must surface
// as 504 with the deadline_exceeded code, and be counted in /healthz.
func TestRequestTimeoutMapsTo504(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng, WithRequestTimeout(time.Nanosecond)))
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(searchBody(t, eng)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "deadline_exceeded" {
		t.Fatalf("code = %q, want deadline_exceeded", body.Code)
	}
	h := getHealth(t, ts.Client(), ts.URL)
	if h.Admission.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded_total = %d, want 1", h.Admission.DeadlineExceeded)
	}
	if h.Limits.RequestTimeoutMS != 0 { // 1ns rounds down to 0ms — config still surfaced
		t.Fatalf("limits.request_timeout_ms = %d", h.Limits.RequestTimeoutMS)
	}
}

// TestClientDeadlineMapsTo504 covers the other deadline source: the
// client's own context expiring mid-request must produce the same
// mapping as the server-side default deadline.
func TestClientDeadlineMapsTo504(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/search",
		strings.NewReader(searchBody(t, eng)))
	if err != nil {
		t.Fatal(err)
	}
	// The transport cancels the request; either way, the engine never
	// returns a torn 200.
	resp, err := ts.Client().Do(req)
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("expired client context produced a 200")
		}
	}
}

// TestSaturationSmoke is the acceptance smoke test of the overload
// path: a concurrency-limited server under sustained oversubscription
// must keep shedding (bounded queue), keep serving /healthz promptly,
// and keep the latency of *accepted* requests bounded by the queue
// timeout plus the request timeout — no collapse, no unbounded growth.
func TestSaturationSmoke(t *testing.T) {
	eng := demoEngine(t)
	const (
		maxConcurrent = 2
		maxQueue      = 4
		queueTimeout  = 100 * time.Millisecond
		reqTimeout    = 500 * time.Millisecond
	)
	// The demo engine answers in microseconds — far faster than clients
	// can pile up — so stand in a context-aware 20ms delay for the
	// expensive engine work a production dataset exhibits.
	srv := New(eng,
		WithAdmission(AdmissionConfig{
			MaxConcurrent: maxConcurrent,
			MaxQueue:      maxQueue,
			QueueTimeout:  queueTimeout,
		}),
		WithRequestTimeout(reqTimeout),
		WithHandlerWrapper(func(inner http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				select {
				case <-time.After(20 * time.Millisecond):
				case <-r.Context().Done():
					writeError(w, statusFor(r.Context().Err()), r.Context().Err())
					return
				}
				inner.ServeHTTP(w, r)
			})
		}),
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := searchBody(t, eng)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var worst atomic.Int64 // slowest accepted (2xx) request, ns
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
				if err != nil {
					continue
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					el := time.Since(start).Nanoseconds()
					for {
						cur := worst.Load()
						if el <= cur || worst.CompareAndSwap(cur, el) {
							break
						}
					}
				}
			}
		}()
	}

	// While saturated, /healthz must answer fast and report a bounded
	// queue.
	deadline := time.Now().Add(time.Second)
	probes := 0
	for time.Now().Before(deadline) {
		pstart := time.Now()
		h := getHealth(t, ts.Client(), ts.URL)
		if el := time.Since(pstart); el > reqTimeout {
			t.Errorf("/healthz took %v while saturated", el)
		}
		if h.Admission.Queued > maxQueue || h.Admission.MaxQueued > maxQueue {
			t.Errorf("queue grew past its bound: %+v", h.Admission)
		}
		probes++
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	h := getHealth(t, ts.Client(), ts.URL).Admission
	if h.ShedQueueFull+h.ShedQueueTimeout == 0 {
		t.Fatal("oversubscribed run shed nothing")
	}
	if h.Served == 0 {
		t.Fatal("oversubscribed run served nothing")
	}
	if probes < 10 {
		t.Fatalf("only %d healthz probes completed in 1s", probes)
	}
	// Accepted-request latency stays bounded: queue wait ≤ queueTimeout,
	// execution ≤ reqTimeout, plus generous scheduling slack.
	if bound := (queueTimeout + reqTimeout + 2*time.Second).Nanoseconds(); worst.Load() > bound {
		t.Fatalf("accepted request took %v, bound %v", time.Duration(worst.Load()), time.Duration(bound))
	}
}
