package httpapi

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// AdmissionConfig bounds the work a Server accepts — the overload
// protection of the serving path. A request to a /v1/ endpoint first
// passes the admission gate: up to MaxConcurrent requests execute at
// once; up to MaxQueue more wait in arrival order for a slot; anything
// beyond that is shed immediately with 429. A queued request that waits
// longer than QueueTimeout is shed with 503. Both shed responses carry
// a Retry-After header and a structured JSON body, so well-behaved
// clients back off instead of hammering a saturated server.
//
// The zero value disables the gate (MaxConcurrent <= 0 = unlimited).
// GET /healthz deliberately bypasses admission: it is the endpoint
// operators and load balancers use to observe an overloaded server, so
// it must stay responsive exactly when the gate is busiest.
type AdmissionConfig struct {
	// MaxConcurrent caps requests executing inside handlers (<= 0 =
	// unlimited, gate disabled).
	MaxConcurrent int
	// MaxQueue caps requests waiting for an execution slot (< 0 = 0:
	// shed as soon as MaxConcurrent is reached).
	MaxQueue int
	// QueueTimeout is the longest a request may wait in the queue
	// before being shed (<= 0 selects the default 1s).
	QueueTimeout time.Duration
	// RetryAfter is the back-off hint returned on shed responses
	// (<= 0 selects the default 1s).
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// WithAdmission enables the admission gate on the /v1/ endpoints.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) {
		if cfg.MaxConcurrent > 0 {
			s.admission = cfg.withDefaults()
			s.gate = newGate(s.admission, s.stats)
		}
	}
}

// WithRequestTimeout sets a default per-request deadline on every /v1/
// endpoint: the request context is given the deadline on admission, it
// propagates through the engine's context-first API (candidate
// generation, ranking, plan execution all observe it), and an expired
// request returns 504 with a structured deadline_exceeded body instead
// of holding its concurrency slot indefinitely. Clients that disconnect
// early still cancel sooner; d <= 0 (the default) sets no deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.reqTimeout = d
		}
	}
}

// gate is the runtime of one admission configuration: a slot semaphore
// whose blocked senders form the (FIFO) wait line, and a queue-capacity
// semaphore that bounds how long that line may grow.
type gate struct {
	cfg   AdmissionConfig
	slots chan struct{} // cap MaxConcurrent; holding a token = executing
	queue chan struct{} // cap MaxQueue; holding a token = waiting in line
	stats *metrics.ServingStats
}

func newGate(cfg AdmissionConfig, stats *metrics.ServingStats) *gate {
	return &gate{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxConcurrent),
		queue: make(chan struct{}, cfg.MaxQueue),
		stats: stats,
	}
}

// admit blocks until the request may execute, or sheds it. On success
// the caller must invoke the returned release exactly once. On shedding
// (ok = false) the 429/503 response has already been written.
func (g *gate) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	// Fast path: a free execution slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	default:
	}
	// Reserve a place in the wait line; a full line sheds instantly.
	select {
	case g.queue <- struct{}{}:
	default:
		g.stats.ShedQueueFull()
		writeShed(w, http.StatusTooManyRequests, "queue_full",
			"server is at capacity and its wait queue is full", g.cfg.RetryAfter)
		return nil, false
	}
	g.stats.StartQueued()
	timer := time.NewTimer(g.cfg.QueueTimeout)
	defer timer.Stop()
	defer func() {
		g.stats.EndQueued()
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	case <-timer.C:
		g.stats.ShedQueueTimeout()
		writeShed(w, http.StatusServiceUnavailable, "queue_timeout",
			"server is overloaded; request timed out waiting for an execution slot", g.cfg.RetryAfter)
		return nil, false
	case <-r.Context().Done():
		writeError(w, 499, r.Context().Err())
		return nil, false
	}
}

// writeShed writes one structured overload rejection with its back-off
// hint (Retry-After is whole seconds per RFC 9110, rounded up so a
// sub-second hint never becomes "retry immediately").
func writeShed(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, ErrorResponse{
		Error:             msg,
		Code:              code,
		RetryAfterSeconds: secs,
	})
}

// statusRecorder captures the response status so the serving loop can
// count deadline-exceeded (504) completions without threading counters
// through every handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// serveAdmitted runs one /v1/ request through the overload-protection
// path: admission gate (when configured), in-flight accounting, and the
// default per-request deadline. The observation brackets the whole path
// — shed responses are counted and logged too, with the gate writing
// through the status recorder so the shed status is captured.
func (s *Server) serveAdmitted(w http.ResponseWriter, r *http.Request) {
	if s.agov != nil {
		s.serveAdaptive(w, r)
		return
	}
	ob, r := s.beginObserve(w, r)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	if s.gate != nil {
		waitStart := time.Now()
		release, ok := s.gate.admit(rec, r)
		if !ok {
			ob.finish(rec.status)
			return
		}
		ob.admissionWait(time.Since(waitStart))
		defer release()
	}
	if s.qlog != nil {
		ob.setCost(s.estimateCost(r))
	}
	s.stats.StartRequest()
	defer s.stats.EndRequest()
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.handler.ServeHTTP(rec, r)
	if rec.status == http.StatusGatewayTimeout {
		s.stats.DeadlineExceeded()
	}
	ob.finish(rec.status)
}
