package relstore

import (
	"encoding/gob"
	"fmt"
	"io"
)

// persistedTable is the on-disk representation of one table.
type persistedTable struct {
	Schema TableSchema
	Rows   [][]string
}

// persistedDatabase is the on-disk representation of a database.
type persistedDatabase struct {
	Name   string
	Tables []persistedTable
}

// Save serialises the database (schema and rows) to the writer using
// encoding/gob. Indexes are not persisted; they are rebuilt lazily after
// Load.
func (db *Database) Save(w io.Writer) error {
	pd := persistedDatabase{Name: db.Name}
	for _, t := range db.Tables() {
		pt := persistedTable{Schema: *t.Schema}
		for _, row := range t.Rows() {
			if !t.Live(row.RowID) {
				continue
			}
			vals := make([]string, len(row.Values))
			copy(vals, row.Values)
			pt.Rows = append(pt.Rows, vals)
		}
		pd.Tables = append(pd.Tables, pt)
	}
	if err := gob.NewEncoder(w).Encode(&pd); err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save, validating schemas
// and referential declarations.
func Load(r io.Reader) (*Database, error) {
	var pd persistedDatabase
	if err := gob.NewDecoder(r).Decode(&pd); err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	db := NewDatabase(pd.Name)
	for i := range pd.Tables {
		schema := pd.Tables[i].Schema
		t, err := db.CreateTable(&schema)
		if err != nil {
			return nil, fmt.Errorf("relstore: load: %w", err)
		}
		for _, vals := range pd.Tables[i].Rows {
			if _, err := t.Insert(vals...); err != nil {
				return nil, fmt.Errorf("relstore: load: %w", err)
			}
		}
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	return db, nil
}
