package relstore

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/durable"
)

// snapDB builds a small keyed database with churn so tombstones, gaps
// in the RowID space, and multi-token values are all present.
func snapDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("snaptest")
	actor, err := db.CreateTable(&TableSchema{
		Name:       "actor",
		Columns:    []Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(&TableSchema{
		Name:       "acts",
		Columns:    []Column{{Name: "actor_id"}, {Name: "role", Indexed: true}},
		PrimaryKey: "",
		ForeignKeys: []ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{
		{"a1", "Tom Hanks"}, {"a2", "Tom Cruise"}, {"a3", "Jack London"},
		{"a4", "Sky Stone Stone"},
	} {
		if _, err := actor.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	acts := db.Table("acts")
	for _, r := range [][]string{{"a1", "Viktor"}, {"a3", "Mitchel"}, {"a4", "Clerk Tom"}} {
		if _, err := acts.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.Prepare()
	// Tombstone two rows through the mutation path, so the snapshot must
	// carry dead slots and a RowID high-water mark above NumLive.
	ndb, _, err := db.Apply([]Mutation{
		{Op: OpDelete, Table: "actor", Key: "a2"},
		{Op: OpInsert, Table: "actor", Values: []string{"a5", "New London Face"}},
		{Op: OpDelete, Table: "actor", Key: "a3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ndb
}

func encodePhysical(t *testing.T, db *Database) []byte {
	t.Helper()
	var enc durable.Enc
	db.EncodeSnapshot(&enc, EncodeOptions{Physical: true, Postings: true})
	return append([]byte(nil), enc.Bytes()...)
}

func TestSnapshotPhysicalRoundTrip(t *testing.T) {
	db := snapDB(t)
	got, err := DecodeSnapshot(durable.NewDec(encodePhysical(t, db)))
	if err != nil {
		t.Fatal(err)
	}

	if got.Name != db.Name || !reflect.DeepEqual(got.TableNames(), db.TableNames()) {
		t.Fatalf("identity mismatch: %q %v", got.Name, got.TableNames())
	}
	for _, name := range db.TableNames() {
		ot, nt := db.Table(name), got.Table(name)
		if nt.Len() != ot.Len() || nt.NumLive() != ot.NumLive() || nt.NumDead() != ot.NumDead() {
			t.Fatalf("table %s physical shape: got (%d,%d,%d), want (%d,%d,%d)",
				name, nt.Len(), nt.NumLive(), nt.NumDead(), ot.Len(), ot.NumLive(), ot.NumDead())
		}
		for id := 0; id < ot.Len(); id++ {
			if ot.Live(id) != nt.Live(id) {
				t.Fatalf("table %s row %d liveness diverged", name, id)
			}
			// Tombstoned slots keep their values too (byte-stable resave).
			if !reflect.DeepEqual(ot.rows[id].Values, nt.rows[id].Values) {
				t.Fatalf("table %s row %d values diverged", name, id)
			}
		}
		// Selections agree on every single-token and duplicated bag.
		for _, kw := range [][]string{{"tom"}, {"london"}, {"stone", "stone"}, {"viktor"}, {"absent"}} {
			for _, col := range ot.Schema.TextColumns() {
				o := ot.SelectContains(col, kw)
				n := nt.SelectContains(col, kw)
				if !reflect.DeepEqual(SortedCopy(o), SortedCopy(n)) {
					t.Fatalf("table %s SelectContains(%s, %v): got %v, want %v", name, col, kw, n, o)
				}
			}
		}
	}
}

// TestSnapshotByteStable asserts the two determinism contracts: the
// same database encodes identically twice (even after lazy index
// builds ran in between), and decode→encode reproduces the bytes.
func TestSnapshotByteStable(t *testing.T) {
	db := snapDB(t)
	first := encodePhysical(t, db)
	// Force extra lazy structures between the encodes.
	db.Table("actor").LookupEqual("name", "Tom Hanks")
	db.Table("acts").SelectContains("role", []string{"tom"})
	second := encodePhysical(t, db)
	if !bytes.Equal(first, second) {
		t.Fatal("same database encoded to different bytes across calls")
	}

	decoded, err := DecodeSnapshot(durable.NewDec(first))
	if err != nil {
		t.Fatal(err)
	}
	if reencoded := encodePhysical(t, decoded); !bytes.Equal(first, reencoded) {
		t.Fatal("decode→encode did not reproduce the snapshot bytes")
	}
}

// TestSnapshotWithoutPostings drops the posting-list payload: decode
// must rebuild them lazily and still answer identically.
func TestSnapshotWithoutPostings(t *testing.T) {
	db := snapDB(t)
	var enc durable.Enc
	db.EncodeSnapshot(&enc, EncodeOptions{Physical: true})
	got, err := DecodeSnapshot(durable.NewDec(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := db.Table("actor").SelectContains("name", []string{"tom"})
	if gotSel := got.Table("actor").SelectContains("name", []string{"tom"}); !reflect.DeepEqual(SortedCopy(gotSel), SortedCopy(want)) {
		t.Fatalf("lazy-rebuilt selection = %v, want %v", gotSel, want)
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	db := snapDB(t)
	raw := encodePhysical(t, db)
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeSnapshot(durable.NewDec(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSaveLoadLogicalDump(t *testing.T) {
	db := snapDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	got, err := Load(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	// Logical dump: tombstones dropped, rows renumbered densely.
	if got.Table("actor").Len() != db.Table("actor").NumLive() {
		t.Fatalf("loaded actor has %d slots, want %d live", got.Table("actor").Len(), db.Table("actor").NumLive())
	}
	if got.Table("actor").NumDead() != 0 {
		t.Fatal("logical dump preserved tombstones")
	}
	// Values survive per live row, in physical order.
	var wantNames, gotNames []string
	for _, row := range db.Table("actor").Rows() {
		if db.Table("actor").Live(row.RowID) {
			wantNames = append(wantNames, row.Values[1])
		}
	}
	for _, row := range got.Table("actor").Rows() {
		gotNames = append(gotNames, row.Values[1])
	}
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("loaded names %v, want %v", gotNames, wantNames)
	}

	// Byte stability of the dump itself.
	var buf2 bytes.Buffer
	if err := db.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("Save is not byte-stable across calls")
	}
}

func TestCompactTables(t *testing.T) {
	db := snapDB(t)
	actor := db.Table("actor")
	if actor.NumDead() == 0 {
		t.Fatal("fixture has no tombstones")
	}
	wantSel := SortedCopy(actor.SelectContains("name", []string{"london"}))

	cdb := db.CompactTables([]string{"actor", "acts"})
	cactor := cdb.Table("actor")
	if cactor.NumDead() != 0 || cactor.Len() != actor.NumLive() {
		t.Fatalf("compacted actor: %d slots, %d dead", cactor.Len(), cactor.NumDead())
	}
	// acts had no tombstones: the table must be shared, not rebuilt.
	if cdb.Table("acts") != db.Table("acts") {
		t.Fatal("tombstone-free table was rebuilt")
	}
	// The receiver is untouched.
	if actor.NumDead() == 0 || db.Table("actor") == cactor {
		t.Fatal("CompactTables modified the receiver")
	}
	// Same live content under selection, just renumbered: compare values.
	var got []string
	for _, id := range cactor.SelectContains("name", []string{"london"}) {
		v, _ := cactor.Value(id, "name")
		got = append(got, v)
	}
	var want []string
	for _, id := range wantSel {
		v, _ := actor.Value(id, "name")
		want = append(want, v)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted selection values %v, want %v", got, want)
	}
	if r := cactor.DeadRatio(); r != 0 {
		t.Fatalf("DeadRatio after compaction = %v", r)
	}
}
