// Package datagraph implements the data-based keyword search family of
// Section 2.2.2 (BANKS and successors): the database is modelled as a
// graph whose nodes are tuples and whose edges are foreign-key → primary-
// key connections between tuples; the answer to a keyword query is a
// minimal joining tree of tuples connecting nodes that collectively
// contain all keywords.
//
// The search algorithm is the Backward Expanding Search of BANKS
// (Bhalotia et al., as summarised in §2.2.2): a Dijkstra-style expansion
// is started from every node containing a keyword; when some node has
// been reached by an expansion of every keyword group, the union of the
// shortest paths from that node back to one source per group is a result
// tree, rooted at the meeting node. Results are emitted in increasing
// tree weight (number of edges — the minimality/relevance proxy of
// §2.2.2); exact minimal Group Steiner trees are NP-complete, so like
// BANKS this is a heuristic with no optimality guarantee.
//
// The schema-based pipeline (internal/query + internal/prob) is the
// thesis's chosen side of the §2.2.3 comparison; this package provides
// the other side, so the two families can be compared on identical data.
package datagraph

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/relstore"
)

// Node identifies one tuple of the database.
type Node struct {
	Table string
	Row   int
}

// String renders the node as "table#row".
func (n Node) String() string { return fmt.Sprintf("%s#%d", n.Table, n.Row) }

// Graph is the data graph of a database.
type Graph struct {
	db  *relstore.Database
	adj map[Node][]Node
	// containing maps a (lower-cased) term to the nodes whose indexed
	// attributes contain it.
	containing map[string][]Node
}

// Build materialises the data graph: one node per tuple, one undirected
// edge per foreign-key reference between tuples. Tombstoned rows are
// skipped. Containment and adjacency lists are kept in canonical
// (table, row) order, so an incrementally maintained graph (Apply) is
// structurally identical to a freshly built one.
func Build(db *relstore.Database) *Graph {
	g := &Graph{
		db:         db,
		adj:        make(map[Node][]Node),
		containing: make(map[string][]Node),
	}
	for _, t := range db.Tables() {
		name := t.Schema.Name
		// Keyword containment per node.
		for ci, col := range t.Schema.Columns {
			if !col.Indexed {
				continue
			}
			for _, row := range t.Rows() {
				if !t.Live(row.RowID) {
					continue
				}
				for _, tok := range relstore.Tokenize(row.Values[ci]) {
					n := Node{Table: name, Row: row.RowID}
					g.containing[tok] = append(g.containing[tok], n)
				}
			}
		}
		// FK edges.
		for _, fk := range t.Schema.ForeignKeys {
			ref := db.Table(fk.RefTable)
			if ref == nil {
				continue
			}
			ci := t.Schema.ColumnIndex(fk.Column)
			for _, row := range t.Rows() {
				if !t.Live(row.RowID) {
					continue
				}
				for _, refID := range ref.LookupEqual(fk.RefColumn, row.Values[ci]) {
					a := Node{Table: name, Row: row.RowID}
					b := Node{Table: fk.RefTable, Row: refID}
					g.adj[a] = append(g.adj[a], b)
					g.adj[b] = append(g.adj[b], a)
				}
			}
		}
	}
	// Deduplicate containment lists (a term can repeat within one value)
	// and bring every list into canonical order.
	for tok, nodes := range g.containing {
		g.containing[tok] = sortNodes(dedupeNodes(nodes))
	}
	for n, nbrs := range g.adj {
		g.adj[n] = sortNodes(nbrs)
	}
	return g
}

func dedupeNodes(nodes []Node) []Node {
	seen := make(map[Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// nodeLess is the canonical (table, row) node order of every list.
func nodeLess(a, b Node) bool {
	if a.Table != b.Table {
		return a.Table < b.Table
	}
	return a.Row < b.Row
}

// sortNodes sorts a node list in place into canonical order (duplicates,
// e.g. parallel FK edges, are preserved) and returns it.
func sortNodes(nodes []Node) []Node {
	sort.Slice(nodes, func(i, j int) bool { return nodeLess(nodes[i], nodes[j]) })
	return nodes
}

// NumNodes returns the number of tuples in the database (graph nodes).
func (g *Graph) NumNodes() int { return g.db.NumRows() }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nbrs := range g.adj {
		n += len(nbrs)
	}
	return n / 2
}

// Containing returns the nodes containing the term.
func (g *Graph) Containing(term string) []Node {
	toks := relstore.Tokenize(term)
	if len(toks) == 0 {
		return nil
	}
	src := g.containing[toks[0]]
	if len(src) == 0 {
		return nil
	}
	out := make([]Node, len(src))
	copy(out, src)
	return out
}

// Tree is one search result: a joining tree of tuples rooted at the
// meeting node (§2.2.2's rooted JTT).
type Tree struct {
	Root Node
	// Nodes lists every tuple of the tree (root included), sorted.
	Nodes []Node
	// Weight is the number of edges (tree size − 1), the cost heuristic.
	Weight int
}

// Key canonically identifies the tree by its node set.
func (t Tree) Key() string {
	parts := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		parts[i] = n.String()
	}
	return fmt.Sprintf("%v", parts)
}

// Options bounds a search.
type Options struct {
	// K is the number of result trees to return (default 10).
	K int
	// MaxWeight bounds tree size in edges (default 6).
	MaxWeight int
	// MaxVisited caps total node expansions as a safety valve (default
	// 100000).
	MaxVisited int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxWeight <= 0 {
		o.MaxWeight = 6
	}
	if o.MaxVisited <= 0 {
		o.MaxVisited = 100000
	}
}

// pqItem is one frontier entry of the backward expansion: node reached
// from keyword group src at distance dist.
type pqItem struct {
	node Node
	src  int // keyword group index
	dist int
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// Search runs Backward Expanding Search for the keyword query and
// returns up to K result trees in non-decreasing weight. Keywords with
// no occurrence anywhere make the result empty (AND semantics, as in
// BANKS/DISCOVER, §2.2.7).
func (g *Graph) Search(keywords []string, opts Options) ([]Tree, error) {
	opts.defaults()
	groups := make([][]Node, 0, len(keywords))
	for _, kw := range keywords {
		nodes := g.Containing(kw)
		if len(nodes) == 0 {
			return nil, nil
		}
		groups = append(groups, nodes)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("datagraph: empty keyword query")
	}

	// dist[src][node] / parent[src][node] per keyword group.
	dist := make([]map[Node]int, len(groups))
	parent := make([]map[Node]Node, len(groups))
	frontier := &pq{}
	heap.Init(frontier)
	for si, nodes := range groups {
		dist[si] = make(map[Node]int)
		parent[si] = make(map[Node]Node)
		for _, n := range nodes {
			dist[si][n] = 0
			heap.Push(frontier, pqItem{node: n, src: si, dist: 0})
		}
	}

	seenTrees := make(map[string]bool)
	var results []Tree
	visited := 0
	emit := func(meet Node) {
		// Minimality (§2.2.3's "no free leaves"): the meeting node must
		// itself contain a keyword (distance 0 for some group) or join at
		// least two distinct paths; otherwise the tree has a redundant
		// free leaf at the root and a smaller tree exists.
		rootHasKeyword := false
		firstSteps := map[Node]bool{}
		for si := range groups {
			if dist[si][meet] == 0 {
				rootHasKeyword = true
			} else {
				firstSteps[parent[si][meet]] = true
			}
		}
		if !rootHasKeyword && len(firstSteps) < 2 {
			return
		}
		total := 0
		nodeSet := map[Node]bool{meet: true}
		for si := range groups {
			total += dist[si][meet]
			// Walk the shortest path back to the group's source.
			cur := meet
			for dist[si][cur] > 0 {
				cur = parent[si][cur]
				nodeSet[cur] = true
			}
		}
		if total > opts.MaxWeight {
			return
		}
		nodes := make([]Node, 0, len(nodeSet))
		for n := range nodeSet {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].Table != nodes[j].Table {
				return nodes[i].Table < nodes[j].Table
			}
			return nodes[i].Row < nodes[j].Row
		})
		tr := Tree{Root: meet, Nodes: nodes, Weight: len(nodes) - 1}
		if seenTrees[tr.Key()] {
			return
		}
		seenTrees[tr.Key()] = true
		results = append(results, tr)
	}

	for frontier.Len() > 0 && len(results) < opts.K && visited < opts.MaxVisited {
		it := heap.Pop(frontier).(pqItem)
		if d, ok := dist[it.src][it.node]; ok && it.dist > d {
			continue // stale entry
		}
		visited++
		// Meeting test: reached from every group?
		meets := true
		for si := range groups {
			if _, ok := dist[si][it.node]; !ok {
				meets = false
				break
			}
		}
		if meets {
			emit(it.node)
			if len(results) >= opts.K {
				break
			}
		}
		if it.dist >= opts.MaxWeight {
			continue
		}
		for _, nbr := range g.adj[it.node] {
			nd := it.dist + 1
			if d, ok := dist[it.src][nbr]; !ok || nd < d {
				dist[it.src][nbr] = nd
				parent[it.src][nbr] = it.node
				heap.Push(frontier, pqItem{node: nbr, src: it.src, dist: nd})
			}
		}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Weight < results[j].Weight })
	if len(results) > opts.K {
		results = results[:opts.K]
	}
	return results, nil
}

// ContainsAll verifies a tree's nodes collectively contain every keyword
// (the completeness invariant used by the tests).
func (g *Graph) ContainsAll(t Tree, keywords []string) bool {
	for _, kw := range keywords {
		found := false
		for _, n := range g.Containing(kw) {
			for _, tn := range t.Nodes {
				if tn == n {
					found = true
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Connected verifies the tree's node set is connected in the data graph
// (the joining-tree invariant used by the tests).
func (g *Graph) Connected(t Tree) bool {
	if len(t.Nodes) == 0 {
		return false
	}
	inTree := make(map[Node]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		inTree[n] = true
	}
	seen := map[Node]bool{t.Nodes[0]: true}
	stack := []Node{t.Nodes[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if inTree[w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(t.Nodes)
}
