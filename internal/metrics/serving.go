package metrics

import "sync/atomic"

// ServingStats is the shared counter block of the HTTP serving path:
// the admission middleware and the request loop update it with atomic
// operations, and /healthz snapshots it so operators (and the load
// generator) can watch in-flight work, queue depth, and shed decisions
// without locks on the hot path. Gauges track their high-water marks,
// which is what turns "no unbounded queue growth" into an assertable
// number.
type ServingStats struct {
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	queued      atomic.Int64
	maxQueued   atomic.Int64

	served           atomic.Int64
	shedQueueFull    atomic.Int64
	shedQueueTimeout atomic.Int64
	deadlineExceeded atomic.Int64
}

// raiseHighWater lifts hw to at least v.
func raiseHighWater(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StartRequest marks one request admitted into a handler; the returned
// value is the new in-flight count.
func (s *ServingStats) StartRequest() int64 {
	n := s.inFlight.Add(1)
	raiseHighWater(&s.maxInFlight, n)
	return n
}

// EndRequest marks one admitted request finished.
func (s *ServingStats) EndRequest() {
	s.inFlight.Add(-1)
	s.served.Add(1)
}

// StartQueued marks one request entering the admission wait queue.
func (s *ServingStats) StartQueued() {
	n := s.queued.Add(1)
	raiseHighWater(&s.maxQueued, n)
}

// EndQueued marks one request leaving the wait queue (admitted, timed
// out, or abandoned).
func (s *ServingStats) EndQueued() { s.queued.Add(-1) }

// ShedQueueFull counts one request rejected because the wait queue was
// at capacity.
func (s *ServingStats) ShedQueueFull() { s.shedQueueFull.Add(1) }

// ShedQueueTimeout counts one request rejected after waiting the full
// queue timeout without a slot freeing up.
func (s *ServingStats) ShedQueueTimeout() { s.shedQueueTimeout.Add(1) }

// DeadlineExceeded counts one admitted request that failed with a
// deadline-exceeded error (the 504 path).
func (s *ServingStats) DeadlineExceeded() { s.deadlineExceeded.Add(1) }

// ServingSnapshot is a point-in-time copy of the counters, shaped for
// JSON embedding in /healthz.
type ServingSnapshot struct {
	// InFlight is the number of requests currently inside handlers;
	// MaxInFlight is its high-water mark since start.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int64 `json:"max_in_flight"`
	// Queued is the number of requests waiting in the admission queue;
	// MaxQueued is its high-water mark (bounded by the queue capacity
	// whenever the gate is working).
	Queued    int64 `json:"queued"`
	MaxQueued int64 `json:"max_queued"`
	// Served counts admitted requests that ran to completion.
	Served int64 `json:"served_total"`
	// ShedQueueFull and ShedQueueTimeout count rejected requests by
	// shed reason (instant 429s and waited-then-503s respectively).
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout"`
	// DeadlineExceeded counts admitted requests that hit a deadline
	// (the 504 responses).
	DeadlineExceeded int64 `json:"deadline_exceeded_total"`
}

// Snapshot copies the current counter values.
func (s *ServingStats) Snapshot() ServingSnapshot {
	return ServingSnapshot{
		InFlight:         s.inFlight.Load(),
		MaxInFlight:      s.maxInFlight.Load(),
		Queued:           s.queued.Load(),
		MaxQueued:        s.maxQueued.Load(),
		Served:           s.served.Load(),
		ShedQueueFull:    s.shedQueueFull.Load(),
		ShedQueueTimeout: s.shedQueueTimeout.Load(),
		DeadlineExceeded: s.deadlineExceeded.Load(),
	}
}
