package keysearch

import (
	"time"

	"repro/internal/relstore"
	"repro/internal/trace"
)

// This file holds the engine-side tracing shims. Both wrappers exist
// only while a request is traced: with tracing off the providers pass
// the original values through untouched, so the disabled path carries
// no extra indirection — the property the byte-identical differential
// and the overhead guard in internal/benchexec pin.

// tracedView wraps a request's answer-cache view so cache consultations
// show up on the trace as counters (hits and misses per entry kind).
// A nil view stays nil — the rest of the stack distinguishes "cache
// off" by interface nilness, and wrapping nil would silently flip that.
func tracedView(view relstore.SharedStore, tr *trace.Trace) relstore.SharedStore {
	if tr == nil || view == nil {
		return view
	}
	return &countingView{inner: view, tr: tr}
}

type countingView struct {
	inner relstore.SharedStore
	tr    *trace.Trace
}

func (v *countingView) GetSelection(table string, col int, bag string) ([]int, bool) {
	rows, ok := v.inner.GetSelection(table, col, bag)
	if ok {
		v.tr.Count("answer_cache_selection_hits", 1)
	} else {
		v.tr.Count("answer_cache_selection_misses", 1)
	}
	return rows, ok
}

func (v *countingView) PutSelection(table string, col int, bag string, rows []int) {
	v.inner.PutSelection(table, col, bag, rows)
}

func (v *countingView) GetPlan(key string) ([][]int, bool) {
	rows, ok := v.inner.GetPlan(key)
	if ok {
		v.tr.Count("answer_cache_plan_hits", 1)
		v.tr.Annotate("answer_cache", "hit")
	} else {
		v.tr.Count("answer_cache_plan_misses", 1)
	}
	return rows, ok
}

func (v *countingView) PutPlan(key string, fp []relstore.Attr, rows [][]int) {
	v.inner.PutPlan(key, fp, rows)
}

func (v *countingView) GetCount(key string) (int, bool) {
	n, ok := v.inner.GetCount(key)
	if ok {
		v.tr.Count("answer_cache_count_hits", 1)
	} else {
		v.tr.Count("answer_cache_count_misses", 1)
	}
	return n, ok
}

func (v *countingView) PutCount(key string, fp []relstore.Attr, n int) {
	v.inner.PutCount(key, fp, n)
}

// tracedExecutor times plan execution at the request's executor seam —
// the per-plan channel that, aggregated as counters, stays bounded no
// matter how many interpretations a top-k wave executes.
type tracedExecutor struct {
	inner relstore.PlanExecutor
	tr    *trace.Trace
}

func (x *tracedExecutor) ExecutePlan(p *relstore.JoinPlan, limit int) ([]relstore.JTT, error) {
	t0 := time.Now()
	jtts, err := x.inner.ExecutePlan(p, limit)
	x.tr.CountDuration("plan_exec_ns", time.Since(t0))
	x.tr.Count("plans_executed", 1)
	x.tr.Count("rows_materialized", int64(len(jtts)))
	return jtts, err
}

func (x *tracedExecutor) CountPlan(p *relstore.JoinPlan, limit int) (int, error) {
	t0 := time.Now()
	n, err := x.inner.CountPlan(p, limit)
	x.tr.CountDuration("plan_count_ns", time.Since(t0))
	x.tr.Count("plans_counted", 1)
	return n, err
}
