package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/prob"
	"repro/internal/query"
)

// Scorer abstracts the probability source of a construction session. The
// production implementation is prob.Model (ATF + template priors,
// Section 3.6); the scalability simulation of Section 3.8.5 substitutes
// randomly assigned probabilities.
type Scorer interface {
	// KeywordProb returns P(Ai:ki | T∩Ai) for a keyword interpretation.
	KeywordProb(ki query.KeywordInterpretation) float64
	// Rank scores complete interpretations into a normalised ranking.
	Rank(space []*query.Interpretation) []prob.Scored
	// Catalog returns the template catalogue.
	Catalog() *query.Catalog
}

// statically assert that the production model satisfies Scorer.
var _ Scorer = (*prob.Model)(nil)

// ContextRanker is the optional extension of Scorer for scorers whose
// ranking honours context cancellation (prob.Model does). Materialisation
// uses it when available so long rankings abort with the request.
type ContextRanker interface {
	RankContext(ctx context.Context, space []*query.Interpretation) ([]prob.Scored, error)
}

var _ ContextRanker = (*prob.Model)(nil)

// SessionConfig tunes the greedy construction session (Algorithm 3.2).
type SessionConfig struct {
	// Threshold is the greedy algorithm's hierarchy-expansion threshold T:
	// the top level is expanded while it holds fewer than Threshold
	// entries (default 20, the knee observed in Tables 3.2/3.3).
	Threshold int
	// StopAtRemaining ends construction when at most this many complete
	// interpretations remain: the user identifies the intended one in the
	// query window (Section 3.8.2 uses 5). Default 5.
	StopAtRemaining int
	// MaxTemplatesPerBinding caps how many compatible templates are
	// attached per binding combination at the final expansion (0 =
	// unlimited).
	MaxTemplatesPerBinding int
	// OptionPolicy selects how the next option is chosen; default
	// PolicyInformationGain. PolicyProbability is the ablation that picks
	// the most probable undecided option instead.
	OptionPolicy OptionPolicy
}

// OptionPolicy selects the query-construction-option scoring rule.
type OptionPolicy int

const (
	// PolicyInformationGain picks the option with maximum information
	// gain (Section 3.7.3) — the IQP policy.
	PolicyInformationGain OptionPolicy = iota
	// PolicyProbability picks the undecided option with the highest
	// subsumed probability mass — the ablation baseline.
	PolicyProbability
)

// partial is one entry of the current top level of the query hierarchy: a
// set of keyword bindings (without template) for the first `level` matched
// keywords, scored by the probabilistic model.
type partial struct {
	kis   []query.KeywordInterpretation
	score float64
}

// Session is an interactive incremental query construction (one user, one
// keyword query). It maintains the query hierarchy lazily: the top level
// TQ starts at the smallest partial interpretations and is expanded
// keyword by keyword while it stays below the threshold; user decisions on
// options shrink it (Algorithm 3.2).
type Session struct {
	scorer Scorer
	cands  *query.Candidates
	cfg    SessionConfig

	// matched keyword positions in expansion order.
	order []int
	// level = number of matched keywords expanded so far.
	level int
	// top is TQ while incomplete (binding sets without templates).
	top []partial
	// complete is the materialised, filtered complete-interpretation set
	// once the hierarchy is fully expanded (nil before).
	complete []prob.Scored

	// accepted maps keyword position -> forced interpretation key;
	// rejected holds banned interpretation keys.
	accepted map[int]string
	rejected map[string]bool

	steps int
}

// NewSession starts a construction session for the keyword query whose
// candidates have been generated against the model's index. It is the
// context-free convenience form of NewSessionContext.
func NewSession(scorer Scorer, cands *query.Candidates, cfg SessionConfig) (*Session, error) {
	return NewSessionContext(context.Background(), scorer, cands, cfg)
}

// NewSessionContext is NewSession with cancellation: the initial hierarchy
// expansion (which may materialise the complete interpretation space)
// honours the context.
func NewSessionContext(ctx context.Context, scorer Scorer, cands *query.Candidates, cfg SessionConfig) (*Session, error) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 20
	}
	if cfg.StopAtRemaining <= 0 {
		cfg.StopAtRemaining = 5
	}
	matched := cands.MatchedPositions()
	if len(matched) == 0 {
		return nil, fmt.Errorf("core: no keyword of the query matches the database")
	}
	s := &Session{
		scorer:   scorer,
		cands:    cands,
		cfg:      cfg,
		order:    matched,
		accepted: make(map[int]string),
		rejected: make(map[string]bool),
	}
	s.top = []partial{{kis: nil, score: 1}}
	if err := s.expandWhileSmall(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// Steps returns the number of options the user has evaluated so far — the
// interaction cost of Definition 3.5.9.
func (s *Session) Steps() int { return s.steps }

// fullyExpanded reports whether the hierarchy has reached complete
// interpretations.
func (s *Session) fullyExpanded() bool { return s.complete != nil }

// consistentKI reports whether a keyword interpretation is allowed under
// the user's decisions so far.
func (s *Session) consistentKI(ki query.KeywordInterpretation) bool {
	if s.rejected[ki.Key()] {
		return false
	}
	if forced, ok := s.accepted[ki.Pos]; ok && forced != ki.Key() {
		return false
	}
	return true
}

// expandWhileSmall implements the expansion loop of Algorithm 3.2: while
// the top level holds fewer than Threshold entries and can be expanded,
// expand it by one keyword; the final expansion attaches templates and
// materialises complete interpretations.
func (s *Session) expandWhileSmall(ctx context.Context) error {
	for !s.fullyExpanded() && len(s.top) < s.cfg.Threshold {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.level < len(s.order) {
			s.expandOneKeyword()
		}
		if s.level == len(s.order) {
			return s.materializeComplete(ctx)
		}
	}
	return nil
}

// expandOneKeyword expands the top level by the next matched keyword.
func (s *Session) expandOneKeyword() {
	pos := s.order[s.level]
	var next []partial
	for _, p := range s.top {
		for _, ki := range s.cands.PerKeyword[pos] {
			if !s.consistentKI(ki) {
				continue
			}
			kis := make([]query.KeywordInterpretation, len(p.kis)+1)
			copy(kis, p.kis)
			kis[len(p.kis)] = ki
			next = append(next, partial{kis: kis, score: p.score * s.scorer.KeywordProb(ki)})
		}
	}
	s.level++
	s.top = next
	s.sortTop()
}

// materializeComplete attaches compatible templates to every surviving
// binding combination, producing the filtered complete interpretation set.
func (s *Session) materializeComplete(ctx context.Context) error {
	tuples := make([][]query.KeywordInterpretation, len(s.top))
	for i, p := range s.top {
		tuples[i] = p.kis
	}
	complete, err := MaterializeInterpretationsContext(ctx, s.scorer, s.cands.Keywords, tuples, s.cfg.MaxTemplatesPerBinding)
	if err != nil {
		return err
	}
	s.complete = complete
	s.top = nil
	return nil
}

// MaterializeInterpretations attaches every compatible template of the
// scorer's catalogue to each keyword-interpretation tuple, applies the
// minimality condition, deduplicates, and returns the ranked complete
// interpretation space. maxTemplatesPerBinding caps template attachment
// per tuple (0 = unlimited). It is the final expansion step of the query
// hierarchy, shared by the IQP session and the FreeQ session, and the
// context-free convenience form of MaterializeInterpretationsContext.
func MaterializeInterpretations(scorer Scorer, keywords []string, tuples [][]query.KeywordInterpretation, maxTemplatesPerBinding int) []prob.Scored {
	out, _ := MaterializeInterpretationsContext(context.Background(), scorer, keywords, tuples, maxTemplatesPerBinding)
	return out
}

// MaterializeInterpretationsContext is MaterializeInterpretations with
// cancellation: the context is checked per keyword-interpretation tuple
// during template attachment and passed into the final ranking, so the
// most expensive step of a construction session aborts with the request.
func MaterializeInterpretationsContext(ctx context.Context, scorer Scorer, keywords []string, tuples [][]query.KeywordInterpretation, maxTemplatesPerBinding int) ([]prob.Scored, error) {
	cat := scorer.Catalog()
	var space []*query.Interpretation
	seen := make(map[string]bool)
	for _, kis := range tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		perBinding := 0
		for _, tpl := range cat.Templates {
			for _, bindings := range assignOccurrences(kis, tpl) {
				q := query.NewInterpretation(keywords, tpl, bindings)
				if !interpMinimal(q) {
					continue
				}
				key := q.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				space = append(space, q)
				perBinding++
				if maxTemplatesPerBinding > 0 && perBinding >= maxTemplatesPerBinding {
					break
				}
			}
			if maxTemplatesPerBinding > 0 && perBinding >= maxTemplatesPerBinding {
				break
			}
		}
	}
	if cr, ok := scorer.(ContextRanker); ok {
		return cr.RankContext(ctx, space)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return scorer.Rank(space), nil
}

// assignOccurrences enumerates the ways to place each keyword
// interpretation on an occurrence of its table within the template;
// returns nil when some interpretation's table is absent.
func assignOccurrences(kis []query.KeywordInterpretation, tpl *query.Template) [][]query.Binding {
	var out [][]query.Binding
	cur := make([]query.Binding, 0, len(kis))
	var rec func(i int)
	rec = func(i int) {
		if i == len(kis) {
			bs := make([]query.Binding, len(cur))
			copy(bs, cur)
			out = append(out, bs)
			return
		}
		if kis[i].Kind == query.KindAggregate {
			cur = append(cur, query.Binding{KI: kis[i], Occ: -1})
			rec(i + 1)
			cur = cur[:len(cur)-1]
			return
		}
		for _, occ := range tpl.Occurrences(kis[i].TargetTable()) {
			cur = append(cur, query.Binding{KI: kis[i], Occ: occ})
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// interpMinimal applies Definition 3.5.4(2): every leaf occurrence of the
// template carries a binding.
func interpMinimal(q *query.Interpretation) bool {
	tree := q.Template.Tree
	n := tree.Size()
	grounded := 0
	for _, b := range q.Bindings {
		if b.Occ >= 0 {
			grounded++
		}
	}
	if grounded == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	bound := make([]bool, n)
	for _, b := range q.Bindings {
		if b.Occ >= 0 {
			bound[b.Occ] = true
		}
	}
	deg := make([]int, n)
	for _, e := range tree.TreeEdges {
		deg[e.From]++
		deg[e.To]++
	}
	for i := 0; i < n; i++ {
		if deg[i] <= 1 && !bound[i] {
			return false
		}
	}
	return true
}

func (s *Session) sortTop() {
	sort.Slice(s.top, func(i, j int) bool {
		if s.top[i].score != s.top[j].score {
			return s.top[i].score > s.top[j].score
		}
		return partialKey(s.top[i]) < partialKey(s.top[j])
	})
}

func partialKey(p partial) string {
	k := ""
	for _, ki := range p.kis {
		k += ki.Key() + ";"
	}
	return k
}

// Done reports whether construction has finished: the hierarchy is fully
// expanded and at most StopAtRemaining complete interpretations remain.
func (s *Session) Done() bool {
	return s.fullyExpanded() && len(s.complete) <= s.cfg.StopAtRemaining
}

// Remaining returns the currently consistent complete interpretations,
// ranked; empty until the hierarchy is fully expanded.
func (s *Session) Remaining() []prob.Scored {
	out := make([]prob.Scored, len(s.complete))
	copy(out, s.complete)
	return out
}

// optionBucket accumulates, per candidate option (keyword
// interpretation), the statistics of the subsumed subset of the top
// level: count, probability mass S1 = Σw, and S2 = Σ w·log2(w). The
// branch entropy follows as H = log2(S1) − S2/S1, so information gain is
// computable from one pass over the top level instead of one pass per
// option (the per-step cost drops from O(#options·#top) to
// O(#top·#keywords + #options), which keeps long constructions over wide
// schemas tractable).
type optionBucket struct {
	ki    query.KeywordInterpretation
	n     int
	s1    float64
	s2    float64
	valid bool
}

// NextOption returns the best undecided query construction option under
// the configured policy, or ok=false when no option can split the current
// top level (the user must pick from Remaining).
func (s *Session) NextOption() (query.Option, bool) {
	buckets := make(map[string]*optionBucket)
	undecided := func(ki query.KeywordInterpretation) bool {
		if _, ok := s.accepted[ki.Pos]; ok {
			return false
		}
		return !s.rejected[ki.Key()]
	}
	addEntry := func(weight float64, kis []query.KeywordInterpretation) {
		if weight <= 0 {
			return
		}
		wlog := weight * math.Log2(weight)
		seen := make(map[string]bool, len(kis))
		for _, ki := range kis {
			if !undecided(ki) {
				continue
			}
			key := ki.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			b := buckets[key]
			if b == nil {
				b = &optionBucket{ki: ki, valid: true}
				buckets[key] = b
			}
			b.n++
			b.s1 += weight
			b.s2 += wlog
		}
	}
	total := 0.0
	totalLog := 0.0
	count := 0
	if s.fullyExpanded() {
		kis := make([]query.KeywordInterpretation, 0, 8)
		for _, sc := range s.complete {
			kis = kis[:0]
			for _, b := range sc.Q.Bindings {
				kis = append(kis, b.KI)
			}
			addEntry(sc.Score, kis)
			if sc.Score > 0 {
				total += sc.Score
				totalLog += sc.Score * math.Log2(sc.Score)
			}
			count++
		}
	} else {
		for _, p := range s.top {
			addEntry(p.score, p.kis)
			if p.score > 0 {
				total += p.score
				totalLog += p.score * math.Log2(p.score)
			}
			count++
		}
	}
	if total <= 0 || len(buckets) == 0 {
		return query.Option{}, false
	}
	entropy := func(s1, s2 float64) float64 {
		if s1 <= 0 {
			return 0
		}
		return math.Log2(s1) - s2/s1
	}
	var bestKey string
	var bestKI query.KeywordInterpretation
	bestScore := math.Inf(-1)
	found := false
	for key, b := range buckets {
		if b.n == 0 || b.n == count || b.s1 >= total {
			continue // does not split the top level
		}
		var score float64
		switch s.cfg.OptionPolicy {
		case PolicyProbability:
			score = b.s1
		default:
			pin := b.s1 / total
			cond := pin*entropy(b.s1, b.s2) + (1-pin)*entropy(total-b.s1, totalLog-b.s2)
			score = entropy(total, totalLog) - cond
		}
		if score > bestScore || (score == bestScore && (!found || key < bestKey)) {
			bestScore = score
			bestKey = key
			bestKI = b.ki
			found = true
		}
	}
	if !found {
		return query.Option{}, false
	}
	return query.NewOption(bestKI), true
}

// Accept records that the option is a sub-query of the intended
// interpretation and shrinks the space accordingly. It is the
// context-free convenience form of AcceptContext.
func (s *Session) Accept(o query.Option) {
	_ = s.AcceptContext(context.Background(), o)
}

// AcceptContext is Accept with cancellation of the hierarchy expansion
// the decision may trigger.
func (s *Session) AcceptContext(ctx context.Context, o query.Option) error {
	s.steps++
	for _, ki := range o.KIs {
		s.accepted[ki.Pos] = ki.Key()
	}
	s.filter()
	return s.expandWhileSmall(ctx)
}

// Reject records that the option is not part of the intended
// interpretation. It is the context-free convenience form of
// RejectContext.
func (s *Session) Reject(o query.Option) {
	_ = s.RejectContext(context.Background(), o)
}

// RejectContext is Reject with cancellation of the hierarchy expansion
// the decision may trigger.
func (s *Session) RejectContext(ctx context.Context, o query.Option) error {
	s.steps++
	for _, ki := range o.KIs {
		s.rejected[ki.Key()] = true
	}
	s.filter()
	return s.expandWhileSmall(ctx)
}

// filter removes top-level entries inconsistent with the decisions.
func (s *Session) filter() {
	if s.fullyExpanded() {
		var kept []prob.Scored
		for _, sc := range s.complete {
			if s.consistentInterp(sc.Q) {
				kept = append(kept, sc)
			}
		}
		s.complete = kept
		return
	}
	var kept []partial
	for _, p := range s.top {
		ok := true
		for _, ki := range p.kis {
			if !s.consistentKI(ki) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, p)
		}
	}
	s.top = kept
}

func (s *Session) consistentInterp(q *query.Interpretation) bool {
	for _, b := range q.Bindings {
		if !s.consistentKI(b.KI) {
			return false
		}
	}
	// Every accepted keyword must actually be bound to the accepted
	// interpretation in a complete interpretation.
	for pos, key := range s.accepted {
		found := false
		for _, b := range q.Bindings {
			if b.KI.Pos == pos && b.KI.Key() == key {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
