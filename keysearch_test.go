package keysearch

import (
	"bytes"
	"strings"
	"testing"
)

// movieSchema is the running-example schema of the thesis.
func movieSchema() []Table {
	return []Table{
		{
			Name:       "actor",
			Columns:    []Column{{Name: "id"}, {Name: "name", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:       "movie",
			Columns:    []Column{{Name: "id"}, {Name: "title", Text: true}, {Name: "year", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:    "acts",
			Columns: []Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Text: true}},
			ForeignKeys: []ForeignKey{
				{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
				{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			},
		},
	}
}

func builtSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(movieSchema(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Tom Hanks"},
		{"actor", "a2", "Tom Cruise"},
		{"actor", "a3", "Jack London"},
		{"movie", "m1", "The Terminal", "2004"},
		{"movie", "m2", "London Boulevard", "2010"},
		{"acts", "a1", "m1", "Viktor"},
		{"acts", "a3", "m2", "Mitchel"},
	}
	for _, r := range rows {
		if err := sys.Insert(r[0], r[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewValidatesSchema(t *testing.T) {
	if _, err := New([]Table{{Name: "t"}}, Config{}); err == nil {
		t.Fatal("empty columns accepted")
	}
	bad := []Table{{
		Name:    "child",
		Columns: []Column{{Name: "pid"}},
		ForeignKeys: []ForeignKey{
			{Column: "pid", RefTable: "ghost", RefColumn: "id"},
		},
	}}
	if _, err := New(bad, Config{}); err == nil {
		t.Fatal("dangling FK accepted")
	}
}

func TestLifecycleErrors(t *testing.T) {
	sys, err := New(movieSchema(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Search("hanks", 3); err == nil {
		t.Fatal("search before Build accepted")
	}
	if err := sys.Insert("ghost", "x"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(); err == nil {
		t.Fatal("double Build accepted")
	}
	if err := sys.Insert("actor", "a9", "X"); err == nil {
		t.Fatal("insert after Build accepted")
	}
	if _, err := sys.Search("", 3); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := sys.Search("zzzznope", 3); err == nil {
		t.Fatal("unmatched query accepted")
	}
}

func TestSearchRanksInterpretations(t *testing.T) {
	sys := builtSystem(t)
	results, err := sys.Search("london", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("london should be ambiguous, got %d interpretations", len(results))
	}
	// Probabilities are normalised and descending.
	for i, r := range results {
		if r.Probability <= 0 || r.Probability > 1 {
			t.Fatalf("probability out of range: %+v", r)
		}
		if i > 0 && r.Probability > results[i-1].Probability+1e-12 {
			t.Fatal("results not sorted by probability")
		}
		if r.Query == "" || len(r.Tables) == 0 {
			t.Fatalf("result missing rendering: %+v", r)
		}
	}
	// k caps the result count.
	top1, err := sys.Search("london", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0].Query != results[0].Query {
		t.Fatal("k=1 should return the top interpretation")
	}
}

func TestResultRows(t *testing.T) {
	sys := builtSystem(t)
	results, err := sys.Search("hanks terminal", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Find the join interpretation and execute it.
	for _, r := range results {
		if len(r.Tables) != 3 {
			continue
		}
		rows, err := r.Rows(10)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			continue
		}
		row := rows[0]
		if row["actor.name"] != "Tom Hanks" {
			t.Fatalf("joined row = %v", row)
		}
		if !strings.Contains(row["movie.title"], "Terminal") {
			t.Fatalf("joined row = %v", row)
		}
		return
	}
	t.Fatal("no executable join interpretation found")
}

func TestDiversify(t *testing.T) {
	sys := builtSystem(t)
	div, err := sys.Diversify("london", 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(div) == 0 {
		t.Fatal("empty diversification")
	}
	ranked, err := sys.Search("london", 1)
	if err != nil {
		t.Fatal(err)
	}
	// DivQ drops empty-result interpretations, so the first diversified
	// interpretation is the most relevant non-empty one — its probability
	// cannot exceed the global top's.
	if div[0].Probability > ranked[0].Probability+1e-12 {
		t.Fatalf("diversified head outranks global top: %v vs %v",
			div[0].Probability, ranked[0].Probability)
	}
	// Every diversified interpretation returns results.
	for _, r := range div {
		rows, err := r.Rows(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("diversified interpretation with empty results: %v", r.Query)
		}
	}
}

func TestConstructionSession(t *testing.T) {
	sys := builtSystem(t)
	c, err := sys.Construct("london 2010", ConstructionConfig{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the session towards "London Boulevard the movie from 2010":
	// accept questions mentioning movie.title or movie.year, reject the
	// rest.
	for !c.Done() {
		q, ok := c.Next()
		if !ok {
			break
		}
		if strings.Contains(q.Text, "movie.") {
			c.Accept(q)
		} else {
			c.Reject(q)
		}
	}
	cands := c.Candidates()
	if len(cands) == 0 {
		t.Fatal("construction lost all candidates")
	}
	if c.Steps() == 0 {
		t.Fatal("no questions asked for ambiguous query")
	}
	for _, r := range cands {
		if !strings.Contains(r.Query, "movie") {
			t.Fatalf("candidate does not honour accepted options: %v", r.Query)
		}
	}
}

func TestConstructErrors(t *testing.T) {
	sys, err := New(movieSchema(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Construct("x", ConstructionConfig{}); err == nil {
		t.Fatal("construct before Build accepted")
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Construct("", ConstructionConfig{}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := sys.Construct("qqqq", ConstructionConfig{}); err == nil {
		t.Fatal("unmatched query accepted")
	}
}

func TestDemoDatasets(t *testing.T) {
	movies, err := DemoMovies(1)
	if err != nil {
		t.Fatal(err)
	}
	if movies.NumTables() != 7 {
		t.Fatalf("movies tables = %d", movies.NumTables())
	}
	if movies.NumRows() == 0 || movies.NumTemplates() == 0 {
		t.Fatal("demo movies empty")
	}
	qs := movies.SampleQueries(5)
	if len(qs) == 0 {
		t.Fatal("no sample queries")
	}
	res, err := movies.Search(qs[0], 3)
	if err != nil || len(res) == 0 {
		t.Fatalf("sample query unusable: %v", err)
	}

	music, err := DemoMusic(1)
	if err != nil {
		t.Fatal(err)
	}
	if music.NumTables() != 5 {
		t.Fatalf("music tables = %d", music.NumTables())
	}
}

func TestKeywords(t *testing.T) {
	sys := builtSystem(t)
	ks := sys.Keywords("lon", 0)
	found := false
	for _, k := range ks {
		if k == "london" {
			found = true
		}
		if !strings.HasPrefix(k, "lon") {
			t.Fatalf("keyword %q does not match prefix", k)
		}
	}
	if !found {
		t.Fatal("london missing from prefix search")
	}
	if got := sys.Keywords("", 3); len(got) != 3 {
		t.Fatalf("limit not honoured: %d", len(got))
	}
	unbuilt, err := New(movieSchema(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if unbuilt.Keywords("a", 0) != nil {
		t.Fatal("keywords before Build should be nil")
	}
}

func TestResultSQL(t *testing.T) {
	sys := builtSystem(t)
	results, err := sys.Search("hanks terminal", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		sql, err := r.SQL()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(sql, "SELECT ") || !strings.Contains(sql, "LIKE") {
			t.Fatalf("SQL = %q", sql)
		}
	}
}

func TestSaveLoadSystem(t *testing.T) {
	sys := builtSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRows() != sys.NumRows() || loaded.NumTables() != sys.NumTables() {
		t.Fatal("shape changed across save/load")
	}
	// Search behaviour survives the round trip.
	a, err := sys.Search("london", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search("london", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("interpretations changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query != b[i].Query {
			t.Fatalf("ranking changed at %d: %q vs %q", i, a[i].Query, b[i].Query)
		}
	}
	if _, err := LoadSystem(bytes.NewReader([]byte("junk")), Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
}
