// Command serve runs the keyword-search engine as an HTTP JSON service
// over one of the bundled demo datasets (or a database dump written by
// Engine.SaveTo), optionally persisted in a durable state directory.
//
// Usage:
//
//	go run ./cmd/serve [-addr :8080] [-seed N] [-music] [-db dump] [-ttl 15m]
//	                   [-mutable] [-data-dir DIR] [-answer-cache BYTES]
//	                   [-shards N]
//	                   [-max-concurrent N] [-max-queue N] [-queue-timeout 1s]
//	                   [-request-timeout 5s]
//	                   [-adaptive] [-adapt-min N] [-adapt-max N] [-adapt-window 500ms]
//	                   [-trace] [-query-log DIR] [-slow-query 100ms] [-pprof-addr :6060]
//
// Every flag lands in one validated Config (see config.go), so an
// inconsistent combination — -db with -music, -answer-cache without
// -exec-cache, -shards 0 — fails at startup instead of misserving.
//
// -shards N serves through an N-shard scatter-gather coordinator:
// plan execution is partitioned by row ownership across N shards and
// merged in rank order, with responses byte-identical to -shards 1 on
// the same data (docs/sharding.md). Mutations and durability work
// unchanged — batches commit once through the coordinator under one
// epoch, and a state directory written at any shard count recovers at
// any other. /healthz gains a "shards" block (per-shard row counts,
// cache traffic, merge wave counters).
//
// -answer-cache gives the engine-lifetime materialized answer cache a
// byte budget (0, the default, disables it): hot keyword-bag selections
// and candidate-network results are shared across requests, invalidated
// incrementally by mutation batches, persisted at checkpoint, and
// restored warm on recovery. /healthz reports its occupancy and hit
// counters; see docs/qcache.md.
//
// The overload protection of the serving path comes in two modes.
// Static: -max-concurrent bounds requests executing at once,
// -max-queue bounds the wait line (excess is shed with 429, expired
// waits with 503, both with Retry-After), and -request-timeout gives
// every /v1/ request a default deadline that propagates through the
// engine and maps to 504. Adaptive: -adaptive replaces the static
// limit with the AIMD governor (docs/admission.md) — the concurrency
// limit self-tunes between -adapt-min and -adapt-max from windowed
// p99 observations (-adapt-window), and under queue pressure the
// estimated-heaviest waiters are shed first. -max-queue and
// -queue-timeout size the adaptive queue too. All are off by default;
// /healthz reports every configured limit in its nested "limits"
// object, plus controller state and shed counters.
//
// Observability (docs/observability.md): GET /metrics always serves the
// Prometheus text exposition of the request histograms and serving
// counters. -trace adds a per-request trace (X-Trace-Id on every /v1/
// response, stage timings through parse → interpret → rank → execute →
// merge); -query-log DIR streams one JSONL entry per request — keywords,
// the served interpretation, timings, cost, outcome — to a bounded
// async, size-rotated log; -slow-query dumps the full trace tree of
// requests over the threshold; -pprof-addr serves net/http/pprof on a
// separate listener. The latter two imply -trace.
//
// Quickstart:
//
//	go run ./cmd/serve -mutable -data-dir ./state &
//	curl -s localhost:8080/v1/search -d '{"query":"hanks","k":3}'
//	curl -s localhost:8080/v1/mutate -d '{"mutations":[{"op":"insert","table":"actor","values":["a9001","Nora Ephron"]}]}'
//	curl -s -X POST localhost:8080/v1/checkpoint
//	kill %1   # graceful: drains HTTP, checkpoints, closes the WAL
//	go run ./cmd/serve -mutable -data-dir ./state   # recovers: no rebuild
//
// With -data-dir the boot is open-or-build: an existing state directory
// is recovered (snapshot + write-ahead-log tail, surviving crashes mid-
// write), an empty one is initialised from the selected dataset. On
// SIGINT/SIGTERM the server drains in-flight requests, runs a final
// checkpoint, and closes the log, so the next boot reads one snapshot
// and replays nothing.
//
// See package repro/httpapi for the endpoint and session protocol,
// docs/mutations.md for the live-mutation snapshot model,
// docs/persistence.md for the durability design, and docs/sharding.md
// for the scatter-gather topology.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	keysearch "repro"
	"repro/httpapi"
	"repro/internal/qlog"
)

func main() {
	cfg, err := FromFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}

	eng, err := buildEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine ready: %d tables, %d rows, %d query templates, parallelism %d, mutable %v, durable %v (epoch %d)",
		eng.NumTables(), eng.NumRows(), eng.NumTemplates(), eng.Parallelism(), eng.MutationsEnabled(),
		eng.Durable(), eng.Epoch())
	if stats, ok := eng.AnswerCacheStats(); ok {
		log.Printf("answer cache: budget %d bytes, %d entries restored (%d bytes resident)",
			stats.BudgetBytes, stats.Entries, stats.ResidentBytes)
	}

	// Topology: the engine itself, or an N-shard scatter-gather
	// coordinator over it. Both satisfy keysearch.Searcher, so the HTTP
	// layer is indifferent.
	var topo keysearch.Searcher = eng
	if cfg.Shards > 1 {
		se, err := keysearch.NewShardedEngine(cfg.Shards, eng)
		if err != nil {
			log.Fatal(err)
		}
		topo = se
		log.Printf("topology: %d-shard scatter-gather coordinator", cfg.Shards)
	}

	srvOpts := cfg.ServerOptions()
	if cfg.QueryLogDir != "" {
		qlogger, err := qlog.Open(cfg.QueryLogDir, qlog.Options{})
		if err != nil {
			log.Fatalf("query log: %v", err)
		}
		srvOpts = append(srvOpts, httpapi.WithQueryLog(qlogger))
	}
	srv := httpapi.New(topo, srvOpts...)
	switch {
	case cfg.Adaptive:
		log.Printf("admission: adaptive, limit %d..%d, window %v, max-queue %d, queue-timeout %v",
			cfg.AdaptMin, cfg.AdaptCeiling(), cfg.AdaptWindow, cfg.MaxQueue, cfg.QueueTimeout)
	case cfg.MaxConcurrent > 0:
		log.Printf("admission: max-concurrent %d, max-queue %d, queue-timeout %v",
			cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout)
	}
	log.Print(startupLine(cfg, eng))
	if cfg.PprofAddr != "" {
		go servePprof(cfg.PprofAddr)
	}
	httpSrv := &http.Server{Addr: cfg.Addr, Handler: logRequests(srv)}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// flush durability (final checkpoint + WAL close) before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("shutting down: draining HTTP...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		// The query log closes after the HTTP drain, so entries for the
		// last in-flight requests are flushed, not dropped.
		if err := srv.Close(); err != nil {
			log.Printf("query log close: %v", err)
		}
		if eng.Durable() {
			log.Printf("shutting down: final checkpoint + closing WAL...")
		}
		if err := topo.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}()

	log.Printf("serving on %s (try: curl -s localhost%s/v1/search -d '{\"query\":\"hanks\",\"k\":3}')",
		cfg.Addr, cfg.Addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("bye")
}

// buildEngine implements open-or-build: recover the state directory
// when it holds a snapshot, otherwise build from the dump or demo
// dataset (durably when -data-dir is set, so the next boot recovers).
func buildEngine(cfg *Config) (*keysearch.Engine, error) {
	opts := cfg.EngineOptions()
	if cfg.DataDir != "" {
		eng, err := keysearch.Open(cfg.DataDir, opts...)
		if err == nil {
			log.Printf("recovered state directory %s (replaying WAL tail of %d batches)",
				cfg.DataDir, eng.PendingWALBatches())
			return eng, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		log.Printf("state directory %s is empty: building from dataset", cfg.DataDir)
	}
	switch {
	case cfg.DBPath != "":
		f, err := os.Open(cfg.DBPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return keysearch.Load(f, opts...)
	case cfg.Music:
		// The 5-table chain schema needs join paths of length 5.
		return keysearch.DemoMusicWith(cfg.Seed, opts...)
	default:
		return keysearch.DemoMoviesWith(cfg.Seed, opts...)
	}
}

// startupLine renders the one structured key=value line that pins down
// what this process is: topology, limits, data location, observability
// posture, and the build that produced the binary. Operators grep for
// "serve:" to reconstruct a deployment from its logs alone.
func startupLine(cfg *Config, eng *keysearch.Engine) string {
	goVersion, revision := "", ""
	if info, ok := debug.ReadBuildInfo(); ok {
		goVersion = info.GoVersion
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				revision = kv.Value
			}
		}
	}
	admission := "off"
	switch {
	case cfg.Adaptive:
		admission = fmt.Sprintf("adaptive(%d..%d)", cfg.AdaptMin, cfg.AdaptCeiling())
	case cfg.MaxConcurrent > 0:
		admission = fmt.Sprintf("static(%d)", cfg.MaxConcurrent)
	}
	return fmt.Sprintf("serve: addr=%s shards=%d rows=%d parallelism=%d mutable=%v durable=%v data_dir=%q "+
		"answer_cache_bytes=%d admission=%s request_timeout=%v trace=%v query_log=%q slow_query=%v pprof=%q "+
		"go=%q vcs_revision=%q",
		cfg.Addr, cfg.Shards, eng.NumRows(), eng.Parallelism(), cfg.Mutable, eng.Durable(), cfg.DataDir,
		cfg.AnswerCacheBytes, admission, cfg.RequestTimeout, cfg.Trace, cfg.QueryLogDir, cfg.SlowQuery,
		cfg.PprofAddr, goVersion, revision)
}

// servePprof stands the net/http/pprof handlers up on their own
// listener, so profiling traffic never competes with (or leaks onto)
// the serving address.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof listening on %s (try: go tool pprof http://localhost%s/debug/pprof/profile)", addr, addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("pprof server: %v", err)
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
