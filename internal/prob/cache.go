package prob

import (
	"strings"
	"sync"

	"repro/internal/invindex"
	"repro/internal/query"
)

// scoreCache memoises the pure sub-terms of interpretation scores: the
// template prior P(T), the per-keyword-interpretation probability
// P(Ai:ki | T∩Ai), and the DivQ joint co-occurrence probability
// P(A:[k1..kn] | A). All three are deterministic functions of the
// immutable index and the catalogue state at Model construction, so
// memoisation is transparent to ranking. sync.Map fits the access
// pattern: each key is written once and read many times, concurrently.
//
// The cache deliberately keys keyword probabilities on (kind, keyword,
// target) rather than the positional ki.Key(): the probability of
// "hanks" ∈ actor.name is independent of the keyword's position in the
// query, so repeats across positions and across requests share one entry.
type scoreCache struct {
	prior sync.Map // template ID (int) -> float64
	kw    sync.Map // keyword sub-term key (string) -> float64
	joint sync.Map // attr + keyword bag key (string) -> float64
}

func newScoreCache() *scoreCache {
	return &scoreCache{}
}

// kwKey is the position-independent identity of a keyword sub-term.
func kwKey(ki query.KeywordInterpretation) string {
	var sb strings.Builder
	sb.WriteString(ki.Kind.String())
	sb.WriteByte(0)
	sb.WriteString(ki.Keyword)
	sb.WriteByte(0)
	switch ki.Kind {
	case query.KindTable:
		sb.WriteString(ki.Table)
	case query.KindAggregate:
		sb.WriteString(ki.Agg)
	default:
		sb.WriteString(ki.Attr.String())
	}
	return sb.String()
}

// jointKey identifies a joint value probability: the attribute plus the
// bound keyword bag in binding order (binding order is deterministic, so
// equal bags in equal order share an entry).
func jointKey(keywords []string, attr invindex.AttrRef) string {
	var sb strings.Builder
	sb.WriteString(attr.String())
	for _, k := range keywords {
		sb.WriteByte(0)
		sb.WriteString(k)
	}
	return sb.String()
}

// templatePrior returns the cached prior, computing and storing it on the
// first request for the template.
func (c *scoreCache) templatePrior(id int, compute func() float64) float64 {
	if v, ok := c.prior.Load(id); ok {
		return v.(float64)
	}
	p := compute()
	c.prior.Store(id, p)
	return p
}

// keywordProb returns the cached keyword sub-term probability.
func (c *scoreCache) keywordProb(ki query.KeywordInterpretation, compute func() float64) float64 {
	k := kwKey(ki)
	if v, ok := c.kw.Load(k); ok {
		return v.(float64)
	}
	p := compute()
	c.kw.Store(k, p)
	return p
}

// jointProb returns the cached joint value probability.
func (c *scoreCache) jointProb(keywords []string, attr invindex.AttrRef, compute func() float64) float64 {
	k := jointKey(keywords, attr)
	if v, ok := c.joint.Load(k); ok {
		return v.(float64)
	}
	p := compute()
	c.joint.Store(k, p)
	return p
}
