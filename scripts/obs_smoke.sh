#!/bin/sh
# obs-smoke: end-to-end check of the observability stack against a real
# server process (not httptest) — the same binary and flags an operator
# runs. Starts cmd/serve with tracing, the query log, and a 1ms
# slow-query threshold, drives a few requests, then asserts:
#   1. /metrics passes a scrape and contains one series of each core
#      family (requests, latency histogram, served counter, epoch,
#      query-log writes);
#   2. every /v1/ response carried an X-Trace-Id;
#   3. the query log contains parseable JSONL whose entries round-trip
#      through Go's decoder with the fields the feedback loop needs.
# Exits non-zero on the first violation. Needs only go + a POSIX shell.
set -eu

DIR="$(mktemp -d)"
QLOG="$DIR/qlog"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
LOG="$DIR/serve.log"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    [ -n "${PID:-}" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building cmd/serve..."
go build -o "$DIR/serve" ./cmd/serve

echo "obs-smoke: starting server on $ADDR (query log: $QLOG)..."
"$DIR/serve" -addr "$ADDR" -query-log "$QLOG" -slow-query 1ms >"$LOG" 2>&1 &
PID=$!

# Wait for readiness via /healthz (bypasses everything, answers early).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "obs-smoke: FAIL server did not become ready"; cat "$LOG"; exit 1
    fi
    sleep 0.1
done

echo "obs-smoke: driving requests..."
hdrs="$DIR/hdrs"
for q in hanks "hanks 1994" "hanks drama"; do
    curl -sf -D "$hdrs" -o /dev/null "$BASE/v1/search" -d "{\"query\":\"$q\",\"k\":3}"
    grep -qi '^x-trace-id:' "$hdrs" || {
        echo "obs-smoke: FAIL /v1/search response missing X-Trace-Id"; exit 1; }
done
curl -sf "$BASE/v1/rows" -d '{"query":"hanks","k":2}' >/dev/null
curl -sf "$BASE/v1/diversify" -d '{"query":"hanks","k":3}' >/dev/null
# One construct dialogue, so the log records a session.
curl -sf "$BASE/v1/construct" \
    -d '{"action":"start","start":{"query":"hanks"}}' >/dev/null

echo "obs-smoke: scraping /metrics..."
METRICS="$DIR/metrics.txt"
curl -sf "$BASE/metrics" >"$METRICS"
for family in \
    'keysearch_requests_total{endpoint="search",code="200"}' \
    'keysearch_request_duration_seconds_bucket{endpoint="search",le="+Inf"}' \
    keysearch_served_total \
    keysearch_snapshot_epoch \
    keysearch_querylog_written_total; do
    grep -qF "$family" "$METRICS" || {
        echo "obs-smoke: FAIL /metrics is missing $family"; cat "$METRICS"; exit 1; }
done

# The slow-query threshold is 1ms, so at least one request must have
# dumped its trace tree ("spans") to the server log.
i=0
until grep -q 'slow query:' "$LOG" && grep -q '"spans"' "$LOG"; do
    i=$((i + 1))
    if [ "$i" -ge 20 ]; then
        echo "obs-smoke: FAIL no slow-query trace dump in server log"; cat "$LOG"; exit 1
    fi
    sleep 0.1
done

echo "obs-smoke: draining server (SIGTERM flushes the query log)..."
kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "obs-smoke: decoding query log..."
go run ./cmd/qlogcheck -dir "$QLOG" -min 5

echo "obs-smoke: PASS"
