package prob

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/invindex"
	"repro/internal/query"
)

// scoreCache memoises the pure sub-terms of interpretation scores: the
// template prior P(T), the per-keyword-interpretation probability
// P(Ai:ki | T∩Ai), and the DivQ joint co-occurrence probability
// P(A:[k1..kn] | A). All three are deterministic functions of the
// immutable index and the catalogue state at Model construction, so
// memoisation is transparent to ranking. sync.Map fits the access
// pattern: each key is written once and read many times, concurrently.
//
// The cache deliberately keys keyword probabilities on (kind, keyword,
// target) rather than the positional ki.Key(): the probability of
// "hanks" ∈ actor.name is independent of the keyword's position in the
// query, so repeats across positions and across requests share one entry.
type scoreCache struct {
	prior sync.Map // template ID (int) -> float64
	kw    sync.Map // keyword sub-term key (string) -> float64
	joint sync.Map // attr + keyword bag key (string) -> float64
	// size counts stored kw+joint entries (stores happen once per key),
	// so InheritCache can bound its transplant walk without iterating.
	size atomic.Int64
}

func newScoreCache() *scoreCache {
	return &scoreCache{}
}

// kwKey is the position-independent identity of a keyword sub-term.
func kwKey(ki query.KeywordInterpretation) string {
	var sb strings.Builder
	sb.WriteString(ki.Kind.String())
	sb.WriteByte(0)
	sb.WriteString(ki.Keyword)
	sb.WriteByte(0)
	switch ki.Kind {
	case query.KindTable:
		sb.WriteString(ki.Table)
	case query.KindAggregate:
		sb.WriteString(ki.Agg)
	default:
		sb.WriteString(ki.Attr.String())
	}
	return sb.String()
}

// jointKey identifies a joint value probability: the attribute plus the
// bound keyword bag in binding order (binding order is deterministic, so
// equal bags in equal order share an entry).
func jointKey(keywords []string, attr invindex.AttrRef) string {
	var sb strings.Builder
	sb.WriteString(attr.String())
	for _, k := range keywords {
		sb.WriteByte(0)
		sb.WriteString(k)
	}
	return sb.String()
}

// maxInheritedEntries bounds the transplant walk of InheritCache: past
// this size, copying the warmed cache under the writer lock would cost
// more per batch than letting the next queries re-memoise, so the new
// snapshot starts with a cold kw/joint cache (priors, a handful of
// floats, always transfer). The bound keeps Apply latency proportional
// to the batch even on servers whose query diversity has grown the
// cache without limit.
const maxInheritedEntries = 1 << 16

// InheritCache transplants the surviving memoised sub-terms of old's
// cache into m's, dropping every entry whose value depends on a stale
// attribute (keys of staleAttrs are "table.column" strings). It is the
// cache-invalidation half of incremental index maintenance: after a
// mutation batch, the rebased model keeps the sub-terms of untouched
// attributes — template priors depend only on the (immutable) catalogue
// and survive wholesale; schema-term probabilities are configuration
// constants and survive too; value and joint probabilities are functions
// of one attribute's statistics and survive iff that attribute is clean.
//
// The transplant walk is O(cached entries), capped by
// maxInheritedEntries; memoisation is transparent, so skipping the
// transplant never changes a score, only re-derivation cost.
//
// Call before the new model is published; InheritCache is not
// synchronised against concurrent scoring on m.
func (m *Model) InheritCache(old *Model, staleAttrs map[string]bool) {
	if m.cache == nil || old == nil || old.cache == nil {
		return
	}
	if old.cache.size.Load() > maxInheritedEntries {
		old.cache.prior.Range(func(k, v any) bool {
			m.cache.prior.Store(k, v)
			return true
		})
		return
	}
	valueKind := query.KindValue.String()
	old.cache.prior.Range(func(k, v any) bool {
		m.cache.prior.Store(k, v)
		return true
	})
	old.cache.kw.Range(func(k, v any) bool {
		key := k.(string)
		// kwKey layout: kind \x00 keyword \x00 target.
		if kind, rest, ok := strings.Cut(key, "\x00"); ok && kind == valueKind {
			if _, attr, ok := strings.Cut(rest, "\x00"); ok && staleAttrs[attr] {
				return true
			}
		}
		m.cache.kw.Store(k, v)
		m.cache.size.Add(1)
		return true
	})
	old.cache.joint.Range(func(k, v any) bool {
		// jointKey layout: attr \x00 keyword [\x00 keyword ...].
		if attr, _, ok := strings.Cut(k.(string), "\x00"); ok && staleAttrs[attr] {
			return true
		}
		m.cache.joint.Store(k, v)
		m.cache.size.Add(1)
		return true
	})
}

// templatePrior returns the cached prior, computing and storing it on the
// first request for the template.
func (c *scoreCache) templatePrior(id int, compute func() float64) float64 {
	if v, ok := c.prior.Load(id); ok {
		return v.(float64)
	}
	p := compute()
	c.prior.Store(id, p)
	return p
}

// keywordProb returns the cached keyword sub-term probability.
func (c *scoreCache) keywordProb(ki query.KeywordInterpretation, compute func() float64) float64 {
	k := kwKey(ki)
	if v, ok := c.kw.Load(k); ok {
		return v.(float64)
	}
	p := compute()
	if _, loaded := c.kw.LoadOrStore(k, p); !loaded {
		c.size.Add(1)
	}
	return p
}

// jointProb returns the cached joint value probability.
func (c *scoreCache) jointProb(keywords []string, attr invindex.AttrRef, compute func() float64) float64 {
	k := jointKey(keywords, attr)
	if v, ok := c.joint.Load(k); ok {
		return v.(float64)
	}
	p := compute()
	if _, loaded := c.joint.LoadOrStore(k, p); !loaded {
		c.size.Add(1)
	}
	return p
}
