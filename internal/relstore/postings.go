package relstore

import (
	"sort"
	"strings"
)

// This file implements the per-column token posting lists that back the
// keyword-containment selections of the execution engine. A posting list
// records, for one token of one column, the ascending RowIDs whose value
// contains the token together with the per-row occurrence count, so that
// the bag-containment predicate of Definition 3.5.2 — including bags with
// duplicated keywords — evaluates as a sorted-list intersection instead of
// tokenizing every cell on every call (the classic inverted-postings
// evaluation of DISCOVER-style candidate-network executors).
//
// Lists are built once per column (lazily on first use, or eagerly via
// Database.Prepare) and are immutable afterwards except for the
// insert-before-read phase, which appends incrementally exactly like the
// equality indexes. The original scan evaluation is retained as
// SelectContainsScan / ExecuteScan for differential testing.

// postingList is the posting list of one token within one column.
type postingList struct {
	// rows holds the RowIDs whose value contains the token, ascending.
	rows []int
	// counts holds the per-row occurrence count, parallel to rows.
	counts []int
	// maxCount is the largest per-row count, so selections needing more
	// duplicated occurrences than any row has can answer "empty" at once.
	maxCount int
}

// add records one row's occurrences; rows arrive in ascending RowID order.
func (p *postingList) add(row, count int) {
	p.rows = append(p.rows, row)
	p.counts = append(p.counts, count)
	if count > p.maxCount {
		p.maxCount = count
	}
}

// columnPostings maps token -> posting list for one column.
type columnPostings struct {
	terms map[string]*postingList
}

// addRow tokenizes one value and folds it into the postings.
func (cp *columnPostings) addRow(row int, value string) {
	toks := Tokenize(value)
	if len(toks) == 0 {
		return
	}
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	for tok, c := range counts {
		pl := cp.terms[tok]
		if pl == nil {
			pl = &postingList{}
			cp.terms[tok] = pl
		}
		pl.add(row, c)
	}
}

// buildColumnPostings constructs the postings of one column from scratch,
// skipping tombstoned rows.
func (t *Table) buildColumnPostings(col int) *columnPostings {
	cp := &columnPostings{terms: make(map[string]*postingList)}
	for _, r := range t.rows {
		if !t.Live(r.RowID) {
			continue
		}
		cp.addRow(r.RowID, r.Values[col])
	}
	return cp
}

// ensurePostings returns the postings of the column, building them on
// first use. Safe for concurrent readers: the fast path is a read-lock
// map hit; construction happens once under the write lock.
func (t *Table) ensurePostings(col int) *columnPostings {
	t.postMu.RLock()
	cp := t.postings[col]
	t.postMu.RUnlock()
	if cp != nil {
		return cp
	}
	t.postMu.Lock()
	defer t.postMu.Unlock()
	if cp := t.postings[col]; cp != nil {
		return cp
	}
	cp = t.buildColumnPostings(col)
	t.postings[col] = cp
	return cp
}

// selectPostings evaluates the bag-containment selection over the column's
// posting lists: one sorted list per distinct keyword (rows needing the
// keyword n times are pre-filtered by per-row counts), intersected
// smallest-first. The result is ascending and must be treated as
// read-only — single-keyword selections alias the posting list itself.
func (t *Table) selectPostings(ci int, keywords []string) []int {
	if len(keywords) == 0 {
		return t.allRowIDs()
	}
	cp := t.ensurePostings(ci)
	// Bag semantics: duplicated keywords need duplicated occurrences.
	need := make(map[string]int, len(keywords))
	for _, k := range keywords {
		need[strings.ToLower(k)]++
	}
	lists := make([][]int, 0, len(need))
	for k, n := range need {
		pl := cp.terms[k]
		if pl == nil {
			return nil
		}
		if n <= 1 {
			lists = append(lists, pl.rows)
			continue
		}
		if pl.maxCount < n {
			return nil
		}
		var filtered []int
		for i, row := range pl.rows {
			if pl.counts[i] >= n {
				filtered = append(filtered, row)
			}
		}
		if len(filtered) == 0 {
			return nil
		}
		lists = append(lists, filtered)
	}
	if len(lists) == 1 {
		return lists[0]
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// intersectSorted intersects two ascending RowID lists into a new slice.
func intersectSorted(a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// allRowIDs returns a fresh ascending slice of all live RowIDs (RowIDs
// are assigned densely from 0 in insertion order; tombstones are skipped).
func (t *Table) allRowIDs() []int {
	out := make([]int, 0, t.NumLive())
	for i := range t.rows {
		if t.Live(i) {
			out = append(out, i)
		}
	}
	return out
}

// Prepare eagerly builds the derived read structures the execution engine
// uses — posting lists over every indexed column and equality indexes over
// primary-key and foreign-key columns — so that a built database serves
// its first query at steady-state speed and concurrent readers never
// contend on lazy construction. Building is idempotent; Prepare is called
// by the engine's Build step but is optional for standalone use (every
// structure also builds lazily on first use).
func (db *Database) Prepare() {
	for _, name := range db.order {
		t := db.tables[name]
		for ci, c := range t.Schema.Columns {
			if c.Indexed {
				t.ensurePostings(ci)
			}
		}
		if pk := t.Schema.PrimaryKey; pk != "" {
			if ci := t.Schema.ColumnIndex(pk); ci >= 0 {
				t.ensureIndex(ci)
			}
		}
		for _, fk := range t.Schema.ForeignKeys {
			if ci := t.Schema.ColumnIndex(fk.Column); ci >= 0 {
				t.ensureIndex(ci)
			}
			if ref := db.tables[fk.RefTable]; ref != nil {
				if ci := ref.Schema.ColumnIndex(fk.RefColumn); ci >= 0 {
					ref.ensureIndex(ci)
				}
			}
		}
	}
}
