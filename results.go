package keysearch

import (
	"strings"

	"repro/internal/invindex"
	"repro/internal/query"
)

// parseLabeled splits a keyword query supporting the labelled syntax of
// Section 2.2.7: a token of the form "label:keyword" restricts the
// keyword to attributes whose column name (or "table.column") matches
// the label. Plain tokens are unrestricted.
func parseLabeled(keywords string) (toks []string, labels map[int]string) {
	labels = make(map[int]string)
	for _, field := range strings.Fields(keywords) {
		if i := strings.LastIndex(field, ":"); i > 0 && i < len(field)-1 {
			label := strings.ToLower(field[:i])
			kwToks := parse(field[i+1:])
			for _, kt := range kwToks {
				labels[len(toks)] = label
				toks = append(toks, kt)
			}
			continue
		}
		toks = append(toks, parse(field)...)
	}
	return toks, labels
}

// labelMatches reports whether the attribute satisfies the label: the
// label equals the column name, the table name, or "table.column".
func labelMatches(label string, attr invindex.AttrRef) bool {
	return label == attr.Column || label == attr.Table || label == attr.String()
}

// applyLabels filters each labelled keyword's candidates to the
// attributes matching its label.
func applyLabels(c *query.Candidates, labels map[int]string) {
	for pos, label := range labels {
		if pos >= len(c.PerKeyword) {
			continue
		}
		var kept []query.KeywordInterpretation
		for _, ki := range c.PerKeyword[pos] {
			switch ki.Kind {
			case query.KindValue:
				if labelMatches(label, ki.Attr) {
					kept = append(kept, ki)
				}
			default:
				// Labelled keywords are value keywords by construction.
			}
		}
		c.PerKeyword[pos] = kept
		if len(kept) == 0 {
			c.Unmatched = append(c.Unmatched, pos)
		}
	}
}

// detectSegments finds adjacent keyword pairs that form phrases: both
// unlabelled, with a phrase-pair score at or above the threshold
// (Section 2.2.1's query segmentation). Runs of phrased pairs merge into
// one segment ("tom hanks movie" with phrased tom–hanks yields
// [[0 1]]). The pair scores come from the request's pinned snapshot.
func detectSegments(ix *invindex.Index, toks []string, labels map[int]string, threshold float64) [][]int {
	var segments [][]int
	var cur []int
	flush := func() {
		if len(cur) >= 2 {
			seg := make([]int, len(cur))
			copy(seg, cur)
			segments = append(segments, seg)
		}
		cur = nil
	}
	for i := 0; i+1 < len(toks); i++ {
		_, l1 := labels[i]
		_, l2 := labels[i+1]
		if l1 || l2 || ix.PhrasePairScore(toks[i], toks[i+1]) < threshold {
			flush()
			continue
		}
		if len(cur) == 0 {
			cur = []int{i}
		}
		cur = append(cur, i+1)
	}
	flush()
	return segments
}
