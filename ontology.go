package keysearch

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/freeq"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/yagof"
)

// Ontology is a class taxonomy that can be layered over an Engine's
// schema to accelerate interactive query construction on very large
// schemas (the FreeQ approach, Chapter 5) and to organise tables
// semantically (the YAGO+F structure, Chapter 6).
type Ontology struct {
	o *ontology.Ontology
}

// NewOntology creates an ontology with the given root class name.
func NewOntology(root string) *Ontology {
	return &Ontology{o: ontology.New(root)}
}

// AddClass adds a subclass under the named parent.
func (o *Ontology) AddClass(name, parent string) error {
	pid, ok := o.o.ByName(parent)
	if !ok {
		return fmt.Errorf("keysearch: unknown parent class %q", parent)
	}
	_, err := o.o.AddClass(name, pid)
	return err
}

// MapTable attaches a database table to the named class.
func (o *Ontology) MapTable(class, table string) error {
	cid, ok := o.o.ByName(class)
	if !ok {
		return fmt.Errorf("keysearch: unknown class %q", class)
	}
	o.o.MapTable(cid, table)
	return nil
}

// AddInstance records an instance identifier as a member of the class
// (used by instance-overlap matching).
func (o *Ontology) AddInstance(class, instance string) error {
	cid, ok := o.o.ByName(class)
	if !ok {
		return fmt.Errorf("keysearch: unknown class %q", class)
	}
	o.o.AddInstance(cid, instance)
	return nil
}

// NumClasses returns the number of classes including the root.
func (o *Ontology) NumClasses() int { return o.o.NumClasses() }

// OntologyConstruction is an interactive construction session that asks
// class-level questions first ("Is «london» a person?"), scaling to
// schemas with thousands of tables. Like Construction, a session belongs
// to one client dialogue; run independent sessions concurrently instead.
type OntologyConstruction struct {
	eng  *Engine
	snap *snapshot
	sess *freeq.Session
}

// ConstructWithOntology starts a FreeQ-style construction session using
// the ontology's class structure for its questions. Like Construct, the
// session pins the engine snapshot current at its start.
func (e *Engine) ConstructWithOntology(ctx context.Context, req ConstructRequest, o *Ontology) (*OntologyConstruction, error) {
	s := e.current()
	if s == nil {
		return nil, fmt.Errorf("keysearch: call Build before constructing")
	}
	toks := parse(req.Query)
	if len(toks) == 0 {
		return nil, fmt.Errorf("keysearch: empty keyword query")
	}
	c, err := query.GenerateCandidatesContext(ctx, s.ix, toks, query.GenerateOptionsConfig{
		IncludeSchemaTerms: e.cfg.includeSchemaTerms,
	})
	if err != nil {
		return nil, err
	}
	sess, err := freeq.NewSessionContext(ctx, s.model, c, o.o, freeq.Config{
		StopAtRemaining: req.StopAtRemaining,
	})
	if err != nil {
		return nil, err
	}
	return &OntologyConstruction{eng: e, snap: s, sess: sess}, nil
}

// Done reports whether the session has converged.
func (c *OntologyConstruction) Done() bool { return c.sess.Done() }

// Steps returns the number of questions answered so far.
func (c *OntologyConstruction) Steps() int { return c.sess.Steps() }

// SpaceSize returns the current size bound of the interpretation space.
func (c *OntologyConstruction) SpaceSize() int { return c.sess.SpaceSize() }

// OntologyQuestion is one FreeQ question; IsClassQuestion distinguishes
// class-level questions from attribute-level refinements.
type OntologyQuestion struct {
	Text            string `json:"text"`
	IsClassQuestion bool   `json:"is_class_question"`
	// TargetTables lists the tables the question's acceptance keeps.
	TargetTables []string `json:"target_tables,omitempty"`

	opt freeq.Option
}

// Next returns the next question, or ok=false when nothing can split the
// space further.
func (c *OntologyConstruction) Next() (OntologyQuestion, bool) {
	opt, ok := c.sess.NextOption()
	if !ok {
		return OntologyQuestion{}, false
	}
	seen := map[string]bool{}
	var tables []string
	for _, ki := range opt.KIs {
		t := ki.TargetTable()
		if !seen[t] {
			seen[t] = true
			tables = append(tables, t)
		}
	}
	return OntologyQuestion{
		Text:            opt.Describe(),
		IsClassQuestion: opt.Class >= 0,
		TargetTables:    tables,
		opt:             opt,
	}, true
}

// Accept confirms the question. The context cancels the materialisation
// the answer may trigger.
func (c *OntologyConstruction) Accept(ctx context.Context, q OntologyQuestion) error {
	return c.sess.AcceptContext(ctx, q.opt)
}

// Reject denies the question.
func (c *OntologyConstruction) Reject(ctx context.Context, q OntologyQuestion) error {
	return c.sess.RejectContext(ctx, q.opt)
}

// Candidates returns the remaining structured queries once materialised.
func (c *OntologyConstruction) Candidates() []Result {
	return c.eng.wrap(c.snap, c.sess.Remaining())
}

// OntologyMatch is one table-to-class match found by instance overlap.
type OntologyMatch struct {
	Table string  `json:"table"`
	Class string  `json:"class"`
	Score float64 `json:"score"`
}

// MatchTables matches database tables to ontology classes by instance
// overlap (the YAGO+F matching of Chapter 6): instances maps each table
// to its instance identifiers; a table matches the class covering the
// largest fraction of them, if that fraction reaches threshold.
func (o *Ontology) MatchTables(instances map[string][]string, threshold float64) []OntologyMatch {
	ms := yagof.MatchTables(o.o, instances, yagof.MatchConfig{Threshold: threshold})
	out := make([]OntologyMatch, len(ms))
	for i, m := range ms {
		out[i] = OntologyMatch{Table: m.Table, Class: m.ClassName, Score: m.Score}
	}
	return out
}

// ApplyMatches maps the matched tables into the ontology so construction
// sessions can use them.
func (o *Ontology) ApplyMatches(matches []OntologyMatch) error {
	for _, m := range matches {
		if err := o.MapTable(m.Class, m.Table); err != nil {
			return err
		}
	}
	return nil
}

// KnowledgeBase bundles the demo large-scale dataset: a flat multi-domain
// database (synthetic Freebase), a class taxonomy with shared instances
// (synthetic YAGO), the per-table instance sets, and the ground-truth
// concept of every table.
type KnowledgeBase struct {
	Engine   *Engine
	Ontology *Ontology
	// Instances maps table -> instance identifiers (for matching).
	Instances map[string][]string
	// Concepts maps table -> ground-truth concept name (for evaluating a
	// matching); the corresponding ontology class is "wordnet_<concept>".
	Concepts map[string]string
}

// DemoKnowledgeBase generates the bundled large-scale dataset: `domains`
// domains of `tablesPerDomain` entity tables each, plus a matching
// taxonomy. The ontology is returned *unmapped*: call
// Ontology.MatchTables + ApplyMatches (the YAGO+F workflow) or map tables
// from Concepts directly.
func DemoKnowledgeBase(domains, tablesPerDomain int, seed int64) (*KnowledgeBase, error) {
	cs := datagen.NewConceptSpace(40, 20, 120, seed)
	fd, err := datagen.Freebase(cs, datagen.FreebaseConfig{
		Domains: domains, TablesPerDomain: tablesPerDomain, RowsPerTable: 10, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	eng := fromDatabase(fd.DB, WithMaxJoinPath(2), WithMaxTemplates(100000))
	if err := eng.Build(); err != nil {
		return nil, err
	}
	onto := datagen.YAGO(cs, datagen.YAGOConfig{Seed: seed + 2})
	return &KnowledgeBase{
		Engine:    eng,
		Ontology:  &Ontology{o: onto},
		Instances: fd.InstancesOf,
		Concepts:  fd.ConceptOf,
	}, nil
}

// MapGroundTruth maps every table onto its ground-truth concept class —
// the shortcut used when a gold mapping is available (the generator's
// role for what YAGO+F produces for real data).
func (kb *KnowledgeBase) MapGroundTruth() int {
	return freeq.MapConceptTables(kb.Ontology.o, kb.Concepts)
}

// ConstructPlain runs an attribute-level (IQP-style) construction over
// the knowledge base, for comparing against ConstructWithOntology.
func (kb *KnowledgeBase) ConstructPlain(ctx context.Context, req ConstructRequest) (*Construction, error) {
	return kb.Engine.Construct(ctx, req)
}
