// Package benchqc measures what the engine-lifetime answer cache
// (internal/qcache) buys on the workload it was built for: a
// Zipf-skewed repeated-query stream — the shape real keyword-search
// logs have — against a million-row dataset. It stands up the real
// HTTP server twice over identically built engines, one with the
// answer cache and one without, drives both with the same skewed op
// stream after identical warmups, and reports the throughput ratio.
//
// The machine-transferable column is speedup_vs_cold: cache-on
// throughput divided by cache-off throughput, measured within one run
// on one machine, so it transfers across hosts and CI runners where
// raw req/s numbers do not. The hit_rate and resident/high-water byte
// columns prove the ratio came from the cache actually serving hot
// answers inside its budget, not from noise.
package benchqc

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	keysearch "repro"
	"repro/httpapi"
	"repro/internal/loadgen"
)

// Config sizes the answer-cache measurement.
type Config struct {
	// TargetRows is the generated dataset size (default 1,000,000;
	// quick mode 25,000).
	TargetRows int
	// Seed fixes dataset and workload generation (default 42).
	Seed int64
	// StepDuration is the length of each measured leg; warmups run half
	// of it (default 5s; quick 700ms).
	StepDuration time.Duration
	// Workers is the closed-loop concurrency of both legs (default 8).
	Workers int
	// BudgetBytes is the answer-cache byte budget (default 64 MiB).
	BudgetBytes int64
	// ZipfS and HotSet shape the repeated-query stream (defaults 1.4
	// over 16 distinct queries).
	ZipfS  float64
	HotSet int
	// Quick selects the CI-sized variant of all defaults.
	Quick bool
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TargetRows <= 0 {
		if c.Quick {
			c.TargetRows = 25000
		} else {
			c.TargetRows = 1000000
		}
	}
	if c.StepDuration <= 0 {
		if c.Quick {
			c.StepDuration = 700 * time.Millisecond
		} else {
			c.StepDuration = 5 * time.Second
		}
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.BudgetBytes <= 0 {
		c.BudgetBytes = 64 << 20
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.4
	}
	if c.HotSet <= 0 {
		c.HotSet = 16
	}
}

// Row is one measured leg of BENCH_qcache.json.
type Row struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Requests      int64   `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	Errors        int64   `json:"errors,omitempty"`
	// SpeedupVsCold is the transferable guard column, set on the
	// cache-on leg only: its throughput divided by the cache-off leg's.
	SpeedupVsCold float64 `json:"speedup_vs_cold,omitempty"`
	// HitRate is the cache hit fraction over the measured leg only
	// (warmup traffic excluded); cache-on leg only.
	HitRate float64 `json:"hit_rate,omitempty"`
	// ResidentBytes / HighWaterBytes prove the hot set lived inside its
	// byte budget; cache-on leg only.
	ResidentBytes  int64 `json:"resident_bytes,omitempty"`
	HighWaterBytes int64 `json:"high_water_bytes,omitempty"`
}

// Report is the top-level shape of BENCH_qcache.json (wrapped with host
// metadata by cmd/bench).
type Report struct {
	Dataset       string  `json:"dataset"`
	DatasetRows   int     `json:"dataset_rows"`
	WorkloadOps   int     `json:"workload_ops"`
	ZipfS         float64 `json:"zipf_s"`
	HotSet        int     `json:"hot_set"`
	BudgetBytes   int64   `json:"budget_bytes"`
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
	HitRate       float64 `json:"hit_rate"`
	Rows          []Row   `json:"rows"`
}

// Measure runs both legs. Progress lines go through logf (may be nil)
// because the full-size run builds two million-row engines.
func Measure(cfg Config, logf func(format string, args ...any)) (*Report, error) {
	cfg.defaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}

	dcfg := loadgen.DatasetConfig{Kind: loadgen.KindMovies, TargetRows: cfg.TargetRows, Seed: cfg.Seed}
	logf("building %d-row movies dataset (seed %d)...", cfg.TargetRows, cfg.Seed)
	db, err := loadgen.BuildDataset(dcfg)
	if err != nil {
		return nil, err
	}
	// Row retrieval is where execution cost lives (the joins), so the
	// stream leans on it: that is the work a hot answer amortises.
	ops, err := loadgen.BuildWorkload(db, dcfg.Kind, loadgen.WorkloadConfig{
		Ops:    512,
		Seed:   cfg.Seed,
		Mix:    loadgen.Mix{Search: 20, Rows: 60, Diversify: 20},
		ZipfS:  cfg.ZipfS,
		HotSet: cfg.HotSet,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:     fmt.Sprintf("datagen movies target=%d seed=%d", cfg.TargetRows, cfg.Seed),
		DatasetRows: db.NumRows(),
		WorkloadOps: len(ops),
		ZipfS:       cfg.ZipfS,
		HotSet:      cfg.HotSet,
		BudgetBytes: cfg.BudgetBytes,
	}

	// Leg 1: cache-off baseline.
	logf("building cache-off engine...")
	off, err := runLeg(cfg, dcfg, ops, logf)
	if err != nil {
		return nil, err
	}
	offRow := Row{Name: "zipf-cache-off", Workers: cfg.Workers, Requests: off.res.Requests,
		ThroughputRPS: off.res.ThroughputRPS, P50MS: off.res.P50MS, P95MS: off.res.P95MS,
		P99MS: off.res.P99MS, Errors: off.res.Errors}
	rep.Rows = append(rep.Rows, offRow)
	logf("  cache-off: %s", off.res)

	// Leg 2: cache-on, identically built and warmed.
	logf("building cache-on engine (budget %d bytes)...", cfg.BudgetBytes)
	on, err := runLeg(cfg, dcfg, ops, logf, keysearch.WithAnswerCache(cfg.BudgetBytes))
	if err != nil {
		return nil, err
	}
	onRow := Row{Name: "zipf-cache-on", Workers: cfg.Workers, Requests: on.res.Requests,
		ThroughputRPS: on.res.ThroughputRPS, P50MS: on.res.P50MS, P95MS: on.res.P95MS,
		P99MS: on.res.P99MS, Errors: on.res.Errors}
	if off.res.ThroughputRPS > 0 {
		onRow.SpeedupVsCold = on.res.ThroughputRPS / off.res.ThroughputRPS
	}
	onRow.HitRate = on.hitRate
	onRow.ResidentBytes = on.stats.ResidentBytes
	onRow.HighWaterBytes = on.stats.HighWaterBytes
	rep.Rows = append(rep.Rows, onRow)
	rep.SpeedupVsCold = onRow.SpeedupVsCold
	rep.HitRate = onRow.HitRate
	logf("  cache-on:  %s", on.res)
	logf("speedup %.2fx, hit rate %.1f%%, resident %d / budget %d bytes (high water %d)",
		rep.SpeedupVsCold, 100*rep.HitRate, onRow.ResidentBytes, cfg.BudgetBytes, onRow.HighWaterBytes)

	if on.stats.HighWaterBytes > cfg.BudgetBytes {
		return nil, fmt.Errorf("benchqc: cache high-water %d exceeded budget %d",
			on.stats.HighWaterBytes, cfg.BudgetBytes)
	}
	return rep, nil
}

type legResult struct {
	res     *loadgen.Result
	stats   keysearch.AnswerCacheStats
	hitRate float64
}

// runLeg builds a fresh engine (dataset generation is deterministic, so
// both legs see byte-identical data), warms it for half a step — the
// score cache on both legs, plus the answer cache on the cache-on leg,
// so the measured delta is the answer cache alone, not warmup noise —
// then measures a closed-loop run.
func runLeg(cfg Config, dcfg loadgen.DatasetConfig, ops []loadgen.Op,
	logf func(string, ...any), extra ...keysearch.Option) (*legResult, error) {
	eng, err := loadgen.BuildEngine(dcfg, extra...)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(httpapi.New(eng))
	defer ts.Close()
	ctx := context.Background()
	base := loadgen.Options{BaseURL: ts.URL, Ops: ops, Workers: cfg.Workers}

	warm := base
	warm.Duration = cfg.StepDuration / 2
	logf("  warmup %v, then measuring %v at %d workers...", warm.Duration, cfg.StepDuration, cfg.Workers)
	if _, err := loadgen.Run(ctx, warm); err != nil {
		return nil, err
	}
	before, _ := eng.AnswerCacheStats()

	meas := base
	meas.Duration = cfg.StepDuration
	res, err := loadgen.Run(ctx, meas)
	if err != nil {
		return nil, err
	}
	if res.Errors > 0 {
		return nil, fmt.Errorf("benchqc: leg produced %d errors", res.Errors)
	}

	out := &legResult{res: res}
	if stats, ok := eng.AnswerCacheStats(); ok {
		out.stats = stats
		hits := stats.Hits - before.Hits
		misses := stats.Misses - before.Misses
		if hits+misses > 0 {
			out.hitRate = float64(hits) / float64(hits+misses)
		}
	}
	return out, nil
}
