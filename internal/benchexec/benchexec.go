// Package benchexec is the executor benchmark harness: it measures plan
// execution — the storage-engine hot path of a top-k request — in
// isolation from interpretation generation and ranking.
//
// The workload mirrors what one Engine.SearchRows request makes the
// storage layer do: execute the ranked candidate networks of an ambiguous
// keyword query (dozens of join plans that keep recombining the same
// keyword selections) with a per-plan materialisation limit. The harness
// builds the same scaled demo movie dataset as the pipeline benchmark
// (datagen.IMDB at 2.5×), derives a real ranked interpretation list via
// the query/prob machinery, and then runs only the execution stage under
// three engines:
//
//   - scan:           the reference executor (full table scans per
//     predicate, map-based membership) — relstore.ExecuteScan,
//   - postings:       compiled plans over posting-list selections with
//     semi-join pruning — relstore.Execute,
//   - postings+cache: the same with one per-request SelectionCache shared
//     across all plans, as the serving path uses it,
//
// plus a count leg (CountRows over every plan, the allocation-free
// cardinality probe). Two front-ends consume the harness: the
// BenchmarkExecute* functions (go test -bench=Execute) for interactive
// runs and CI smoke, and cmd/bench, which writes BENCH_executor.json so
// the executor's perf trajectory is tracked from PR to PR.
package benchexec

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// Seed and Scale pin the dataset to the pipeline benchmark's (≈1000
// movies, 750 actors), so the two artifacts describe the same data.
const (
	Seed  = 21
	Scale = 2.5
)

// MaxPlans caps the ranked candidate networks executed per simulated
// request, and PerPlanLimit the JTTs materialised per plan — the
// PerInterpretationLimit a SearchRows request with K=10 uses.
const (
	MaxPlans     = 40
	PerPlanLimit = 40
)

// Mode selects the execution engine of one benchmark leg.
type Mode string

const (
	// ModeScan is the scan-based reference executor.
	ModeScan Mode = "scan"
	// ModePostings is the compiled posting-list executor, no cache.
	ModePostings Mode = "postings"
	// ModeCached is the compiled executor with one selection cache per
	// request (the serving configuration).
	ModeCached Mode = "postings+cache"
	// ModeCount counts every plan's results via the allocation-free
	// CountRows instead of materialising them.
	ModeCount Mode = "count"
)

// Modes lists every benchmark leg in report order.
func Modes() []Mode { return []Mode{ModeScan, ModePostings, ModeCached, ModeCount} }

// Env is the lazily built benchmark environment: the scaled database and
// the ranked join plans of the benchmark query.
type Env struct {
	once  sync.Once
	err   error
	db    *relstore.Database
	plans []*relstore.JoinPlan
	query string
}

// NewEnv creates an environment; the dataset is built on first use.
func NewEnv() *Env { return &Env{} }

// init builds the dataset and derives the ranked plan list once.
func (e *Env) init() {
	e.once.Do(func() {
		db, err := datagen.IMDB(datagen.IMDBConfig{
			Movies:    int(400 * Scale),
			Actors:    int(300 * Scale),
			Directors: int(80 * Scale),
			Companies: int(40 * Scale),
			Seed:      Seed,
		})
		if err != nil {
			e.err = err
			return
		}
		db.Prepare()
		ix := invindex.Build(db)
		graph := schemagraph.FromDatabase(db)
		cat := query.BuildCatalog(graph, schemagraph.EnumerateOptions{MaxNodes: 4})
		model := prob.New(ix, cat, prob.Config{UseCoOccurrence: true})

		keywords := sampleKeywords(ix, db, 2)
		if len(keywords) < 2 {
			e.err = fmt.Errorf("benchexec: only %d ambiguous sample keywords", len(keywords))
			return
		}
		e.query = keywords[0] + " " + keywords[1]
		cands := query.GenerateCandidates(ix, keywords, query.GenerateOptionsConfig{})
		ranked := model.Rank(query.GenerateComplete(cands, cat, query.GenerateConfig{}))
		if len(ranked) > MaxPlans {
			ranked = ranked[:MaxPlans]
		}
		for _, sc := range ranked {
			plan, err := sc.Q.JoinPlan()
			if err != nil {
				e.err = err
				return
			}
			e.plans = append(e.plans, plan)
		}
		if len(e.plans) == 0 {
			e.err = fmt.Errorf("benchexec: no executable plans for %q", e.query)
			return
		}
		e.db = db
	})
}

// sampleKeywords picks the first n tokens (length >= 4) that occur in
// more than one attribute — the ambiguous keywords that fan a query out
// into many candidate networks (the same heuristic as
// Engine.SampleQueries).
func sampleKeywords(ix *invindex.Index, db *relstore.Database, n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, attr := range ix.Attributes() {
		t := db.Table(attr.Table)
		ci := t.Schema.ColumnIndex(attr.Column)
		for _, row := range t.Rows() {
			for _, tok := range relstore.Tokenize(row.Values[ci]) {
				if seen[tok] || len(tok) < 4 {
					continue
				}
				if len(ix.Lookup(tok)) > 1 {
					seen[tok] = true
					out = append(out, tok)
					if len(out) >= n {
						return out
					}
				}
			}
		}
	}
	return out
}

// Plans returns the number of candidate networks one request executes.
func (e *Env) Plans() (int, error) {
	e.init()
	return len(e.plans), e.err
}

// Query returns the benchmark's keyword query.
func (e *Env) Query() (string, error) {
	e.init()
	return e.query, e.err
}

// RunRequest executes one simulated request under the given mode and
// returns the total number of results materialised (or counted).
func (e *Env) RunRequest(mode Mode) (int, error) {
	e.init()
	if e.err != nil {
		return 0, e.err
	}
	var cache *relstore.SelectionCache
	if mode == ModeCached || mode == ModeCount {
		cache = relstore.NewSelectionCache()
	}
	total := 0
	for _, p := range e.plans {
		switch mode {
		case ModeScan:
			jtts, err := e.db.ExecuteScan(p, relstore.ExecuteOptions{Limit: PerPlanLimit})
			if err != nil {
				return 0, err
			}
			total += len(jtts)
		case ModeCount:
			n, err := e.db.CountCached(p, PerPlanLimit, cache)
			if err != nil {
				return 0, err
			}
			total += n
		default:
			jtts, err := e.db.Execute(p, relstore.ExecuteOptions{Limit: PerPlanLimit, Cache: cache})
			if err != nil {
				return 0, err
			}
			total += len(jtts)
		}
	}
	return total, nil
}

// Verify cross-checks that every mode produces the same result total, so
// a benchmark run cannot silently measure diverging engines.
func (e *Env) Verify() error {
	want := -1
	for _, m := range Modes() {
		got, err := e.RunRequest(m)
		if err != nil {
			return err
		}
		if want == -1 {
			want = got
		} else if got != want {
			return fmt.Errorf("benchexec: mode %s produced %d results, want %d", m, got, want)
		}
	}
	if want == 0 {
		return fmt.Errorf("benchexec: workload produced no results")
	}
	return nil
}

// Run executes one mode inside a testing benchmark body.
func (e *Env) Run(b *testing.B, mode Mode) {
	if _, err := e.RunRequest(mode); err != nil { // warm build outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunRequest(mode); err != nil {
			b.Fatal(err)
		}
	}
}

// Row is one measured leg as persisted to BENCH_executor.json.
type Row struct {
	Name        string `json:"name"`
	Ops         int    `json:"ops"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// SpeedupVsScan is the scan leg's ns/op divided by this row's ns/op.
	SpeedupVsScan float64 `json:"speedup_vs_scan,omitempty"`
}

// Report is the top-level measurement set: the workload shape plus one
// row per leg.
type Report struct {
	Query   string `json:"query"`
	Plans   int    `json:"plans"`
	PerPlan int    `json:"per_plan_limit"`
	Dataset string `json:"dataset"`
	Rows    []Row  `json:"rows"`
}

// Measure runs every leg through testing.Benchmark and derives speedups
// against the scan baseline.
func Measure() (*Report, error) {
	env := NewEnv()
	if err := env.Verify(); err != nil {
		return nil, err
	}
	plans, _ := env.Plans()
	q, _ := env.Query()
	rep := &Report{
		Query:   q,
		Plans:   plans,
		PerPlan: PerPlanLimit,
		Dataset: "demo-movies scaled 2.5x",
	}
	var firstErr error
	for _, mode := range Modes() {
		mode := mode
		r := testing.Benchmark(func(b *testing.B) {
			if firstErr != nil {
				b.Skip("earlier leg failed")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := env.RunRequest(mode); err != nil {
					firstErr = err
					b.Skip(err)
				}
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		rep.Rows = append(rep.Rows, Row{
			Name:        string(mode),
			Ops:         r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	var scanNs int64
	for _, r := range rep.Rows {
		if r.Name == string(ModeScan) {
			scanNs = r.NsPerOp
		}
	}
	for i := range rep.Rows {
		if scanNs > 0 && rep.Rows[i].NsPerOp > 0 {
			rep.Rows[i].SpeedupVsScan = float64(scanNs) / float64(rep.Rows[i].NsPerOp)
		}
	}
	return rep, nil
}
