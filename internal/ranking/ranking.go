// Package ranking provides the query-interpretation ranking functions
// compared in Section 3.8.3:
//
//   - the IQP probability ranking (prob.Model.Rank, re-exported here with
//     the interaction-cost accounting of a ranked-list query construction
//     plan), and
//   - the SQAK baseline, reconstructed from the thesis's description: a
//     query interpretation is a graph whose score aggregates per-node and
//     per-edge scores; keyword-free nodes and edges carry unit costs;
//     keyword-bearing nodes carry a cost inversely related to their
//     Lucene-style TF-IDF score, so Steiner-tree minimisation prefers
//     shorter joins and distinctive (high-IDF) matches. SQAK ranks by
//     ascending total cost.
//
// The thesis observes (§3.8.3) that IQP's ATF prefers typical
// interpretations while SQAK's TF-IDF prefers distinctive ones, and that
// Steiner-tree minimisation fails on the Lyrics chain joins. Both
// behaviours fall out of this reconstruction.
package ranking

import (
	"math"
	"sort"

	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
)

// SQAK is the baseline ranker.
type SQAK struct {
	ix *invindex.Index
}

// NewSQAK builds the baseline over an index.
func NewSQAK(ix *invindex.Index) *SQAK { return &SQAK{ix: ix} }

// Cost returns the SQAK cost of an interpretation: the sum of unit edge
// costs, unit free-node costs, and keyword-node costs 1/(1+tfidf). Lower
// cost means a better (higher-ranked) interpretation.
func (s *SQAK) Cost(q *query.Interpretation) float64 {
	if q.Template == nil {
		return math.Inf(1)
	}
	tree := q.Template.Tree
	cost := float64(len(tree.TreeEdges)) // unit edge scores
	// Group value bindings per occurrence.
	perOcc := make(map[int][]query.Binding)
	for _, b := range q.Bindings {
		if b.KI.Kind == query.KindValue {
			perOcc[b.Occ] = append(perOcc[b.Occ], b)
		}
	}
	for occ := 0; occ < tree.Size(); occ++ {
		bs := perOcc[occ]
		if len(bs) == 0 {
			cost++ // free node: unit score
			continue
		}
		cost += 1 / (1 + s.nodeTFIDF(bs))
	}
	return cost
}

// nodeTFIDF is the Lucene-style TF-IDF score of a node containing one or
// more keywords: the Boolean AND score — the sum over keywords of
// sqrt(tf) · idf² · lengthNorm, scaled by the coord factor (fraction of
// query keywords matched in the node). As in Lucene, tf is the per-field
// (per matching tuple) term frequency and idf is computed per field
// (attribute), so a keyword that is rare within an attribute is
// distinctive there — the behaviour that makes SQAK interpret "Garcia" as
// a movie title while ATF interprets it as the typical actor name
// (Section 3.8.3). Keywords absent from the node's attribute contribute
// nothing.
func (s *SQAK) nodeTFIDF(bindings []query.Binding) float64 {
	score := 0.0
	matched := 0
	for _, b := range bindings {
		count := float64(s.ix.TermCount(b.KI.Keyword, b.KI.Attr))
		docs := float64(s.ix.DocCount(b.KI.Keyword, b.KI.Attr))
		if count == 0 || docs == 0 {
			continue
		}
		matched++
		tf := count / docs // average per-document term frequency
		idf := s.ix.IDF(b.KI.Keyword, b.KI.Attr)
		norm := s.lengthNorm(b.KI.Attr)
		score += math.Sqrt(tf) * idf * idf * norm
	}
	if len(bindings) > 1 {
		score *= float64(matched) / float64(len(bindings)) // coord factor
	}
	return score
}

// lengthNorm is Lucene's 1/sqrt(avg field length) document-length
// normalisation, computed per attribute.
func (s *SQAK) lengthNorm(attr invindex.AttrRef) float64 {
	docs := s.ix.AttrDocs(attr)
	if docs == 0 {
		return 0
	}
	avg := float64(s.ix.AttrTokens(attr)) / float64(docs)
	if avg <= 0 {
		return 0
	}
	return 1 / math.Sqrt(avg)
}

// Ranked pairs an interpretation with its SQAK cost.
type Ranked struct {
	Q    *query.Interpretation
	Cost float64
}

// Rank sorts interpretations by ascending SQAK cost, breaking ties on the
// interpretation key for determinism.
func (s *SQAK) Rank(space []*query.Interpretation) []Ranked {
	out := make([]Ranked, len(space))
	for i, q := range space {
		out[i] = Ranked{Q: q, Cost: s.Cost(q)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Q.Key() < out[j].Q.Key()
	})
	return out
}

// RankOf returns the 1-based rank of the interpretation with the given key
// in a SQAK ranking, or 0 when absent. The rank is the interaction cost of
// a ranked-list query construction plan (Section 3.5.5): the user examines
// every interpretation prior to the intended one.
func RankOf(ranked []Ranked, key string) int {
	for i, r := range ranked {
		if r.Q.Key() == key {
			return i + 1
		}
	}
	return 0
}

// ProbRankOf is the IQP counterpart of RankOf over a probability ranking.
func ProbRankOf(ranked []prob.Scored, key string) int {
	for i, r := range ranked {
		if r.Q.Key() == key {
			return i + 1
		}
	}
	return 0
}
