// Package divq implements DivQ — diversification of keyword-search
// results over structured data (Chapter 4). Diversification happens at
// the query-interpretation level, before any results are materialised:
// given the probability-ranked interpretations of a keyword query, DivQ
// re-ranks them to balance relevance against novelty (Equation 4.4) using
// the Jaccard similarity of their keyword-interpretation sets
// (Definition 4.4.1 / Equation 4.3) and the greedy selection with
// score-upper-bound early stopping of Algorithm 4.1.
package divq

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
)

// Similarity is the Jaccard coefficient between the keyword-interpretation
// sets of two query interpretations (Equation 4.3). 1 means identical
// element sets; 0 means disjoint.
func Similarity(a, b *query.Interpretation) float64 {
	setA := make(map[string]bool, len(a.Bindings))
	for _, bd := range a.Bindings {
		setA[bd.KI.Key()] = true
	}
	if len(setA) == 0 && len(b.Bindings) == 0 {
		return 1
	}
	inter, union := 0, len(setA)
	seenB := make(map[string]bool, len(b.Bindings))
	for _, bd := range b.Bindings {
		k := bd.KI.Key()
		if seenB[k] {
			continue
		}
		seenB[k] = true
		if setA[k] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Config tunes diversification.
type Config struct {
	// Lambda trades relevance against novelty (Equation 4.4): 1 = pure
	// relevance ranking, 0.5 = balanced, <0.5 emphasises novelty. The
	// evaluation of Section 4.6.3 uses 0.1.
	Lambda float64
	// K is the number of interpretations to select.
	K int
	// DisableEarlyStop turns off the score-upper-bound early stop of
	// Algorithm 4.1 (ablation; results are identical, only slower).
	DisableEarlyStop bool
}

// Diversify re-ranks the probability-ranked interpretation list into the
// top-K relevant-and-diverse list per Algorithm 4.1. The input must be
// sorted by descending probability (as produced by prob.Model.Rank); the
// first output element is always the most relevant interpretation.
//
// Per Section 4.4.4, relevance and similarity are normalised to equal
// means before λ-weighting.
func Diversify(ranked []prob.Scored, cfg Config) []prob.Scored {
	r := cfg.K
	if r <= 0 || r > len(ranked) {
		r = len(ranked)
	}
	if len(ranked) == 0 || r == 0 {
		return nil
	}
	lambda := cfg.Lambda

	// Normalisation: scale similarities so their mean matches the mean
	// relevance over the candidate list.
	meanRel := 0.0
	for _, s := range ranked {
		meanRel += s.Prob
	}
	meanRel /= float64(len(ranked))
	simSum, simCnt := 0.0, 0
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			simSum += Similarity(ranked[i].Q, ranked[j].Q)
			simCnt++
		}
	}
	simScale := 1.0
	if simCnt > 0 && simSum > 0 {
		simScale = meanRel / (simSum / float64(simCnt))
	}

	// Working copy L, output R (Algorithm 4.1).
	L := make([]prob.Scored, len(ranked))
	copy(L, ranked)
	out := make([]prob.Scored, 0, r)
	out = append(out, L[0])

	score := func(cand prob.Scored) float64 {
		simAvg := 0.0
		for _, sel := range out {
			simAvg += Similarity(cand.Q, sel.Q)
		}
		simAvg = simAvg * simScale / float64(len(out))
		return lambda*cand.Prob - (1-lambda)*simAvg
	}

	for i := 1; i < r; i++ {
		j := i
		bestScore := negInf
		c := -1
		for j < len(L) {
			// Early stop: candidates are sorted by probability, and the
			// achievable score is bounded by λ·P(L[j]) because the
			// similarity penalty is non-negative.
			if !cfg.DisableEarlyStop && c >= 0 && bestScore > lambda*L[j].Prob {
				break
			}
			if s := score(L[j]); s > bestScore {
				bestScore = s
				c = j
			}
			j++
		}
		if c < 0 {
			break
		}
		out = append(out, L[c])
		// Swap L[i..c-1] and L[c]: move the chosen element into position i
		// keeping the remainder sorted by probability.
		chosen := L[c]
		copy(L[i+1:c+1], L[i:c])
		L[i] = chosen
	}
	return out
}

const negInf = -1e308

// ResultNuggets executes the interpretation and returns the identities of
// the tuples in its results — the information nuggets / subtopics of the
// adapted metrics (Section 4.5). limit caps materialisation (0 =
// unlimited).
func ResultNuggets(db *relstore.Database, q *query.Interpretation, limit int) ([]string, error) {
	plan, err := q.JoinPlan()
	if err != nil {
		return nil, err
	}
	jtts, err := db.Execute(plan, relstore.ExecuteOptions{Limit: limit})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, jtt := range jtts {
		for _, key := range jtt.Keys(plan) {
			s := fmt.Sprintf("%s#%d", key.Table, key.RowID)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// HasResults reports whether the interpretation returns at least one
// result; DivQ assigns zero probability to empty interpretations
// (Section 4.4.2).
func HasResults(db *relstore.Database, q *query.Interpretation) (bool, error) {
	plan, err := q.JoinPlan()
	if err != nil {
		return false, err
	}
	n, err := db.Count(plan, 1)
	if err != nil {
		return false, err
	}
	return n > 0, nil
}

// FilterNonEmpty keeps the interpretations with non-empty results,
// preserving order. It is the context-free convenience form of
// FilterNonEmptyContext.
func FilterNonEmpty(db *relstore.Database, ranked []prob.Scored) ([]prob.Scored, error) {
	return FilterNonEmptyContext(context.Background(), db, ranked)
}

// FilterNonEmptyContext is FilterNonEmpty with cancellation: each
// interpretation requires one probe join, so the context is checked
// before every probe and an abandoned request stops executing. The
// probes of one call share a selection cache — the interpretations of a
// query mostly recombine the same (table, column, keyword-bag)
// selections, so each is evaluated once per request.
func FilterNonEmptyContext(ctx context.Context, db *relstore.Database, ranked []prob.Scored) ([]prob.Scored, error) {
	return FilterNonEmptyCached(ctx, db, ranked, relstore.NewSelectionCache())
}

// FilterNonEmptyCached is FilterNonEmptyContext with a caller-supplied
// selection cache; nil disables caching (the executor then evaluates
// every probe's selections directly).
func FilterNonEmptyCached(ctx context.Context, db *relstore.Database, ranked []prob.Scored, cache *relstore.SelectionCache) ([]prob.Scored, error) {
	return FilterNonEmptyExec(ctx, &relstore.LocalExecutor{DB: db, Cache: cache}, ranked)
}

// FilterNonEmptyExec is the executor-generic form of the non-empty
// filter: emptiness probes go through any relstore.PlanExecutor (local
// or scatter-gather), so diversification works unchanged over a sharded
// topology. Every executor counts exactly as Database.Count does, so the
// surviving interpretation list is identical regardless of topology.
func FilterNonEmptyExec(ctx context.Context, exec relstore.PlanExecutor, ranked []prob.Scored) ([]prob.Scored, error) {
	var out []prob.Scored
	for _, s := range ranked {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := s.Q.JoinPlan()
		if err != nil {
			return nil, err
		}
		n, err := exec.CountPlan(plan, 1)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			out = append(out, s)
		}
	}
	return out, nil
}

// ToItems converts a ranked interpretation list into metrics items: the
// graded relevance per interpretation comes from the supplied assessment
// function (the user-study scores of Section 4.6.2, or their simulation),
// and the nuggets are the materialised result identities.
func ToItems(db *relstore.Database, ranked []prob.Scored, relevance func(*query.Interpretation) float64, limit int) ([]metrics.Item, error) {
	out := make([]metrics.Item, 0, len(ranked))
	for _, s := range ranked {
		nuggets, err := ResultNuggets(db, s.Q, limit)
		if err != nil {
			return nil, err
		}
		out = append(out, metrics.Item{Relevance: relevance(s.Q), Nuggets: nuggets})
	}
	return out, nil
}

// ProbabilityRatio computes the PR_i series of Figure 4.1: for each rank
// i ≥ 1 (0-based index ≥ 1), the ratio of the probability at rank i to
// the aggregated probability of ranks < i.
func ProbabilityRatio(ranked []prob.Scored) []float64 {
	out := make([]float64, len(ranked))
	prefix := 0.0
	for i, s := range ranked {
		if i == 0 {
			out[i] = 1
		} else if prefix > 0 {
			out[i] = s.Prob / prefix
		}
		prefix += s.Prob
	}
	return out
}

// FilterNonEmptyParallel is FilterNonEmpty with concurrent emptiness
// probes: each interpretation's count-1 execution is independent, so the
// probes run on a bounded worker pool while the output preserves the
// input order. Results are identical to FilterNonEmpty.
func FilterNonEmptyParallel(db *relstore.Database, ranked []prob.Scored, workers int) ([]prob.Scored, error) {
	if workers <= 1 || len(ranked) < 2 {
		return FilterNonEmpty(db, ranked)
	}
	if workers > len(ranked) {
		workers = len(ranked)
	}
	type verdict struct {
		ok  bool
		err error
	}
	verdicts := make([]verdict, len(ranked))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ok, err := HasResults(db, ranked[i].Q)
				verdicts[i] = verdict{ok: ok, err: err}
			}
		}()
	}
	for i := range ranked {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var out []prob.Scored
	for i, v := range verdicts {
		if v.err != nil {
			return nil, v.err
		}
		if v.ok {
			out = append(out, ranked[i])
		}
	}
	return out, nil
}
