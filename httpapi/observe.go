package httpapi

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	keysearch "repro"
	"repro/internal/metrics"
	"repro/internal/qlog"
	"repro/internal/trace"
)

// Observability of the serving path (docs/observability.md):
//
//   - WithTracing attaches a per-request trace (internal/trace) that
//     travels the whole stack — admission wait, parse/interpret/rank,
//     plan execution per shard, merge — and surfaces as the X-Trace-Id
//     response header (adopted from the client's X-Trace-Id when sent,
//     so load-test client views correlate with server traces).
//   - WithQueryLog streams one JSONL entry per served /v1/ request to a
//     bounded async logger (internal/qlog) — the substrate of the
//     ranking feedback loop, recording keywords, the served
//     interpretation, construct-session choices, timings, and cost.
//   - WithSlowQueryLog dumps the full trace tree of requests slower
//     than a threshold to the server log.
//   - GET /metrics exposes request histograms and the serving counters
//     in Prometheus text format (hand-rolled; internal/metrics).
//
// Per-endpoint latency histograms and status counters are always
// recorded (they are what /metrics serves); traces, query-log entries,
// and slow dumps exist only when their options are on. None of it can
// change a response: recording is observation-only, pinned by the
// differential tests.

// WithTracing enables per-request tracing on the /v1/ endpoints.
func WithTracing() Option {
	return func(s *Server) { s.tracingOn = true }
}

// WithQueryLog routes one structured entry per served /v1/ request to
// l (opened by the caller, who owns error handling for the log
// directory; Server.Close closes it). Implies WithTracing — entries
// carry stage timings, which need the trace.
func WithQueryLog(l *qlog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.qlog = l
			s.tracingOn = true
		}
	}
}

// WithSlowQueryLog dumps the full trace of any /v1/ request that takes
// at least threshold, one JSON line per trace, to the standard logger.
// Implies WithTracing. threshold <= 0 disables.
func WithSlowQueryLog(threshold time.Duration) Option {
	return func(s *Server) {
		if threshold > 0 {
			s.slowThreshold = threshold
			s.tracingOn = true
		}
	}
}

// WithSlowQueryOutput redirects slow-query dumps (tests, custom log
// routing). The default prints through the log package.
func WithSlowQueryOutput(f func(format string, v ...any)) Option {
	return func(s *Server) {
		if f != nil {
			s.slowf = f
		}
	}
}

// opMetrics is one endpoint's always-on recording: a latency histogram
// and completion counts by status code.
type opMetrics struct {
	hist     *metrics.LatencyHistogram
	statuses map[int]int64
}

// obsMetrics aggregates per-endpoint serving metrics for /metrics. One
// mutex over all endpoints is fine at request granularity: the critical
// section is one histogram record and a map increment.
type obsMetrics struct {
	mu  sync.Mutex
	ops map[string]*opMetrics
}

func newObsMetrics() *obsMetrics {
	return &obsMetrics{ops: make(map[string]*opMetrics)}
}

func (m *obsMetrics) record(op string, status int, d time.Duration) {
	m.mu.Lock()
	om := m.ops[op]
	if om == nil {
		om = &opMetrics{hist: metrics.NewLatencyHistogram(), statuses: make(map[int]int64)}
		m.ops[op] = om
	}
	om.hist.Record(d)
	om.statuses[status]++
	m.mu.Unlock()
}

// obsRecord is the per-request scratchpad handlers annotate with what
// they learned (the keyword query, the served interpretation, construct
// session facts) so the completion hook can build the query-log entry.
// One request = one goroutine, so no locking.
type obsRecord struct {
	op            string
	query         string
	interp        string
	interpProb    float64
	sessionID     string
	action        string
	done          bool
	servedChoice  string
	results       int
	estimatedCost int64
}

type obsKey struct{}

// obsFrom returns the request's observation record, nil when the
// request is not observed (all annotation helpers tolerate nil).
func obsFrom(r *http.Request) *obsRecord {
	o, _ := r.Context().Value(obsKey{}).(*obsRecord)
	return o
}

func (o *obsRecord) noteQuery(q string) {
	if o != nil {
		o.query = q
	}
}

// noteResults records the result count and the served (top-ranked)
// interpretation of a ranked response.
func (o *obsRecord) noteResults(results []keysearch.Result) {
	if o == nil {
		return
	}
	o.results = len(results)
	if len(results) > 0 {
		o.interp = results[0].Query
		o.interpProb = results[0].Probability
	}
}

func (o *obsRecord) noteRowCount(n int) {
	if o != nil {
		o.results = n
	}
}

func (o *obsRecord) noteInterp(q string, prob float64) {
	if o != nil {
		o.interp, o.interpProb = q, prob
	}
}

// noteConstruct records the dialogue facts of one construct step; when
// the dialogue is finished — converged, or out of narrowing questions —
// the top remaining candidate is the served choice: the selection
// signal the ranking feedback loop trains on.
func (o *obsRecord) noteConstruct(action string, resp ConstructStepResponse) {
	if o == nil {
		return
	}
	o.action = action
	o.sessionID = resp.SessionID
	o.done = resp.Done
	if (resp.Done || resp.Question == nil) && len(resp.Candidates) > 0 {
		o.servedChoice = resp.Candidates[0].Query
	}
}

// requestObservation is the live observation of one /v1/ request.
type requestObservation struct {
	s     *Server
	tr    *trace.Trace // nil when tracing is off
	rec   *obsRecord
	op    string
	start time.Time
}

// beginObserve starts observing one /v1/ request: derives the endpoint
// name, creates the trace (adopting the client's X-Trace-Id) when
// tracing is on, installs trace and record into the request context,
// and sets the X-Trace-Id response header. Returns the observation and
// the request to continue with.
func (s *Server) beginObserve(w http.ResponseWriter, r *http.Request) (*requestObservation, *http.Request) {
	ob := &requestObservation{
		s:     s,
		rec:   &obsRecord{},
		op:    strings.TrimPrefix(r.URL.Path, "/v1/"),
		start: time.Now(),
	}
	ctx := r.Context()
	if s.tracingOn {
		ob.tr = trace.New(r.Header.Get("X-Trace-Id"))
		w.Header().Set("X-Trace-Id", ob.tr.ID())
		ctx = trace.NewContext(ctx, ob.tr)
	}
	ctx = context.WithValue(ctx, obsKey{}, ob.rec)
	return ob, r.WithContext(ctx)
}

// admissionWait attributes the time a request spent getting through
// the admission gate (zero for instant admission).
func (ob *requestObservation) admissionWait(d time.Duration) {
	ob.tr.CountDuration("admission_wait_ns", d)
}

// setCost records the admission cost estimate (adaptive path, or
// computed for the query log).
func (ob *requestObservation) setCost(c int64) {
	ob.rec.estimatedCost = c
}

// finish completes the observation: always records the endpoint
// histogram and status counter; when enabled, emits the query-log
// entry and the slow-query dump.
func (ob *requestObservation) finish(status int) {
	dur := time.Since(ob.start)
	ob.s.obs.record(ob.op, status, dur)

	var data trace.Data
	if ob.tr != nil {
		data = ob.tr.Snapshot()
	}
	if ob.s.qlog != nil {
		rec := ob.rec
		ob.s.qlog.Log(qlog.Entry{
			TraceID:            ob.tr.ID(),
			Op:                 ob.op,
			Status:             status,
			Outcome:            outcomeFor(status),
			Query:              rec.query,
			Interpretation:     rec.interp,
			InterpretationProb: rec.interpProb,
			SessionID:          rec.sessionID,
			Action:             rec.action,
			Done:               rec.done,
			ServedChoice:       rec.servedChoice,
			EstimatedCost:      rec.estimatedCost,
			DurationUS:         dur.Microseconds(),
			ShardFanout:        fanoutOf(data),
			Results:            rec.results,
			StagesUS:           data.StageDurations(),
			Counters:           data.Counters,
		})
	}
	if ob.s.slowThreshold > 0 && dur >= ob.s.slowThreshold {
		ob.s.slowf("slow query: op=%s status=%d dur=%v trace=%s", ob.op, status, dur, data.JSON())
	}
}

// outcomeFor classifies a completion status for the query log.
func outcomeFor(status int) string {
	switch {
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return "shed"
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status == 499:
		return "canceled"
	case status >= 400:
		return "error"
	default:
		return "ok"
	}
}

// fanoutOf reads the shard fan-out annotation the sharded provider
// leaves on the trace (0 on a single-process topology or untraced
// requests).
func fanoutOf(d trace.Data) int {
	n, _ := strconv.Atoi(d.Annotations["shard_fanout"])
	return n
}

// handleMetrics serves GET /metrics: the Prometheus text exposition of
// the per-endpoint request histograms, the serving/admission counters,
// engine state, the answer cache, the shard topology, and the query
// log's own delivery counters. Like /healthz it bypasses admission —
// scraping must work exactly when the server is saturated.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := metrics.NewPromText()

	s.obs.mu.Lock()
	ops := make([]string, 0, len(s.obs.ops))
	for op := range s.obs.ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		om := s.obs.ops[op]
		codes := make([]int, 0, len(om.statuses))
		for c := range om.statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p.Counter("keysearch_requests_total", "Completed /v1/ requests by endpoint and status code.",
				float64(om.statuses[c]), metrics.Label{Name: "endpoint", Value: op},
				metrics.Label{Name: "code", Value: strconv.Itoa(c)})
		}
	}
	for _, op := range ops {
		p.HistogramNS("keysearch_request_duration_seconds", "Request latency by endpoint.",
			s.obs.ops[op].hist, metrics.Label{Name: "endpoint", Value: op})
	}
	s.obs.mu.Unlock()

	snap := s.stats.Snapshot()
	p.Gauge("keysearch_in_flight_requests", "Requests currently executing inside handlers.", float64(snap.InFlight))
	p.Gauge("keysearch_in_flight_requests_max", "High-water mark of in-flight requests.", float64(snap.MaxInFlight))
	p.Gauge("keysearch_queued_requests", "Requests waiting in the admission queue.", float64(snap.Queued))
	p.Gauge("keysearch_queued_requests_max", "High-water mark of queued requests.", float64(snap.MaxQueued))
	p.Counter("keysearch_served_total", "Admitted requests run to completion.", float64(snap.Served))
	p.Counter("keysearch_shed_total", "Requests shed by the admission gate, by reason.",
		float64(snap.ShedQueueFull), metrics.Label{Name: "reason", Value: "queue_full"})
	p.Counter("keysearch_shed_total", "Requests shed by the admission gate, by reason.",
		float64(snap.ShedQueueTimeout), metrics.Label{Name: "reason", Value: "queue_timeout"})
	p.Counter("keysearch_deadline_exceeded_total", "Admitted requests that exceeded their deadline (504s).",
		float64(snap.DeadlineExceeded))

	st := s.eng.Stats()
	p.Gauge("keysearch_snapshot_epoch", "Current snapshot epoch (+1 per committed mutation batch).", float64(st.Epoch))
	p.Gauge("keysearch_wal_batches", "Mutation batches a crash right now would replay.", float64(st.WALBatches))

	if ac := st.AnswerCache; ac != nil {
		p.Counter("keysearch_answer_cache_hits_total", "Answer-cache hits.", float64(ac.Hits))
		p.Counter("keysearch_answer_cache_misses_total", "Answer-cache misses.", float64(ac.Misses))
		p.Counter("keysearch_answer_cache_evictions_total", "Answer-cache evictions under budget pressure.", float64(ac.Evictions))
		p.Counter("keysearch_answer_cache_invalidations_total", "Answer-cache entries invalidated by mutations.", float64(ac.Invalidations))
		p.Gauge("keysearch_answer_cache_resident_bytes", "Answer-cache resident bytes.", float64(ac.ResidentBytes))
		p.Gauge("keysearch_answer_cache_entries", "Answer-cache resident entries.", float64(ac.Entries))
	}

	if sh := st.Shards; sh != nil {
		p.Counter("keysearch_shard_scatters_total", "Plan executions scattered across the shards.", float64(sh.Scatters))
		p.Counter("keysearch_shard_count_scatters_total", "Count probes scattered across the shards.", float64(sh.CountScatters))
		p.Counter("keysearch_shard_merged_results_total", "Results emitted by the coordinator's rank-order merge.", float64(sh.MergedResults))
		for i, one := range sh.Shards {
			lbl := metrics.Label{Name: "shard", Value: strconv.Itoa(i)}
			p.Gauge("keysearch_shard_rows", "Live rows owned by each shard.", float64(one.Rows), lbl)
			p.Counter("keysearch_shard_execs_total", "Partitioned plan executions per shard.", float64(one.Execs), lbl)
			p.Counter("keysearch_shard_results_total", "Results contributed per shard.", float64(one.Results), lbl)
			p.Counter("keysearch_shard_selection_hits_total", "Shared-selection-store hits per shard.", float64(one.SelectionHits), lbl)
			p.Counter("keysearch_shard_selections_computed_total", "Selections computed per shard.", float64(one.SelectionsComputed), lbl)
		}
	}

	if s.agov != nil {
		gs := s.agate.Stats()
		p.Gauge("keysearch_adaptive_limit", "Adaptive governor's current concurrency limit.", float64(gs.Limit))
		p.Gauge("keysearch_adaptive_queued", "Requests queued at the adaptive gate.", float64(gs.Queued))
	}

	if s.qlog != nil {
		p.Counter("keysearch_querylog_written_total", "Query-log entries handed to the OS.", float64(s.qlog.Written()))
		p.Counter("keysearch_querylog_dropped_total", "Query-log entries dropped under backpressure.", float64(s.qlog.Dropped()))
	}

	out, err := p.Bytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("metrics exposition: %w", err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// Close releases server-owned observability resources — today the
// query logger (flushing queued entries). The engine is closed by its
// owner, not here.
func (s *Server) Close() error {
	if s.qlog != nil {
		return s.qlog.Close()
	}
	return nil
}

// BuildHealth is the /healthz build block: the serving binary's module
// version, Go toolchain, and VCS revision when the build recorded them.
type BuildHealth struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	BuildTime string `json:"vcs_time,omitempty"`
}

var (
	buildOnce   sync.Once
	buildCached *BuildHealth
)

// buildHealth reads build metadata once per process (it cannot change).
func buildHealth() *BuildHealth {
	buildOnce.Do(func() {
		b := &BuildHealth{}
		if info, ok := debug.ReadBuildInfo(); ok {
			b.GoVersion = info.GoVersion
			b.Module = info.Main.Path
			b.Version = info.Main.Version
			for _, kv := range info.Settings {
				switch kv.Key {
				case "vcs.revision":
					b.Revision = kv.Value
				case "vcs.time":
					b.BuildTime = kv.Value
				}
			}
		}
		buildCached = b
	})
	return buildCached
}

// default slow-query sink; replaced by WithSlowQueryOutput.
func defaultSlowf(format string, v ...any) { log.Printf(format, v...) }
