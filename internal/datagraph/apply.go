package datagraph

import (
	"maps"
	"sort"

	"repro/internal/relstore"
)

// This file implements incremental data-graph maintenance: Apply folds a
// relstore change log into a copy-on-write clone of the graph. A changed
// row's node is first removed wholesale (its containment entries and
// every incident edge) and then re-added from the post-change database:
// outgoing edges come from the row's own foreign keys, incoming edges
// from the equality indexes of every table referencing the row's table.
// Because Build keeps every list in canonical (table, row) order, the
// patched graph is structurally identical to one freshly built over the
// new database — the differential tests compare them map-for-map.

// Apply returns a new graph over newDB with the change log folded in.
// The receiver is never modified: the adjacency and containment map
// containers are cloned up front, and every affected list is replaced by
// a fresh copy, so readers of the pre-change graph stay consistent.
func (g *Graph) Apply(newDB *relstore.Database, changes []relstore.RowChange) *Graph {
	ng := &Graph{
		db:         newDB,
		adj:        maps.Clone(g.adj),
		containing: maps.Clone(g.containing),
	}

	// Net effect per row: the first Old (nil if the batch inserted the
	// row) and the last New (nil if it deleted it). A row inserted and
	// deleted within one batch nets out to nothing.
	type netChange struct {
		old, new []string
		hasOld   bool
	}
	order := make([]Node, 0, len(changes))
	net := make(map[Node]*netChange)
	for _, ch := range changes {
		n := Node{Table: ch.Table, Row: ch.RowID}
		nc := net[n]
		if nc == nil {
			nc = &netChange{old: ch.Old, hasOld: ch.Old != nil}
			net[n] = nc
			order = append(order, n)
		}
		nc.new = ch.New
	}

	added := make(map[Node]bool)
	for _, n := range order {
		if net[n].new != nil {
			added[n] = true
		}
	}

	// Phase 1: remove every pre-existing changed node.
	for _, n := range order {
		nc := net[n]
		if !nc.hasOld {
			continue
		}
		for _, tok := range distinctTokens(newDB, n.Table, nc.old) {
			ng.patchContaining(tok, n, false)
		}
		for _, nbr := range ng.adj[n] {
			if nbr == n {
				continue
			}
			ng.adj[nbr] = nodesWithoutAll(ng.adj[nbr], n)
			if len(ng.adj[nbr]) == 0 {
				delete(ng.adj, nbr)
			}
		}
		delete(ng.adj, n)
	}

	// Phase 2: add every post-change node from the new database.
	for _, n := range order {
		nc := net[n]
		if nc.new == nil {
			continue
		}
		for _, tok := range distinctTokens(newDB, n.Table, nc.new) {
			ng.patchContaining(tok, n, true)
		}
		for _, nbr := range neighbours(newDB, n, nc.new, added) {
			// Both endpoints of the edge get an entry; for a self-loop
			// (a row whose FK references its own key) both land in the
			// same list, exactly as Build records it.
			ng.adj[n] = nodesInsert(ng.adj[n], nbr)
			ng.adj[nbr] = nodesInsert(ng.adj[nbr], n)
		}
	}
	return ng
}

// neighbours computes the edge multiset of one node from the post-change
// database: the row's own foreign-key targets plus the rows referencing
// it. Incoming edges whose FK-owning row is itself an added node are
// skipped — that row's own outgoing scan contributes the edge, so it is
// counted exactly once.
func neighbours(db *relstore.Database, n Node, vals []string, added map[Node]bool) []Node {
	t := db.Table(n.Table)
	if t == nil {
		return nil
	}
	var out []Node
	for _, fk := range t.Schema.ForeignKeys {
		ref := db.Table(fk.RefTable)
		if ref == nil {
			continue
		}
		ci := t.Schema.ColumnIndex(fk.Column)
		for _, refID := range ref.LookupEqual(fk.RefColumn, vals[ci]) {
			out = append(out, Node{Table: fk.RefTable, Row: refID})
		}
	}
	for _, u := range db.Tables() {
		for _, fk := range u.Schema.ForeignKeys {
			if fk.RefTable != n.Table {
				continue
			}
			rci := t.Schema.ColumnIndex(fk.RefColumn)
			if rci < 0 {
				continue
			}
			for _, ownerID := range u.LookupEqual(fk.Column, vals[rci]) {
				owner := Node{Table: u.Schema.Name, Row: ownerID}
				if owner == n || added[owner] {
					continue
				}
				out = append(out, owner)
			}
		}
	}
	return out
}

// distinctTokens returns the distinct tokens across the indexed columns
// of one row's values — the containment contribution of its node.
func distinctTokens(db *relstore.Database, table string, vals []string) []string {
	t := db.Table(table)
	if t == nil {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	for ci, col := range t.Schema.Columns {
		if !col.Indexed {
			continue
		}
		for _, tok := range relstore.Tokenize(vals[ci]) {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	return out
}

// patchContaining inserts or removes one node of one term's containment
// list, replacing the list functionally.
func (g *Graph) patchContaining(tok string, n Node, add bool) {
	if add {
		g.containing[tok] = nodesInsert(g.containing[tok], n)
		return
	}
	g.containing[tok] = nodesWithoutAll(g.containing[tok], n)
	if len(g.containing[tok]) == 0 {
		delete(g.containing, tok)
	}
}

// nodesInsert returns a new list with n inserted at its canonical sorted
// position; the input is shared with the pre-batch graph and never
// modified.
func nodesInsert(nodes []Node, n Node) []Node {
	at := sort.Search(len(nodes), func(i int) bool { return !nodeLess(nodes[i], n) })
	out := make([]Node, 0, len(nodes)+1)
	return append(append(append(out, nodes[:at]...), n), nodes[at:]...)
}

// nodesWithoutAll returns a new list with every occurrence of n removed.
func nodesWithoutAll(nodes []Node, n Node) []Node {
	out := make([]Node, 0, len(nodes))
	for _, m := range nodes {
		if m != n {
			out = append(out, m)
		}
	}
	return out
}
