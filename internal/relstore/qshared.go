package relstore

import "sort"

// Attr names one invalidation granule of the database: a (table, column
// position) pair. Col is a positional column index, or MembershipCol for
// the table's row membership itself. Footprints and mutation stale-sets
// are both expressed as []Attr, so "does this cached answer survive this
// batch" is a plain set intersection.
type Attr struct {
	Table string
	Col   int
}

// MembershipCol is the pseudo-column representing a table's set of live
// rows. Inserting or deleting a row changes membership; updating values
// in place does not. Cached results that enumerate a table without a
// column predicate (unconstrained plan nodes, whole-table selections)
// depend on membership rather than on any one column.
const MembershipCol = -1

// SharedStore is the engine-lifetime answer cache consulted by
// SelectionCache and by compiled-plan execution. Implementations
// (repro/internal/qcache) must be safe for concurrent use and must
// guarantee that a Get never returns a value whose footprint was
// invalidated before the caller's snapshot was acquired; in exchange,
// callers promise that every Put's footprint covers all attributes the
// value was computed from, and that stored slices are never written to.
//
// All three namespaces share one byte budget and one admission policy:
//
//   - Selections: (table, column, canonical bag) → ascending row IDs,
//     the unit promoted from the per-request SelectionCache. Footprint
//     is the single selection attribute, implied by the key.
//   - Plans: canonical compiled-plan key → per-node row-ID lists, the
//     full output of one candidate-network execution.
//   - Counts: canonical compiled-plan key → non-empty-result count,
//     the unit behind diversification's interpretation filtering.
type SharedStore interface {
	GetSelection(table string, col int, bag string) ([]int, bool)
	PutSelection(table string, col int, bag string, rows []int)

	GetPlan(key string) ([][]int, bool)
	PutPlan(key string, footprint []Attr, rows [][]int)

	GetCount(key string) (int, bool)
	PutCount(key string, footprint []Attr, n int)
}

// ChangedAttrs reduces a batch of applied row changes to the set of
// attributes whose cached answers can no longer be trusted, in
// deterministic (table, column) order. An insert or delete stales the
// table's membership and every column (the new/old row's values appear
// in/vanish from all of them); an in-place update stales exactly the
// columns whose value changed. The database provides column counts; it
// must be the post-apply database so tables referenced by the changes
// exist.
func ChangedAttrs(db *Database, changes []RowChange) []Attr {
	type colset struct {
		membership bool
		cols       map[int]bool
	}
	byTable := make(map[string]*colset)
	for _, ch := range changes {
		cs := byTable[ch.Table]
		if cs == nil {
			cs = &colset{cols: make(map[int]bool)}
			byTable[ch.Table] = cs
		}
		if ch.Old == nil || ch.New == nil {
			cs.membership = true
			if t := db.Table(ch.Table); t != nil {
				for ci := range t.Schema.Columns {
					cs.cols[ci] = true
				}
			}
			continue
		}
		for ci := range ch.New {
			if ci >= len(ch.Old) || ch.Old[ci] != ch.New[ci] {
				cs.cols[ci] = true
			}
		}
	}
	var out []Attr
	for table, cs := range byTable {
		if cs.membership {
			out = append(out, Attr{Table: table, Col: MembershipCol})
		}
		for ci := range cs.cols {
			out = append(out, Attr{Table: table, Col: ci})
		}
	}
	sortAttrs(out)
	return out
}

// AllTableAttrs returns every attribute (membership plus each column) of
// the named tables, in deterministic order. Checkpoint compaction uses
// it: compaction rewrites a table's physical RowIDs without changing its
// logical content, so every cached answer mentioning the table — all of
// which speak in RowIDs — must be dropped even though no value changed.
func AllTableAttrs(db *Database, tables []string) []Attr {
	var out []Attr
	for _, name := range tables {
		t := db.Table(name)
		if t == nil {
			continue
		}
		out = append(out, Attr{Table: name, Col: MembershipCol})
		for ci := range t.Schema.Columns {
			out = append(out, Attr{Table: name, Col: ci})
		}
	}
	sortAttrs(out)
	return out
}

func sortAttrs(attrs []Attr) {
	sort.Slice(attrs, func(i, j int) bool {
		if attrs[i].Table != attrs[j].Table {
			return attrs[i].Table < attrs[j].Table
		}
		return attrs[i].Col < attrs[j].Col
	})
}
