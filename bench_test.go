// Benchmarks: one testing.B benchmark per table and figure of the
// thesis's evaluation sections (see DESIGN.md's experiment index), plus
// the ablation benches for the design decisions DESIGN.md calls out and
// micro-benchmarks of the public API. Each benchmark regenerates its
// experiment at a reduced-but-representative scale; `go run
// ./cmd/experiments` prints the same rows at full scale.
package keysearch

import (
	"context"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/expt"
)

// benchEnvs caches the shared experiment environments across benchmarks.
var benchEnvs struct {
	once    sync.Once
	movie   *expt.Env
	music   *expt.Env
	movieIn []datagen.Intent
	musicIn []datagen.Intent
	ambIn   []datagen.Intent
	fb      *expt.FreebaseEnv
	fbIn    []expt.FreebaseIntent
	err     error
}

func envs(b *testing.B) (movie, music *expt.Env, movieIn, musicIn, ambIn []datagen.Intent, fb *expt.FreebaseEnv, fbIn []expt.FreebaseIntent) {
	b.Helper()
	benchEnvs.once.Do(func() {
		benchEnvs.movie, benchEnvs.err = expt.NewMovieEnv(expt.Small, 1)
		if benchEnvs.err != nil {
			return
		}
		benchEnvs.music, benchEnvs.err = expt.NewMusicEnv(expt.Small, 1)
		if benchEnvs.err != nil {
			return
		}
		benchEnvs.movieIn = datagen.MovieWorkload(benchEnvs.movie.DB,
			datagen.WorkloadConfig{Queries: 25, MultiConceptFraction: 0.7, Seed: 2})
		benchEnvs.musicIn = datagen.MusicWorkload(benchEnvs.music.DB,
			datagen.WorkloadConfig{Queries: 20, MultiConceptFraction: 0.6, Seed: 3})
		benchEnvs.ambIn, benchEnvs.err = expt.PickAmbiguousIntents(benchEnvs.movie, benchEnvs.movieIn, 10)
		if benchEnvs.err != nil {
			return
		}
		benchEnvs.fb, benchEnvs.err = expt.NewFreebaseEnv(8, 12, 4)
		if benchEnvs.err != nil {
			return
		}
		benchEnvs.fbIn = expt.FreebaseWorkload(benchEnvs.fb, 20, 5)
	})
	if benchEnvs.err != nil {
		b.Fatal(benchEnvs.err)
	}
	return benchEnvs.movie, benchEnvs.music, benchEnvs.movieIn, benchEnvs.musicIn,
		benchEnvs.ambIn, benchEnvs.fb, benchEnvs.fbIn
}

// ---- Chapter 3 ----

func BenchmarkFig3_5_ProbabilityEstimates(b *testing.B) {
	movie, _, movieIn, _, _, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig3_5(movie, movieIn, 0.2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_6_ConstructionVsRanking(b *testing.B) {
	movie, _, movieIn, _, _, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig3_6(movie, movieIn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_7_Usability(b *testing.B) {
	movie, _, movieIn, _, _, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig3_7(movie, movieIn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_2_GreedyVsDBSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Table3_2([]int{5, 20}, []int{20}, 3, 2, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_3_GreedyVsKeywords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Table3_3([]int{2, 4}, []int{20}, 10, 2, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_4_BruteForceVsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Table3_4([][2]int{{12, 6}, {16, 8}}, 5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Chapter 4 ----

func BenchmarkTable4_1_DiversificationExample(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	if len(amb) == 0 {
		b.Skip("no ambiguous intents")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table4_1(movie, amb[0], 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_1_ProbabilityRatio(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig4_1(movie, amb, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_2_AlphaNDCGW(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig4_2(movie, amb, []float64{0, 0.99}, 5, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_3_WSRecall(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig4_3(movie, amb, 5, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_4_RelevanceVsNovelty(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig4_4(movie, amb, []float64{1, 0.5, 0}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Chapter 5 ----

func BenchmarkTable5_1_FreeQTranscript(b *testing.B) {
	_, _, _, _, _, fb, fbIn := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		for _, in := range fbIn {
			if _, err := expt.Table5_1(fb, in); err == nil {
				done = true
				break
			}
		}
		if !done {
			b.Fatal("no resolvable transcript intent")
		}
	}
}

func BenchmarkTable5_2_WorkloadComplexity(b *testing.B) {
	_, _, _, _, _, fb, fbIn := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Table5_2(fb, fbIn)
	}
}

func BenchmarkTable5_3_OntologySizes(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	cfgs := []datagen.YAGOConfig{
		{BackboneDepth: 2, BackboneBranch: 2, Seed: 1},
		{BackboneDepth: 4, BackboneBranch: 3, Seed: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Table5_3(fb, cfgs)
	}
}

func BenchmarkFig5_2_QCOEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig5_2([]int{4, 8}, 10, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_4_FreebaseInteractionCost(b *testing.B) {
	_, _, _, _, _, fb, fbIn := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := expt.Fig5_4_5(fb, fbIn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_5_FreebaseResponseTime(b *testing.B) {
	// Figure 5.5 shares the measurement loop with Figure 5.4; this bench
	// isolates the per-step option generation cost of a FreeQ session.
	_, _, _, _, _, fb, fbIn := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rows55, _, _, err := expt.Fig5_4_5(fb, fbIn[:10])
		if err != nil {
			b.Fatal(err)
		}
		_ = rows55
	}
}

// ---- Chapter 6 ----

func BenchmarkTable6_1_CategoryDistribution(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Table6_1(fb)
	}
}

func BenchmarkTable6_2_InstanceDistribution(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Table6_2(fb)
	}
}

func BenchmarkFig6_2_SharedInstances(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig6_2(fb)
	}
}

func BenchmarkFig6_3_Matching(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig6_3(fb, 0.5, 5)
	}
}

func BenchmarkTable6_3_YagoFStats(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	matches, _ := expt.Fig6_3(fb, 0.5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Table6_3(fb, matches)
	}
}

func BenchmarkFig6_4_MatchingQuality(b *testing.B) {
	_, _, _, _, _, fb, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.Fig6_4(fb, []float64{0.2, 0.5, 0.8})
	}
}

// ---- Ablations (design decisions called out in DESIGN.md) ----

func BenchmarkAblationThreshold(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationThreshold(movie, amb, []int{10, 20, 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOptionPolicy(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationOptionPolicy(movie, amb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSmoothing(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationSmoothing(movie, amb, []float64{0.5, 1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDivqEarlyStop(b *testing.B) {
	movie, _, _, _, amb, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationDivqEarlyStop(movie, amb, 5, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOntologyFanout(b *testing.B) {
	_, _, _, _, _, fb, fbIn := envs(b)
	n := len(fbIn)
	if n > 10 {
		n = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationOntologyFanout(fb, fbIn[:n], []int{2, 4}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Public API micro-benchmarks ----

var apiOnce struct {
	sync.Once
	eng *Engine
	q   string
	err error
}

func apiEngine(b *testing.B) (*Engine, string) {
	b.Helper()
	apiOnce.Do(func() {
		apiOnce.eng, apiOnce.err = DemoMovies(7)
		if apiOnce.err != nil {
			return
		}
		qs := apiOnce.eng.SampleQueries(1)
		if len(qs) == 0 {
			apiOnce.q = "hanks"
		} else {
			apiOnce.q = qs[0]
		}
	})
	if apiOnce.err != nil {
		b.Fatal(apiOnce.err)
	}
	return apiOnce.eng, apiOnce.q
}

func BenchmarkAPISearch(b *testing.B) {
	eng, q := apiEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(ctx, SearchRequest{Query: q, K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPISearchParallel(b *testing.B) {
	eng, q := apiEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Search(ctx, SearchRequest{Query: q, K: 5}); err != nil {
				b.Error(err) // Fatal must not be called from RunParallel workers
				return
			}
		}
	})
}

func BenchmarkAPIDiversify(b *testing.B) {
	eng, q := apiEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Diversify(ctx, DiversifyRequest{Query: q, K: 5, Lambda: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIConstructSession(b *testing.B) {
	eng, q := apiEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := eng.Construct(ctx, ConstructRequest{Query: q, StopAtRemaining: 3})
		if err != nil {
			b.Fatal(err)
		}
		for !sess.Done() {
			question, ok := sess.Next()
			if !ok {
				break
			}
			if err := sess.Reject(ctx, question); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAPIKeywordsPrefix(b *testing.B) {
	eng, q := apiEngine(b)
	prefix := q[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ks := eng.Keywords(prefix, 10); len(ks) == 0 {
			b.Fatal("no keywords")
		}
	}
}

func BenchmarkAPIBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DemoMovies(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDataVsSchema compares the §2.2 families end to end.
func BenchmarkAblationDataVsSchema(b *testing.B) {
	movie, _, movieIn, _, _, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationDataVsSchema(movie, movieIn[:10]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAPISearchTrees measures the data-based baseline via the public
// API.
func BenchmarkAPISearchTrees(b *testing.B) {
	eng, q := apiEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchTrees(ctx, q, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3_1_ExampleTasks regenerates the user-study task table.
func BenchmarkTable3_1_ExampleTasks(b *testing.B) {
	movie, _, movieIn, _, _, _, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Table3_1(movie, movieIn, 8); err != nil {
			b.Fatal(err)
		}
	}
}
