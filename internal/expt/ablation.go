package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/datagraph"
	"repro/internal/metrics"
	"repro/internal/prob"
	"repro/internal/relstore"
)

// AblationOptionPolicy compares the information-gain option policy of IQP
// against the highest-probability-first ablation on a workload.
func AblationOptionPolicy(env *Env, intents []datagen.Intent) (*Table, error) {
	model := env.Model(prob.Config{})
	table := &Table{
		Title:   fmt.Sprintf("Ablation (%s): option selection policy", env.Name),
		Headers: []string{"policy", "mean steps", "median", "max", "n"},
	}
	for _, p := range []struct {
		name   string
		policy core.OptionPolicy
	}{
		{"information gain", core.PolicyInformationGain},
		{"probability-first", core.PolicyProbability},
	} {
		var steps []float64
		for _, in := range intents {
			c := env.Candidates(in.Keywords)
			space := env.Space(c, 0)
			intended, ok := env.ResolveIntent(in, space)
			if !ok {
				continue
			}
			sess, err := core.NewSession(model, c, core.SessionConfig{
				StopAtRemaining: 5, OptionPolicy: p.policy,
			})
			if err != nil {
				continue
			}
			run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
			if err != nil {
				continue
			}
			steps = append(steps, float64(run.Steps))
		}
		b := metrics.Summarize(steps)
		table.AddRow(p.name, b.Mean, b.Median, b.Max, b.N)
	}
	return table, nil
}

// AblationSmoothing sweeps the ATF smoothing parameter α (Equation 3.8)
// and measures the construction cost.
func AblationSmoothing(env *Env, intents []datagen.Intent, alphas []float64) (*Table, error) {
	table := &Table{
		Title:   fmt.Sprintf("Ablation (%s): ATF smoothing α", env.Name),
		Headers: []string{"alpha", "mean steps", "median", "n"},
	}
	for _, alpha := range alphas {
		model := env.Model(prob.Config{Alpha: alpha})
		var steps []float64
		for _, in := range intents {
			c := env.Candidates(in.Keywords)
			space := env.Space(c, 0)
			intended, ok := env.ResolveIntent(in, space)
			if !ok {
				continue
			}
			sess, err := core.NewSession(model, c, core.SessionConfig{StopAtRemaining: 5})
			if err != nil {
				continue
			}
			run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
			if err != nil {
				continue
			}
			steps = append(steps, float64(run.Steps))
		}
		b := metrics.Summarize(steps)
		table.AddRow(alpha, b.Mean, b.Median, b.N)
	}
	return table, nil
}

// AblationThreshold sweeps the greedy expansion threshold on a real
// workload (complementing the simulated sweep of Tables 3.2/3.3).
func AblationThreshold(env *Env, intents []datagen.Intent, thresholds []int) (*Table, error) {
	model := env.Model(prob.Config{})
	table := &Table{
		Title:   fmt.Sprintf("Ablation (%s): greedy expansion threshold", env.Name),
		Headers: []string{"threshold", "mean steps", "median", "n"},
	}
	for _, th := range thresholds {
		var steps []float64
		for _, in := range intents {
			c := env.Candidates(in.Keywords)
			space := env.Space(c, 0)
			intended, ok := env.ResolveIntent(in, space)
			if !ok {
				continue
			}
			sess, err := core.NewSession(model, c, core.SessionConfig{
				Threshold: th, StopAtRemaining: 5,
			})
			if err != nil {
				continue
			}
			run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
			if err != nil {
				continue
			}
			steps = append(steps, float64(run.Steps))
		}
		b := metrics.Summarize(steps)
		table.AddRow(th, b.Mean, b.Median, b.N)
	}
	return table, nil
}

// AblationDataVsSchema compares the two §2.2 families on identical data:
// the data-based BANKS-style search (tuple-graph backward expansion)
// against the schema-based pipeline (interpretation generation +
// execution of the top interpretation), reporting result agreement and
// wall-clock per query.
func AblationDataVsSchema(env *Env, intents []datagen.Intent) (*Table, error) {
	model := env.Model(prob.Config{})
	g := datagraph.Build(env.DB)
	table := &Table{
		Title: fmt.Sprintf("Ablation (%s): data-based vs schema-based search", env.Name),
		Headers: []string{"family", "answered", "avg results", "avg time/query",
			"n"},
	}
	var dataResults, schemaResults []float64
	var dataTime, schemaTime time.Duration
	answeredData, answeredSchema := 0, 0
	n := 0
	for _, in := range intents {
		n++
		start := time.Now()
		trees, err := g.Search(in.Keywords, datagraph.Options{K: 10})
		if err != nil {
			return nil, err
		}
		dataTime += time.Since(start)
		if len(trees) > 0 {
			answeredData++
			dataResults = append(dataResults, float64(len(trees)))
		}

		start = time.Now()
		c := env.Candidates(in.Keywords)
		space := env.Space(c, 0)
		ranked := model.Rank(space)
		found := 0
		if len(ranked) > 0 {
			plan, err := ranked[0].Q.JoinPlan()
			if err == nil {
				if jtts, err := env.DB.Execute(plan, relstore.ExecuteOptions{Limit: 10}); err == nil {
					found = len(jtts)
				}
			}
		}
		schemaTime += time.Since(start)
		if found > 0 {
			answeredSchema++
			schemaResults = append(schemaResults, float64(found))
		}
	}
	if n == 0 {
		return table, nil
	}
	table.AddRow("data-based (BANKS)", answeredData, metrics.Mean(dataResults),
		(dataTime / time.Duration(n)).Round(time.Microsecond).String(), n)
	table.AddRow("schema-based (IQP top-1)", answeredSchema, metrics.Mean(schemaResults),
		(schemaTime / time.Duration(n)).Round(time.Microsecond).String(), n)
	return table, nil
}
