package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// randDuration draws from a heavy-tailed mix so the property tests
// cover the exact linear range, mid octaves, and multi-second stalls.
func randDuration(rng *rand.Rand) time.Duration {
	switch rng.Intn(4) {
	case 0:
		return time.Duration(rng.Int63n(linearLimit)) // exact buckets
	case 1:
		return time.Duration(rng.Int63n(int64(time.Millisecond)))
	case 2:
		return time.Duration(rng.Int63n(int64(time.Second)))
	default:
		return time.Duration(rng.Int63n(int64(30 * time.Second)))
	}
}

// TestMergeIsValueIdenticalToSingleHistogram is the per-worker
// recording property the load harness relies on: N workers recording
// into private histograms and merging afterwards must be
// indistinguishable — bucket by bucket, not just at quantiles — from
// one histogram that saw every sample.
func TestMergeIsValueIdenticalToSingleHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		workers := 1 + rng.Intn(8)
		perWorker := make([]*LatencyHistogram, workers)
		single := NewLatencyHistogram()
		for w := range perWorker {
			perWorker[w] = NewLatencyHistogram()
			for i, n := 0, rng.Intn(400); i < n; i++ {
				d := randDuration(rng)
				perWorker[w].Record(d)
				single.Record(d)
			}
		}
		merged := NewLatencyHistogram()
		for _, h := range perWorker {
			merged.Merge(h)
		}
		if !reflect.DeepEqual(merged, single) {
			t.Fatalf("trial %d (%d workers): merged histogram differs from single-recorder\nmerged: total %d sum %d min %d max %d\nsingle: total %d sum %d min %d max %d",
				trial, workers,
				merged.total, merged.sum, merged.min, merged.max,
				single.total, single.sum, single.min, single.max)
		}
		// The quantile surface must agree too (it reads the same
		// buckets, but this pins the exported view).
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			if merged.Quantile(q) != single.Quantile(q) {
				t.Fatalf("trial %d: Quantile(%v) diverged: %v vs %v",
					trial, q, merged.Quantile(q), single.Quantile(q))
			}
		}
	}
}

// TestMergeEmptyAndNil: merging nil or an empty histogram is a no-op
// and must not disturb min/max.
func TestMergeEmptyAndNil(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(5 * time.Millisecond)
	before := *h
	h.Merge(nil)
	h.Merge(NewLatencyHistogram())
	if !reflect.DeepEqual(*h, before) {
		t.Fatal("merging nil/empty histograms changed the receiver")
	}
}

// TestRecordCorrectedMatchesClosedForm: over randomized stall lengths
// and schedules, the number of recorded observations must match the
// closed form exactly, and the synthetic samples must never exceed
// the measured latency.
func TestRecordCorrectedMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		interval := time.Duration(1 + rng.Int63n(int64(50*time.Millisecond)))
		d := time.Duration(rng.Int63n(int64(2 * time.Second)))
		h := NewLatencyHistogram()
		h.RecordCorrected(d, interval)
		want := 1 + max(int64(0), int64(d/interval)-1)
		if got := h.Count(); got != want {
			t.Fatalf("trial %d: RecordCorrected(%v, %v) recorded %d samples, want %d",
				trial, d, interval, got, want)
		}
		if h.Max() > d {
			t.Fatalf("trial %d: synthetic sample %v exceeds measured %v", trial, h.Max(), d)
		}
	}

	// Exact boundary pins.
	cases := []struct {
		d, interval time.Duration
		want        int64
	}{
		{0, time.Second, 1},
		{time.Second, 0, 1},            // no schedule, no correction
		{time.Second, -time.Second, 1}, // negative schedule ignored
		{999 * time.Millisecond, time.Second, 1},
		{time.Second, time.Second, 1},
		{1999 * time.Millisecond, time.Second, 1},
		{2 * time.Second, time.Second, 2},
		{5 * time.Second, time.Second, 5},
		{5*time.Second + 1, time.Second, 5},
	}
	for _, tc := range cases {
		h := NewLatencyHistogram()
		h.RecordCorrected(tc.d, tc.interval)
		if h.Count() != tc.want {
			t.Fatalf("RecordCorrected(%v, %v): %d samples, want %d",
				tc.d, tc.interval, h.Count(), tc.want)
		}
	}
}

// TestRecordCorrectedBackfillSpacing pins the synthetic values
// themselves (not just the count): back-fill at d-i*interval while
// the value stays >= interval.
func TestRecordCorrectedBackfillSpacing(t *testing.T) {
	h := NewLatencyHistogram()
	h.RecordCorrected(10*time.Millisecond, 3*time.Millisecond)
	// Samples: 10ms, 7ms, 4ms. Mean = 7ms, min 4ms, max 10ms.
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Min() != 4*time.Millisecond || h.Max() != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want 4ms/10ms", h.Min(), h.Max())
	}
	if h.Mean() != 7*time.Millisecond {
		t.Fatalf("mean = %v, want 7ms", h.Mean())
	}
}
