package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// halfSplitSpace builds the Table 3.4 configuration: n items with random
// probabilities, m options each subsuming a random half of the items.
func halfSplitSpace(rng *rand.Rand, items, options int) *PlanSpace {
	s := &PlanSpace{}
	total := 0.0
	probs := make([]float64, items)
	for i := range probs {
		probs[i] = rng.Float64() + 1e-6
		total += probs[i]
	}
	for i := 0; i < items; i++ {
		s.Items = append(s.Items, PlanItem{Key: fmt.Sprintf("q%d", i), Prob: probs[i] / total})
	}
	for o := 0; o < options; o++ {
		perm := rng.Perm(items)
		var mask uint64
		for _, i := range perm[:items/2] {
			mask |= 1 << uint(i)
		}
		s.Options = append(s.Options, PlanOption{Key: fmt.Sprintf("o%d", o), Subsumes: mask})
	}
	return s
}

func TestPlanSpaceValidate(t *testing.T) {
	if err := (&PlanSpace{}).Validate(); err == nil {
		t.Fatal("empty space accepted")
	}
	big := &PlanSpace{Items: make([]PlanItem, 65)}
	for i := range big.Items {
		big.Items[i] = PlanItem{Key: fmt.Sprintf("q%d", i), Prob: 1}
	}
	if err := big.Validate(); err == nil {
		t.Fatal(">64 items accepted")
	}
	neg := &PlanSpace{Items: []PlanItem{{Key: "a", Prob: -1}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative probability accepted")
	}
	zero := &PlanSpace{Items: []PlanItem{{Key: "a", Prob: 0}}}
	if err := zero.Validate(); err == nil {
		t.Fatal("zero-mass space accepted")
	}
}

func TestOptimalPlanSingleItem(t *testing.T) {
	s := &PlanSpace{Items: []PlanItem{{Key: "only", Prob: 1}}}
	p, err := OptimalPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 {
		t.Fatalf("single-item cost = %v, want 0", p.Cost)
	}
	if p.Root.OptionIdx != -1 {
		t.Fatal("single item should be a leaf")
	}
}

func TestOptimalPlanTwoItems(t *testing.T) {
	s := &PlanSpace{
		Items: []PlanItem{
			{Key: "a", Prob: 0.5},
			{Key: "b", Prob: 0.5},
		},
		Options: []PlanOption{{Key: "o", Subsumes: 0b01}},
	}
	p, err := OptimalPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	// One question resolves the space: cost 1 regardless of answer.
	if math.Abs(p.Cost-1) > 1e-12 {
		t.Fatalf("two-item cost = %v, want 1", p.Cost)
	}
	if p.Root.OptionIdx != 0 || p.Root.Accept == nil || p.Root.Reject == nil {
		t.Fatal("plan tree malformed")
	}
}

func TestOptimalPlanBalancedEightItems(t *testing.T) {
	// 8 uniform items with a perfect binary option hierarchy: log2(8)=3.
	s := &PlanSpace{}
	for i := 0; i < 8; i++ {
		s.Items = append(s.Items, PlanItem{Key: fmt.Sprintf("q%d", i), Prob: 0.125})
	}
	masks := []uint64{0x0F, 0x33, 0x55}
	for i, m := range masks {
		s.Options = append(s.Options, PlanOption{Key: fmt.Sprintf("bit%d", i), Subsumes: m})
	}
	p, err := OptimalPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Cost-3) > 1e-9 {
		t.Fatalf("balanced cost = %v, want 3", p.Cost)
	}
}

func TestOptimalPlanSkewedFavoursRankedStyle(t *testing.T) {
	// One dominant item: the optimal plan asks about it first, giving cost
	// close to 1 for the dominant mass.
	s := &PlanSpace{
		Items: []PlanItem{
			{Key: "likely", Prob: 0.97},
			{Key: "rare1", Prob: 0.02},
			{Key: "rare2", Prob: 0.01},
		},
		Options: []PlanOption{
			{Key: "isLikely", Subsumes: 0b001},
			{Key: "isRare1", Subsumes: 0b010},
		},
	}
	p, err := OptimalPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Options[p.Root.OptionIdx].Key != "isLikely" {
		t.Fatalf("skewed plan should decide the dominant item first, got %s",
			s.Options[p.Root.OptionIdx].Key)
	}
	// Cost ≈ 0.97·1 + 0.03·2 = 1.03.
	if math.Abs(p.Cost-1.03) > 1e-9 {
		t.Fatalf("cost = %v, want 1.03", p.Cost)
	}
}

func TestUnsplittableFallsBackToRankedList(t *testing.T) {
	s := &PlanSpace{
		Items: []PlanItem{
			{Key: "a", Prob: 0.7},
			{Key: "b", Prob: 0.2},
			{Key: "c", Prob: 0.1},
		},
		// No options at all.
	}
	p, err := OptimalPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Ranked-list cost: 1·0.7 + 2·0.2 + 3·0.1 = 1.4.
	if math.Abs(p.Cost-1.4) > 1e-9 {
		t.Fatalf("ranked-list cost = %v, want 1.4", p.Cost)
	}
	if p.Root.OptionIdx != -1 {
		t.Fatal("unsplittable root should be a ranked-list leaf")
	}
}

func TestPlanCostMatchesSolverCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		s := halfSplitSpace(rng, 12, 6)
		p, err := OptimalPlan(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := PlanCost(s, p.Root); math.Abs(got-p.Cost) > 1e-9 {
			t.Fatalf("PlanCost = %v, solver said %v", got, p.Cost)
		}
	}
}

// TestGreedyNearOptimal reproduces the Table 3.4 claim: greedy plan cost
// is only slightly worse than brute force (within a few percent).
func TestGreedyNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	configs := []struct{ items, options int }{
		{8, 4}, {12, 6}, {16, 8}, {20, 10}, {24, 12},
	}
	for _, c := range configs {
		var optSum, grdSum float64
		const reps = 10
		for r := 0; r < reps; r++ {
			s := halfSplitSpace(rng, c.items, c.options)
			op, err := OptimalPlan(s)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := GreedyPlan(s)
			if err != nil {
				t.Fatal(err)
			}
			if gp.Cost < op.Cost-1e-9 {
				t.Fatalf("greedy beat brute force: %v < %v (items=%d)", gp.Cost, op.Cost, c.items)
			}
			optSum += op.Cost
			grdSum += gp.Cost
		}
		ratio := grdSum / optSum
		if ratio > 1.10 {
			t.Fatalf("greedy/optimal ratio %.3f exceeds 10%% at items=%d", ratio, c.items)
		}
	}
}

func TestGreedyPlanValidates(t *testing.T) {
	if _, err := GreedyPlan(&PlanSpace{}); err == nil {
		t.Fatal("empty space accepted by greedy")
	}
}

// Property: optimal cost is monotone — it never exceeds the ranked-list
// cost, and never exceeds the greedy cost.
func TestOptimalCostBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := halfSplitSpace(rng, 6+rng.Intn(10), 3+rng.Intn(5))
		op, err := OptimalPlan(s)
		if err != nil {
			return false
		}
		gp, err := GreedyPlan(s)
		if err != nil {
			return false
		}
		if op.Cost > gp.Cost+1e-9 {
			return false
		}
		// Ranked-list upper bound over the full space.
		p := &planner{space: s, probs: make([]float64, len(s.Items))}
		for i, it := range s.Items {
			p.probs[i] = it.Prob
		}
		return op.Cost <= p.rankedListCost(s.fullMask())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyHelpers(t *testing.T) {
	s := &PlanSpace{
		Items: []PlanItem{
			{Key: "a", Prob: 0.5}, {Key: "b", Prob: 0.5},
		},
	}
	p := &planner{space: s, probs: []float64{0.5, 0.5}}
	if h := p.setEntropy(0b11); math.Abs(h-1) > 1e-12 {
		t.Fatalf("setEntropy = %v, want 1", h)
	}
	if h := p.setEntropy(0b01); h != 0 {
		t.Fatalf("singleton entropy = %v", h)
	}
	// A perfect split halves the entropy to zero conditional entropy.
	if ce := p.conditionalEntropy(0b11, 0b01); ce != 0 {
		t.Fatalf("conditionalEntropy of perfect split = %v", ce)
	}
}
