package benchdur

import "testing"

// TestVerify pins the harness's own correctness bar: recovered engines
// answer byte-identically to a fresh build.
func TestVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the scaled dataset three ways")
	}
	if err := NewEnv(t.TempDir()).Verify(); err != nil {
		t.Fatal(err)
	}
}

// The BenchmarkDurability* legs feed `go test -bench=Durability` and the
// CI benchmark smoke (1 iteration, so regressions in the fixtures fail
// fast without paying a full measurement).

func BenchmarkDurabilityFreshBuild(b *testing.B)   { NewEnv(b.TempDir()).Run(b, ModeBuild) }
func BenchmarkDurabilityOpenSnapshot(b *testing.B) { NewEnv(b.TempDir()).Run(b, ModeOpen) }
func BenchmarkDurabilityWALReplay(b *testing.B)    { NewEnv(b.TempDir()).Run(b, ModeReplay) }
func BenchmarkDurabilityCheckpoint(b *testing.B)   { NewEnv(b.TempDir()).Run(b, ModeCheckpoint) }
