package relstore

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func movieDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("movies")
	mustCreate := func(s *TableSchema) *Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatalf("CreateTable(%s): %v", s.Name, err)
		}
		return tb
	}
	actor := mustCreate(&TableSchema{
		Name:       "actor",
		Columns:    []Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := mustCreate(&TableSchema{
		Name:       "movie",
		Columns:    []Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := mustCreate(&TableSchema{
		Name:    "acts",
		Columns: []Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Indexed: true}},
		ForeignKeys: []ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *Table, vals ...string) {
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatalf("Insert into %s: %v", tb.Schema.Name, err)
		}
	}
	ins(actor, "a1", "Tom Hanks")
	ins(actor, "a2", "Tom Cruise")
	ins(actor, "a3", "Colin Hanks")
	ins(movie, "m1", "The Terminal", "2004")
	ins(movie, "m2", "Cast Away", "2000")
	ins(movie, "m3", "Vanilla Sky", "2001")
	ins(acts, "a1", "m1", "Viktor Navorski")
	ins(acts, "a1", "m2", "Chuck Noland")
	ins(acts, "a2", "m3", "David Aames")
	ins(acts, "a3", "m1", "Officer")
	if err := db.ValidateRefs(); err != nil {
		t.Fatalf("ValidateRefs: %v", err)
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDatabase("d")
	cases := []struct {
		name   string
		schema *TableSchema
	}{
		{"empty name", &TableSchema{Columns: []Column{{Name: "a"}}}},
		{"no columns", &TableSchema{Name: "t"}},
		{"dup column", &TableSchema{Name: "t", Columns: []Column{{Name: "a"}, {Name: "a"}}}},
		{"bad pk", &TableSchema{Name: "t", Columns: []Column{{Name: "a"}}, PrimaryKey: "b"}},
		{"bad fk col", &TableSchema{Name: "t", Columns: []Column{{Name: "a"}},
			ForeignKeys: []ForeignKey{{Column: "x", RefTable: "r", RefColumn: "id"}}}},
		{"empty column name", &TableSchema{Name: "t", Columns: []Column{{Name: ""}}}},
	}
	for _, c := range cases {
		if _, err := db.CreateTable(c.schema); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
	if _, err := db.CreateTable(&TableSchema{Name: "ok", Columns: []Column{{Name: "a"}}}); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if _, err := db.CreateTable(&TableSchema{Name: "ok", Columns: []Column{{Name: "a"}}}); err == nil {
		t.Errorf("duplicate table name accepted")
	}
}

func TestValidateRefs(t *testing.T) {
	db := NewDatabase("d")
	_, err := db.CreateTable(&TableSchema{
		Name:        "child",
		Columns:     []Column{{Name: "pid"}},
		ForeignKeys: []ForeignKey{{Column: "pid", RefTable: "parent", RefColumn: "id"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ValidateRefs(); err == nil {
		t.Fatal("expected dangling FK table to be reported")
	}
	if _, err := db.CreateTable(&TableSchema{Name: "parent", Columns: []Column{{Name: "nope"}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.ValidateRefs(); err == nil {
		t.Fatal("expected dangling FK column to be reported")
	}
}

func TestInsertArity(t *testing.T) {
	db := NewDatabase("d")
	tb, err := db.CreateTable(&TableSchema{Name: "t", Columns: []Column{{Name: "a"}, {Name: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert("only-one"); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
	id, err := tb.Insert("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first RowID = %d, want 0", id)
	}
	if v, ok := tb.Value(id, "b"); !ok || v != "y" {
		t.Fatalf("Value = %q, %v", v, ok)
	}
	if _, ok := tb.Value(5, "a"); ok {
		t.Fatal("out-of-range row returned ok")
	}
	if _, ok := tb.Row(-1); ok {
		t.Fatal("negative row returned ok")
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Tom Hanks", []string{"tom", "hanks"}},
		{"  The-Terminal (2004)!", []string{"the", "terminal", "2004"}},
		{"", nil},
		{"   ", nil},
		{"a", []string{"a"}},
		{"O'Brien", []string{"o", "brien"}},
		{"abc123 def", []string{"abc123", "def"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContainsBag(t *testing.T) {
	if !ContainsBag("Tom Hanks", []string{"hanks"}) {
		t.Error("single keyword containment failed")
	}
	if !ContainsBag("Tom Hanks", []string{"Tom", "HANKS"}) {
		t.Error("case-insensitive bag containment failed")
	}
	if ContainsBag("Tom Hanks", []string{"tom", "tom"}) {
		t.Error("bag semantics: duplicate keyword should need duplicate occurrence")
	}
	if !ContainsBag("tom tom club", []string{"tom", "tom"}) {
		t.Error("duplicate occurrences should satisfy duplicate keywords")
	}
	if ContainsBag("Tomorrow", []string{"tom"}) {
		t.Error("substring must not match whole token")
	}
	if !ContainsBag("x", nil) {
		t.Error("empty bag should be contained everywhere")
	}
}

func TestSelectContains(t *testing.T) {
	db := movieDB(t)
	actor := db.Table("actor")
	got := actor.SelectContains("name", []string{"hanks"})
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("SelectContains(hanks) = %v, want [0 2]", got)
	}
	if got := actor.SelectContains("nope", []string{"x"}); got != nil {
		t.Fatalf("unknown column should select nothing, got %v", got)
	}
	if got := actor.SelectContains("name", []string{"zzz"}); got != nil {
		t.Fatalf("no-match should be empty, got %v", got)
	}
}

func TestLookupEqual(t *testing.T) {
	db := movieDB(t)
	acts := db.Table("acts")
	got := acts.LookupEqual("actor_id", "a1")
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("LookupEqual = %v, want [0 1]", got)
	}
	if got := acts.LookupEqual("bogus", "a1"); got != nil {
		t.Fatalf("unknown column lookup = %v, want nil", got)
	}
	// Insert after index build must keep the index current.
	if _, err := acts.Insert("a1", "m3", "Extra"); err != nil {
		t.Fatal(err)
	}
	got = acts.LookupEqual("actor_id", "a1")
	if !reflect.DeepEqual(got, []int{0, 1, 4}) {
		t.Fatalf("LookupEqual after insert = %v, want [0 1 4]", got)
	}
}

func hanksTerminalPlan() *JoinPlan {
	return &JoinPlan{
		Nodes: []JoinNode{
			{Table: "actor", Predicates: []Predicate{{Column: "name", Keywords: []string{"hanks"}}}},
			{Table: "acts"},
			{Table: "movie", Predicates: []Predicate{{Column: "title", Keywords: []string{"terminal"}}}},
		},
		Edges: []JoinEdge{
			{From: 1, To: 0, FromColumn: "actor_id", ToColumn: "id"},
			{From: 1, To: 2, FromColumn: "movie_id", ToColumn: "id"},
		},
	}
}

func TestExecuteJoin(t *testing.T) {
	db := movieDB(t)
	res, err := db.Execute(hanksTerminalPlan(), ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Tom Hanks (a1) and Colin Hanks (a3) both act in The Terminal (m1).
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(res), res)
	}
	for _, jtt := range res {
		if len(jtt.Rows) != 3 {
			t.Fatalf("JTT arity %d, want 3", len(jtt.Rows))
		}
		name, _ := db.Table("actor").Value(jtt.Rows[0], "name")
		if !ContainsBag(name, []string{"hanks"}) {
			t.Errorf("joined actor %q does not contain hanks", name)
		}
		title, _ := db.Table("movie").Value(jtt.Rows[2], "title")
		if !ContainsBag(title, []string{"terminal"}) {
			t.Errorf("joined movie %q does not contain terminal", title)
		}
	}
}

func TestExecuteLimitAndCount(t *testing.T) {
	db := movieDB(t)
	plan := hanksTerminalPlan()
	res, err := db.Execute(plan, ExecuteOptions{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("limit=1 returned %d results", len(res))
	}
	n, err := db.Count(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
}

func TestExecuteEmptySelection(t *testing.T) {
	db := movieDB(t)
	plan := hanksTerminalPlan()
	plan.Nodes[2].Predicates[0].Keywords = []string{"nonexistent"}
	res, err := db.Execute(plan, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expected empty result, got %d", len(res))
	}
}

func TestExecuteSingleNode(t *testing.T) {
	db := movieDB(t)
	plan := &JoinPlan{Nodes: []JoinNode{{
		Table:      "movie",
		Predicates: []Predicate{{Column: "year", Keywords: []string{"2001"}}},
	}}}
	res, err := db.Execute(plan, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	title, _ := db.Table("movie").Value(res[0].Rows[0], "title")
	if title != "Vanilla Sky" {
		t.Fatalf("got %q, want Vanilla Sky", title)
	}
}

func TestExecuteSelfJoin(t *testing.T) {
	db := movieDB(t)
	// Movies featuring both an actor named hanks and an actor named cruise:
	// none in this dataset (Cruise is only in Vanilla Sky, Hanks in m1/m2).
	plan := &JoinPlan{
		Nodes: []JoinNode{
			{Table: "actor", Predicates: []Predicate{{Column: "name", Keywords: []string{"hanks"}}}},
			{Table: "acts"},
			{Table: "movie"},
			{Table: "acts"},
			{Table: "actor", Predicates: []Predicate{{Column: "name", Keywords: []string{"cruise"}}}},
		},
		Edges: []JoinEdge{
			{From: 1, To: 0, FromColumn: "actor_id", ToColumn: "id"},
			{From: 1, To: 2, FromColumn: "movie_id", ToColumn: "id"},
			{From: 3, To: 2, FromColumn: "movie_id", ToColumn: "id"},
			{From: 3, To: 4, FromColumn: "actor_id", ToColumn: "id"},
		},
	}
	res, err := db.Execute(plan, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expected no hanks+cruise movie, got %d", len(res))
	}
	// But hanks + hanks (two actors named hanks in one movie) exists: The
	// Terminal has Tom Hanks and Colin Hanks (4 ordered pairs incl. (a1,a1))
	// and Cast Away contributes the (a1,a1) pair, so 5 ordered combinations.
	plan.Nodes[4].Predicates[0].Keywords = []string{"hanks"}
	res, err = db.Execute(plan, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("expected 5 ordered hanks-hanks pairs, got %d", len(res))
	}
}

func TestJoinPlanValidate(t *testing.T) {
	bad := []*JoinPlan{
		{},
		{Nodes: []JoinNode{{Table: "a"}, {Table: "b"}}}, // missing edge
		{Nodes: []JoinNode{{Table: "a"}, {Table: "b"}},
			Edges: []JoinEdge{{From: 0, To: 5}}}, // out of range
		{Nodes: []JoinNode{{Table: "a"}, {Table: "b"}, {Table: "c"}},
			Edges: []JoinEdge{{From: 0, To: 1}, {From: 0, To: 1}}}, // disconnected
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestExecuteUnknownTable(t *testing.T) {
	db := movieDB(t)
	plan := &JoinPlan{Nodes: []JoinNode{{Table: "nope"}}}
	if _, err := db.Execute(plan, ExecuteOptions{}); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestExecuteUnknownJoinColumn(t *testing.T) {
	db := movieDB(t)
	plan := hanksTerminalPlan()
	plan.Edges[0].FromColumn = "bogus"
	if _, err := db.Execute(plan, ExecuteOptions{}); err == nil {
		t.Fatal("expected error for unknown join column")
	}
}

func TestJTTKeys(t *testing.T) {
	db := movieDB(t)
	plan := hanksTerminalPlan()
	res, err := db.Execute(plan, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys := res[0].Keys(plan)
	if len(keys) != 3 {
		t.Fatalf("got %d keys, want 3", len(keys))
	}
	if keys[0].Table != "actor" || keys[2].Table != "movie" {
		t.Fatalf("key tables wrong: %v", keys)
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := movieDB(t)
	if db.NumTables() != 3 {
		t.Fatalf("NumTables = %d", db.NumTables())
	}
	if got := db.TableNames(); !reflect.DeepEqual(got, []string{"actor", "movie", "acts"}) {
		t.Fatalf("TableNames = %v", got)
	}
	if db.NumRows() != 10 {
		t.Fatalf("NumRows = %d, want 10", db.NumRows())
	}
	if db.Table("ghost") != nil {
		t.Fatal("unknown table should be nil")
	}
	if len(db.Tables()) != 3 {
		t.Fatal("Tables() length mismatch")
	}
}

func TestTextColumns(t *testing.T) {
	s := &TableSchema{Name: "t", Columns: []Column{
		{Name: "id"}, {Name: "name", Indexed: true}, {Name: "bio", Indexed: true},
	}}
	if got := s.TextColumns(); !reflect.DeepEqual(got, []string{"name", "bio"}) {
		t.Fatalf("TextColumns = %v", got)
	}
}

// Property: tokenizing any string yields lower-case alphanumeric tokens,
// and every token is contained in the original per ContainsBag.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !((r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
					return false
				}
			}
			if !ContainsBag(s, []string{tok}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortedCopy returns a sorted permutation and does not mutate
// its input.
func TestSortedCopyProperties(t *testing.T) {
	f := func(ids []int) bool {
		orig := make([]int, len(ids))
		copy(orig, ids)
		out := SortedCopy(ids)
		if !reflect.DeepEqual(ids, orig) {
			return false
		}
		if len(out) != len(ids) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := movieDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != db.Name {
		t.Fatalf("name = %q", loaded.Name)
	}
	if loaded.NumTables() != db.NumTables() || loaded.NumRows() != db.NumRows() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			loaded.NumTables(), loaded.NumRows(), db.NumTables(), db.NumRows())
	}
	// Schemas, rows and join behaviour survive.
	for _, name := range db.TableNames() {
		orig, got := db.Table(name), loaded.Table(name)
		if got == nil {
			t.Fatalf("table %s lost", name)
		}
		if !reflect.DeepEqual(orig.Schema, got.Schema) {
			t.Fatalf("schema of %s changed", name)
		}
		for _, row := range orig.Rows() {
			lr, ok := got.Row(row.RowID)
			if !ok || !reflect.DeepEqual(lr.Values, row.Values) {
				t.Fatalf("row %d of %s changed", row.RowID, name)
			}
		}
	}
	res, err := loaded.Execute(hanksTerminalPlan(), ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("loaded join results = %d, want 2", len(res))
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
}
