// Package httpapi exposes a keysearch.Searcher — a single-process
// *keysearch.Engine or a *keysearch.ShardedEngine scatter-gather
// coordinator — as a JSON-over-HTTP service: the service boundary the
// thesis's systems imply but never ship: probability-ranked
// interpretation search, DivQ diversification, and interactive query
// construction behind stateless-client sessions. The handlers never
// look behind the interface, so any topology satisfying Searcher
// serves identically.
//
// Endpoints (all request/response bodies are the DTOs of package
// keysearch, so a Go client can decode straight into library types):
//
//	POST /v1/search     keysearch.SearchRequest    → keysearch.SearchResponse
//	POST /v1/diversify  keysearch.DiversifyRequest → keysearch.SearchResponse
//	POST /v1/rows       keysearch.RowsRequest      → keysearch.RowsResponse
//	POST /v1/mutate     MutateRequest              → MutateResponse
//	POST /v1/checkpoint (admin, empty body)        → keysearch.CheckpointStats
//	POST /v1/construct  ConstructStepRequest       → ConstructStepResponse
//	GET  /v1/keywords?prefix=&limit=               → KeywordsResponse
//	GET  /healthz                                  → HealthResponse
//
// /v1/mutate applies a live insert/update/delete batch atomically on an
// engine built with keysearch.WithMutations (403 otherwise; 400 on any
// validation error, in which case nothing of the batch is applied).
// /healthz reports the snapshot epoch, which increases by one per
// committed batch, so operators can follow ingestion progress.
//
// /v1/checkpoint is the durability admin endpoint: on an engine with a
// state directory (keysearch.WithDurability / Open) it forces a
// checkpoint — snapshot file rewritten, write-ahead log truncated,
// tombstones compacted past the threshold — and returns its stats; 403
// on a memory-only engine. /healthz reports the durability posture
// (durable flag, WAL batches pending replay, last checkpointed epoch)
// so operators can alert on recovery cost growing unbounded.
//
// Construction is a dialogue, so /v1/construct is sessionized: "start"
// creates a server-side session and returns its ID plus the first
// question; "accept"/"reject" answer the pending question and return the
// next one; "candidates" lists the remaining structured queries;
// "cancel" deletes the session. Sessions are evicted after a TTL of
// inactivity and capped in number, so abandoned dialogues cannot leak.
//
// # Overload protection
//
// The /v1/ endpoints sit behind an optional admission gate
// (WithAdmission): a bounded number of requests execute concurrently, a
// bounded FIFO queue absorbs bursts, and everything beyond that is shed
// — 429 when the queue is full, 503 when a queued request waits longer
// than the queue timeout — with a Retry-After header and a structured
// {"error", "code", "retry_after_seconds"} body. WithRequestTimeout adds
// a default per-request deadline that propagates through the engine's
// context-first API; an expired request returns 504 with code
// "deadline_exceeded". GET /healthz bypasses the gate (it must answer
// exactly when the server is saturated) and reports the gate's live
// counters — in-flight, queued, shed totals, and their high-water marks
// — while every *configured* limit (gate, governor bounds, answer-cache
// budget, request timeout) lives in one nested "limits" object.
//
// Errors are returned as {"error": "..."} with a 4xx/5xx status;
// overload and deadline errors additionally carry a machine-readable
// "code" (queue_full, queue_timeout, deadline_exceeded, client_closed)
// and shed responses a "retry_after_seconds" back-off hint.
package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	keysearch "repro"
	"repro/internal/admission"
	"repro/internal/metrics"
	"repro/internal/qlog"
)

// ErrorResponse is the JSON shape of every error reply. Code is set for
// overload and deadline errors (queue_full, queue_timeout,
// deadline_exceeded, client_closed) so clients can branch without
// parsing prose; RetryAfterSeconds mirrors the Retry-After header on
// 429/503 shed responses.
type ErrorResponse struct {
	Error             string `json:"error"`
	Code              string `json:"code,omitempty"`
	RetryAfterSeconds int64  `json:"retry_after_seconds,omitempty"`
	// Limit and LimitHeadroom are set on adaptive-governor sheds
	// (WithAdaptiveAdmission): the controller's current concurrency
	// limit and the room left to its configured ceiling — headroom 0
	// tells a client the server is already as wide open as it will
	// get. Static-gate sheds omit both.
	Limit         int  `json:"limit,omitempty"`
	LimitHeadroom *int `json:"limit_headroom,omitempty"`
}

// KeywordsResponse answers GET /v1/keywords.
type KeywordsResponse struct {
	Prefix   string   `json:"prefix"`
	Keywords []string `json:"keywords"`
}

// HealthResponse answers GET /healthz. Parallelism reports the engine's
// pipeline worker count and ExecutionCache whether plan execution shares
// a per-request selection cache, so operators can verify the deployed
// tuning. Mutable reports whether /v1/mutate is enabled and Epoch the
// current snapshot epoch (0 at build, +1 per committed mutation batch).
// Durable reports whether the engine persists to a state directory;
// when it does, WALBatches is the number of mutation batches a crash
// right now would replay and LastCheckpointEpoch the epoch of the
// on-disk snapshot file. Every *configured* limit is gathered in the
// nested Limits object; the remaining blocks carry live counters only.
type HealthResponse struct {
	Status         string `json:"status"`
	Parallelism    int    `json:"parallelism"`
	ExecutionCache bool   `json:"execution_cache"`
	Mutable        bool   `json:"mutable"`
	Epoch          uint64 `json:"epoch"`
	Durable        bool   `json:"durable"`
	WALBatches     int    `json:"wal_batches"`
	LastCheckpoint uint64 `json:"last_checkpoint_epoch"`
	// Limits is the one place configured serving limits appear: the
	// admission gate's bounds, the adaptive governor's concurrency range
	// and control window, the default request deadline, and the answer
	// cache's byte budget.
	Limits LimitsHealth `json:"limits"`
	// Admission carries the live serving counters (in-flight, queued,
	// shed, expired, and their high-water marks).
	Admission AdmissionHealth `json:"admission"`
	// Adaptive reports the self-sizing governor's controller state and
	// per-cost-band shed counters; omitted entirely when the governor
	// is disabled, so the static-gate health shape is unchanged.
	Adaptive *AdaptiveHealth `json:"adaptive,omitempty"`
	// AnswerCache reports the engine-lifetime answer cache's occupancy
	// and counters (WithAnswerCache / -answer-cache); omitted entirely
	// when the cache is disabled.
	AnswerCache *AnswerCacheHealth `json:"answer_cache,omitempty"`
	// Shards reports the scatter-gather topology (per-shard row counts,
	// cache traffic, merge wave counters); omitted on a single-process
	// engine.
	Shards *ShardsHealth `json:"shards,omitempty"`
	// Build identifies the serving binary (Go toolchain, module version,
	// VCS revision when recorded), so operators can tell which build a
	// live server runs without shelling into the host.
	Build *BuildHealth `json:"build,omitempty"`
}

// LimitsHealth is the nested /healthz limits object: every configured
// (static) bound of the serving path in one place, separate from the
// live counters. The adaptive_* fields are zero when the governor is
// off; answer_cache_budget_bytes is zero when the cache is off. When
// the adaptive governor is enabled, max_concurrent/max_queue/
// queue_timeout_ms describe *its* gate (the static gate is superseded).
type LimitsHealth struct {
	MaxConcurrent    int   `json:"max_concurrent"`
	MaxQueue         int   `json:"max_queue"`
	QueueTimeoutMS   int64 `json:"queue_timeout_ms"`
	RequestTimeoutMS int64 `json:"request_timeout_ms"`

	AdaptiveMinConcurrent int   `json:"adaptive_min_concurrent,omitempty"`
	AdaptiveMaxConcurrent int   `json:"adaptive_max_concurrent,omitempty"`
	AdaptiveWindowMS      int64 `json:"adaptive_window_ms,omitempty"`

	AnswerCacheBudgetBytes int64 `json:"answer_cache_budget_bytes,omitempty"`
}

// AnswerCacheHealth is the /healthz view of the engine-lifetime answer
// cache: current and high-water resident bytes (high-water never
// exceeds the budget reported in limits.answer_cache_budget_bytes), the
// resident entry count, and the lifetime counters — hits, misses,
// evictions (budget pressure), invalidations (entries dropped by
// mutation batches), and the two rejection classes (stale publishes
// discarded by the snapshot-validity check, and admissions declined by
// the 2Q/cost-aware policy).
type AnswerCacheHealth struct {
	ResidentBytes  int64 `json:"resident_bytes"`
	HighWaterBytes int64 `json:"high_water_bytes"`
	Entries        int   `json:"entries"`

	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Evictions        uint64 `json:"evictions"`
	Invalidations    uint64 `json:"invalidations"`
	StalePutRejects  uint64 `json:"stale_put_rejects"`
	AdmissionRejects uint64 `json:"admission_rejects"`
}

// answerCacheHealth assembles the /healthz answer-cache block, nil when
// the cache is disabled.
func answerCacheHealth(stats *keysearch.AnswerCacheStats) *AnswerCacheHealth {
	if stats == nil {
		return nil
	}
	return &AnswerCacheHealth{
		ResidentBytes:    stats.ResidentBytes,
		HighWaterBytes:   stats.HighWaterBytes,
		Entries:          stats.Entries,
		Hits:             stats.Hits,
		Misses:           stats.Misses,
		Evictions:        stats.Evictions,
		Invalidations:    stats.Invalidations,
		StalePutRejects:  stats.StalePutRejects,
		AdmissionRejects: stats.AdmissionRejects,
	}
}

// AdmissionHealth is the /healthz view of the serving path's live
// counters: requests in flight, waiting, shed, and expired, plus their
// high-water marks. The gate's configured bounds live in the limits
// object.
type AdmissionHealth struct {
	metrics.ServingSnapshot
}

// ShardsHealth is the /healthz view of a sharded topology: the shard
// count, the coordinator's merge wave counters (plan scatters, count
// scatters, results emitted by the rank-order merge), and one entry per
// shard. Present only when the server fronts a ShardedEngine.
type ShardsHealth struct {
	Count         int           `json:"count"`
	Scatters      int64         `json:"scatters"`
	CountScatters int64         `json:"count_scatters"`
	MergedResults int64         `json:"merged_results"`
	Shards        []ShardHealth `json:"shards"`
}

// ShardHealth is one shard's slice of ShardsHealth: the live rows it
// owns under the current snapshot, its partitioned plan executions and
// contributed results, and its traffic against the request-wide shared
// selection store.
type ShardHealth struct {
	Rows               int   `json:"rows"`
	Execs              int64 `json:"execs"`
	Results            int64 `json:"results"`
	SelectionHits      int64 `json:"selection_hits"`
	SelectionsComputed int64 `json:"selections_computed"`
}

// shardsHealth assembles the /healthz shards block, nil on a
// single-process topology.
func shardsHealth(st *keysearch.ShardStats) *ShardsHealth {
	if st == nil {
		return nil
	}
	h := &ShardsHealth{
		Count:         st.Count,
		Scatters:      st.Scatters,
		CountScatters: st.CountScatters,
		MergedResults: st.MergedResults,
		Shards:        make([]ShardHealth, len(st.Shards)),
	}
	for i, sh := range st.Shards {
		h.Shards[i] = ShardHealth{
			Rows:               sh.Rows,
			Execs:              sh.Execs,
			Results:            sh.Results,
			SelectionHits:      sh.SelectionHits,
			SelectionsComputed: sh.SelectionsComputed,
		}
	}
	return h
}

// MutateRequest carries one mutation batch for POST /v1/mutate.
type MutateRequest struct {
	Mutations []keysearch.Mutation `json:"mutations"`
}

// MutateResponse reports the committed batch.
type MutateResponse struct {
	// Epoch is the snapshot epoch the batch committed as.
	Epoch uint64 `json:"epoch"`
	// Applied is the number of mutations applied.
	Applied int `json:"applied"`
}

// ConstructStepRequest drives one step of a sessionized construction
// dialogue over POST /v1/construct.
type ConstructStepRequest struct {
	// Action is "start", "accept", "reject", "candidates", or "cancel".
	Action string `json:"action"`
	// SessionID identifies the dialogue for every action except "start".
	SessionID string `json:"session_id,omitempty"`
	// Start holds the construction parameters for action "start".
	Start *keysearch.ConstructRequest `json:"start,omitempty"`
}

// ConstructStepResponse is the state of the dialogue after one step.
type ConstructStepResponse struct {
	SessionID string `json:"session_id"`
	// Done reports whether construction has converged.
	Done bool `json:"done"`
	// Steps is the number of questions answered so far.
	Steps int `json:"steps"`
	// Question is the next question to answer; nil when no question can
	// narrow the space further (pick from Candidates instead).
	Question *keysearch.Question `json:"question,omitempty"`
	// Candidates carries the remaining structured queries when the
	// dialogue has converged, no question is left, or the client asked
	// for them explicitly.
	Candidates []keysearch.Result `json:"candidates,omitempty"`
}

// Option configures a Server.
type Option func(*Server)

// WithSessionTTL sets the idle time after which a construction session
// is evicted (default 15 minutes).
func WithSessionTTL(d time.Duration) Option {
	return func(s *Server) { s.ttl = d }
}

// WithMaxSessions caps live construction sessions; starting a session
// beyond the cap evicts the least recently used one (default 1024).
func WithMaxSessions(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithClock injects the time source used for TTL eviction (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// WithHandlerWrapper wraps the handler the admitted /v1/ requests
// dispatch to — *inside* the admission gate and the default deadline,
// so the wrapper's work occupies a concurrency slot exactly like engine
// work does. Load tests use it to stand in slow handlers; middleware
// such as per-endpoint instrumentation fits here too. GET /healthz is
// outside the wrapper (it bypasses admission entirely).
func WithHandlerWrapper(wrap func(http.Handler) http.Handler) Option {
	return func(s *Server) { s.wrap = wrap }
}

// Server is the HTTP front-end over one Searcher topology. It is safe
// for concurrent use: the topology's snapshot is immutable, and each
// construction session carries its own lock.
type Server struct {
	eng         keysearch.Searcher
	ttl         time.Duration
	maxSessions int
	now         func() time.Time
	mux         *http.ServeMux
	// handler is what admitted /v1/ requests dispatch to: the mux,
	// possibly wrapped (WithHandlerWrapper).
	handler http.Handler
	wrap    func(http.Handler) http.Handler

	// Overload protection (see admission.go): gate is nil when no
	// admission limit is configured, reqTimeout zero when requests get
	// no default deadline; stats is always live so /healthz reports
	// in-flight counts even on an ungated server.
	admission  AdmissionConfig
	gate       *gate
	reqTimeout time.Duration
	stats      *metrics.ServingStats

	// Adaptive governor (see adaptive.go): when enabled it supersedes
	// the static gate on the /v1/ path. agov/agate are nil when off.
	adaptive   AdaptiveConfig
	adaptiveOn bool
	agate      *admission.Gate
	agov       *admission.Governor

	// Observability (see observe.go): obs always aggregates per-endpoint
	// latency histograms and status counters for GET /metrics; tracing,
	// the query log, and the slow-query dump are opt-in.
	obs           *obsMetrics
	tracingOn     bool
	qlog          *qlog.Logger
	slowThreshold time.Duration
	slowf         func(format string, v ...any)

	mu       sync.Mutex
	sessions map[string]*constructSession
}

// constructSession is one server-side construction dialogue. Its mutex
// serialises answers racing on the same session ID.
type constructSession struct {
	mu       sync.Mutex
	cons     *keysearch.Construction
	pending  *keysearch.Question
	lastUsed time.Time
}

// New wraps a Searcher topology — a built *keysearch.Engine or a
// *keysearch.ShardedEngine — in an HTTP handler.
func New(eng keysearch.Searcher, opts ...Option) *Server {
	s := &Server{
		eng:         eng,
		ttl:         15 * time.Minute,
		maxSessions: 1024,
		now:         time.Now,
		stats:       &metrics.ServingStats{},
		sessions:    make(map[string]*constructSession),
		obs:         newObsMetrics(),
		slowf:       defaultSlowf,
	}
	for _, o := range opts {
		o(s)
	}
	if s.adaptiveOn {
		// Built after the option loop so the governor sees the final
		// clock (WithClock) and engine configuration.
		s.initAdaptive()
	}
	if s.maxSessions < 1 {
		s.maxSessions = 1 // a non-positive cap would make eviction spin forever
	}
	if s.ttl <= 0 {
		s.ttl = 15 * time.Minute
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/diversify", s.handleDiversify)
	s.mux.HandleFunc("POST /v1/rows", s.handleRows)
	s.mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /v1/construct", s.handleConstruct)
	s.mux.HandleFunc("GET /v1/keywords", s.handleKeywords)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.mux
	if s.wrap != nil {
		s.handler = s.wrap(s.mux)
	}
	return s
}

// ServeHTTP implements http.Handler. The /v1/ endpoints run through the
// overload-protection path (admission gate, in-flight accounting,
// default deadline); /healthz and unknown paths go straight to the mux
// so observability survives saturation.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		s.serveAdmitted(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// handleHealth answers GET /healthz from one EngineStats snapshot —
// the topology-independent health view every Searcher provides — plus
// the server's own serving counters and configured limits.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:         "ok",
		Parallelism:    st.Parallelism,
		ExecutionCache: st.ExecutionCache,
		Mutable:        st.Mutable,
		Epoch:          st.Epoch,
		Durable:        st.Durable,
		WALBatches:     st.WALBatches,
		LastCheckpoint: st.LastCheckpointEpoch,
		Limits:         s.limitsHealth(st),
		Admission:      AdmissionHealth{ServingSnapshot: s.stats.Snapshot()},
		Adaptive:       s.adaptiveHealth(),
		AnswerCache:    answerCacheHealth(st.AnswerCache),
		Shards:         shardsHealth(st.Shards),
		Build:          buildHealth(),
	})
}

// limitsHealth assembles the nested limits object. With the adaptive
// governor on, the gate fields describe the governor's queue (the
// static gate is superseded on the serving path).
func (s *Server) limitsHealth(st keysearch.EngineStats) LimitsHealth {
	l := LimitsHealth{
		MaxConcurrent:    s.admission.MaxConcurrent,
		MaxQueue:         s.admission.MaxQueue,
		QueueTimeoutMS:   s.admission.QueueTimeout.Milliseconds(),
		RequestTimeoutMS: s.reqTimeout.Milliseconds(),
	}
	if s.adaptiveOn {
		l.MaxConcurrent = s.adaptive.MaxConcurrent
		l.MaxQueue = s.adaptive.MaxQueue
		l.QueueTimeoutMS = s.adaptive.QueueTimeout.Milliseconds()
		l.AdaptiveMinConcurrent = s.adaptive.MinConcurrent
		l.AdaptiveMaxConcurrent = s.adaptive.MaxConcurrent
		l.AdaptiveWindowMS = s.adaptive.Window.Milliseconds()
	}
	if st.AnswerCache != nil {
		l.AnswerCacheBudgetBytes = st.AnswerCache.BudgetBytes
	}
	return l
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a structured error body. Deadline and cancellation
// statuses get their machine-readable code here, so every handler that
// maps an engine error through statusFor reports them identically.
func writeError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{Error: err.Error()}
	switch status {
	case http.StatusGatewayTimeout:
		resp.Code = "deadline_exceeded"
	case 499:
		resp.Code = "client_closed"
	}
	writeJSON(w, status, resp)
}

// statusFor maps engine errors onto HTTP statuses: cancelled requests
// report client closure, deadline expiry (whether from the client's
// context or the server's default request timeout) is a gateway
// timeout, and everything else is a bad request (the engine only fails
// on unusable queries once built).
func statusFor(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("invalid JSON body: %w", err)
	}
	return v, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := decode[keysearch.SearchRequest](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	obsFrom(r).noteQuery(req.Query)
	resp, err := s.eng.Search(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	obsFrom(r).noteResults(resp.Results)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDiversify(w http.ResponseWriter, r *http.Request) {
	req, err := decode[keysearch.DiversifyRequest](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	obsFrom(r).noteQuery(req.Query)
	resp, err := s.eng.Diversify(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	obsFrom(r).noteResults(resp.Results)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	req, err := decode[keysearch.RowsRequest](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	obsFrom(r).noteQuery(req.Query)
	resp, err := s.eng.SearchRows(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if o := obsFrom(r); o != nil {
		o.noteRowCount(len(resp.Rows))
		if len(resp.Rows) > 0 {
			// The top row's producing interpretation is the one the
			// ranking effectively served.
			o.noteInterp(resp.Rows[0].Query, 0)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	req, err := decode[MutateRequest](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.Apply(r.Context(), req.Mutations)
	if err != nil {
		status := statusFor(err)
		if errors.Is(err, keysearch.ErrMutationsDisabled) {
			status = http.StatusForbidden
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Epoch: res.Epoch, Applied: res.Applied})
}

// handleCheckpoint forces a durability checkpoint (admin operation):
// the body is ignored, the response is the keysearch.CheckpointStats of
// the completed checkpoint. 403 when the engine has no state directory.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	stats, err := s.eng.Checkpoint(r.Context())
	if err != nil {
		status := statusFor(err)
		if errors.Is(err, keysearch.ErrDurabilityDisabled) {
			status = http.StatusForbidden
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleKeywords(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid limit %q", v))
			return
		}
		limit = n
	}
	ks := s.eng.Keywords(prefix, limit)
	writeJSON(w, http.StatusOK, KeywordsResponse{Prefix: prefix, Keywords: ks})
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// purgeLocked drops expired sessions; callers hold s.mu.
func (s *Server) purgeLocked() {
	cutoff := s.now().Add(-s.ttl)
	for id, sess := range s.sessions {
		if sess.lastUsed.Before(cutoff) {
			delete(s.sessions, id)
		}
	}
}

// evictOldestLocked drops the least recently used session; callers hold
// s.mu and have verified the map is non-empty.
func (s *Server) evictOldestLocked() {
	var oldestID string
	var oldest time.Time
	for id, sess := range s.sessions {
		if oldestID == "" || sess.lastUsed.Before(oldest) {
			oldestID, oldest = id, sess.lastUsed
		}
	}
	delete(s.sessions, oldestID)
}

func (s *Server) lookupSession(id string) (*constructSession, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked()
	sess, ok := s.sessions[id]
	if ok {
		sess.lastUsed = s.now()
	}
	return sess, ok
}

func (s *Server) handleConstruct(w http.ResponseWriter, r *http.Request) {
	req, err := decode[ConstructStepRequest](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if o := obsFrom(r); o != nil {
		// Defaults for error paths; step handlers overwrite from the
		// response once the dialogue state is known.
		o.action = req.Action
		o.sessionID = req.SessionID
		if req.Start != nil {
			o.query = req.Start.Query
		}
	}
	switch req.Action {
	case "start":
		s.constructStart(w, r, req)
	case "accept", "reject":
		s.constructAnswer(w, r, req)
	case "candidates":
		s.constructCandidates(w, r, req)
	case "cancel":
		s.constructCancel(w, req)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown action %q (want start, accept, reject, candidates, or cancel)", req.Action))
	}
}

func (s *Server) constructStart(w http.ResponseWriter, r *http.Request, req ConstructStepRequest) {
	if req.Start == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`action "start" requires the "start" object`))
		return
	}
	cons, err := s.eng.Construct(r.Context(), *req.Start)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := &constructSession{cons: cons, lastUsed: s.now()}
	s.mu.Lock()
	s.purgeLocked()
	for len(s.sessions) > 0 && len(s.sessions) >= s.maxSessions {
		s.evictOldestLocked()
	}
	s.sessions[id] = sess
	s.mu.Unlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp := s.stepResponse(id, sess, false)
	obsFrom(r).noteConstruct(req.Action, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) constructAnswer(w http.ResponseWriter, r *http.Request, req ConstructStepRequest) {
	sess, ok := s.lookupSession(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.pending == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("session has no pending question"))
		return
	}
	q := *sess.pending
	sess.pending = nil
	var err error
	if req.Action == "accept" {
		err = sess.cons.Accept(r.Context(), q)
	} else {
		err = sess.cons.Reject(r.Context(), q)
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := s.stepResponse(req.SessionID, sess, false)
	obsFrom(r).noteConstruct(req.Action, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) constructCandidates(w http.ResponseWriter, r *http.Request, req ConstructStepRequest) {
	sess, ok := s.lookupSession(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp := s.stepResponse(req.SessionID, sess, true)
	obsFrom(r).noteConstruct(req.Action, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) constructCancel(w http.ResponseWriter, req ConstructStepRequest) {
	s.mu.Lock()
	_, ok := s.sessions[req.SessionID]
	delete(s.sessions, req.SessionID)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled"})
}

// stepResponse computes the dialogue state after a step: the next
// question is selected (and stashed as pending) unless construction has
// converged; candidates are included when converged, when no question is
// left, or when explicitly requested. Callers hold sess.mu.
func (s *Server) stepResponse(id string, sess *constructSession, wantCandidates bool) ConstructStepResponse {
	resp := ConstructStepResponse{
		SessionID: id,
		Done:      sess.cons.Done(),
		Steps:     sess.cons.Steps(),
	}
	if !resp.Done {
		if sess.pending == nil {
			if q, ok := sess.cons.Next(); ok {
				sess.pending = &q
			}
		}
		if sess.pending != nil {
			resp.Question = sess.pending
		}
	}
	if resp.Done || resp.Question == nil || wantCandidates {
		resp.Candidates = sess.cons.Candidates()
	}
	return resp
}

// NumSessions reports the number of live construction sessions (after
// purging expired ones) — exposed for tests and monitoring.
func (s *Server) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked()
	return len(s.sessions)
}
