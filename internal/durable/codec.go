// Package durable provides the low-level persistence primitives the
// keyword-search engine's durability layer is built on:
//
//   - Enc / Dec: a deterministic little-endian binary codec (varints,
//     length-prefixed strings, typed slices) used by every package that
//     serialises part of an engine snapshot. Encoding the same logical
//     state always yields the same bytes — snapshots are byte-stable
//     across runs — and decoding validates every length against the
//     remaining input, so corrupt files fail cleanly instead of
//     allocating unbounded memory.
//   - SnapshotWriter / SnapshotReader: a versioned, sectioned container
//     format. Each section is a named, length-prefixed, CRC-checksummed
//     payload; readers can verify, decode, or skip sections by name, so
//     the format grows additively (an old reader skips sections it does
//     not know, a new reader tolerates their absence).
//   - WAL (wal.go): a length-prefixed, CRC'd, epoch-stamped mutation
//     write-ahead log with torn-tail recovery.
//
// The package deliberately depends only on the standard library: the
// storage layers (relstore, invindex, datagraph) import it to encode
// their own state, and the engine composes those sections into one
// snapshot file.
package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// snapMagic identifies a snapshot container; the trailing digit is the
// container format version (section framing, not section contents —
// each section carries its own evolution via presence/absence).
var snapMagic = []byte("KSNAPv1\n")

// castagnoli is the CRC-32C table shared by sections and WAL records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Enc accumulates a deterministic binary encoding. The zero value is
// ready to use. Methods never fail; the resulting bytes are retrieved
// with Bytes.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded bytes (owned by the encoder).
func (e *Enc) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(u uint64) {
	e.buf = binary.AppendUvarint(e.buf, u)
}

// Int appends a signed integer (zig-zag varint).
func (e *Enc) Int(v int) {
	e.buf = binary.AppendVarint(e.buf, int64(v))
}

// Bool appends a boolean as one byte.
func (e *Enc) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends one raw byte.
func (e *Enc) Byte(b byte) { e.buf = append(e.buf, b) }

// Float appends a float64 as its IEEE-754 bits (little-endian), so the
// encoding is bit-exact.
func (e *Enc) Float(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Ints appends a length-prefixed signed-int slice.
func (e *Enc) Ints(vs []int) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
}

// Strings appends a length-prefixed string slice.
func (e *Enc) Strings(vs []string) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.String(v)
	}
}

// Dec decodes bytes written by Enc. The first malformed read latches an
// error; subsequent reads return zero values, so decode sequences can
// run to completion and check Err once.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a byte slice for decoding.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// fail latches the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("durable: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return u
}

// Int reads a signed integer.
func (d *Dec) Int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("durable: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

// Bool reads a boolean byte.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("durable: truncated byte at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Float reads a float64.
func (d *Dec) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("durable: truncated float at offset %d", d.off)
		return 0
	}
	u := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(u)
}

// length reads a collection length and validates it against the
// remaining input (each element needs at least minBytes bytes), so a
// corrupt length cannot trigger an unbounded allocation.
func (d *Dec) length(minBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.Remaining()/minBytes) {
		d.fail("durable: declared length %d exceeds remaining input (%d bytes)", n, d.Remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Ints reads a length-prefixed signed-int slice (nil when empty).
func (d *Dec) Ints() []int {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Strings reads a length-prefixed string slice (nil when empty).
func (d *Dec) Strings() []string {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	return out
}

// SnapshotWriter writes a sectioned snapshot container. Sections are
// written in call order; Close appends the end marker. Every section is
// CRC-32C checksummed independently, so corruption is detected at the
// granularity of the subsystem it hits.
type SnapshotWriter struct {
	w   io.Writer
	err error
}

// NewSnapshotWriter writes the container magic and returns the writer.
func NewSnapshotWriter(w io.Writer) (*SnapshotWriter, error) {
	if _, err := w.Write(snapMagic); err != nil {
		return nil, fmt.Errorf("durable: write magic: %w", err)
	}
	return &SnapshotWriter{w: w}, nil
}

// Section writes one named section with its CRC. Payload bytes are
// owned by the caller and not retained.
func (sw *SnapshotWriter) Section(name string, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if name == "" || name == endSection {
		return fmt.Errorf("durable: invalid section name %q", name)
	}
	sw.err = sw.writeSection(name, payload)
	return sw.err
}

// endSection terminates the section stream.
const endSection = "end"

func (sw *SnapshotWriter) writeSection(name string, payload []byte) error {
	var hdr Enc
	hdr.String(name)
	hdr.Uvarint(uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	for _, b := range [][]byte{hdr.Bytes(), crc[:], payload} {
		if _, err := sw.w.Write(b); err != nil {
			return fmt.Errorf("durable: write section %s: %w", name, err)
		}
	}
	return nil
}

// Close writes the end marker. It does not close the underlying writer.
func (sw *SnapshotWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.writeSection(endSection, nil)
	return sw.err
}

// SnapshotReader iterates the sections of a snapshot container.
type SnapshotReader struct {
	r   *byteScanner
	err error
}

// byteScanner adapts an io.Reader for varint-by-varint header reads.
type byteScanner struct {
	r   io.Reader
	one [1]byte
}

func (b *byteScanner) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteScanner) Read(p []byte) (int, error) { return b.r.Read(p) }

// NewSnapshotReader validates the container magic.
func NewSnapshotReader(r io.Reader) (*SnapshotReader, error) {
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("durable: read magic: %w", err)
	}
	if string(magic) != string(snapMagic) {
		return nil, fmt.Errorf("durable: not a snapshot file (bad magic %q)", magic)
	}
	return &SnapshotReader{r: &byteScanner{r: r}}, nil
}

// maxSectionName bounds section-name reads on corrupt input.
const maxSectionName = 256

// Next returns the next section's name and verified payload, or io.EOF
// after the end marker. A CRC mismatch or malformed framing returns an
// error naming the section.
func (sr *SnapshotReader) Next() (string, []byte, error) {
	if sr.err != nil {
		return "", nil, sr.err
	}
	nameLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		sr.err = fmt.Errorf("durable: read section header: %w", err)
		return "", nil, sr.err
	}
	if nameLen == 0 || nameLen > maxSectionName {
		sr.err = fmt.Errorf("durable: invalid section name length %d", nameLen)
		return "", nil, sr.err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(sr.r, name); err != nil {
		sr.err = fmt.Errorf("durable: read section name: %w", err)
		return "", nil, sr.err
	}
	payloadLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		sr.err = fmt.Errorf("durable: section %s: read length: %w", name, err)
		return "", nil, sr.err
	}
	var crc [4]byte
	if _, err := io.ReadFull(sr.r, crc[:]); err != nil {
		sr.err = fmt.Errorf("durable: section %s: read checksum: %w", name, err)
		return "", nil, sr.err
	}
	payload, err := readN(sr.r, payloadLen)
	if err != nil {
		sr.err = fmt.Errorf("durable: section %s: read payload: %w", name, err)
		return "", nil, sr.err
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(crc[:]); got != want {
		sr.err = fmt.Errorf("durable: section %s: checksum mismatch (got %08x, want %08x)", name, got, want)
		return "", nil, sr.err
	}
	if string(name) == endSection {
		sr.err = io.EOF
		return "", nil, io.EOF
	}
	return string(name), payload, nil
}

// readN reads exactly n bytes without trusting n for the allocation
// size: growth is incremental, so a corrupt declared length is bounded
// by the input's actual size instead of the declared one.
func readN(r io.Reader, n uint64) ([]byte, error) {
	if n > math.MaxInt64/2 {
		return nil, fmt.Errorf("implausible payload length %d", n)
	}
	var buf bytes.Buffer
	const preGrow = 1 << 20
	if n < preGrow {
		buf.Grow(int(n))
	} else {
		buf.Grow(preGrow)
	}
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
