package keysearch

import (
	"io"

	"repro/internal/datagen"
	"repro/internal/relstore"
)

// DemoMovies returns a ready-built Engine over the bundled synthetic
// movie database (the IMDB-style dataset of the reproduction's
// experiments): 7 tables — actor, director, movie, company, acts,
// directs, produced_by. Deterministic for a given seed.
func DemoMovies(seed int64) (*Engine, error) {
	return DemoMoviesWith(seed)
}

// DemoMoviesWith is DemoMovies with extra engine options appended to the
// dataset's defaults (join-path length 4, co-occurrence relevance).
func DemoMoviesWith(seed int64, opts ...Option) (*Engine, error) {
	db, err := datagen.IMDB(datagen.IMDBConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	eng := fromDatabase(db, append([]Option{WithMaxJoinPath(4), WithCoOccurrence()}, opts...)...)
	if err := eng.Build(); err != nil {
		return nil, err
	}
	return eng, nil
}

// DemoMoviesScaled is DemoMoviesWith at a custom data scale: row counts
// are the demo defaults multiplied by scale (scale 1 ≈ 400 movies, 300
// actors). The benchmark harness uses it to build the "large seed
// dataset" the perf trajectory is tracked on.
func DemoMoviesScaled(seed int64, scale float64, opts ...Option) (*Engine, error) {
	if scale <= 0 {
		scale = 1
	}
	db, err := datagen.IMDB(datagen.IMDBConfig{
		Movies:    int(400 * scale),
		Actors:    int(300 * scale),
		Directors: int(80 * scale),
		Companies: int(40 * scale),
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	eng := fromDatabase(db, append([]Option{WithMaxJoinPath(4), WithCoOccurrence()}, opts...)...)
	if err := eng.Build(); err != nil {
		return nil, err
	}
	return eng, nil
}

// DemoMusic returns a ready-built Engine over the bundled synthetic
// lyrics database (5 tables with the artist ⋈ artist_album ⋈ album ⋈
// album_song ⋈ song chain schema).
func DemoMusic(seed int64) (*Engine, error) {
	return DemoMusicWith(seed)
}

// DemoMusicWith is DemoMusic with extra engine options appended to the
// dataset's defaults (join-path length 5 for the chain schema,
// co-occurrence relevance).
func DemoMusicWith(seed int64, opts ...Option) (*Engine, error) {
	db, err := datagen.Lyrics(datagen.LyricsConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	eng := fromDatabase(db, append([]Option{WithMaxJoinPath(5), WithCoOccurrence()}, opts...)...)
	if err := eng.Build(); err != nil {
		return nil, err
	}
	return eng, nil
}

// NewFromDatabase builds a ready Engine over an arbitrary relational
// database — the constructor the load-generation harness uses to stand
// up engines over million-row datagen datasets without a serialise/
// deserialise round trip. Options are applied as given (no dataset
// defaults are injected; pass WithMaxJoinPath etc. explicitly).
func NewFromDatabase(db *relstore.Database, opts ...Option) (*Engine, error) {
	eng := fromDatabase(db, opts...)
	if err := eng.Build(); err != nil {
		return nil, err
	}
	return eng, nil
}

// SampleQueries returns ambiguous keyword queries that work well against
// the demo datasets, for use in examples and quickstarts. The returned
// queries are tokens that genuinely occur in the demo data.
func (e *Engine) SampleQueries(n int) []string {
	s := e.current()
	if s == nil {
		return nil
	}
	// Tokens occurring in more than one attribute are ambiguous.
	var out []string
	seen := map[string]bool{}
	for _, attr := range s.ix.Attributes() {
		t := s.db.Table(attr.Table)
		ci := t.Schema.ColumnIndex(attr.Column)
		for _, row := range t.Rows() {
			if !t.Live(row.RowID) {
				continue
			}
			for _, tok := range parse(row.Values[ci]) {
				if seen[tok] || len(tok) < 4 {
					continue
				}
				if len(s.ix.Lookup(tok)) > 1 {
					seen[tok] = true
					out = append(out, tok)
					if len(out) >= n {
						return out
					}
				}
			}
		}
	}
	return out
}

// SaveTo serialises the engine's database (schema and live rows of the
// current snapshot) to the writer; indexes are rebuilt on load. Use Load
// to restore. For a full-state round trip that skips the rebuild and
// preserves physical row identity (tombstones, RowIDs, posting lists),
// use SaveSnapshot / OpenSnapshot instead.
func (e *Engine) SaveTo(w io.Writer) error {
	if s := e.current(); s != nil {
		return s.db.Save(w)
	}
	return e.db.Save(w)
}

// Load restores a database written by SaveTo and builds a ready Engine
// over it with the given options.
func Load(r io.Reader, opts ...Option) (*Engine, error) {
	db, err := relstore.Load(r)
	if err != nil {
		return nil, err
	}
	eng := fromDatabase(db, opts...)
	if err := eng.Build(); err != nil {
		return nil, err
	}
	return eng, nil
}
