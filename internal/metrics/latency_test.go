package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramExactSmallValues(t *testing.T) {
	h := NewLatencyHistogram()
	for v := 0; v < linearLimit; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != linearLimit {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != linearLimit-1 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Every small value lands in its own bucket.
	for v := 0; v < linearLimit; v++ {
		if h.counts[v] != 1 {
			t.Fatalf("bucket %d count = %d", v, h.counts[v])
		}
	}
}

func TestLatencyHistogramRelativeError(t *testing.T) {
	// Any recorded value must be reproducible from its bucket midpoint
	// within the 1/64 relative-error bound.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63n(int64(10 * time.Minute))
		mid := bucketMid(bucketOf(v))
		diff := v - mid
		if diff < 0 {
			diff = -diff
		}
		if v >= linearLimit && float64(diff) > float64(v)/float64(subCount) {
			t.Fatalf("value %d quantised to %d (error %d > %d)", v, mid, diff, v/subCount)
		}
		if v < linearLimit && mid != v {
			t.Fatalf("small value %d quantised to %d", v, mid)
		}
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// Uniform 1..1000 ms: quantiles must land within ~2% of the exact
	// order statistics.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.97)
		hi := time.Duration(float64(c.want) * 1.03)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("extreme quantiles not exact: %v/%v vs %v/%v",
			h.Quantile(0), h.Quantile(1), h.Min(), h.Max())
	}
	if h.Mean() != 500*time.Millisecond+500*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestLatencyHistogramMergeEquivalence(t *testing.T) {
	// Recording into N histograms and merging must equal recording
	// everything into one (the per-worker pattern of the load runner).
	rng := rand.New(rand.NewSource(7))
	whole := NewLatencyHistogram()
	parts := make([]*LatencyHistogram, 4)
	for i := range parts {
		parts[i] = NewLatencyHistogram()
	}
	for i := 0; i < 20000; i++ {
		v := time.Duration(rng.Int63n(int64(3 * time.Second)))
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := NewLatencyHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Fatalf("merge summary diverged: %v vs %v", merged, whole)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("Quantile(%v): merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestLatencyHistogramCoordinatedOmission(t *testing.T) {
	// One 1s stall at a 10ms expected interval must back-fill the
	// observations a non-coordinated client would have made: ~100
	// samples instead of 1, pulling the median up to ~500ms.
	h := NewLatencyHistogram()
	h.RecordCorrected(time.Second, 10*time.Millisecond)
	if h.Count() != 100 {
		t.Fatalf("corrected count = %d, want 100", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 400*time.Millisecond || med > 600*time.Millisecond {
		t.Fatalf("corrected median = %v, want ≈500ms", med)
	}
	// Without correction the same stall is a single sample.
	u := NewLatencyHistogram()
	u.RecordCorrected(time.Second, 0)
	if u.Count() != 1 {
		t.Fatalf("uncorrected count = %d", u.Count())
	}
}

// TestConcurrentRecordMerge pins the documented concurrency contract
// under -race: a LatencyHistogram is single-owner, so workers Record
// into private histograms concurrently and hand each finished
// histogram to a merging goroutine over a channel. The pattern must be
// race-free and lossless end to end.
func TestConcurrentRecordMerge(t *testing.T) {
	const workers, perWorker = 8, 5000
	done := make(chan *LatencyHistogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			h := NewLatencyHistogram()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(rng.Int63n(int64(2 * time.Second))))
			}
			done <- h
		}(int64(w + 1))
	}
	// Merge concurrently with recording: each histogram arrives only
	// after its owner finished, so the channel is the synchronisation
	// point the race detector checks.
	merged := NewLatencyHistogram()
	mergedAll := make(chan struct{})
	go func() {
		defer close(mergedAll)
		for i := 0; i < workers; i++ {
			merged.Merge(<-done)
		}
	}()
	wg.Wait()
	<-mergedAll
	if merged.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", merged.Count(), workers*perWorker)
	}
	if merged.Quantile(0.5) <= 0 || merged.Max() <= merged.Min() {
		t.Fatalf("merged summary degenerate: %v", merged)
	}
}

func TestServingStatsHighWaterAndCounters(t *testing.T) {
	var s ServingStats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.StartQueued()
				s.StartRequest()
				s.EndQueued()
				s.EndRequest()
			}
			s.ShedQueueFull()
			s.ShedQueueTimeout()
			s.DeadlineExceeded()
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Fatalf("gauges not drained: %+v", snap)
	}
	if snap.Served != 8000 {
		t.Fatalf("served = %d", snap.Served)
	}
	if snap.MaxInFlight < 1 || snap.MaxInFlight > 8 || snap.MaxQueued < 1 || snap.MaxQueued > 8 {
		t.Fatalf("high-water marks out of range: %+v", snap)
	}
	if snap.ShedQueueFull != 8 || snap.ShedQueueTimeout != 8 || snap.DeadlineExceeded != 8 {
		t.Fatalf("shed counters wrong: %+v", snap)
	}
}
