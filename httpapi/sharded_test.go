package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	keysearch "repro"
)

// TestShardedServerByteIdentical serves the same dataset through an
// unsharded engine and a 3-shard coordinator and asserts the HTTP
// responses — the actual bytes on the wire — are identical, then checks
// /healthz exposes the shards block only on the sharded server.
func TestShardedServerByteIdentical(t *testing.T) {
	plain := demoEngine(t)
	shardedEng, err := keysearch.DemoMovies(7)
	if err != nil {
		t.Fatal(err)
	}
	se, err := keysearch.NewShardedEngine(3, shardedEng)
	if err != nil {
		t.Fatal(err)
	}

	tsPlain := httptest.NewServer(New(plain))
	defer tsPlain.Close()
	tsSharded := httptest.NewServer(New(se))
	defer tsSharded.Close()

	fetch := func(base, path, body string) (int, string) {
		t.Helper()
		var resp *http.Response
		var err error
		if body == "" {
			resp, err = http.Get(base + path)
		} else {
			resp, err = http.Post(base+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw)
	}

	queries := plain.SampleQueries(3)
	for _, q := range queries {
		for _, req := range []struct{ path, body string }{
			{"/v1/search", `{"query":"` + q + `","k":4,"row_limit":2}`},
			{"/v1/diversify", `{"query":"` + q + `","k":3,"lambda":0.5}`},
			{"/v1/rows", `{"query":"` + q + `","k":5}`},
		} {
			wc, want := fetch(tsPlain.URL, req.path, req.body)
			gc, got := fetch(tsSharded.URL, req.path, req.body)
			if wc != gc || want != got {
				t.Fatalf("%s(%q): sharded response diverges\n  plain   (%d): %.300s\n  sharded (%d): %.300s",
					req.path, q, wc, want, gc, got)
			}
		}
	}

	// The sharded server's /healthz carries the shards block with sane
	// contents; the plain server omits it.
	plainHealth := getHealth(t, tsPlain.Client(), tsPlain.URL)
	shardedHealth := getHealth(t, tsSharded.Client(), tsSharded.URL)
	if plainHealth.Shards != nil {
		t.Fatalf("unsharded /healthz has a shards block: %+v", plainHealth.Shards)
	}
	sh := shardedHealth.Shards
	if sh == nil || sh.Count != 3 || len(sh.Shards) != 3 {
		t.Fatalf("sharded /healthz shards block malformed: %+v", sh)
	}
	if sh.Scatters == 0 || sh.MergedResults == 0 {
		t.Fatalf("sharded server never scattered over HTTP: %+v", sh)
	}
	rows := 0
	for _, s := range sh.Shards {
		rows += s.Rows
	}
	if rows != se.Engine().NumRows() {
		t.Fatalf("/healthz per-shard rows sum %d != live rows %d", rows, se.Engine().NumRows())
	}
}
