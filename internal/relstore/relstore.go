// Package relstore implements the in-memory relational storage engine that
// the keyword-search stack runs on.
//
// The thesis evaluates against MySQL; the algorithms under study only need a
// small, well-defined slice of relational functionality from the substrate:
//
//   - schema introspection (tables, columns, primary keys, foreign keys),
//   - point lookups by primary key,
//   - selection with "attribute value contains keyword bag" predicates, and
//   - execution of candidate networks (foreign-key joins over selections),
//     materialising joining trees of tuples (JTTs).
//
// This package provides exactly those code paths. All values are stored as
// strings because every algorithm in the thesis treats tuples as bags of
// text terms (numbers such as years are matched textually too, e.g. the
// keyword "2001" against movie.year).
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one attribute of a table.
type Column struct {
	// Name of the attribute, unique within its table.
	Name string
	// Indexed marks textual attributes that participate in keyword search.
	// Key columns (surrogate ids) are typically not indexed.
	Indexed bool
}

// ForeignKey declares that Column of the owning table references
// RefColumn of RefTable (a classic FK → PK relationship).
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// TableSchema is the static description of a table.
type TableSchema struct {
	Name        string
	Columns     []Column
	PrimaryKey  string
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the positional index of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the schema declares the named column.
func (s *TableSchema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// TextColumns returns the names of all indexed (textual) columns.
func (s *TableSchema) TextColumns() []string {
	var out []string
	for _, c := range s.Columns {
		if c.Indexed {
			out = append(out, c.Name)
		}
	}
	return out
}

// Tuple is one row of a table. Values are positionally aligned with the
// table schema's Columns slice.
type Tuple struct {
	// RowID is a table-local surrogate identifier, assigned densely from 0
	// in insertion order. It doubles as the "primary key" notion used by the
	// DivQ evaluation metrics (an information nugget / subtopic identity).
	RowID  int
	Values []string
}

// Table is a materialised relation plus its lookup indexes.
//
// Reads (Row, Value, LookupEqual, SelectContains, Execute over the
// database) are safe for concurrent use; Insert is not and must complete
// before concurrent reads begin (the load-then-Build lifecycle of the
// public API). Post-build row changes never touch a live Table: they go
// through Database.Apply (see mutate.go), which clones the affected
// tables copy-on-write and leaves every existing reader's view intact.
type Table struct {
	Schema *TableSchema

	rows []Tuple
	// dead marks tombstoned rows (nil until the first delete; parallel to
	// rows once allocated). RowIDs are never reused, so every derived
	// structure keyed by RowID stays valid across deletes; iteration and
	// lazy index construction skip dead rows via Live.
	dead    []bool
	numDead int
	// value indexes per column: column position -> value -> row ids.
	// Built lazily for columns used in joins or PK lookups; idxMu guards
	// lazy construction under concurrent readers.
	idxMu    sync.Mutex
	valueIdx map[int]map[string][]int

	// token posting lists per column: column position -> token -> rows
	// with per-row counts. Built lazily on first keyword selection (or
	// eagerly by Database.Prepare); postMu guards lazy construction under
	// concurrent readers. See postings.go.
	postMu   sync.RWMutex
	postings map[int]*columnPostings
}

// NewTable creates an empty table for the given schema.
func NewTable(schema *TableSchema) *Table {
	return &Table{
		Schema:   schema,
		valueIdx: make(map[int]map[string][]int),
		postings: make(map[int]*columnPostings),
	}
}

// Insert appends a row and returns its RowID.
// The number of values must match the schema.
func (t *Table) Insert(values ...string) (int, error) {
	if len(values) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("relstore: table %s expects %d values, got %d",
			t.Schema.Name, len(t.Schema.Columns), len(values))
	}
	id := len(t.rows)
	vals := make([]string, len(values))
	copy(vals, values)
	t.rows = append(t.rows, Tuple{RowID: id, Values: vals})
	t.idxMu.Lock()
	for col, idx := range t.valueIdx {
		idx[vals[col]] = append(idx[vals[col]], id)
	}
	t.idxMu.Unlock()
	t.postMu.Lock()
	for col, cp := range t.postings {
		cp.addRow(id, vals[col])
	}
	t.postMu.Unlock()
	return id, nil
}

// Len returns the physical number of row slots, tombstones included.
// Derived structures sized by RowID (bitsets, dense arrays) use Len;
// data-level cardinality is NumLive.
func (t *Table) Len() int { return len(t.rows) }

// NumLive returns the number of live (non-tombstoned) rows.
func (t *Table) NumLive() int { return len(t.rows) - t.numDead }

// Live reports whether the RowID names an existing, non-deleted row.
func (t *Table) Live(id int) bool {
	return id >= 0 && id < len(t.rows) && (t.dead == nil || !t.dead[id])
}

// Row returns the tuple with the given RowID; deleted rows report ok=false.
func (t *Table) Row(id int) (Tuple, bool) {
	if !t.Live(id) {
		return Tuple{}, false
	}
	return t.rows[id], true
}

// Rows returns the backing row slice, tombstoned slots included; callers
// must not mutate it and must skip rows for which Live reports false when
// iterating a table that has seen deletes.
func (t *Table) Rows() []Tuple { return t.rows }

// Value returns the named column's value of the given row.
func (t *Table) Value(id int, column string) (string, bool) {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 || !t.Live(id) {
		return "", false
	}
	return t.rows[id].Values[ci], true
}

// ensureIndex builds (once) the equality index over the given column.
// Safe for concurrent readers: construction happens under idxMu.
func (t *Table) ensureIndex(col int) map[string][]int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if idx, ok := t.valueIdx[col]; ok {
		return idx
	}
	idx := make(map[string][]int)
	for _, r := range t.rows {
		if !t.Live(r.RowID) {
			continue
		}
		idx[r.Values[col]] = append(idx[r.Values[col]], r.RowID)
	}
	t.valueIdx[col] = idx
	return idx
}

// LookupEqual returns the RowIDs whose column equals value, using a hash
// index that is built on first use.
func (t *Table) LookupEqual(column, value string) []int {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	return t.ensureIndex(ci)[value]
}

// Database is a named collection of tables with schema metadata.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// CreateTable registers a new table. The schema is validated: the primary
// key column must exist and foreign keys must reference existing columns
// of this table (referenced tables may be created later; ValidateRefs
// checks cross-table integrity).
func (db *Database) CreateTable(schema *TableSchema) (*Table, error) {
	if schema.Name == "" {
		return nil, fmt.Errorf("relstore: table name must be non-empty")
	}
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relstore: table %s already exists", schema.Name)
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("relstore: table %s has no columns", schema.Name)
	}
	seen := make(map[string]bool, len(schema.Columns))
	for _, c := range schema.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("relstore: table %s has a column with empty name", schema.Name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("relstore: table %s declares column %s twice", schema.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if schema.PrimaryKey != "" && !schema.HasColumn(schema.PrimaryKey) {
		return nil, fmt.Errorf("relstore: table %s: primary key %s is not a column",
			schema.Name, schema.PrimaryKey)
	}
	for _, fk := range schema.ForeignKeys {
		if !schema.HasColumn(fk.Column) {
			return nil, fmt.Errorf("relstore: table %s: foreign key column %s is not a column",
				schema.Name, fk.Column)
		}
	}
	t := NewTable(schema)
	db.tables[schema.Name] = t
	db.order = append(db.order, schema.Name)
	return t, nil
}

// Table returns the named table, or nil if it does not exist.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// Tables returns all tables in creation order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// TableNames returns the table names in creation order.
func (db *Database) TableNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// NumTables returns the number of tables.
func (db *Database) NumTables() int { return len(db.order) }

// NumRows returns the total number of live rows across all tables.
func (db *Database) NumRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.NumLive()
	}
	return n
}

// ValidateRefs checks that every declared foreign key references an existing
// table and column. Call after all tables have been created.
func (db *Database) ValidateRefs() error {
	for _, name := range db.order {
		t := db.tables[name]
		for _, fk := range t.Schema.ForeignKeys {
			ref := db.tables[fk.RefTable]
			if ref == nil {
				return fmt.Errorf("relstore: table %s: foreign key references unknown table %s",
					name, fk.RefTable)
			}
			if !ref.Schema.HasColumn(fk.RefColumn) {
				return fmt.Errorf("relstore: table %s: foreign key references unknown column %s.%s",
					name, fk.RefTable, fk.RefColumn)
			}
		}
	}
	return nil
}

// ContainsBag reports whether every keyword of the bag occurs as a token of
// the attribute value. Matching is case-insensitive on whole tokens,
// mirroring the "k ∈ A" containment predicate of Definition 3.5.2.
func ContainsBag(value string, keywords []string) bool {
	toks := Tokenize(value)
	set := make(map[string]int, len(toks))
	for _, t := range toks {
		set[t]++
	}
	// Bag semantics: duplicated keywords need duplicated occurrences.
	need := make(map[string]int, len(keywords))
	for _, k := range keywords {
		need[strings.ToLower(k)]++
	}
	for k, n := range need {
		if set[k] < n {
			return false
		}
	}
	return true
}

// Tokenize splits a value into lower-cased alphanumeric tokens. It is the
// single tokenizer shared by the storage engine and the inverted index so
// that containment predicates and postings agree exactly.
func Tokenize(value string) []string {
	var out []string
	start := -1
	lower := strings.ToLower(value)
	for i, r := range lower {
		alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if alnum {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, lower[start:])
	}
	return out
}

// SelectContains returns the RowIDs of rows whose column value contains
// the whole keyword bag, ascending. It evaluates from the column's token
// posting lists — a sorted-list intersection with per-row counts for
// duplicated keywords — and agrees exactly with applying ContainsBag row
// by row (SelectContainsScan is the retained scan reference; differential
// tests enforce the agreement). The returned slice may alias the posting
// lists and must be treated as read-only.
func (t *Table) SelectContains(column string, keywords []string) []int {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	return t.selectPostings(ci, keywords)
}

// SortedCopy returns ids sorted ascending without mutating the input.
func SortedCopy(ids []int) []int {
	out := make([]int, len(ids))
	copy(out, ids)
	sort.Ints(out)
	return out
}
