package keysearch

import (
	"testing"

	"repro/internal/trace"
)

// TestTracingIsObservationOnly is the engine-level differential: the
// same request with and without a trace in the context must produce
// byte-identical responses, locally and at shard counts {1, 3}.
func TestTracingIsObservationOnly(t *testing.T) {
	eng := churnEngine(t, WithAnswerCache(answerCacheTestBudget))
	engines := map[string]Searcher{"local": eng}
	for _, n := range []int{1, 3} {
		se, err := NewShardedEngine(n, churnEngine(t, WithAnswerCache(answerCacheTestBudget)))
		if err != nil {
			t.Fatal(err)
		}
		engines[map[int]string{1: "sharded1", 3: "sharded3"}[n]] = se
	}
	queries := append(eng.SampleQueries(3), "north south")
	for name, s := range engines {
		for _, q := range queries {
			// Run each endpoint twice — cold then warm — so cache-hit
			// paths are traced too.
			for pass := 0; pass < 2; pass++ {
				tctx := trace.NewContext(bg, trace.New("diff"))
				for kind, both := range map[string][2]func() (any, error){
					"search": {
						func() (any, error) { return s.Search(bg, SearchRequest{Query: q, K: 5, RowLimit: 3}) },
						func() (any, error) { return s.Search(tctx, SearchRequest{Query: q, K: 5, RowLimit: 3}) },
					},
					"rows": {
						func() (any, error) { return s.SearchRows(bg, RowsRequest{Query: q, K: 5}) },
						func() (any, error) { return s.SearchRows(tctx, RowsRequest{Query: q, K: 5}) },
					},
					"diversify": {
						func() (any, error) { return s.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5}) },
						func() (any, error) { return s.Diversify(tctx, DiversifyRequest{Query: q, K: 4, Lambda: 0.5}) },
					},
				} {
					pv, perr := both[0]()
					tv, terr := both[1]()
					plain := asJSON(t, pv, perr)
					traced := asJSON(t, tv, terr)
					if plain != traced {
						t.Fatalf("%s/%s(%q) pass %d: traced response diverges:\n  plain:  %.300s\n  traced: %.300s",
							name, kind, q, pass, plain, traced)
					}
				}
			}
		}
	}
}

// TestTraceRecordsEngineStages asserts the instrumentation is live: a
// traced SearchRows must leave the stage spans and work counters the
// slow-query dump and query log are built from.
func TestTraceRecordsEngineStages(t *testing.T) {
	eng := churnEngine(t, WithAnswerCache(answerCacheTestBudget))
	q := eng.SampleQueries(1)[0]

	tr := trace.New("local")
	if _, err := eng.SearchRows(trace.NewContext(bg, tr), RowsRequest{Query: q, K: 5}); err != nil {
		t.Fatal(err)
	}
	d := tr.Snapshot()
	st := d.StageDurations()
	for _, stage := range []string{"parse", "interpret", "rank", "execute"} {
		if _, ok := st[stage]; !ok {
			t.Fatalf("stage %q missing from trace: %v", stage, st)
		}
	}
	if d.Counters["topk_executed"] == 0 && d.Counters["topk_skipped"] == 0 {
		t.Fatalf("topk counters missing: %v", d.Counters)
	}
	if d.Counters["plans_executed"] == 0 {
		t.Fatalf("executor counters missing: %v", d.Counters)
	}
	if d.Counters["interpretations_ranked"] == 0 {
		t.Fatalf("ranking counter missing: %v", d.Counters)
	}
	// Answer-cache consultation must be visible (hits or misses).
	if d.Counters["answer_cache_selection_hits"]+d.Counters["answer_cache_selection_misses"] == 0 {
		t.Fatalf("answer-cache counters missing: %v", d.Counters)
	}

	// Sharded: per-shard busy counters, merge time, fan-out annotation.
	se, err := NewShardedEngine(3, churnEngine(t, WithAnswerCache(answerCacheTestBudget)))
	if err != nil {
		t.Fatal(err)
	}
	str := trace.New("sharded")
	if _, err := se.SearchRows(trace.NewContext(bg, str), RowsRequest{Query: q, K: 5}); err != nil {
		t.Fatal(err)
	}
	sd := str.Snapshot()
	if sd.Annotations["shard_fanout"] != "3" {
		t.Fatalf("fanout annotation = %q, want 3 (%v)", sd.Annotations["shard_fanout"], sd.Annotations)
	}
	if sd.Counters["shard_scatters"] == 0 || sd.Counters["shard_executions"] == 0 {
		t.Fatalf("shard counters missing: %v", sd.Counters)
	}
	busy := 0
	for _, name := range sd.SortedCounterNames() {
		if len(name) > 6 && name[:6] == "shard_" && len(name) > 8 && name[len(name)-8:] == "_busy_ns" {
			busy++
		}
	}
	if busy == 0 {
		t.Fatalf("no per-shard busy-time counters: %v", sd.Counters)
	}
	if _, ok := sd.Counters["shard_merge_ns"]; !ok {
		t.Fatalf("merge timing missing: %v", sd.Counters)
	}
}
