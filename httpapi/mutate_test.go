package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	keysearch "repro"
)

// mutableDemoEngine builds a fresh mutable movie engine (not the shared
// read-only one: these tests change data).
func mutableDemoEngine(t *testing.T) *keysearch.Engine {
	t.Helper()
	eng, err := keysearch.DemoMoviesWith(7, keysearch.WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPMutateLifecycle(t *testing.T) {
	eng := mutableDemoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	var health HealthResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if !health.Mutable || health.Epoch != 0 {
		t.Fatalf("healthz = %+v, want mutable epoch 0", health)
	}

	var mres MutateResponse
	code := post(t, ts.Client(), ts.URL+"/v1/mutate", MutateRequest{Mutations: []keysearch.Mutation{
		{Op: keysearch.OpInsert, Table: "actor", Values: []string{"zz1", "Zelda Zeppelin"}},
	}}, &mres)
	if code != http.StatusOK || mres.Epoch != 1 || mres.Applied != 1 {
		t.Fatalf("mutate: code=%d resp=%+v", code, mres)
	}

	// The inserted row is immediately searchable.
	var sres keysearch.SearchResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/search", keysearch.SearchRequest{Query: "zeppelin", K: 3}, &sres); code != http.StatusOK {
		t.Fatalf("search after mutate = %d", code)
	}
	if len(sres.Results) == 0 {
		t.Fatal("mutation not visible to search")
	}

	// The epoch advanced on /healthz.
	if getJSON(t, ts.Client(), ts.URL+"/healthz", &health); health.Epoch != 1 {
		t.Fatalf("healthz epoch = %d, want 1", health.Epoch)
	}

	// Delete it again; the keyword disappears.
	if code := post(t, ts.Client(), ts.URL+"/v1/mutate", MutateRequest{Mutations: []keysearch.Mutation{
		{Op: keysearch.OpDelete, Table: "actor", Key: "zz1"},
	}}, &mres); code != http.StatusOK || mres.Epoch != 2 {
		t.Fatalf("delete: code=%d resp=%+v", code, mres)
	}
	var eres ErrorResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/search", keysearch.SearchRequest{Query: "zeppelin"}, &eres); code != http.StatusBadRequest {
		t.Fatalf("search for deleted keyword = %d, want 400", code)
	}
}

func TestHTTPMutateValidationErrors(t *testing.T) {
	eng := mutableDemoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	cases := []struct {
		name string
		muts []keysearch.Mutation
		want string
	}{
		{"empty batch", nil, "empty mutation batch"},
		{"unknown table", []keysearch.Mutation{{Op: keysearch.OpInsert, Table: "ghost", Values: []string{"x"}}}, "unknown table"},
		{"unknown op", []keysearch.Mutation{{Op: "replace", Table: "actor", Values: []string{"a", "b"}}}, "unknown op"},
		{"wrong arity", []keysearch.Mutation{{Op: keysearch.OpInsert, Table: "actor", Values: []string{"only"}}}, "expects"},
		{"missing key", []keysearch.Mutation{{Op: keysearch.OpDelete, Table: "actor"}}, "empty key"},
		{"unknown key", []keysearch.Mutation{{Op: keysearch.OpDelete, Table: "actor", Key: "nope"}}, "no row with"},
	}
	for _, tc := range cases {
		var eres ErrorResponse
		code := post(t, ts.Client(), ts.URL+"/v1/mutate", MutateRequest{Mutations: tc.muts}, &eres)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
		if !strings.Contains(eres.Error, tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, eres.Error, tc.want)
		}
	}

	// Nothing leaked and the epoch never moved.
	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if health.Epoch != 0 {
		t.Fatalf("epoch after rejected batches = %d, want 0", health.Epoch)
	}
}

func TestHTTPMutateDisabled(t *testing.T) {
	eng := demoEngine(t) // shared immutable engine
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	var eres ErrorResponse
	code := post(t, ts.Client(), ts.URL+"/v1/mutate", MutateRequest{Mutations: []keysearch.Mutation{
		{Op: keysearch.OpInsert, Table: "actor", Values: []string{"x1", "X"}},
	}}, &eres)
	if code != http.StatusForbidden {
		t.Fatalf("mutate on immutable engine = %d, want 403", code)
	}
	if !strings.Contains(eres.Error, "disabled") {
		t.Fatalf("error = %q", eres.Error)
	}
	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if health.Mutable {
		t.Fatal("healthz reports mutable on immutable engine")
	}
}

// TestHTTPMutateConcurrentWithSearch hammers /v1/mutate and /v1/search
// concurrently through the full HTTP stack; every search must return a
// consistent 200/400 outcome and every mutation must commit in order.
func TestHTTPMutateConcurrentWithSearch(t *testing.T) {
	eng := mutableDemoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	q := eng.SampleQueries(1)[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			var mres MutateResponse
			key := "cc" + string(rune('a'+i))
			if code := post(t, ts.Client(), ts.URL+"/v1/mutate", MutateRequest{Mutations: []keysearch.Mutation{
				{Op: keysearch.OpInsert, Table: "actor", Values: []string{key, "Touring Artist"}},
				{Op: keysearch.OpDelete, Table: "actor", Key: key},
			}}, &mres); code != http.StatusOK {
				t.Errorf("mutate %d failed: %d", i, code)
				return
			}
			if mres.Epoch != uint64(i+1) {
				t.Errorf("epoch = %d, want %d", mres.Epoch, i+1)
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case <-done:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("mutation loop did not finish")
		}
		var sres keysearch.SearchResponse
		if code := post(t, ts.Client(), ts.URL+"/v1/search", keysearch.SearchRequest{Query: q, K: 2}, &sres); code != http.StatusOK {
			t.Fatalf("search during mutations = %d", code)
		}
	}
}
