// Command qlogcheck decodes a structured query-log directory through
// the real qlog decoder and asserts it is well-formed: at least -min
// entries, every entry carrying a trace ID, an op, an outcome, and a
// positive duration, and search entries carrying their keywords. It is
// the verification half of the obs-smoke check (scripts/obs_smoke.sh):
// a log that only *looks* like JSONL fails here, not in the offline
// analysis job months later.
//
// Usage:
//
//	go run ./cmd/qlogcheck -dir ./qlog [-min 1] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/qlog"
)

func main() {
	dir := flag.String("dir", "", "query-log directory to decode")
	min := flag.Int("min", 1, "fail unless at least this many entries decode")
	verbose := flag.Bool("v", false, "print every decoded entry")
	flag.Parse()
	if *dir == "" {
		log.Fatal("qlogcheck: -dir is required")
	}

	entries, err := qlog.ReadAll(*dir)
	if err != nil {
		log.Fatalf("qlogcheck: decode %s: %v", *dir, err)
	}
	if len(entries) < *min {
		log.Fatalf("qlogcheck: %d entries decoded, want >= %d", len(entries), *min)
	}

	bad := 0
	for i, e := range entries {
		if *verbose {
			fmt.Fprintf(os.Stderr, "  [%d] op=%s status=%d outcome=%s query=%q trace=%s\n",
				i, e.Op, e.Status, e.Outcome, e.Query, e.TraceID)
		}
		switch {
		case e.TraceID == "":
			log.Printf("qlogcheck: entry %d has no trace_id", i)
			bad++
		case e.Op == "":
			log.Printf("qlogcheck: entry %d has no op", i)
			bad++
		case e.Outcome == "":
			log.Printf("qlogcheck: entry %d has no outcome", i)
			bad++
		case e.DurationUS <= 0:
			log.Printf("qlogcheck: entry %d has non-positive duration_us %d", i, e.DurationUS)
			bad++
		case (e.Op == "search" || e.Op == "rows" || e.Op == "diversify") && e.Query == "":
			log.Printf("qlogcheck: %s entry %d lost its keywords", e.Op, i)
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("qlogcheck: %d of %d entries malformed", bad, len(entries))
	}
	fmt.Printf("qlogcheck: %d entries OK in %s\n", len(entries), *dir)
}
