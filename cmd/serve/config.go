package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	keysearch "repro"
	"repro/httpapi"
)

// Config gathers every cmd/serve tunable in one validated struct, so
// the serving topology is assembled from one value instead of two
// dozen loose flag pointers. FromFlags builds it from the command
// line (flag names are unchanged from earlier revisions); tests and
// embedders can populate it directly and call Validate themselves.
type Config struct {
	// Addr is the HTTP listen address.
	Addr string

	// Dataset selection: DBPath serves an Engine.SaveTo dump; otherwise
	// Music picks the lyrics chain schema over movies, generated with
	// Seed.
	Seed   int64
	Music  bool
	DBPath string

	// Session handling for /v1/construct dialogues.
	SessionTTL  time.Duration
	MaxSessions int

	// Engine tuning.
	Parallelism      int
	ScoreCache       bool
	ExecCache        bool
	AnswerCacheBytes int64

	// Mutability and durability.
	Mutable            bool
	DataDir            string
	CheckpointInterval time.Duration
	CheckpointBatches  int

	// Shards selects the serving topology: 1 (the default) serves the
	// engine directly; N > 1 wraps it in an N-shard scatter-gather
	// coordinator (see docs/sharding.md) with byte-identical responses.
	Shards int

	// Static admission gate.
	MaxConcurrent int
	MaxQueue      int
	QueueTimeout  time.Duration
	// RequestTimeout is the default per-request deadline (0 = none).
	RequestTimeout time.Duration

	// Adaptive admission governor (supersedes the static gate).
	Adaptive    bool
	AdaptMin    int
	AdaptMax    int
	AdaptWindow time.Duration

	// Observability (docs/observability.md). Trace enables per-request
	// tracing; QueryLogDir, when set, streams one JSONL entry per /v1/
	// request there (implies tracing); SlowQuery, when positive, dumps
	// the full trace of any slower request to the server log (implies
	// tracing); PprofAddr, when set, serves net/http/pprof on its own
	// listener, separate from the serving address.
	Trace       bool
	QueryLogDir string
	SlowQuery   time.Duration
	PprofAddr   string
}

// FromFlags registers every serving flag on fs under its historical
// name, parses args, and returns the validated configuration.
func FromFlags(fs *flag.FlagSet, args []string) (*Config, error) {
	c := &Config{}
	fs.StringVar(&c.Addr, "addr", ":8080", "listen address")
	fs.Int64Var(&c.Seed, "seed", 7, "demo dataset generator seed")
	fs.BoolVar(&c.Music, "music", false, "serve the music (lyrics) dataset instead of movies")
	fs.StringVar(&c.DBPath, "db", "", "serve a database dump written by Engine.SaveTo instead of a demo dataset")
	fs.DurationVar(&c.SessionTTL, "ttl", 15*time.Minute, "construction session idle TTL")
	fs.IntVar(&c.MaxSessions, "max-sessions", 1024, "cap on live construction sessions")
	fs.IntVar(&c.Parallelism, "parallelism", 0, "pipeline worker count (0 = GOMAXPROCS, 1 = sequential)")
	fs.BoolVar(&c.ScoreCache, "score-cache", true, "memoise score sub-terms across requests")
	fs.BoolVar(&c.ExecCache, "exec-cache", true, "share keyword selections across the plans of one request")
	fs.Int64Var(&c.AnswerCacheBytes, "answer-cache", 0, "engine-lifetime answer cache byte budget; hot selections and plan results survive across requests (0 = disabled; needs -exec-cache)")
	fs.BoolVar(&c.Mutable, "mutable", false, "enable live mutations via POST /v1/mutate (snapshot-isolated)")
	fs.StringVar(&c.DataDir, "data-dir", "", "durable state directory: recover it if present, initialise it otherwise")
	fs.DurationVar(&c.CheckpointInterval, "checkpoint-interval", 30*time.Second, "background checkpoint interval (with -data-dir)")
	fs.IntVar(&c.CheckpointBatches, "checkpoint-batches", 256, "checkpoint as soon as this many WAL batches accumulate (with -data-dir)")
	fs.IntVar(&c.Shards, "shards", 1, "serve through an N-shard scatter-gather coordinator (1 = single-process)")
	fs.IntVar(&c.MaxConcurrent, "max-concurrent", 0, "cap on concurrently executing /v1/ requests (0 = unlimited)")
	fs.IntVar(&c.MaxQueue, "max-queue", 0, "cap on /v1/ requests waiting for a slot; excess shed with 429 (with -max-concurrent)")
	fs.DurationVar(&c.QueueTimeout, "queue-timeout", time.Second, "longest a request may wait for a slot before a 503 shed (with -max-concurrent)")
	fs.DurationVar(&c.RequestTimeout, "request-timeout", 0, "default per-request deadline on /v1/ endpoints, 504 on expiry (0 = none)")
	fs.BoolVar(&c.Adaptive, "adaptive", false, "self-tune the concurrency limit (AIMD governor with cost-aware shedding; supersedes -max-concurrent)")
	fs.IntVar(&c.AdaptMin, "adapt-min", 2, "adaptive concurrency floor (with -adaptive)")
	fs.IntVar(&c.AdaptMax, "adapt-max", 0, "adaptive concurrency ceiling (with -adaptive; 0 = 8x GOMAXPROCS)")
	fs.DurationVar(&c.AdaptWindow, "adapt-window", 500*time.Millisecond, "adaptive control-loop window (with -adaptive)")
	fs.BoolVar(&c.Trace, "trace", false, "per-request tracing: X-Trace-Id on every /v1/ response, stage timings recorded through the whole stack")
	fs.StringVar(&c.QueryLogDir, "query-log", "", "directory for the structured JSONL query log (one entry per /v1/ request; implies -trace)")
	fs.DurationVar(&c.SlowQuery, "slow-query", 0, "dump the full trace of /v1/ requests at least this slow to the server log (0 = off; implies -trace)")
	fs.StringVar(&c.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate rejects configurations that earlier revisions silently
// misserved: contradictory dataset selectors, non-positive topology
// sizes, and gate bounds that cannot mean anything.
func (c *Config) Validate() error {
	if c.DBPath != "" && c.Music {
		return fmt.Errorf("-db and -music are mutually exclusive: a dump fixes the dataset")
	}
	if c.Shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", c.Shards)
	}
	if c.AnswerCacheBytes < 0 {
		return fmt.Errorf("-answer-cache must be >= 0, got %d", c.AnswerCacheBytes)
	}
	if c.AnswerCacheBytes > 0 && !c.ExecCache {
		return fmt.Errorf("-answer-cache requires -exec-cache")
	}
	if c.MaxConcurrent < 0 || c.MaxQueue < 0 {
		return fmt.Errorf("-max-concurrent and -max-queue must be >= 0")
	}
	if c.Adaptive {
		if c.AdaptMin < 1 {
			return fmt.Errorf("-adapt-min must be >= 1, got %d", c.AdaptMin)
		}
		if c.AdaptMax != 0 && c.AdaptMax < c.AdaptMin {
			return fmt.Errorf("-adapt-max %d is below -adapt-min %d", c.AdaptMax, c.AdaptMin)
		}
	}
	if c.CheckpointInterval <= 0 || c.CheckpointBatches <= 0 {
		return fmt.Errorf("-checkpoint-interval and -checkpoint-batches must be positive")
	}
	if c.SlowQuery < 0 {
		return fmt.Errorf("-slow-query must be >= 0, got %v", c.SlowQuery)
	}
	// The query log and slow-query dump are built on the trace.
	if c.QueryLogDir != "" || c.SlowQuery > 0 {
		c.Trace = true
	}
	return nil
}

// EngineOptions translates the configuration into engine build
// options.
func (c *Config) EngineOptions() []keysearch.Option {
	opts := []keysearch.Option{
		keysearch.WithCoOccurrence(),
		keysearch.WithParallelism(c.Parallelism),
		keysearch.WithScoreCache(c.ScoreCache),
		keysearch.WithExecutionCache(c.ExecCache),
		keysearch.WithAnswerCache(c.AnswerCacheBytes),
	}
	if c.Mutable {
		opts = append(opts, keysearch.WithMutations())
	}
	if c.DataDir != "" {
		opts = append(opts,
			keysearch.WithDurability(c.DataDir),
			keysearch.WithCheckpointPolicy(c.CheckpointInterval, c.CheckpointBatches),
		)
	}
	return opts
}

// AdaptCeiling resolves the adaptive concurrency ceiling: 0 when the
// governor is off, the configured -adapt-max otherwise, defaulting to
// 8x GOMAXPROCS.
func (c *Config) AdaptCeiling() int {
	if !c.Adaptive {
		return 0
	}
	if c.AdaptMax > 0 {
		return c.AdaptMax
	}
	return 8 * runtime.GOMAXPROCS(0)
}

// ServerOptions translates the configuration into httpapi options.
// WithAdmission and WithAdaptiveAdmission are no-ops at their zero
// limits, so both are threaded unconditionally.
func (c *Config) ServerOptions() []httpapi.Option {
	opts := []httpapi.Option{
		httpapi.WithSessionTTL(c.SessionTTL),
		httpapi.WithMaxSessions(c.MaxSessions),
		httpapi.WithAdmission(httpapi.AdmissionConfig{
			MaxConcurrent: c.MaxConcurrent,
			MaxQueue:      c.MaxQueue,
			QueueTimeout:  c.QueueTimeout,
		}),
		httpapi.WithAdaptiveAdmission(httpapi.AdaptiveConfig{
			MinConcurrent: c.AdaptMin,
			MaxConcurrent: c.AdaptCeiling(),
			MaxQueue:      c.MaxQueue,
			QueueTimeout:  c.QueueTimeout,
			Window:        c.AdaptWindow,
		}),
		httpapi.WithRequestTimeout(c.RequestTimeout),
	}
	if c.Trace {
		opts = append(opts, httpapi.WithTracing())
	}
	if c.SlowQuery > 0 {
		opts = append(opts, httpapi.WithSlowQueryLog(c.SlowQuery))
	}
	// The query logger is opened by main (it owns the error handling and
	// the close-on-drain), not here.
	return opts
}
