package metrics

import (
	"fmt"
	"math/bits"
	"time"
)

// LatencyHistogram is an HDR-style log-linear histogram of non-negative
// durations (nanoseconds). Values up to 2^(subBits+1) are counted
// exactly; beyond that, every power-of-two range is subdivided into
// 2^subBits linear sub-buckets, bounding the relative quantisation error
// of any recorded value by 2^-subBits (≈1.6% at subBits = 6) while
// keeping the bucket array a few KB regardless of range. This is the
// recording structure of the load generator: cheap constant-time
// Record, percentile queries over the full dynamic range (microsecond
// hits to multi-second stalls in one histogram), and lossless Merge so
// each worker records into a private histogram and the runner combines
// them afterwards.
//
// A LatencyHistogram is NOT safe for concurrent use — that is the
// point: workers own one each, so the hot path takes no locks.
type LatencyHistogram struct {
	counts []int64
	total  int64
	sum    int64
	min    int64 // valid when total > 0
	max    int64
}

// subBits fixes the per-octave resolution: 2^subBits linear sub-buckets
// per power of two, i.e. ≤ 1/64 ≈ 1.6% relative error.
const subBits = 6

const (
	subCount    = 1 << subBits       // sub-buckets per octave
	linearLimit = 1 << (subBits + 1) // values below are counted exactly
)

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram {
	// Indexes: [0, linearLimit) exact, then subCount per further octave
	// up to 63-bit values.
	n := linearLimit + (63-subBits)*subCount
	return &LatencyHistogram{counts: make([]int64, n)}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < linearLimit {
		return int(u)
	}
	msb := bits.Len64(u) - 1     // ≥ subBits+1
	shift := uint(msb - subBits) // ≥ 1
	top := u >> shift            // in [subCount, 2*subCount)
	return linearLimit + int(shift-1)*subCount + int(top-subCount)
}

// bucketMid returns the representative value of a bucket (its midpoint),
// used when reading percentiles back out.
func bucketMid(idx int) int64 {
	if idx < linearLimit {
		return int64(idx)
	}
	rest := idx - linearLimit
	shift := uint(rest/subCount) + 1
	sub := uint64(rest%subCount) + subCount
	lower := sub << shift
	width := int64(1) << shift
	return int64(lower) + width/2
}

// Record adds one observation.
func (h *LatencyHistogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.sum += v
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// RecordCorrected adds one observation with HDR-style coordinated-
// omission back-filling: when a measured latency exceeds the expected
// interval between requests, the stalled issuer would have skipped
// measurements that an open-loop client would have taken — so synthetic
// observations at d-interval, d-2·interval, … are recorded too. Use it
// when recording closed-loop latencies against an intended schedule;
// open-loop runs that time from the scheduled start don't need it.
func (h *LatencyHistogram) RecordCorrected(d, expectedInterval time.Duration) {
	h.Record(d)
	if expectedInterval <= 0 {
		return
	}
	for d -= expectedInterval; d >= expectedInterval; d -= expectedInterval {
		h.Record(d)
	}
}

// Merge folds other into h (other is unchanged).
func (h *LatencyHistogram) Merge(other *LatencyHistogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Count returns the number of recorded observations.
func (h *LatencyHistogram) Count() int64 { return h.total }

// Min and Max return the exact extreme observations (0 when empty).
func (h *LatencyHistogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest observation (0 when empty).
func (h *LatencyHistogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns the value at quantile q in [0, 1]: the smallest
// bucket such that at least q·Count observations are ≤ its upper edge,
// reported as the bucket midpoint (clamped to the exact min/max so
// Quantile(0) and Quantile(1) are exact).
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// String renders the standard latency summary line.
func (h *LatencyHistogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.total, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}
