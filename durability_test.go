package keysearch

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// durQueries are the differential queries of the durability tests; they
// cover value matches, joins, and multi-keyword interpretation over the
// small movie fixture.
var durQueries = []string{"tom", "london", "hanks terminal"}

// churnedEngine is the small movie engine after a few mutation batches,
// so snapshots carry tombstones, a RowID high-water mark above NumLive,
// and an epoch > 0.
func churnedEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng := mutableEngine(t, opts...)
	batches := [][]Mutation{
		{
			{Op: OpInsert, Table: "actor", Values: []string{"a4", "Meg Ryan"}},
			{Op: OpInsert, Table: "acts", Values: []string{"a4", "m1", "Amelia"}},
		},
		{
			{Op: OpUpdate, Table: "movie", Key: "m2", Values: []string{"m2", "London Boulevard Redux", "2010"}},
			{Op: OpDelete, Table: "actor", Key: "a2"},
		},
		{
			{Op: OpInsert, Table: "movie", Values: []string{"m3", "Sleepless Sky", "1993"}},
			{Op: OpDelete, Table: "actor", Key: "a4"},
		},
	}
	for _, b := range batches {
		if _, err := eng.Apply(bg, b); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestSaveOpenSnapshotRoundTrip(t *testing.T) {
	eng := churnedEngine(t)
	// Materialise the data graph so its section is exercised too.
	if _, err := eng.SearchTrees(bg, "tom terminal", 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for name, opts := range map[string][]Option{
		"persisted-indexes": nil,
		"rebuilt-indexes":   {WithRebuildIndexes()},
		"no-exec-cache":     {WithExecutionCache(false), WithScoreCache(false)},
	} {
		t.Run(name, func(t *testing.T) {
			got, err := OpenSnapshot(bytes.NewReader(buf.Bytes()), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got.Epoch() != eng.Epoch() {
				t.Fatalf("Epoch = %d, want %d", got.Epoch(), eng.Epoch())
			}
			if got.NumRows() != eng.NumRows() || got.NumTemplates() != eng.NumTemplates() {
				t.Fatalf("shape: %d rows / %d templates, want %d / %d",
					got.NumRows(), got.NumTemplates(), eng.NumRows(), eng.NumTemplates())
			}
			compareEngines(t, got, eng, durQueries)
		})
	}
}

// TestSnapshotByteStability: saving twice yields identical bytes, and a
// reopened engine re-saves to the same bytes — the content-addressable
// contract of the snapshot format.
func TestSnapshotByteStability(t *testing.T) {
	eng := churnedEngine(t)
	if _, err := eng.SearchTrees(bg, "tom", 2); err != nil {
		t.Fatal(err)
	}
	var first, second bytes.Buffer
	if err := eng.SaveSnapshot(&first); err != nil {
		t.Fatal(err)
	}
	// Run queries in between: lazily built structures must not leak into
	// the encoding.
	compareEngines(t, eng, eng, durQueries[:1])
	if err := eng.SaveSnapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("same engine saved different bytes across calls")
	}

	reopened, err := OpenSnapshot(bytes.NewReader(first.Bytes()), WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	var resaved bytes.Buffer
	if err := reopened.SaveSnapshot(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), resaved.Bytes()) {
		t.Fatal("open→save did not reproduce the snapshot bytes")
	}
}

// TestOpenSnapshotPersistsOptions: build-shaping options survive the
// round trip without being re-passed.
func TestOpenSnapshotPersistsOptions(t *testing.T) {
	eng := builtEngine(t, WithAggregates(), WithCoOccurrence(), WithMaxJoinPath(3))
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTemplates() != eng.NumTemplates() {
		t.Fatalf("templates = %d, want %d (join-path bound lost?)", got.NumTemplates(), eng.NumTemplates())
	}
	// Aggregate syntax must still parse (WithAggregates persisted).
	wantResp, wantErr := eng.Search(bg, SearchRequest{Query: "number tom", K: 3})
	want := asJSON(t, wantResp, wantErr)
	gotResp, gotErr := got.Search(bg, SearchRequest{Query: "number tom", K: 3})
	if gotJSON := asJSON(t, gotResp, gotErr); gotJSON != want {
		t.Fatalf("aggregate search diverged:\n got %s\nwant %s", gotJSON, want)
	}
}

func TestOpenSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenSnapshot(bytes.NewReader([]byte("definitely not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	eng := builtEngine(t)
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0x20
	if _, err := OpenSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("checksum corruption accepted")
	}
	if _, err := OpenSnapshot(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// durableEngine builds the small movie engine durably into a temp dir.
func durableEngine(t *testing.T, dir string, opts ...Option) *Engine {
	t.Helper()
	return builtEngine(t, append([]Option{
		WithMutations(),
		WithDurability(dir),
		// A long interval keeps the background policy out of the tests'
		// way; explicit Checkpoint calls drive the assertions.
		WithCheckpointPolicy(time.Hour, 1<<30),
	}, opts...)...)
}

func TestDurableBuildRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	for _, b := range [][]Mutation{
		{{Op: OpInsert, Table: "actor", Values: []string{"a4", "Meg Ryan"}}},
		{{Op: OpDelete, Table: "actor", Key: "a2"},
			{Op: OpUpdate, Table: "movie", Key: "m1", Values: []string{"m1", "The Terminal Director's Cut", "2004"}}},
	} {
		if _, err := eng.Apply(bg, b); err != nil {
			t.Fatal(err)
		}
	}
	// No Close, no Checkpoint: simulate a crash by just reopening the
	// directory. Both WAL batches must replay on the epoch-0 snapshot.
	got, err := Open(dir, WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", got.Epoch())
	}
	if got.PendingWALBatches() != 2 || got.LastCheckpointEpoch() != 0 {
		t.Fatalf("recovery counters: pending=%d lastCkpt=%d, want 2/0",
			got.PendingWALBatches(), got.LastCheckpointEpoch())
	}
	compareEngines(t, got, rebuiltEngine(t, eng, WithMutations()), durQueries)
	// The recovered engine keeps accepting durable mutations.
	if _, err := got.Apply(bg, []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"a9", "Rita Wilson"}}}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingDirectory(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "never-built"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist (open-or-build contract)", err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := eng.Apply(bg, []Mutation{
			{Op: OpInsert, Table: "actor", Values: []string{fmt.Sprintf("ck%d", i), "Churn Person"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if eng.PendingWALBatches() != 3 {
		t.Fatalf("pending = %d, want 3", eng.PendingWALBatches())
	}
	stats, err := eng.Checkpoint(bg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 3 || stats.WALBatchesDropped != 3 {
		t.Fatalf("stats = %+v, want epoch 3, dropped 3", stats)
	}
	if eng.PendingWALBatches() != 0 || eng.LastCheckpointEpoch() != 3 {
		t.Fatalf("post-checkpoint counters: pending=%d lastCkpt=%d", eng.PendingWALBatches(), eng.LastCheckpointEpoch())
	}
	if raw, _ := os.ReadFile(filepath.Join(dir, walFileName)); len(raw) != 0 {
		t.Fatalf("WAL holds %d bytes after checkpoint", len(raw))
	}
	// Recovery now reads the snapshot alone and matches the live engine.
	got, err := Open(dir, WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Epoch() != 3 || got.PendingWALBatches() != 0 {
		t.Fatalf("recovered epoch=%d pending=%d, want 3/0", got.Epoch(), got.PendingWALBatches())
	}
	compareEngines(t, got, eng, durQueries)
}

func TestCheckpointRequiresDurability(t *testing.T) {
	eng := mutableEngine(t)
	if _, err := eng.Checkpoint(bg); !errors.Is(err, ErrDurabilityDisabled) {
		t.Fatalf("err = %v, want ErrDurabilityDisabled", err)
	}
	if eng.Durable() || eng.DataDir() != "" {
		t.Fatal("memory-only engine reports durability")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close on memory-only engine: %v", err)
	}
}

// TestCheckpointCompaction: an insert/delete churn loop drives the
// dead/live ratio of actor far past the threshold; the checkpoint must
// compact it back below and leave responses byte-identical.
func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir, WithCompactionThreshold(0.4))
	for round := 0; round < 20; round++ {
		key := fmt.Sprintf("churn%d", round)
		if _, err := eng.Apply(bg, []Mutation{
			{Op: OpInsert, Table: "actor", Values: []string{key, "Transient Churner"}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Apply(bg, []Mutation{{Op: OpDelete, Table: "actor", Key: key}}); err != nil {
			t.Fatal(err)
		}
	}
	beforeResp, beforeErr := eng.Search(bg, SearchRequest{Query: "tom", K: 5, RowLimit: 2})
	before := asJSON(t, beforeResp, beforeErr)

	stats, err := eng.Checkpoint(bg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range stats.Compacted {
		if name == "actor" {
			found = true
		}
	}
	if !found {
		t.Fatalf("actor not compacted (stats %+v)", stats)
	}
	// The dead/live bound holds on the published snapshot.
	s := eng.current()
	for _, tb := range s.db.Tables() {
		if r := tb.DeadRatio(); r > 0.4 {
			t.Fatalf("table %s dead ratio %.2f above threshold after compaction", tb.Schema.Name, r)
		}
	}
	afterResp, afterErr := eng.Search(bg, SearchRequest{Query: "tom", K: 5, RowLimit: 2})
	if after := asJSON(t, afterResp, afterErr); after != before {
		t.Fatalf("compaction changed responses:\n before %s\n after  %s", before, after)
	}
	compareEngines(t, eng, rebuiltEngine(t, eng, WithMutations()), durQueries)

	// And the compacted state is what recovery restores.
	got, err := Open(dir, WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	compareEngines(t, got, eng, durQueries)
}

func TestCloseRunsFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	if _, err := eng.Apply(bg, []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"a8", "Final Flush"}}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if raw, _ := os.ReadFile(filepath.Join(dir, walFileName)); len(raw) != 0 {
		t.Fatalf("WAL not flushed by Close (%d bytes)", len(raw))
	}
	// Reads keep working; writes fail (their log is closed).
	if _, err := eng.Search(bg, SearchRequest{Query: "flush", K: 1}); err != nil {
		t.Fatalf("read after Close: %v", err)
	}
	if _, err := eng.Apply(bg, []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"a10", "Too Late"}}}); err == nil {
		t.Fatal("Apply after Close succeeded")
	}
	// Recovery sees the flushed state.
	got, err := Open(dir, WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if len(search(t, got, "flush", 2)) == 0 {
		t.Fatal("final batch lost")
	}
}

// TestCheckpointPolicyBatchBound: the background policy must checkpoint
// on its own once pending batches pass the bound.
func TestCheckpointPolicyBatchBound(t *testing.T) {
	dir := t.TempDir()
	eng := builtEngine(t,
		WithMutations(),
		WithDurability(dir),
		WithCheckpointPolicy(time.Hour, 2), // interval out of the way; bound at 2
	)
	defer eng.Close()
	for i := 0; i < 2; i++ {
		if _, err := eng.Apply(bg, []Mutation{
			{Op: OpInsert, Table: "actor", Values: []string{fmt.Sprintf("pb%d", i), "Policy Person"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.LastCheckpointEpoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("policy checkpoint did not run (lastCkpt=%d, pending=%d)",
				eng.LastCheckpointEpoch(), eng.PendingWALBatches())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableConcurrentApplySearch exercises the durability paths under
// the race detector: concurrent Apply batches, searches, snapshot
// saves, and checkpoints.
func TestDurableConcurrentApplySearch(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	defer eng.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("cc-%d-%d", w, i)
				if _, err := eng.Apply(bg, []Mutation{
					{Op: OpInsert, Table: "actor", Values: []string{key, "Concurrent Person"}},
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Apply(bg, []Mutation{{Op: OpDelete, Table: "actor", Key: key}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Search(bg, SearchRequest{Query: "tom", K: 3, RowLimit: 1}); err != nil {
				t.Error(err)
				return
			}
			if err := eng.SaveSnapshot(&discard{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := eng.Checkpoint(bg); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	compareEngines(t, eng, rebuiltEngine(t, eng, WithMutations()), durQueries[:2])
}

// discard is an io.Writer sink for concurrent SaveSnapshot calls.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
