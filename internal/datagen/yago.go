package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/ontology"
)

// YAGOConfig scales the synthetic YAGO ontology (Chapter 6): a WordNet-
// like taxonomic backbone whose leaves carry most instances, plus a large
// number of fine-grained Wikipedia-category-style leaf classes. The real
// YAGO has >360,000 classes; the generator keeps the structural shape at
// a configurable scale.
type YAGOConfig struct {
	// BackboneDepth is the depth of the taxonomic backbone tree.
	BackboneDepth int
	// BackboneBranch is the branching factor of the backbone.
	BackboneBranch int
	// WikiCategoriesPerConcept is the number of fine-grained leaf
	// categories attached under each concept class.
	WikiCategoriesPerConcept int
	// CoverageProb is the probability that a concept instance is also an
	// instance of the YAGO concept class (instance overlap with Freebase).
	CoverageProb float64
	Seed         int64
}

func (c *YAGOConfig) defaults() {
	if c.BackboneDepth <= 0 {
		c.BackboneDepth = 4
	}
	if c.BackboneBranch <= 0 {
		c.BackboneBranch = 3
	}
	if c.WikiCategoriesPerConcept <= 0 {
		c.WikiCategoriesPerConcept = 3
	}
	if c.CoverageProb <= 0 {
		c.CoverageProb = 0.8
	}
}

// YAGO builds the ontology over the shared concept space:
//
//   - a backbone tree of abstract classes ("wordnet_xxx") with no direct
//     instances (mirroring Table 6.1/6.2: upper WordNet classes are
//     instance-poor);
//   - one concept class per ConceptSpace concept, attached to a random
//     backbone leaf, holding CoverageProb of the concept's instances; and
//   - per concept, several small "wikicategory" leaf classes partitioning
//     a sample of the concept's instances (mirroring the observation that
//     most YAGO instances live in fine-grained leaf categories).
func YAGO(cs *ConceptSpace, cfg YAGOConfig) *ontology.Ontology {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := ontology.New("wordnet_entity")

	// Backbone.
	level := []int{o.Root()}
	id := 0
	for d := 0; d < cfg.BackboneDepth; d++ {
		var next []int
		for _, parent := range level {
			for b := 0; b < cfg.BackboneBranch; b++ {
				id++
				c, err := o.AddClass(fmt.Sprintf("wordnet_c%05d", id), parent)
				if err != nil {
					continue
				}
				next = append(next, c)
			}
		}
		level = next
	}
	backboneLeaves := level

	// Concept classes + wiki categories.
	for _, concept := range cs.Names {
		parent := backboneLeaves[rng.Intn(len(backboneLeaves))]
		cid, err := o.AddClass("wordnet_"+concept, parent)
		if err != nil {
			continue
		}
		pool := cs.Instances[concept]
		var members []string
		for _, inst := range pool {
			if rng.Float64() < cfg.CoverageProb {
				o.AddInstance(cid, inst)
				members = append(members, inst)
			}
		}
		// Wikipedia-category leaves: fine partitions of the members.
		for w := 0; w < cfg.WikiCategoriesPerConcept && len(members) > 0; w++ {
			wid, err := o.AddClass(fmt.Sprintf("wikicategory_%s_%02d", concept, w), cid)
			if err != nil {
				continue
			}
			// Each category holds a random slice of the concept members.
			n := 1 + rng.Intn(maxInt(1, len(members)/cfg.WikiCategoriesPerConcept))
			perm := rng.Perm(len(members))[:n]
			for _, pi := range perm {
				o.AddInstance(wid, members[pi])
			}
		}
	}
	return o
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
