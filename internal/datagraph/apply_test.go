package datagraph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/relstore"
)

// graphTestDB builds the acts-between-actor-and-movie shape whose data
// graph has interesting connectivity, with prepared indexes.
func graphTestDB(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("graph")
	actor, err := db.CreateTable(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	movie, err := db.CreateTable(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	acts, err := db.CreateTable(&relstore.TableSchema{
		Name:       "acts",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Indexed: true}},
		PrimaryKey: "id",
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{{"a1", "tom hanks"}, {"a2", "meg ryan"}, {"a3", "tom arnold"}} {
		if _, err := actor.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]string{{"m1", "the terminal"}, {"m2", "sky mail"}} {
		if _, err := movie.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]string{
		{"x1", "a1", "m1", "viktor"}, {"x2", "a2", "m2", "kathleen"}, {"x3", "a1", "m2", "joe"},
	} {
		if _, err := acts.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.Prepare()
	return db
}

// assertGraphsEqual compares adjacency and containment map-for-map.
// Build skips tombstones and keeps canonical list order, so a freshly
// built graph over the mutated database is the exact oracle for the
// incrementally maintained one.
func assertGraphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if !reflect.DeepEqual(got.adj, want.adj) {
		t.Errorf("adjacency diverges:\n got %v\nwant %v", got.adj, want.adj)
	}
	if !reflect.DeepEqual(got.containing, want.containing) {
		t.Errorf("containment diverges:\n got %v\nwant %v", got.containing, want.containing)
	}
}

func TestGraphApplyMatchesBuild(t *testing.T) {
	db := graphTestDB(t)
	g := Build(db)
	db2, changes, err := db.Apply([]relstore.Mutation{
		// New actor with an edge-producing junction row.
		{Op: relstore.OpInsert, Table: "actor", Values: []string{"a4", "rita wilson"}},
		{Op: relstore.OpInsert, Table: "acts", Values: []string{"x4", "a4", "m1", "nun"}},
		// Re-point a junction row to another movie (edge rewiring).
		{Op: relstore.OpUpdate, Table: "acts", Key: "x3", Values: []string{"x3", "a1", "m1", "joe"}},
		// Delete an actor that still has junction rows (dangling FK edges vanish).
		{Op: relstore.OpDelete, Table: "actor", Key: "a2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := g.Apply(db2, changes)
	assertGraphsEqual(t, got, Build(db2))
	// The source graph is untouched.
	assertGraphsEqual(t, g, Build(db))
}

func TestGraphApplyRandomized(t *testing.T) {
	db := graphTestDB(t)
	g := Build(db)
	rng := rand.New(rand.NewSource(23))
	words := []string{"tom", "sky", "mail", "terminal", "viktor", "onyx"}
	actorKeys := []string{"a1", "a2", "a3", "a4", "a5"}
	movieKeys := []string{"m1", "m2", "m3"}
	serial := 0
	for round := 0; round < 40; round++ {
		var muts []relstore.Mutation
		serial++
		switch rng.Intn(5) {
		case 4:
			// Insert an actor whose key dangling junction rows may already
			// reference: the pure incoming-edge discovery path of Apply.
			muts = append(muts, relstore.Mutation{Op: relstore.OpInsert, Table: "actor", Values: []string{
				actorKeys[rng.Intn(len(actorKeys))] + "n",
				words[rng.Intn(len(words))],
			}})
			if rng.Intn(2) == 0 {
				muts[0].Values[0] = actorKeys[rng.Intn(len(actorKeys))] // recycle a real key
			}
		case 0:
			muts = append(muts, relstore.Mutation{Op: relstore.OpInsert, Table: "acts", Values: []string{
				"y" + string(rune('a'+serial%26)) + string(rune('a'+(serial/26)%26)),
				actorKeys[rng.Intn(len(actorKeys))], // may dangle: no matching actor — no edge, like Build
				movieKeys[rng.Intn(len(movieKeys))],
				words[rng.Intn(len(words))],
			}})
		case 1:
			tb := db.Table("acts")
			if id := liveRowOf(rng, tb); id >= 0 {
				vals := append([]string(nil), tb.Rows()[id].Values...)
				vals[1] = actorKeys[rng.Intn(len(actorKeys))]
				vals[3] = words[rng.Intn(len(words))]
				muts = append(muts, relstore.Mutation{Op: relstore.OpUpdate, Table: "acts", Key: vals[0], Values: vals})
			}
		case 2:
			tb := db.Table("acts")
			if id := liveRowOf(rng, tb); id >= 0 {
				muts = append(muts, relstore.Mutation{Op: relstore.OpDelete, Table: "acts", Key: tb.Rows()[id].Values[0]})
			}
		default:
			tb := db.Table("actor")
			if id := liveRowOf(rng, tb); id >= 0 {
				vals := append([]string(nil), tb.Rows()[id].Values...)
				vals[1] = words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
				muts = append(muts, relstore.Mutation{Op: relstore.OpUpdate, Table: "actor", Key: vals[0], Values: vals})
			}
		}
		if len(muts) == 0 {
			continue
		}
		db2, changes, err := db.Apply(muts)
		if err != nil {
			continue // duplicate junction key: skip
		}
		g = g.Apply(db2, changes)
		db = db2
		assertGraphsEqual(t, g, Build(db))
		if t.Failed() {
			t.Fatalf("diverged at round %d (muts %+v)", round, muts)
		}
	}
}

// TestGraphApplySelfLoop: a row whose FK references its own key gets two
// entries in its own adjacency list from Build; Apply must reproduce
// that exactly (both endpoints of the edge land in the same list).
func TestGraphApplySelfLoop(t *testing.T) {
	db := relstore.NewDatabase("selfloop")
	emp, err := db.CreateTable(&relstore.TableSchema{
		Name:       "emp",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "boss"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
		ForeignKeys: []relstore.ForeignKey{
			{Column: "boss", RefTable: "emp", RefColumn: "id"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{{"e1", "e1", "ada"}, {"e2", "e1", "grace"}} {
		if _, err := emp.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.Prepare()
	g := Build(db)

	// Touch the self-referencing row (update) and add another self-boss.
	db2, changes, err := db.Apply([]relstore.Mutation{
		{Op: relstore.OpUpdate, Table: "emp", Key: "e1", Values: []string{"e1", "e1", "ada lovelace"}},
		{Op: relstore.OpInsert, Table: "emp", Values: []string{"e3", "e3", "alan"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := g.Apply(db2, changes)
	assertGraphsEqual(t, got, Build(db2))

	// Deleting the self-looped row must clean up both entries.
	db3, changes, err := db2.Apply([]relstore.Mutation{{Op: relstore.OpDelete, Table: "emp", Key: "e3"}})
	if err != nil {
		t.Fatal(err)
	}
	got = got.Apply(db3, changes)
	assertGraphsEqual(t, got, Build(db3))
}

func liveRowOf(rng *rand.Rand, t *relstore.Table) int {
	if t.NumLive() == 0 {
		return -1
	}
	for try := 0; try < 30; try++ {
		id := rng.Intn(t.Len())
		if t.Live(id) {
			return id
		}
	}
	return -1
}
