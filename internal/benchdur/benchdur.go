// Package benchdur is the durability benchmark harness: it measures
// what surviving a restart costs with and without the durability
// subsystem, and what durable operation costs while running. Legs:
//
//   - fresh-build:   reload the serialised rows and Build a fresh
//     engine (tokenise the corpus, build every index, enumerate the
//     catalogue) — the restart price a memory-only engine always pays,
//     and the baseline of the speedup column,
//   - open-snapshot: keysearch.Open of a checkpointed state directory
//     (decode the snapshot file, replay an empty WAL) — the restart
//     price after a clean shutdown or a recent checkpoint,
//   - wal-replay:    keysearch.Open of a state directory whose WAL
//     holds ReplayBatches mutation batches — the restart price after a
//     crash; divide by ReplayBatches for the per-batch replay cost,
//   - checkpoint:    one durable Apply batch plus an explicit
//     Checkpoint (snapshot rewrite, fsync, WAL truncation) — the
//     steady-state cost of bounding recovery.
//
// Two front-ends consume the harness: the BenchmarkDurability*
// functions (go test -bench=Durability) for interactive runs and CI
// smoke, and cmd/bench, which writes BENCH_durability.json so the
// recover-vs-build trajectory is tracked from PR to PR and its speedup
// column guarded by cmd/bench -compare.
package benchdur

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	keysearch "repro"
	"repro/internal/datagen"
)

// Seed and Scale pin the dataset to the benchpipe 2.5x shape: large
// enough that corpus tokenisation dominates Build (what snapshots
// avoid), small enough for CI.
const (
	Seed  = 21
	Scale = 2.5
)

// ReplayBatches is the WAL length of the crash-recovery fixture.
const ReplayBatches = 8

// BatchSize is the number of mutations per logged batch.
const BatchSize = 6

// Mode selects one benchmark leg.
type Mode string

const (
	// ModeBuild reloads the dump and rebuilds the engine from scratch.
	ModeBuild Mode = "fresh-build"
	// ModeOpen opens a checkpointed state directory (empty WAL).
	ModeOpen Mode = "open-snapshot"
	// ModeReplay opens a state directory with ReplayBatches WAL batches.
	ModeReplay Mode = "wal-replay"
	// ModeCheckpoint applies one batch durably and checkpoints.
	ModeCheckpoint Mode = "checkpoint"
)

// Modes lists every leg in report order.
func Modes() []Mode { return []Mode{ModeBuild, ModeOpen, ModeReplay, ModeCheckpoint} }

// Env is the lazily built benchmark environment: one logical dataset
// served three ways (row dump, checkpointed directory, crash-shaped
// directory) plus a live durable engine for the checkpoint leg.
type Env struct {
	once sync.Once
	err  error
	root string // state directories live under here

	dump     []byte // serialised rows: the fresh-build leg's input
	cleanDir string // checkpointed state: snapshot(epoch=ReplayBatches), empty WAL
	crashDir string // crash state: snapshot(epoch=0), WAL of ReplayBatches batches
	ckptEng  *keysearch.Engine
	ckptSeq  int
}

// NewEnv creates an environment rooted at dir (a temp dir in tests;
// cmd/bench passes os.MkdirTemp output). State is built on first use.
func NewEnv(dir string) *Env { return &Env{root: dir} }

// batch is one steady-state mutation batch: BatchSize/2 inserts of
// transient actors and their deletions in the next batch, so the
// database size stays bounded while the WAL grows.
func churnBatch(seq int) []keysearch.Mutation {
	muts := make([]keysearch.Mutation, 0, BatchSize)
	for i := 0; i < BatchSize/2; i++ {
		muts = append(muts, keysearch.Mutation{
			Op: keysearch.OpInsert, Table: "actor",
			Values: []string{fmt.Sprintf("dur-%d-%d", seq, i), fmt.Sprintf("Transient Durling %d", i)},
		})
	}
	for i := 0; i < BatchSize/2; i++ {
		muts = append(muts, keysearch.Mutation{
			Op: keysearch.OpDelete, Table: "actor", Key: fmt.Sprintf("dur-%d-%d", seq, i),
		})
	}
	return muts
}

func (e *Env) init() {
	e.once.Do(func() {
		if e.root == "" {
			dir, err := os.MkdirTemp("", "benchdur")
			if err != nil {
				e.err = err
				return
			}
			e.root = dir
		}
		db, err := datagen.IMDB(datagen.IMDBConfig{
			Movies:    int(400 * Scale),
			Actors:    int(300 * Scale),
			Directors: int(80 * Scale),
			Companies: int(40 * Scale),
			Seed:      Seed,
		})
		if err != nil {
			e.err = err
			return
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			e.err = err
			return
		}
		e.dump = buf.Bytes()

		// Crash-shaped directory: epoch-0 snapshot + ReplayBatches WAL
		// records (never checkpointed, never closed — exactly a crash).
		e.crashDir = e.root + "/crash"
		crashEng, err := keysearch.Load(bytes.NewReader(e.dump), e.durOpts(e.crashDir)...)
		if err != nil {
			e.err = err
			return
		}
		for i := 0; i < ReplayBatches; i++ {
			if _, err := crashEng.Apply(context.Background(), churnBatch(i)); err != nil {
				e.err = err
				return
			}
		}

		// Checkpointed directory: same batches folded into the snapshot.
		e.cleanDir = e.root + "/clean"
		cleanEng, err := keysearch.Load(bytes.NewReader(e.dump), e.durOpts(e.cleanDir)...)
		if err != nil {
			e.err = err
			return
		}
		for i := 0; i < ReplayBatches; i++ {
			if _, err := cleanEng.Apply(context.Background(), churnBatch(i)); err != nil {
				e.err = err
				return
			}
		}
		if err := cleanEng.Close(); err != nil { // final checkpoint + WAL close
			e.err = err
			return
		}

		// Live durable engine for the checkpoint leg.
		ckptDir := e.root + "/ckpt"
		e.ckptEng, e.err = keysearch.Load(bytes.NewReader(e.dump), e.durOpts(ckptDir)...)
	})
}

// durOpts are the engine options of every durable fixture: mutations
// on, background checkpointing out of the way (legs checkpoint
// explicitly), durable into dir.
func (e *Env) durOpts(dir string) []keysearch.Option {
	return []keysearch.Option{
		keysearch.WithCoOccurrence(),
		keysearch.WithMutations(),
		keysearch.WithDurability(dir),
		keysearch.WithCheckpointPolicy(time.Hour, 1<<30),
	}
}

// RunRequest executes one benchmark operation under the given mode.
func (e *Env) RunRequest(mode Mode) error {
	e.init()
	if e.err != nil {
		return e.err
	}
	switch mode {
	case ModeBuild:
		eng, err := keysearch.Load(bytes.NewReader(e.dump), keysearch.WithCoOccurrence())
		if err != nil {
			return err
		}
		if eng.NumRows() == 0 {
			return fmt.Errorf("benchdur: rebuilt engine is empty")
		}
		return nil
	case ModeOpen:
		eng, err := keysearch.Open(e.cleanDir)
		if err != nil {
			return err
		}
		if eng.Epoch() != ReplayBatches {
			return fmt.Errorf("benchdur: opened engine at epoch %d, want %d", eng.Epoch(), ReplayBatches)
		}
		return nil
	case ModeReplay:
		eng, err := keysearch.Open(e.crashDir)
		if err != nil {
			return err
		}
		if eng.Epoch() != ReplayBatches || eng.PendingWALBatches() != ReplayBatches {
			return fmt.Errorf("benchdur: replay recovered epoch %d / %d pending, want %d/%d",
				eng.Epoch(), eng.PendingWALBatches(), ReplayBatches, ReplayBatches)
		}
		return nil
	case ModeCheckpoint:
		if _, err := e.ckptEng.Apply(context.Background(), churnBatch(1000+e.ckptSeq)); err != nil {
			return err
		}
		e.ckptSeq++
		_, err := e.ckptEng.Checkpoint(context.Background())
		return err
	default:
		return fmt.Errorf("benchdur: unknown mode %q", mode)
	}
}

// Verify cross-checks the harness: both recovery paths must answer
// byte-identically to a fresh build over the same logical rows (the
// churn batches net out, so the dump is that row set).
func (e *Env) Verify() error {
	e.init()
	if e.err != nil {
		return e.err
	}
	pristine, err := keysearch.Load(bytes.NewReader(e.dump), keysearch.WithCoOccurrence())
	if err != nil {
		return err
	}
	qs := pristine.SampleQueries(2)
	if len(qs) == 0 {
		return fmt.Errorf("benchdur: no sample queries")
	}
	for _, dir := range []string{e.cleanDir, e.crashDir} {
		recovered, err := keysearch.Open(dir)
		if err != nil {
			return err
		}
		for _, q := range qs {
			req := keysearch.SearchRequest{Query: q, K: 5, RowLimit: 2}
			got, gotErr := recovered.Search(context.Background(), req)
			want, wantErr := pristine.Search(context.Background(), req)
			if gotErr != nil || wantErr != nil {
				return fmt.Errorf("benchdur: verify searches failed: %v / %v", gotErr, wantErr)
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if !bytes.Equal(gj, wj) {
				return fmt.Errorf("benchdur: recovered engine (%s) diverged from fresh build:\n got %.200s\nwant %.200s", dir, gj, wj)
			}
		}
	}
	return nil
}

// Run executes one mode inside a testing benchmark body.
func (e *Env) Run(b *testing.B, mode Mode) {
	if err := e.RunRequest(mode); err != nil { // warm build outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunRequest(mode); err != nil {
			b.Fatal(err)
		}
	}
}

// Row is one measured leg as persisted to BENCH_durability.json.
type Row struct {
	Name        string `json:"name"`
	Ops         int    `json:"ops"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// SpeedupVsBuild is the fresh-build leg's ns/op divided by this
	// row's — how much cheaper recovery is than rebuilding. Set on the
	// recovery legs only (the checkpoint leg is a write-path cost, not a
	// recovery path, and is tracked by its absolute trajectory instead).
	SpeedupVsBuild float64 `json:"speedup_vs_build,omitempty"`
}

// Report is the top-level measurement set.
type Report struct {
	Dataset       string `json:"dataset"`
	ReplayBatches int    `json:"replay_batches"`
	BatchSize     int    `json:"batch_size"`
	Rows          []Row  `json:"rows"`
}

// Measure runs every leg through testing.Benchmark and derives the
// recover-vs-build speedups.
func Measure() (*Report, error) {
	root, err := os.MkdirTemp("", "benchdur")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	env := NewEnv(root)
	if err := env.Verify(); err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:       fmt.Sprintf("demo-movies scaled %.1fx", Scale),
		ReplayBatches: ReplayBatches,
		BatchSize:     BatchSize,
	}
	var firstErr error
	for _, mode := range Modes() {
		mode := mode
		r := testing.Benchmark(func(b *testing.B) {
			if firstErr != nil {
				b.Skip("earlier leg failed")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := env.RunRequest(mode); err != nil {
					firstErr = err
					b.Skip(err)
				}
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		rep.Rows = append(rep.Rows, Row{
			Name:        string(mode),
			Ops:         r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	var buildNs int64
	for _, r := range rep.Rows {
		if r.Name == string(ModeBuild) {
			buildNs = r.NsPerOp
		}
	}
	for i := range rep.Rows {
		name := rep.Rows[i].Name
		if name != string(ModeOpen) && name != string(ModeReplay) {
			continue
		}
		if buildNs > 0 && rep.Rows[i].NsPerOp > 0 {
			rep.Rows[i].SpeedupVsBuild = float64(buildNs) / float64(rep.Rows[i].NsPerOp)
		}
	}
	return rep, nil
}
