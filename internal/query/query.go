// Package query implements the structured-query model of Section 3.5:
// keyword queries, structured queries as relational-algebra expressions,
// keyword interpretations (Definition 3.5.3), query templates
// (Definition 3.5.6), complete and partial query interpretations
// (Definition 3.5.4), the sub-query/subsumption relationship
// (Definition 3.5.7), and the translation of interpretations into
// executable join plans.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/invindex"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// Kind classifies a keyword interpretation (Definition 3.5.3): a keyword
// maps to a value in a predicate, a table name, or an attribute name.
type Kind int

const (
	// KindValue interprets the keyword as an attribute value:
	// σ_{k ∈ A}(Table).
	KindValue Kind = iota
	// KindTable interprets the keyword as a table name (schema term).
	KindTable
	// KindColumn interprets the keyword as an attribute name (schema term).
	KindColumn
	// KindAggregate interprets the keyword as an aggregation operator —
	// the analytical keyword queries of Section 2.2.7, e.g. "number of
	// movies with tom hanks" (Definition 3.5.1's K4), where "number" maps
	// to COUNT over the query's results.
	KindAggregate
)

func (k Kind) String() string {
	switch k {
	case KindValue:
		return "value"
	case KindTable:
		return "table"
	case KindColumn:
		return "column"
	case KindAggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KeywordInterpretation maps one keyword occurrence of the keyword query to
// one element of a structured query (Definition 3.5.3).
type KeywordInterpretation struct {
	// Pos is the position of the keyword in the keyword query; keyword
	// queries are bags (Definition 3.5.1), so identity is positional.
	Pos int
	// Keyword is the (lower-cased) keyword text.
	Keyword string
	Kind    Kind
	// Attr is set for KindValue and KindColumn.
	Attr invindex.AttrRef
	// Table is set for KindTable.
	Table string
	// Agg names the aggregation operator for KindAggregate ("count").
	Agg string
}

// TargetTable returns the table this interpretation concerns; empty for
// aggregation operators, which apply to the whole query.
func (ki KeywordInterpretation) TargetTable() string {
	switch ki.Kind {
	case KindTable:
		return ki.Table
	case KindAggregate:
		return ""
	default:
		return ki.Attr.Table
	}
}

// Key is a canonical identity string (position-sensitive).
func (ki KeywordInterpretation) Key() string {
	switch ki.Kind {
	case KindTable:
		return fmt.Sprintf("%d:%s=table:%s", ki.Pos, ki.Keyword, ki.Table)
	case KindColumn:
		return fmt.Sprintf("%d:%s=column:%s", ki.Pos, ki.Keyword, ki.Attr)
	case KindAggregate:
		return fmt.Sprintf("%d:%s=agg:%s", ki.Pos, ki.Keyword, ki.Agg)
	default:
		return fmt.Sprintf("%d:%s=value:%s", ki.Pos, ki.Keyword, ki.Attr)
	}
}

// Describe renders the interpretation as a user-facing question fragment,
// e.g. `"hanks" is a value of actor.name` — the phrasing of the query
// construction options in Figure 3.1.
func (ki KeywordInterpretation) Describe() string {
	switch ki.Kind {
	case KindTable:
		return fmt.Sprintf("%q refers to the %s table", ki.Keyword, ki.Table)
	case KindColumn:
		return fmt.Sprintf("%q refers to the attribute %s", ki.Keyword, ki.Attr)
	case KindAggregate:
		return fmt.Sprintf("%q asks for the %s of the results", ki.Keyword, ki.Agg)
	default:
		return fmt.Sprintf("%q is a value of %s", ki.Keyword, ki.Attr)
	}
}

// Template is a pre-computed query pattern (Definition 3.5.6): a join tree
// whose predicates are variables. ID indexes into the template catalogue.
type Template struct {
	ID   int
	Tree *schemagraph.JoinTree

	occurrences map[string][]int // table name -> occurrence indexes
}

// NewTemplate wraps a join tree as a template.
func NewTemplate(id int, tree *schemagraph.JoinTree) *Template {
	t := &Template{ID: id, Tree: tree, occurrences: make(map[string][]int)}
	for i, name := range tree.Tables {
		t.occurrences[name] = append(t.occurrences[name], i)
	}
	return t
}

// Occurrences returns the occurrence indexes of the table in the template.
func (t *Template) Occurrences(table string) []int { return t.occurrences[table] }

// Size returns the number of table occurrences.
func (t *Template) Size() int { return t.Tree.Size() }

// String renders the template's join structure.
func (t *Template) String() string { return t.Tree.String() }

// Binding places one keyword interpretation onto a template occurrence.
type Binding struct {
	KI KeywordInterpretation
	// Occ is the occurrence index within the interpretation's template.
	Occ int
}

// Interpretation is a (partial or complete) query interpretation
// (Definition 3.5.4): a template plus a set of keyword bindings. An
// interpretation is complete when every keyword of the query is bound.
type Interpretation struct {
	// Keywords is the full keyword query being interpreted.
	Keywords []string
	Template *Template
	// Bindings are sorted by keyword position.
	Bindings []Binding

	key string
}

// NewInterpretation assembles an interpretation, sorting bindings by
// keyword position.
func NewInterpretation(keywords []string, tpl *Template, bindings []Binding) *Interpretation {
	bs := make([]Binding, len(bindings))
	copy(bs, bindings)
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].KI.Pos != bs[j].KI.Pos {
			return bs[i].KI.Pos < bs[j].KI.Pos
		}
		return bs[i].Occ < bs[j].Occ
	})
	return &Interpretation{Keywords: keywords, Template: tpl, Bindings: bs}
}

// IsComplete reports whether every keyword of the query is bound
// (a complete interpretation per Definition 3.5.4).
func (q *Interpretation) IsComplete() bool { return len(q.Bindings) == len(q.Keywords) }

// Aggregate returns the aggregation operator of the interpretation
// ("count") or "" for plain retrieval queries.
func (q *Interpretation) Aggregate() string {
	for _, b := range q.Bindings {
		if b.KI.Kind == KindAggregate {
			return b.KI.Agg
		}
	}
	return ""
}

// BoundPositions returns the set of keyword positions that are bound.
func (q *Interpretation) BoundPositions() map[int]bool {
	out := make(map[int]bool, len(q.Bindings))
	for _, b := range q.Bindings {
		out[b.KI.Pos] = true
	}
	return out
}

// Key returns a canonical identity for deduplication: template identity
// (by canonical tree form) plus the bindings.
func (q *Interpretation) Key() string {
	if q.key != "" {
		return q.key
	}
	var sb strings.Builder
	if q.Template != nil {
		sb.WriteString(q.Template.Tree.Canonical())
	}
	sb.WriteString("|")
	for _, b := range q.Bindings {
		fmt.Fprintf(&sb, "%s@%d;", b.KI.Key(), b.Occ)
	}
	q.key = sb.String()
	return q.key
}

// HasBinding reports whether the interpretation uses the given keyword
// interpretation (occurrence-insensitive: the same element identity).
func (q *Interpretation) HasBinding(ki KeywordInterpretation) bool {
	key := ki.Key()
	for _, b := range q.Bindings {
		if b.KI.Key() == key {
			return true
		}
	}
	return false
}

// String renders the interpretation in the relational-algebra style of the
// thesis, e.g. σ_{hanks∈name}(actor) ⋈ acts ⋈ σ_{2001∈year}(movie).
func (q *Interpretation) String() string {
	if q.Template == nil {
		parts := make([]string, len(q.Bindings))
		for i, b := range q.Bindings {
			parts[i] = b.KI.Describe()
		}
		return "{" + strings.Join(parts, "; ") + "}"
	}
	// Group value bindings per occurrence/column.
	type slot struct{ occ int }
	preds := make(map[int]map[string][]string) // occ -> column -> keywords
	for _, b := range q.Bindings {
		if b.KI.Kind != KindValue {
			continue
		}
		m := preds[b.Occ]
		if m == nil {
			m = make(map[string][]string)
			preds[b.Occ] = m
		}
		m[b.KI.Attr.Column] = append(m[b.KI.Attr.Column], b.KI.Keyword)
	}
	parts := make([]string, q.Template.Size())
	for i, table := range q.Template.Tree.Tables {
		m := preds[i]
		if len(m) == 0 {
			parts[i] = table
			continue
		}
		cols := make([]string, 0, len(m))
		for c := range m {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		var ps []string
		for _, c := range cols {
			ps = append(ps, fmt.Sprintf("{%s}⊂%s", strings.Join(m[c], ","), c))
		}
		parts[i] = fmt.Sprintf("σ_%s(%s)", strings.Join(ps, "∧"), table)
	}
	expr := strings.Join(parts, " ⋈ ")
	if agg := q.Aggregate(); agg != "" {
		return strings.ToUpper(agg) + "(" + expr + ")"
	}
	return expr
}

// Subsumes implements the sub-query relation (Definition 3.5.7) as used by
// query construction options: q' subsumes q when every keyword
// interpretation of q' is also used by q. Options carry no template
// commitment, so subsumption is evaluated over element identities.
func (q *Interpretation) Subsumes(other *Interpretation) bool {
	for _, b := range q.Bindings {
		if !other.HasBinding(b.KI) {
			return false
		}
	}
	return true
}

// JoinPlan translates a complete or partial interpretation with a template
// into an executable join plan: value bindings grouped per occurrence and
// column become containment predicates (Definition 3.5.2).
func (q *Interpretation) JoinPlan() (*relstore.JoinPlan, error) {
	if q.Template == nil {
		return nil, fmt.Errorf("query: interpretation has no template")
	}
	tree := q.Template.Tree
	plan := &relstore.JoinPlan{
		Nodes: make([]relstore.JoinNode, tree.Size()),
		Edges: make([]relstore.JoinEdge, 0, len(tree.TreeEdges)),
	}
	for i, table := range tree.Tables {
		plan.Nodes[i] = relstore.JoinNode{Table: table}
	}
	for _, e := range tree.TreeEdges {
		plan.Edges = append(plan.Edges, relstore.JoinEdge{
			From: e.From, To: e.To, FromColumn: e.FromColumn, ToColumn: e.ToColumn,
		})
	}
	grouped := make(map[int]map[string][]string)
	for _, b := range q.Bindings {
		if b.KI.Kind != KindValue {
			continue
		}
		if b.Occ < 0 || b.Occ >= tree.Size() {
			return nil, fmt.Errorf("query: binding occurrence %d out of range", b.Occ)
		}
		if tree.Tables[b.Occ] != b.KI.Attr.Table {
			return nil, fmt.Errorf("query: binding table %s does not match occurrence table %s",
				b.KI.Attr.Table, tree.Tables[b.Occ])
		}
		m := grouped[b.Occ]
		if m == nil {
			m = make(map[string][]string)
			grouped[b.Occ] = m
		}
		m[b.KI.Attr.Column] = append(m[b.KI.Attr.Column], b.KI.Keyword)
	}
	for occ, m := range grouped {
		cols := make([]string, 0, len(m))
		for c := range m {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			plan.Nodes[occ].Predicates = append(plan.Nodes[occ].Predicates,
				relstore.Predicate{Column: c, Keywords: m[c]})
		}
	}
	return plan, nil
}

// Option is a query construction option: a partial interpretation offered
// to the user for acceptance or rejection (Section 3.5.4). Options are
// sets of keyword interpretations without template commitment — the form
// presented in the IQP interface ("Hanks is an actor's name").
type Option struct {
	KIs []KeywordInterpretation
}

// NewOption builds an option over the given keyword interpretations.
func NewOption(kis ...KeywordInterpretation) Option {
	cp := make([]KeywordInterpretation, len(kis))
	copy(cp, kis)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key() < cp[j].Key() })
	return Option{KIs: cp}
}

// Key returns a canonical identity string.
func (o Option) Key() string {
	parts := make([]string, len(o.KIs))
	for i, ki := range o.KIs {
		parts[i] = ki.Key()
	}
	return strings.Join(parts, "&")
}

// Describe renders the option as the question shown to the user.
func (o Option) Describe() string {
	parts := make([]string, len(o.KIs))
	for i, ki := range o.KIs {
		parts[i] = ki.Describe()
	}
	return strings.Join(parts, " and ")
}

// Subsumes reports whether the option subsumes the interpretation: every
// keyword interpretation of the option is used by the interpretation.
// Accepting the option keeps exactly the subsumed interpretations;
// rejecting it removes them (Definition 3.5.8).
func (o Option) Subsumes(q *Interpretation) bool {
	for _, ki := range o.KIs {
		if !q.HasBinding(ki) {
			return false
		}
	}
	return true
}
