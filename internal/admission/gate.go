package admission

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Outcome is the result of a Gate.Acquire call.
type Outcome int

const (
	// Admitted: the caller holds a slot and must call the returned
	// release function when done.
	Admitted Outcome = iota
	// RejectedQueueFull: the queue was full and no queued waiter was
	// estimated more expensive than the caller, so the caller was
	// turned away immediately.
	RejectedQueueFull
	// Evicted: the caller was queued but later pushed out by queue
	// pressure from a cheaper request (heaviest-first shedding).
	Evicted
	// TimedOut: the caller waited QueueTimeout without a slot
	// freeing up.
	TimedOut
	// Canceled: the caller's context ended while it was queued.
	Canceled
)

func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case RejectedQueueFull:
		return "queue_full"
	case Evicted:
		return "queue_evicted"
	case TimedOut:
		return "queue_timeout"
	default:
		return "canceled"
	}
}

// GateConfig sizes the resizable cost-banded gate.
type GateConfig struct {
	// Limit is the initial number of concurrent slots; resize later
	// with SetLimit. Defaults to 1.
	Limit int
	// MaxQueue bounds the total number of queued waiters across all
	// bands. 0 means no queue: every request past the limit is shed.
	MaxQueue int
	// QueueTimeout bounds how long a waiter may queue. 0 means no
	// timeout.
	QueueTimeout time.Duration
	// BandBounds are the ascending exclusive upper cost bounds of the
	// cheap bands: a request with cost < BandBounds[i] (and >= the
	// previous bound) lands in band i; costs >= the last bound land
	// in the final band. len(BandBounds)+1 bands in total. Empty
	// means a single band, i.e. plain FIFO.
	BandBounds []int64
	// Stats, when set, keeps the serving-path queued gauge live so
	// /healthz reports adaptive queue depth the same way the static
	// gate does.
	Stats *metrics.ServingStats
}

// waiter is one queued Acquire call. done is buffered so the resolver
// (dispatch, eviction, timeout) never blocks on a racing receiver.
type waiter struct {
	cost  int64
	band  int
	seq   uint64
	done  chan Outcome
	timer *time.Timer
}

// BandStats are the per-cost-band admission counters.
type BandStats struct {
	// Bound is the exclusive upper cost bound of the band; 0 on the
	// last (unbounded) band.
	Bound    int64 `json:"bound,omitempty"`
	Queued   int   `json:"queued"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Evicted  int64 `json:"evicted"`
	TimedOut int64 `json:"timed_out"`
	Canceled int64 `json:"canceled"`
}

// Sheds returns the total requests of this band turned away for
// queue-pressure reasons (full, evicted, timed out).
func (b BandStats) Sheds() int64 { return b.Rejected + b.Evicted + b.TimedOut }

type bandState struct {
	q []*waiter
	BandStats
}

// Gate is a resizable concurrency limiter with cost-banded queueing.
// Within a band, waiters are strict FIFO; dispatch across bands picks
// the globally oldest waiter, so bands do not starve each other while
// slots exist. Only under queue *pressure* does cost matter: when the
// queue is full, the youngest waiter of the heaviest backlogged band
// is evicted to make room for a cheaper newcomer, and a newcomer at
// least as heavy as every queued waiter is rejected outright.
type Gate struct {
	mu       sync.Mutex
	cfg      GateConfig
	limit    int
	inFlight int
	queued   int
	seq      uint64
	bands    []*bandState
}

// NewGate builds a gate with the configured initial limit.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Limit < 1 {
		cfg.Limit = 1
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	bands := make([]*bandState, len(cfg.BandBounds)+1)
	for i := range bands {
		bands[i] = &bandState{}
		if i < len(cfg.BandBounds) {
			bands[i].Bound = cfg.BandBounds[i]
		}
	}
	return &Gate{cfg: cfg, limit: cfg.Limit, bands: bands}
}

func (g *Gate) bandOf(cost int64) int {
	for i, bound := range g.cfg.BandBounds {
		if cost < bound {
			return i
		}
	}
	return len(g.cfg.BandBounds)
}

// Limit returns the current slot count.
func (g *Gate) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// SetLimit resizes the gate. Growing dispatches queued waiters into
// the new slots immediately; shrinking lets in-flight requests drain
// naturally (no running request is interrupted).
func (g *Gate) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.limit = n
	g.dispatchLocked()
	g.mu.Unlock()
}

// Acquire claims a slot for a request with the given estimated cost,
// queueing when the gate is at its limit. The returned release
// function is non-nil iff the outcome is Admitted and must be called
// exactly once when the request finishes.
func (g *Gate) Acquire(ctx context.Context, cost int64) (release func(), out Outcome) {
	g.mu.Lock()
	band := g.bandOf(cost)
	if g.inFlight < g.limit && g.queued == 0 {
		g.inFlight++
		g.bands[band].Admitted++
		g.mu.Unlock()
		return g.releaseOnce(), Admitted
	}
	if g.queued >= g.cfg.MaxQueue {
		// Queue pressure: shed by estimated cost. Find the victim —
		// the youngest waiter of the heaviest backlogged band — and
		// evict it only if the newcomer is strictly cheaper-banded;
		// otherwise the newcomer itself is the heaviest and bounces.
		v := g.victimLocked()
		if v == nil || v.band <= band {
			g.bands[band].Rejected++
			g.mu.Unlock()
			return nil, RejectedQueueFull
		}
		g.removeLocked(v)
		g.bands[v.band].Evicted++
		v.done <- Evicted
	}
	g.seq++
	w := &waiter{cost: cost, band: band, seq: g.seq, done: make(chan Outcome, 1)}
	g.bands[band].q = append(g.bands[band].q, w)
	g.queued++
	if g.cfg.Stats != nil {
		g.cfg.Stats.StartQueued()
	}
	if g.cfg.QueueTimeout > 0 {
		w.timer = time.AfterFunc(g.cfg.QueueTimeout, func() { g.expire(w) })
	}
	g.mu.Unlock()

	select {
	case out = <-w.done:
	case <-ctx.Done():
		g.mu.Lock()
		if g.stillQueuedLocked(w) {
			g.removeLocked(w)
			g.bands[w.band].Canceled++
			g.mu.Unlock()
			return nil, Canceled
		}
		g.mu.Unlock()
		// Lost the race: the waiter was resolved concurrently.
		out = <-w.done
		if out == Admitted {
			// The client is gone; hand the slot straight back.
			g.releaseOnce()()
			return nil, Canceled
		}
	}
	if out == Admitted {
		return g.releaseOnce(), Admitted
	}
	return nil, out
}

// expire resolves a waiter whose queue timeout fired.
func (g *Gate) expire(w *waiter) {
	g.mu.Lock()
	if !g.stillQueuedLocked(w) {
		g.mu.Unlock()
		return
	}
	g.removeLocked(w)
	g.bands[w.band].TimedOut++
	g.mu.Unlock()
	w.done <- TimedOut
}

// releaseOnce returns the slot-release closure; idempotent so the
// canceled-but-admitted race cannot double-free a slot.
func (g *Gate) releaseOnce() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inFlight--
			g.dispatchLocked()
			g.mu.Unlock()
		})
	}
}

// dispatchLocked fills free slots with the globally oldest waiters.
func (g *Gate) dispatchLocked() {
	for g.inFlight < g.limit && g.queued > 0 {
		bi := -1
		for i, b := range g.bands {
			if len(b.q) > 0 && (bi < 0 || b.q[0].seq < g.bands[bi].q[0].seq) {
				bi = i
			}
		}
		w := g.bands[bi].q[0]
		g.removeLocked(w)
		g.inFlight++
		g.bands[bi].Admitted++
		w.done <- Admitted
	}
}

// victimLocked returns the youngest waiter of the heaviest backlogged
// band, or nil when nothing is queued.
func (g *Gate) victimLocked() *waiter {
	for i := len(g.bands) - 1; i >= 0; i-- {
		if q := g.bands[i].q; len(q) > 0 {
			return q[len(q)-1]
		}
	}
	return nil
}

func (g *Gate) stillQueuedLocked(w *waiter) bool {
	for _, qw := range g.bands[w.band].q {
		if qw == w {
			return true
		}
	}
	return false
}

// removeLocked unlinks a waiter from its band queue and settles the
// queue bookkeeping (gauges, timer).
func (g *Gate) removeLocked(w *waiter) {
	q := g.bands[w.band].q
	for i, qw := range q {
		if qw == w {
			g.bands[w.band].q = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	g.queued--
	if g.cfg.Stats != nil {
		g.cfg.Stats.EndQueued()
	}
	if w.timer != nil {
		w.timer.Stop()
	}
}

// GateStats snapshots the gate: current occupancy plus cumulative
// per-band counters.
type GateStats struct {
	Limit    int         `json:"limit"`
	InFlight int         `json:"in_flight"`
	Queued   int         `json:"queued"`
	Bands    []BandStats `json:"bands"`
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GateStats{Limit: g.limit, InFlight: g.inFlight, Queued: g.queued}
	st.Bands = make([]BandStats, len(g.bands))
	for i, b := range g.bands {
		st.Bands[i] = b.BandStats
		st.Bands[i].Queued = len(b.q)
	}
	return st
}
