// Package qlog is the structured query log: one JSONL line per served
// request, written by a single background goroutine fed from a bounded
// channel so the serving path never blocks on disk.
//
// The log is the substrate for the ROADMAP's ranking feedback loop —
// it records the keywords, the interpretation the engine chose, the
// interpretation the user ultimately accepted in a /v1/construct
// session, and what the request cost — so an offline job can fold
// selection counts back into the prob model's priors.
//
// Delivery semantics are deliberately lossy under pressure: when the
// channel is full the OLDEST queued entry is dropped to admit the new
// one (recent traffic is worth more to a feedback loop than stale),
// and a dropped counter records the loss honestly. Files rotate by
// size (`queries-%06d.jsonl`) and old files are pruned beyond a cap,
// bounding disk usage without an external logrotate.
package qlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Entry is one served request. Fields are omitted when empty so quick
// one-off greps stay readable; the decoder tolerates both.
type Entry struct {
	// TS is the completion time in RFC3339Nano (stamped by Log if zero).
	TS string `json:"ts"`
	// TraceID correlates the line with the server trace and the
	// client's X-Trace-Id (loadtest propagates its own IDs).
	TraceID string `json:"trace_id,omitempty"`
	// Op is the endpoint kind: search, rows, diversify, construct,
	// mutate, keywords, checkpoint.
	Op string `json:"op"`
	// Status is the HTTP status code served.
	Status int `json:"status"`
	// Outcome classifies the result: ok, error, shed, timeout.
	Outcome string `json:"outcome,omitempty"`

	// Query is the raw keyword string ("" for non-query ops).
	Query string `json:"query,omitempty"`
	// Interpretation is the engine's top-ranked (served) interpretation
	// in display form; InterpretationProb its model probability.
	Interpretation     string  `json:"interpretation,omitempty"`
	InterpretationProb float64 `json:"interpretation_prob,omitempty"`

	// Construct-session fields: the feedback signal. Action is the
	// step verb (start/accept/reject/candidates/cancel); ServedChoice
	// is the interpretation the finished session settled on — the
	// "user selected" label the feedback loop trains on.
	SessionID    string `json:"session_id,omitempty"`
	Action       string `json:"action,omitempty"`
	Done         bool   `json:"done,omitempty"`
	ServedChoice string `json:"served_choice,omitempty"`

	// Cost accounting: the admission estimate vs what actually
	// happened, and how wide the request fanned out.
	EstimatedCost int64 `json:"estimated_cost,omitempty"`
	DurationUS    int64 `json:"duration_us"`
	ShardFanout   int   `json:"shard_fanout,omitempty"`
	Results       int   `json:"results,omitempty"`

	// StagesUS is the flattened trace: stage name → microseconds.
	StagesUS map[string]int64 `json:"stages_us,omitempty"`
	// Counters carries trace counters (cache hits, plans executed).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Options tunes the logger; zero values take the defaults below.
type Options struct {
	// MaxFileBytes rotates the current file when it exceeds this size
	// (default 16 MiB).
	MaxFileBytes int64
	// MaxFiles caps retained rotated files, oldest pruned first
	// (default 8).
	MaxFiles int
	// Buffer is the channel depth between serving path and writer
	// (default 1024).
	Buffer int
}

const (
	defaultMaxFileBytes = 16 << 20
	defaultMaxFiles     = 8
	defaultBuffer       = 1024
	filePrefix          = "queries-"
	fileSuffix          = ".jsonl"
)

// Logger is the async writer. Log never blocks; Close flushes.
type Logger struct {
	dir  string
	opts Options

	ch      chan Entry
	done    chan struct{}
	once    sync.Once
	dropped atomic.Int64
	written atomic.Int64

	// writer-goroutine state (no locking: single owner).
	f   *os.File
	w   *bufio.Writer
	n   int64 // bytes in the current file
	seq int   // current file sequence number
}

// Open creates (or appends into) a query log in dir. The directory is
// created if absent; writing resumes after the highest existing
// sequence number so restarts never clobber history.
func Open(dir string, opts Options) (*Logger, error) {
	if opts.MaxFileBytes <= 0 {
		opts.MaxFileBytes = defaultMaxFileBytes
	}
	if opts.MaxFiles <= 0 {
		opts.MaxFiles = defaultMaxFiles
	}
	if opts.Buffer <= 0 {
		opts.Buffer = defaultBuffer
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("qlog: create dir: %w", err)
	}
	l := &Logger{
		dir:  dir,
		opts: opts,
		ch:   make(chan Entry, opts.Buffer),
		done: make(chan struct{}),
	}
	seqs, err := listSeqs(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		l.seq = seqs[len(seqs)-1]
	} else {
		l.seq = 1
	}
	if err := l.openFile(); err != nil {
		return nil, err
	}
	go l.run()
	return l, nil
}

// Log enqueues an entry without blocking. When the buffer is full the
// oldest queued entry is evicted to make room; if a concurrent racer
// steals the freed slot the new entry is dropped instead. Either way
// exactly one entry is lost and counted.
func (l *Logger) Log(e Entry) {
	if l == nil {
		return
	}
	if e.TS == "" {
		e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	}
	select {
	case l.ch <- e:
		return
	default:
	}
	// Full: drop the oldest, then retry once.
	select {
	case <-l.ch:
	default:
	}
	select {
	case l.ch <- e:
		l.dropped.Add(1) // the evicted oldest
	default:
		l.dropped.Add(1) // lost the race; this entry is the casualty
	}
}

// Dropped reports entries lost to backpressure since Open.
func (l *Logger) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Written reports entries durably handed to the OS since Open.
func (l *Logger) Written() int64 {
	if l == nil {
		return 0
	}
	return l.written.Load()
}

// Dir returns the log directory ("" on nil).
func (l *Logger) Dir() string {
	if l == nil {
		return ""
	}
	return l.dir
}

// Close drains queued entries, flushes, and closes the file. Safe to
// call more than once; Log after Close silently drops.
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.once.Do(func() { close(l.ch) })
	<-l.done
	return nil
}

func (l *Logger) run() {
	defer close(l.done)
	for e := range l.ch {
		l.write(e)
	}
	if l.w != nil {
		l.w.Flush()
	}
	if l.f != nil {
		l.f.Close()
	}
}

func (l *Logger) write(e Entry) {
	b, err := json.Marshal(e)
	if err != nil {
		// Entry is a plain struct of marshalable fields; unreachable.
		return
	}
	b = append(b, '\n')
	if l.n+int64(len(b)) > l.opts.MaxFileBytes && l.n > 0 {
		l.rotate()
	}
	if l.w == nil {
		return // disk failed at rotate; counted via dropped
	}
	if _, err := l.w.Write(b); err != nil {
		l.dropped.Add(1)
		return
	}
	l.n += int64(len(b))
	l.written.Add(1)
	// Flush per line: entries are rare relative to disk bandwidth and a
	// crash should lose at most the OS buffer, not ours.
	l.w.Flush()
}

func (l *Logger) rotate() {
	if l.w != nil {
		l.w.Flush()
	}
	if l.f != nil {
		l.f.Close()
	}
	l.seq++
	if err := l.openFile(); err != nil {
		l.f, l.w = nil, nil
		return
	}
	l.prune()
}

func (l *Logger) openFile() error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%06d%s", filePrefix, l.seq, fileSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qlog: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("qlog: stat %s: %w", path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.n = st.Size()
	return nil
}

func (l *Logger) prune() {
	seqs, err := listSeqs(l.dir)
	if err != nil {
		return
	}
	for len(seqs) > l.opts.MaxFiles {
		old := filepath.Join(l.dir, fmt.Sprintf("%s%06d%s", filePrefix, seqs[0], fileSuffix))
		os.Remove(old)
		seqs = seqs[1:]
	}
}

// listSeqs returns the sequence numbers of existing log files in
// ascending order.
func listSeqs(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("qlog: read dir: %w", err)
	}
	var seqs []int
	for _, de := range ents {
		name := de.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
		n, err := strconv.Atoi(num)
		if err != nil || n <= 0 {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Decode reads every entry from one JSONL stream in order — the
// offline-job entry point and the round-trip test's oracle. Blank
// lines are skipped; a malformed line aborts with its line number.
func Decode(data []byte) ([]Entry, error) {
	var out []Entry
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("qlog: line %d: %w", i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// ReadAll decodes every retained log file in dir, oldest first.
func ReadAll(dir string) ([]Entry, error) {
	seqs, err := listSeqs(dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, s := range seqs {
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s%06d%s", filePrefix, s, fileSuffix)))
		if err != nil {
			return nil, err
		}
		es, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	return out, nil
}
