package admission

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock: the governor tests drive window
// rotation without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestGovernorRotatesOnClock: completions within a window accumulate;
// the completion that crosses the boundary rotates the window into
// the controller and resizes the gate.
func TestGovernorRotatesOnClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	ctrl := NewController(Config{MinLimit: 2, MaxLimit: 64})
	gate := NewGate(GateConfig{Limit: 99, MaxQueue: 4})
	gov := NewGovernor(ctrl, gate, time.Second, clk.now)

	// Construction aligns the gate to the controller's initial limit.
	if gate.Limit() != 2 {
		t.Fatalf("gate limit = %d, want controller initial 2", gate.Limit())
	}

	// A healthy window: 20 completions at 5ms, then cross the boundary.
	for i := 0; i < 20; i++ {
		gov.ObserveCompletion(5 * time.Millisecond)
	}
	if st := gov.State(); st.Windows != 0 {
		t.Fatalf("window rotated early: %+v", st)
	}
	clk.advance(1100 * time.Millisecond)
	gov.ObserveCompletion(5 * time.Millisecond)

	st := gov.State()
	if st.Windows != 1 || st.Increases != 1 {
		t.Fatalf("after first rotation: %+v", st)
	}
	if gov.Limit() != 3 || gate.Limit() != 3 {
		t.Fatalf("limits after healthy window: governor %d gate %d, want 3",
			gov.Limit(), gate.Limit())
	}

	// A degraded window backs off and shrinks the gate: 19 slow
	// completions inside the window, the 20th crosses the boundary.
	for i := 0; i < 19; i++ {
		gov.ObserveCompletion(100 * time.Millisecond)
	}
	clk.advance(1100 * time.Millisecond)
	gov.ObserveCompletion(100 * time.Millisecond)
	st = gov.State()
	if st.Windows != 2 || st.Backoffs != 1 {
		t.Fatalf("after degraded window: %+v", st)
	}
	if gate.Limit() != gov.Limit() {
		t.Fatalf("gate limit %d drifted from governor %d", gate.Limit(), gov.Limit())
	}
}

// TestGovernorSparseWindowHolds: a boundary crossing with too few
// samples leaves the limit alone.
func TestGovernorSparseWindowHolds(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	ctrl := NewController(Config{MinLimit: 4, MaxLimit: 64, InitialLimit: 8})
	gov := NewGovernor(ctrl, nil, time.Second, clk.now)

	clk.advance(2 * time.Second)
	gov.ObserveCompletion(time.Second) // 1 completion < MinSamples
	if st := gov.State(); st.Windows != 1 || st.Holds != 1 || gov.Limit() != 8 {
		t.Fatalf("sparse window: %+v limit %d", st, gov.Limit())
	}
}

// TestGovernorServiceEWMA: the drain-rate meter tracks service time
// and feeds RetryAfter.
func TestGovernorServiceEWMA(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	gov := NewGovernor(NewController(Config{}), nil, time.Second, clk.now)

	if gov.AvgService() != 0 {
		t.Fatal("avg service non-zero before any completion")
	}
	gov.ObserveCompletion(100 * time.Millisecond)
	if got := gov.AvgService(); got != 100*time.Millisecond {
		t.Fatalf("first sample seeds EWMA: got %v", got)
	}
	for i := 0; i < 200; i++ {
		gov.ObserveCompletion(10 * time.Millisecond)
	}
	got := gov.AvgService()
	if got < 9*time.Millisecond || got > 15*time.Millisecond {
		t.Fatalf("EWMA did not converge to new service time: %v", got)
	}
}
