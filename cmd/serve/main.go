// Command serve runs the keyword-search engine as an HTTP JSON service
// over one of the bundled demo datasets (or a database dump written by
// Engine.SaveTo), optionally persisted in a durable state directory.
//
// Usage:
//
//	go run ./cmd/serve [-addr :8080] [-seed N] [-music] [-db dump] [-ttl 15m]
//	                   [-mutable] [-data-dir DIR] [-answer-cache BYTES]
//	                   [-max-concurrent N] [-max-queue N] [-queue-timeout 1s]
//	                   [-request-timeout 5s]
//	                   [-adaptive] [-adapt-min N] [-adapt-max N] [-adapt-window 500ms]
//
// -answer-cache gives the engine-lifetime materialized answer cache a
// byte budget (0, the default, disables it): hot keyword-bag selections
// and candidate-network results are shared across requests, invalidated
// incrementally by mutation batches, persisted at checkpoint, and
// restored warm on recovery. /healthz reports its occupancy and hit
// counters; see docs/qcache.md.
//
// The overload protection of the serving path comes in two modes.
// Static: -max-concurrent bounds requests executing at once,
// -max-queue bounds the wait line (excess is shed with 429, expired
// waits with 503, both with Retry-After), and -request-timeout gives
// every /v1/ request a default deadline that propagates through the
// engine and maps to 504. Adaptive: -adaptive replaces the static
// limit with the AIMD governor (docs/admission.md) — the concurrency
// limit self-tunes between -adapt-min and -adapt-max from windowed
// p99 observations (-adapt-window), and under queue pressure the
// estimated-heaviest waiters are shed first. -max-queue and
// -queue-timeout size the adaptive queue too. All are off by default;
// /healthz reports limits, controller state, and shed counters.
//
// Quickstart:
//
//	go run ./cmd/serve -mutable -data-dir ./state &
//	curl -s localhost:8080/v1/search -d '{"query":"hanks","k":3}'
//	curl -s localhost:8080/v1/mutate -d '{"mutations":[{"op":"insert","table":"actor","values":["a9001","Nora Ephron"]}]}'
//	curl -s -X POST localhost:8080/v1/checkpoint
//	kill %1   # graceful: drains HTTP, checkpoints, closes the WAL
//	go run ./cmd/serve -mutable -data-dir ./state   # recovers: no rebuild
//
// With -data-dir the boot is open-or-build: an existing state directory
// is recovered (snapshot + write-ahead-log tail, surviving crashes mid-
// write), an empty one is initialised from the selected dataset. On
// SIGINT/SIGTERM the server drains in-flight requests, runs a final
// checkpoint, and closes the log, so the next boot reads one snapshot
// and replays nothing.
//
// See package repro/httpapi for the endpoint and session protocol,
// docs/mutations.md for the live-mutation snapshot model, and
// docs/persistence.md for the durability design.
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	keysearch "repro"
	"repro/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 7, "demo dataset generator seed")
	music := flag.Bool("music", false, "serve the music (lyrics) dataset instead of movies")
	dbPath := flag.String("db", "", "serve a database dump written by Engine.SaveTo instead of a demo dataset")
	ttl := flag.Duration("ttl", 15*time.Minute, "construction session idle TTL")
	maxSessions := flag.Int("max-sessions", 1024, "cap on live construction sessions")
	parallelism := flag.Int("parallelism", 0, "pipeline worker count (0 = GOMAXPROCS, 1 = sequential)")
	scoreCache := flag.Bool("score-cache", true, "memoise score sub-terms across requests")
	execCache := flag.Bool("exec-cache", true, "share keyword selections across the plans of one request")
	answerCache := flag.Int64("answer-cache", 0, "engine-lifetime answer cache byte budget; hot selections and plan results survive across requests (0 = disabled; needs -exec-cache)")
	mutable := flag.Bool("mutable", false, "enable live mutations via POST /v1/mutate (snapshot-isolated)")
	dataDir := flag.String("data-dir", "", "durable state directory: recover it if present, initialise it otherwise")
	checkpointEvery := flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint interval (with -data-dir)")
	checkpointBatches := flag.Int("checkpoint-batches", 256, "checkpoint as soon as this many WAL batches accumulate (with -data-dir)")
	maxConcurrent := flag.Int("max-concurrent", 0, "cap on concurrently executing /v1/ requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "cap on /v1/ requests waiting for a slot; excess shed with 429 (with -max-concurrent)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "longest a request may wait for a slot before a 503 shed (with -max-concurrent)")
	requestTimeout := flag.Duration("request-timeout", 0, "default per-request deadline on /v1/ endpoints, 504 on expiry (0 = none)")
	adaptive := flag.Bool("adaptive", false, "self-tune the concurrency limit (AIMD governor with cost-aware shedding; supersedes -max-concurrent)")
	adaptMin := flag.Int("adapt-min", 2, "adaptive concurrency floor (with -adaptive)")
	adaptMax := flag.Int("adapt-max", 0, "adaptive concurrency ceiling (with -adaptive; 0 = 8x GOMAXPROCS)")
	adaptWindow := flag.Duration("adapt-window", 500*time.Millisecond, "adaptive control-loop window (with -adaptive)")
	flag.Parse()

	opts := []keysearch.Option{
		keysearch.WithCoOccurrence(),
		keysearch.WithParallelism(*parallelism),
		keysearch.WithScoreCache(*scoreCache),
		keysearch.WithExecutionCache(*execCache),
		keysearch.WithAnswerCache(*answerCache),
	}
	if *mutable {
		opts = append(opts, keysearch.WithMutations())
	}
	if *dataDir != "" {
		opts = append(opts,
			keysearch.WithDurability(*dataDir),
			keysearch.WithCheckpointPolicy(*checkpointEvery, *checkpointBatches),
		)
	}

	eng, err := buildEngine(*dataDir, *dbPath, *music, *seed, opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine ready: %d tables, %d rows, %d query templates, parallelism %d, mutable %v, durable %v (epoch %d)",
		eng.NumTables(), eng.NumRows(), eng.NumTemplates(), eng.Parallelism(), eng.MutationsEnabled(),
		eng.Durable(), eng.Epoch())
	if stats, ok := eng.AnswerCacheStats(); ok {
		log.Printf("answer cache: budget %d bytes, %d entries restored (%d bytes resident)",
			stats.BudgetBytes, stats.Entries, stats.ResidentBytes)
	}

	adaptCeiling := 0 // 0 when -adaptive is off: governor disabled
	if *adaptive {
		adaptCeiling = *adaptMax
		if adaptCeiling <= 0 {
			adaptCeiling = 8 * runtime.GOMAXPROCS(0)
		}
	}
	srv := httpapi.New(eng,
		httpapi.WithSessionTTL(*ttl),
		httpapi.WithMaxSessions(*maxSessions),
		httpapi.WithAdmission(httpapi.AdmissionConfig{
			MaxConcurrent: *maxConcurrent,
			MaxQueue:      *maxQueue,
			QueueTimeout:  *queueTimeout,
		}),
		httpapi.WithAdaptiveAdmission(httpapi.AdaptiveConfig{
			MinConcurrent: *adaptMin,
			MaxConcurrent: adaptCeiling,
			MaxQueue:      *maxQueue,
			QueueTimeout:  *queueTimeout,
			Window:        *adaptWindow,
		}),
		httpapi.WithRequestTimeout(*requestTimeout),
	)
	switch {
	case *adaptive:
		log.Printf("admission: adaptive, limit %d..%d, window %v, max-queue %d, queue-timeout %v",
			*adaptMin, adaptCeiling, *adaptWindow, *maxQueue, *queueTimeout)
	case *maxConcurrent > 0:
		log.Printf("admission: max-concurrent %d, max-queue %d, queue-timeout %v",
			*maxConcurrent, *maxQueue, *queueTimeout)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: logRequests(srv)}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// flush durability (final checkpoint + WAL close) before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("shutting down: draining HTTP...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if eng.Durable() {
			log.Printf("shutting down: final checkpoint + closing WAL...")
		}
		if err := eng.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}()

	log.Printf("serving on %s (try: curl -s localhost%s/v1/search -d '{\"query\":\"hanks\",\"k\":3}')",
		*addr, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("bye")
}

// buildEngine implements open-or-build: recover dataDir when it holds a
// snapshot, otherwise build from the dump or demo dataset (durably when
// dataDir is set, so the next boot recovers).
func buildEngine(dataDir, dbPath string, music bool, seed int64, opts []keysearch.Option) (*keysearch.Engine, error) {
	if dataDir != "" {
		eng, err := keysearch.Open(dataDir, opts...)
		if err == nil {
			log.Printf("recovered state directory %s (replaying WAL tail of %d batches)",
				dataDir, eng.PendingWALBatches())
			return eng, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		log.Printf("state directory %s is empty: building from dataset", dataDir)
	}
	switch {
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return keysearch.Load(f, opts...)
	case music:
		// The 5-table chain schema needs join paths of length 5.
		return keysearch.DemoMusicWith(seed, opts...)
	default:
		return keysearch.DemoMoviesWith(seed, opts...)
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
