// Package yagof implements YAGO+F — combining a large-scale database with
// an ontology (Chapter 6): the structural analysis of the ontology's
// concept and instance distributions (Tables 6.1/6.2), the instance-based
// overlap between the ontology and the database (Figure 6.2), the
// instance-overlap matching of ontology classes to database tables
// (Section 6.5 / Figure 6.3), the characterisation of the resulting
// YAGO+F hierarchy (Table 6.3), and the matching-quality evaluation
// against a gold standard (Figure 6.4).
//
// The matcher is deliberately simple and faithful to the chapter's idea:
// a database table matches the ontology class that covers the largest
// fraction of the table's instances, provided the fraction reaches a
// threshold. Classes and tables share instance identifiers because both
// datasets originate from the same entity pool (Wikipedia in the thesis,
// the shared ConceptSpace in this reproduction).
package yagof

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ontology"
)

// CategoryBand is one row of the category-distribution analysis
// (Table 6.1): a class kind with its counts.
type CategoryBand struct {
	Kind    string
	Classes int
	// WithInstances counts classes of this kind holding ≥1 direct
	// instance.
	WithInstances int
}

// CategoryDistribution classifies ontology classes by their naming
// convention (the real YAGO mixes WordNet synsets and Wikipedia
// categories; the generator mirrors the prefixes) and reports the
// distribution of Table 6.1.
func CategoryDistribution(o *ontology.Ontology) []CategoryBand {
	counts := map[string]*CategoryBand{}
	order := []string{}
	for id := 0; id < o.NumClasses(); id++ {
		c, _ := o.Class(id)
		kind := "other"
		switch {
		case strings.HasPrefix(c.Name, "wikicategory_"):
			kind = "wikicategory"
		case strings.HasPrefix(c.Name, "wordnet_"):
			kind = "wordnet"
		}
		b := counts[kind]
		if b == nil {
			b = &CategoryBand{Kind: kind}
			counts[kind] = b
			order = append(order, kind)
		}
		b.Classes++
		if o.DirectInstanceCount(id) > 0 {
			b.WithInstances++
		}
	}
	sort.Strings(order)
	out := make([]CategoryBand, 0, len(order))
	for _, k := range order {
		out = append(out, *counts[k])
	}
	return out
}

// InstanceBand is one row of the instance-distribution analysis
// (Table 6.2): classes bucketed by direct instance count.
type InstanceBand struct {
	Label     string
	MinCount  int
	MaxCount  int // inclusive; -1 = unbounded
	Classes   int
	Instances int
}

// InstanceDistribution buckets classes by their direct instance counts,
// reproducing the Table 6.2 analysis (most YAGO instances sit in classes
// with few instances each — the fine-grained leaves).
func InstanceDistribution(o *ontology.Ontology) []InstanceBand {
	bands := []InstanceBand{
		{Label: "0", MinCount: 0, MaxCount: 0},
		{Label: "1-10", MinCount: 1, MaxCount: 10},
		{Label: "11-100", MinCount: 11, MaxCount: 100},
		{Label: "101-1000", MinCount: 101, MaxCount: 1000},
		{Label: ">1000", MinCount: 1001, MaxCount: -1},
	}
	for id := 0; id < o.NumClasses(); id++ {
		n := o.DirectInstanceCount(id)
		for i := range bands {
			if n >= bands[i].MinCount && (bands[i].MaxCount < 0 || n <= bands[i].MaxCount) {
				bands[i].Classes++
				bands[i].Instances += n
				break
			}
		}
	}
	return bands
}

// DomainOverlap is one row of the shared-instance analysis (Figure 6.2).
type DomainOverlap struct {
	Domain string
	// Tables in the domain.
	Tables int
	// Instances across the domain's tables (with multiplicity removed).
	Instances int
	// Shared instances also present in the ontology.
	Shared int
}

// SharedFraction returns Shared/Instances (0 for empty domains).
func (d DomainOverlap) SharedFraction() float64 {
	if d.Instances == 0 {
		return 0
	}
	return float64(d.Shared) / float64(d.Instances)
}

// SharedInstancesByDomain computes, per database domain, how many of the
// domain's instances also occur in the ontology (Figure 6.2).
// instancesOf maps table -> instance ids; domainOf maps table -> domain.
func SharedInstancesByDomain(o *ontology.Ontology, instancesOf map[string][]string, domainOf map[string]string) []DomainOverlap {
	inOnto := make(map[string]bool)
	for _, inst := range o.InstancesBelow(o.Root()) {
		inOnto[inst] = true
	}
	perDomain := map[string]map[string]bool{}
	tables := map[string]int{}
	for table, insts := range instancesOf {
		d := domainOf[table]
		set := perDomain[d]
		if set == nil {
			set = make(map[string]bool)
			perDomain[d] = set
		}
		tables[d]++
		for _, i := range insts {
			set[i] = true
		}
	}
	domains := make([]string, 0, len(perDomain))
	for d := range perDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	out := make([]DomainOverlap, 0, len(domains))
	for _, d := range domains {
		row := DomainOverlap{Domain: d, Tables: tables[d], Instances: len(perDomain[d])}
		for i := range perDomain[d] {
			if inOnto[i] {
				row.Shared++
			}
		}
		out = append(out, row)
	}
	return out
}

// Match is one table-to-class assignment produced by the matcher.
type Match struct {
	Table     string
	Class     int
	ClassName string
	// Score is the fraction of the table's instances covered by the
	// class's direct instances.
	Score float64
}

// MatchConfig tunes the matcher.
type MatchConfig struct {
	// Threshold is the minimum coverage score for a match (Figure 6.4
	// sweeps it).
	Threshold float64
	// ConceptClassesOnly restricts candidates to non-leaf-category
	// classes (names without the wikicategory prefix). The thesis matches
	// Freebase tables against YAGO's conceptual classes.
	ConceptClassesOnly bool
}

// MatchTables matches every table to the class with the highest instance
// coverage, keeping matches at or above the threshold (Section 6.5).
// Ties break towards the deeper (more specific) class, then by name.
func MatchTables(o *ontology.Ontology, instancesOf map[string][]string, cfg MatchConfig) []Match {
	// Invert the ontology's instance sets once.
	classesOf := make(map[string][]int)
	for id := 0; id < o.NumClasses(); id++ {
		if cfg.ConceptClassesOnly {
			c, _ := o.Class(id)
			if strings.HasPrefix(c.Name, "wikicategory_") {
				continue
			}
		}
		for _, inst := range o.DirectInstances(id) {
			classesOf[inst] = append(classesOf[inst], id)
		}
	}
	tables := make([]string, 0, len(instancesOf))
	for t := range instancesOf {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	var out []Match
	for _, table := range tables {
		insts := instancesOf[table]
		if len(insts) == 0 {
			continue
		}
		overlap := map[int]int{}
		for _, inst := range insts {
			for _, cid := range classesOf[inst] {
				overlap[cid]++
			}
		}
		bestClass, bestCount := -1, 0
		for cid, n := range overlap {
			if better(o, cid, n, bestClass, bestCount) {
				bestClass, bestCount = cid, n
			}
		}
		if bestClass < 0 {
			continue
		}
		score := float64(bestCount) / float64(len(insts))
		if score < cfg.Threshold {
			continue
		}
		c, _ := o.Class(bestClass)
		out = append(out, Match{Table: table, Class: bestClass, ClassName: c.Name, Score: score})
	}
	return out
}

// better orders candidate classes: higher overlap wins; ties prefer the
// deeper class, then the lexicographically smaller name (determinism).
func better(o *ontology.Ontology, cid, n, bestClass, bestCount int) bool {
	if bestClass < 0 || n > bestCount {
		return true
	}
	if n < bestCount {
		return false
	}
	c, _ := o.Class(cid)
	b, _ := o.Class(bestClass)
	if c.Depth != b.Depth {
		return c.Depth > b.Depth
	}
	return c.Name < b.Name
}

// Apply maps the matched tables into the ontology, producing the YAGO+F
// structure.
func Apply(o *ontology.Ontology, matches []Match) {
	for _, m := range matches {
		o.MapTable(m.Class, m.Table)
	}
}

// Stats characterises a YAGO+F structure (Table 6.3).
type Stats struct {
	Classes           int
	ClassesWithTables int
	MatchedTables     int
	UnmatchedTables   int
	// MeanScore is the average match score.
	MeanScore float64
	// DepthHistogram counts matched tables per class depth.
	DepthHistogram []int
}

// Characterize summarises the matching over the total table count.
func Characterize(o *ontology.Ontology, matches []Match, totalTables int) Stats {
	st := Stats{Classes: o.NumClasses(), MatchedTables: len(matches)}
	st.UnmatchedTables = totalTables - len(matches)
	withTables := map[int]bool{}
	sum := 0.0
	st.DepthHistogram = make([]int, o.MaxDepth()+1)
	for _, m := range matches {
		withTables[m.Class] = true
		sum += m.Score
		c, _ := o.Class(m.Class)
		st.DepthHistogram[c.Depth]++
	}
	st.ClassesWithTables = len(withTables)
	if len(matches) > 0 {
		st.MeanScore = sum / float64(len(matches))
	}
	return st
}

// Quality is one point of the matching-quality sweep (Figure 6.4).
type Quality struct {
	Threshold float64
	Matched   int
	Correct   int
	Precision float64
	Recall    float64
	F1        float64
}

// EvaluateMatching sweeps the match threshold and scores the matcher
// against the gold standard: truth maps table -> concept name, and a
// match is correct when it lands on the class named "wordnet_<concept>"
// or any class in that class's subtree.
func EvaluateMatching(o *ontology.Ontology, instancesOf map[string][]string, truth map[string]string, thresholds []float64, cfg MatchConfig) []Quality {
	out := make([]Quality, 0, len(thresholds))
	for _, th := range thresholds {
		c := cfg
		c.Threshold = th
		matches := MatchTables(o, instancesOf, c)
		q := Quality{Threshold: th, Matched: len(matches)}
		for _, m := range matches {
			concept, ok := truth[m.Table]
			if !ok {
				continue
			}
			cid, ok := o.ByName("wordnet_" + concept)
			if !ok {
				continue
			}
			if m.Class == cid || within(o, m.Class, cid) {
				q.Correct++
			}
		}
		if q.Matched > 0 {
			q.Precision = float64(q.Correct) / float64(q.Matched)
		}
		if len(truth) > 0 {
			q.Recall = float64(q.Correct) / float64(len(truth))
		}
		if q.Precision+q.Recall > 0 {
			q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
		}
		out = append(out, q)
	}
	return out
}

// within reports whether class id lies in the subtree rooted at root.
func within(o *ontology.Ontology, id, root int) bool {
	for id >= 0 {
		if id == root {
			return true
		}
		c, ok := o.Class(id)
		if !ok {
			return false
		}
		id = c.Parent
	}
	return false
}

// FormatMatches renders matches for the experiment printouts.
func FormatMatches(matches []Match, limit int) string {
	var sb strings.Builder
	for i, m := range matches {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&sb, "... and %d more\n", len(matches)-limit)
			break
		}
		fmt.Fprintf(&sb, "%-24s -> %-32s score=%.2f\n", m.Table, m.ClassName, m.Score)
	}
	return sb.String()
}
