package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/httpapi"
)

// kneeWrapper simulates a server whose true capacity is `capacity`
// concurrent requests, each costing `service` of wall time: a
// semaphore of that width inside the admission gate, so any admitted
// concurrency above the capacity shows up as queueing latency — a
// sharp, machine-independent knee for the governor to find.
func kneeWrapper(capacity int, service time.Duration) func(http.Handler) http.Handler {
	slots := make(chan struct{}, capacity)
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case slots <- struct{}{}:
			case <-r.Context().Done():
				w.WriteHeader(http.StatusGatewayTimeout)
				return
			}
			defer func() { <-slots }()
			select {
			case <-time.After(service):
			case <-r.Context().Done():
				w.WriteHeader(http.StatusGatewayTimeout)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
}

// TestAdaptiveMatchesStaticKneeAndShedsCostAware is the loadgen
// acceptance test of the admission governor (docs/admission.md): under
// 8x oversubscription against a server with a hidden 2-slot capacity,
//
//  1. the governor — starting blind at its floor of 1, no hand-tuned
//     limit anywhere — must hold goodput and p99 within 20% of a
//     static gate parked exactly at the knee by an omniscient
//     operator, and
//  2. its shedding must be cost-aware: the shed *rate* of the cheap
//     cost band must be strictly below the heavy band's, because under
//     queue pressure the estimated-heaviest waiters lose their places
//     first.
func TestAdaptiveMatchesStaticKneeAndShedsCostAware(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	eng, _ := env.get(t)
	// A dedicated search/rows workload (no construct dialogues, whose
	// multi-request sessions muddy per-request latency; no mutations,
	// which are cost-1 by definition) over the same corpus, so each
	// op's cost attribution is clean.
	db, err := BuildDataset(DatasetConfig{Kind: KindMovies, TargetRows: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := BuildWorkload(db, KindMovies, WorkloadConfig{
		Ops:  128,
		Mix:  Mix{Search: 1, Rows: 1},
		Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The cheap/heavy boundary is the corpus's own cost median, the
	// same estimator the server prices admissions with.
	costs := make([]int64, 0, len(ops))
	for _, op := range ops {
		costs = append(costs, eng.EstimateCost(op.Query))
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
	median := costs[len(costs)/2]
	if median < 2 {
		t.Fatalf("corpus median cost %d leaves no cheap band", median)
	}

	const (
		capacity = 2
		// Wide enough that scheduler jitter (a millisecond or two under
		// the race detector) stays well inside the 30% degradation
		// threshold, so the knee is the only signal the governor sees.
		service      = 10 * time.Millisecond
		workers      = 16 // 8x the hidden capacity
		maxQueue     = 8
		queueTimeout = 100 * time.Millisecond
		reqTimeout   = 500 * time.Millisecond
	)
	run := func(srv *httpapi.Server, d time.Duration) (*Result, *httpapi.HealthResponse) {
		ts := httptest.NewServer(srv)
		defer ts.Close()
		res, err := Run(t.Context(), Options{
			BaseURL:  ts.URL,
			Ops:      ops,
			Workers:  workers,
			Duration: d,
		})
		if err != nil {
			t.Fatal(err)
		}
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var h httpapi.HealthResponse
		if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return res, &h
	}

	// Baseline: a static gate an omniscient operator parked exactly at
	// the hidden capacity.
	static, _ := run(httpapi.New(eng,
		httpapi.WithHandlerWrapper(kneeWrapper(capacity, service)),
		httpapi.WithAdmission(httpapi.AdmissionConfig{
			MaxConcurrent: capacity,
			MaxQueue:      maxQueue,
			QueueTimeout:  queueTimeout,
		}),
		httpapi.WithRequestTimeout(reqTimeout),
	), 2*time.Second)

	// Candidate: the governor, told nothing but "between 1 and 16",
	// starting at the floor. The extra runtime is its discovery budget.
	adaptive, health := run(httpapi.New(eng,
		httpapi.WithHandlerWrapper(kneeWrapper(capacity, service)),
		httpapi.WithAdaptiveAdmission(httpapi.AdaptiveConfig{
			MinConcurrent:     1,
			InitialConcurrent: 1,
			MaxConcurrent:     16,
			MaxQueue:          maxQueue,
			QueueTimeout:      queueTimeout,
			Window:            200 * time.Millisecond,
			// Past the knee each extra slot adds a full service time of
			// queueing (+50% at the first step), while scheduler noise
			// on a loaded CI machine stays in the 10-20% range. A 50%
			// gradient threshold separates the two, where the default
			// 30% would read one noisy window as a knee and halve the
			// limit — and with it the goodput — below true capacity.
			Degrade:   0.5,
			CostBands: []int64{median},
		}),
		httpapi.WithRequestTimeout(reqTimeout),
	), 3500*time.Millisecond)
	t.Logf("static-at-knee: %v", static)
	t.Logf("adaptive:       %v", adaptive)

	if static.Goodput == 0 || adaptive.Goodput == 0 {
		t.Fatal("a leg served nothing under overload")
	}
	if static.Errors != 0 || adaptive.Errors != 0 {
		t.Fatalf("overload produced real errors: static %d adaptive %d",
			static.Errors, adaptive.Errors)
	}
	if adaptive.Shed429+adaptive.Shed503 == 0 {
		t.Fatalf("adaptive leg shed nothing at 8x oversubscription: %v", adaptive)
	}

	// (1) Within 20% of the hand-tuned optimum, both axes. The p99
	// bound gets a small absolute allowance on top for scheduler noise
	// on loaded CI machines.
	if adaptive.GoodputRPS < 0.8*static.GoodputRPS {
		t.Fatalf("adaptive goodput %.0f/s is below 80%% of static-at-knee %.0f/s",
			adaptive.GoodputRPS, static.GoodputRPS)
	}
	if bound := 1.2*static.P99MS + 75; adaptive.P99MS > bound {
		t.Fatalf("adaptive p99 %.1fms above bound %.1fms (static %.1fms)",
			adaptive.P99MS, bound, static.P99MS)
	}

	// (2) Cost-aware shedding, judged by the server's own per-band
	// counters so client-side status codes can't blur attribution.
	if health.Adaptive == nil || !health.Adaptive.Enabled {
		t.Fatalf("healthz reports no adaptive governor: %+v", health)
	}
	if health.Adaptive.Limit < 1 || health.Adaptive.Limit > 16 {
		t.Fatalf("converged limit %d escaped [1,16]", health.Adaptive.Limit)
	}
	if health.Adaptive.Windows < 5 {
		t.Fatalf("control loop barely ran: %d windows", health.Adaptive.Windows)
	}
	if len(health.Adaptive.Bands) != 2 {
		t.Fatalf("want 2 cost bands, got %+v", health.Adaptive.Bands)
	}
	// Under unrelenting 8x pressure the heavy band may be starved
	// outright (admitted 0, shed rate 1.0) — that is the design working,
	// not a failure — but the cheap band must still be getting through,
	// and both bands must have seen real traffic for the rates to mean
	// anything.
	cheap, heavy := health.Adaptive.Bands[0], health.Adaptive.Bands[1]
	if cheap.Admitted == 0 {
		t.Fatalf("cheap band admitted nothing: cheap %+v heavy %+v", cheap, heavy)
	}
	if heavy.Sheds()+heavy.Admitted == 0 {
		t.Fatalf("heavy band saw no traffic: %+v", heavy)
	}
	cheapRate := float64(cheap.Sheds()) / float64(cheap.Sheds()+cheap.Admitted)
	heavyRate := float64(heavy.Sheds()) / float64(heavy.Sheds()+heavy.Admitted)
	t.Logf("shed rates: cheap %.3f (%d/%d), heavy %.3f (%d/%d)",
		cheapRate, cheap.Sheds(), cheap.Sheds()+cheap.Admitted,
		heavyRate, heavy.Sheds(), heavy.Sheds()+heavy.Admitted)
	if cheapRate >= heavyRate {
		t.Fatalf("shedding is not cost-aware: cheap band rate %.3f >= heavy band rate %.3f",
			cheapRate, heavyRate)
	}
}
