package benchqc

import (
	"testing"
	"time"
)

// TestMeasureQuick runs both legs at toy scale: the point is that the
// grid executes, the report carries the guard columns, and the cache
// actually served hits within its budget — not that the speedup number
// means anything at 4000 rows.
func TestMeasureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("qcache grid takes a few seconds")
	}
	rep, err := Measure(Config{
		Quick:        true,
		TargetRows:   4000,
		StepDuration: 300 * time.Millisecond,
		Workers:      4,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetRows == 0 || rep.WorkloadOps == 0 {
		t.Fatalf("report missing dataset shape: %+v", rep)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want cache-off + cache-on rows, got %+v", rep.Rows)
	}
	off, on := rep.Rows[0], rep.Rows[1]
	if off.Name != "zipf-cache-off" || on.Name != "zipf-cache-on" {
		t.Fatalf("unexpected leg names: %q %q", off.Name, on.Name)
	}
	if off.Requests == 0 || on.Requests == 0 {
		t.Fatalf("a leg measured nothing: %+v", rep.Rows)
	}
	if off.SpeedupVsCold != 0 {
		t.Fatalf("guard column leaked onto the baseline row: %+v", off)
	}
	if on.SpeedupVsCold <= 0 {
		t.Fatalf("cache-on leg missing the guard column: %+v", on)
	}
	if rep.SpeedupVsCold != on.SpeedupVsCold {
		t.Fatalf("aggregate speedup %v != row %v", rep.SpeedupVsCold, on.SpeedupVsCold)
	}
	if on.HitRate <= 0 || on.HitRate > 1 {
		t.Fatalf("implausible hit rate: %+v", on)
	}
	if on.HighWaterBytes == 0 || on.HighWaterBytes > rep.BudgetBytes {
		t.Fatalf("budget accounting wrong: %+v (budget %d)", on, rep.BudgetBytes)
	}
}
