package query

import (
	"context"
	"sort"
	"strings"
	"sync"

	"repro/internal/invindex"
	"repro/internal/schemagraph"
)

// Candidates holds, for every keyword position of a keyword query, the
// keyword interpretations that are valid against the database: value
// matches found via the inverted index plus schema-term matches
// (Section 3.5.1). Keywords with no match anywhere are excluded from the
// construction process, as in Section 3.5.2 ("in case one of the keywords
// is misspelled or does not exist in the target database, it is excluded").
type Candidates struct {
	Keywords   []string
	PerKeyword [][]KeywordInterpretation
	// Unmatched lists keyword positions with no interpretation at all.
	Unmatched []int
}

// GenerateOptionsConfig tunes candidate generation.
type GenerateOptionsConfig struct {
	// IncludeSchemaTerms enables KindTable/KindColumn interpretations
	// (matching keywords against table and attribute names, §2.2.7).
	IncludeSchemaTerms bool
	// MaxPerKeyword caps the number of interpretations kept per keyword
	// (0 = unlimited). When capping, value interpretations with higher
	// term counts are preferred.
	MaxPerKeyword int
	// IncludeAggregates recognises aggregation keywords ("number",
	// "count", "many", "total") as COUNT operators — the analytical
	// keyword queries of Section 2.2.7.
	IncludeAggregates bool
}

// aggregateKeywords maps recognised aggregation keywords to operators.
var aggregateKeywords = map[string]string{
	"number": "count", "count": "count", "many": "count", "total": "count",
}

// GenerateCandidates computes the candidate keyword interpretations of
// every keyword against the index. It is the context-free convenience
// form of GenerateCandidatesContext.
func GenerateCandidates(ix *invindex.Index, keywords []string, cfg GenerateOptionsConfig) *Candidates {
	c, _ := GenerateCandidatesContext(context.Background(), ix, keywords, cfg)
	return c
}

// GenerateCandidatesContext is GenerateCandidates with cancellation: the
// context is checked before each keyword's index lookups, so a cancelled
// or expired request aborts candidate generation early.
func GenerateCandidatesContext(ctx context.Context, ix *invindex.Index, keywords []string, cfg GenerateOptionsConfig) (*Candidates, error) {
	c := &Candidates{Keywords: normalizeKeywords(keywords)}
	c.PerKeyword = make([][]KeywordInterpretation, len(c.Keywords))
	for pos, kw := range c.Keywords {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var kis []KeywordInterpretation
		postings := ix.Lookup(kw)
		// Sort value matches by descending count for stable capping.
		sort.Slice(postings, func(i, j int) bool {
			if postings[i].Count != postings[j].Count {
				return postings[i].Count > postings[j].Count
			}
			return postings[i].Attr.String() < postings[j].Attr.String()
		})
		for _, p := range postings {
			kis = append(kis, KeywordInterpretation{
				Pos: pos, Keyword: kw, Kind: KindValue, Attr: p.Attr,
			})
		}
		if cfg.IncludeAggregates {
			if agg, ok := aggregateKeywords[kw]; ok {
				kis = append(kis, KeywordInterpretation{
					Pos: pos, Keyword: kw, Kind: KindAggregate, Agg: agg,
				})
			}
		}
		if cfg.IncludeSchemaTerms {
			for _, tbl := range ix.MatchTables(kw) {
				kis = append(kis, KeywordInterpretation{
					Pos: pos, Keyword: kw, Kind: KindTable, Table: tbl,
				})
			}
			for _, attr := range ix.MatchColumns(kw) {
				kis = append(kis, KeywordInterpretation{
					Pos: pos, Keyword: kw, Kind: KindColumn, Attr: attr,
				})
			}
		}
		if cfg.MaxPerKeyword > 0 && len(kis) > cfg.MaxPerKeyword {
			kis = kis[:cfg.MaxPerKeyword]
		}
		if len(kis) == 0 {
			c.Unmatched = append(c.Unmatched, pos)
		}
		c.PerKeyword[pos] = kis
	}
	return c, nil
}

// MatchedPositions returns the keyword positions that have at least one
// interpretation.
func (c *Candidates) MatchedPositions() []int {
	var out []int
	for pos, kis := range c.PerKeyword {
		if len(kis) > 0 {
			out = append(out, pos)
		}
	}
	return out
}

// SpaceSize returns the product of per-keyword candidate counts over
// matched keywords — an upper bound on the number of binding combinations
// before template compatibility is applied. It saturates at maxInt/2 to
// avoid overflow on large schemas.
func (c *Candidates) SpaceSize() int {
	const cap = int(^uint(0)>>1) / 2
	size := 1
	for _, kis := range c.PerKeyword {
		if len(kis) == 0 {
			continue
		}
		if size > cap/len(kis) {
			return cap
		}
		size *= len(kis)
	}
	return size
}

func normalizeKeywords(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = strings.ToLower(strings.TrimSpace(k))
	}
	return out
}

// Catalog is the template catalogue of a database (Section 3.5.2): the
// set of pre-computed query templates with optional usage counts from a
// query log.
type Catalog struct {
	Templates []*Template
	// UsageCount holds the query-log frequency per template ID; nil when no
	// log is available (all templates equally probable, §3.6.2).
	UsageCount map[int]int
}

// BuildCatalog enumerates templates from the schema graph up to the given
// join-path length (the automatic generation method of Section 3.5.2).
func BuildCatalog(g *schemagraph.Graph, opts schemagraph.EnumerateOptions) *Catalog {
	trees := g.EnumerateJoinTrees(opts)
	cat := &Catalog{Templates: make([]*Template, len(trees))}
	for i, tr := range trees {
		cat.Templates[i] = NewTemplate(i, tr)
	}
	return cat
}

// RecordUsage adds query-log usage counts (the log-mining method of
// Section 3.5.2).
func (c *Catalog) RecordUsage(templateID, count int) {
	if c.UsageCount == nil {
		c.UsageCount = make(map[int]int)
	}
	c.UsageCount[templateID] += count
}

// TotalUsage returns the total number of logged queries.
func (c *Catalog) TotalUsage() int {
	n := 0
	for _, v := range c.UsageCount {
		n += v
	}
	return n
}

// GenerateConfig bounds complete-interpretation enumeration.
type GenerateConfig struct {
	// MaxInterpretations caps the number of complete interpretations
	// (0 = unlimited). Enumeration visits templates in catalogue order
	// (breadth-first by size), so the cap keeps the smallest join paths.
	MaxInterpretations int
	// RequireAllKeywords demands complete interpretations bind every
	// matched keyword (AND semantics). When false, enumeration is still
	// over all matched keywords; unmatched keywords are always skipped.
	RequireAllKeywords bool
	// Parallelism shards binding enumeration across a bounded worker pool,
	// one shard per catalogue template (<= 1 runs sequentially). Shards are
	// merged in catalogue order with the same dedup and cap logic as the
	// sequential path, so the output is identical at every setting.
	Parallelism int
}

// GenerateComplete enumerates the complete query interpretations of the
// keyword query over the template catalogue (the interpretation space of
// Definition 3.5.5 restricted to matched keywords), applying the
// minimality condition of Definition 3.5.4(2). It is the context-free
// convenience form of GenerateCompleteContext.
func GenerateComplete(c *Candidates, cat *Catalog, cfg GenerateConfig) []*Interpretation {
	out, _ := GenerateCompleteContext(context.Background(), c, cat, cfg)
	return out
}

// GenerateCompleteContext is GenerateComplete with cancellation and
// optional sharded parallelism: the context is checked on entry and
// periodically inside binding enumeration, so an interpretation-space
// materialisation over a large catalogue aborts as soon as the request is
// cancelled or its deadline passes. With cfg.Parallelism > 1 templates are
// enumerated concurrently (one shard per template) and merged back in
// catalogue order, so the result is bit-identical to the sequential path.
func GenerateCompleteContext(ctx context.Context, c *Candidates, cat *Catalog, cfg GenerateConfig) ([]*Interpretation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	matched := c.MatchedPositions()
	if len(matched) == 0 {
		return nil, nil
	}
	if cfg.Parallelism > 1 && len(cat.Templates) > 1 {
		return generateParallel(ctx, c, cat, cfg, matched)
	}
	merger := newInterpretationMerger(cfg)
	for _, tpl := range cat.Templates {
		shard, err := templateInterpretations(ctx, c, matched, tpl)
		if err != nil {
			return nil, err
		}
		if merger.add(shard) {
			break
		}
	}
	return merger.out, nil
}

// generateParallel shards per-template enumeration across a bounded worker
// pool and merges the shards in catalogue order as they complete (buffering
// out-of-order arrivals), applying the same dedup/cap rules as the
// sequential loop — so ordering is guaranteed independent of goroutine
// scheduling, and once the MaxInterpretations cap is satisfied all
// outstanding enumeration is cancelled instead of materialising the rest
// of the space.
func generateParallel(ctx context.Context, c *Candidates, cat *Catalog, cfg GenerateConfig, matched []int) ([]*Interpretation, error) {
	workers := cfg.Parallelism
	if workers > len(cat.Templates) {
		workers = len(cat.Templates)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type shardResult struct {
		idx   int
		shard []*Interpretation
		err   error
	}
	next := make(chan int)
	results := make(chan shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				shard, err := templateInterpretations(wctx, c, matched, cat.Templates[i])
				results <- shardResult{idx: i, shard: shard, err: err}
			}
		}()
	}
	// Dispatch in a goroutine so the main loop can merge (and cancel)
	// while enumeration is still in flight; it closes results once every
	// worker has drained, which ends the merge loop below.
	go func() {
	dispatch:
		for i := range cat.Templates {
			select {
			case next <- i:
			case <-wctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
		close(results)
	}()

	merger := newInterpretationMerger(cfg)
	pending := make(map[int][]*Interpretation)
	nextIdx := 0
	capReached := false
	var firstErr error
	for r := range results {
		if capReached || firstErr != nil {
			continue // draining
		}
		if r.err != nil {
			// Enumeration only errs on context cancellation; remember it,
			// stop merging, and drain.
			firstErr = r.err
			cancel()
			continue
		}
		pending[r.idx] = r.shard
		for !capReached {
			shard, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			nextIdx++
			if merger.add(shard) {
				capReached = true
				cancel() // cap satisfied: stop outstanding enumeration
			}
		}
	}
	if capReached {
		// Identical to the sequential cap exit: shards 0..nextIdx-1 merged
		// in catalogue order until the cap filled.
		return merger.out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return merger.out, nil
}

// interpretationMerger folds per-template shards into the final
// interpretation list, deduplicating on interpretation keys and applying
// the MaxInterpretations cap — the single definition of merge order shared
// by the sequential and parallel paths.
type interpretationMerger struct {
	cfg  GenerateConfig
	seen map[string]bool
	out  []*Interpretation
}

func newInterpretationMerger(cfg GenerateConfig) *interpretationMerger {
	return &interpretationMerger{cfg: cfg, seen: make(map[string]bool)}
}

// add folds one shard in; it reports whether the cap has been reached and
// merging should stop.
func (m *interpretationMerger) add(shard []*Interpretation) bool {
	for _, q := range shard {
		key := q.Key()
		if m.seen[key] {
			continue
		}
		m.seen[key] = true
		m.out = append(m.out, q)
		if m.cfg.MaxInterpretations > 0 && len(m.out) >= m.cfg.MaxInterpretations {
			return true
		}
	}
	return false
}

// templateInterpretations enumerates the minimal, deduplicated-later
// interpretations of one template in deterministic order.
func templateInterpretations(ctx context.Context, c *Candidates, matched []int, tpl *Template) ([]*Interpretation, error) {
	var out []*Interpretation
	err := enumerateBindings(ctx, c, matched, tpl, func(bindings []Binding) {
		q := NewInterpretation(c.Keywords, tpl, bindings)
		if minimal(q) {
			out = append(out, q)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// enumerateCheckEvery is the number of emitted binding combinations
// between context checks during enumeration.
const enumerateCheckEvery = 512

// enumerateBindings enumerates all assignments of every matched keyword to
// a candidate interpretation compatible with the template, including the
// choice of table occurrence for self-join templates. yield borrows the
// binding slice: it must copy what it keeps (NewInterpretation does). The
// context is checked every enumerateCheckEvery emissions so even a single
// huge template shard aborts promptly on cancellation.
func enumerateBindings(ctx context.Context, c *Candidates, matched []int, tpl *Template, yield func([]Binding)) error {
	emitted := 0
	cur := make([]Binding, 0, len(matched))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(matched) {
			emitted++
			if emitted%enumerateCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			yield(cur)
			return nil
		}
		pos := matched[i]
		for _, ki := range c.PerKeyword[pos] {
			if ki.Kind == KindAggregate {
				cur = append(cur, Binding{KI: ki, Occ: -1})
				err := rec(i + 1)
				cur = cur[:len(cur)-1]
				if err != nil {
					return err
				}
				continue
			}
			occs := tpl.Occurrences(ki.TargetTable())
			for _, occ := range occs {
				cur = append(cur, Binding{KI: ki, Occ: occ})
				err := rec(i + 1)
				cur = cur[:len(cur)-1]
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	return rec(0)
}

// minimal implements Definition 3.5.4(2): no sub-structure of the query can
// be removed while leaving a valid structured query with the same keyword
// bindings. For join trees this holds iff every leaf occurrence of the
// template carries at least one binding; we apply it transitively by
// peeling free leaves.
func minimal(q *Interpretation) bool {
	tree := q.Template.Tree
	n := tree.Size()
	grounded := 0
	for _, b := range q.Bindings {
		if b.Occ >= 0 {
			grounded++
		}
	}
	if grounded == 0 {
		return false // an aggregate alone does not justify any structure
	}
	if n == 1 {
		return true
	}
	bound := make([]bool, n)
	for _, b := range q.Bindings {
		if b.Occ >= 0 {
			bound[b.Occ] = true
		}
	}
	deg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range tree.TreeEdges {
		deg[e.From]++
		deg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	// Peel unbound leaves; if any can be peeled the query is non-minimal.
	for i := 0; i < n; i++ {
		if deg[i] <= 1 && !bound[i] {
			return false
		}
	}
	return true
}

// FilterSegments keeps the interpretations where every segment's keyword
// positions are bound as values of the same attribute of the same table
// occurrence — the phrase constraint of query segmentation
// (Section 2.2.1): once "tom hanks" is recognised as a phrase, readings
// that scatter the two tokens across attributes are discarded. Segments
// with fewer than two positions are ignored; positions unbound in an
// interpretation are ignored (partial interpretations pass).
func FilterSegments(space []*Interpretation, segments [][]int) []*Interpretation {
	if len(segments) == 0 {
		return space
	}
	var out []*Interpretation
	for _, q := range space {
		if segmentsRespected(q, segments) {
			out = append(out, q)
		}
	}
	return out
}

func segmentsRespected(q *Interpretation, segments [][]int) bool {
	byPos := make(map[int]Binding, len(q.Bindings))
	for _, b := range q.Bindings {
		byPos[b.KI.Pos] = b
	}
	for _, seg := range segments {
		if len(seg) < 2 {
			continue
		}
		var first *Binding
		for _, pos := range seg {
			b, ok := byPos[pos]
			if !ok {
				continue
			}
			if b.KI.Kind != KindValue {
				return false
			}
			if first == nil {
				bb := b
				first = &bb
				continue
			}
			if b.KI.Attr != first.KI.Attr || b.Occ != first.Occ {
				return false
			}
		}
	}
	return true
}

// CollectOptions derives the pool of single-element query construction
// options from the interpretation space: one option per distinct keyword
// interpretation used by at least one interpretation in the space.
func CollectOptions(space []*Interpretation) []Option {
	seen := make(map[string]KeywordInterpretation)
	for _, q := range space {
		for _, b := range q.Bindings {
			seen[b.KI.Key()] = b.KI
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Option, 0, len(keys))
	for _, k := range keys {
		out = append(out, NewOption(seen[k]))
	}
	return out
}
