package relstore

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// This file implements live row mutations over a built database. The
// design is copy-on-write at table granularity with incremental index
// maintenance inside the copy:
//
//   - Database.Apply never modifies the receiver. It returns a new
//     Database sharing every untouched table (and therefore that table's
//     rows, equality indexes, and posting lists) with the old one.
//   - A touched table is cloned shallowly — the row slice and the index
//     map *containers* are copied, the per-value row lists and per-token
//     posting lists stay shared — and then patched functionally: every
//     affected row list / posting list is replaced by a fresh updated
//     copy, so slices reachable from the old database are never written.
//   - Deletes tombstone the row instead of renumbering: RowIDs are
//     assigned once and never reused, which keeps every RowID-keyed
//     structure (posting lists, equality indexes, bitsets) valid without
//     a rebuild. All iteration and lazy index construction skips
//     tombstones via Table.Live.
//
// The result: a mutation batch costs O(size of the touched tables' index
// maps + affected lists), never O(database); re-tokenisation is limited
// to the changed cell values; and a reader holding the old Database sees
// a perfectly consistent pre-batch view forever (snapshot isolation —
// the engine layer publishes the returned database with an atomic
// pointer swap).

// Op is a mutation kind.
type Op string

// The three row mutation kinds of Database.Apply.
const (
	OpInsert Op = "insert"
	OpUpdate Op = "update"
	OpDelete Op = "delete"
)

// Mutation is one row change. Insert carries the full value list; Update
// and Delete address the row by its primary-key value (Key) and Update
// carries the full replacement value list.
type Mutation struct {
	Op     Op
	Table  string
	Key    string
	Values []string
}

// RowChange records one applied row mutation in terms of the physical
// row: Old is nil for an insert, New is nil for a delete, and both are
// set for an update. Downstream incremental maintainers (inverted index,
// data graph, ranking statistics) consume RowChanges to patch exactly
// the affected entries.
type RowChange struct {
	Table string
	RowID int
	// Old holds the pre-change values (shared, read-only); nil for inserts.
	Old []string
	// New holds the post-change values (shared, read-only); nil for deletes.
	New []string
}

// Apply validates and applies a mutation batch, returning the new
// database and the per-row change log in application order. The receiver
// is never modified; on error the returned database is nil and no change
// is visible anywhere. The batch is applied in order, so later mutations
// see earlier ones (an inserted row can be updated or deleted by key
// within one batch).
func (db *Database) Apply(muts []Mutation) (*Database, []RowChange, error) {
	if len(muts) == 0 {
		return nil, nil, fmt.Errorf("relstore: empty mutation batch")
	}
	ndb := &Database{Name: db.Name, tables: maps.Clone(db.tables), order: db.order}
	touched := make(map[string]*Table)
	tableFor := func(i int, name string) (*Table, error) {
		if t, ok := touched[name]; ok {
			return t, nil
		}
		t := db.tables[name]
		if t == nil {
			return nil, fmt.Errorf("relstore: mutation %d: unknown table %q", i, name)
		}
		nt := t.mutableCopy()
		touched[name] = nt
		ndb.tables[name] = nt
		return nt, nil
	}
	changes := make([]RowChange, 0, len(muts))
	for i, m := range muts {
		switch m.Op {
		case OpInsert:
			t, err := tableFor(i, m.Table)
			if err != nil {
				return nil, nil, err
			}
			if len(m.Values) != len(t.Schema.Columns) {
				return nil, nil, fmt.Errorf("relstore: mutation %d: table %s expects %d values, got %d",
					i, m.Table, len(t.Schema.Columns), len(m.Values))
			}
			// Keyed tables reject duplicate keys: a second live row under
			// one key would make that key unaddressable by update/delete
			// forever (findByKey demands uniqueness), so the batch that
			// would create it is the right place to fail.
			if pk := t.Schema.PrimaryKey; pk != "" {
				if pkVal := m.Values[t.Schema.ColumnIndex(pk)]; pkVal != "" && len(t.LookupEqual(pk, pkVal)) > 0 {
					return nil, nil, fmt.Errorf("relstore: mutation %d: table %s already has a row with %s=%q",
						i, m.Table, pk, pkVal)
				}
			}
			vals := slices.Clone(m.Values)
			id := t.applyInsert(vals)
			changes = append(changes, RowChange{Table: m.Table, RowID: id, New: vals})
		case OpUpdate:
			t, err := tableFor(i, m.Table)
			if err != nil {
				return nil, nil, err
			}
			if len(m.Values) != len(t.Schema.Columns) {
				return nil, nil, fmt.Errorf("relstore: mutation %d: table %s expects %d values, got %d",
					i, m.Table, len(t.Schema.Columns), len(m.Values))
			}
			id, err := t.findByKey(i, m.Key)
			if err != nil {
				return nil, nil, err
			}
			old := t.rows[id].Values
			// An update re-keying the row must not collide either.
			if pk := t.Schema.PrimaryKey; pk != "" {
				pki := t.Schema.ColumnIndex(pk)
				if pkVal := m.Values[pki]; pkVal != old[pki] && pkVal != "" && len(t.LookupEqual(pk, pkVal)) > 0 {
					return nil, nil, fmt.Errorf("relstore: mutation %d: table %s already has a row with %s=%q",
						i, m.Table, pk, pkVal)
				}
			}
			vals := slices.Clone(m.Values)
			t.applyUpdate(id, vals)
			changes = append(changes, RowChange{Table: m.Table, RowID: id, Old: old, New: vals})
		case OpDelete:
			t, err := tableFor(i, m.Table)
			if err != nil {
				return nil, nil, err
			}
			id, err := t.findByKey(i, m.Key)
			if err != nil {
				return nil, nil, err
			}
			old := t.rows[id].Values
			t.applyDelete(id)
			changes = append(changes, RowChange{Table: m.Table, RowID: id, Old: old})
		default:
			return nil, nil, fmt.Errorf("relstore: mutation %d: unknown op %q (want insert, update, or delete)", i, m.Op)
		}
	}
	return ndb, changes, nil
}

// mutableCopy clones the table for copy-on-write patching: the row slice
// and index containers are copied, the per-value row lists and posting
// lists stay shared until a patch replaces them. The copy holds fresh
// mutexes; the source's locks are taken so a concurrent lazy index build
// on the live table cannot race the clone.
func (t *Table) mutableCopy() *Table {
	nt := &Table{
		Schema:   t.Schema,
		rows:     slices.Clone(t.rows),
		dead:     slices.Clone(t.dead),
		numDead:  t.numDead,
		valueIdx: make(map[int]map[string][]int),
		postings: make(map[int]*columnPostings),
	}
	t.idxMu.Lock()
	for col, idx := range t.valueIdx {
		nt.valueIdx[col] = maps.Clone(idx)
	}
	t.idxMu.Unlock()
	t.postMu.RLock()
	for col, cp := range t.postings {
		nt.postings[col] = &columnPostings{terms: maps.Clone(cp.terms)}
	}
	t.postMu.RUnlock()
	return nt
}

// findByKey resolves the live row addressed by the primary-key value.
func (t *Table) findByKey(i int, key string) (int, error) {
	pk := t.Schema.PrimaryKey
	if pk == "" {
		return 0, fmt.Errorf("relstore: mutation %d: table %s has no primary key; updates and deletes address rows by key",
			i, t.Schema.Name)
	}
	if key == "" {
		return 0, fmt.Errorf("relstore: mutation %d: empty key for table %s", i, t.Schema.Name)
	}
	ids := t.LookupEqual(pk, key)
	if len(ids) == 0 {
		return 0, fmt.Errorf("relstore: mutation %d: table %s has no row with %s=%q", i, t.Schema.Name, pk, key)
	}
	if len(ids) > 1 {
		return 0, fmt.Errorf("relstore: mutation %d: table %s has %d rows with %s=%q; key must be unique",
			i, t.Schema.Name, len(ids), pk, key)
	}
	return ids[0], nil
}

// applyInsert appends a row to the COW table, maintaining every built
// index incrementally, and returns its RowID.
func (t *Table) applyInsert(vals []string) int {
	id := len(t.rows)
	t.rows = append(t.rows, Tuple{RowID: id, Values: vals})
	if t.dead != nil {
		t.dead = append(t.dead, false)
	}
	for col, idx := range t.valueIdx {
		idx[vals[col]] = SortedInsert(idx[vals[col]], id)
	}
	for col, cp := range t.postings {
		cp.addValue(id, vals[col])
	}
	return id
}

// applyDelete tombstones the row, removing it from every built index.
func (t *Table) applyDelete(id int) {
	old := t.rows[id].Values
	if t.dead == nil {
		t.dead = make([]bool, len(t.rows))
	}
	t.dead[id] = true
	t.numDead++
	for col, idx := range t.valueIdx {
		idx[old[col]] = SortedRemove(idx[old[col]], id)
		if len(idx[old[col]]) == 0 {
			delete(idx, old[col])
		}
	}
	for col, cp := range t.postings {
		cp.removeValue(id, old[col])
	}
}

// applyUpdate replaces the row's values, re-indexing only the columns
// whose value actually changed.
func (t *Table) applyUpdate(id int, vals []string) {
	old := t.rows[id].Values
	t.rows[id] = Tuple{RowID: id, Values: vals}
	for col, idx := range t.valueIdx {
		if old[col] == vals[col] {
			continue
		}
		idx[old[col]] = SortedRemove(idx[old[col]], id)
		if len(idx[old[col]]) == 0 {
			delete(idx, old[col])
		}
		idx[vals[col]] = SortedInsert(idx[vals[col]], id)
	}
	for col, cp := range t.postings {
		if old[col] == vals[col] {
			continue
		}
		cp.removeValue(id, old[col])
		cp.addValue(id, vals[col])
	}
}

// addValue tokenizes one cell value and folds it into the postings,
// replacing affected posting lists functionally (the originals may be
// shared with the pre-batch snapshot).
func (cp *columnPostings) addValue(row int, value string) {
	toks := Tokenize(value)
	if len(toks) == 0 {
		return
	}
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	for tok, c := range counts {
		cp.terms[tok] = cp.terms[tok].withRow(row, c)
	}
}

// removeValue removes one cell value's tokens from the postings,
// dropping token entries that become empty.
func (cp *columnPostings) removeValue(row int, value string) {
	toks := Tokenize(value)
	seen := make(map[string]bool, len(toks))
	for _, tok := range toks {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		if npl := cp.terms[tok].withoutRow(row); npl != nil {
			cp.terms[tok] = npl
		} else {
			delete(cp.terms, tok)
		}
	}
}

// withRow returns a new posting list with the row's occurrence count
// inserted at its sorted position. The receiver may be nil (first row of
// a token) and is never modified.
func (p *postingList) withRow(row, count int) *postingList {
	if p == nil {
		return &postingList{rows: []int{row}, counts: []int{count}, maxCount: count}
	}
	at := sort.SearchInts(p.rows, row)
	np := &postingList{
		rows:     make([]int, 0, len(p.rows)+1),
		counts:   make([]int, 0, len(p.counts)+1),
		maxCount: p.maxCount,
	}
	np.rows = append(append(append(np.rows, p.rows[:at]...), row), p.rows[at:]...)
	np.counts = append(append(append(np.counts, p.counts[:at]...), count), p.counts[at:]...)
	if count > np.maxCount {
		np.maxCount = count
	}
	return np
}

// withoutRow returns a new posting list without the row, or nil when the
// list becomes empty. The receiver is never modified.
func (p *postingList) withoutRow(row int) *postingList {
	if p == nil {
		return nil
	}
	at := sort.SearchInts(p.rows, row)
	if at >= len(p.rows) || p.rows[at] != row {
		return p // row absent: share the unchanged list
	}
	if len(p.rows) == 1 {
		return nil
	}
	np := &postingList{
		rows:   make([]int, 0, len(p.rows)-1),
		counts: make([]int, 0, len(p.counts)-1),
	}
	np.rows = append(append(np.rows, p.rows[:at]...), p.rows[at+1:]...)
	np.counts = append(append(np.counts, p.counts[:at]...), p.counts[at+1:]...)
	for _, c := range np.counts {
		if c > np.maxCount {
			np.maxCount = c
		}
	}
	return np
}

// SortedInsert returns a new ascending slice with id inserted; the input
// is never modified (it may be shared with a pre-batch snapshot). It is
// the functional copy-on-write primitive of every RowID-list patch, here
// and in the downstream incremental maintainers (invindex).
func SortedInsert(ids []int, id int) []int {
	at := sort.SearchInts(ids, id)
	out := make([]int, 0, len(ids)+1)
	return append(append(append(out, ids[:at]...), id), ids[at:]...)
}

// SortedRemove returns a new ascending slice without id (the input when
// id is absent); the input is never modified.
func SortedRemove(ids []int, id int) []int {
	at := sort.SearchInts(ids, id)
	if at >= len(ids) || ids[at] != id {
		return ids
	}
	out := make([]int, 0, len(ids)-1)
	return append(append(out, ids[:at]...), ids[at+1:]...)
}
