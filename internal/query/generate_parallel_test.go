package query

import (
	"context"
	"testing"
)

// TestGenerateCompleteParallelEquivalence locks the shard/merge contract:
// at every parallelism level, with and without the MaxInterpretations
// cap, parallel generation returns exactly the sequential output — same
// interpretations, same order.
func TestGenerateCompleteParallelEquivalence(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	for _, kws := range [][]string{
		{"hanks"},
		{"hanks", "2001"},
		{"hanks", "tom", "2001"},
	} {
		c := GenerateCandidates(f.ix, kws, GenerateOptionsConfig{})
		for _, cap := range []int{0, 1, 2, 5} {
			want, err := GenerateCompleteContext(ctx, c, f.cat, GenerateConfig{MaxInterpretations: cap})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 4, 8} {
				got, err := GenerateCompleteContext(ctx, c, f.cat, GenerateConfig{
					MaxInterpretations: cap, Parallelism: p,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("kws=%v cap=%d p=%d: %d interpretations, want %d",
						kws, cap, p, len(got), len(want))
				}
				for i := range want {
					if got[i].Key() != want[i].Key() {
						t.Fatalf("kws=%v cap=%d p=%d: order diverges at %d:\n got %s\nwant %s",
							kws, cap, p, i, got[i].Key(), want[i].Key())
					}
				}
			}
		}
	}
}

// TestGenerateCompleteParallelCancelled asserts parallel generation
// surfaces cancellation rather than partial output.
func TestGenerateCompleteParallelCancelled(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "2001"}, GenerateOptionsConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateCompleteContext(ctx, c, f.cat, GenerateConfig{Parallelism: 4}); err == nil {
		t.Fatal("expected context error from cancelled parallel generation")
	}
}
