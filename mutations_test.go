package keysearch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relstore"
)

// mutableEngine builds the small movie engine with mutations enabled.
func mutableEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	return builtEngine(t, append([]Option{WithMutations()}, opts...)...)
}

// rebuiltEngine constructs a fresh engine over the live rows of eng's
// current snapshot, in physical row order, with the given options — the
// "full rebuild of the final state" oracle of the differential tests.
func rebuiltEngine(t *testing.T, eng *Engine, opts ...Option) *Engine {
	t.Helper()
	s := eng.current()
	ndb := relstore.NewDatabase(s.db.Name)
	for _, tb := range s.db.Tables() {
		schema := *tb.Schema
		nt, err := ndb.CreateTable(&schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tb.Rows() {
			if !tb.Live(row.RowID) {
				continue
			}
			if _, err := nt.Insert(row.Values...); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ndb.ValidateRefs(); err != nil {
		t.Fatal(err)
	}
	ne := fromDatabase(ndb, opts...)
	if err := ne.Build(); err != nil {
		t.Fatal(err)
	}
	return ne
}

// asJSON marshals any response for byte-level comparison.
func asJSON(t *testing.T, v any, err error) string {
	t.Helper()
	if err != nil {
		return "error: " + err.Error()
	}
	b, merr := json.Marshal(v)
	if merr != nil {
		t.Fatal(merr)
	}
	return string(b)
}

// compareEngines asserts byte-identical responses from the mutated and
// the freshly rebuilt engine across every read entry point, and that at
// least one comparison covered a real (non-error, non-empty) response so
// the equality check cannot pass vacuously.
func compareEngines(t *testing.T, mutated, fresh *Engine, queries []string) {
	t.Helper()
	nonTrivial := 0
	for _, q := range queries {
		for name, run := range map[string]func(e *Engine) (any, error){
			"search": func(e *Engine) (any, error) {
				return e.Search(bg, SearchRequest{Query: q, K: 5, RowLimit: 3})
			},
			"rows": func(e *Engine) (any, error) {
				return e.SearchRows(bg, RowsRequest{Query: q, K: 5})
			},
			"diversify": func(e *Engine) (any, error) {
				return e.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
			},
			"trees": func(e *Engine) (any, error) {
				trees, err := e.SearchTrees(bg, q, 4)
				return trees, err
			},
		} {
			got, gotErr := run(mutated)
			want, wantErr := run(fresh)
			gj, wj := asJSON(t, got, gotErr), asJSON(t, want, wantErr)
			if gj != wj {
				t.Errorf("%s(%q) diverges after mutations:\n mutated: %.300s\n rebuilt: %.300s", name, q, gj, wj)
			}
			if gotErr == nil && strings.Contains(gj, "probability") {
				nonTrivial++
			}
		}
	}
	if nonTrivial == 0 {
		t.Fatalf("differential comparison was vacuous: no query of %v produced a ranked response", queries)
	}
}

func TestApplyRequiresOptIn(t *testing.T) {
	eng := builtEngine(t)
	if _, err := eng.Apply(bg, []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"a9", "New Actor"}}}); !errors.Is(err, ErrMutationsDisabled) {
		t.Fatalf("Apply on immutable engine: err = %v, want ErrMutationsDisabled", err)
	}
	if eng.MutationsEnabled() {
		t.Fatal("MutationsEnabled = true without WithMutations")
	}
}

func TestApplyValidation(t *testing.T) {
	eng := mutableEngine(t)
	cases := []struct {
		name string
		muts []Mutation
		want string
	}{
		{"empty batch", nil, "empty mutation batch"},
		{"unknown op", []Mutation{{Op: "upsert", Table: "actor"}}, "unknown op"},
		{"unknown table", []Mutation{{Op: OpInsert, Table: "ghost", Values: []string{"x"}}}, "unknown table"},
		{"arity", []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"only-id"}}}, "expects 2 values"},
		{"missing key", []Mutation{{Op: OpDelete, Table: "actor"}}, "empty key"},
		{"unknown key", []Mutation{{Op: OpDelete, Table: "actor", Key: "a999"}}, "no row with"},
		{"no pk", []Mutation{{Op: OpDelete, Table: "acts", Key: "a1"}}, "no primary key"},
		{"duplicate key", []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"a1", "Clone"}}}, "already has a row"},
	}
	for _, tc := range cases {
		_, err := eng.Apply(bg, tc.muts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// A failed batch must leave the engine untouched.
	if got := eng.Epoch(); got != 0 {
		t.Fatalf("epoch after rejected batches = %d, want 0", got)
	}
	if eng.NumRows() != 7 {
		t.Fatalf("NumRows after rejected batches = %d, want 7", eng.NumRows())
	}
}

func TestApplyAtomicRejection(t *testing.T) {
	eng := mutableEngine(t)
	// First mutation valid, second invalid: nothing may stick.
	_, err := eng.Apply(bg, []Mutation{
		{Op: OpInsert, Table: "actor", Values: []string{"a9", "Uma Thurman"}},
		{Op: OpDelete, Table: "actor", Key: "a999"},
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if eng.NumRows() != 7 || eng.Epoch() != 0 {
		t.Fatalf("rejected batch leaked: rows=%d epoch=%d", eng.NumRows(), eng.Epoch())
	}
	if ks := eng.Keywords("uma", 5); len(ks) != 0 {
		t.Fatalf("rejected insert visible in keywords: %v", ks)
	}
}

func TestApplyBasicLifecycle(t *testing.T) {
	eng := mutableEngine(t)
	res, err := eng.Apply(bg, []Mutation{
		{Op: OpInsert, Table: "actor", Values: []string{"a4", "Meg Ryan"}},
		{Op: OpInsert, Table: "acts", Values: []string{"a4", "m1", "Amelia"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Applied != 2 {
		t.Fatalf("ApplyResult = %+v, want epoch 1, applied 2", res)
	}
	if eng.NumRows() != 9 {
		t.Fatalf("NumRows = %d, want 9", eng.NumRows())
	}
	results := search(t, eng, "ryan", 3)
	if len(results) == 0 {
		t.Fatal("inserted row not searchable")
	}

	// Update: the new value is searchable, the old one is gone.
	if _, err := eng.Apply(bg, []Mutation{{Op: OpUpdate, Table: "actor", Key: "a4", Values: []string{"a4", "Nora Ephron"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(bg, SearchRequest{Query: "ryan"}); err == nil {
		t.Fatal("stale keyword still matches after update")
	}
	if got := search(t, eng, "ephron", 3); len(got) == 0 {
		t.Fatal("updated value not searchable")
	}

	// Delete: the keyword disappears; an insert-then-delete batch nets out.
	if _, err := eng.Apply(bg, []Mutation{
		{Op: OpDelete, Table: "actor", Key: "a4"},
		{Op: OpInsert, Table: "movie", Values: []string{"m9", "Ghost Town", "2008"}},
		{Op: OpDelete, Table: "movie", Key: "m9"},
	}); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", eng.Epoch())
	}
	if _, err := eng.Search(bg, SearchRequest{Query: "ephron"}); err == nil {
		t.Fatal("deleted row still searchable")
	}
	if _, err := eng.Search(bg, SearchRequest{Query: "ghost"}); err == nil {
		t.Fatal("insert-then-delete row still searchable")
	}
	compareEngines(t, eng, rebuiltEngine(t, eng, WithMutations()), []string{"tom", "london", "hanks terminal"})
}

// TestSnapshotIsolation: results and sessions obtained before a mutation
// keep reading their pinned snapshot.
func TestSnapshotIsolation(t *testing.T) {
	eng := mutableEngine(t)
	resp, err := eng.Search(bg, SearchRequest{Query: "hanks", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results for hanks")
	}
	pre := resp.Results[0]

	sess, err := eng.Construct(bg, ConstructRequest{Query: "london", StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := eng.Apply(bg, []Mutation{{Op: OpUpdate, Table: "actor", Key: "a1", Values: []string{"a1", "Renamed Person"}}}); err != nil {
		t.Fatal(err)
	}

	// The pre-mutation result still executes against the old snapshot.
	rows, err := pre.Rows(5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range rows {
		for _, v := range row {
			if strings.Contains(v, "Hanks") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("pre-mutation result no longer sees its snapshot: %v", rows)
	}

	// The session still converges on its pinned snapshot.
	for !sess.Done() {
		q, ok := sess.Next()
		if !ok {
			break
		}
		if err := sess.Reject(bg, q); err != nil {
			t.Fatal(err)
		}
	}
	_ = sess.Candidates()

	// New requests see the new snapshot.
	if _, err := eng.Search(bg, SearchRequest{Query: "hanks"}); err == nil {
		t.Fatal("new request still sees pre-mutation value")
	}
	if got := search(t, eng, "renamed", 3); len(got) == 0 {
		t.Fatal("new request misses post-mutation value")
	}
}

// randomMutations generates a plausible random batch against the current
// snapshot: inserts with fresh keys, updates toggling text values, and
// deletes of existing keys.
func randomMutations(rng *rand.Rand, eng *Engine, n int, serial *int) []Mutation {
	s := eng.current()
	vocab := []string{"north", "south", "matrix", "runner", "golden", "hanks", "london", "blue", "twenty"}
	word := func() string { return vocab[rng.Intn(len(vocab))] }
	tables := s.db.TableNames()
	var muts []Mutation
	for len(muts) < n {
		tb := s.db.Table(tables[rng.Intn(len(tables))])
		schema := tb.Schema
		switch op := rng.Intn(3); {
		case op == 0 || schema.PrimaryKey == "": // insert
			*serial++
			vals := make([]string, len(schema.Columns))
			for ci, col := range schema.Columns {
				switch {
				case col.Name == schema.PrimaryKey:
					vals[ci] = fmt.Sprintf("mut%d", *serial)
				case fkRef(schema, col.Name) != nil:
					fk := fkRef(schema, col.Name)
					vals[ci] = randomLiveValue(rng, s.db.Table(fk.RefTable), fk.RefColumn)
				case col.Indexed:
					vals[ci] = word() + " " + word()
				default:
					vals[ci] = fmt.Sprintf("v%d", *serial)
				}
			}
			muts = append(muts, Mutation{Op: OpInsert, Table: schema.Name, Values: vals})
		default: // update or delete of a random live row
			pkCol := schema.ColumnIndex(schema.PrimaryKey)
			id := randomLiveRow(rng, tb)
			if id < 0 {
				continue
			}
			key := tb.Rows()[id].Values[pkCol]
			if op == 1 {
				vals := append([]string(nil), tb.Rows()[id].Values...)
				for ci, col := range schema.Columns {
					if col.Indexed && rng.Intn(2) == 0 {
						vals[ci] = word() + " " + word()
					}
				}
				muts = append(muts, Mutation{Op: OpUpdate, Table: schema.Name, Key: key, Values: vals})
			} else {
				muts = append(muts, Mutation{Op: OpDelete, Table: schema.Name, Key: key})
			}
		}
	}
	return muts
}

func fkRef(schema *relstore.TableSchema, col string) *relstore.ForeignKey {
	for i := range schema.ForeignKeys {
		if schema.ForeignKeys[i].Column == col {
			return &schema.ForeignKeys[i]
		}
	}
	return nil
}

func randomLiveValue(rng *rand.Rand, t *relstore.Table, column string) string {
	id := randomLiveRow(rng, t)
	if id < 0 {
		return "none"
	}
	v, _ := t.Value(id, column)
	return v
}

func randomLiveRow(rng *rand.Rand, t *relstore.Table) int {
	if t.NumLive() == 0 {
		return -1
	}
	for {
		id := rng.Intn(t.Len())
		if t.Live(id) {
			return id
		}
	}
}

// TestDifferentialRandomMutations is the correctness bar of the
// live-mutation engine: after any random insert/update/delete sequence,
// every read entry point must answer byte-identically to an engine
// freshly built over the final rows — with the score and execution
// caches enabled and disabled.
func TestDifferentialRandomMutations(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"caches-on", []Option{WithMutations(), WithCoOccurrence()}},
		{"caches-off", []Option{WithMutations(), WithCoOccurrence(), WithScoreCache(false), WithExecutionCache(false)}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			db, err := datagen.IMDB(datagen.IMDBConfig{Movies: 40, Actors: 30, Directors: 8, Companies: 5, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			eng := fromDatabase(db, cfg.opts...)
			if err := eng.Build(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			serial := 0
			for round := 0; round < 6; round++ {
				muts := randomMutations(rng, eng, 1+rng.Intn(6), &serial)
				if _, err := eng.Apply(bg, muts); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				// Touch the data graph on some rounds so later rounds take
				// the incremental maintenance path.
				if round%2 == 0 {
					if _, err := eng.SearchTrees(bg, "tom", 2); err != nil && !strings.Contains(err.Error(), "empty") {
						t.Logf("SearchTrees warmup: %v", err)
					}
				}
			}
			fresh := rebuiltEngine(t, eng, cfg.opts...)
			queries := fresh.SampleQueries(4)
			queries = append(queries, "north south", "matrix runner", "golden twenty")
			compareEngines(t, eng, fresh, queries)
		})
	}
}

// TestConcurrentMutationsAndSearches races Apply against every read
// entry point under -race: readers must always observe either the
// pre-batch or the post-batch response, never a torn mixture.
func TestConcurrentMutationsAndSearches(t *testing.T) {
	eng := mutableEngine(t)

	// Precompute the only two legal responses for the sentinel query by
	// toggling the sentinel row back and forth once.
	queryA := func() string {
		resp, err := eng.Search(bg, SearchRequest{Query: "terminal", K: 3, RowLimit: 2})
		if err != nil {
			return "error: " + err.Error()
		}
		b, _ := json.Marshal(resp)
		return string(b)
	}
	toggle := func(v string) {
		if _, err := eng.Apply(bg, []Mutation{{Op: OpUpdate, Table: "movie", Key: "m1", Values: []string{"m1", "The Terminal " + v, "2004"}}}); err != nil {
			t.Fatal(err)
		}
	}
	respA := queryA() // initial state: "The Terminal"
	toggle("Redux")
	respB := queryA()
	toggle("")
	respC := queryA() // "The Terminal " + "" — differs from respA (trailing token split is identical, value differs)
	legal := map[string]bool{respA: true, respB: true, respC: true}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := queryA(); !legal[got] {
					select {
					case errs <- got:
					default:
					}
					return
				}
				if _, err := eng.SearchRows(bg, RowsRequest{Query: "hanks", K: 2}); err != nil {
					errs <- "rows: " + err.Error()
					return
				}
				if _, err := eng.SearchTrees(bg, "hanks", 2); err != nil {
					errs <- "trees: " + err.Error()
					return
				}
				_ = eng.Keywords("t", 5)
				_ = eng.Epoch()
			}
		}()
	}
	for i := 0; i < 30; i++ {
		toggle("Redux")
		toggle("")
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("reader observed illegal response: %.300s", e)
	}
	compareEngines(t, eng, rebuiltEngine(t, eng, WithMutations()), []string{"terminal", "hanks"})
}

// TestApplyCancelledContext: a cancelled context aborts before any work.
func TestApplyCancelledContext(t *testing.T) {
	eng := mutableEngine(t)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := eng.Apply(ctx, []Mutation{{Op: OpInsert, Table: "actor", Values: []string{"a9", "X"}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.Epoch() != 0 {
		t.Fatal("cancelled Apply committed")
	}
}
