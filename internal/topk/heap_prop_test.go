package topk

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/schemagraph"
)

// propInterp fabricates an interpretation with a distinct, deterministic
// key (a single-table template named by index) so tie-breaking on
// Q.Key() is observable.
func propInterp(i int) *query.Interpretation {
	tree := &schemagraph.JoinTree{Tables: []string{fmt.Sprintf("t%04d", i)}}
	return query.NewInterpretation(nil, query.NewTemplate(i, tree), nil)
}

// selectTopK replicates TopKContext's heap phase on a raw result stream:
// fold every result through the bounded heap, then sort the retained set
// the way TopKContext returns it.
func selectTopK(results []Result, k int) []Result {
	h := &resultHeap{}
	heap.Init(h)
	m := newHeapMerger(h, k)
	m.add(results)
	out := make([]Result, h.Len())
	copy(out, *h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Q.Key() < out[j].Q.Key()
	})
	return out
}

// TestResultHeapProperty is the property test of the bounded result heap:
// for random result streams (with deliberately heavy score ties), popping
// K results always yields exactly the K highest scores, ordered
// descending with ascending-key tie order, and the selection is
// deterministic for a given stream.
func TestResultHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	interps := make([]*query.Interpretation, 128)
	for i := range interps {
		interps[i] = propInterp(i)
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(12)
		results := make([]Result, n)
		for i := range results {
			// Few distinct score levels force boundary ties.
			results[i] = Result{
				Q:     interps[rng.Intn(len(interps))],
				Score: float64(rng.Intn(8)) / 7,
			}
		}
		got := selectTopK(results, k)

		want := n
		if k < want {
			want = k
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), want)
		}
		// (1) Score multiset correctness: the retained scores are exactly
		// the k highest of the stream.
		scores := make([]float64, n)
		for i, r := range results {
			scores[i] = r.Score
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		for i, r := range got {
			if r.Score != scores[i] {
				t.Fatalf("trial %d: rank %d score = %v, want %v", trial, i, r.Score, scores[i])
			}
		}
		// (2) Ordering: descending score, ascending key within equal scores.
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("trial %d: scores not descending at %d", trial, i)
			}
			if got[i].Score == got[i-1].Score && got[i].Q.Key() < got[i-1].Q.Key() {
				t.Fatalf("trial %d: tie order not by key at %d: %q before %q",
					trial, i, got[i-1].Q.Key(), got[i].Q.Key())
			}
		}
		// (3) Determinism: replaying the identical stream yields the
		// identical selection.
		again := selectTopK(results, k)
		for i := range got {
			if got[i].Score != again[i].Score || got[i].Q.Key() != again[i].Q.Key() {
				t.Fatalf("trial %d: selection not deterministic at %d", trial, i)
			}
		}
	}
}

// TestResultHeapPopOrder pins the min-heap contract itself: popping the
// heap directly yields ascending scores, so the root is always the
// current k-th best (the threshold the early-stopping rule compares
// against).
func TestResultHeapPopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &resultHeap{}
	heap.Init(h)
	for i := 0; i < 64; i++ {
		heap.Push(h, Result{Q: propInterp(i), Score: rng.Float64()})
	}
	prev := -1.0
	for h.Len() > 0 {
		r := heap.Pop(h).(Result)
		if r.Score < prev {
			t.Fatalf("heap popped %v after %v", r.Score, prev)
		}
		prev = r.Score
	}
}
