package yagof

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ontology"
)

type fixture struct {
	cs *datagen.ConceptSpace
	fd *datagen.FreebaseData
	o  *ontology.Ontology
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cs := datagen.NewConceptSpace(10, 30, 100, 1)
	fd, err := datagen.Freebase(cs, datagen.FreebaseConfig{
		Domains: 4, TablesPerDomain: 8, RowsPerTable: 12, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := datagen.YAGO(cs, datagen.YAGOConfig{CoverageProb: 0.85, Seed: 3})
	return &fixture{cs: cs, fd: fd, o: o}
}

func TestCategoryDistribution(t *testing.T) {
	f := newFixture(t)
	bands := CategoryDistribution(f.o)
	kinds := map[string]CategoryBand{}
	for _, b := range bands {
		kinds[b.Kind] = b
	}
	wn, ok := kinds["wordnet"]
	if !ok || wn.Classes == 0 {
		t.Fatalf("wordnet band missing: %v", bands)
	}
	wc, ok := kinds["wikicategory"]
	if !ok || wc.Classes == 0 {
		t.Fatalf("wikicategory band missing: %v", bands)
	}
	// Every wiki category holds instances; most wordnet classes are
	// instance-free backbone.
	if wc.WithInstances != wc.Classes {
		t.Fatalf("wiki categories without instances: %+v", wc)
	}
	if wn.WithInstances >= wn.Classes {
		t.Fatalf("backbone classes should be mostly instance-free: %+v", wn)
	}
	total := 0
	for _, b := range bands {
		total += b.Classes
	}
	if total != f.o.NumClasses() {
		t.Fatalf("bands cover %d of %d classes", total, f.o.NumClasses())
	}
}

func TestInstanceDistribution(t *testing.T) {
	f := newFixture(t)
	bands := InstanceDistribution(f.o)
	classTotal, instTotal := 0, 0
	for _, b := range bands {
		classTotal += b.Classes
		instTotal += b.Instances
	}
	if classTotal != f.o.NumClasses() {
		t.Fatalf("bands cover %d of %d classes", classTotal, f.o.NumClasses())
	}
	if instTotal == 0 {
		t.Fatal("no instances counted")
	}
	// The zero band holds the backbone.
	if bands[0].Classes == 0 {
		t.Fatal("no instance-free classes found")
	}
	if bands[0].Instances != 0 {
		t.Fatal("zero band carries instances")
	}
}

func TestSharedInstancesByDomain(t *testing.T) {
	f := newFixture(t)
	rows := SharedInstancesByDomain(f.o, f.fd.InstancesOf, f.fd.DomainOf)
	if len(rows) != len(f.fd.Domains) {
		t.Fatalf("domains = %d, want %d", len(rows), len(f.fd.Domains))
	}
	for _, r := range rows {
		if r.Tables == 0 || r.Instances == 0 {
			t.Fatalf("degenerate domain row: %+v", r)
		}
		if r.Shared > r.Instances {
			t.Fatalf("shared exceeds instances: %+v", r)
		}
		// With 85% ontology coverage the shared fraction must be high.
		if r.SharedFraction() < 0.5 {
			t.Fatalf("shared fraction too low: %+v", r)
		}
	}
	if (DomainOverlap{}).SharedFraction() != 0 {
		t.Fatal("empty domain fraction should be 0")
	}
}

func TestMatchTablesFindsTrueConcepts(t *testing.T) {
	f := newFixture(t)
	matches := MatchTables(f.o, f.fd.InstancesOf, MatchConfig{Threshold: 0.5, ConceptClassesOnly: true})
	if len(matches) == 0 {
		t.Fatal("no matches at threshold 0.5")
	}
	correct := 0
	for _, m := range matches {
		want := "wordnet_" + f.fd.ConceptOf[m.Table]
		if m.ClassName == want {
			correct++
		}
		if m.Score < 0.5 || m.Score > 1 {
			t.Fatalf("score out of range: %+v", m)
		}
	}
	frac := float64(correct) / float64(len(matches))
	if frac < 0.9 {
		t.Fatalf("only %.2f of matches hit the true concept", frac)
	}
}

func TestMatchThresholdMonotone(t *testing.T) {
	f := newFixture(t)
	prev := -1
	for _, th := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		n := len(MatchTables(f.o, f.fd.InstancesOf, MatchConfig{Threshold: th, ConceptClassesOnly: true}))
		if prev >= 0 && n > prev {
			t.Fatalf("match count increased with threshold: %d -> %d at %v", prev, n, th)
		}
		prev = n
	}
}

func TestMatchEmptyTableSkipped(t *testing.T) {
	f := newFixture(t)
	inst := map[string][]string{"empty_table": nil}
	if got := MatchTables(f.o, inst, MatchConfig{}); len(got) != 0 {
		t.Fatalf("empty table matched: %v", got)
	}
}

func TestMatchDeterministic(t *testing.T) {
	f := newFixture(t)
	m1 := MatchTables(f.o, f.fd.InstancesOf, MatchConfig{Threshold: 0.3})
	m2 := MatchTables(f.o, f.fd.InstancesOf, MatchConfig{Threshold: 0.3})
	if len(m1) != len(m2) {
		t.Fatal("match count differs between runs")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("matching not deterministic at %d: %v vs %v", i, m1[i], m2[i])
		}
	}
}

func TestApplyAndCharacterize(t *testing.T) {
	f := newFixture(t)
	matches := MatchTables(f.o, f.fd.InstancesOf, MatchConfig{Threshold: 0.5, ConceptClassesOnly: true})
	Apply(f.o, matches)
	total := len(f.fd.InstancesOf)
	st := Characterize(f.o, matches, total)
	if st.MatchedTables != len(matches) {
		t.Fatalf("MatchedTables = %d", st.MatchedTables)
	}
	if st.MatchedTables+st.UnmatchedTables != total {
		t.Fatal("matched+unmatched != total")
	}
	if st.ClassesWithTables == 0 || st.ClassesWithTables > st.MatchedTables {
		t.Fatalf("ClassesWithTables = %d", st.ClassesWithTables)
	}
	if st.MeanScore <= 0.5 || st.MeanScore > 1 {
		t.Fatalf("MeanScore = %v", st.MeanScore)
	}
	// Tables must be reachable from the ontology now.
	found := false
	for _, m := range matches {
		for _, tb := range f.o.TablesAt(m.Class) {
			if tb == m.Table {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Apply did not map tables")
	}
	hist := 0
	for _, h := range st.DepthHistogram {
		hist += h
	}
	if hist != st.MatchedTables {
		t.Fatal("depth histogram does not cover all matches")
	}
}

// TestEvaluateMatchingShape reproduces the Figure 6.4 shape: precision
// rises (or stays flat) and the number of matches falls as the threshold
// grows; the F1-optimal threshold is strictly inside (0,1).
func TestEvaluateMatchingShape(t *testing.T) {
	f := newFixture(t)
	thresholds := []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95}
	quality := EvaluateMatching(f.o, f.fd.InstancesOf, f.fd.ConceptOf, thresholds,
		MatchConfig{ConceptClassesOnly: true})
	if len(quality) != len(thresholds) {
		t.Fatalf("quality rows = %d", len(quality))
	}
	for i, q := range quality {
		if q.Precision < 0 || q.Precision > 1 || q.Recall < 0 || q.Recall > 1 {
			t.Fatalf("quality out of range: %+v", q)
		}
		if i > 0 && q.Matched > quality[i-1].Matched {
			t.Fatal("matches must fall with threshold")
		}
		if i > 0 && q.Recall > quality[i-1].Recall+1e-12 {
			t.Fatal("recall must not rise with threshold")
		}
	}
	// Low thresholds must recall most of the gold standard.
	if quality[0].Recall < 0.8 {
		t.Fatalf("low-threshold recall too low: %+v", quality[0])
	}
	// Precision at moderate thresholds should be high (the generator's
	// concepts are well separated).
	if quality[2].Precision < 0.8 {
		t.Fatalf("precision too low at 0.4: %+v", quality[2])
	}
}

func TestEvaluateMatchingSubtreeCredit(t *testing.T) {
	// A match landing on a wikicategory leaf below the true concept class
	// counts as correct (subtree credit).
	cs := datagen.NewConceptSpace(4, 20, 40, 5)
	fd, err := datagen.Freebase(cs, datagen.FreebaseConfig{Domains: 2, TablesPerDomain: 4, RowsPerTable: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	o := datagen.YAGO(cs, datagen.YAGOConfig{CoverageProb: 0.95, Seed: 7})
	// Allow wikicategory candidates: some matches may land below the
	// concept class; they must still be credited.
	quality := EvaluateMatching(o, fd.InstancesOf, fd.ConceptOf, []float64{0.05}, MatchConfig{})
	if quality[0].Correct == 0 {
		t.Fatal("no correct matches with subtree credit")
	}
}

func TestFormatMatches(t *testing.T) {
	matches := []Match{
		{Table: "t1", ClassName: "wordnet_x", Score: 0.9},
		{Table: "t2", ClassName: "wordnet_y", Score: 0.8},
		{Table: "t3", ClassName: "wordnet_z", Score: 0.7},
	}
	s := FormatMatches(matches, 2)
	if !strings.Contains(s, "t1") || !strings.Contains(s, "1 more") {
		t.Fatalf("FormatMatches = %q", s)
	}
	if got := FormatMatches(matches, 0); strings.Count(got, "\n") != 3 {
		t.Fatalf("unlimited format = %q", got)
	}
}

func TestWithin(t *testing.T) {
	o := ontology.New("root")
	a, _ := o.AddClass("a", 0)
	b, _ := o.AddClass("b", a)
	if !within(o, b, a) || !within(o, a, a) || !within(o, b, 0) {
		t.Fatal("within misses ancestors")
	}
	if within(o, a, b) {
		t.Fatal("within inverted")
	}
}

func TestQualityF1(t *testing.T) {
	// Hand-checkable precision/recall: 2 tables, one matched correctly.
	o := ontology.New("root")
	cid, _ := o.AddClass("wordnet_conceptA", 0)
	o.AddInstance(cid, "conceptA/i1")
	o.AddInstance(cid, "conceptA/i2")
	inst := map[string][]string{
		"t_good": {"conceptA/i1", "conceptA/i2"},
		"t_none": {"zzz/1", "zzz/2"},
	}
	truth := map[string]string{"t_good": "conceptA", "t_none": "conceptB"}
	q := EvaluateMatching(o, inst, truth, []float64{0.5}, MatchConfig{})
	if q[0].Matched != 1 || q[0].Correct != 1 {
		t.Fatalf("quality = %+v", q[0])
	}
	if math.Abs(q[0].Precision-1) > 1e-12 || math.Abs(q[0].Recall-0.5) > 1e-12 {
		t.Fatalf("P/R = %v/%v", q[0].Precision, q[0].Recall)
	}
	wantF1 := 2 * 1 * 0.5 / 1.5
	if math.Abs(q[0].F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", q[0].F1, wantF1)
	}
}
