package relstore

import (
	"fmt"
)

// Predicate restricts a join-plan node to rows whose Column value contains
// the whole Keywords bag (the σ_{k ∈ A} selection of Definition 3.5.2).
type Predicate struct {
	Column   string
	Keywords []string
}

// JoinNode is one relation occurrence in a candidate network. The same
// table may appear in several nodes (self-joins such as
// Actor ⋈ Acts1 ⋈ Movie ⋈ Acts2 ⋈ Actor).
type JoinNode struct {
	Table      string
	Predicates []Predicate
}

// JoinEdge joins node From to node To on From.FromColumn = To.ToColumn.
// Edges are undirected for execution purposes; the pair of columns encodes
// the FK → PK relationship from the schema graph.
type JoinEdge struct {
	From, To             int
	FromColumn, ToColumn string
}

// JoinPlan is an executable candidate network: a tree of join nodes.
// It corresponds to a single SQL statement joining the tables as specified
// and selecting rows that contain the keywords (§2.2.6).
type JoinPlan struct {
	Nodes []JoinNode
	Edges []JoinEdge
}

// Validate checks structural well-formedness: edges reference valid nodes
// and the edge set forms a tree over the nodes (connected, acyclic).
func (p *JoinPlan) Validate() error {
	n := len(p.Nodes)
	if n == 0 {
		return fmt.Errorf("relstore: join plan has no nodes")
	}
	if len(p.Edges) != n-1 {
		return fmt.Errorf("relstore: join plan over %d nodes needs %d edges, has %d",
			n, n-1, len(p.Edges))
	}
	adj := make([][]int, n)
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("relstore: join edge references node out of range")
		}
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if count != n {
		return fmt.Errorf("relstore: join plan is not connected")
	}
	return nil
}

// JTT is a joining tree of tuples — one concrete search result: the RowID
// chosen for each node of the join plan, positionally aligned with
// JoinPlan.Nodes.
type JTT struct {
	Rows []int
}

// ResultKey identifies one tuple of a result for the overlap accounting of
// the DivQ metrics (a "primary key" in the thesis's terminology).
type ResultKey struct {
	Table string
	RowID int
}

// Keys returns the result keys of all tuples in the JTT under the plan.
func (j JTT) Keys(p *JoinPlan) []ResultKey {
	out := make([]ResultKey, len(j.Rows))
	for i, r := range j.Rows {
		out[i] = ResultKey{Table: p.Nodes[i].Table, RowID: r}
	}
	return out
}

// ExecuteOptions tunes plan execution.
type ExecuteOptions struct {
	// Limit bounds the number of JTTs materialised; 0 means unlimited.
	Limit int
}

// Execute runs the join plan against the database and materialises the
// joining tuple trees. The plan tree is evaluated by index nested loops
// rooted at the most selective node (smallest candidate set after applying
// its predicates), following FK equality edges with hash-index lookups.
func (db *Database) Execute(p *JoinPlan, opts ExecuteOptions) ([]JTT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Nodes)
	cands := make([][]int, n)
	for i, node := range p.Nodes {
		t := db.Table(node.Table)
		if t == nil {
			return nil, fmt.Errorf("relstore: join plan references unknown table %s", node.Table)
		}
		cands[i] = t.candidateRows(node.Predicates)
		if len(cands[i]) == 0 {
			return nil, nil
		}
	}

	root := 0
	for i := 1; i < n; i++ {
		if len(cands[i]) < len(cands[root]) {
			root = i
		}
	}

	type halfEdge struct {
		to                 int
		fromCol, toCol     string
		fromIdx, toIdxSkip int // cached column indexes; toIdxSkip unused, kept for clarity
	}
	adj := make([][]halfEdge, n)
	for _, e := range p.Edges {
		ft := db.Table(p.Nodes[e.From].Table)
		tt := db.Table(p.Nodes[e.To].Table)
		fi := ft.Schema.ColumnIndex(e.FromColumn)
		ti := tt.Schema.ColumnIndex(e.ToColumn)
		if fi < 0 || ti < 0 {
			return nil, fmt.Errorf("relstore: join edge %s.%s=%s.%s references unknown column",
				p.Nodes[e.From].Table, e.FromColumn, p.Nodes[e.To].Table, e.ToColumn)
		}
		adj[e.From] = append(adj[e.From], halfEdge{to: e.To, fromCol: e.FromColumn, toCol: e.ToColumn, fromIdx: fi})
		adj[e.To] = append(adj[e.To], halfEdge{to: e.From, fromCol: e.ToColumn, toCol: e.FromColumn, fromIdx: ti})
	}

	// Precompute per-node candidate membership for filtering joined rows.
	member := make([]map[int]bool, n)
	for i := range cands {
		m := make(map[int]bool, len(cands[i]))
		for _, id := range cands[i] {
			m[id] = true
		}
		member[i] = m
	}

	// DFS order from root over the tree.
	type step struct {
		node, parent   int
		parentCol, col string
	}
	order := make([]step, 0, n)
	visited := make([]bool, n)
	var build func(v, parent int, pc, c string)
	build = func(v, parent int, pc, c string) {
		visited[v] = true
		order = append(order, step{node: v, parent: parent, parentCol: pc, col: c})
		for _, he := range adj[v] {
			if !visited[he.to] {
				build(he.to, v, he.fromCol, he.toCol)
			}
		}
	}
	build(root, -1, "", "")

	var results []JTT
	assign := make([]int, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			row := make([]int, n)
			copy(row, assign)
			results = append(results, JTT{Rows: row})
			return opts.Limit > 0 && len(results) >= opts.Limit
		}
		st := order[k]
		var choices []int
		if st.parent < 0 {
			choices = cands[st.node]
		} else {
			pt := db.Table(p.Nodes[st.parent].Table)
			pv, _ := pt.Value(assign[st.parent], st.parentCol)
			ct := db.Table(p.Nodes[st.node].Table)
			for _, id := range ct.LookupEqual(st.col, pv) {
				if member[st.node][id] {
					choices = append(choices, id)
				}
			}
		}
		for _, id := range choices {
			assign[st.node] = id
			if rec(k + 1) {
				return true
			}
		}
		return false
	}
	rec(0)
	return results, nil
}

// Count executes the plan and returns only the number of results, bounded
// by limit (0 = unlimited). It is cheaper than Execute for emptiness and
// cardinality probes used by the diversification metrics.
func (db *Database) Count(p *JoinPlan, limit int) (int, error) {
	res, err := db.Execute(p, ExecuteOptions{Limit: limit})
	if err != nil {
		return 0, err
	}
	return len(res), nil
}

// candidateRows returns the rows of t satisfying all predicates; with no
// predicates it returns all rows.
func (t *Table) candidateRows(preds []Predicate) []int {
	if len(preds) == 0 {
		out := make([]int, t.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
rows:
	for _, r := range t.rows {
		for _, p := range preds {
			ci := t.Schema.ColumnIndex(p.Column)
			if ci < 0 || !ContainsBag(r.Values[ci], p.Keywords) {
				continue rows
			}
		}
		out = append(out, r.RowID)
	}
	return out
}
