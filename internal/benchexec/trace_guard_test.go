package benchexec

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// TestDisabledTracingOverheadGuard is the ≤2% bar for the tracing
// substrate's disabled path, priced against this package's executor
// microbench. With tracing off, every instrumentation point in the
// request path costs one trace.FromContext lookup and/or a nil-receiver
// method call; this guard measures that bundle directly and requires
// that a generous per-request allowance of such points (far above what
// the engine actually executes) stays under 2% of one executor-bench
// request. Measuring the primitive rather than diffing two full-request
// timings keeps the guard deterministic — request-scale A/B ratios on a
// shared CI core drown a 2% signal in scheduler noise.
func TestDisabledTracingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale dataset build in -short mode")
	}
	opRes := testing.Benchmark(func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			// One disabled instrumentation point: context lookup, span
			// open/close, one counter.
			tr := trace.FromContext(ctx)
			sp := tr.Start("stage")
			tr.Count("work", 1)
			sp.End()
		}
	})
	reqRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sharedEnv.RunRequest(ModeCached); err != nil {
				b.Fatal(err)
			}
		}
	})

	// A traced request records a handful of spans and a few counters per
	// executed plan; 512 points per request over-counts the real
	// instrumentation density by more than an order of magnitude.
	const pointsPerRequest = 512
	overheadNS := float64(opRes.NsPerOp()) * pointsPerRequest
	budgetNS := 0.02 * float64(reqRes.NsPerOp())
	t.Logf("disabled point: %d ns/op; request: %d ns/op; %d points = %.0f ns vs 2%% budget %.0f ns",
		opRes.NsPerOp(), reqRes.NsPerOp(), pointsPerRequest, overheadNS, budgetNS)
	if overheadNS > budgetNS {
		t.Fatalf("disabled tracing overhead %.0f ns exceeds 2%% of the executor microbench (%.0f ns)",
			overheadNS, budgetNS)
	}
}
