package trace

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// A nil *Trace must absorb every call without panicking or allocating
// state — this is the disabled serving path.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if got := tr.ID(); got != "" {
		t.Fatalf("nil ID = %q, want empty", got)
	}
	sp := tr.Start("stage")
	if sp.Index() != -1 {
		t.Fatalf("nil span index = %d, want -1", sp.Index())
	}
	sp.End()
	tr.Count("n", 1)
	tr.CountDuration("busy_ns", time.Millisecond)
	tr.Annotate("k", "v")
	if tr.Age() != 0 {
		t.Fatalf("nil Age = %v, want 0", tr.Age())
	}
	d := tr.Snapshot()
	if d.ID != "" || len(d.Spans) != 0 || d.Counters != nil || d.Annotations != nil {
		t.Fatalf("nil Snapshot not empty: %+v", d)
	}
	if d.StageDurations() != nil {
		t.Fatal("nil StageDurations should be nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatalf("FromContext(nil) = %v, want nil", got)
	}

	tr := New("abc")
	ctx2 := NewContext(ctx, tr)
	if got := FromContext(ctx2); got != tr {
		t.Fatalf("FromContext returned %v, want the installed trace", got)
	}

	// Nil trace must not grow the context chain.
	if ctx3 := NewContext(ctx, nil); ctx3 != ctx {
		t.Fatal("NewContext(ctx, nil) should return ctx unchanged")
	}
}

func TestIDGeneration(t *testing.T) {
	if got := New("client-supplied").ID(); got != "client-supplied" {
		t.Fatalf("ID = %q, want client-supplied", got)
	}
	a, b := New("").ID(), New("").ID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("generated IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two generated IDs collided: %q", a)
	}
}

func TestSpansAndTree(t *testing.T) {
	tr := New("t1")
	root := tr.Start("request")
	child := tr.StartChild("interpret", root.Index())
	grand := tr.StartChild("rank", child.Index())
	grand.End()
	child.End()
	root.End()
	open := tr.Start("dangling") // never ended
	_ = open

	d := tr.Snapshot()
	if len(d.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(d.Spans))
	}
	if d.Spans[0].Parent != -1 || d.Spans[1].Parent != 0 || d.Spans[2].Parent != 1 {
		t.Fatalf("parent chain wrong: %+v", d.Spans)
	}
	for i := 0; i < 3; i++ {
		if d.Spans[i].DurUS < 0 {
			t.Fatalf("span %d not closed: %+v", i, d.Spans[i])
		}
	}
	if d.Spans[3].DurUS != -1 {
		t.Fatalf("open span should report -1, got %d", d.Spans[3].DurUS)
	}
	// Offsets are monotone in creation order.
	for i := 1; i < len(d.Spans); i++ {
		if d.Spans[i].StartUS < d.Spans[i-1].StartUS {
			t.Fatalf("offsets not monotone: %+v", d.Spans)
		}
	}
}

func TestCountersAndAnnotations(t *testing.T) {
	tr := New("t2")
	tr.Count("plans_executed", 3)
	tr.Count("plans_executed", 2)
	tr.CountDuration("shard_busy_ns", 1500*time.Microsecond)
	tr.Annotate("cache", "miss")
	tr.Annotate("cache", "hit") // overwrite

	d := tr.Snapshot()
	if d.Counters["plans_executed"] != 5 {
		t.Fatalf("counter = %d, want 5", d.Counters["plans_executed"])
	}
	if d.Counters["shard_busy_ns"] != 1_500_000 {
		t.Fatalf("duration counter = %d, want 1500000", d.Counters["shard_busy_ns"])
	}
	if d.Annotations["cache"] != "hit" {
		t.Fatalf("annotation = %q, want hit", d.Annotations["cache"])
	}
	names := d.SortedCounterNames()
	if len(names) != 2 || names[0] != "plans_executed" || names[1] != "shard_busy_ns" {
		t.Fatalf("sorted names = %v", names)
	}
}

func TestStageDurations(t *testing.T) {
	tr := New("t3")
	a := tr.Start("execute")
	a.End()
	b := tr.Start("execute") // repeated name sums
	b.End()
	tr.Count("shard_busy_ns", 4_000_000) // 4ms → 4000us
	tr.Count("plans", 7)                 // not a _ns counter: excluded
	open := tr.Start("open")
	_ = open // DurUS -1: excluded

	st := tr.Snapshot().StageDurations()
	if _, ok := st["open"]; ok {
		t.Fatal("open span leaked into StageDurations")
	}
	if _, ok := st["plans"]; ok {
		t.Fatal("plain counter leaked into StageDurations")
	}
	if st["shard_busy_us"] != 4000 {
		t.Fatalf("shard_busy_us = %d, want 4000", st["shard_busy_us"])
	}
	if _, ok := st["execute"]; !ok {
		t.Fatal("execute span missing")
	}
}

// Snapshot must share nothing with the live trace: mutating the trace
// after Snapshot must not affect the copy.
func TestSnapshotIsolation(t *testing.T) {
	tr := New("t4")
	sp := tr.Start("a")
	tr.Count("c", 1)
	tr.Annotate("k", "v1")
	d := tr.Snapshot()
	sp.End()
	tr.Count("c", 10)
	tr.Annotate("k", "v2")
	if d.Spans[0].DurUS != -1 || d.Counters["c"] != 1 || d.Annotations["k"] != "v1" {
		t.Fatalf("snapshot mutated by later writes: %+v", d)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New("t5")
	sp := tr.Start("interpret")
	sp.End()
	tr.Count("rows", 42)
	tr.Annotate("outcome", "ok")
	line := tr.Snapshot().JSON()
	var back Data
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatalf("JSON line does not parse: %v\n%s", err, line)
	}
	if back.ID != "t5" || len(back.Spans) != 1 || back.Counters["rows"] != 42 || back.Annotations["outcome"] != "ok" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// Concurrent recording from many goroutines (the shard-worker pattern)
// must be race-free and lose nothing. Run with -race.
func TestConcurrentRecording(t *testing.T) {
	tr := New("race")
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := tr.Start("shard")
				tr.Count("events", 1)
				tr.CountDuration("busy_ns", time.Nanosecond)
				tr.Annotate("last", "x")
				sp.End()
				if i%50 == 0 {
					_ = tr.Snapshot() // snapshot while writers are live
				}
			}
		}(w)
	}
	wg.Wait()
	d := tr.Snapshot()
	if d.Counters["events"] != workers*iters {
		t.Fatalf("events = %d, want %d", d.Counters["events"], workers*iters)
	}
	if len(d.Spans) != workers*iters {
		t.Fatalf("spans = %d, want %d", len(d.Spans), workers*iters)
	}
}

// The disabled-path cost the engine pays per instrumentation point.
func BenchmarkNilTraceOps(b *testing.B) {
	var tr *Trace
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got := FromContext(ctx)
		sp := got.Start("x")
		got.Count("c", 1)
		sp.End()
		_ = tr
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x")
		sp.End()
	}
}
