package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/relstore"
)

// ConceptSpace is the shared world of entity concepts and instances that
// both the synthetic Freebase and the synthetic YAGO draw from. The
// instance overlap between the two datasets — the basis of the YAGO+F
// matching of Chapter 6 — exists because both sample from these pools
// (standing in for the Wikipedia origin both real datasets share).
type ConceptSpace struct {
	// Names lists concept identifiers ("concept_000", ...).
	Names []string
	// Instances maps a concept to its instance identifiers.
	Instances map[string][]string
}

// NewConceptSpace creates numConcepts concepts with Zipf-distributed pool
// sizes between minPool and maxPool.
func NewConceptSpace(numConcepts, minPool, maxPool int, seed int64) *ConceptSpace {
	if numConcepts <= 0 {
		numConcepts = 40
	}
	if minPool <= 0 {
		minPool = 10
	}
	if maxPool < minPool {
		maxPool = minPool * 20
	}
	rng := rand.New(rand.NewSource(seed))
	cs := &ConceptSpace{Instances: make(map[string][]string)}
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(maxPool-minPool))
	for c := 0; c < numConcepts; c++ {
		name := fmt.Sprintf("concept_%03d", c)
		cs.Names = append(cs.Names, name)
		n := minPool + int(zipf.Uint64())
		pool := make([]string, n)
		for i := range pool {
			pool[i] = fmt.Sprintf("%s/inst_%05d", name, i)
		}
		cs.Instances[name] = pool
	}
	return cs
}

// TotalInstances returns the total instance count across concepts.
func (cs *ConceptSpace) TotalInstances() int {
	n := 0
	for _, p := range cs.Instances {
		n += len(p)
	}
	return n
}

// FreebaseConfig scales the synthetic Freebase: a very large, flat,
// heterogeneous schema (Chapter 5 evaluates on >7,000 tables in >100
// domains).
type FreebaseConfig struct {
	Domains         int
	TablesPerDomain int
	// RowsPerTable bounds rows sampled per table (small: the experiments
	// stress schema scale, not data scale).
	RowsPerTable int
	Seed         int64
}

func (c *FreebaseConfig) defaults() {
	if c.Domains <= 0 {
		c.Domains = 10
	}
	if c.TablesPerDomain <= 0 {
		c.TablesPerDomain = 20
	}
	if c.RowsPerTable <= 0 {
		c.RowsPerTable = 12
	}
}

// FreebaseData bundles the generated database with its ground truth.
type FreebaseData struct {
	DB *relstore.Database
	// Domains lists domain names.
	Domains []string
	// DomainOf maps table name -> domain.
	DomainOf map[string]string
	// ConceptOf maps table name -> the ground-truth concept the table's
	// rows were sampled from (the matching gold standard of Figure 6.4).
	ConceptOf map[string]string
	// InstancesOf maps table name -> the instance identifiers of its rows.
	InstancesOf map[string][]string
}

// Freebase builds the flat multi-domain database: every table is an
// entity table (id, name, notes) whose rows are instances of one concept
// from the shared space. Tables within a domain are chained by foreign
// keys to a per-domain hub table, giving the big flat schema graph whose
// QCOs are uninformative without an ontology layer (Section 5.5).
func Freebase(cs *ConceptSpace, cfg FreebaseConfig) (*FreebaseData, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := NewPools(rng, 0)
	db := relstore.NewDatabase("freebase")
	fd := &FreebaseData{
		DB:          db,
		DomainOf:    make(map[string]string),
		ConceptOf:   make(map[string]string),
		InstancesOf: make(map[string][]string),
	}
	for d := 0; d < cfg.Domains; d++ {
		domain := fmt.Sprintf("domain%03d", d)
		fd.Domains = append(fd.Domains, domain)
		hubName := domain + "_topic"
		hub, err := db.CreateTable(&relstore.TableSchema{
			Name:       hubName,
			Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
			PrimaryKey: "id",
		})
		if err != nil {
			return nil, err
		}
		fd.DomainOf[hubName] = domain
		if _, err := hub.Insert(domain+"_root", title(pools.Word())+" Topics"); err != nil {
			return nil, err
		}
		for t := 0; t < cfg.TablesPerDomain; t++ {
			concept := cs.Names[rng.Intn(len(cs.Names))]
			tableName := fmt.Sprintf("%s_t%03d", domain, t)
			tb, err := db.CreateTable(&relstore.TableSchema{
				Name: tableName,
				Columns: []relstore.Column{
					{Name: "id"},
					{Name: "name", Indexed: true},
					{Name: "notes", Indexed: true},
					{Name: "topic_id"},
				},
				PrimaryKey: "id",
				ForeignKeys: []relstore.ForeignKey{
					{Column: "topic_id", RefTable: hubName, RefColumn: "id"},
				},
			})
			if err != nil {
				return nil, err
			}
			fd.DomainOf[tableName] = domain
			fd.ConceptOf[tableName] = concept
			pool := cs.Instances[concept]
			n := cfg.RowsPerTable
			if n > len(pool) {
				n = len(pool)
			}
			perm := rng.Perm(len(pool))[:n]
			for _, pi := range perm {
				inst := pool[pi]
				name := title(pools.First()) + " " + title(pools.Surname())
				if _, err := tb.Insert(inst, name, pools.Sentence(4), domain+"_root"); err != nil {
					return nil, err
				}
				fd.InstancesOf[tableName] = append(fd.InstancesOf[tableName], inst)
			}
		}
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, err
	}
	return fd, nil
}
