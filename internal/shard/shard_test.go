package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/relstore"
)

// The shard executor's one obligation is byte-identity: at any shard
// count, with or without selection caching, ExecutePlan/CountPlan must
// reproduce the local executor's exact JTT sequence and counts —
// including under limit and over tombstoned (post-Apply) snapshots.

var vocab = []string{"alpha", "beta", "gamma", "delta", "omega", "42", "7", "zz"}

func randValue(rng *rand.Rand, n int) string {
	k := rng.Intn(n + 1)
	v := ""
	for i := 0; i < k; i++ {
		v += vocab[rng.Intn(len(vocab))] + " "
	}
	return v
}

func randBag(rng *rand.Rand, n int) []string {
	k := rng.Intn(n + 1)
	bag := make([]string, 0, k)
	for i := 0; i < k; i++ {
		bag = append(bag, vocab[rng.Intn(len(vocab))])
	}
	return bag
}

// randDB builds a randomized 3-table FK chain a ← b, a ← c with
// occasional dangling references, then deletes a few rows so the
// candidate streams contain RowID gaps.
func randDB(t *testing.T, rng *rand.Rand) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("diff")
	mustCreate := func(s *relstore.TableSchema) *relstore.Table {
		tab, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	ta := mustCreate(&relstore.TableSchema{Name: "a", PrimaryKey: "id", Columns: []relstore.Column{
		{Name: "id"}, {Name: "text", Indexed: true},
	}})
	tb := mustCreate(&relstore.TableSchema{Name: "b", Columns: []relstore.Column{
		{Name: "a_id"}, {Name: "text", Indexed: true},
	}, ForeignKeys: []relstore.ForeignKey{{Column: "a_id", RefTable: "a", RefColumn: "id"}}})
	tc := mustCreate(&relstore.TableSchema{Name: "c", Columns: []relstore.Column{
		{Name: "a_id"}, {Name: "text", Indexed: true},
	}, ForeignKeys: []relstore.ForeignKey{{Column: "a_id", RefTable: "a", RefColumn: "id"}}})
	if err := db.ValidateRefs(); err != nil {
		t.Fatal(err)
	}
	na := 2 + rng.Intn(20)
	for i := 0; i < na; i++ {
		if _, err := ta.Insert(fmt.Sprintf("a%d", i), randValue(rng, 5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rng.Intn(40); i++ {
		if _, err := tb.Insert(fmt.Sprintf("a%d", rng.Intn(na+2)), randValue(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rng.Intn(30); i++ {
		if _, err := tc.Insert(fmt.Sprintf("a%d", rng.Intn(na+2)), randValue(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(2) == 0 {
		next, _, err := db.Apply([]relstore.Mutation{
			{Op: relstore.OpDelete, Table: "a", Key: fmt.Sprintf("a%d", rng.Intn(na))},
		})
		if err != nil {
			t.Fatal(err)
		}
		db = next
	}
	return db
}

func randPlan(rng *rand.Rand) *relstore.JoinPlan {
	preds := func() []relstore.Predicate {
		var out []relstore.Predicate
		if rng.Intn(3) != 0 {
			out = append(out, relstore.Predicate{Column: "text", Keywords: randBag(rng, 3)})
		}
		return out
	}
	switch rng.Intn(4) {
	case 0:
		return &relstore.JoinPlan{Nodes: []relstore.JoinNode{{Table: "a", Predicates: preds()}}}
	case 1:
		return &relstore.JoinPlan{
			Nodes: []relstore.JoinNode{
				{Table: "a", Predicates: preds()},
				{Table: "b", Predicates: preds()},
			},
			Edges: []relstore.JoinEdge{{From: 1, To: 0, FromColumn: "a_id", ToColumn: "id"}},
		}
	case 2:
		return &relstore.JoinPlan{
			Nodes: []relstore.JoinNode{
				{Table: "c", Predicates: preds()},
				{Table: "a", Predicates: preds()},
			},
			Edges: []relstore.JoinEdge{{From: 0, To: 1, FromColumn: "a_id", ToColumn: "id"}},
		}
	default:
		return &relstore.JoinPlan{
			Nodes: []relstore.JoinNode{
				{Table: "b", Predicates: preds()},
				{Table: "a", Predicates: preds()},
				{Table: "c", Predicates: preds()},
			},
			Edges: []relstore.JoinEdge{
				{From: 0, To: 1, FromColumn: "a_id", ToColumn: "id"},
				{From: 2, To: 1, FromColumn: "a_id", ToColumn: "id"},
			},
		}
	}
}

func sameJTTs(a, b []relstore.JTT) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Rows, b[i].Rows) {
			return false
		}
	}
	return true
}

func TestExecDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 80; iter++ {
		db := randDB(t, rng)
		for p := 0; p < 6; p++ {
			plan := randPlan(rng)
			limit := []int{0, 0, 1, 3, 7}[rng.Intn(5)]
			local := &relstore.LocalExecutor{DB: db, Cache: relstore.NewSelectionCache()}
			want, err := local.ExecutePlan(plan, limit)
			if err != nil {
				t.Fatal(err)
			}
			wantN, err := local.CountPlan(plan, limit)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 3, 8} {
				for _, useCache := range []bool{true, false} {
					x := NewExec(db, n, nil, useCache, nil)
					got, err := x.ExecutePlan(plan, limit)
					if err != nil {
						t.Fatal(err)
					}
					if !sameJTTs(want, got) {
						t.Fatalf("iter %d plan %d limit %d shards %d cache %v: local=%v sharded=%v (plan %+v)",
							iter, p, limit, n, useCache, want, got, plan)
					}
					gotN, err := x.CountPlan(plan, limit)
					if err != nil {
						t.Fatal(err)
					}
					if gotN != wantN {
						t.Fatalf("iter %d plan %d limit %d shards %d cache %v: local count=%d sharded=%d",
							iter, p, limit, n, useCache, wantN, gotN)
					}
				}
			}
		}
	}
}

func TestOwnerPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		counts := make([]int, n)
		for id := 0; id < 10000; id++ {
			o := Owner(id, n)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d, %d) = %d out of range", id, n, o)
			}
			if o2 := Owner(id, n); o2 != o {
				t.Fatalf("Owner(%d, %d) unstable: %d then %d", id, n, o, o2)
			}
			counts[o]++
		}
		// Balance: with 10k rows every shard should hold a meaningful
		// share (a stripe-pattern or broken hash concentrates rows).
		for i, c := range counts {
			if n > 1 && c < 10000/(4*n) {
				t.Fatalf("Owner(_, %d): shard %d holds only %d of 10000 rows (%v)", n, i, c, counts)
			}
		}
	}
	if Owner(123, 0) != 0 || Owner(123, 1) != 0 {
		t.Fatal("Owner must collapse to shard 0 for n <= 1")
	}
}

func TestStatsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randDB(t, rng)
	stats := NewStats(3)
	x := NewExec(db, 3, nil, true, stats)
	plan := &relstore.JoinPlan{Nodes: []relstore.JoinNode{{Table: "a"}}}
	if _, err := x.ExecutePlan(plan, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := x.CountPlan(plan, 0); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Scatters != 1 || snap.CountScatters != 1 {
		t.Fatalf("scatters=%d count_scatters=%d, want 1/1", snap.Scatters, snap.CountScatters)
	}
	if len(snap.Shards) != 3 {
		t.Fatalf("got %d shard snapshots, want 3", len(snap.Shards))
	}
	var results, execs int64
	for _, s := range snap.Shards {
		results += s.Results
		execs += s.Execs
	}
	if results != snap.MergedResults {
		t.Fatalf("per-shard results %d != merged %d", results, snap.MergedResults)
	}
	if execs != 6 {
		t.Fatalf("per-shard execs total %d, want 6 (3 shards x 2 scatters)", execs)
	}
}
