package keysearch

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/datagraph"
)

// TupleTree is one result of the data-based search baseline: a minimal
// joining tree of tuples connecting all keywords (Section 2.2.2).
type TupleTree struct {
	// Weight is the number of joins (edges) in the tree; smaller is
	// considered more relevant.
	Weight int `json:"weight"`
	// Rows maps "table#row" identifiers to the tuple's values per column
	// ("table.column" keys, as in Result.Rows).
	Rows []map[string]string `json:"rows"`
}

// SearchTrees runs the data-based (BANKS-style) baseline: keyword search
// directly on the tuple graph, without query interpretation. It
// complements Search (the schema-based pipeline) for comparing the two
// families of Section 2.2 on the same data. The tuple graph is built
// lazily on first use; the lazy build is safe under concurrent calls.
func (e *Engine) SearchTrees(ctx context.Context, keywords string, k int) ([]TupleTree, error) {
	s := e.current()
	if s == nil {
		return nil, fmt.Errorf("keysearch: call Build before searching")
	}
	toks := parse(keywords)
	if len(toks) == 0 {
		return nil, fmt.Errorf("keysearch: empty keyword query")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	trees, err := s.dataGraph().Search(toks, datagraph.Options{K: k})
	if err != nil {
		return nil, err
	}
	out := make([]TupleTree, 0, len(trees))
	for _, tr := range trees {
		tt := TupleTree{Weight: tr.Weight}
		nodes := append([]datagraph.Node(nil), tr.Nodes...)
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].Table != nodes[j].Table {
				return nodes[i].Table < nodes[j].Table
			}
			return nodes[i].Row < nodes[j].Row
		})
		for _, n := range nodes {
			t := s.db.Table(n.Table)
			tuple, ok := t.Row(n.Row)
			if !ok {
				continue
			}
			row := map[string]string{}
			for ci, col := range t.Schema.Columns {
				row[n.Table+"."+col.Name] = tuple.Values[ci]
			}
			tt.Rows = append(tt.Rows, row)
		}
		out = append(out, tt)
	}
	return out, nil
}

// String renders the tuple tree compactly for demos.
func (t TupleTree) String() string {
	parts := make([]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		for k, v := range row {
			if strings.HasSuffix(k, ".name") || strings.HasSuffix(k, ".title") {
				parts = append(parts, fmt.Sprintf("%s=%q", k, v))
			}
		}
	}
	sort.Strings(parts)
	return fmt.Sprintf("tree(w=%d): %s", t.Weight, strings.Join(parts, " "))
}
