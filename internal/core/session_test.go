package core

import (
	"fmt"
	"testing"

	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

type fixture struct {
	db    *relstore.Database
	ix    *invindex.Index
	cat   *query.Catalog
	model *prob.Model
}

// newFixture builds a movie database with enough ambiguity that keyword
// queries have multi-interpretation spaces.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	director := must(&relstore.TableSchema{
		Name:       "director",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	directs := must(&relstore.TableSchema{
		Name:    "directs",
		Columns: []relstore.Column{{Name: "director_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "director_id", RefTable: "director", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	// "london" is ambiguous: an actor, a director, a title word, a year-ish
	// keyword is unambiguous.
	ins(actor, "a1", "Jack London")
	ins(actor, "a2", "Tom Hanks")
	ins(director, "d1", "Laurie London")
	ins(movie, "m1", "London Boulevard", "2010")
	ins(movie, "m2", "The Terminal", "2004")
	ins(acts, "a1", "m1")
	ins(acts, "a2", "m2")
	ins(directs, "d1", "m2")
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 3})
	model := prob.New(ix, cat, prob.Config{})
	return &fixture{db: db, ix: ix, cat: cat, model: model}
}

func (f *fixture) candidates(t *testing.T, keywords ...string) *query.Candidates {
	t.Helper()
	return query.GenerateCandidates(f.ix, keywords, query.GenerateOptionsConfig{})
}

// intended finds the complete interpretation that binds each keyword to
// the given attribute names (table.column), smallest template first.
func (f *fixture) intended(t *testing.T, keywords []string, attrs ...string) *query.Interpretation {
	t.Helper()
	c := f.candidates(t, keywords...)
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	for _, q := range space {
		if len(q.Bindings) != len(attrs) {
			continue
		}
		ok := true
		for i, b := range q.Bindings {
			if b.KI.Attr.String() != attrs[i] {
				ok = false
				break
			}
		}
		if ok {
			return q
		}
	}
	t.Fatalf("intended interpretation %v not found", attrs)
	return nil
}

func TestSessionRequiresMatches(t *testing.T) {
	f := newFixture(t)
	c := f.candidates(t, "zzzz")
	if _, err := NewSession(f.model, c, SessionConfig{}); err == nil {
		t.Fatal("session over unmatched query should fail")
	}
}

func TestSessionConstructsIntended(t *testing.T) {
	f := newFixture(t)
	keywords := []string{"london", "2010"}
	intended := f.intended(t, keywords, "actor.name", "movie.year")
	c := f.candidates(t, keywords...)
	sess, err := NewSession(f.model, c, SessionConfig{Threshold: 20, StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	user := NewSimulatedUser(intended)
	res, err := RunConstruction(sess, user)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingRank == 0 {
		t.Fatal("intended interpretation lost")
	}
	if res.Steps == 0 {
		t.Fatal("ambiguous query should require at least one option")
	}
	if res.Steps > 15 {
		t.Fatalf("interaction cost %d implausibly high for this fixture", res.Steps)
	}
}

func TestSessionEveryIntentReachable(t *testing.T) {
	f := newFixture(t)
	keywords := []string{"london"}
	c := f.candidates(t, keywords...)
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	if len(space) < 3 {
		t.Fatalf("fixture should make 'london' ambiguous, got %d interpretations", len(space))
	}
	for _, intended := range space {
		sess, err := NewSession(f.model, c, SessionConfig{StopAtRemaining: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunConstruction(sess, NewSimulatedUser(intended))
		if err != nil {
			t.Fatalf("intent %v unreachable: %v", intended, err)
		}
		if res.RemainingRank != 1 || res.Remaining != 1 {
			t.Fatalf("intent %v not isolated: rank=%d remaining=%d",
				intended, res.RemainingRank, res.Remaining)
		}
	}
}

func TestSessionAcceptNarrowsToAccepted(t *testing.T) {
	f := newFixture(t)
	c := f.candidates(t, "london", "2010")
	sess, err := NewSession(f.model, c, SessionConfig{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := sess.NextOption()
	if !ok {
		t.Fatal("no option offered")
	}
	sess.Accept(opt)
	if sess.Steps() != 1 {
		t.Fatalf("Steps = %d", sess.Steps())
	}
	// After full expansion, every remaining interpretation must use the
	// accepted interpretation.
	for !sess.Done() {
		o, ok := sess.NextOption()
		if !ok {
			break
		}
		sess.Reject(o)
	}
	for _, sc := range sess.Remaining() {
		if !opt.Subsumes(sc.Q) {
			t.Fatalf("remaining interpretation %v violates accepted option %v", sc.Q, opt)
		}
	}
}

func TestSessionRejectRemovesOption(t *testing.T) {
	f := newFixture(t)
	c := f.candidates(t, "london")
	sess, err := NewSession(f.model, c, SessionConfig{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := sess.NextOption()
	if !ok {
		t.Fatal("no option offered")
	}
	sess.Reject(opt)
	for _, sc := range sess.Remaining() {
		if opt.Subsumes(sc.Q) {
			t.Fatalf("rejected option still subsumes remaining %v", sc.Q)
		}
	}
	// The same option must not be offered again.
	for i := 0; i < 10; i++ {
		o, ok := sess.NextOption()
		if !ok {
			break
		}
		if o.Key() == opt.Key() {
			t.Fatal("rejected option offered again")
		}
		sess.Reject(o)
	}
}

func TestSessionStopAtRemaining(t *testing.T) {
	f := newFixture(t)
	c := f.candidates(t, "london")
	sess, err := NewSession(f.model, c, SessionConfig{StopAtRemaining: 3})
	if err != nil {
		t.Fatal(err)
	}
	intended := f.intended(t, []string{"london"}, "actor.name")
	res, err := RunConstruction(sess, NewSimulatedUser(intended))
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining > 3 {
		t.Fatalf("stopped with %d remaining, wanted ≤3", res.Remaining)
	}
}

// TestProbabilityEstimatesReduceCost reproduces the Figure 3.5 claim in
// miniature: informed (ATF) probability estimates yield average
// interaction cost no worse than the uniform baseline.
func TestProbabilityEstimatesReduceCost(t *testing.T) {
	f := newFixture(t)
	keywords := []string{"london", "2010"}
	c := f.candidates(t, keywords...)
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	ranked := f.model.Rank(space)
	// Intent = the most probable interpretation (the common case): ATF
	// should find it within very few steps.
	intended := ranked[0].Q
	sess, err := NewSession(f.model, c, SessionConfig{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConstruction(sess, NewSimulatedUser(intended))
	if err != nil {
		t.Fatal(err)
	}
	// Uniform baseline scorer.
	uni := &uniformScorer{cat: f.cat}
	sessU, err := NewSession(uni, c, SessionConfig{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	resU, err := RunConstruction(sessU, NewSimulatedUser(intended))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > resU.Steps {
		t.Fatalf("ATF cost %d worse than uniform %d for the typical intent", res.Steps, resU.Steps)
	}
}

// uniformScorer is the base line of Section 3.8.2: all interpretations and
// options equally likely.
type uniformScorer struct{ cat *query.Catalog }

func (u *uniformScorer) KeywordProb(query.KeywordInterpretation) float64 { return 1 }
func (u *uniformScorer) Catalog() *query.Catalog                         { return u.cat }
func (u *uniformScorer) Rank(space []*query.Interpretation) []prob.Scored {
	out := make([]prob.Scored, len(space))
	for i, q := range space {
		out[i] = prob.Scored{Q: q, Score: 1, Prob: 1 / float64(len(space))}
	}
	return out
}

func TestOptionPolicyAblation(t *testing.T) {
	f := newFixture(t)
	c := f.candidates(t, "london", "2010")
	intended := f.intended(t, []string{"london", "2010"}, "actor.name", "movie.year")
	for _, policy := range []OptionPolicy{PolicyInformationGain, PolicyProbability} {
		sess, err := NewSession(f.model, c, SessionConfig{StopAtRemaining: 1, OptionPolicy: policy})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunConstruction(sess, NewSimulatedUser(intended))
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		if res.RemainingRank != 1 {
			t.Fatalf("policy %d failed to isolate intent", policy)
		}
	}
}

func TestSimulatedUserTimeModel(t *testing.T) {
	u := NewSimulatedUser(nil)
	ct := u.ConstructionTime(7, 1)
	// 10 + 7·9 + 1.2 = 74.2 s.
	if got := ct.Seconds(); got < 74 || got > 75 {
		t.Fatalf("ConstructionTime = %v", got)
	}
	rt := u.RankingTime(220)
	// 10 + 220·1.2 = 274 s.
	if got := rt.Seconds(); got < 273 || got > 275 {
		t.Fatalf("RankingTime = %v", got)
	}
	// The Figure 3.7 crossover: high-rank intents cost more via ranking
	// than via construction.
	if u.RankingTime(220) <= u.ConstructionTime(7, 1) {
		t.Fatal("category-11 ranking should be slower than construction")
	}
	// Low-rank intents are faster via ranking.
	if u.RankingTime(2) >= u.ConstructionTime(4, 1) {
		t.Fatal("category-0 ranking should be faster than construction")
	}
}

func TestRunSimulationDeterministic(t *testing.T) {
	cfg := SimConfig{Tables: 10, Keywords: 3, Seed: 11}
	r1, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || r1.Interpretations != r2.Interpretations {
		t.Fatalf("simulation not deterministic: %+v vs %+v", r1, r2)
	}
	if r1.Interpretations <= 0 {
		t.Fatal("no interpretations counted")
	}
}

// TestSimulationGrowth reproduces the qualitative claims of Tables 3.2 and
// 3.3: the interpretation space grows much faster than the interaction
// cost in both the table and the keyword dimension.
func TestSimulationGrowth(t *testing.T) {
	avg := func(tables, keywords int) (interp, steps float64) {
		const reps = 5
		for r := 0; r < reps; r++ {
			res, err := RunSimulation(SimConfig{
				Tables: tables, Keywords: keywords, Seed: int64(100*tables + 10*keywords + r),
			})
			if err != nil {
				t.Fatal(err)
			}
			interp += float64(res.Interpretations)
			steps += float64(res.Steps)
		}
		return interp / reps, steps / reps
	}
	i5, s5 := avg(5, 3)
	i40, s40 := avg(40, 3)
	if i40 <= i5 {
		t.Fatalf("space should grow with tables: %v vs %v", i5, i40)
	}
	if i40/i5 < 4 {
		t.Fatalf("space growth too small: %v → %v", i5, i40)
	}
	// Interaction cost grows far slower than the space.
	if s40/s5 > i40/i5 {
		t.Fatalf("steps grew faster than the space: steps %v→%v, space %v→%v", s5, s40, i5, i40)
	}
	i2, _ := avg(10, 2)
	i6, s6 := avg(10, 6)
	if i6 <= i2 {
		t.Fatalf("space should grow with keywords: %v vs %v", i2, i6)
	}
	if s6 > 80 {
		t.Fatalf("6-keyword interaction cost implausible: %v", s6)
	}
}

func TestCountInterpretationsSaturates(t *testing.T) {
	// Enormous synthetic candidate sets must saturate, not overflow.
	c := &query.Candidates{Keywords: make([]string, 12)}
	c.PerKeyword = make([][]query.KeywordInterpretation, 12)
	for i := range c.Keywords {
		c.Keywords[i] = fmt.Sprintf("kw%d", i)
		for j := 0; j < 50; j++ {
			c.PerKeyword[i] = append(c.PerKeyword[i], query.KeywordInterpretation{
				Pos: i, Keyword: c.Keywords[i], Kind: query.KindValue,
				Attr: invindex.AttrRef{Table: fmt.Sprintf("t%d", j), Column: "val"},
			})
		}
	}
	tree := &schemagraph.JoinTree{Tables: []string{"t0"}}
	for j := 1; j < 50; j++ {
		tree.Tables = append(tree.Tables, fmt.Sprintf("t%d", j))
		tree.TreeEdges = append(tree.TreeEdges, schemagraph.TreeEdge{
			From: j - 1, To: j, FromColumn: "a", ToColumn: "b",
		})
	}
	cat := &query.Catalog{Templates: []*query.Template{query.NewTemplate(0, tree)}}
	got := CountInterpretations(c, cat)
	if got <= 0 {
		t.Fatalf("saturated count must stay positive, got %d", got)
	}
}
