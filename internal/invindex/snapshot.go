package invindex

import (
	"fmt"
	"sort"

	"repro/internal/durable"
	"repro/internal/relstore"
)

// This file implements the inverted index's snapshot codec. The index
// is the most expensive derived structure to rebuild (it tokenises the
// whole corpus), so engine snapshots persist it rather than re-deriving
// it on open. Serialised state: the per-attribute unigram statistics
// and the term postings — everything the ranking model reads. The
// sorted term dictionary is re-derived from the postings keys (it is
// exactly their sorted set), and schema-term match tables are rebuilt
// from the database schema, both cheap and deterministic.
//
// Determinism: attributes are encoded in index order, terms and
// attribute keys sorted, so the same index always encodes to the same
// bytes, and a decoded index re-encodes identically.

// EncodeSnapshot appends the index's snapshot encoding to e.
func (ix *Index) EncodeSnapshot(e *durable.Enc) {
	e.Uvarint(uint64(len(ix.attrs)))
	for _, a := range ix.attrs {
		e.String(a.Table)
		e.String(a.Column)
	}
	e.Uvarint(uint64(ix.totalDocs))

	// Per-attribute statistics, in attribute order.
	for _, a := range ix.attrs {
		st := ix.stats[a.String()]
		e.Uvarint(uint64(st.totalTokens))
		e.Uvarint(uint64(st.docs))
		terms := make([]string, 0, len(st.termCount))
		for term := range st.termCount {
			terms = append(terms, term)
		}
		sort.Strings(terms)
		e.Uvarint(uint64(len(terms)))
		for _, term := range terms {
			e.String(term)
			e.Uvarint(uint64(st.termCount[term]))
			e.Uvarint(uint64(st.docCount[term]))
		}
	}

	// Postings: term → attribute index → posting, everything sorted.
	attrIdx := make(map[string]int, len(ix.attrs))
	for i, a := range ix.attrs {
		attrIdx[a.String()] = i
	}
	terms := make([]string, 0, len(ix.postings))
	for term := range ix.postings {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	e.Uvarint(uint64(len(terms)))
	for _, term := range terms {
		pmap := ix.postings[term]
		keys := make([]string, 0, len(pmap))
		for k := range pmap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.String(term)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			p := pmap[k]
			e.Uvarint(uint64(attrIdx[k]))
			e.Uvarint(uint64(p.Count))
			e.Uvarint(uint64(p.DocCount))
			e.Ints(p.Rows)
		}
	}
}

// DecodeSnapshot reconstructs an index over db from its snapshot
// encoding. db must be the database the index was built over (the
// engine decodes the database section first); attribute identity is
// cross-checked against its schema.
func DecodeSnapshot(d *durable.Dec, db *relstore.Database) (*Index, error) {
	ix := &Index{
		db:            db,
		postings:      make(map[string]map[string]*Posting),
		stats:         make(map[string]*attrStats),
		schemaTables:  make(map[string][]string),
		schemaColumns: make(map[string][]AttrRef),
	}

	nattrs := int(d.Uvarint())
	for i := 0; i < nattrs && d.Err() == nil; i++ {
		ix.attrs = append(ix.attrs, AttrRef{Table: d.String(), Column: d.String()})
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("invindex: decode snapshot: %w", err)
	}
	// The attribute list must match the schema-derived one exactly —
	// it is what ties stats and postings to real columns.
	want := attrsOf(db)
	if len(want) != len(ix.attrs) {
		return nil, fmt.Errorf("invindex: decode snapshot: %d attributes, schema has %d", len(ix.attrs), len(want))
	}
	for i := range want {
		if want[i] != ix.attrs[i] {
			return nil, fmt.Errorf("invindex: decode snapshot: attribute %d is %s, schema says %s",
				i, ix.attrs[i], want[i])
		}
	}
	ix.totalDocs = int(d.Uvarint())

	for _, a := range ix.attrs {
		st := &attrStats{
			totalTokens: int(d.Uvarint()),
			docs:        int(d.Uvarint()),
			termCount:   make(map[string]int),
			docCount:    make(map[string]int),
		}
		nterms := int(d.Uvarint())
		for i := 0; i < nterms && d.Err() == nil; i++ {
			term := d.String()
			st.termCount[term] = int(d.Uvarint())
			st.docCount[term] = int(d.Uvarint())
		}
		st.vocabulary = len(st.termCount)
		ix.stats[a.String()] = st
	}

	nterms := int(d.Uvarint())
	terms := make([]string, 0, min(nterms, d.Remaining()))
	for i := 0; i < nterms && d.Err() == nil; i++ {
		term := d.String()
		nposts := int(d.Uvarint())
		pmap := make(map[string]*Posting, min(nposts, d.Remaining()))
		for j := 0; j < nposts && d.Err() == nil; j++ {
			ai := int(d.Uvarint())
			if ai < 0 || ai >= len(ix.attrs) {
				return nil, fmt.Errorf("invindex: decode snapshot: term %q: attribute index %d out of range", term, ai)
			}
			attr := ix.attrs[ai]
			pmap[attr.String()] = &Posting{
				Attr:     attr,
				Count:    int(d.Uvarint()),
				DocCount: int(d.Uvarint()),
				Rows:     d.Ints(),
			}
		}
		ix.postings[term] = pmap
		terms = append(terms, term)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("invindex: decode snapshot: %w", err)
	}
	// The term dictionary is the sorted postings key set; terms were
	// encoded sorted, so re-sorting is a no-op guard on corrupt input.
	sort.Strings(terms)
	ix.terms = terms

	// Schema-term match tables derive from the schema alone, in the
	// same table/column order Build uses.
	for _, t := range db.Tables() {
		for _, tok := range relstore.Tokenize(t.Schema.Name) {
			ix.schemaTables[tok] = append(ix.schemaTables[tok], t.Schema.Name)
		}
		for _, col := range t.Schema.Columns {
			if !col.Indexed {
				continue
			}
			attr := AttrRef{Table: t.Schema.Name, Column: col.Name}
			for _, tok := range relstore.Tokenize(col.Name) {
				ix.schemaColumns[tok] = append(ix.schemaColumns[tok], attr)
			}
		}
	}
	return ix, nil
}

// attrsOf lists every indexed attribute of db in Build's order.
func attrsOf(db *relstore.Database) []AttrRef {
	var out []AttrRef
	for _, t := range db.Tables() {
		for _, col := range t.Schema.Columns {
			if col.Indexed {
				out = append(out, AttrRef{Table: t.Schema.Name, Column: col.Name})
			}
		}
	}
	return out
}
