package keysearch

import (
	"repro/internal/core"
	"repro/internal/query"
)

// Question is one query construction option presented to the user during
// incremental construction ("Is «hanks» an actor's name?").
type Question struct {
	// Text is the human-readable question.
	Text string

	opt query.Option
}

// Construction is an interactive incremental query construction session
// (the IQP interface of Chapter 3): the system asks questions, the user
// accepts or rejects them, and the candidate structured queries narrow
// until the intended one is isolated.
type Construction struct {
	s    *System
	sess *core.Session
}

// ConstructionConfig tunes a construction session.
type ConstructionConfig struct {
	// Threshold is the greedy hierarchy-expansion threshold (default 20).
	Threshold int
	// StopAtRemaining ends construction when at most this many candidate
	// queries remain (default 5).
	StopAtRemaining int
}

// Construct starts an incremental construction session for the keyword
// query.
func (s *System) Construct(keywords string, cfg ConstructionConfig) (*Construction, error) {
	c, _, err := s.candidatesFor(keywords)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(s.model, c, core.SessionConfig{
		Threshold:       cfg.Threshold,
		StopAtRemaining: cfg.StopAtRemaining,
	})
	if err != nil {
		return nil, err
	}
	return &Construction{s: s, sess: sess}, nil
}

// Done reports whether construction has converged to at most
// StopAtRemaining candidates.
func (c *Construction) Done() bool { return c.sess.Done() }

// Steps returns the number of questions answered so far — the interaction
// cost of the session.
func (c *Construction) Steps() int { return c.sess.Steps() }

// Next returns the next question, or ok=false when no question can narrow
// the candidates further (pick from Candidates instead).
func (c *Construction) Next() (Question, bool) {
	opt, ok := c.sess.NextOption()
	if !ok {
		return Question{}, false
	}
	return Question{Text: opt.Describe(), opt: opt}, true
}

// Accept confirms that the question's interpretation is part of the
// intended query.
func (c *Construction) Accept(q Question) { c.sess.Accept(q.opt) }

// Reject states that the question's interpretation is not part of the
// intended query.
func (c *Construction) Reject(q Question) { c.sess.Reject(q.opt) }

// Candidates returns the currently remaining structured queries, ranked
// by probability (empty until the interpretation space is materialised).
func (c *Construction) Candidates() []Result {
	return c.s.wrap(c.sess.Remaining())
}
