// Package datagen generates the deterministic synthetic datasets and
// workloads of the reproduction, substituting for the crawls and query
// logs the thesis evaluates on (see DESIGN.md for the substitution
// rationale):
//
//   - IMDB — a 7-table movie database with the schema of Section 3.8.1,
//   - Lyrics — the 5-table chain-schema music database of Section 3.8.1,
//   - Freebase — a flat, very large multi-domain schema (Chapter 5),
//   - YAGO — a large class taxonomy with instances (Chapter 6), and
//   - keyword-query workloads with ground-truth intents standing in for
//     the MSN/AOL query-log extractions.
//
// Every generator is seeded and fully deterministic: the same config
// yields byte-identical databases.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// syllables used to synthesise person surnames; combined pairs give a pool
// of ~1k distinct surnames with realistic token shapes.
var surnameSyllables = []string{
	"han", "cru", "gar", "lon", "ber", "wil", "har", "mor", "fis", "wal",
	"tor", "ken", "del", "ros", "mar", "lan", "ves", "cor", "bal", "dun",
	"fer", "gil", "hol", "jen", "kal", "lom", "mun", "nor", "pel", "quin",
	"ric", "sal",
}

var surnameSuffixes = []string{
	"ks", "ise", "cia", "don", "son", "ton", "man", "ley", "der", "ner",
	"ran", "dal", "vis", "mer", "low", "ard",
}

var firstNames = []string{
	"tom", "jack", "mary", "anna", "james", "lucy", "peter", "nina",
	"colin", "andy", "laura", "david", "ella", "frank", "grace", "henry",
	"iris", "karl", "lena", "marc", "nora", "oscar", "paula", "ralph",
	"sara", "tim", "ursula", "victor", "wendy", "yara", "zack", "boris",
}

// commonWords feed titles, plots and lyrics; deliberately overlapping with
// nothing else.
var commonWords = []string{
	"the", "night", "day", "love", "dark", "light", "river", "sky",
	"terminal", "road", "fire", "ice", "dream", "shadow", "storm", "heart",
	"city", "ocean", "moon", "sun", "star", "ghost", "king", "queen",
	"silent", "broken", "golden", "hidden", "lost", "last", "first",
	"blue", "red", "black", "white", "green", "winter", "summer",
	"return", "rise", "fall", "escape", "secret", "journey", "edge",
}

// Pools bundles the deterministic token pools of one dataset.
type Pools struct {
	Surnames []string
	Firsts   []string
	Words    []string
	rng      *rand.Rand
	surZipf  *rand.Zipf
	wordZipf *rand.Zipf
}

// NewPools builds pools with the given surname-pool size. Sampling is
// Zipfian so a few names/words dominate — the frequency skew that makes
// ATF informative and keyword queries ambiguous.
func NewPools(rng *rand.Rand, surnamePool int) *Pools {
	if surnamePool <= 0 {
		surnamePool = 400
	}
	p := &Pools{Firsts: firstNames, Words: commonWords, rng: rng}
	seen := make(map[string]bool)
	for _, a := range surnameSyllables {
		for _, b := range surnameSuffixes {
			s := a + b
			if !seen[s] {
				seen[s] = true
				p.Surnames = append(p.Surnames, s)
			}
			if len(p.Surnames) >= surnamePool {
				break
			}
		}
		if len(p.Surnames) >= surnamePool {
			break
		}
	}
	p.surZipf = rand.NewZipf(rng, 1.2, 1, uint64(len(p.Surnames)-1))
	p.wordZipf = rand.NewZipf(rng, 1.1, 1, uint64(len(p.Words)-1))
	return p
}

// Surname samples a Zipf-distributed surname.
func (p *Pools) Surname() string { return p.Surnames[p.surZipf.Uint64()] }

// First samples a uniform first name.
func (p *Pools) First() string { return p.Firsts[p.rng.Intn(len(p.Firsts))] }

// PersonName samples "First Surname".
func (p *Pools) PersonName() string {
	return title(p.First()) + " " + title(p.Surname())
}

// Word samples a Zipf-distributed common word.
func (p *Pools) Word() string { return p.Words[p.wordZipf.Uint64()] }

// Title samples a 1–3 word title. With probability nameProb one word is a
// surname from the person pool — the cross-attribute ambiguity that makes
// keyword queries like "london" genuinely ambiguous (a person or a
// title), as in the thesis's running examples.
func (p *Pools) Title(nameProb float64) string {
	n := 1 + p.rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = p.Word()
	}
	if p.rng.Float64() < nameProb {
		parts[p.rng.Intn(n)] = p.Surname()
	}
	for i := range parts {
		parts[i] = title(parts[i])
	}
	return strings.Join(parts, " ")
}

// Year samples a year in 1950–2023.
func (p *Pools) Year() string { return fmt.Sprintf("%d", 1950+p.rng.Intn(74)) }

// Sentence samples an n-word sentence of common words.
func (p *Pools) Sentence(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = p.Word()
	}
	return strings.Join(parts, " ")
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
