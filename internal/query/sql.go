package query

import (
	"fmt"
	"sort"
	"strings"
)

// SQL renders the interpretation as the SQL statement the thesis
// associates with every candidate network (Section 2.2.6: "a candidate
// network corresponds to a single SQL statement that joins the tables as
// specified in the CN tree, and selects those rows that contain the
// keywords"). Containment predicates are rendered with LIKE per keyword;
// aggregate interpretations wrap the statement in COUNT.
//
// Occurrences are aliased t0, t1, … in template order so self-joins are
// unambiguous. The projection is SELECT * (the thesis's IQP returns all
// referred attributes, Section 3.5.1).
func (q *Interpretation) SQL() (string, error) {
	if q.Template == nil {
		return "", fmt.Errorf("query: interpretation has no template")
	}
	tree := q.Template.Tree
	var sb strings.Builder
	if agg := q.Aggregate(); agg != "" {
		sb.WriteString("SELECT COUNT(*) FROM ")
	} else {
		sb.WriteString("SELECT * FROM ")
	}
	for i, table := range tree.Tables {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s AS t%d", table, i)
	}
	var conds []string
	for _, e := range tree.TreeEdges {
		conds = append(conds, fmt.Sprintf("t%d.%s = t%d.%s", e.From, e.FromColumn, e.To, e.ToColumn))
	}
	// Group value bindings per occurrence/column, mirroring JoinPlan.
	type slot struct {
		occ int
		col string
	}
	grouped := make(map[slot][]string)
	for _, b := range q.Bindings {
		if b.KI.Kind != KindValue {
			continue
		}
		s := slot{occ: b.Occ, col: b.KI.Attr.Column}
		grouped[s] = append(grouped[s], b.KI.Keyword)
	}
	slots := make([]slot, 0, len(grouped))
	for s := range grouped {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].occ != slots[j].occ {
			return slots[i].occ < slots[j].occ
		}
		return slots[i].col < slots[j].col
	})
	for _, s := range slots {
		for _, kw := range grouped[s] {
			conds = append(conds, fmt.Sprintf("t%d.%s LIKE '%%%s%%'", s.occ, s.col, escapeSQL(kw)))
		}
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(conds, " AND "))
	}
	return sb.String(), nil
}

// escapeSQL doubles single quotes for safe literal embedding.
func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }
