// Package benchshard measures what the scatter-gather sharding
// topology (internal/shard, keysearch.ShardedEngine) buys on the
// execution-heavy serving mix against a million-row dataset. It stands
// up the real HTTP server twice over identically built engines — once
// single-process, once behind an N-shard coordinator — drives both
// with the same op stream after identical warmups, and reports the
// throughput ratio.
//
// The machine-transferable column is speedup_vs_1shard: sharded
// throughput divided by single-process throughput, measured within one
// run on one machine. Because the shards of one request run
// concurrently, the ratio depends on free cores: on a multi-core host
// with headroom it exceeds 1 (the enumeration splits across shards);
// on a single-core or fully loaded host it hovers near 1, bounded by
// the coordinator's small scatter/merge overhead — responses stay
// byte-identical either way, which the differential tests pin. The
// scatters and merged_results columns prove the sharded leg actually
// exercised the coordinator rather than a cache or fast path.
package benchshard

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	keysearch "repro"
	"repro/httpapi"
	"repro/internal/loadgen"
)

// Config sizes the sharding measurement.
type Config struct {
	// TargetRows is the generated dataset size (default 1,000,000;
	// quick mode 25,000).
	TargetRows int
	// Seed fixes dataset and workload generation (default 42).
	Seed int64
	// StepDuration is the length of each measured leg; warmups run half
	// of it (default 5s; quick 700ms).
	StepDuration time.Duration
	// Workers is the closed-loop concurrency of both legs (default 8).
	Workers int
	// Shards is the sharded leg's shard count (default 4).
	Shards int
	// Quick selects the CI-sized variant of all defaults.
	Quick bool
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TargetRows <= 0 {
		if c.Quick {
			c.TargetRows = 25000
		} else {
			c.TargetRows = 1000000
		}
	}
	if c.StepDuration <= 0 {
		if c.Quick {
			c.StepDuration = 700 * time.Millisecond
		} else {
			c.StepDuration = 5 * time.Second
		}
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Shards <= 1 {
		c.Shards = 4
	}
}

// Row is one measured leg of BENCH_shard.json.
type Row struct {
	Name          string  `json:"name"`
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	Requests      int64   `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	Errors        int64   `json:"errors,omitempty"`
	// SpeedupVs1Shard is the transferable guard column, set on the
	// sharded leg only: its throughput divided by the single-process
	// leg's. > 1 needs free cores (see package doc).
	SpeedupVs1Shard float64 `json:"speedup_vs_1shard,omitempty"`
	// Scatters / MergedResults prove the sharded leg exercised the
	// coordinator: plan fan-outs and results emitted by the rank-order
	// merge over the measured leg; sharded leg only.
	Scatters      int64 `json:"scatters,omitempty"`
	MergedResults int64 `json:"merged_results,omitempty"`
}

// Report is the top-level shape of BENCH_shard.json (wrapped with host
// metadata by cmd/bench).
type Report struct {
	Dataset         string  `json:"dataset"`
	DatasetRows     int     `json:"dataset_rows"`
	WorkloadOps     int     `json:"workload_ops"`
	Shards          int     `json:"shards"`
	SpeedupVs1Shard float64 `json:"speedup_vs_1shard"`
	Rows            []Row   `json:"rows"`
}

// Measure runs both legs. Progress lines go through logf (may be nil)
// because the full-size run builds two million-row engines.
func Measure(cfg Config, logf func(format string, args ...any)) (*Report, error) {
	cfg.defaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}

	dcfg := loadgen.DatasetConfig{Kind: loadgen.KindMovies, TargetRows: cfg.TargetRows, Seed: cfg.Seed}
	logf("building %d-row movies dataset (seed %d)...", cfg.TargetRows, cfg.Seed)
	db, err := loadgen.BuildDataset(dcfg)
	if err != nil {
		return nil, err
	}
	// Row retrieval is where plan execution lives (the joins the shards
	// partition), so the stream leans on it; search and diversify keep
	// the coordinator's non-scattered paths honest.
	ops, err := loadgen.BuildWorkload(db, dcfg.Kind, loadgen.WorkloadConfig{
		Ops:  512,
		Seed: cfg.Seed,
		Mix:  loadgen.Mix{Search: 20, Rows: 60, Diversify: 20},
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:     fmt.Sprintf("datagen movies target=%d seed=%d", cfg.TargetRows, cfg.Seed),
		DatasetRows: db.NumRows(),
		WorkloadOps: len(ops),
		Shards:      cfg.Shards,
	}

	// Leg 1: single-process baseline.
	logf("building single-process engine...")
	single, err := runLeg(cfg, dcfg, ops, 1, logf)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, Row{
		Name: "serve-1shard", Shards: 1, Workers: cfg.Workers, Requests: single.res.Requests,
		ThroughputRPS: single.res.ThroughputRPS, P50MS: single.res.P50MS, P95MS: single.res.P95MS,
		P99MS: single.res.P99MS, Errors: single.res.Errors,
	})
	logf("  1-shard: %s", single.res)

	// Leg 2: the coordinator, identically built and warmed.
	logf("building %d-shard engine...", cfg.Shards)
	sharded, err := runLeg(cfg, dcfg, ops, cfg.Shards, logf)
	if err != nil {
		return nil, err
	}
	row := Row{
		Name: fmt.Sprintf("serve-%dshard", cfg.Shards), Shards: cfg.Shards, Workers: cfg.Workers,
		Requests: sharded.res.Requests, ThroughputRPS: sharded.res.ThroughputRPS,
		P50MS: sharded.res.P50MS, P95MS: sharded.res.P95MS, P99MS: sharded.res.P99MS,
		Errors: sharded.res.Errors, Scatters: sharded.scatters, MergedResults: sharded.merged,
	}
	if single.res.ThroughputRPS > 0 {
		row.SpeedupVs1Shard = sharded.res.ThroughputRPS / single.res.ThroughputRPS
	}
	rep.Rows = append(rep.Rows, row)
	rep.SpeedupVs1Shard = row.SpeedupVs1Shard
	logf("  %d-shard: %s", cfg.Shards, sharded.res)
	logf("speedup %.2fx vs 1 shard (%d scatters, %d merged results)",
		rep.SpeedupVs1Shard, row.Scatters, row.MergedResults)

	if sharded.scatters == 0 || sharded.merged == 0 {
		return nil, fmt.Errorf("benchshard: sharded leg never scattered (scatters=%d merged=%d) — measurement is vacuous",
			sharded.scatters, sharded.merged)
	}
	return rep, nil
}

type legResult struct {
	res      *loadgen.Result
	scatters int64
	merged   int64
}

// runLeg builds a fresh engine (dataset generation is deterministic, so
// both legs see byte-identical data), wraps it in an n-shard
// coordinator when n > 1, warms it for half a step — so both legs
// measure with equally hot score caches — then measures a closed-loop
// run.
func runLeg(cfg Config, dcfg loadgen.DatasetConfig, ops []loadgen.Op, n int,
	logf func(string, ...any)) (*legResult, error) {
	eng, err := loadgen.BuildEngine(dcfg)
	if err != nil {
		return nil, err
	}
	var topo keysearch.Searcher = eng
	var se *keysearch.ShardedEngine
	if n > 1 {
		if se, err = keysearch.NewShardedEngine(n, eng); err != nil {
			return nil, err
		}
		topo = se
	}
	ts := httptest.NewServer(httpapi.New(topo))
	defer ts.Close()
	ctx := context.Background()
	base := loadgen.Options{BaseURL: ts.URL, Ops: ops, Workers: cfg.Workers}

	warm := base
	warm.Duration = cfg.StepDuration / 2
	logf("  warmup %v, then measuring %v at %d workers...", warm.Duration, cfg.StepDuration, cfg.Workers)
	if _, err := loadgen.Run(ctx, warm); err != nil {
		return nil, err
	}
	var before keysearch.EngineStats
	if se != nil {
		before = se.Stats()
	}

	meas := base
	meas.Duration = cfg.StepDuration
	res, err := loadgen.Run(ctx, meas)
	if err != nil {
		return nil, err
	}
	if res.Errors > 0 {
		return nil, fmt.Errorf("benchshard: leg produced %d errors", res.Errors)
	}

	out := &legResult{res: res}
	if se != nil {
		after := se.Stats()
		out.scatters = after.Shards.Scatters - before.Shards.Scatters
		out.merged = after.Shards.MergedResults - before.Shards.MergedResults
	}
	return out, nil
}
