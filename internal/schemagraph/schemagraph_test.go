package schemagraph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/relstore"
)

// fig22Graph builds the 9-table schema graph of Figure 2.2: entity tables
// actor, director, film, company, location and relationship tables acts,
// directs, employed_by, situated_in.
func fig22Graph() *Graph {
	tables := []string{
		"actor", "director", "film", "company", "location",
		"acts", "directs", "employed_by", "situated_in",
	}
	edges := []Edge{
		{From: "acts", To: "actor", FromColumn: "actor_id", ToColumn: "id"},
		{From: "acts", To: "film", FromColumn: "film_id", ToColumn: "id"},
		{From: "directs", To: "director", FromColumn: "director_id", ToColumn: "id"},
		{From: "directs", To: "film", FromColumn: "film_id", ToColumn: "id"},
		{From: "employed_by", To: "actor", FromColumn: "actor_id", ToColumn: "id"},
		{From: "employed_by", To: "director", FromColumn: "director_id", ToColumn: "id"},
		{From: "employed_by", To: "company", FromColumn: "company_id", ToColumn: "id"},
		{From: "situated_in", To: "company", FromColumn: "company_id", ToColumn: "id"},
		{From: "situated_in", To: "location", FromColumn: "location_id", ToColumn: "id"},
	}
	return New(tables, edges)
}

func TestFromDatabase(t *testing.T) {
	db := relstore.NewDatabase("d")
	must := func(s *relstore.TableSchema) {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	must(&relstore.TableSchema{Name: "actor", Columns: []relstore.Column{{Name: "id"}}, PrimaryKey: "id"})
	must(&relstore.TableSchema{Name: "movie", Columns: []relstore.Column{{Name: "id"}}, PrimaryKey: "id"})
	must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	g := FromDatabase(db)
	if g.NumTables() != 3 {
		t.Fatalf("NumTables = %d", g.NumTables())
	}
	if g.Degree("acts") != 2 {
		t.Fatalf("Degree(acts) = %d", g.Degree("acts"))
	}
	if g.Degree("actor") != 1 {
		t.Fatalf("Degree(actor) = %d", g.Degree("actor"))
	}
	// Reversed half-edge exists at actor.
	n := g.Neighbors("actor")
	if len(n) != 1 || n[0].To != "acts" || n[0].FromColumn != "id" || n[0].ToColumn != "actor_id" {
		t.Fatalf("Neighbors(actor) = %v", n)
	}
	if !g.HasTable("movie") || g.HasTable("ghost") {
		t.Fatal("HasTable wrong")
	}
}

func TestEdgeReverse(t *testing.T) {
	e := Edge{From: "a", To: "b", FromColumn: "x", ToColumn: "y"}
	r := e.Reverse()
	if r.From != "b" || r.To != "a" || r.FromColumn != "y" || r.ToColumn != "x" {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != e {
		t.Fatal("double reverse must be identity")
	}
}

func TestEnumerateJoinTreesSizes(t *testing.T) {
	g := fig22Graph()
	trees := g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 1})
	if len(trees) != 9 {
		t.Fatalf("size-1 trees = %d, want 9", len(trees))
	}
	trees = g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 2})
	// 9 singles + 9 edges (each FK edge is one 2-node tree).
	if len(trees) != 18 {
		t.Fatalf("size<=2 trees = %d, want 18", len(trees))
	}
	for _, tr := range trees {
		if tr.Size() > 2 {
			t.Fatalf("tree exceeds MaxNodes: %v", tr)
		}
		if tr.NumJoins() != tr.Size()-1 {
			t.Fatalf("tree is not a tree: %v", tr)
		}
	}
}

func TestEnumerateJoinTreesContainsActsPath(t *testing.T) {
	g := fig22Graph()
	trees := g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 3})
	found := false
	for _, tr := range trees {
		names := append([]string(nil), tr.Tables...)
		sort.Strings(names)
		if strings.Join(names, ",") == "actor,acts,film" {
			found = true
		}
	}
	if !found {
		t.Fatal("actor ⋈ acts ⋈ film path not enumerated")
	}
}

func TestEnumerateJoinTreesDedup(t *testing.T) {
	g := fig22Graph()
	trees := g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 4})
	seen := map[string]bool{}
	for _, tr := range trees {
		key := tr.Canonical()
		if seen[key] {
			t.Fatalf("duplicate tree: %s", key)
		}
		seen[key] = true
	}
}

func TestEnumerateJoinTreesSelfJoin(t *testing.T) {
	g := fig22Graph()
	trees := g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 5})
	// The two-actor template: actor ⋈ acts ⋈ film ⋈ acts ⋈ actor.
	found := false
	for _, tr := range trees {
		occ := map[string]int{}
		for _, n := range tr.Tables {
			occ[n]++
		}
		if occ["actor"] == 2 && occ["acts"] == 2 && occ["film"] == 1 && tr.Size() == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("self-join template actor⋈acts⋈film⋈acts⋈actor not enumerated")
	}
}

func TestEnumerateJoinTreesMaxTrees(t *testing.T) {
	g := fig22Graph()
	trees := g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 4, MaxTrees: 7})
	if len(trees) != 7 {
		t.Fatalf("MaxTrees cap violated: %d", len(trees))
	}
	// Breadth-first: the first 7 trees must be the smallest ones.
	for _, tr := range trees {
		if tr.Size() > 1 {
			t.Fatalf("cap should keep singletons first, got size %d", tr.Size())
		}
	}
}

func TestCanonicalIsomorphism(t *testing.T) {
	// Same path a-b-c built with different node orders must canonise equal.
	t1 := &JoinTree{
		Tables: []string{"a", "b", "c"},
		TreeEdges: []TreeEdge{
			{From: 0, To: 1, FromColumn: "x", ToColumn: "y"},
			{From: 1, To: 2, FromColumn: "u", ToColumn: "v"},
		},
	}
	t2 := &JoinTree{
		Tables: []string{"c", "b", "a"},
		TreeEdges: []TreeEdge{
			{From: 0, To: 1, FromColumn: "v", ToColumn: "u"},
			{From: 1, To: 2, FromColumn: "y", ToColumn: "x"},
		},
	}
	if t1.Canonical() != t2.Canonical() {
		t.Fatalf("isomorphic trees canonise differently:\n%s\n%s", t1.Canonical(), t2.Canonical())
	}
	// Different edge labels must canonise differently.
	t3 := t1.Clone()
	t3.TreeEdges[0].FromColumn = "other"
	if t1.Canonical() == t3.Canonical() {
		t.Fatal("different edge labels should change canonical form")
	}
}

// TestHanksTerminalCNs reproduces the worked example of Section 2.2.3: the
// query "hanks terminal" with hanks ∈ {actor, director} and terminal ∈
// {film, company, location} yields exactly the four candidate networks
// listed in the thesis (within join paths of length ≤ 3).
func TestHanksTerminalCNs(t *testing.T) {
	g := fig22Graph()
	matches := map[string][]string{
		"hanks":    {"actor", "director"},
		"terminal": {"film", "company", "location"},
	}
	cns := g.EnumerateCandidateNetworks(matches, EnumerateOptions{MaxNodes: 3})
	var got []string
	for _, cn := range cns {
		if cn.Tree.Size() == 3 {
			got = append(got, cn.String())
		}
	}
	sort.Strings(got)
	want := []string{
		`actor:"hanks" ⋈ acts ⋈ film:"terminal"`,
		`actor:"hanks" ⋈ employed_by ⋈ company:"terminal"`,
		`director:"hanks" ⋈ directs ⋈ film:"terminal"`,
		`director:"hanks" ⋈ employed_by ⋈ company:"terminal"`,
	}
	// The enumeration may order occurrences differently; compare as sets of
	// canonical strings after normalising occurrence order.
	if len(got) != len(want) {
		t.Fatalf("got %d size-3 CNs: %v, want %d: %v", len(got), got, len(want), want)
	}
	for i := range want {
		if !sameCN(got[i], want[i]) && !containsCN(got, want[i]) {
			t.Fatalf("missing CN %q in %v", want[i], got)
		}
	}
}

func sameCN(a, b string) bool {
	pa := strings.Split(a, " ⋈ ")
	pb := strings.Split(b, " ⋈ ")
	sort.Strings(pa)
	sort.Strings(pb)
	return strings.Join(pa, "|") == strings.Join(pb, "|")
}

func containsCN(list []string, want string) bool {
	for _, g := range list {
		if sameCN(g, want) {
			return true
		}
	}
	return false
}

func TestCNMinimality(t *testing.T) {
	tree := &JoinTree{
		Tables: []string{"actor", "acts", "film"},
		TreeEdges: []TreeEdge{
			{From: 1, To: 0, FromColumn: "actor_id", ToColumn: "id"},
			{From: 1, To: 2, FromColumn: "film_id", ToColumn: "id"},
		},
	}
	cn := &CandidateNetwork{Tree: tree, KeywordsAt: [][]string{{"hanks"}, nil, {"terminal"}}}
	if !cn.IsMinimal() {
		t.Fatal("keyworded leaves should be minimal")
	}
	cn = &CandidateNetwork{Tree: tree, KeywordsAt: [][]string{{"hanks", "terminal"}, nil, nil}}
	if cn.IsMinimal() {
		t.Fatal("free leaf must violate minimality")
	}
	// Single free node is non-minimal too.
	single := &CandidateNetwork{
		Tree:       &JoinTree{Tables: []string{"actor"}},
		KeywordsAt: [][]string{nil},
	}
	if single.IsMinimal() {
		t.Fatal("free singleton must violate minimality")
	}
}

func TestCandidateNetworksCompleteness(t *testing.T) {
	g := fig22Graph()
	matches := map[string][]string{
		"hanks":    {"actor", "director"},
		"terminal": {"film", "company", "location"},
	}
	cns := g.EnumerateCandidateNetworks(matches, EnumerateOptions{MaxNodes: 4})
	for _, cn := range cns {
		total := 0
		for i, kws := range cn.KeywordsAt {
			for _, k := range kws {
				allowed := matches[k]
				ok := false
				for _, a := range allowed {
					if a == cn.Tree.Tables[i] {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("keyword %q assigned to disallowed table %s in %s",
						k, cn.Tree.Tables[i], cn)
				}
			}
			total += len(kws)
		}
		if total != 2 {
			t.Fatalf("CN %s does not cover both keywords", cn)
		}
		if !cn.IsMinimal() {
			t.Fatalf("non-minimal CN emitted: %s", cn)
		}
	}
}

func TestCandidateNetworksSingleKeyword(t *testing.T) {
	g := fig22Graph()
	cns := g.EnumerateCandidateNetworks(map[string][]string{"hanks": {"actor"}},
		EnumerateOptions{MaxNodes: 2})
	if len(cns) != 1 {
		t.Fatalf("got %d CNs, want exactly the actor singleton: %v", len(cns), cns)
	}
	if cns[0].Tree.Size() != 1 || cns[0].Tree.Tables[0] != "actor" {
		t.Fatalf("CN = %v", cns[0])
	}
}

func TestCandidateNetworksNoMatches(t *testing.T) {
	g := fig22Graph()
	cns := g.EnumerateCandidateNetworks(map[string][]string{"zzz": nil},
		EnumerateOptions{MaxNodes: 3})
	if len(cns) != 0 {
		t.Fatalf("expected no CNs for unmatched keyword, got %d", len(cns))
	}
	cns = g.EnumerateCandidateNetworks(map[string][]string{}, EnumerateOptions{MaxNodes: 3})
	if len(cns) != 0 {
		t.Fatalf("expected no CNs for empty query, got %d", len(cns))
	}
}

func TestNewDeduplicatesTables(t *testing.T) {
	g := New([]string{"a", "a", "b"}, nil)
	if g.NumTables() != 2 {
		t.Fatalf("NumTables = %d, want 2", g.NumTables())
	}
}

// Property: the canonical form is invariant under arbitrary relabelling
// of node indices (tree isomorphism).
func TestCanonicalPermutationInvariance(t *testing.T) {
	build := func(seed int64) (*JoinTree, *JoinTree) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + rng.Intn(4)))
		}
		type edge struct{ from, to int }
		var edges []edge
		for i := 1; i < n; i++ {
			edges = append(edges, edge{from: rng.Intn(i), to: i})
		}
		t1 := &JoinTree{Tables: append([]string(nil), names...)}
		for _, e := range edges {
			t1.TreeEdges = append(t1.TreeEdges, TreeEdge{
				From: e.from, To: e.to, FromColumn: "x", ToColumn: "id",
			})
		}
		// Permute node indices.
		perm := rng.Perm(n)
		t2 := &JoinTree{Tables: make([]string, n)}
		for old, new_ := range perm {
			t2.Tables[new_] = names[old]
		}
		for _, e := range edges {
			t2.TreeEdges = append(t2.TreeEdges, TreeEdge{
				From: perm[e.from], To: perm[e.to], FromColumn: "x", ToColumn: "id",
			})
		}
		return t1, t2
	}
	for seed := int64(0); seed < 200; seed++ {
		t1, t2 := build(seed)
		if t1.Canonical() != t2.Canonical() {
			t.Fatalf("seed %d: permuted tree canonises differently:\n%s\n%s",
				seed, t1.Canonical(), t2.Canonical())
		}
	}
}

// Property: every enumerated join tree is a valid tree over existing
// tables and edges of the graph.
func TestEnumerationValidity(t *testing.T) {
	g := fig22Graph()
	for _, tr := range g.EnumerateJoinTrees(EnumerateOptions{MaxNodes: 4}) {
		if tr.NumJoins() != tr.Size()-1 {
			t.Fatalf("not a tree: %v", tr)
		}
		for _, name := range tr.Tables {
			if !g.HasTable(name) {
				t.Fatalf("unknown table %s in tree", name)
			}
		}
		for _, e := range tr.TreeEdges {
			// Every tree edge must correspond to a schema edge.
			found := false
			for _, he := range g.Neighbors(tr.Tables[e.From]) {
				if he.To == tr.Tables[e.To] && he.FromColumn == e.FromColumn && he.ToColumn == e.ToColumn {
					found = true
				}
			}
			if !found {
				t.Fatalf("tree edge %v not in schema graph", e)
			}
		}
	}
}
