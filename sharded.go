package keysearch

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/relstore"
	"repro/internal/shard"
	"repro/internal/trace"
)

// ShardedEngine serves one engine's data scatter-gather across n logical
// shards: every row is hash-assigned to a shard (shard.Owner), plan
// execution fans each candidate network's enumeration out across the
// shards' owned root rows, and a coordinator merges the partial streams
// back in rank order. Responses are byte-identical to the wrapped
// engine's at any shard count — sharding changes how answers are
// computed, never which answers are produced (docs/sharding.md gives
// the determinism argument).
//
// Snapshots are shared, not copied: the tables, posting lists, and
// equality indexes of one immutable snapshot serve all shards (each
// shard still gets its own per-request SelectionCache view and its own
// counters). Mutations route through the coordinator: one Apply batch
// commits once under one epoch — so WAL records stay gap-checkable and
// Open-based recovery is unchanged — while the coordinator partitions
// the batch's physical change log per shard to keep per-shard row
// accounting in step with that shared epoch.
type ShardedEngine struct {
	eng   *Engine
	n     int
	stats *shard.Stats

	// rcMu guards the per-shard row-count cache. Counts are keyed to the
	// snapshot *pointer*, not the epoch: checkpoint compaction rewrites
	// RowIDs at an unchanged logical state, so only pointer identity
	// proves the counts describe the current physical rows. Apply keeps
	// the cache warm incrementally via the engine's apply observer;
	// anything else (compaction, first use) falls back to a full scan.
	rcMu     sync.Mutex
	rcSnap   *snapshot
	rcCounts []int
}

// NewShardedEngine wraps a built engine in an n-shard scatter-gather
// coordinator. n = 1 is a valid degenerate topology (single shard
// behind the coordinator path, used by the differential tests); the
// wrapped engine must not be wrapped by another coordinator.
func NewShardedEngine(n int, eng *Engine) (*ShardedEngine, error) {
	if n < 1 {
		return nil, fmt.Errorf("keysearch: shard count must be >= 1, got %d", n)
	}
	if eng == nil {
		return nil, fmt.Errorf("keysearch: NewShardedEngine requires an engine")
	}
	if eng.applyObserver != nil {
		return nil, fmt.Errorf("keysearch: engine is already coordinated")
	}
	se := &ShardedEngine{eng: eng, n: n, stats: shard.NewStats(n)}
	eng.applyObserver = se.observeApply
	return se, nil
}

// OpenSharded recovers a durable engine from dir (snapshot + WAL
// replay, exactly as Open) and serves it through an n-shard
// coordinator. Durability is a property of the underlying engine, so a
// directory written by a single-process engine restores behind any
// shard count and vice versa.
func OpenSharded(dir string, n int, opts ...Option) (*ShardedEngine, error) {
	eng, err := Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	se, err := NewShardedEngine(n, eng)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return se, nil
}

// Engine returns the wrapped single-process engine.
func (se *ShardedEngine) Engine() *Engine { return se.eng }

// NumShards returns the coordinator's shard count.
func (se *ShardedEngine) NumShards() int { return se.n }

// provider builds the request-scoped scatter-gather executor — the
// execProvider the coordinator injects into the engine's request flow
// in place of the local one. Under tracing the answer-cache view is
// wrapped for hit counting, the executor records per-shard busy time,
// and the request is annotated with its fan-out; with tracing off all
// three vanish.
func (se *ShardedEngine) provider(ctx context.Context, s *snapshot, view relstore.SharedStore) relstore.PlanExecutor {
	tr := trace.FromContext(ctx)
	if tr != nil {
		tr.Annotate("shard_fanout", strconv.Itoa(se.n))
	}
	return shard.NewExec(s.db, se.n, tracedView(view, tr), !se.eng.cfg.execCacheOff, se.stats).Traced(tr)
}

// Search implements Searcher with sharded plan execution.
func (se *ShardedEngine) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	return se.eng.searchExec(ctx, req, se.provider)
}

// Diversify implements Searcher with sharded emptiness probes and
// previews.
func (se *ShardedEngine) Diversify(ctx context.Context, req DiversifyRequest) (*SearchResponse, error) {
	return se.eng.diversifyExec(ctx, req, se.provider)
}

// SearchRows implements Searcher: top-k wave execution scatters each
// interpretation across the shards and the coordinator merges per-shard
// streams before the waves' rank-order heap merge.
func (se *ShardedEngine) SearchRows(ctx context.Context, req RowsRequest) (*RowsResponse, error) {
	return se.eng.searchRowsExec(ctx, req, se.provider)
}

// Construct implements Searcher. Construction is dialogue over the
// interpretation space — no plan execution — so it delegates unchanged.
func (se *ShardedEngine) Construct(ctx context.Context, req ConstructRequest) (*Construction, error) {
	return se.eng.Construct(ctx, req)
}

// Keywords implements Searcher.
func (se *ShardedEngine) Keywords(prefix string, limit int) []string {
	return se.eng.Keywords(prefix, limit)
}

// Apply implements Searcher: the batch commits once through the wrapped
// engine — one validation, one WAL record, one epoch increment, one
// snapshot swap — and the registered observer folds the change log into
// the coordinator's per-shard accounting under that shared epoch.
func (se *ShardedEngine) Apply(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	return se.eng.Apply(ctx, muts)
}

// Checkpoint implements Searcher.
func (se *ShardedEngine) Checkpoint(ctx context.Context) (*CheckpointStats, error) {
	return se.eng.Checkpoint(ctx)
}

// EstimateCost implements Searcher.
func (se *ShardedEngine) EstimateCost(keywords string) int64 {
	return se.eng.EstimateCost(keywords)
}

// SampleQueries implements Searcher.
func (se *ShardedEngine) SampleQueries(n int) []string {
	return se.eng.SampleQueries(n)
}

// Close implements Searcher.
func (se *ShardedEngine) Close() error { return se.eng.Close() }

// Stats implements Searcher: the wrapped engine's block plus the
// coordinator's shards block.
func (se *ShardedEngine) Stats() EngineStats {
	st := se.eng.Stats()
	snap := se.stats.Snapshot()
	ss := &ShardStats{
		Count:         se.n,
		Scatters:      snap.Scatters,
		CountScatters: snap.CountScatters,
		MergedResults: snap.MergedResults,
		Shards:        make([]ShardStat, se.n),
	}
	rows := se.shardRowCounts()
	for i := range ss.Shards {
		ss.Shards[i] = ShardStat{
			Rows:               rows[i],
			Execs:              snap.Shards[i].Execs,
			Results:            snap.Shards[i].Results,
			SelectionHits:      snap.Shards[i].SelectionHits,
			SelectionsComputed: snap.Shards[i].SelectionsComputed,
		}
	}
	st.Shards = ss
	return st
}

// observeApply is the engine's apply observer (runs under applyMu):
// partition the committed batch's change log by row ownership and patch
// the per-shard counts forward from prev's snapshot to next's. When the
// cached counts do not describe prev (never computed, or invalidated by
// compaction), the patch is skipped and the next Stats call recounts.
func (se *ShardedEngine) observeApply(prev, next *snapshot, changes []relstore.RowChange) {
	se.rcMu.Lock()
	defer se.rcMu.Unlock()
	if se.rcSnap != prev || se.rcCounts == nil {
		se.rcSnap = nil
		se.rcCounts = nil
		return
	}
	for _, ch := range changes {
		switch {
		case ch.Old == nil: // insert
			se.rcCounts[shard.Owner(ch.RowID, se.n)]++
		case ch.New == nil: // delete
			se.rcCounts[shard.Owner(ch.RowID, se.n)]--
		}
	}
	se.rcSnap = next
}

// shardRowCounts returns the live-row count each shard owns under the
// current snapshot, recounting only when the cached counts describe a
// different snapshot pointer.
func (se *ShardedEngine) shardRowCounts() []int {
	s := se.eng.current()
	out := make([]int, se.n)
	if s == nil {
		return out
	}
	se.rcMu.Lock()
	defer se.rcMu.Unlock()
	if se.rcSnap != s {
		counts := make([]int, se.n)
		for _, t := range s.db.Tables() {
			for id := range t.Rows() {
				if t.Live(id) {
					counts[shard.Owner(id, se.n)]++
				}
			}
		}
		se.rcSnap = s
		se.rcCounts = counts
	}
	copy(out, se.rcCounts)
	return out
}
