// Analytics: the expressiveness extensions of Section 2.2 on top of the
// basic keyword search — labelled keywords, phrase segmentation,
// aggregation operators, and global top-k result retrieval.
//
//	go run ./examples/analytics
package main

import (
	"context"
	"fmt"
	"log"

	keysearch "repro"
)

func main() {
	schema := []keysearch.Table{
		{
			Name:       "actor",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "name", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:       "movie",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "title", Text: true}, {Name: "year", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:    "acts",
			Columns: []keysearch.Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Text: true}},
			ForeignKeys: []keysearch.ForeignKey{
				{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
				{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			},
		},
	}
	eng, err := keysearch.New(schema,
		keysearch.WithAggregates(),
		keysearch.WithSegmentPhrases(0.8),
	)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Tom Hanks"},
		{"actor", "a2", "Tom Hanks"}, // a second Tom Hanks
		{"actor", "a3", "Jack London"},
		{"movie", "m1", "The Terminal", "2004"},
		{"movie", "m2", "London Boulevard", "2010"},
		{"movie", "m3", "Tom of the River", "1998"},
		{"acts", "a1", "m1", "Viktor Navorski"},
		{"acts", "a2", "m3", "Tom"},
		{"acts", "a3", "m2", "Mitchel"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. Labelled keywords (§2.2.7): force the movie-title reading of the
	// ambiguous keyword "london".
	fmt.Println("labelled query \"title:london\":")
	labelled, err := eng.Search(ctx, keysearch.SearchRequest{Query: "title:london", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range labelled.Results {
		fmt.Printf("  P=%.3f  %s\n", r.Probability, r.Query)
	}

	// 2. Phrase segmentation (§2.2.1): "tom hanks" always co-occur in
	// actor.name, so readings scattering the two tokens are pruned.
	fmt.Println("\nsegmented query \"tom hanks\":")
	seg, err := eng.Search(ctx, keysearch.SearchRequest{Query: "tom hanks", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range seg.Results {
		fmt.Printf("  P=%.3f  %s\n", r.Probability, r.Query)
	}

	// 3. Aggregation (Def 3.5.1 K4): "number hanks" counts results.
	fmt.Println("\nanalytical query \"number hanks\":")
	agg, err := eng.Search(ctx, keysearch.SearchRequest{Query: "number hanks", K: 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range agg.Results {
		if r.Aggregate == "" {
			continue
		}
		n, err := r.Count()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s = %d\n", r.Query, n)
	}

	// 4. Global top-k results (§2.2.5): the best concrete rows across all
	// interpretations, with early stopping over the interpretation list.
	fmt.Println("\ntop-3 concrete results for \"hanks\":")
	top, err := eng.SearchRows(ctx, keysearch.RowsRequest{Query: "hanks", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top.Rows {
		fmt.Printf("  score=%.4f  via %s\n", r.Score, r.Query)
		if name, ok := r.Row["actor.name"]; ok {
			fmt.Printf("    actor.name = %s\n", name)
		}
	}
}
