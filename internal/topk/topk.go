// Package topk implements the top-k query processing of Section 2.2.5:
// given a probability-ranked list of query interpretations (candidate
// networks), retrieve the k globally best search results (joining trees
// of tuples) without executing every interpretation to completion.
//
// The strategy is the DISCOVER2 adaptation of the Threshold Algorithm
// (Fagin): interpretations are processed in descending score order; for
// each, an upper bound on the score of any result it can still produce
// is known in advance (the interpretation's own score, since the
// per-result factor is ≤ 1 for a monotone scoring function). Execution
// stops as soon as the current k-th best result score is at least the
// upper bound of the next unexecuted interpretation — the early-stopping
// criterion of Section 2.2.5.
package topk

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/trace"
)

// Result is one scored search result: a JTT of an interpretation.
type Result struct {
	// Q is the interpretation that produced the result.
	Q *query.Interpretation
	// Rows are the RowIDs per join-plan node.
	Rows []int
	// Score combines the interpretation's probability with the result's
	// tuple-level relevance; higher is better.
	Score float64
}

// Scorer computes the tuple-level relevance factor of one JTT in [0, 1].
// The aggregate result score is interpretation score × factor, which is
// monotone in the sense of Section 2.2.5: better tuples can never make a
// worse interpretation overtake a better one's bound.
type Scorer interface {
	Factor(db *relstore.Database, plan *relstore.JoinPlan, jtt relstore.JTT) float64
}

// TFScorer scores a JTT by the average normalised term frequency of the
// interpretation's keywords within the matched tuples — the
// tuple-relevance factor of Section 2.2.4 (the "documents most relevant
// to the query contain the query terms more often" intuition).
type TFScorer struct {
	IX *invindex.Index
}

// Factor implements Scorer.
func (s *TFScorer) Factor(db *relstore.Database, plan *relstore.JoinPlan, jtt relstore.JTT) float64 {
	total, n := 0.0, 0
	for i, node := range plan.Nodes {
		t := db.Table(node.Table)
		if t == nil {
			continue
		}
		for _, pred := range node.Predicates {
			val, ok := t.Value(jtt.Rows[i], pred.Column)
			if !ok {
				continue
			}
			toks := relstore.Tokenize(val)
			if len(toks) == 0 {
				continue
			}
			counts := make(map[string]int, len(toks))
			for _, tok := range toks {
				counts[tok]++
			}
			for _, kw := range pred.Keywords {
				total += float64(counts[kw]) / float64(len(toks))
				n++
			}
		}
	}
	if n == 0 {
		return 1 // keyword-free interpretations: neutral factor
	}
	f := total / float64(n)
	if f > 1 {
		f = 1
	}
	return f
}

// UnitScorer gives every result the factor 1 — results are ranked purely
// by interpretation probability (the naive union-and-sort strategy, used
// as the baseline and for testing the early-stopping logic).
type UnitScorer struct{}

// Factor implements Scorer.
func (UnitScorer) Factor(*relstore.Database, *relstore.JoinPlan, relstore.JTT) float64 {
	return 1
}

// Options tunes top-k retrieval.
type Options struct {
	// K is the number of results to return (required).
	K int
	// PerInterpretationLimit caps JTT materialisation per interpretation
	// (0 = unlimited).
	PerInterpretationLimit int
	// Parallelism fans plan execution out across a bounded worker pool
	// (<= 1 executes sequentially). Executions run in waves of this size;
	// result batches feed the single bounded heap in rank order with the
	// same threshold checks as the sequential loop, so the returned results
	// — and Stats — are identical at every setting (speculatively executed
	// batches past the stopping point are discarded uncounted).
	Parallelism int
	// DisableExecutionCache turns off the per-request selection cache
	// that is otherwise shared across every interpretation executed by
	// one TopK / Naive call. The cache memoises (table, column,
	// keyword-bag) selections — which recur across the candidate networks
	// of one query — and is concurrency-safe for parallel waves; it is a
	// pure memoisation over the immutable database, so it never changes
	// results. Disable only to measure its effect.
	DisableExecutionCache bool
	// Shared, when non-nil, is the request's view of the engine-lifetime
	// answer cache (keysearch's WithAnswerCache): the per-request
	// selection cache consults it on misses and publishes fresh
	// selections and whole-plan results back, so repeated hot queries
	// skip execution entirely. Ignored when DisableExecutionCache is set
	// (the per-request cache is the promotion path).
	Shared relstore.SharedStore
	// Exec, when non-nil, evaluates the interpretations' join plans
	// instead of the default in-process executor — the seam a sharded
	// coordinator plugs its scatter-gather executor into. Every
	// PlanExecutor contract requires the exact Database.Execute result
	// sequence, so top-k output stays byte-identical regardless of the
	// topology behind this option. When set, DisableExecutionCache and
	// Shared are ignored: caching policy belongs to the executor.
	Exec relstore.PlanExecutor
}

// executor resolves the plan executor for one call: the injected one, or
// a LocalExecutor wrapping db with the per-request cache policy the
// options describe.
func (o Options) executor(db *relstore.Database) relstore.PlanExecutor {
	if o.Exec != nil {
		return o.Exec
	}
	return &relstore.LocalExecutor{DB: db, Cache: o.executionCache()}
}

// executionCache returns the per-request selection cache, or nil when
// disabled.
func (o Options) executionCache() *relstore.SelectionCache {
	if o.DisableExecutionCache {
		return nil
	}
	return relstore.NewSelectionCacheShared(o.Shared)
}

// Stats reports how much work early stopping saved.
type Stats struct {
	// Executed is the number of interpretations actually executed.
	Executed int
	// Skipped is the number of interpretations pruned by the threshold.
	Skipped int
	// Materialized is the number of JTTs scored.
	Materialized int
}

// resultHeap is a min-heap on Score, holding the current top-k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK retrieves the k best results over the ranked interpretation list.
// ranked must be sorted by descending score (as produced by
// prob.Model.Rank); the interpretation score is its upper bound. It is
// the context-free convenience form of TopKContext.
func TopK(db *relstore.Database, ranked []prob.Scored, scorer Scorer, opts Options) ([]Result, Stats, error) {
	return TopKContext(context.Background(), db, ranked, scorer, opts)
}

// TopKContext is TopK with cancellation and optional parallel plan
// execution: the context is checked before every interpretation execution
// (and between waves when parallel), and with opts.Parallelism > 1 the
// next wave of candidate interpretations is executed concurrently while
// their result batches are merged into the bounded heap strictly in rank
// order. Merging applies the threshold check before every batch exactly
// like the sequential loop, so the heap evolves identically and the
// output is bit-identical at every parallelism setting. (Soundness of the
// speculation: a batch discarded by the threshold can only hold results
// with score ≤ its interpretation bound ≤ the current k-th best, and such
// results never enter a full heap.)
func TopKContext(ctx context.Context, db *relstore.Database, ranked []prob.Scored, scorer Scorer, opts Options) ([]Result, Stats, error) {
	var stats Stats
	if opts.K <= 0 {
		return nil, stats, fmt.Errorf("topk: K must be positive")
	}
	// Recording is deferred so early-stop statistics land on the trace
	// however the wave loop exits; tr is nil (every call a no-op) when
	// the request is untraced.
	tr := trace.FromContext(ctx)
	if tr != nil {
		defer func() {
			tr.Count("topk_executed", int64(stats.Executed))
			tr.Count("topk_skipped", int64(stats.Skipped))
			tr.Count("topk_materialized", int64(stats.Materialized))
		}()
	}
	if scorer == nil {
		scorer = UnitScorer{}
	}
	h := &resultHeap{}
	heap.Init(h)
	merge := newHeapMerger(h, opts.K)

	wave := opts.Parallelism
	if wave < 1 {
		wave = 1
	}
	exec := opts.executor(db)
	batches := make([]batch, wave)
outer:
	for start := 0; start < len(ranked); start += wave {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		// Early stop (TA / DISCOVER2): no future interpretation can beat
		// the current k-th best result.
		if merge.stop(ranked[start].Score) {
			stats.Skipped = len(ranked) - start
			break
		}
		end := start + wave
		if end > len(ranked) {
			end = len(ranked)
		}
		tr.Count("topk_waves", 1)
		executeWave(ctx, db, exec, ranked[start:end], scorer, opts.PerInterpretationLimit, batches[:end-start])
		for i := start; i < end; i++ {
			if merge.stop(ranked[i].Score) {
				stats.Skipped = len(ranked) - i
				break outer
			}
			b := batches[i-start]
			if b.err != nil {
				return nil, stats, b.err
			}
			stats.Executed++
			stats.Materialized += len(b.results)
			merge.add(b.results)
		}
	}
	out := make([]Result, h.Len())
	for i := range out {
		out[i] = (*h)[i]
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Q.Key() < out[j].Q.Key()
	})
	return out, stats, nil
}

// batch is the outcome of executing one interpretation.
type batch struct {
	results []Result
	err     error
}

// executeWave executes a slice of ranked interpretations, one goroutine
// each when len > 1, filling batches[i] for ranked[i]. Workers only read
// the immutable database and the concurrency-safe executor, and write
// disjoint batch slots, so no further synchronisation is needed beyond
// the WaitGroup.
func executeWave(ctx context.Context, db *relstore.Database, exec relstore.PlanExecutor, ranked []prob.Scored, scorer Scorer, limit int, batches []batch) {
	if len(ranked) == 1 {
		batches[0] = executeOne(ctx, db, exec, ranked[0], scorer, limit)
		return
	}
	var wg sync.WaitGroup
	for i := range ranked {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batches[i] = executeOne(ctx, db, exec, ranked[i], scorer, limit)
		}(i)
	}
	wg.Wait()
}

// executeOne materialises and scores the results of one interpretation.
// Scoring reads db directly: under sharding the snapshot is shared, so
// the scorer's view is the same database the executor partitioned.
func executeOne(ctx context.Context, db *relstore.Database, exec relstore.PlanExecutor, sc prob.Scored, scorer Scorer, limit int) batch {
	if err := ctx.Err(); err != nil {
		return batch{err: err}
	}
	plan, err := sc.Q.JoinPlan()
	if err != nil {
		return batch{err: err}
	}
	jtts, err := exec.ExecutePlan(plan, limit)
	if err != nil {
		return batch{err: err}
	}
	results := make([]Result, 0, len(jtts))
	for _, jtt := range jtts {
		results = append(results, Result{
			Q: sc.Q, Rows: jtt.Rows, Score: sc.Score * scorer.Factor(db, plan, jtt),
		})
	}
	return batch{results: results}
}

// heapMerger owns the bounded result heap: batches are folded in rank
// order, keeping the k best results seen so far.
type heapMerger struct {
	h *resultHeap
	k int
}

func newHeapMerger(h *resultHeap, k int) *heapMerger {
	return &heapMerger{h: h, k: k}
}

// stop reports whether an interpretation with the given score bound (and
// therefore every later one, since bounds descend) can be skipped.
func (m *heapMerger) stop(bound float64) bool {
	return m.h.Len() >= m.k && (*m.h)[0].Score >= bound
}

// add folds one batch of results into the heap.
func (m *heapMerger) add(results []Result) {
	for _, r := range results {
		if m.h.Len() < m.k {
			heap.Push(m.h, r)
		} else if r.Score > (*m.h)[0].Score {
			(*m.h)[0] = r
			heap.Fix(m.h, 0)
		}
	}
}

// Naive executes every interpretation, unions the results, and sorts —
// the baseline strategy of Section 2.2.5 that TopK's early stopping
// improves on. Used to verify TopK's output equivalence.
func Naive(db *relstore.Database, ranked []prob.Scored, scorer Scorer, opts Options) ([]Result, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("topk: K must be positive")
	}
	if scorer == nil {
		scorer = UnitScorer{}
	}
	exec := opts.executor(db)
	var all []Result
	for _, sc := range ranked {
		plan, err := sc.Q.JoinPlan()
		if err != nil {
			return nil, err
		}
		jtts, err := exec.ExecutePlan(plan, opts.PerInterpretationLimit)
		if err != nil {
			return nil, err
		}
		for _, jtt := range jtts {
			all = append(all, Result{Q: sc.Q, Rows: jtt.Rows, Score: sc.Score * scorer.Factor(db, plan, jtt)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Q.Key() < all[j].Q.Key()
	})
	if len(all) > opts.K {
		all = all[:opts.K]
	}
	return all, nil
}
