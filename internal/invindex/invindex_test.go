package invindex

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relstore"
)

func buildTestIndex(t *testing.T) (*relstore.Database, *Index) {
	t.Helper()
	db := relstore.NewDatabase("movies")
	actor, err := db.CreateTable(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	movie, err := db.CreateTable(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	ins(actor, "a1", "Tom Hanks")
	ins(actor, "a2", "Tom Cruise")
	ins(actor, "a3", "Colin Hanks")
	ins(movie, "m1", "The Terminal", "2004")
	ins(movie, "m2", "Tom and Huck", "1995")
	ins(movie, "m3", "Terminal Velocity", "1994")
	return db, Build(db)
}

func TestLookupPostings(t *testing.T) {
	_, ix := buildTestIndex(t)
	ps := ix.Lookup("hanks")
	if len(ps) != 1 {
		t.Fatalf("got %d postings for hanks, want 1: %v", len(ps), ps)
	}
	p := ps[0]
	if p.Attr != (AttrRef{Table: "actor", Column: "name"}) {
		t.Fatalf("posting attr = %v", p.Attr)
	}
	if p.Count != 2 || p.DocCount != 2 {
		t.Fatalf("hanks count=%d doc=%d, want 2/2", p.Count, p.DocCount)
	}
	if !reflect.DeepEqual(p.Rows, []int{0, 2}) {
		t.Fatalf("hanks rows = %v", p.Rows)
	}

	ps = ix.Lookup("terminal")
	if len(ps) != 1 || ps[0].Attr.Column != "title" || ps[0].Count != 2 {
		t.Fatalf("terminal postings = %v", ps)
	}

	// "tom" occurs in actor.name (twice) and movie.title (once).
	ps = ix.Lookup("tom")
	if len(ps) != 2 {
		t.Fatalf("tom postings = %v", ps)
	}
	// Sorted by attr key: actor.name < movie.title.
	if ps[0].Attr.Table != "actor" || ps[0].Count != 2 {
		t.Fatalf("tom posting 0 = %+v", ps[0])
	}
	if ps[1].Attr.Table != "movie" || ps[1].Count != 1 {
		t.Fatalf("tom posting 1 = %+v", ps[1])
	}
}

func TestLookupNormalisesCase(t *testing.T) {
	_, ix := buildTestIndex(t)
	if len(ix.Lookup("HANKS")) != 1 {
		t.Fatal("lookup should be case-insensitive")
	}
	if !ix.Contains("Terminal") {
		t.Fatal("Contains should be case-insensitive")
	}
	if ix.Contains("zzzzz") {
		t.Fatal("Contains(zzzzz) should be false")
	}
}

func TestAttrStatistics(t *testing.T) {
	_, ix := buildTestIndex(t)
	name := AttrRef{Table: "actor", Column: "name"}
	if got := ix.AttrTokens(name); got != 6 {
		t.Fatalf("AttrTokens(name) = %d, want 6", got)
	}
	// tom, hanks, cruise, colin.
	if got := ix.AttrVocabulary(name); got != 4 {
		t.Fatalf("AttrVocabulary(name) = %d, want 4", got)
	}
	if got := ix.AttrDocs(name); got != 3 {
		t.Fatalf("AttrDocs(name) = %d, want 3", got)
	}
	if got := ix.TermCount("tom", name); got != 2 {
		t.Fatalf("TermCount(tom, name) = %d, want 2", got)
	}
	if got := ix.DocCount("tom", name); got != 2 {
		t.Fatalf("DocCount(tom, name) = %d, want 2", got)
	}
	// TotalDocs: 3 names + 3 titles + 3 years.
	if got := ix.TotalDocs(); got != 9 {
		t.Fatalf("TotalDocs = %d, want 9", got)
	}
	// Unknown attribute yields zeros.
	bogus := AttrRef{Table: "x", Column: "y"}
	if ix.AttrTokens(bogus) != 0 || ix.AttrVocabulary(bogus) != 0 || ix.AttrDocs(bogus) != 0 {
		t.Fatal("unknown attr stats should be zero")
	}
}

func TestATF(t *testing.T) {
	_, ix := buildTestIndex(t)
	name := AttrRef{Table: "actor", Column: "name"}
	// count(tom)=2, tokens=6, |V|=4, alpha=1: (2+1)/(6+5) = 3/11.
	if got, want := ix.ATF("tom", name, 1), 3.0/11.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ATF(tom) = %v, want %v", got, want)
	}
	// Unseen term gets the reserved smoothing mass: 1/11.
	if got, want := ix.ATF("zzz", name, 1), 1.0/11.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ATF(zzz) = %v, want %v", got, want)
	}
	// More frequent terms have strictly higher ATF.
	if ix.ATF("tom", name, 1) <= ix.ATF("cruise", name, 1) {
		t.Fatal("ATF must be monotone in term count")
	}
	if ix.ATF("zzz", AttrRef{Table: "no", Column: "no"}, 1) != 0 {
		t.Fatal("ATF over unknown attr should be 0")
	}
}

func TestTFIDF(t *testing.T) {
	_, ix := buildTestIndex(t)
	name := AttrRef{Table: "actor", Column: "name"}
	if got, want := ix.TF("tom", name), 2.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TF = %v, want %v", got, want)
	}
	if ix.TF("tom", AttrRef{Table: "no", Column: "no"}) != 0 {
		t.Fatal("TF over unknown attr should be 0")
	}
	// IDF of a rarer term is higher.
	if ix.IDF("cruise", name) <= ix.IDF("tom", name) {
		t.Fatal("IDF(cruise) should exceed IDF(tom)")
	}
	if ix.IDF("x", AttrRef{Table: "no", Column: "no"}) != 0 {
		t.Fatal("IDF over unknown attr should be 0")
	}
	// GlobalIDF decreases with document frequency.
	if ix.GlobalIDF("zzz") <= ix.GlobalIDF("tom") {
		t.Fatal("GlobalIDF of unseen term should exceed a seen term's")
	}
}

func TestSchemaTermMatching(t *testing.T) {
	_, ix := buildTestIndex(t)
	if got := ix.MatchTables("actor"); !reflect.DeepEqual(got, []string{"actor"}) {
		t.Fatalf("MatchTables(actor) = %v", got)
	}
	if got := ix.MatchTables("ACTOR"); !reflect.DeepEqual(got, []string{"actor"}) {
		t.Fatalf("MatchTables should normalise case, got %v", got)
	}
	if got := ix.MatchTables("ghost"); len(got) != 0 {
		t.Fatalf("MatchTables(ghost) = %v", got)
	}
	cols := ix.MatchColumns("title")
	if len(cols) != 1 || cols[0] != (AttrRef{Table: "movie", Column: "title"}) {
		t.Fatalf("MatchColumns(title) = %v", cols)
	}
	if got := ix.MatchColumns("year"); len(got) != 1 {
		t.Fatalf("MatchColumns(year) = %v", got)
	}
}

func TestCoOccurrence(t *testing.T) {
	_, ix := buildTestIndex(t)
	name := AttrRef{Table: "actor", Column: "name"}
	m, tot := ix.CoOccurrence([]string{"tom", "hanks"}, name)
	if m != 1 || tot != 3 {
		t.Fatalf("CoOccurrence(tom hanks, name) = %d/%d, want 1/3", m, tot)
	}
	m, _ = ix.CoOccurrence([]string{"tom", "cruise"}, name)
	if m != 1 {
		t.Fatalf("CoOccurrence(tom cruise) = %d, want 1", m)
	}
	m, _ = ix.CoOccurrence([]string{"hanks", "cruise"}, name)
	if m != 0 {
		t.Fatalf("CoOccurrence(hanks cruise) = %d, want 0", m)
	}
	m, tot = ix.CoOccurrence(nil, name)
	if m != 0 || tot != 3 {
		t.Fatalf("empty bag co-occurrence = %d/%d", m, tot)
	}
	if m, tot := ix.CoOccurrence([]string{"x"}, AttrRef{Table: "no", Column: "no"}); m != 0 || tot != 0 {
		t.Fatal("unknown attr co-occurrence should be 0/0")
	}
}

func TestAttributes(t *testing.T) {
	_, ix := buildTestIndex(t)
	attrs := ix.Attributes()
	want := []AttrRef{
		{Table: "actor", Column: "name"},
		{Table: "movie", Column: "title"},
		{Table: "movie", Column: "year"},
	}
	if !reflect.DeepEqual(attrs, want) {
		t.Fatalf("Attributes = %v, want %v", attrs, want)
	}
	// Mutating the returned slice must not affect the index.
	attrs[0] = AttrRef{Table: "x", Column: "y"}
	if ix.Attributes()[0] != want[0] {
		t.Fatal("Attributes returned internal slice")
	}
}

// Property: every token of every indexed value can be found via Lookup,
// and its posting's row list includes the row that produced it.
func TestIndexCompleteness(t *testing.T) {
	db, ix := buildTestIndex(t)
	for _, tb := range db.Tables() {
		for ci, col := range tb.Schema.Columns {
			if !col.Indexed {
				continue
			}
			for _, row := range tb.Rows() {
				for _, tok := range relstore.Tokenize(row.Values[ci]) {
					found := false
					for _, p := range ix.Lookup(tok) {
						if p.Attr.Table == tb.Schema.Name && p.Attr.Column == col.Name {
							for _, r := range p.Rows {
								if r == row.RowID {
									found = true
								}
							}
						}
					}
					if !found {
						t.Fatalf("token %q of %s.%s row %d not found in index",
							tok, tb.Schema.Name, col.Name, row.RowID)
					}
				}
			}
		}
	}
}

// Property: ATF with alpha=1 defines a sub-distribution — summing over the
// attribute vocabulary plus one unseen slot yields 1.
func TestATFSumsToOne(t *testing.T) {
	db, ix := buildTestIndex(t)
	name := AttrRef{Table: "actor", Column: "name"}
	terms := map[string]bool{}
	tb := db.Table("actor")
	ci := tb.Schema.ColumnIndex("name")
	for _, row := range tb.Rows() {
		for _, tok := range relstore.Tokenize(row.Values[ci]) {
			terms[tok] = true
		}
	}
	sum := ix.ATF("###unseen###", name, 1) // the reserved unseen slot
	for term := range terms {
		sum += ix.ATF(term, name, 1)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ATF mass sums to %v, want 1", sum)
	}
}

// Property: for arbitrary generated databases, TermCount(tok) equals the
// number of occurrences counted directly, and ATF is monotone in count.
func TestRandomisedIndexAgainstDirectCount(t *testing.T) {
	f := func(values []string) bool {
		db := relstore.NewDatabase("r")
		tb, err := db.CreateTable(&relstore.TableSchema{
			Name:    "t",
			Columns: []relstore.Column{{Name: "v", Indexed: true}},
		})
		if err != nil {
			return false
		}
		direct := map[string]int{}
		for _, v := range values {
			if _, err := tb.Insert(v); err != nil {
				return false
			}
			for _, tok := range relstore.Tokenize(v) {
				direct[tok]++
			}
		}
		ix := Build(db)
		attr := AttrRef{Table: "t", Column: "v"}
		for tok, n := range direct {
			if ix.TermCount(tok, attr) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPhrasePairScore(t *testing.T) {
	db := relstore.NewDatabase("p")
	tb, err := db.CreateTable(&relstore.TableSchema{
		Name:    "t",
		Columns: []relstore.Column{{Name: "v", Indexed: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"tom hanks", "tom hanks", "tom cruise", "the terminal"} {
		if _, err := tb.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ix := Build(db)
	// hanks always co-occurs with tom: score 1 (df(hanks)=2, co=2).
	if got := ix.PhrasePairScore("tom", "hanks"); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PhrasePairScore(tom,hanks) = %v, want 1", got)
	}
	// tom/terminal never co-occur.
	if got := ix.PhrasePairScore("tom", "terminal"); got != 0 {
		t.Fatalf("PhrasePairScore(tom,terminal) = %v, want 0", got)
	}
	// Identical or empty keywords score 0.
	if ix.PhrasePairScore("tom", "tom") != 0 || ix.PhrasePairScore("", "x") != 0 {
		t.Fatal("degenerate pairs should score 0")
	}
	// Symmetric-ish: order may change the base (rarer side), but both
	// directions must be positive for a real phrase.
	if ix.PhrasePairScore("hanks", "tom") <= 0 {
		t.Fatal("reverse direction should be positive")
	}
}
