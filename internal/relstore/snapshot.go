package relstore

import (
	"fmt"
	"maps"
	"sort"

	"repro/internal/durable"
)

// This file implements the storage engine's snapshot codec: a
// deterministic binary encoding of a Database that — unlike the
// rebuild-on-load dump of persist.go — preserves the *physical* table
// state a live mutable engine depends on: every row slot including
// tombstoned ones (RowIDs are never reused, so the slot array's length
// is the RowID high-water mark), the dead set, and optionally the
// per-column token posting lists, so an engine opened from a snapshot
// answers byte-identically to the engine that saved it without
// re-tokenising a single cell.
//
// Determinism: tables are encoded in creation order, rows in RowID
// order, posting terms and index values in sorted order — encoding the
// same database twice yields identical bytes (the byte-stability
// contract snapshot files are diffed and content-addressed by).
//
// Equality indexes (valueIdx) are deliberately not persisted: they are
// token-free to rebuild (one pass over rows, no tokenisation), built
// lazily on first use, and Database.Prepare re-materialises the
// canonical PK/FK set — so persisting them would grow every snapshot
// for a structure that costs microseconds to recover.

// EncodeOptions selects what a database snapshot carries.
type EncodeOptions struct {
	// Physical preserves row slots exactly: tombstoned rows are written
	// (with their values) and marked dead, keeping RowIDs stable. When
	// false, only live rows are written and RowIDs are renumbered
	// densely on decode — the compact "logical dump" of Database.Save.
	Physical bool
	// Postings includes the per-column token posting lists of every
	// indexed column, so decode skips re-tokenising the corpus. Decoders
	// always tolerate their absence (lists rebuild lazily).
	Postings bool
}

// EncodeSnapshot appends the database's snapshot encoding to e.
func (db *Database) EncodeSnapshot(e *durable.Enc, opts EncodeOptions) {
	e.Bool(opts.Physical)
	e.Bool(opts.Postings)
	e.String(db.Name)
	e.Uvarint(uint64(len(db.order)))
	for _, name := range db.order {
		db.tables[name].encodeSnapshot(e, opts)
	}
}

func (t *Table) encodeSnapshot(e *durable.Enc, opts EncodeOptions) {
	s := t.Schema
	e.String(s.Name)
	e.String(s.PrimaryKey)
	e.Uvarint(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		e.String(c.Name)
		e.Bool(c.Indexed)
	}
	e.Uvarint(uint64(len(s.ForeignKeys)))
	for _, fk := range s.ForeignKeys {
		e.String(fk.Column)
		e.String(fk.RefTable)
		e.String(fk.RefColumn)
	}

	if opts.Physical {
		e.Uvarint(uint64(len(t.rows)))
		for _, row := range t.rows {
			for _, v := range row.Values {
				e.String(v)
			}
		}
		var dead []int
		for id := range t.rows {
			if t.dead != nil && t.dead[id] {
				dead = append(dead, id)
			}
		}
		e.Ints(dead)
	} else {
		e.Uvarint(uint64(t.NumLive()))
		for _, row := range t.rows {
			if !t.Live(row.RowID) {
				continue
			}
			for _, v := range row.Values {
				e.String(v)
			}
		}
		e.Ints(nil) // no dead set in a logical dump
	}

	if !opts.Postings {
		e.Uvarint(0)
		return
	}
	// Posting lists of every indexed column, terms sorted. ensurePostings
	// builds any list not yet materialised, so the encoding is complete
	// and identical regardless of which selections ran before the save.
	var indexed []int
	for ci, c := range s.Columns {
		if c.Indexed {
			indexed = append(indexed, ci)
		}
	}
	e.Uvarint(uint64(len(indexed)))
	for _, ci := range indexed {
		cp := t.ensurePostings(ci)
		e.Uvarint(uint64(ci))
		terms := make([]string, 0, len(cp.terms))
		for term := range cp.terms {
			terms = append(terms, term)
		}
		sort.Strings(terms)
		e.Uvarint(uint64(len(terms)))
		for _, term := range terms {
			pl := cp.terms[term]
			e.String(term)
			e.Ints(pl.rows)
			e.Ints(pl.counts)
		}
	}
}

// DecodeSnapshot reconstructs a database from its snapshot encoding,
// validating schemas and referential declarations like the loading
// path does.
func DecodeSnapshot(d *durable.Dec) (*Database, error) {
	physical := d.Bool()
	_ = d.Bool() // postings flag: presence is re-derived per table below
	name := d.String()
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("relstore: decode snapshot: %w", err)
	}
	db := NewDatabase(name)
	for i := 0; i < n; i++ {
		if err := decodeTable(d, db, physical); err != nil {
			return nil, err
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("relstore: decode snapshot: %w", err)
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, fmt.Errorf("relstore: decode snapshot: %w", err)
	}
	return db, nil
}

func decodeTable(d *durable.Dec, db *Database, physical bool) error {
	schema := &TableSchema{Name: d.String(), PrimaryKey: d.String()}
	ncols := int(d.Uvarint())
	for i := 0; i < ncols && d.Err() == nil; i++ {
		schema.Columns = append(schema.Columns, Column{Name: d.String(), Indexed: d.Bool()})
	}
	nfks := int(d.Uvarint())
	for i := 0; i < nfks && d.Err() == nil; i++ {
		schema.ForeignKeys = append(schema.ForeignKeys, ForeignKey{
			Column: d.String(), RefTable: d.String(), RefColumn: d.String(),
		})
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("relstore: decode snapshot: %w", err)
	}
	t, err := db.CreateTable(schema)
	if err != nil {
		return fmt.Errorf("relstore: decode snapshot: %w", err)
	}

	nrows := int(d.Uvarint())
	for id := 0; id < nrows && d.Err() == nil; id++ {
		vals := make([]string, len(schema.Columns))
		for ci := range vals {
			vals[ci] = d.String()
		}
		t.rows = append(t.rows, Tuple{RowID: id, Values: vals})
	}
	dead := d.Ints()
	if err := d.Err(); err != nil {
		return fmt.Errorf("relstore: decode snapshot: table %s: %w", schema.Name, err)
	}
	if len(dead) > 0 {
		if !physical {
			return fmt.Errorf("relstore: decode snapshot: table %s: dead rows in a logical dump", schema.Name)
		}
		t.dead = make([]bool, len(t.rows))
		for _, id := range dead {
			if id < 0 || id >= len(t.rows) || t.dead[id] {
				return fmt.Errorf("relstore: decode snapshot: table %s: invalid dead row %d", schema.Name, id)
			}
			t.dead[id] = true
		}
		t.numDead = len(dead)
	}

	npostCols := int(d.Uvarint())
	for i := 0; i < npostCols && d.Err() == nil; i++ {
		ci := int(d.Uvarint())
		if ci < 0 || ci >= len(schema.Columns) {
			return fmt.Errorf("relstore: decode snapshot: table %s: posting column %d out of range", schema.Name, ci)
		}
		nterms := int(d.Uvarint())
		cp := &columnPostings{terms: make(map[string]*postingList, min(nterms, d.Remaining()))}
		for j := 0; j < nterms && d.Err() == nil; j++ {
			term := d.String()
			pl := &postingList{rows: d.Ints(), counts: d.Ints()}
			if len(pl.rows) != len(pl.counts) {
				return fmt.Errorf("relstore: decode snapshot: table %s: term %q rows/counts mismatch", schema.Name, term)
			}
			for k, row := range pl.rows {
				if row < 0 || row >= len(t.rows) || (k > 0 && row <= pl.rows[k-1]) {
					return fmt.Errorf("relstore: decode snapshot: table %s: term %q has invalid posting rows", schema.Name, term)
				}
				if pl.counts[k] > pl.maxCount {
					pl.maxCount = pl.counts[k]
				}
			}
			cp.terms[term] = pl
		}
		t.postings[ci] = cp
	}
	return d.Err()
}

// CompactTables returns a database in which the named tables have been
// rebuilt without tombstones: live rows are re-inserted in RowID order,
// renumbering them densely from 0, and the per-table indexes rebuild
// from the compacted rows. Untouched tables (and tables with no dead
// rows) are shared with the receiver, which is never modified — the
// rebuild-and-swap primitive of checkpoint-time tombstone compaction.
// Readers of the old database keep a consistent view; the caller
// republishes every derived structure (inverted index, data graph,
// statistics) over the returned database, since RowIDs changed.
func (db *Database) CompactTables(names []string) *Database {
	ndb := &Database{Name: db.Name, tables: maps.Clone(db.tables), order: db.order}
	for _, name := range names {
		t := db.tables[name]
		if t == nil || t.numDead == 0 {
			continue
		}
		nt := NewTable(t.Schema)
		for _, row := range t.rows {
			if !t.Live(row.RowID) {
				continue
			}
			if _, err := nt.Insert(row.Values...); err != nil {
				// Impossible: values came from a row of the same schema.
				panic(fmt.Sprintf("relstore: compact %s: %v", name, err))
			}
		}
		ndb.tables[name] = nt
	}
	return ndb
}

// NumDead returns the number of tombstoned row slots.
func (t *Table) NumDead() int { return t.numDead }

// DeadRatio returns tombstoned slots as a fraction of live rows. A
// table whose rows are all tombstoned reports the tombstone count
// itself (rather than +Inf), which still exceeds any sane threshold.
func (t *Table) DeadRatio() float64 {
	if t.numDead == 0 {
		return 0
	}
	live := t.NumLive()
	if live == 0 {
		return float64(t.numDead)
	}
	return float64(t.numDead) / float64(live)
}
