# Developer entry points. CI runs the same targets, so local and CI
# behaviour cannot drift.

GO ?= go

.PHONY: build test race vet fuzz bench bench-quick bench-exec golden check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fuzz gives every fuzz target a short budget on top of the seed corpus.
fuzz:
	$(GO) test -fuzz FuzzNormalizeKeywords -fuzztime 30s ./internal/query

# bench writes the pipeline benchmark grid to BENCH_pipeline.json and the
# executor legs to BENCH_executor.json — the perf-trajectory artifacts CI
# archives on every run.
bench:
	$(GO) run ./cmd/bench -out BENCH_pipeline.json -exec-out BENCH_executor.json

bench-quick:
	$(GO) run ./cmd/bench -quick -out BENCH_pipeline.json -exec-out BENCH_executor.json

# bench-exec measures only the storage-engine executor legs (scan vs
# posting lists vs selection cache vs allocation-free count).
bench-exec:
	$(GO) run ./cmd/bench -only executor -exec-out BENCH_executor.json

# golden regenerates testdata/golden after an intentional ranking change.
# Plain `make test` fails if golden files drift without this.
golden:
	$(GO) test -run TestGolden . -update

check: vet build race
