// Freebase: ontology-accelerated query construction over a very large
// flat schema (the FreeQ workflow of Chapter 5).
//
// The demo knowledge base has hundreds of entity tables across many
// domains. A keyword occurring in dozens of tables makes attribute-level
// questions useless; class-level questions ("Is «walton» one of these
// kinds of entities?") cut the space exponentially. The example compares
// the two sessions question by question.
//
//	go run ./examples/freebase
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	keysearch "repro"
)

func main() {
	kb, err := keysearch.DemoKnowledgeBase(12, 15, 3)
	if err != nil {
		log.Fatal(err)
	}
	kb.MapGroundTruth()
	eng := kb.Engine
	fmt.Printf("knowledge base: %d tables, %d rows, ontology of %d classes\n\n",
		eng.NumTables(), eng.NumRows(), kb.Ontology.NumClasses())

	ctx := context.Background()
	// Find a keyword occurring in many tables.
	queries := eng.SampleQueries(200)
	best, bestN := "", 0
	for _, q := range queries {
		// K=1: only SpaceSize is needed, so don't wrap the full space.
		rs, err := eng.Search(ctx, keysearch.SearchRequest{Query: q, K: 1})
		if err != nil {
			continue
		}
		if rs.SpaceSize > bestN {
			best, bestN = q, rs.SpaceSize
		}
	}
	if best == "" {
		log.Fatal("no wide keyword found")
	}
	fmt.Printf("keyword query: %q — %d possible interpretations\n", best, bestN)

	// The scripted user's informational need is NOT the most likely
	// reading: pick the lowest-ranked interpretation that lives in a
	// concept table — exactly the case ranking alone cannot serve.
	all, err := eng.Search(ctx, keysearch.SearchRequest{Query: best})
	if err != nil {
		log.Fatal(err)
	}
	intendedTable := ""
	for i := len(all.Results) - 1; i >= 0; i-- {
		if _, ok := kb.Concepts[all.Results[i].Tables[0]]; ok {
			intendedTable = all.Results[i].Tables[0]
			break
		}
	}
	if intendedTable == "" {
		log.Fatal("no concept-table interpretation found")
	}
	fmt.Printf("user's intent: the %s reading (a low-ranked interpretation)\n\n", intendedTable)

	// FreeQ session with ontology questions.
	osess, err := eng.ConstructWithOntology(ctx,
		keysearch.ConstructRequest{Query: best, StopAtRemaining: 1}, kb.Ontology)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ontology-based construction:")
	for !osess.Done() {
		q, ok := osess.Next()
		if !ok {
			break
		}
		accept := false
		for _, t := range q.TargetTables {
			if t == intendedTable {
				accept = true
			}
		}
		kind := "attribute"
		if q.IsClassQuestion {
			kind = "class"
		}
		answer := "no"
		if accept {
			answer = "yes"
		}
		fmt.Printf("  Q%d (%s): %s -> %s (space: %d)\n",
			osess.Steps()+1, kind, q.Text, answer, osess.SpaceSize())
		if accept {
			err = osess.Accept(ctx, q)
		} else {
			err = osess.Reject(ctx, q)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("FreeQ isolated the intent in %d questions\n\n", osess.Steps())

	// Attribute-level (IQP) session for comparison.
	psess, err := kb.ConstructPlain(ctx, keysearch.ConstructRequest{Query: best, StopAtRemaining: 1})
	if err != nil {
		log.Fatal(err)
	}
	for !psess.Done() {
		q, ok := psess.Next()
		if !ok {
			break
		}
		if strings.Contains(q.Text, intendedTable+".") {
			err = psess.Accept(ctx, q)
		} else {
			err = psess.Reject(ctx, q)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("attribute-level construction needed %d questions\n", psess.Steps())
}
