// Ontologymatch: instance-overlap matching of database tables to an
// ontology's classes (the YAGO+F workflow of Chapter 6).
//
// The demo knowledge base's database and ontology share entity instances
// (as Freebase and YAGO share Wikipedia entities). The matcher assigns
// every table to the class covering most of its instances; the example
// sweeps the acceptance threshold and evaluates precision and recall
// against the generator's gold mapping, then uses the matched ontology
// for query construction.
//
//	go run ./examples/ontologymatch
package main

import (
	"context"
	"fmt"
	"log"

	keysearch "repro"
)

func main() {
	kb, err := keysearch.DemoKnowledgeBase(8, 12, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d tables; ontology: %d classes; %d tables carry instances\n\n",
		kb.Engine.NumTables(), kb.Ontology.NumClasses(), len(kb.Instances))

	// Sweep the match threshold (the Figure 6.4 experiment in miniature).
	fmt.Println("threshold  matched  correct  precision  recall")
	for _, th := range []float64{0.2, 0.4, 0.6, 0.8} {
		matches := kb.Ontology.MatchTables(kb.Instances, th)
		correct := 0
		for _, m := range matches {
			if m.Class == "wordnet_"+kb.Concepts[m.Table] {
				correct++
			}
		}
		precision := 0.0
		if len(matches) > 0 {
			precision = float64(correct) / float64(len(matches))
		}
		recall := float64(correct) / float64(len(kb.Concepts))
		fmt.Printf("   %.2f      %4d     %4d      %.3f     %.3f\n",
			th, len(matches), correct, precision, recall)
	}

	// Build YAGO+F: apply the matching at a balanced threshold and show
	// a few example matches.
	matches := kb.Ontology.MatchTables(kb.Instances, 0.5)
	if err := kb.Ontology.ApplyMatches(matches); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexample matches (YAGO+F):")
	for i, m := range matches {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(matches)-5)
			break
		}
		fmt.Printf("  %-22s -> %-28s (score %.2f)\n", m.Table, m.Class, m.Score)
	}

	// The matched ontology immediately powers class-level construction.
	ctx := context.Background()
	queries := kb.Engine.SampleQueries(50)
	for _, q := range queries {
		sess, err := kb.Engine.ConstructWithOntology(ctx,
			keysearch.ConstructRequest{Query: q, StopAtRemaining: 3}, kb.Ontology)
		if err != nil {
			continue
		}
		question, ok := sess.Next()
		if !ok || !question.IsClassQuestion {
			continue
		}
		fmt.Printf("\nconstruction over the matched ontology, query %q:\n", q)
		fmt.Printf("  first question: %s (covers %d tables)\n",
			question.Text, len(question.TargetTables))
		return
	}
}
