// Package qcache is the engine-lifetime materialized answer cache: the
// qunits idea ("Qunits: queried units in database search") applied to
// this engine's execution layer. The per-request SelectionCache forgets
// everything when the response is written; qcache promotes the units it
// computed — keyword-bag selections, whole candidate-network results,
// and non-empty-result counts — into a shared, byte-budgeted store so a
// hot query pays the posting-intersection and semi-join cost once, not
// once per request.
//
// # Admission and eviction
//
// What got asked for is the hotness signal, so admission is 2Q-style:
// a first Put only records the key in a ghost "seen" map (bounded, two
// rotating generations) and is rejected; a key is admitted once it has
// been requested again while still remembered. Resident entries live in
// a segmented LRU — new entries enter a probation segment, a hit
// promotes to a protected segment capped at a fraction of the budget —
// and eviction walks probation-then-protected from the cold end.
// Victims are chosen cost-aware: each entry carries the publishing
// request's EstimateCost price, and a candidate victim whose
// cost×uses/bytes density beats the newcomer's blocks admission instead
// of being evicted, so one giant cold selection cannot push out a
// thousand cheap hot ones.
//
// # Snapshot-coupled correctness
//
// The store owns a monotone clock. Every mutation batch calls
// Invalidate(stale, publish): under the store mutex the clock is
// bumped, each stale attribute records the bump, entries whose
// footprint intersects the batch are deleted, and only then — still
// inside the critical section — the engine's snapshot pointer is
// swapped by the publish callback. Readers do the reverse: a View
// captures the clock BEFORE the request loads the snapshot pointer, and
// the store serves or accepts an entry only while every footprint
// attribute's last bump is ≤ the view's clock. This ordering makes both
// hazards impossible: a reader on the old snapshot cannot be served an
// entry published for the new one (the bump is visible to its validity
// check), and a slow request cannot publish a result computed from a
// pre-batch snapshot after the batch lands (its Put fails the same
// check). Races only ever cause over-rejection — a miss, never a wrong
// answer. Checkpoint compaction rewrites RowIDs at an unchanged epoch;
// it invalidates through the same path with every attribute of the
// compacted tables, which is why validity is clock-based rather than
// epoch-stamped.
package qcache

import (
	"sync"

	"repro/internal/relstore"
)

// Entry kinds, also the persisted discriminator bytes.
const (
	kindSelection byte = 's'
	kindPlan      byte = 'p'
	kindCount     byte = 'c'
)

const (
	// minSeen is the number of observations (Put attempts) a key needs
	// before it is admitted: the first records it in the ghost map, the
	// second admits. "Requested twice" is the cheapest robust hotness
	// signal a query log gives.
	minSeen = 2
	// ghostGenCap bounds one generation of the ghost seen-map; two
	// generations rotate, so at most 2×ghostGenCap keys are remembered
	// and memory stays bounded without any clock.
	ghostGenCap = 8192
	// protectedShare is the protected segment's share of the byte
	// budget, in percent. The remainder is probation headroom, so a
	// burst of new entries churns probation instead of the proven set.
	protectedShare = 80
	// entryOverhead approximates the per-entry bookkeeping bytes
	// (struct, map slots, key string headers) charged on top of the
	// payload so the budget reflects real memory, not just row IDs.
	entryOverhead = 128
)

type entryKey struct {
	kind byte
	key  string
}

type entry struct {
	k         entryKey
	footprint []relstore.Attr

	rows  []int   // kindSelection payload
	plan  [][]int // kindPlan payload (per-JTT row assignments)
	count int     // kindCount payload

	bytes int64
	cost  float64 // publishing request's EstimateCost price
	uses  uint64  // hits since admission (admission itself counts as use 1)

	protected  bool
	prev, next *entry // intrusive LRU list, nil-terminated
}

// score is the eviction density: what the entry saves per resident byte.
// uses is floored at 1 so a just-admitted entry competes with its
// admission evidence rather than with zero.
func (e *entry) score() float64 {
	u := e.uses
	if u == 0 {
		u = 1
	}
	return e.cost * float64(u) / float64(e.bytes)
}

// lruList is an intrusive doubly-linked list, head = MRU, tail = LRU.
type lruList struct {
	head, tail *entry
}

func (l *lruList) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	BudgetBytes    int64
	ResidentBytes  int64
	HighWaterBytes int64
	Entries        int

	Hits             uint64
	Misses           uint64
	Evictions        uint64
	Invalidations    uint64
	StalePutRejects  uint64
	AdmissionRejects uint64
}

// Store is the engine-lifetime answer cache. One Store serves one
// Engine; all methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	budget int64

	entries map[entryKey]*entry
	// byAttr indexes resident entries by footprint attribute, so a
	// mutation batch deletes exactly the intersecting entries without a
	// full scan.
	byAttr map[relstore.Attr]map[*entry]struct{}

	// clock counts invalidation events; lastBump records, per attribute,
	// the clock at which it was last invalidated. Views validate against
	// these (see package comment).
	clock    uint64
	lastBump map[relstore.Attr]uint64

	probation, protected lruList
	protectedBytes       int64

	// ghost admission state: seen-counts in two rotating generations.
	seenCur, seenPrev map[entryKey]uint8

	resident  int64
	highWater int64

	hits, misses, evictions, invalidations uint64
	stalePutRejects, admissionRejects      uint64
}

// New creates a store with the given byte budget. The budget covers
// payload plus per-entry overhead; it must be positive.
func New(budgetBytes int64) *Store {
	return &Store{
		budget:   budgetBytes,
		entries:  make(map[entryKey]*entry),
		byAttr:   make(map[relstore.Attr]map[*entry]struct{}),
		lastBump: make(map[relstore.Attr]uint64),
		seenCur:  make(map[entryKey]uint8),
		seenPrev: make(map[entryKey]uint8),
	}
}

// Budget returns the configured byte budget.
func (s *Store) Budget() int64 { return s.budget }

// Stats returns a consistent snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		BudgetBytes:      s.budget,
		ResidentBytes:    s.resident,
		HighWaterBytes:   s.highWater,
		Entries:          len(s.entries),
		Hits:             s.hits,
		Misses:           s.misses,
		Evictions:        s.evictions,
		Invalidations:    s.invalidations,
		StalePutRejects:  s.stalePutRejects,
		AdmissionRejects: s.admissionRejects,
	}
}

// Invalidate applies one mutation batch to the cache and publishes the
// batch's snapshot, atomically with respect to every cache operation:
// the clock bump, the per-attribute bump records, the deletion of
// intersecting entries, and the publish callback (the engine's snapshot
// pointer swap) all happen inside one critical section. Callers must
// pass every attribute the batch changed (relstore.ChangedAttrs, or
// relstore.AllTableAttrs for compaction) and must perform the pointer
// swap only inside publish. publish may be nil when there is no pointer
// to swap (tests).
func (s *Store) Invalidate(stale []relstore.Attr, publish func()) {
	s.mu.Lock()
	s.clock++
	for _, a := range stale {
		s.lastBump[a] = s.clock
		for e := range s.byAttr[a] {
			s.removeLocked(e)
			s.invalidations++
		}
	}
	if publish != nil {
		publish()
	}
	s.mu.Unlock()
}

// removeLocked unlinks an entry from the map, the attr index, and its
// LRU segment, and returns its bytes to the budget.
func (s *Store) removeLocked(e *entry) {
	delete(s.entries, e.k)
	for _, a := range e.footprint {
		if set := s.byAttr[a]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(s.byAttr, a)
			}
		}
	}
	if e.protected {
		s.protected.remove(e)
		s.protectedBytes -= e.bytes
	} else {
		s.probation.remove(e)
	}
	s.resident -= e.bytes
}

// View is one request's handle on the store: the clock captured before
// the request loaded its snapshot, plus the request's EstimateCost
// price used for every entry it publishes. A View implements
// relstore.SharedStore. Views are cheap; create one per request.
type View struct {
	s     *Store
	clock uint64
	price float64
}

// NewView captures the current clock for a request about to load the
// engine snapshot. ORDER MATTERS: the caller must create the view
// first and load the snapshot pointer after — that is what guarantees
// the view's validity checks are conservative (see package comment).
func (s *Store) NewView(price int64) *View {
	s.mu.Lock()
	c := s.clock
	s.mu.Unlock()
	p := float64(price)
	if p < 1 {
		p = 1
	}
	return &View{s: s, clock: c, price: p}
}

// validLocked reports whether a footprint is unbumped since the view's
// clock capture.
func (v *View) validLocked(footprint []relstore.Attr) bool {
	for _, a := range footprint {
		if v.s.lastBump[a] > v.clock {
			return false
		}
	}
	return true
}

// getLocked is the shared hit path: validity check, hit/miss counting,
// and segmented-LRU promotion.
func (v *View) getLocked(k entryKey) (*entry, bool) {
	s := v.s
	e, ok := s.entries[k]
	if !ok || !v.validLocked(e.footprint) {
		s.misses++
		return nil, false
	}
	e.uses++
	s.hits++
	if e.protected {
		s.protected.remove(e)
		s.protected.pushFront(e)
	} else {
		s.probation.remove(e)
		e.protected = true
		s.protected.pushFront(e)
		s.protectedBytes += e.bytes
		// Keep the protected segment within its share by demoting from
		// its cold end; demoted entries get another chance in probation.
		limit := s.budget * protectedShare / 100
		for s.protectedBytes > limit && s.protected.tail != nil && s.protected.tail != e {
			d := s.protected.tail
			s.protected.remove(d)
			d.protected = false
			s.protectedBytes -= d.bytes
			s.probation.pushFront(d)
		}
	}
	return e, true
}

// putLocked is the shared publish path: stale-put rejection, ghost
// admission, cost-aware eviction, and probation insert. The entry's
// payload fields and bytes must be set by the caller; putLocked fills
// the bookkeeping.
func (v *View) putLocked(e *entry) {
	s := v.s
	if _, exists := s.entries[e.k]; exists {
		return // racing publisher won; both computed the same value
	}
	if !v.validLocked(e.footprint) {
		s.stalePutRejects++
		return
	}
	if e.bytes > s.budget {
		s.admissionRejects++
		return
	}
	// Ghost admission: remember the key, admit from minSeen observations.
	seen := int(s.seenCur[e.k]) + int(s.seenPrev[e.k]) + 1
	if seen < minSeen {
		if len(s.seenCur) >= ghostGenCap {
			s.seenPrev = s.seenCur
			s.seenCur = make(map[entryKey]uint8, ghostGenCap)
		}
		if s.seenCur[e.k] < 0xff {
			s.seenCur[e.k]++
		}
		s.admissionRejects++
		return
	}
	// Cost-aware eviction: collect victims cold-end first (probation,
	// then protected). If any needed victim is denser than the
	// newcomer, keep the residents and reject the newcomer instead.
	if s.resident+e.bytes > s.budget {
		need := s.resident + e.bytes - s.budget
		newScore := e.score()
		var victims []*entry
		for _, seg := range []*lruList{&s.probation, &s.protected} {
			for c := seg.tail; c != nil && need > 0; c = c.prev {
				if c.score() > newScore {
					s.admissionRejects++
					return
				}
				victims = append(victims, c)
				need -= c.bytes
			}
		}
		if need > 0 {
			// Budget cannot fit the entry even emptied (overhead drift);
			// treat as oversized.
			s.admissionRejects++
			return
		}
		for _, c := range victims {
			s.removeLocked(c)
			s.evictions++
		}
	}
	delete(s.seenCur, e.k)
	delete(s.seenPrev, e.k)
	e.uses = 1
	s.entries[e.k] = e
	for _, a := range e.footprint {
		set := s.byAttr[a]
		if set == nil {
			set = make(map[*entry]struct{})
			s.byAttr[a] = set
		}
		set[e] = struct{}{}
	}
	s.probation.pushFront(e)
	s.resident += e.bytes
	if s.resident > s.highWater {
		s.highWater = s.resident
	}
}

func selectionEntryKey(table string, col int, bag string) entryKey {
	return entryKey{kind: kindSelection, key: table + "\x01" + itoa(col) + "\x01" + bag}
}

// GetSelection implements relstore.SharedStore.
func (v *View) GetSelection(table string, col int, bag string) ([]int, bool) {
	k := selectionEntryKey(table, col, bag)
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	e, ok := v.getLocked(k)
	if !ok {
		return nil, false
	}
	return e.rows, true
}

// PutSelection implements relstore.SharedStore. The footprint is the
// selection attribute itself: the rows depend only on that column's
// values (or, for the membership pseudo-column, on the live-row set).
func (v *View) PutSelection(table string, col int, bag string, rows []int) {
	e := &entry{
		k:         selectionEntryKey(table, col, bag),
		footprint: []relstore.Attr{{Table: table, Col: col}},
		rows:      rows,
		bytes:     entryOverhead + int64(len(bag)) + 8*int64(len(rows)),
		cost:      v.price,
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.putLocked(e)
}

// GetPlan implements relstore.SharedStore.
func (v *View) GetPlan(key string) ([][]int, bool) {
	k := entryKey{kind: kindPlan, key: key}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	e, ok := v.getLocked(k)
	if !ok {
		return nil, false
	}
	return e.plan, true
}

// PutPlan implements relstore.SharedStore.
func (v *View) PutPlan(key string, footprint []relstore.Attr, rows [][]int) {
	bytes := entryOverhead + int64(len(key))
	for _, r := range rows {
		bytes += 24 + 8*int64(len(r))
	}
	e := &entry{
		k:         entryKey{kind: kindPlan, key: key},
		footprint: footprint,
		plan:      rows,
		bytes:     bytes,
		cost:      v.price,
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.putLocked(e)
}

// GetCount implements relstore.SharedStore.
func (v *View) GetCount(key string) (int, bool) {
	k := entryKey{kind: kindCount, key: key}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	e, ok := v.getLocked(k)
	if !ok {
		return 0, false
	}
	return e.count, true
}

// PutCount implements relstore.SharedStore.
func (v *View) PutCount(key string, footprint []relstore.Attr, n int) {
	e := &entry{
		k:         entryKey{kind: kindCount, key: key},
		footprint: footprint,
		count:     n,
		bytes:     entryOverhead + int64(len(key)),
		cost:      v.price,
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.putLocked(e)
}

// itoa is strconv.Itoa without the import weight in the hot key path.
func itoa(v int) string {
	if v == relstore.MembershipCol {
		return "*"
	}
	if v >= 0 && v < 10 {
		return string(rune('0' + v))
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
