// Package benchload measures the serving path under load: it stands up
// the real HTTP server (repro/httpapi) over a generated million-row
// dataset, discovers the saturation throughput with a closed-loop
// concurrency ramp, replays an open-loop (coordinated-omission-honest)
// leg below the knee, and then oversubscribes an admission-gated server
// eightfold to measure what overload protection preserves.
//
// The machine-transferable column is goodput_vs_saturation: the ratio
// of goodput under 8× oversubscription (with the gate set at the
// measured saturation concurrency) to the saturation goodput itself.
// On a server whose admission control works, the ratio stays near 1 —
// excess load is shed at the door and the accepted requests proceed at
// full speed; without protection it collapses as every request queues
// behind an unbounded backlog. Like the other bench ratios (scan vs
// postings, rebuild vs apply), it is measured within one run on one
// machine, so it transfers across hosts and CI runners where raw
// req/s numbers do not.
package benchload

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/httpapi"
	"repro/internal/loadgen"
)

// Config sizes the load measurement.
type Config struct {
	// TargetRows is the generated dataset size (default 1,000,000;
	// quick mode 25,000).
	TargetRows int
	// Seed fixes dataset and workload generation (default 42).
	Seed int64
	// StepDuration is the length of each saturation-ramp step and half
	// the length of the overload leg (default 5s; quick 700ms).
	StepDuration time.Duration
	// MaxWorkers bounds the saturation ramp (default 128; quick 16).
	MaxWorkers int
	// Quick selects the CI-sized variant of all defaults.
	Quick bool
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TargetRows <= 0 {
		if c.Quick {
			c.TargetRows = 25000
		} else {
			c.TargetRows = 1000000
		}
	}
	if c.StepDuration <= 0 {
		if c.Quick {
			c.StepDuration = 700 * time.Millisecond
		} else {
			c.StepDuration = 5 * time.Second
		}
	}
	if c.MaxWorkers <= 0 {
		if c.Quick {
			c.MaxWorkers = 16
		} else {
			c.MaxWorkers = 128
		}
	}
}

// Row is one measured leg of BENCH_load.json.
type Row struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	TargetRPS     float64 `json:"target_rps,omitempty"`
	Requests      int64   `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
	Shed429       int64   `json:"shed_429,omitempty"`
	Shed503       int64   `json:"shed_503,omitempty"`
	Deadline504   int64   `json:"deadline_504,omitempty"`
	Errors        int64   `json:"errors,omitempty"`
	// GoodputVsSaturation is the transferable guard column, set on the
	// overload leg only: goodput under 8× oversubscription divided by
	// the saturation goodput. ≈1 when shedding protects the server.
	GoodputVsSaturation float64 `json:"goodput_vs_saturation,omitempty"`
}

// Report is the top-level shape of BENCH_load.json (wrapped with host
// metadata by cmd/bench).
type Report struct {
	Dataset       string  `json:"dataset"`
	DatasetRows   int     `json:"dataset_rows"`
	WorkloadOps   int     `json:"workload_ops"`
	SaturationRPS float64 `json:"saturation_rps"`
	AtWorkers     int     `json:"saturation_workers"`
	// Overload records the admission posture of the overload leg and
	// the server-side counters after it ran, proving the queue bound
	// held ("no unbounded queue growth").
	Overload OverloadStats `json:"overload"`
	Rows     []Row         `json:"rows"`
}

// OverloadStats is the server-side view after the overload leg.
type OverloadStats struct {
	MaxConcurrent    int   `json:"max_concurrent"`
	MaxQueue         int   `json:"max_queue"`
	MaxQueuedSeen    int64 `json:"max_queued_seen"`
	MaxInFlightSeen  int64 `json:"max_in_flight_seen"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

func row(name string, r *loadgen.Result) Row {
	return Row{
		Name:          name,
		Mode:          r.Mode,
		Workers:       r.Workers,
		TargetRPS:     r.TargetRPS,
		Requests:      r.Requests,
		ThroughputRPS: r.ThroughputRPS,
		GoodputRPS:    r.GoodputRPS,
		P50MS:         r.P50MS,
		P95MS:         r.P95MS,
		P99MS:         r.P99MS,
		MaxMS:         r.MaxMS,
		Shed429:       r.Shed429,
		Shed503:       r.Shed503,
		Deadline504:   r.Deadline504,
		Errors:        r.Errors,
	}
}

// Measure runs the full load grid. Progress lines go through logf (may
// be nil) because the full-size run takes minutes: dataset build alone
// is ~5s at a million rows, and each ramp step runs StepDuration.
func Measure(cfg Config, logf func(format string, args ...any)) (*Report, error) {
	cfg.defaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("building %d-row movies dataset (seed %d)...", cfg.TargetRows, cfg.Seed)
	dcfg := loadgen.DatasetConfig{Kind: loadgen.KindMovies, TargetRows: cfg.TargetRows, Seed: cfg.Seed}
	db, err := loadgen.BuildDataset(dcfg)
	if err != nil {
		return nil, err
	}
	rows := db.NumRows()
	logf("dataset ready: %d rows; building engine (indexes, templates)...", rows)
	eng, err := loadgen.BuildEngine(dcfg)
	if err != nil {
		return nil, err
	}
	ops, err := loadgen.BuildWorkload(db, dcfg.Kind, loadgen.WorkloadConfig{Ops: 512, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Dataset:     fmt.Sprintf("datagen movies target=%d seed=%d", cfg.TargetRows, cfg.Seed),
		DatasetRows: rows,
		WorkloadOps: len(ops),
	}
	ctx := context.Background()

	// Leg 1: saturation discovery on the ungated server.
	ts := httptest.NewServer(httpapi.New(eng))
	logf("saturation ramp: doubling workers up to %d, %v per step...", cfg.MaxWorkers, cfg.StepDuration)
	sat, err := loadgen.FindSaturation(ctx, loadgen.SaturationOptions{
		Base:         loadgen.Options{BaseURL: ts.URL, Ops: ops},
		MaxWorkers:   cfg.MaxWorkers,
		StepDuration: cfg.StepDuration,
	})
	if err != nil {
		ts.Close()
		return nil, err
	}
	for _, step := range sat.Steps {
		logf("  %s", step)
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("saturate-w%d", step.Workers), step))
	}
	rep.SaturationRPS = sat.SaturationRPS
	rep.AtWorkers = sat.AtWorkers
	logf("saturation: %.0f req/s at %d workers", sat.SaturationRPS, sat.AtWorkers)

	// Leg 2: open-loop at half the knee — the honest steady-state tail,
	// with latencies measured from scheduled arrivals.
	halfRate := sat.SaturationRPS / 2
	if halfRate < 1 {
		halfRate = 1
	}
	open, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:  ts.URL,
		Ops:      ops,
		Workers:  cfg.MaxWorkers,
		RateRPS:  halfRate,
		Duration: 2 * cfg.StepDuration,
	})
	ts.Close()
	if err != nil {
		return nil, err
	}
	logf("  %s", open)
	rep.Rows = append(rep.Rows, row("open-half-knee", open))

	// Leg 3: overload. Gate the server at the measured knee, then
	// oversubscribe it 8×: goodput should hold near saturation while
	// the excess is shed at the door.
	mc := sat.AtWorkers
	if mc < 2 {
		mc = 2
	}
	acfg := httpapi.AdmissionConfig{
		MaxConcurrent: mc,
		MaxQueue:      2 * mc,
		QueueTimeout:  200 * time.Millisecond,
	}
	gated := httptest.NewServer(httpapi.New(eng,
		httpapi.WithAdmission(acfg),
		httpapi.WithRequestTimeout(5*time.Second),
	))
	defer gated.Close()
	logf("overload: gate at %d slots + %d queue, driving %d workers...", mc, 2*mc, 8*mc)
	over, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:  gated.URL,
		Ops:      ops,
		Workers:  8 * mc,
		Duration: 2 * cfg.StepDuration,
	})
	if err != nil {
		return nil, err
	}
	logf("  %s", over)
	orow := row("overload-8x", over)
	if sat.SaturationRPS > 0 {
		orow.GoodputVsSaturation = over.GoodputRPS / sat.SaturationRPS
	}
	rep.Rows = append(rep.Rows, orow)

	// Server-side proof of the queue bound.
	health, err := fetchHealth(gated.URL)
	if err != nil {
		return nil, err
	}
	rep.Overload = OverloadStats{
		MaxConcurrent:    acfg.MaxConcurrent,
		MaxQueue:         acfg.MaxQueue,
		MaxQueuedSeen:    health.Admission.MaxQueued,
		MaxInFlightSeen:  health.Admission.MaxInFlight,
		ShedQueueFull:    health.Admission.ShedQueueFull,
		ShedQueueTimeout: health.Admission.ShedQueueTimeout,
		DeadlineExceeded: health.Admission.DeadlineExceeded,
	}
	if health.Admission.MaxQueued > int64(acfg.MaxQueue) {
		return nil, fmt.Errorf("benchload: queue grew past its bound (%d > %d)",
			health.Admission.MaxQueued, acfg.MaxQueue)
	}
	logf("overload server-side: maxQueued %d (bound %d), shed %d+%d",
		health.Admission.MaxQueued, acfg.MaxQueue,
		health.Admission.ShedQueueFull, health.Admission.ShedQueueTimeout)
	return rep, nil
}

func fetchHealth(base string) (*httpapi.HealthResponse, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h httpapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}
