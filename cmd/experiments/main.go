// Command experiments regenerates every table and figure of the thesis's
// evaluation sections as text output (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for the recorded shapes).
//
// Usage:
//
//	go run ./cmd/experiments            # run everything at default scale
//	go run ./cmd/experiments -run fig3.5,table3.2
//	go run ./cmd/experiments -full      # headline scale (slower)
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/internal/expt"
)

var (
	runFlag = flag.String("run", "", "comma-separated experiment ids (e.g. fig3.5,table6.3); empty = all")
	full    = flag.Bool("full", false, "run at headline scale (slower)")
	seed    = flag.Int64("seed", 1, "master seed")
)

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			want[id] = true
		}
	}
	all := len(want) == 0
	sel := func(id string) bool { return all || want[id] }

	scale := expt.Small
	queries := 40
	simReps := 5
	if *full {
		scale = expt.Full
		queries = 100
		simReps = 20
	}

	movie, err := expt.NewMovieEnv(scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	music, err := expt.NewMusicEnv(scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	movieIntents := datagen.MovieWorkload(movie.DB, datagen.WorkloadConfig{
		Queries: queries, MultiConceptFraction: 0.7, Seed: *seed + 1,
	})
	musicIntents := datagen.MusicWorkload(music.DB, datagen.WorkloadConfig{
		Queries: queries * 3 / 4, MultiConceptFraction: 0.6, Seed: *seed + 2,
	})

	// ---- Chapter 3 ----
	if sel("table3.1") {
		_, table, err := expt.Table3_1(movie, movieIntents, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}
	if sel("fig3.5") {
		for _, cfg := range []struct {
			env     *expt.Env
			intents []datagen.Intent
			skew    float64
		}{{movie, movieIntents, 0.2}, {music, musicIntents, 0.85}} {
			res, err := expt.Fig3_5(cfg.env, cfg.intents, cfg.skew, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res.Table)
		}
	}
	if sel("fig3.6") {
		for _, cfg := range []struct {
			env     *expt.Env
			intents []datagen.Intent
		}{{movie, movieIntents}, {music, musicIntents}} {
			res, err := expt.Fig3_6(cfg.env, cfg.intents)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res.Table)
		}
	}
	if sel("fig3.7") {
		_, table, err := expt.Fig3_7(movie, movieIntents)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}
	if sel("table3.2") {
		sizes := []int{5, 10, 20, 40, 80}
		if !*full {
			sizes = []int{5, 10, 20, 40}
		}
		_, table, err := expt.Table3_2(sizes, []int{10, 20, 30}, 3, simReps, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}
	if sel("table3.3") {
		counts := []int{2, 4, 6, 8, 10}
		if !*full {
			counts = []int{2, 4, 6}
		}
		_, table, err := expt.Table3_3(counts, []int{10, 20, 30}, 10, simReps, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}
	if sel("table3.4") {
		_, table, err := expt.Table3_4(
			[][2]int{{8, 4}, {12, 6}, {16, 8}, {20, 10}, {24, 12}}, 20, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}

	// ---- Chapter 4 ----
	var ambMovie, ambMusic []datagen.Intent
	if sel("table4.1") || sel("fig4.1") || sel("fig4.2") || sel("fig4.3") || sel("fig4.4") || sel("ablation") {
		ambMovie, err = expt.PickAmbiguousIntents(movie, movieIntents, 25)
		if err != nil {
			log.Fatal(err)
		}
		ambMusic, err = expt.PickAmbiguousIntents(music, musicIntents, 25)
		if err != nil {
			log.Fatal(err)
		}
	}
	if sel("table4.1") && len(ambMovie) > 0 {
		table, err := expt.Table4_1(movie, ambMovie[0], 0.1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}
	if sel("fig4.1") {
		for _, cfg := range []struct {
			env *expt.Env
			in  []datagen.Intent
		}{{movie, ambMovie}, {music, ambMusic}} {
			res, err := expt.Fig4_1(cfg.env, cfg.in, 25)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res.Table)
		}
	}
	if sel("fig4.2") {
		for _, cfg := range []struct {
			env *expt.Env
			in  []datagen.Intent
		}{{movie, ambMovie}, {music, ambMusic}} {
			_, table, err := expt.Fig4_2(cfg.env, cfg.in, []float64{0, 0.5, 0.99}, 6, 0.1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(table)
		}
	}
	if sel("fig4.3") {
		for _, cfg := range []struct {
			env *expt.Env
			in  []datagen.Intent
		}{{movie, ambMovie}, {music, ambMusic}} {
			_, table, err := expt.Fig4_3(cfg.env, cfg.in, 6, 0.1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(table)
		}
	}
	if sel("fig4.4") {
		_, table, err := expt.Fig4_4(movie, ambMovie,
			[]float64{1.0, 0.75, 0.5, 0.25, 0.0}, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}

	// ---- Chapter 5 ----
	needFB := sel("table5.1") || sel("table5.2") || sel("table5.3") ||
		sel("fig5.4") || sel("fig5.5") || sel("table6.1") || sel("table6.2") ||
		sel("fig6.2") || sel("fig6.3") || sel("table6.3") || sel("fig6.4") || sel("ablation")
	var fbEnv *expt.FreebaseEnv
	var fbIntents []expt.FreebaseIntent
	if needFB {
		domains, tables := 20, 20
		if *full {
			domains, tables = 350, 20 // 350×(20+1) = 7,350 tables
		}
		fbEnv, err = expt.NewFreebaseEnv(domains, tables, *seed+3)
		if err != nil {
			log.Fatal(err)
		}
		fbQueries := queries
		if *full {
			// The attribute-level IQP arm costs thousands of interactions
			// per query at 7,000+ tables (the point of Figure 5.4); bound
			// the workload so the comparison completes in minutes.
			fbQueries = 30
		}
		fbIntents = expt.FreebaseWorkload(fbEnv, fbQueries, *seed+4)
	}
	if sel("table5.1") {
		for _, in := range fbIntents {
			table, err := expt.Table5_1(fbEnv, in)
			if err == nil {
				fmt.Println(table)
				break
			}
		}
	}
	if sel("table5.2") {
		_, table := expt.Table5_2(fbEnv, fbIntents)
		fmt.Println(table)
	}
	if sel("table5.3") {
		_, table := expt.Table5_3(fbEnv, []datagen.YAGOConfig{
			{BackboneDepth: 2, BackboneBranch: 2, Seed: *seed},
			{BackboneDepth: 3, BackboneBranch: 3, Seed: *seed},
			{BackboneDepth: 4, BackboneBranch: 3, Seed: *seed},
			{BackboneDepth: 5, BackboneBranch: 4, Seed: *seed},
		})
		fmt.Println(table)
	}
	if sel("fig5.2") {
		domainCounts := []int{5, 10, 20, 40}
		if *full {
			domainCounts = []int{5, 20, 80, 350}
		}
		_, table, err := expt.Fig5_2(domainCounts, 20, 10, *seed+5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(table)
	}
	if sel("fig5.4") || sel("fig5.5") {
		_, _, t54, t55, err := expt.Fig5_4_5(fbEnv, fbIntents)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t54)
		fmt.Println(t55)
	}

	// ---- Chapter 6 ----
	if sel("table6.1") {
		fmt.Println(expt.Table6_1(fbEnv))
	}
	if sel("table6.2") {
		fmt.Println(expt.Table6_2(fbEnv))
	}
	if sel("fig6.2") {
		_, table := expt.Fig6_2(fbEnv)
		fmt.Println(table)
	}
	if sel("fig6.3") || sel("table6.3") {
		ms, table := expt.Fig6_3(fbEnv, 0.5, 10)
		fmt.Println(table)
		if sel("table6.3") {
			_, t63 := expt.Table6_3(fbEnv, ms)
			fmt.Println(t63)
		}
	}
	if sel("fig6.4") {
		_, table := expt.Fig6_4(fbEnv, []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95})
		fmt.Println(table)
	}

	// ---- Ablations ----
	if sel("ablation") {
		t1, err := expt.AblationOptionPolicy(movie, ambMovie)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t1)
		t2, err := expt.AblationSmoothing(movie, ambMovie, []float64{0.25, 0.5, 1, 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t2)
		t3, err := expt.AblationThreshold(movie, ambMovie, []int{10, 20, 30})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t3)
		t4, err := expt.AblationDivqEarlyStop(movie, ambMovie, 5, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t4)
		t5, err := expt.AblationOntologyFanout(fbEnv, fbIntents[:min(20, len(fbIntents))], []int{2, 3, 5}, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t5)
		t6, err := expt.AblationDataVsSchema(movie, ambMovie)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t6)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
