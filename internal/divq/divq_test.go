package divq

import (
	"math"
	"testing"

	"repro/internal/invindex"
	"repro/internal/metrics"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

type fixture struct {
	db    *relstore.Database
	ix    *invindex.Index
	cat   *query.Catalog
	model *prob.Model
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	director := must(&relstore.TableSchema{
		Name:       "director",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "plot", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	directs := must(&relstore.TableSchema{
		Name:    "directs",
		Columns: []relstore.Column{{Name: "director_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "director_id", RefTable: "director", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	// The Table 4.1 scenario: "guest" is a director, an actor, and occurs
	// in a plot; "consideration" is a movie title.
	ins(director, "d1", "Christopher Guest")
	ins(actor, "a1", "Christopher Guest")
	ins(actor, "a2", "Tom Hanks")
	ins(movie, "m1", "Consideration", "a film by christopher guest")
	ins(movie, "m2", "The Terminal", "an airport story")
	ins(acts, "a1", "m1")
	ins(acts, "a2", "m2")
	ins(directs, "d1", "m1")
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 3})
	model := prob.New(ix, cat, prob.Config{UseCoOccurrence: true})
	return &fixture{db: db, ix: ix, cat: cat, model: model}
}

func (f *fixture) ranked(t *testing.T, keywords ...string) []prob.Scored {
	t.Helper()
	c := query.GenerateCandidates(f.ix, keywords, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	ranked := f.model.Rank(space)
	nonEmpty, err := FilterNonEmpty(f.db, ranked)
	if err != nil {
		t.Fatal(err)
	}
	return nonEmpty
}

func TestSimilarity(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	if len(ranked) < 2 {
		t.Fatalf("need ≥2 interpretations, got %d", len(ranked))
	}
	for _, s := range ranked {
		if got := Similarity(s.Q, s.Q); math.Abs(got-1) > 1e-12 {
			t.Fatalf("self-similarity = %v", got)
		}
	}
	// Symmetric and within [0,1].
	for i := 0; i < len(ranked); i++ {
		for j := 0; j < len(ranked); j++ {
			sij := Similarity(ranked[i].Q, ranked[j].Q)
			sji := Similarity(ranked[j].Q, ranked[i].Q)
			if math.Abs(sij-sji) > 1e-12 {
				t.Fatal("similarity not symmetric")
			}
			if sij < 0 || sij > 1 {
				t.Fatalf("similarity out of range: %v", sij)
			}
		}
	}
}

func TestSimilarityDisjointAndOverlapping(t *testing.T) {
	ki := func(pos int, kw, table, col string) query.KeywordInterpretation {
		return query.KeywordInterpretation{Pos: pos, Keyword: kw, Kind: query.KindValue,
			Attr: invindex.AttrRef{Table: table, Column: col}}
	}
	qa := query.NewInterpretation([]string{"a", "b"}, nil, []query.Binding{
		{KI: ki(0, "a", "actor", "name")}, {KI: ki(1, "b", "movie", "title")},
	})
	qb := query.NewInterpretation([]string{"a", "b"}, nil, []query.Binding{
		{KI: ki(0, "a", "actor", "name")}, {KI: ki(1, "b", "movie", "plot")},
	})
	qc := query.NewInterpretation([]string{"a", "b"}, nil, []query.Binding{
		{KI: ki(0, "a", "director", "name")}, {KI: ki(1, "b", "movie", "plot")},
	})
	// qa vs qb share 1 of 3 distinct elements.
	if got := Similarity(qa, qb); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("Similarity(qa,qb) = %v, want 1/3", got)
	}
	// qa vs qc share none.
	if got := Similarity(qa, qc); got != 0 {
		t.Fatalf("Similarity(qa,qc) = %v, want 0", got)
	}
}

func TestDiversifyFirstIsMostRelevant(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "consideration", "christopher", "guest")
	div := Diversify(ranked, Config{Lambda: 0.1, K: 3})
	if len(div) == 0 {
		t.Fatal("empty diversification")
	}
	if div[0].Q.Key() != ranked[0].Q.Key() {
		t.Fatal("first diversified item must be the most relevant interpretation")
	}
}

func TestDiversifyReducesSimilarity(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	if len(ranked) < 3 {
		t.Skipf("need ≥3 interpretations, got %d", len(ranked))
	}
	k := 3
	div := Diversify(ranked, Config{Lambda: 0.1, K: k})
	avgSim := func(list []prob.Scored) float64 {
		s, n := 0.0, 0
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				s += Similarity(list[i].Q, list[j].Q)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	if avgSim(div) > avgSim(ranked[:k])+1e-9 {
		t.Fatalf("diversification did not reduce redundancy: %v vs %v",
			avgSim(div), avgSim(ranked[:k]))
	}
}

func TestDiversifyLambdaOneKeepsRanking(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	div := Diversify(ranked, Config{Lambda: 1, K: len(ranked)})
	if len(div) != len(ranked) {
		t.Fatalf("length changed: %d vs %d", len(div), len(ranked))
	}
	for i := range div {
		if div[i].Q.Key() != ranked[i].Q.Key() {
			t.Fatalf("λ=1 must preserve relevance order at %d", i)
		}
	}
}

func TestDiversifyRelevanceNoveltyTradeoff(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	if len(ranked) < 3 {
		t.Skip("not enough interpretations")
	}
	k := minInt(4, len(ranked))
	rel := func(list []prob.Scored) float64 {
		s := 0.0
		for _, x := range list {
			s += x.Prob
		}
		return s
	}
	hi := Diversify(ranked, Config{Lambda: 1.0, K: k})
	lo := Diversify(ranked, Config{Lambda: 0.0, K: k})
	// Figure 4.4: lowering λ must not increase aggregate relevance.
	if rel(lo) > rel(hi)+1e-9 {
		t.Fatalf("λ=0 relevance %v exceeds λ=1 relevance %v", rel(lo), rel(hi))
	}
}

func TestDiversifyBoundsK(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "guest")
	div := Diversify(ranked, Config{Lambda: 0.5, K: 1000})
	if len(div) != len(ranked) {
		t.Fatalf("K beyond list should clamp: %d vs %d", len(div), len(ranked))
	}
	if Diversify(nil, Config{Lambda: 0.5, K: 3}) != nil {
		t.Fatal("empty input should yield nil")
	}
	// No duplicates in the output.
	seen := map[string]bool{}
	for _, s := range div {
		if seen[s.Q.Key()] {
			t.Fatal("duplicate interpretation in diversified list")
		}
		seen[s.Q.Key()] = true
	}
}

func TestResultNuggets(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "guest")
	for _, s := range ranked {
		nuggets, err := ResultNuggets(f.db, s.Q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(nuggets) == 0 {
			t.Fatalf("non-empty interpretation returned no nuggets: %v", s.Q)
		}
	}
	// Limit caps the result size.
	n1, err := ResultNuggets(f.db, ranked[0].Q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(n1) > ranked[0].Q.Template.Size() {
		t.Fatalf("limit=1 should produce at most one JTT's nuggets, got %d", len(n1))
	}
}

func TestFilterNonEmpty(t *testing.T) {
	f := newFixture(t)
	c := query.GenerateCandidates(f.ix, []string{"christopher", "terminal"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	ranked := f.model.Rank(space)
	nonEmpty, err := FilterNonEmpty(f.db, ranked)
	if err != nil {
		t.Fatal(err)
	}
	// "christopher terminal" joins are empty (Guest is not in Terminal),
	// so the filter must remove some interpretations.
	if len(nonEmpty) >= len(ranked) {
		t.Fatalf("filter removed nothing: %d vs %d", len(nonEmpty), len(ranked))
	}
	for _, s := range nonEmpty {
		ok, err := HasResults(f.db, s.Q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("empty interpretation survived the filter")
		}
	}
}

func TestToItems(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "guest")
	items, err := ToItems(f.db, ranked, func(q *query.Interpretation) float64 { return 0.5 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(ranked) {
		t.Fatalf("items = %d", len(items))
	}
	for _, it := range items {
		if it.Relevance != 0.5 || len(it.Nuggets) == 0 {
			t.Fatalf("bad item: %+v", it)
		}
	}
	// The items feed the adapted metrics.
	ws := metrics.WSRecall(items, items)
	if len(ws) == 0 || ws[len(ws)-1] <= 0 {
		t.Fatal("WS-recall over items degenerate")
	}
}

func TestProbabilityRatio(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	pr := ProbabilityRatio(ranked)
	if len(pr) != len(ranked) {
		t.Fatalf("PR length = %d", len(pr))
	}
	if pr[0] != 1 {
		t.Fatalf("PR[0] = %v", pr[0])
	}
	// Figure 4.1: the ratio decays — later ranks carry a vanishing share.
	for i := 2; i < len(pr); i++ {
		if pr[i] > 1 {
			t.Fatalf("PR[%d] = %v > 1 over a descending ranking", i, pr[i])
		}
	}
}

// TestDiversificationBeatsRankingOnAlphaNDCGW reproduces the headline
// Figure 4.2 effect in miniature: with α close to 1 and redundant top
// interpretations, the diversified order scores at least as high as the
// relevance order on α-nDCG-W.
func TestDiversificationBeatsRankingOnAlphaNDCGW(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	if len(ranked) < 3 {
		t.Skip("not enough interpretations")
	}
	rel := func(q *query.Interpretation) float64 {
		// Simulated assessments: probability as graded relevance.
		for _, s := range ranked {
			if s.Q.Key() == q.Key() {
				return s.Prob
			}
		}
		return 0
	}
	k := minInt(4, len(ranked))
	div := Diversify(ranked, Config{Lambda: 0.1, K: k})
	rankedItems, err := ToItems(f.db, ranked[:k], rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	divItems, err := ToItems(f.db, div, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	universe, err := ToItems(f.db, ranked, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	ideal := metrics.IdealOrder(universe)
	aR := metrics.AlphaNDCGW(rankedItems, ideal, 0.99)
	aD := metrics.AlphaNDCGW(divItems, ideal, 0.99)
	// The thesis observes parity when the top interpretations are already
	// distinct (Section 4.6.3, IMDB single-concept), so diversification
	// must preserve the gain within a small tolerance and never collapse.
	if aD[k-1] < aR[k-1]-0.02 {
		t.Fatalf("diversification under-performed at α=0.99: %v vs %v", aD[k-1], aR[k-1])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: Diversify is a permutation of a prefix-selection — its output
// has no duplicates, every element comes from the input, and the output
// is independent of duplicate-free input ordering beyond the probability
// sort contract.
func TestDiversifyIsSelection(t *testing.T) {
	f := newFixture(t)
	ranked := f.ranked(t, "christopher", "guest")
	for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
		div := Diversify(ranked, Config{Lambda: lambda, K: len(ranked)})
		if len(div) != len(ranked) {
			t.Fatalf("λ=%v: diversification dropped items: %d vs %d",
				lambda, len(div), len(ranked))
		}
		seen := map[string]bool{}
		inInput := map[string]bool{}
		for _, s := range ranked {
			inInput[s.Q.Key()] = true
		}
		for _, s := range div {
			k := s.Q.Key()
			if seen[k] {
				t.Fatalf("λ=%v: duplicate %s", lambda, k)
			}
			seen[k] = true
			if !inInput[k] {
				t.Fatalf("λ=%v: foreign element %s", lambda, k)
			}
		}
	}
}

// Property: early stopping never changes the output (exhaustive over the
// fixture's queries and λ values).
func TestDiversifyEarlyStopEquivalence(t *testing.T) {
	f := newFixture(t)
	for _, kws := range [][]string{{"guest"}, {"christopher", "guest"}, {"consideration", "christopher", "guest"}} {
		ranked := f.ranked(t, kws...)
		for _, lambda := range []float64{0, 0.1, 0.5, 0.9, 1} {
			for k := 1; k <= len(ranked); k++ {
				a := Diversify(ranked, Config{Lambda: lambda, K: k})
				b := Diversify(ranked, Config{Lambda: lambda, K: k, DisableEarlyStop: true})
				if len(a) != len(b) {
					t.Fatalf("k=%d λ=%v: lengths differ", k, lambda)
				}
				for i := range a {
					if a[i].Q.Key() != b[i].Q.Key() {
						t.Fatalf("k=%d λ=%v: early stop changed element %d", k, lambda, i)
					}
				}
			}
		}
	}
}

func TestFilterNonEmptyParallelEquivalence(t *testing.T) {
	f := newFixture(t)
	for _, kws := range [][]string{{"guest"}, {"christopher", "guest"}, {"christopher", "terminal"}} {
		c := query.GenerateCandidates(f.ix, kws, query.GenerateOptionsConfig{})
		space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
		ranked := f.model.Rank(space)
		seq, err := FilterNonEmpty(f.db, ranked)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			par, err := FilterNonEmptyParallel(f.db, ranked, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(seq) {
				t.Fatalf("workers=%d: lengths differ: %d vs %d", workers, len(par), len(seq))
			}
			for i := range par {
				if par[i].Q.Key() != seq[i].Q.Key() {
					t.Fatalf("workers=%d: order changed at %d", workers, i)
				}
			}
		}
	}
}
