package keysearch

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/relstore"
)

// MutationOp is the kind of one row mutation.
type MutationOp string

// The mutation kinds accepted by Engine.Apply.
const (
	OpInsert MutationOp = "insert"
	OpUpdate MutationOp = "update"
	OpDelete MutationOp = "delete"
)

// Mutation is one row change of an Apply batch. The same DTO drives the
// library API and POST /v1/mutate.
//
// Insert carries the full value list (positionally aligned with the
// table's columns). Update and Delete address the row by its primary-key
// value (Key), which must match exactly one live row; Update carries the
// full replacement value list.
type Mutation struct {
	Op     MutationOp `json:"op"`
	Table  string     `json:"table"`
	Key    string     `json:"key,omitempty"`
	Values []string   `json:"values,omitempty"`
}

// ApplyResult reports a committed mutation batch.
type ApplyResult struct {
	// Epoch is the snapshot epoch the batch committed as; it increases by
	// one per batch and is exposed on /healthz for observability.
	Epoch uint64 `json:"epoch"`
	// Applied is the number of mutations in the batch.
	Applied int `json:"applied"`
}

// ErrMutationsDisabled is returned by Apply on an engine built without
// WithMutations.
var ErrMutationsDisabled = errors.New("keysearch: mutations are disabled; create the engine with WithMutations")

// MutationsEnabled reports whether the engine accepts Apply batches.
func (e *Engine) MutationsEnabled() bool { return e.cfg.mutable }

// Epoch returns the current snapshot epoch: 0 for the freshly built
// engine, incremented by every committed Apply batch.
func (e *Engine) Epoch() uint64 {
	if s := e.current(); s != nil {
		return s.epoch
	}
	return 0
}

// Apply atomically applies a mutation batch to the engine while it
// serves traffic.
//
// The batch is validated and applied in order against the current
// snapshot (later mutations see earlier ones, so one batch may insert a
// row and then update or delete it by key). On any validation error —
// unknown op or table, wrong value count, a key matching zero or
// several live rows, or an insert/re-keying update that would duplicate
// a live primary key — the whole batch is rejected and the engine is
// unchanged.
//
// Incremental maintenance: the relational store's posting lists and
// equality indexes, the inverted index's postings / per-attribute
// statistics / term dictionary, the ranking model's corpus statistics,
// and (when materialised) the data graph are all patched copy-on-write —
// only structures the changed cell values touch are re-derived, and the
// memoised score cache carries every entry of unaffected attributes
// over. The result is indistinguishable from rebuilding the engine over
// the post-batch rows (the differential tests enforce byte-identical
// search responses), at a cost proportional to the change, not the
// database.
//
// Isolation: the new snapshot is published with a single atomic pointer
// swap. Requests in flight keep reading the snapshot they pinned on
// entry — a reader can never observe half a batch — and requests
// arriving after Apply returns see the whole batch. Construction
// sessions keep the snapshot they started on. Writers are serialised;
// readers never block.
//
// Durability: on an engine with WithDurability, the batch is appended
// to the write-ahead log — fsynced by default — before the snapshot
// swap, so every batch Apply acknowledged survives a crash and is
// replayed by Open. A batch whose log append fails is not published.
func (e *Engine) Apply(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	if !e.built {
		return nil, fmt.Errorf("keysearch: call Build before applying mutations")
	}
	if !e.cfg.mutable {
		return nil, ErrMutationsDisabled
	}
	if len(muts) == 0 {
		return nil, fmt.Errorf("keysearch: empty mutation batch")
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	prev := e.current()
	next, changes, stale, err := e.nextSnapshot(muts)
	if err != nil {
		return nil, err
	}
	if e.dur != nil {
		if err := e.dur.logBatch(next.epoch, muts); err != nil {
			return nil, fmt.Errorf("keysearch: write-ahead log: %w", err)
		}
	}
	e.publish(next, stale)
	if e.dur != nil {
		e.dur.noteBatch(e.cfg.checkpointBatches)
	}
	if e.applyObserver != nil {
		e.applyObserver(prev, next, changes)
	}
	return &ApplyResult{Epoch: next.epoch, Applied: len(muts)}, nil
}

// nextSnapshot validates the batch against the current snapshot and
// builds its successor copy-on-write, without publishing it. Alongside
// the successor it returns the batch's physical change log (which a
// sharded coordinator partitions per shard) and its answer-cache
// invalidation set (nil when the cache is off) for the publish step.
// Callers hold applyMu (or, during Open's replay, have exclusive
// access).
func (e *Engine) nextSnapshot(muts []Mutation) (*snapshot, []relstore.RowChange, []relstore.Attr, error) {
	cur := e.current()
	rmuts := make([]relstore.Mutation, len(muts))
	for i, m := range muts {
		rmuts[i] = relstore.Mutation{Op: relstore.Op(m.Op), Table: m.Table, Key: m.Key, Values: m.Values}
	}
	ndb, changes, err := cur.db.Apply(rmuts)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("keysearch: %w", err)
	}
	nix := cur.ix.Apply(ndb, changes)
	model := e.newModel(nix, cur.cat)
	model.InheritCache(cur.model, staleAttrs(ndb, changes))

	next := &snapshot{
		epoch: cur.epoch + 1,
		db:    ndb,
		ix:    nix,
		graph: cur.graph, // schema never changes: shared
		cat:   cur.cat,
		model: model,
	}
	if g := cur.dg.Load(); g != nil {
		// The previous snapshot had materialised its data graph: maintain
		// it incrementally so SearchTrees stays warm across mutations.
		next.dg.Store(g.Apply(ndb, changes))
	}
	var stale []relstore.Attr
	if e.qc != nil {
		stale = relstore.ChangedAttrs(ndb, changes)
	}
	return next, changes, stale, nil
}

// staleAttrs collects the "table.column" attributes whose statistics a
// change log touches — the invalidation set of the memoised score cache.
// An attribute is stale when a row appeared or disappeared (its document
// count changed even if the cell value is empty) or an update changed
// its cell value.
func staleAttrs(db *relstore.Database, changes []relstore.RowChange) map[string]bool {
	stale := make(map[string]bool)
	for _, ch := range changes {
		t := db.Table(ch.Table)
		if t == nil {
			continue
		}
		for ci, col := range t.Schema.Columns {
			if !col.Indexed {
				continue
			}
			if ch.Old != nil && ch.New != nil && ch.Old[ci] == ch.New[ci] {
				continue
			}
			stale[ch.Table+"."+col.Name] = true
		}
	}
	return stale
}
