// Package expt implements the experiment harness: one function per table
// and figure of the thesis's evaluation sections, each returning a
// printable Table plus the structured numbers the benchmarks and tests
// assert on. DESIGN.md's per-experiment index maps every function here to
// the thesis artefact it regenerates; EXPERIMENTS.md records the measured
// shapes against the paper's.
package expt

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
