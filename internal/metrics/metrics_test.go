package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAlphaNDCGWZeroAlphaIsNDCG(t *testing.T) {
	ranked := []Item{
		{Relevance: 0.5, Nuggets: []string{"a"}},
		{Relevance: 0.9, Nuggets: []string{"a"}},
	}
	ideal := IdealOrder(ranked)
	a0 := AlphaNDCGW(ranked, ideal, 0)
	nd := NDCG(ranked, ideal)
	for k := range a0 {
		if !approx(a0[k], nd[k]) {
			t.Fatalf("alpha=0 must equal NDCG at k=%d: %v vs %v", k, a0[k], nd[k])
		}
	}
}

func TestAlphaNDCGWPerfectRanking(t *testing.T) {
	items := []Item{
		{Relevance: 1.0, Nuggets: []string{"a"}},
		{Relevance: 0.5, Nuggets: []string{"b"}},
		{Relevance: 0.2, Nuggets: []string{"c"}},
	}
	got := AlphaNDCGW(items, IdealOrder(items), 0.5)
	for k, v := range got {
		if !approx(v, 1) {
			t.Fatalf("perfect distinct ranking must score 1 at k=%d, got %v", k, v)
		}
	}
}

func TestAlphaNDCGWPenalisesOverlap(t *testing.T) {
	// Two orderings of the same items; the second item of "redundant"
	// returns the same nugget as the first.
	redundant := []Item{
		{Relevance: 1.0, Nuggets: []string{"a"}},
		{Relevance: 0.9, Nuggets: []string{"a"}},
		{Relevance: 0.8, Nuggets: []string{"b"}},
	}
	diverse := []Item{
		{Relevance: 1.0, Nuggets: []string{"a"}},
		{Relevance: 0.8, Nuggets: []string{"b"}},
		{Relevance: 0.9, Nuggets: []string{"a"}},
	}
	// Compare raw cumulative discounted gains: the normalised values can
	// both saturate at 1 because the relevance-ordered ideal is itself
	// redundant under high alpha.
	r := cumulativeDiscountedGain(redundant, 0.99)
	d := cumulativeDiscountedGain(diverse, 0.99)
	if d[1] <= r[1] {
		t.Fatalf("diverse ordering must win at k=2 under high alpha: %v vs %v", d[1], r[1])
	}
	// And the normalised values stay within [0,1].
	for _, v := range AlphaNDCGW(diverse, IdealOrder(redundant), 0.99) {
		if v < 0 || v > 1 {
			t.Fatalf("normalised value out of range: %v", v)
		}
	}
}

func TestAlphaNDCGWMultiCountOverlap(t *testing.T) {
	// An item whose nuggets were seen twice before is discounted twice.
	ranked := []Item{
		{Relevance: 1, Nuggets: []string{"a"}},
		{Relevance: 1, Nuggets: []string{"a"}},
		{Relevance: 1, Nuggets: []string{"a"}},
	}
	g := gains(ranked, 0.5)
	if !approx(g[0], 1) || !approx(g[1], 0.5) || !approx(g[2], 0.25) {
		t.Fatalf("gains = %v, want [1 0.5 0.25]", g)
	}
	// Duplicate nuggets within one item count once.
	ranked2 := []Item{
		{Relevance: 1, Nuggets: []string{"a", "a"}},
		{Relevance: 1, Nuggets: []string{"a"}},
	}
	g2 := gains(ranked2, 0.5)
	if !approx(g2[1], 0.5) {
		t.Fatalf("duplicate nugget in one item should count once: %v", g2)
	}
}

func TestAlphaNDCGWBounds(t *testing.T) {
	f := func(rels []float64) bool {
		items := make([]Item, 0, len(rels))
		for i, r := range rels {
			r = math.Abs(r)
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 1
			}
			items = append(items, Item{
				Relevance: r / (1 + r), // bounded graded relevance in [0,1)
				Nuggets:   []string{string(rune('a' + i%5))},
			})
		}
		for _, alpha := range []float64{0, 0.5, 0.99} {
			for _, v := range AlphaNDCGW(items, IdealOrder(items), alpha) {
				if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWSRecall(t *testing.T) {
	universe := []Item{
		{Relevance: 1.0, Nuggets: []string{"a", "b"}},
		{Relevance: 0.5, Nuggets: []string{"b", "c"}},
		{Relevance: 0.2, Nuggets: []string{"d"}},
	}
	// Nugget relevances: a=1, b=1 (max), c=0.5, d=0.2; total=2.7.
	ranked := []Item{universe[0], universe[2]}
	ws := WSRecall(ranked, universe)
	if !approx(ws[0], 2.0/2.7) {
		t.Fatalf("WS@1 = %v, want %v", ws[0], 2.0/2.7)
	}
	if !approx(ws[1], 2.2/2.7) {
		t.Fatalf("WS@2 = %v, want %v", ws[1], 2.2/2.7)
	}
}

func TestWSRecallMonotone(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a deterministic pseudo-random universe from the seed.
		n := int(seed%7) + 2
		universe := make([]Item, n)
		for i := range universe {
			universe[i] = Item{
				Relevance: float64((int(seed)+i*13)%10) / 10,
				Nuggets:   []string{string(rune('a' + (i*int(seed+1))%6))},
			}
		}
		ws := WSRecall(universe, universe)
		for k := 1; k < len(ws); k++ {
			if ws[k] < ws[k-1]-1e-12 {
				return false
			}
		}
		return len(ws) == 0 || ws[len(ws)-1] <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWSRecallReducesToSRecall(t *testing.T) {
	// With binary relevance 1, WS-recall equals S-recall (Section 4.5.2).
	universe := []Item{
		{Relevance: 1, Nuggets: []string{"a"}},
		{Relevance: 1, Nuggets: []string{"b", "c"}},
		{Relevance: 1, Nuggets: []string{"c"}},
	}
	ws := WSRecall(universe, universe)
	s := SRecall(universe, universe)
	for k := range ws {
		if !approx(ws[k], s[k]) {
			t.Fatalf("binary WS-recall != S-recall at k=%d: %v vs %v", k, ws[k], s[k])
		}
	}
}

func TestSRecall(t *testing.T) {
	universe := []Item{
		{Relevance: 1, Nuggets: []string{"a"}},
		{Relevance: 1, Nuggets: []string{"b"}},
	}
	ranked := []Item{universe[0]}
	s := SRecall(ranked, universe)
	if !approx(s[0], 0.5) {
		t.Fatalf("S@1 = %v", s[0])
	}
	// Unknown nuggets in ranked items are ignored.
	s = SRecall([]Item{{Nuggets: []string{"zzz"}}}, universe)
	if !approx(s[0], 0) {
		t.Fatalf("unknown nugget contributed: %v", s[0])
	}
}

func TestNuggetRelevance(t *testing.T) {
	universe := []Item{
		{Relevance: 0.3, Nuggets: []string{"a"}},
		{Relevance: 0.9, Nuggets: []string{"a", "b"}},
	}
	rel := NuggetRelevance(universe)
	if !approx(rel["a"], 0.9) || !approx(rel["b"], 0.9) {
		t.Fatalf("NuggetRelevance = %v", rel)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || !approx(s.Median, 3) || !approx(s.Mean, 3) || s.N != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !approx(s.Q1, 2) || !approx(s.Q3, 4) {
		t.Fatalf("quartiles = %v %v", s.Q1, s.Q3)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("empty Summarize = %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || !approx(one.Median, 7) {
		t.Fatalf("singleton Summarize = %+v", one)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if !approx(Percentile(s, 25), 2.5) {
		t.Fatalf("P25 = %v", Percentile(s, 25))
	}
	if !approx(Percentile(s, 0), 0) || !approx(Percentile(s, 100), 10) {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if !approx(Median(in), 2) {
		t.Fatalf("Median = %v", Median(in))
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
}

func TestCohenKappa(t *testing.T) {
	// Perfect agreement.
	k, err := CohenKappa([]int{1, 0, 1, 0}, []int{1, 0, 1, 0})
	if err != nil || !approx(k, 1) {
		t.Fatalf("perfect kappa = %v, %v", k, err)
	}
	// Independent-looking judgements give kappa near 0.
	k, err = CohenKappa([]int{1, 1, 0, 0}, []int{1, 0, 1, 0})
	if err != nil || !approx(k, 0) {
		t.Fatalf("independent kappa = %v, %v", k, err)
	}
	// Length mismatch and empty errors.
	if _, err := CohenKappa([]int{1}, []int{1, 0}); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if _, err := CohenKappa(nil, nil); err == nil {
		t.Fatal("empty vectors not reported")
	}
}

func TestPairedTTest(t *testing.T) {
	// Clearly different paired samples.
	x := []float64{1.1, 1.2, 1.3, 1.15, 1.25, 1.2, 1.18, 1.22}
	y := []float64{1.0, 1.0, 1.05, 1.0, 1.02, 1.01, 1.0, 1.03}
	tt, sig, err := PairedTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !sig || tt <= 0 {
		t.Fatalf("expected significant positive difference, t=%v sig=%v", tt, sig)
	}
	// Identical samples: no difference.
	tt, sig, err = PairedTTest(x, x)
	if err != nil || sig || tt != 0 {
		t.Fatalf("identical samples: t=%v sig=%v err=%v", tt, sig, err)
	}
	// Errors.
	if _, _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Fatal("n<2 not reported")
	}
	if _, _, err := PairedTTest([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch not reported")
	}
	// Constant nonzero difference: infinite t, significant.
	tt, sig, err = PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3})
	if err != nil || !sig || !math.IsInf(tt, 1) {
		t.Fatalf("constant diff: t=%v sig=%v err=%v", tt, sig, err)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical95(1) != 12.706 {
		t.Fatal("df=1 critical wrong")
	}
	// Untabulated df falls back to nearest larger tabulated value.
	v := tCritical95(22)
	if v != 2.060 {
		t.Fatalf("df=22 critical = %v, want 2.060 (df=25 row)", v)
	}
	if tCritical95(1000) != 1.960 {
		t.Fatalf("huge df should use normal approx, got %v", tCritical95(1000))
	}
}

func TestIdealOrderStable(t *testing.T) {
	items := []Item{
		{Relevance: 0.5, Nuggets: []string{"a"}},
		{Relevance: 0.5, Nuggets: []string{"b"}},
		{Relevance: 0.9, Nuggets: []string{"c"}},
	}
	ideal := IdealOrder(items)
	if ideal[0].Nuggets[0] != "c" || ideal[1].Nuggets[0] != "a" || ideal[2].Nuggets[0] != "b" {
		t.Fatalf("IdealOrder = %v", ideal)
	}
	// Input untouched.
	if items[0].Relevance != 0.5 || items[2].Relevance != 0.9 {
		t.Fatal("IdealOrder mutated input")
	}
}
