package benchadm

import (
	"testing"
	"time"
)

// TestMeasureQuick runs the whole admission grid at toy scale: every
// leg executes, the report is shaped right, the guard column is
// present, and the governor actually ran its control loop — not that
// the numbers mean anything at this size.
func TestMeasureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("admission grid takes a few seconds")
	}
	// 60k rows, not the 4k other quick tests use: queries must cost
	// real milliseconds for closed-loop clients to ever overlap (and so
	// for the gates to engage) on a small or single-CPU machine.
	rep, err := Measure(Config{
		Quick:        true,
		TargetRows:   60000,
		StepDuration: 300 * time.Millisecond,
		MaxWorkers:   4,
		Window:       150 * time.Millisecond,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetRows == 0 || rep.WorkloadOps == 0 {
		t.Fatalf("report missing dataset shape: %+v", rep)
	}
	if rep.SaturationRPS <= 0 || rep.AtWorkers < 1 {
		t.Fatalf("no saturation point: %+v", rep)
	}
	var sawStatic, sawAdaptive, sawUngated bool
	for _, r := range rep.Rows {
		if r.Requests == 0 {
			t.Fatalf("row %s measured nothing", r.Name)
		}
		switch r.Name {
		case "static-knee-8x":
			sawStatic = true
			if r.Shed429+r.Shed503 == 0 {
				t.Fatalf("static overload leg shed nothing: %+v", r)
			}
		case "adaptive-8x":
			sawAdaptive = true
			if r.GoodputVsStaticKnee <= 0 {
				t.Fatalf("adaptive leg missing the guard column: %+v", r)
			}
		case "ungated-8x":
			sawUngated = true
		}
	}
	if !sawStatic || !sawAdaptive || !sawUngated {
		t.Fatalf("missing legs (static=%v adaptive=%v ungated=%v): %+v",
			sawStatic, sawAdaptive, sawUngated, rep.Rows)
	}
	g := rep.Governor
	if g.Windows == 0 {
		t.Fatalf("governor control loop never rotated a window: %+v", g)
	}
	if g.Limit < g.MinLimit || g.Limit > g.MaxLimit {
		t.Fatalf("governor limit %d escaped [%d,%d]", g.Limit, g.MinLimit, g.MaxLimit)
	}
	if len(g.Bands) < 2 {
		t.Fatalf("governor derived no cost bands: %+v", g)
	}
}
