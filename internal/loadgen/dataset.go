// Package loadgen is the load-generation subsystem: it stands up
// million-row datagen datasets behind the real HTTP serving path and
// drives them with a mixed workload — search, diversification, row
// retrieval, sessionized construction, and live mutations — in either
// closed-loop (fixed worker count, each waits for its response) or
// open-loop (fixed arrival rate, latency measured from the scheduled
// arrival so coordinated omission cannot hide server stalls) mode.
// Per-worker HDR-style latency histograms (repro/internal/metrics) are
// merged into p50/p95/p99 summaries per request kind, and a saturation
// search ramps closed-loop concurrency until goodput stops improving.
//
// The package exists to answer the question the paper's user studies
// never had to ask: what does probability-ranked keyword search cost to
// *serve*, at data scales where a single Zipf-common surname pair fans
// out into seconds of join work — and does the admission gate
// (repro/httpapi) actually hold the tail when it does.
package loadgen

import (
	"fmt"

	keysearch "repro"
	"repro/internal/datagen"
	"repro/internal/relstore"
)

// DatasetKind selects which datagen schema the dataset is built on.
type DatasetKind string

const (
	// KindMovies is the IMDB-style 7-table schema (join paths ≤ 4).
	KindMovies DatasetKind = "movies"
	// KindMusic is the Lyrics-style 5-table chain schema (join paths 5).
	KindMusic DatasetKind = "music"
)

// DatasetConfig sizes a generated dataset. TargetRows is the total row
// count to aim for across all tables; the builder scales the schema's
// entity counts to land close to it (within a few percent — the exact
// count is reported back). The same (Kind, TargetRows, Seed) triple
// always produces byte-identical data.
type DatasetConfig struct {
	Kind       DatasetKind
	TargetRows int
	Seed       int64
}

// Rows-per-entity ratios of the two schemas with their default fan-out:
// an IMDB movie contributes itself, ~3 cast rows, a directs row and a
// produced_by row, plus its share of the actor/director/company
// entities; a Lyrics artist contributes itself, 2 albums + links and 10
// songs + links.
const (
	rowsPerMovie  = 7
	rowsPerArtist = 25
)

// BuildDataset generates the relational database for cfg.
func BuildDataset(cfg DatasetConfig) (*relstore.Database, error) {
	if cfg.TargetRows <= 0 {
		cfg.TargetRows = 10000
	}
	switch cfg.Kind {
	case KindMusic:
		return datagen.Lyrics(datagen.LyricsConfig{
			Artists: max(1, cfg.TargetRows/rowsPerArtist),
			Seed:    cfg.Seed,
		})
	case KindMovies, "":
		movies := max(1, cfg.TargetRows/rowsPerMovie)
		return datagen.IMDB(datagen.IMDBConfig{
			Movies:    movies,
			Actors:    max(1, movies*3/4),
			Directors: max(1, movies/5),
			Companies: max(1, movies/10),
			Seed:      cfg.Seed,
		})
	default:
		return nil, fmt.Errorf("loadgen: unknown dataset kind %q", cfg.Kind)
	}
}

// BuildEngine generates the dataset for cfg and builds a ready mutable
// engine over it with the schema's default options plus extra. The
// engine accepts /v1/mutate batches (the workload mixes mutations in),
// and its indexes are fully built before this returns, so serving
// latency never includes build work.
func BuildEngine(cfg DatasetConfig, extra ...keysearch.Option) (*keysearch.Engine, error) {
	db, err := BuildDataset(cfg)
	if err != nil {
		return nil, err
	}
	maxPath := 4
	if cfg.Kind == KindMusic {
		maxPath = 5 // the chain schema needs the full five-table join
	}
	opts := append([]keysearch.Option{
		keysearch.WithMaxJoinPath(maxPath),
		keysearch.WithCoOccurrence(),
		keysearch.WithMutations(),
	}, extra...)
	return keysearch.NewFromDatabase(db, opts...)
}
