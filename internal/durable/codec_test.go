package durable

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.Uvarint(0)
	e.Uvarint(1<<63 + 17)
	e.Int(-42)
	e.Int(math.MaxInt64 >> 1)
	e.Bool(true)
	e.Bool(false)
	e.Byte(0xAB)
	e.Float(3.14159)
	e.Float(math.Inf(-1))
	e.String("")
	e.String("hello, snapshot")
	e.Ints(nil)
	e.Ints([]int{-1, 0, 7, 1 << 40})
	e.Strings([]string{"a", "", "ccc"})

	d := NewDec(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := d.Uvarint(); got != 1<<63+17 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d, want -42", got)
	}
	if got := d.Int(); got != math.MaxInt64>>1 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if got := d.Float(); got != 3.14159 {
		t.Errorf("Float = %v", got)
	}
	if got := d.Float(); !math.IsInf(got, -1) {
		t.Errorf("Float = %v, want -Inf", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := d.Ints(); got != nil {
		t.Errorf("Ints = %v, want nil", got)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, []int{-1, 0, 7, 1 << 40}) {
		t.Errorf("Ints = %v", got)
	}
	if got := d.Strings(); !reflect.DeepEqual(got, []string{"a", "", "ccc"}) {
		t.Errorf("Strings = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecLatchesErrors(t *testing.T) {
	d := NewDec([]byte{0x80}) // truncated varint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("truncated varint not detected")
	}
	// Subsequent reads stay at zero values without panicking.
	if d.Int() != 0 || d.String() != "" || d.Ints() != nil {
		t.Fatal("reads after error not zero-valued")
	}
}

func TestDecLengthBomb(t *testing.T) {
	var e Enc
	e.Uvarint(1 << 40) // declared length far beyond the input
	d := NewDec(e.Bytes())
	if got := d.Ints(); got != nil {
		t.Fatalf("Ints on bomb = %v", got)
	}
	if d.Err() == nil {
		t.Fatal("oversized declared length not rejected")
	}
}

func TestSnapshotContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Section("alpha", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Section("beta", nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sr, err := NewSnapshotReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	name, payload, err := sr.Next()
	if err != nil || name != "alpha" || string(payload) != "payload-a" {
		t.Fatalf("section 1 = (%q, %q, %v)", name, payload, err)
	}
	name, payload, err = sr.Next()
	if err != nil || name != "beta" || len(payload) != 0 {
		t.Fatalf("section 2 = (%q, %q, %v)", name, payload, err)
	}
	if _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("end marker: err = %v, want io.EOF", err)
	}
}

func TestSnapshotContainerDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := NewSnapshotWriter(&buf)
	if err := sw.Section("data", bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: the section read must fail with a checksum
	// error rather than return corrupt data.
	for _, at := range []int{len(raw) - 20, len(snapMagic) + 10} {
		mut := append([]byte(nil), raw...)
		mut[at] ^= 0x40
		sr, err := NewSnapshotReader(bytes.NewReader(mut))
		if err != nil {
			continue // magic corruption: also acceptable detection
		}
		if _, _, err := sr.Next(); err == nil {
			t.Fatalf("corruption at byte %d not detected", at)
		}
	}

	// Bad magic.
	if _, err := NewSnapshotReader(strings.NewReader("not a snapshot at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
}
