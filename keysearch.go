// Package keysearch is a keyword-search engine for relational data that
// reproduces the system family of "Usability and Expressiveness in
// Database Keyword Search: Bridging the Gap" (Demidova, VLDB 2009 PhD
// workshop / 2013 thesis):
//
//   - probability-ranked translation of keyword queries into structured
//     queries (IQP ranking, Chapter 3),
//   - incremental interactive query construction with information-gain
//     question selection (IQP construction, Chapter 3),
//   - diversification of query interpretations balancing relevance and
//     novelty (DivQ, Chapter 4), and
//   - ontology-accelerated construction over very large schemas (FreeQ,
//     Chapter 5), with instance-overlap ontology-to-schema matching
//     (YAGO+F, Chapter 6).
//
// # The Engine API
//
// An Engine is built from a schema definition plus rows, configured with
// functional options. After Build it is immutable and safe for concurrent
// use: one built Engine serves any number of goroutines. All query entry
// points are context-first and exchange JSON-serialisable Request /
// Response DTOs, so the same types drive the library, the command-line
// tools, and the HTTP front-end in package repro/httpapi:
//
//	eng, _ := keysearch.New(schema, keysearch.WithMaxJoinPath(4))
//	eng.Insert("actor", "a1", "Tom Hanks")
//	...
//	eng.Build()
//	resp, _ := eng.Search(ctx, keysearch.SearchRequest{Query: "hanks terminal", K: 5})
//	for _, r := range resp.Results { fmt.Println(r.Probability, r.Query) }
//
// Cancellation and deadlines propagate into the expensive inner loops —
// candidate generation, interpretation materialisation, and probabilistic
// ranking — so an abandoned request stops computing.
//
// Interactive construction (Construct) returns a Construction session
// object; the HTTP front-end wraps it behind server-side session IDs with
// TTL eviction, turning the stateful dialogue into a stateless-client
// protocol.
package keysearch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagraph"
	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
	"repro/internal/trace"
)

// Column defines one attribute of a table. Text marks attributes indexed
// for keyword search.
type Column struct {
	Name string
	Text bool
}

// ForeignKey declares Column → RefTable.RefColumn.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table defines one relation of the schema.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  string
	ForeignKeys []ForeignKey
}

// config collects the tunables set by the functional options.
type config struct {
	maxJoinPath        int
	maxTemplates       int
	useCoOccurrence    bool
	alpha              float64
	includeSchemaTerms bool
	segmentPhrases     bool
	segmentThreshold   float64
	enableAggregates   bool
	parallelism        int
	scoreCacheOff      bool
	execCacheOff       bool
	answerCacheBytes   int64
	mutable            bool

	// Durability tunables (see durability.go). durDir empty = memory-only.
	durDir             string
	checkpointInterval time.Duration
	checkpointBatches  int
	compactRatio       float64
	walSyncOff         bool
	rebuildIndexes     bool
}

// Option configures an Engine at construction time.
type Option func(*config)

// WithMaxJoinPath bounds query-template length (default 4, the setting of
// the thesis's experiments).
func WithMaxJoinPath(n int) Option {
	return func(c *config) { c.maxJoinPath = n }
}

// WithMaxTemplates caps automatic template generation (0 = unlimited).
func WithMaxTemplates(n int) Option {
	return func(c *config) { c.maxTemplates = n }
}

// WithCoOccurrence enables the DivQ co-occurrence relevance refinement:
// keywords co-occurring in one attribute value (e.g. a first and last
// name) promote interpretations binding them together (Equation 4.2).
func WithCoOccurrence() Option {
	return func(c *config) { c.useCoOccurrence = true }
}

// WithAlpha sets the ATF smoothing parameter (default 1).
func WithAlpha(alpha float64) Option {
	return func(c *config) { c.alpha = alpha }
}

// WithSchemaTerms matches keywords against table and column names too
// (the schema-term interpretations of Section 2.2.7).
func WithSchemaTerms() Option {
	return func(c *config) { c.includeSchemaTerms = true }
}

// WithSegmentPhrases enables query segmentation (Section 2.2.1): adjacent
// keywords that almost always co-occur in one attribute value (e.g. a
// first and last name) are treated as a phrase and must bind to the same
// attribute. threshold is the phrase-pair score cut-off; values <= 0
// select the default 0.8.
func WithSegmentPhrases(threshold float64) Option {
	return func(c *config) {
		c.segmentPhrases = true
		c.segmentThreshold = threshold
	}
}

// WithAggregates recognises aggregation keywords ("number", "count",
// "many", "total") as COUNT operators, enabling analytical keyword
// queries such as "number of movies with tom hanks" (Section 2.2.7).
func WithAggregates() Option {
	return func(c *config) { c.enableAggregates = true }
}

// WithParallelism sets the worker count of the interpretation pipeline's
// parallel stages — template-sharded binding enumeration, concurrent
// interpretation scoring, and fanned-out top-k plan execution. n <= 0 (the
// default) selects runtime.GOMAXPROCS(0); 1 forces the sequential path.
// Every stage merges deterministically, so the same request produces a
// byte-identical response at any parallelism setting.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithScoreCache toggles the per-engine memoised cache of score sub-terms
// (template priors and keyword-interpretation probabilities). The cache is
// enabled by default; it is a pure memoisation over the immutable index,
// so it never changes scores — disable it only to measure its effect or to
// bound memory on enormous vocabularies.
func WithScoreCache(enabled bool) Option {
	return func(c *config) { c.scoreCacheOff = !enabled }
}

// WithExecutionCache toggles the per-request selection cache of the plan
// executor. A top-k request executes dozens of candidate networks that
// keep recombining the same (table, column, keyword-bag) selections; the
// cache evaluates each distinct selection once per request and shares the
// row list across all plans of that request (concurrency-safe — plans
// execute in parallel waves). Enabled by default; it is a pure
// memoisation over the immutable posting lists, so it never changes
// results — disable it only to measure its effect.
func WithExecutionCache(enabled bool) Option {
	return func(c *config) { c.execCacheOff = !enabled }
}

// WithAnswerCache enables the engine-lifetime materialized answer cache
// (internal/qcache) with the given byte budget; budgetBytes <= 0 keeps
// it disabled (the default). The cache promotes hot keyword-bag
// selections, candidate-network results, and interpretation counts from
// the per-request execution cache into a shared store with 2Q admission
// and cost-aware eviction, so repeated queries skip plan execution
// entirely. Mutation batches incrementally invalidate only the entries
// whose (table, column) footprint they touch, and a durable engine
// persists the surviving hot set at checkpoint so Open restarts warm.
// Caching never changes results — responses are byte-identical with the
// cache on or off (see docs/qcache.md). Requires the execution cache
// (the promotion source); WithExecutionCache(false) disables both.
func WithAnswerCache(budgetBytes int64) Option {
	return func(c *config) { c.answerCacheBytes = budgetBytes }
}

// WithDurability persists the engine under dir: Build writes an initial
// snapshot there (and truncates any stale mutation log), every Apply
// batch is appended to a write-ahead log before its snapshot is
// published, and a background policy (see WithCheckpointPolicy)
// checkpoints the state — a fresh snapshot file, a truncated WAL, and
// tombstone compaction of churned tables. Use Open to recover the
// engine from dir after a restart (latest snapshot + WAL tail replay).
// See docs/persistence.md for the on-disk formats and crash semantics.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithCheckpointPolicy tunes background checkpointing of a durable
// engine: a checkpoint runs when the WAL holds batches and interval has
// elapsed, or as soon as batches accumulate past the batch bound.
// Non-positive arguments keep the defaults (30s, 256 batches).
func WithCheckpointPolicy(interval time.Duration, batches int) Option {
	return func(c *config) {
		c.checkpointInterval = interval
		c.checkpointBatches = batches
	}
}

// WithCompactionThreshold sets the tombstone-compaction trigger: at
// checkpoint time, any table whose dead/live row ratio exceeds ratio is
// rebuilt without tombstones (rebuild-and-swap), bounding the physical
// row space — and with it the copy-on-write clone cost of every later
// Apply — after heavy delete churn. Non-positive keeps the default 0.5.
func WithCompactionThreshold(ratio float64) Option {
	return func(c *config) { c.compactRatio = ratio }
}

// WithWALSync toggles fsync-per-batch on the write-ahead log (default
// on). Disabling it trades the crash-durability of the latest batches
// for mutation throughput — snapshots and checkpoints still sync.
func WithWALSync(enabled bool) Option {
	return func(c *config) { c.walSyncOff = !enabled }
}

// WithRebuildIndexes makes OpenSnapshot / Open ignore the persisted
// derived structures (inverted index, data graph) and re-derive them
// from the row data instead — slower to open, but a recovery path for
// snapshots whose derived sections are from an older build, and proof
// that persisted indexes never diverge from re-derived ones (the
// differential tests open both ways).
func WithRebuildIndexes() Option {
	return func(c *config) { c.rebuildIndexes = true }
}

// WithMutations enables live row mutations: Engine.Apply accepts
// insert/update/delete batches after Build, incrementally maintaining
// every index and statistic and publishing each batch as a new immutable
// snapshot (see Apply for the isolation contract). Without this option
// the engine keeps its frozen-after-Build contract and Apply returns
// ErrMutationsDisabled.
func WithMutations() Option {
	return func(c *config) { c.mutable = true }
}

func newConfig(opts []Option) config {
	cfg := config{maxJoinPath: 4}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxJoinPath <= 0 {
		cfg.maxJoinPath = 4
	}
	if cfg.segmentPhrases && cfg.segmentThreshold <= 0 {
		cfg.segmentThreshold = 0.8
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.checkpointInterval <= 0 {
		cfg.checkpointInterval = 30 * time.Second
	}
	if cfg.checkpointBatches <= 0 {
		cfg.checkpointBatches = 256
	}
	if cfg.compactRatio <= 0 {
		cfg.compactRatio = 0.5
	}
	return cfg
}

// snapshot is one immutable, self-consistent view of the engine: the
// database, the inverted index, the schema graph, the template
// catalogue, and the ranking model, all derived from the same row set.
// Every request pins exactly one snapshot for its whole lifetime, so a
// mutation batch committing mid-request can never tear a response.
// Snapshots are never modified after publication — Apply builds the next
// one copy-on-write and swaps the engine's pointer atomically.
type snapshot struct {
	epoch uint64
	db    *relstore.Database
	ix    *invindex.Index
	graph *schemagraph.Graph
	cat   *query.Catalog
	model *prob.Model

	// dg is the lazily built data graph for the data-based baseline,
	// scoped to this snapshot's row set. When the previous snapshot had
	// materialised its graph, Apply seeds the next snapshot's eagerly via
	// incremental maintenance; otherwise it stays lazy.
	dgMu sync.Mutex
	dg   atomic.Pointer[datagraph.Graph]
}

// dataGraph returns the snapshot's data graph, building it on first use.
// The double-checked lock keeps the lazy build safe and single under
// concurrent SearchTrees.
func (s *snapshot) dataGraph() *datagraph.Graph {
	if g := s.dg.Load(); g != nil {
		return g
	}
	s.dgMu.Lock()
	defer s.dgMu.Unlock()
	if g := s.dg.Load(); g != nil {
		return g
	}
	g := datagraph.Build(s.db)
	s.dg.Store(g)
	return g
}

// Engine is a keyword-search engine over one database.
//
// Lifecycle: New → Insert rows → Build → serve. Before Build the Engine
// is a single-goroutine loader; after Build it is safe for unlimited
// concurrent Search / Diversify / SearchRows / SearchTrees / Construct
// calls (each Construction session itself belongs to one client, but any
// number of sessions may run concurrently).
//
// By default the engine is immutable after Build. With WithMutations,
// Engine.Apply accepts live insert/update/delete batches: each batch is
// folded copy-on-write into a new snapshot that is published with one
// atomic pointer swap, while every in-flight request keeps reading the
// snapshot it pinned on entry (snapshot isolation; readers never block
// writers and vice versa).
type Engine struct {
	cfg   config
	db    *relstore.Database // loading-phase database; snapshot 0 adopts it at Build
	built bool

	// snap is the current published snapshot (nil before Build).
	snap atomic.Pointer[snapshot]
	// applyMu serialises writers: at most one Apply (or Checkpoint)
	// builds the next snapshot at a time, always forking from the latest
	// one.
	applyMu sync.Mutex

	// qc is the engine-lifetime answer cache (nil when disabled); see
	// WithAnswerCache and internal/qcache. Snapshot publication of a
	// mutation batch happens inside qc's critical section (publish), so
	// cached answers can never be served to, or accepted from, a request
	// on the wrong side of the batch.
	qc *qcache.Store

	// dur is the durability runtime (nil for a memory-only engine); see
	// durability.go.
	dur *durState

	// applyObserver, when non-nil, is invoked after every published Apply
	// batch (under applyMu) with the pre- and post-batch snapshots and
	// the physical change log. A sharded coordinator registers here to
	// partition each batch per shard and keep per-shard row accounting in
	// step with the shared epoch. Set before serving traffic (it is read
	// without synchronisation on the apply path).
	applyObserver func(prev, next *snapshot, changes []relstore.RowChange)
}

// current returns the published snapshot (nil before Build). Callers
// load it once per request and use only that view throughout.
func (e *Engine) current() *snapshot { return e.snap.Load() }

// New creates an Engine with the given schema.
func New(tables []Table, opts ...Option) (*Engine, error) {
	cfg := newConfig(opts)
	db := relstore.NewDatabase("keysearch")
	for _, t := range tables {
		schema := &relstore.TableSchema{
			Name:       t.Name,
			PrimaryKey: t.PrimaryKey,
		}
		for _, c := range t.Columns {
			schema.Columns = append(schema.Columns, relstore.Column{Name: c.Name, Indexed: c.Text})
		}
		for _, fk := range t.ForeignKeys {
			schema.ForeignKeys = append(schema.ForeignKeys, relstore.ForeignKey{
				Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
			})
		}
		if _, err := db.CreateTable(schema); err != nil {
			return nil, fmt.Errorf("keysearch: %w", err)
		}
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, fmt.Errorf("keysearch: %w", err)
	}
	return &Engine{cfg: cfg, db: db}, nil
}

// fromDatabase wraps an existing internal database (used by the bundled
// demo datasets).
func fromDatabase(db *relstore.Database, opts ...Option) *Engine {
	return &Engine{cfg: newConfig(opts), db: db}
}

// Insert adds one row. Rows may only be inserted before Build, from a
// single goroutine.
func (e *Engine) Insert(table string, values ...string) error {
	if e.built {
		return fmt.Errorf("keysearch: engine already built; inserts are not allowed")
	}
	t := e.db.Table(table)
	if t == nil {
		return fmt.Errorf("keysearch: unknown table %s", table)
	}
	_, err := t.Insert(values...)
	return err
}

// Build indexes the data and generates the query-template catalogue.
// It must be called once after loading and before any search; the Build
// call must happen-before any concurrent use of the Engine (start your
// server goroutines after Build returns). After Build the Engine's
// shared state only changes through Apply's atomic snapshot swaps, which
// is what makes it race-free.
func (e *Engine) Build() error {
	if e.built {
		return fmt.Errorf("keysearch: already built")
	}
	e.db.Prepare() // posting lists + join indexes, built once up front
	ix := invindex.Build(e.db)
	graph := schemagraph.FromDatabase(e.db)
	cat := query.BuildCatalog(graph, schemagraph.EnumerateOptions{
		MaxNodes: e.cfg.maxJoinPath,
		MaxTrees: e.cfg.maxTemplates,
	})
	s := &snapshot{
		db:    e.db,
		ix:    ix,
		graph: graph,
		cat:   cat,
		model: e.newModel(ix, cat),
	}
	if e.cfg.answerCacheBytes > 0 && !e.cfg.execCacheOff {
		e.qc = qcache.New(e.cfg.answerCacheBytes)
	}
	e.snap.Store(s)
	e.built = true
	if e.cfg.durDir != "" {
		// A durable Build starts the state directory fresh: snapshot
		// epoch 0 on disk, any stale mutation log truncated. Recovery of
		// an existing directory goes through Open instead.
		if err := e.initDurability(); err != nil {
			e.snap.Store(nil)
			e.built = false
			return err
		}
	}
	return nil
}

// newModel builds the ranking model for a snapshot. Build and Apply both
// use it, so an incrementally maintained snapshot configures its model —
// including the recomputed smoothing floor Pu — exactly as a fresh build
// over the same rows would.
func (e *Engine) newModel(ix *invindex.Index, cat *query.Catalog) *prob.Model {
	return prob.New(ix, cat, prob.Config{
		Alpha:             e.cfg.alpha,
		UseCoOccurrence:   e.cfg.useCoOccurrence,
		Parallelism:       e.cfg.parallelism,
		DisableScoreCache: e.cfg.scoreCacheOff,
	})
}

// NumTables returns the number of tables.
func (e *Engine) NumTables() int { return e.db.NumTables() }

// NumRows returns the number of live rows in the current snapshot.
func (e *Engine) NumRows() int {
	if s := e.current(); s != nil {
		return s.db.NumRows()
	}
	return e.db.NumRows()
}

// NumTemplates returns the number of query templates (0 before Build).
func (e *Engine) NumTemplates() int {
	s := e.current()
	if s == nil {
		return 0
	}
	return len(s.cat.Templates)
}

// Parallelism returns the effective worker count of the interpretation
// pipeline's parallel stages (see WithParallelism).
func (e *Engine) Parallelism() int { return e.cfg.parallelism }

// ExecutionCacheEnabled reports whether plan execution shares a
// per-request selection cache (see WithExecutionCache).
func (e *Engine) ExecutionCacheEnabled() bool { return !e.cfg.execCacheOff }

// AnswerCacheEnabled reports whether the engine-lifetime answer cache is
// active (see WithAnswerCache).
func (e *Engine) AnswerCacheEnabled() bool { return e.qc != nil }

// AnswerCacheStats is a point-in-time snapshot of the answer cache's
// counters, mirrored into /healthz by the HTTP layer.
type AnswerCacheStats struct {
	BudgetBytes    int64
	ResidentBytes  int64
	HighWaterBytes int64
	Entries        int

	Hits             uint64
	Misses           uint64
	Evictions        uint64
	Invalidations    uint64
	StalePutRejects  uint64
	AdmissionRejects uint64
}

// AnswerCacheStats returns the answer cache's counters; ok is false when
// the cache is disabled.
func (e *Engine) AnswerCacheStats() (stats AnswerCacheStats, ok bool) {
	if e.qc == nil {
		return AnswerCacheStats{}, false
	}
	s := e.qc.Stats()
	return AnswerCacheStats{
		BudgetBytes:      s.BudgetBytes,
		ResidentBytes:    s.ResidentBytes,
		HighWaterBytes:   s.HighWaterBytes,
		Entries:          s.Entries,
		Hits:             s.Hits,
		Misses:           s.Misses,
		Evictions:        s.Evictions,
		Invalidations:    s.Invalidations,
		StalePutRejects:  s.StalePutRejects,
		AdmissionRejects: s.AdmissionRejects,
	}, true
}

// answerView opens this request's handle on the answer cache, priced by
// the query's estimated cost (cheap requests publish cheap entries).
// It returns an explicit nil interface when the cache is disabled.
// ORDER MATTERS: callers must obtain the view BEFORE loading the
// snapshot with current() — the view's clock capture preceding the
// snapshot load is what makes cache validity checks conservative (see
// internal/qcache).
func (e *Engine) answerView(keywords string) relstore.SharedStore {
	if e.qc == nil {
		return nil
	}
	return e.qc.NewView(e.EstimateCost(keywords))
}

// publish makes next the engine's current snapshot. When the answer
// cache is on, the pointer swap happens inside the cache's invalidation
// critical section with the batch's stale attributes, so no request can
// observe the new snapshot while stale entries are still servable (or
// publish stale entries afterwards). Callers must hold applyMu.
func (e *Engine) publish(next *snapshot, stale []relstore.Attr) {
	if e.qc == nil {
		e.snap.Store(next)
		return
	}
	e.qc.Invalidate(stale, func() { e.snap.Store(next) })
}

// parse tokenises a keyword query string.
func parse(keywords string) []string {
	return relstore.Tokenize(keywords)
}

// candidatesFor tokenises the query (honouring "label:keyword" syntax,
// Section 2.2.7) and generates the per-keyword candidates against one
// pinned snapshot.
func (e *Engine) candidatesFor(ctx context.Context, s *snapshot, keywords string) (*query.Candidates, [][]int, error) {
	if s == nil {
		return nil, nil, fmt.Errorf("keysearch: call Build before searching")
	}
	toks, labels := parseLabeled(keywords)
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("keysearch: empty keyword query")
	}
	c, err := query.GenerateCandidatesContext(ctx, s.ix, toks, query.GenerateOptionsConfig{
		IncludeSchemaTerms: e.cfg.includeSchemaTerms,
		IncludeAggregates:  e.cfg.enableAggregates,
	})
	if err != nil {
		return nil, nil, err
	}
	applyLabels(c, labels)
	if len(c.MatchedPositions()) == 0 {
		return nil, nil, fmt.Errorf("keysearch: no keyword of %q occurs in the database", keywords)
	}
	var segments [][]int
	if e.cfg.segmentPhrases {
		segments = detectSegments(s.ix, toks, labels, e.cfg.segmentThreshold)
	}
	return c, segments, nil
}

// interpret materialises and ranks the interpretation space over one
// pinned snapshot, honouring context cancellation in every expensive
// phase.
func (e *Engine) interpret(ctx context.Context, s *snapshot, keywords string) ([]prob.Scored, *query.Candidates, error) {
	tr := trace.FromContext(ctx)
	sp := tr.Start("parse")
	c, segments, err := e.candidatesFor(ctx, s, keywords)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	sp = tr.Start("interpret")
	space, err := query.GenerateCompleteContext(ctx, c, s.cat, query.GenerateConfig{
		Parallelism: e.cfg.parallelism,
	})
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	space = query.FilterSegments(space, segments)
	sp.End()
	tr.Count("interpretation_space", int64(len(space)))
	sp = tr.Start("rank")
	ranked, err := s.model.RankContext(ctx, space)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	return ranked, c, nil
}

// wrap converts scored interpretations to public results bound to the
// snapshot they were ranked under, so deferred execution (Rows, Count,
// previews) reads the same view that produced the ranking.
func (e *Engine) wrap(s *snapshot, scored []prob.Scored) []Result {
	out := make([]Result, len(scored))
	for i, sc := range scored {
		sql, _ := sc.Q.SQL()
		out[i] = Result{
			Query:       sc.Q.String(),
			SQL:         sql,
			Probability: sc.Prob,
			Tables:      tablesOf(sc.Q),
			Aggregate:   sc.Q.Aggregate(),
			q:           sc.Q,
			snap:        s,
		}
	}
	return out
}

func tablesOf(q *query.Interpretation) []string {
	if q.Template == nil {
		return nil
	}
	out := make([]string, len(q.Template.Tree.Tables))
	copy(out, q.Template.Tree.Tables)
	return out
}

// Keywords returns the sorted distinct tokens of the indexed data that
// match the given prefix — autocomplete-style exploration. It serves from
// the inverted index's sorted term dictionary (O(log |V| + answer)), so
// it never re-scans the data and is safe to expose on a hot service
// endpoint.
func (e *Engine) Keywords(prefix string, limit int) []string {
	s := e.current()
	if s == nil {
		return nil
	}
	return s.ix.TermsWithPrefix(prefix, limit)
}
