// Package keysearch is a keyword-search engine for relational data that
// reproduces the system family of "Usability and Expressiveness in
// Database Keyword Search: Bridging the Gap" (Demidova, VLDB 2009 PhD
// workshop / 2013 thesis):
//
//   - probability-ranked translation of keyword queries into structured
//     queries (IQP ranking, Chapter 3),
//   - incremental interactive query construction with information-gain
//     question selection (IQP construction, Chapter 3),
//   - diversification of query interpretations balancing relevance and
//     novelty (DivQ, Chapter 4), and
//   - ontology-accelerated construction over very large schemas (FreeQ,
//     Chapter 5), with instance-overlap ontology-to-schema matching
//     (YAGO+F, Chapter 6).
//
// A System is built from a schema definition plus rows, after which
// Search, Diversify and Construct operate on any keyword query:
//
//	sys, _ := keysearch.New(schema)
//	sys.Insert("actor", "a1", "Tom Hanks")
//	...
//	sys.Build()
//	results, _ := sys.Search("hanks terminal", 5)
package keysearch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datagraph"
	"repro/internal/divq"
	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// Column defines one attribute of a table. Text marks attributes indexed
// for keyword search.
type Column struct {
	Name string
	Text bool
}

// ForeignKey declares Column → RefTable.RefColumn.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table defines one relation of the schema.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  string
	ForeignKeys []ForeignKey
}

// Config tunes a System.
type Config struct {
	// MaxJoinPath bounds query-template length (default 4, the setting of
	// the thesis's experiments).
	MaxJoinPath int
	// MaxTemplates caps automatic template generation (0 = unlimited).
	MaxTemplates int
	// UseCoOccurrence enables the DivQ co-occurrence relevance refinement.
	UseCoOccurrence bool
	// Alpha is the ATF smoothing parameter (default 1).
	Alpha float64
	// IncludeSchemaTerms matches keywords against table/column names too.
	IncludeSchemaTerms bool
	// SegmentPhrases enables query segmentation (Section 2.2.1): adjacent
	// keywords that almost always co-occur in one attribute value (e.g. a
	// first and last name) are treated as a phrase and must bind to the
	// same attribute.
	SegmentPhrases bool
	// SegmentThreshold is the phrase-pair score cut-off (default 0.8).
	SegmentThreshold float64
	// EnableAggregates recognises aggregation keywords ("number", "count",
	// "many", "total") as COUNT operators, enabling analytical keyword
	// queries such as "number of movies with tom hanks" (Section 2.2.7).
	EnableAggregates bool
}

// System is a keyword-search engine over one database.
type System struct {
	cfg   Config
	db    *relstore.Database
	ix    *invindex.Index
	graph *schemagraph.Graph
	cat   *query.Catalog
	model *prob.Model
	built bool
	// dgraph is the lazily built data graph for the data-based baseline.
	dgraph *datagraph.Graph
}

// New creates a System with the given schema.
func New(tables []Table, cfg Config) (*System, error) {
	if cfg.MaxJoinPath <= 0 {
		cfg.MaxJoinPath = 4
	}
	db := relstore.NewDatabase("keysearch")
	for _, t := range tables {
		schema := &relstore.TableSchema{
			Name:       t.Name,
			PrimaryKey: t.PrimaryKey,
		}
		for _, c := range t.Columns {
			schema.Columns = append(schema.Columns, relstore.Column{Name: c.Name, Indexed: c.Text})
		}
		for _, fk := range t.ForeignKeys {
			schema.ForeignKeys = append(schema.ForeignKeys, relstore.ForeignKey{
				Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
			})
		}
		if _, err := db.CreateTable(schema); err != nil {
			return nil, fmt.Errorf("keysearch: %w", err)
		}
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, fmt.Errorf("keysearch: %w", err)
	}
	return &System{cfg: cfg, db: db}, nil
}

// fromDatabase wraps an existing internal database (used by the bundled
// demo datasets).
func fromDatabase(db *relstore.Database, cfg Config) *System {
	if cfg.MaxJoinPath <= 0 {
		cfg.MaxJoinPath = 4
	}
	return &System{cfg: cfg, db: db}
}

// Insert adds one row. Rows may only be inserted before Build.
func (s *System) Insert(table string, values ...string) error {
	if s.built {
		return fmt.Errorf("keysearch: system already built; inserts are not allowed")
	}
	t := s.db.Table(table)
	if t == nil {
		return fmt.Errorf("keysearch: unknown table %s", table)
	}
	_, err := t.Insert(values...)
	return err
}

// Build indexes the data and generates the query-template catalogue.
// It must be called once after loading and before any search.
func (s *System) Build() error {
	if s.built {
		return fmt.Errorf("keysearch: already built")
	}
	s.ix = invindex.Build(s.db)
	s.graph = schemagraph.FromDatabase(s.db)
	s.cat = query.BuildCatalog(s.graph, schemagraph.EnumerateOptions{
		MaxNodes: s.cfg.MaxJoinPath,
		MaxTrees: s.cfg.MaxTemplates,
	})
	s.model = prob.New(s.ix, s.cat, prob.Config{
		Alpha:           s.cfg.Alpha,
		UseCoOccurrence: s.cfg.UseCoOccurrence,
	})
	s.built = true
	return nil
}

// NumTables returns the number of tables.
func (s *System) NumTables() int { return s.db.NumTables() }

// NumRows returns the number of loaded rows.
func (s *System) NumRows() int { return s.db.NumRows() }

// NumTemplates returns the number of query templates (0 before Build).
func (s *System) NumTemplates() int {
	if s.cat == nil {
		return 0
	}
	return len(s.cat.Templates)
}

// Result is one structured interpretation of a keyword query.
type Result struct {
	// Query renders the structured query in relational-algebra notation.
	Query string
	// Probability is P(Q|K) normalised over the materialised space.
	Probability float64
	// Tables lists the joined tables in join order.
	Tables []string
	// Aggregate names the aggregation operator ("count") for analytical
	// interpretations; empty for plain retrieval.
	Aggregate string

	q *query.Interpretation
	s *System
}

// SQL renders the interpretation as an equivalent SQL statement (the
// candidate-network-to-SQL mapping of Section 2.2.6).
func (r Result) SQL() (string, error) { return r.q.SQL() }

// Count executes an aggregate interpretation and returns the number of
// results (also usable on plain interpretations as a cardinality probe).
func (r Result) Count() (int, error) {
	plan, err := r.q.JoinPlan()
	if err != nil {
		return 0, err
	}
	return r.s.db.Count(plan, 0)
}

// Rows executes the interpretation and returns up to limit joined rows;
// each row maps "table.column" to the value (occurrence index appended
// for self-joins: "table#2.column").
func (r Result) Rows(limit int) ([]map[string]string, error) {
	plan, err := r.q.JoinPlan()
	if err != nil {
		return nil, err
	}
	jtts, err := r.s.db.Execute(plan, relstore.ExecuteOptions{Limit: limit})
	if err != nil {
		return nil, err
	}
	var out []map[string]string
	for _, jtt := range jtts {
		row := make(map[string]string)
		occSeen := map[string]int{}
		for i, node := range plan.Nodes {
			t := r.s.db.Table(node.Table)
			occSeen[node.Table]++
			prefix := node.Table
			if occSeen[node.Table] > 1 {
				prefix = fmt.Sprintf("%s#%d", node.Table, occSeen[node.Table])
			}
			tuple, ok := t.Row(jtt.Rows[i])
			if !ok {
				continue
			}
			for ci, col := range t.Schema.Columns {
				row[prefix+"."+col.Name] = tuple.Values[ci]
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// parse tokenises a keyword query string.
func parse(keywords string) []string {
	return relstore.Tokenize(keywords)
}

// candidates tokenises the query (honouring "label:keyword" syntax,
// Section 2.2.7) and generates the per-keyword candidates.
func (s *System) candidatesFor(keywords string) (*query.Candidates, [][]int, error) {
	if !s.built {
		return nil, nil, fmt.Errorf("keysearch: call Build before searching")
	}
	toks, labels := parseLabeled(keywords)
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("keysearch: empty keyword query")
	}
	c := query.GenerateCandidates(s.ix, toks, query.GenerateOptionsConfig{
		IncludeSchemaTerms: s.cfg.IncludeSchemaTerms,
		IncludeAggregates:  s.cfg.EnableAggregates,
	})
	applyLabels(c, labels)
	if len(c.MatchedPositions()) == 0 {
		return nil, nil, fmt.Errorf("keysearch: no keyword of %q occurs in the database", keywords)
	}
	var segments [][]int
	if s.cfg.SegmentPhrases {
		th := s.cfg.SegmentThreshold
		if th <= 0 {
			th = 0.8
		}
		segments = s.detectSegments(toks, labels, th)
	}
	return c, segments, nil
}

// interpret materialises and ranks the interpretation space.
func (s *System) interpret(keywords string) ([]prob.Scored, *query.Candidates, error) {
	c, segments, err := s.candidatesFor(keywords)
	if err != nil {
		return nil, nil, err
	}
	space := query.GenerateComplete(c, s.cat, query.GenerateConfig{})
	space = query.FilterSegments(space, segments)
	return s.model.Rank(space), c, nil
}

// wrap converts scored interpretations to public results.
func (s *System) wrap(scored []prob.Scored) []Result {
	out := make([]Result, len(scored))
	for i, sc := range scored {
		out[i] = Result{
			Query:       sc.Q.String(),
			Probability: sc.Prob,
			Tables:      tablesOf(sc.Q),
			Aggregate:   sc.Q.Aggregate(),
			q:           sc.Q,
			s:           s,
		}
	}
	return out
}

func tablesOf(q *query.Interpretation) []string {
	if q.Template == nil {
		return nil
	}
	out := make([]string, len(q.Template.Tree.Tables))
	copy(out, q.Template.Tree.Tables)
	return out
}

// Search translates the keyword query into its top-k most probable
// structured interpretations (the IQP ranking interface).
func (s *System) Search(keywords string, k int) ([]Result, error) {
	ranked, _, err := s.interpret(keywords)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return s.wrap(ranked), nil
}

// Diversify returns the top-k relevant-and-diverse interpretations (the
// DivQ interface). lambda trades relevance (1) against novelty (0);
// interpretations with empty results are dropped first, as in DivQ.
func (s *System) Diversify(keywords string, k int, lambda float64) ([]Result, error) {
	ranked, _, err := s.interpret(keywords)
	if err != nil {
		return nil, err
	}
	if len(ranked) > 25 {
		ranked = ranked[:25]
	}
	nonEmpty, err := divq.FilterNonEmpty(s.db, ranked)
	if err != nil {
		return nil, err
	}
	div := divq.Diversify(nonEmpty, divq.Config{Lambda: lambda, K: k})
	return s.wrap(div), nil
}

// Keywords returns the sorted distinct tokens of the indexed data that
// match the given prefix — a convenience for demos and autocomplete-style
// exploration.
func (s *System) Keywords(prefix string, limit int) []string {
	if !s.built {
		return nil
	}
	seen := map[string]bool{}
	for _, attr := range s.ix.Attributes() {
		t := s.db.Table(attr.Table)
		ci := t.Schema.ColumnIndex(attr.Column)
		for _, row := range t.Rows() {
			for _, tok := range relstore.Tokenize(row.Values[ci]) {
				if strings.HasPrefix(tok, prefix) {
					seen[tok] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
