package invindex

import (
	"maps"
	"sort"

	"repro/internal/relstore"
)

// This file implements incremental index maintenance: Index.Apply folds a
// relstore change log into a copy-on-write clone of the index, patching
// exactly the postings, per-attribute statistics, and dictionary entries
// the changed cell values touch. The result is indistinguishable from
// Build over the post-change database — the differential tests enforce
// equality of every statistic the ranking model reads — at a cost
// proportional to the changed values' token counts, not the corpus size.
//
// Copy-on-write discipline: the outer postings and stats maps are cloned
// up front (bucket copies, no tokenisation); an inner per-term posting
// map, a Posting, or an attrStats is cloned at most once per batch, the
// first time a change touches it; row lists are replaced functionally.
// Nothing reachable from the source index is ever written, so readers of
// the pre-change snapshot stay consistent.

// applyState tracks which nested structures have been cloned during one
// Apply batch, so repeated touches patch the batch-local copy in place.
type applyState struct {
	ix           *Index
	clonedTerms  map[string]bool // postings inner maps cloned this batch
	clonedPosts  map[string]map[string]bool
	clonedStats  map[string]bool
	touchedAttrs map[string]bool // attrs needing a vocabulary recount
	touchedTerms map[string]bool // terms needing a dictionary re-check
}

// Apply returns a new index over newDB with the change log folded in.
// The receiver is never modified. newDB must be the database the changes
// were applied to (relstore.Database.Apply returns both).
func (ix *Index) Apply(newDB *relstore.Database, changes []relstore.RowChange) *Index {
	nix := &Index{
		db:            newDB,
		postings:      maps.Clone(ix.postings),
		stats:         maps.Clone(ix.stats),
		attrs:         ix.attrs,
		schemaTables:  ix.schemaTables,
		schemaColumns: ix.schemaColumns,
		terms:         ix.terms,
		totalDocs:     ix.totalDocs,
	}
	st := &applyState{
		ix:           nix,
		clonedTerms:  make(map[string]bool),
		clonedPosts:  make(map[string]map[string]bool),
		clonedStats:  make(map[string]bool),
		touchedAttrs: make(map[string]bool),
		touchedTerms: make(map[string]bool),
	}
	for _, ch := range changes {
		t := newDB.Table(ch.Table)
		if t == nil {
			continue
		}
		for ci, col := range t.Schema.Columns {
			if !col.Indexed {
				continue
			}
			attr := AttrRef{Table: ch.Table, Column: col.Name}
			switch {
			case ch.Old == nil: // insert
				st.addDoc(attr)
				st.addValue(attr, ch.RowID, ch.New[ci])
			case ch.New == nil: // delete
				st.removeDoc(attr)
				st.removeValue(attr, ch.RowID, ch.Old[ci])
			default: // update
				if ch.Old[ci] == ch.New[ci] {
					continue
				}
				st.removeValue(attr, ch.RowID, ch.Old[ci])
				st.addValue(attr, ch.RowID, ch.New[ci])
			}
		}
	}
	st.finish(ix)
	return nix
}

// statsFor returns the batch-local attrStats clone for the attribute.
func (st *applyState) statsFor(attr AttrRef) *attrStats {
	key := attr.String()
	st.touchedAttrs[key] = true
	s := st.ix.stats[key]
	if s == nil {
		return nil
	}
	if !st.clonedStats[key] {
		ns := &attrStats{
			totalTokens: s.totalTokens,
			vocabulary:  s.vocabulary,
			docs:        s.docs,
			termCount:   maps.Clone(s.termCount),
			docCount:    maps.Clone(s.docCount),
		}
		st.ix.stats[key] = ns
		st.clonedStats[key] = true
		s = ns
	}
	return s
}

// addDoc / removeDoc account one attribute value (document) appearing or
// disappearing — independent of its token content, exactly as Build
// counts every row of every indexed attribute.
func (st *applyState) addDoc(attr AttrRef) {
	if s := st.statsFor(attr); s != nil {
		s.docs++
		st.ix.totalDocs++
	}
}

func (st *applyState) removeDoc(attr AttrRef) {
	if s := st.statsFor(attr); s != nil {
		s.docs--
		st.ix.totalDocs--
	}
}

// postingFor returns a batch-local clone of the (term, attr) posting,
// creating it when absent, together with the cloned inner map.
func (st *applyState) postingFor(term string, attr AttrRef) (map[string]*Posting, *Posting) {
	st.touchedTerms[term] = true
	inner := st.ix.postings[term]
	if inner == nil {
		inner = make(map[string]*Posting)
		st.ix.postings[term] = inner
		st.clonedTerms[term] = true
	} else if !st.clonedTerms[term] {
		inner = maps.Clone(inner)
		st.ix.postings[term] = inner
		st.clonedTerms[term] = true
	}
	key := attr.String()
	p := inner[key]
	cloned := st.clonedPosts[term]
	if cloned == nil {
		cloned = make(map[string]bool)
		st.clonedPosts[term] = cloned
	}
	if p == nil {
		p = &Posting{Attr: attr}
		inner[key] = p
		cloned[key] = true
	} else if !cloned[key] {
		np := &Posting{Attr: p.Attr, Count: p.Count, DocCount: p.DocCount, Rows: p.Rows}
		inner[key] = np
		cloned[key] = true
		p = np
	}
	return inner, p
}

// addValue folds one cell value into the postings and statistics.
func (st *applyState) addValue(attr AttrRef, row int, value string) {
	toks := relstore.Tokenize(value)
	if len(toks) == 0 {
		return
	}
	s := st.statsFor(attr)
	if s == nil {
		return
	}
	s.totalTokens += len(toks)
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	for tok, c := range counts {
		s.termCount[tok] += c
		s.docCount[tok]++
		_, p := st.postingFor(tok, attr)
		p.Count += c
		p.DocCount++
		p.Rows = relstore.SortedInsert(p.Rows, row)
	}
}

// removeValue removes one cell value's contribution, dropping entries
// that reach zero so the maintained maps match a fresh Build exactly
// (vocabulary sizes and Contains both depend on absent-vs-zero).
func (st *applyState) removeValue(attr AttrRef, row int, value string) {
	toks := relstore.Tokenize(value)
	if len(toks) == 0 {
		return
	}
	s := st.statsFor(attr)
	if s == nil {
		return
	}
	s.totalTokens -= len(toks)
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	key := attr.String()
	for tok, c := range counts {
		if s.termCount[tok] -= c; s.termCount[tok] <= 0 {
			delete(s.termCount, tok)
		}
		if s.docCount[tok]--; s.docCount[tok] <= 0 {
			delete(s.docCount, tok)
		}
		inner, p := st.postingFor(tok, attr)
		p.Count -= c
		p.DocCount--
		p.Rows = relstore.SortedRemove(p.Rows, row)
		if p.DocCount <= 0 {
			delete(inner, key)
			if len(inner) == 0 {
				delete(st.ix.postings, tok)
			}
		}
	}
}

// finish recounts vocabularies of the touched attributes and patches the
// sorted term dictionary with the terms that appeared or vanished
// relative to the pre-batch index.
func (st *applyState) finish(old *Index) {
	for key := range st.touchedAttrs {
		if s := st.ix.stats[key]; s != nil {
			s.vocabulary = len(s.termCount)
		}
	}
	var added, removed []string
	for term := range st.touchedTerms {
		_, now := st.ix.postings[term]
		_, was := old.postings[term]
		switch {
		case now && !was:
			added = append(added, term)
		case was && !now:
			removed = append(removed, term)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	sort.Strings(added)
	gone := make(map[string]bool, len(removed))
	for _, t := range removed {
		gone[t] = true
	}
	terms := make([]string, 0, len(old.terms)+len(added)-len(removed))
	ai := 0
	for _, t := range old.terms {
		for ai < len(added) && added[ai] < t {
			terms = append(terms, added[ai])
			ai++
		}
		if !gone[t] {
			terms = append(terms, t)
		}
	}
	terms = append(terms, added[ai:]...)
	st.ix.terms = terms
}
