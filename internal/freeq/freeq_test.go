package freeq

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/invindex"
	"repro/internal/ontology"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

type fixture struct {
	fd    *datagen.FreebaseData
	ix    *invindex.Index
	cat   *query.Catalog
	model *prob.Model
	onto  *ontology.Ontology
}

// newFixture builds a moderately wide synthetic Freebase with a matching
// ontology layer.
func newFixture(t *testing.T, domains, tablesPerDomain int) *fixture {
	t.Helper()
	cs := datagen.NewConceptSpace(12, 20, 80, 1)
	fd, err := datagen.Freebase(cs, datagen.FreebaseConfig{
		Domains: domains, TablesPerDomain: tablesPerDomain, RowsPerTable: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := invindex.Build(fd.DB)
	g := schemagraph.FromDatabase(fd.DB)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 2, MaxTrees: 4000})
	model := prob.New(ix, cat, prob.Config{})
	o := datagen.YAGO(cs, datagen.YAGOConfig{Seed: 3})
	if mapped := MapConceptTables(o, fd.ConceptOf); mapped == 0 {
		t.Fatal("no tables mapped onto ontology")
	}
	return &fixture{fd: fd, ix: ix, cat: cat, model: model, onto: o}
}

// wideKeyword finds a keyword occurring in many tables' name attributes.
func wideKeyword(t *testing.T, f *fixture, minTables int) string {
	t.Helper()
	counts := map[string]int{}
	for _, tb := range f.fd.DB.Tables() {
		ci := tb.Schema.ColumnIndex("name")
		if ci < 0 {
			continue
		}
		seen := map[string]bool{}
		for _, row := range tb.Rows() {
			for _, tok := range relstore.Tokenize(row.Values[ci]) {
				if !seen[tok] {
					seen[tok] = true
					counts[tok]++
				}
			}
		}
	}
	best, bestN := "", 0
	for tok, n := range counts {
		if n > bestN {
			best, bestN = tok, n
		}
	}
	if bestN < minTables {
		t.Skipf("no keyword wide enough: best %q in %d tables", best, bestN)
	}
	return best
}

// intentFor resolves the interpretation binding the keyword to the given
// table's name attribute.
func intentFor(t *testing.T, f *fixture, keyword, table string) *query.Interpretation {
	t.Helper()
	c := query.GenerateCandidates(f.ix, []string{keyword}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	for _, q := range space {
		if len(q.Bindings) == 1 && q.Bindings[0].KI.Attr.Table == table &&
			q.Bindings[0].KI.Attr.Column == "name" && q.Template.Size() == 1 {
			return q
		}
	}
	t.Fatalf("no interpretation binds %q to %s.name", keyword, table)
	return nil
}

func TestEfficiency(t *testing.T) {
	if Efficiency(0) != 0 || Efficiency(1) != 0 {
		t.Fatal("degenerate options have zero efficiency")
	}
	if math.Abs(Efficiency(0.5)-0.5) > 1e-12 {
		t.Fatalf("Efficiency(0.5) = %v, want 0.5", Efficiency(0.5))
	}
	if Efficiency(0.3) <= Efficiency(0.1) {
		t.Fatal("efficiency must increase towards balance")
	}
	if math.Abs(Efficiency(0.3)-Efficiency(0.7)) > 1e-12 {
		t.Fatal("efficiency must be symmetric")
	}
}

func TestNewSessionRequiresMatches(t *testing.T) {
	f := newFixture(t, 3, 5)
	c := query.GenerateCandidates(f.ix, []string{"zzzz"}, query.GenerateOptionsConfig{})
	if _, err := NewSession(f.model, c, f.onto, Config{}); err == nil {
		t.Fatal("unmatched query accepted")
	}
}

func TestClassOptionsProposedOnWideSchema(t *testing.T) {
	f := newFixture(t, 6, 12)
	kw := wideKeyword(t, f, 10)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	sess, err := NewSession(f.model, c, f.onto, Config{MaterializeAt: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := sess.NextOption()
	if !ok {
		t.Fatal("no option proposed")
	}
	if o.Class < 0 {
		t.Fatalf("wide keyword should get a class option first, got %s", o.Describe())
	}
	if !strings.Contains(o.Describe(), kw) {
		t.Fatalf("Describe = %q", o.Describe())
	}
}

func TestRunConstructionIsolatesIntent(t *testing.T) {
	f := newFixture(t, 6, 12)
	kw := wideKeyword(t, f, 10)
	// Pick a table containing the keyword as intent target.
	var table string
	for _, p := range f.ix.Lookup(kw) {
		if p.Attr.Column == "name" && f.fd.ConceptOf[p.Attr.Table] != "" {
			table = p.Attr.Table
			break
		}
	}
	if table == "" {
		t.Skip("no mapped table contains the keyword")
	}
	intended := intentFor(t, f, kw, table)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	sess, err := NewSession(f.model, c, f.onto, Config{StopAtRemaining: 1, MaterializeAt: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConstruction(sess, intended)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingRank != 1 || res.Remaining != 1 {
		t.Fatalf("intent not isolated: %+v", res)
	}
	if res.Steps == 0 {
		t.Fatal("wide keyword should need at least one question")
	}
}

func TestAcceptDescendsRejectPrunes(t *testing.T) {
	f := newFixture(t, 6, 12)
	kw := wideKeyword(t, f, 10)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	sess, err := NewSession(f.model, c, f.onto, Config{MaterializeAt: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.SpaceSize()
	o, ok := sess.NextOption()
	if !ok || o.Class < 0 {
		t.Skip("no class option available")
	}
	sess.Reject(o)
	afterReject := sess.SpaceSize()
	if afterReject >= before {
		t.Fatalf("reject did not shrink the space: %d -> %d", before, afterReject)
	}
	// Rejected subtree interpretations are gone.
	coveredTables := map[string]bool{}
	for _, ki := range o.KIs {
		coveredTables[ki.TargetTable()] = true
	}
	o2, ok := sess.NextOption()
	for ok {
		if o2.Class == o.Class {
			t.Fatal("rejected class offered again")
		}
		sess.Reject(o2)
		if sess.SpaceSize() <= 1 {
			break
		}
		o2, ok = sess.NextOption()
	}
}

func TestAcceptNarrowsToSubtree(t *testing.T) {
	f := newFixture(t, 6, 12)
	kw := wideKeyword(t, f, 10)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	sess, err := NewSession(f.model, c, f.onto, Config{MaterializeAt: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := sess.NextOption()
	if !ok || o.Class < 0 {
		t.Skip("no class option available")
	}
	before := sess.SpaceSize()
	sess.Accept(o)
	if sess.SpaceSize() > before {
		t.Fatal("accept enlarged the space")
	}
	if sess.SpaceSize() > len(o.KIs) {
		t.Fatalf("accepted space %d exceeds option coverage %d", sess.SpaceSize(), len(o.KIs))
	}
}

// TestFreeQBeatsAttributeLevelIQP reproduces the Figure 5.2/5.4 shape:
// on a wide flat schema, ontology-based QCOs need far fewer interactions
// than IQP's attribute-level options.
func TestFreeQBeatsAttributeLevelIQP(t *testing.T) {
	f := newFixture(t, 8, 12)
	kw := wideKeyword(t, f, 20)
	var table string
	for _, p := range f.ix.Lookup(kw) {
		if p.Attr.Column == "name" && f.fd.ConceptOf[p.Attr.Table] != "" {
			table = p.Attr.Table // first (deterministic) mapped table
			break
		}
	}
	if table == "" {
		t.Skip("no mapped table contains the keyword")
	}
	intended := intentFor(t, f, kw, table)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})

	fsess, err := NewSession(f.model, c, f.onto, Config{StopAtRemaining: 1, MaterializeAt: 8})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := RunConstruction(fsess, intended)
	if err != nil {
		t.Fatal(err)
	}

	isess, err := core.NewSession(f.model, c, core.SessionConfig{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	ires, err := core.RunConstruction(isess, core.NewSimulatedUser(intended))
	if err != nil {
		t.Fatal(err)
	}
	if fres.Steps >= ires.Steps {
		t.Fatalf("FreeQ (%d steps) should beat attribute-level IQP (%d steps) on a wide schema",
			fres.Steps, ires.Steps)
	}
}

func TestSubsumesInterpretation(t *testing.T) {
	f := newFixture(t, 3, 5)
	kw := wideKeyword(t, f, 3)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	if len(space) == 0 {
		t.Fatal("empty space")
	}
	q := space[0]
	o := Option{Pos: 0, Keyword: kw, Class: -1, KIs: []query.KeywordInterpretation{q.Bindings[0].KI}}
	if !o.SubsumesInterpretation(q) {
		t.Fatal("option should subsume the interpretation it was built from")
	}
	other := Option{Pos: 0, Keyword: kw, Class: -1, KIs: []query.KeywordInterpretation{{
		Pos: 0, Keyword: kw, Kind: query.KindValue,
		Attr: invindex.AttrRef{Table: "nonexistent", Column: "name"},
	}}}
	if other.SubsumesInterpretation(q) {
		t.Fatal("foreign option should not subsume")
	}
	// Option on a different keyword position never subsumes.
	wrongPos := Option{Pos: 5, Keyword: kw, Class: -1, KIs: o.KIs}
	if wrongPos.SubsumesInterpretation(q) {
		t.Fatal("wrong-position option should not subsume")
	}
}

func TestMapConceptTables(t *testing.T) {
	cs := datagen.NewConceptSpace(6, 10, 30, 1)
	fd, err := datagen.Freebase(cs, datagen.FreebaseConfig{Domains: 2, TablesPerDomain: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := datagen.YAGO(cs, datagen.YAGOConfig{Seed: 3})
	mapped := MapConceptTables(o, fd.ConceptOf)
	if mapped != len(fd.ConceptOf) {
		t.Fatalf("mapped %d of %d tables", mapped, len(fd.ConceptOf))
	}
	// Unknown concepts stay unmapped.
	o2 := ontology.New("root")
	if got := MapConceptTables(o2, fd.ConceptOf); got != 0 {
		t.Fatalf("mapped %d tables onto empty ontology", got)
	}
}

func TestInteractionEntropy(t *testing.T) {
	if InteractionEntropy(1) != 0 || InteractionEntropy(0) != 0 {
		t.Fatal("trivial spaces need no questions")
	}
	if math.Abs(InteractionEntropy(8)-3) > 1e-12 {
		t.Fatalf("InteractionEntropy(8) = %v", InteractionEntropy(8))
	}
}

func TestStepTimeAccumulates(t *testing.T) {
	f := newFixture(t, 4, 8)
	kw := wideKeyword(t, f, 5)
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	sess, err := NewSession(f.model, c, f.onto, Config{MaterializeAt: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		o, ok := sess.NextOption()
		if !ok {
			break
		}
		sess.Reject(o)
	}
	if sess.Steps() == 0 {
		t.Fatal("no steps recorded")
	}
	if sess.StepTime() <= 0 {
		t.Fatal("step time not accumulated")
	}
}

// TestUnmappedOntologyFallsBackToAttributes: with no tables mapped to the
// ontology, FreeQ degenerates gracefully to attribute-level options and
// still isolates the intent.
func TestUnmappedOntologyFallsBackToAttributes(t *testing.T) {
	f := newFixture(t, 4, 8)
	kw := wideKeyword(t, f, 5)
	empty := ontology.New("root")
	c := query.GenerateCandidates(f.ix, []string{kw}, query.GenerateOptionsConfig{})
	sess, err := NewSession(f.model, c, empty, Config{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	var table string
	for _, p := range f.ix.Lookup(kw) {
		if p.Attr.Column == "name" {
			table = p.Attr.Table
			break
		}
	}
	if table == "" {
		t.Skip("no name table")
	}
	intended := intentFor(t, f, kw, table)
	res, err := RunConstruction(sess, intended)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingRank != 1 {
		t.Fatalf("fallback construction failed: %+v", res)
	}
}

// TestPruneKeepsJointlyFeasible: the semi-join prune removes candidates
// whose table cannot co-occur with any candidate of the other keyword in
// a single template.
func TestPruneKeepsJointlyFeasible(t *testing.T) {
	f := newFixture(t, 4, 8)
	// Build a two-keyword query from one row of one table so both tokens
	// share that table.
	var kw1, kw2, table string
	for _, tb := range f.fd.DB.Tables() {
		ci := tb.Schema.ColumnIndex("name")
		if ci < 0 || tb.Len() == 0 {
			continue
		}
		row, _ := tb.Row(0)
		toks := relstore.Tokenize(row.Values[ci])
		if len(toks) >= 2 && toks[0] != toks[1] {
			kw1, kw2, table = toks[0], toks[1], tb.Schema.Name
			break
		}
	}
	if kw1 == "" {
		t.Skip("no two-token name found")
	}
	c := query.GenerateCandidates(f.ix, []string{kw1, kw2}, query.GenerateOptionsConfig{})
	before := c.SpaceSize()
	sess, err := NewSession(f.model, c, f.onto, Config{StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.SpaceSize() > before {
		t.Fatalf("prune grew the space: %d -> %d", before, sess.SpaceSize())
	}
	// The shared table's interpretations must survive the prune.
	survived := false
	for _, st := range sess.states {
		for _, ki := range st.allowed {
			if ki.TargetTable() == table {
				survived = true
			}
		}
	}
	if !survived {
		t.Fatalf("prune removed the jointly feasible table %s", table)
	}
}

func TestOptionDescribe(t *testing.T) {
	classOpt := Option{Pos: 0, Keyword: "london", Class: 3, ClassName: "person"}
	if got := classOpt.Describe(); !strings.Contains(got, "person") || !strings.Contains(got, "london") {
		t.Fatalf("class Describe = %q", got)
	}
	single := Option{Pos: 0, Keyword: "london", Class: -1,
		KIs: []query.KeywordInterpretation{{
			Pos: 0, Keyword: "london", Kind: query.KindValue,
			Attr: invindex.AttrRef{Table: "actor", Column: "name"},
		}}}
	if got := single.Describe(); !strings.Contains(got, "actor.name") {
		t.Fatalf("attr Describe = %q", got)
	}
	multi := Option{Pos: 0, Keyword: "london", Class: -1,
		KIs: make([]query.KeywordInterpretation, 3)}
	if got := multi.Describe(); !strings.Contains(got, "3 attributes") {
		t.Fatalf("multi Describe = %q", got)
	}
}
