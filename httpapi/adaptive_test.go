package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	keysearch "repro"
)

// respRecord is one observed response for the differential test.
type respRecord struct {
	status     int
	body       string
	retryAfter string
}

// differentialSequence exercises every deterministic response shape:
// success paths, validation errors, a forbidden mutation, a missing
// construct session, and /healthz. Construction "start" is excluded —
// its session IDs are random by design.
func differentialSequence(t *testing.T, eng *keysearch.Engine) []struct{ method, path, body string } {
	t.Helper()
	return []struct{ method, path, body string }{
		{"POST", "/v1/search", searchBody(t, eng)},
		{"POST", "/v1/diversify", strings.Replace(searchBody(t, eng), `"k":3`, `"k":2`, 1)},
		{"POST", "/v1/rows", searchBody(t, eng)},
		{"POST", "/v1/search", `{"query":`},                                  // malformed JSON
		{"POST", "/v1/mutate", `{"mutations":[]}`},                           // immutable engine: 403
		{"POST", "/v1/construct", `{"action":"bogus"}`},                      // unknown action
		{"POST", "/v1/construct", `{"action":"accept","session_id":"nope"}`}, // 404
		{"GET", "/v1/keywords?prefix=a&limit=3", ""},
		{"GET", "/healthz", ""},
	}
}

func runSequence(t *testing.T, base string, seq []struct{ method, path, body string }) []respRecord {
	t.Helper()
	out := make([]respRecord, 0, len(seq))
	for _, step := range seq {
		req, err := http.NewRequest(step.method, base+step.path, strings.NewReader(step.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, respRecord{
			status:     resp.StatusCode,
			body:       string(body),
			retryAfter: resp.Header.Get("Retry-After"),
		})
	}
	return out
}

// TestAdaptiveDisabledIsByteIdentical is the PR acceptance
// differential: a server carrying WithAdaptiveAdmission with the
// governor disabled (MaxConcurrent 0) must answer byte-for-byte like
// the plain PR 6 static gate — same bodies, same statuses, same
// Retry-After, same /healthz shape. Both construction orders are
// checked so neither server's initialisation can leak into the other.
func TestAdaptiveDisabledIsByteIdentical(t *testing.T) {
	eng := demoEngine(t)
	static := AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2, QueueTimeout: time.Second}
	seq := differentialSequence(t, eng)

	for _, order := range []string{"static-first", "disabled-first"} {
		t.Run(order, func(t *testing.T) {
			build := func(withDisabledGovernor bool) *httptest.Server {
				opts := []Option{WithAdmission(static)}
				if withDisabledGovernor {
					opts = append(opts, WithAdaptiveAdmission(AdaptiveConfig{MaxConcurrent: 0}))
				}
				return httptest.NewServer(New(eng, opts...))
			}
			var a, b *httptest.Server
			if order == "static-first" {
				a, b = build(false), build(true)
			} else {
				b, a = build(true), build(false)
			}
			defer a.Close()
			defer b.Close()

			got := runSequence(t, b.URL, seq)
			want := runSequence(t, a.URL, seq)
			for i := range seq {
				if got[i] != want[i] {
					t.Errorf("step %d %s %s diverged:\nstatic:   %d %q (Retry-After %q)\ndisabled: %d %q (Retry-After %q)",
						i, seq[i].method, seq[i].path,
						want[i].status, want[i].body, want[i].retryAfter,
						got[i].status, got[i].body, got[i].retryAfter)
				}
			}
		})
	}
}

// adaptiveTestServer builds a governed server whose handler blocks on
// demand: requests carrying the release channel wait inside the
// handler so tests control slot occupancy deterministically.
func adaptiveTestServer(t *testing.T, eng *keysearch.Engine, cfg AdaptiveConfig, hold chan struct{}, entered chan struct{}) *httptest.Server {
	t.Helper()
	srv := New(eng,
		WithAdaptiveAdmission(cfg),
		WithHandlerWrapper(func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Header.Get("X-Block") != "" {
					entered <- struct{}{}
					<-hold
				}
				next.ServeHTTP(w, r)
			})
		}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func postSearch(t *testing.T, url, body string, block bool) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/search", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if block {
		req.Header.Set("X-Block", "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdaptiveShedCarriesDrainHintAndHeadroom: with the single slot
// held and no queue, the next request sheds with 429 queue_full, a
// Retry-After header, and the adaptive extras — current limit and
// headroom to the ceiling — in the body.
func TestAdaptiveShedCarriesDrainHintAndHeadroom(t *testing.T) {
	eng := demoEngine(t)
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	ts := adaptiveTestServer(t, eng, AdaptiveConfig{
		MinConcurrent: 1, MaxConcurrent: 8, InitialConcurrent: 1,
		MaxQueue: 0, Window: time.Hour,
	}, hold, entered)

	body := searchBody(t, eng)
	done := make(chan *http.Response, 1)
	go func() { done <- postSearch(t, ts.URL, body, true) }()
	<-entered // the only slot is now occupied

	resp := postSearch(t, ts.URL, body, false)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "queue_full" {
		t.Fatalf("code = %q, want queue_full", er.Code)
	}
	if er.Limit != 1 {
		t.Fatalf("shed body limit = %d, want 1", er.Limit)
	}
	if er.LimitHeadroom == nil || *er.LimitHeadroom != 7 {
		t.Fatalf("shed body headroom = %v, want 7", er.LimitHeadroom)
	}
	if er.RetryAfterSeconds < 1 {
		t.Fatalf("retry_after_seconds = %d, want >= 1", er.RetryAfterSeconds)
	}

	close(hold)
	first := <-done
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("blocked request finished %d, want 200", first.StatusCode)
	}
}

// TestAdaptiveEvictsHeavyForCheap drives the cost-aware path over real
// HTTP: with the slot held and a one-deep queue occupied by a heavy
// query, a cheap newcomer evicts it (heavy gets 429 queue_evicted) and
// is served once the slot frees.
func TestAdaptiveEvictsHeavyForCheap(t *testing.T) {
	eng := demoEngine(t)
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	ts := adaptiveTestServer(t, eng, AdaptiveConfig{
		MinConcurrent: 1, MaxConcurrent: 4, InitialConcurrent: 1,
		MaxQueue: 1, QueueTimeout: 10 * time.Second, Window: time.Hour,
		CostBands: []int64{2}, // cost 1 = cheap band, real queries are heavy
	}, hold, entered)

	// Occupy the slot.
	blockedDone := make(chan *http.Response, 1)
	go func() { blockedDone <- postSearch(t, ts.URL, searchBody(t, eng), true) }()
	<-entered

	// Queue a heavy query (a real corpus keyword: posting mass >= 2).
	heavyBody := searchBody(t, eng)
	cheapKeyword := findCheapKeyword(t, eng)
	heavyDone := make(chan *http.Response, 1)
	go func() { heavyDone <- postSearch(t, ts.URL, heavyBody, false) }()
	waitFor(t, func() bool {
		return getHealth(t, http.DefaultClient, ts.URL).Adaptive.Queued == 1
	})

	// The cheap newcomer takes the heavy waiter's place...
	cheapDone := make(chan *http.Response, 1)
	go func() {
		cheapDone <- postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q,"k":3}`, cheapKeyword), false)
	}()
	heavy := <-heavyDone
	defer heavy.Body.Close()
	if heavy.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("heavy waiter status = %d, want 429", heavy.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(heavy.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "queue_evicted" {
		t.Fatalf("heavy waiter code = %q, want queue_evicted", er.Code)
	}

	// ...and is served when the slot frees.
	close(hold)
	blocked := <-blockedDone
	blocked.Body.Close()
	cheap := <-cheapDone
	defer cheap.Body.Close()
	if cheap.StatusCode != http.StatusOK {
		t.Fatalf("cheap newcomer status = %d, want 200", cheap.StatusCode)
	}

	h := getHealth(t, http.DefaultClient, ts.URL)
	if h.Adaptive == nil || !h.Adaptive.Enabled {
		t.Fatal("healthz missing adaptive block on a governed server")
	}
	if len(h.Adaptive.Bands) != 2 {
		t.Fatalf("bands = %d, want 2", len(h.Adaptive.Bands))
	}
	if h.Adaptive.Bands[1].Evicted != 1 {
		t.Fatalf("heavy band evicted = %d, want 1\nbands: %+v", h.Adaptive.Bands[1].Evicted, h.Adaptive.Bands)
	}
}

// findCheapKeyword scans the corpus for a keyword whose posting mass
// is the cost floor (a token occurring exactly once in one attribute)
// — the cheapest real query the engine can serve.
func findCheapKeyword(t *testing.T, eng *keysearch.Engine) string {
	t.Helper()
	for _, p := range "abcdefghijklmnopqrstuvwxyz0123456789" {
		for _, k := range eng.Keywords(string(p), 500) {
			if eng.EstimateCost(k) == 1 {
				return k
			}
		}
	}
	t.Fatal("demo corpus has no cost-1 keyword")
	return ""
}

// waitFor polls a condition with a bounded deadline (observability
// only — the admission decisions themselves are deterministic).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdaptiveHealthAndDefaults: a governed server reports controller
// state on /healthz, derives cost bands from the corpus, and accounts
// every admitted request in the band counters.
func TestAdaptiveHealthAndDefaults(t *testing.T) {
	eng := demoEngine(t)
	srv := New(eng, WithAdaptiveAdmission(AdaptiveConfig{MaxConcurrent: 8}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 5
	body := searchBody(t, eng)
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	h := getHealth(t, http.DefaultClient, ts.URL)
	a := h.Adaptive
	if a == nil || !a.Enabled {
		t.Fatal("adaptive block missing")
	}
	if a.Limit < 2 || a.Limit > 8 || a.MinLimit != 2 || a.MaxLimit != 8 {
		t.Fatalf("controller bounds: %+v", a.ControllerState)
	}
	if len(a.Bands) != 3 { // derived p50/p90 bounds = 3 bands
		t.Fatalf("derived bands = %d, want 3: %+v", len(a.Bands), a.Bands)
	}
	var admitted int64
	for _, b := range a.Bands {
		admitted += b.Admitted
	}
	if admitted != n {
		t.Fatalf("band admitted total = %d, want %d", admitted, n)
	}
	if a.AvgServiceMS <= 0 {
		t.Fatalf("avg service not observed: %+v", a)
	}
}

// TestEstimateCostSeparatesQueries pins the admission-grade cost
// signal end to end: unknown keywords cost the floor, corpus keywords
// carry posting mass, and stacking keywords stacks cost.
func TestEstimateCostSeparatesQueries(t *testing.T) {
	eng := demoEngine(t)
	if got := eng.EstimateCost(""); got != 1 {
		t.Fatalf("empty query cost = %d, want 1", got)
	}
	if got := eng.EstimateCost("zzz-no-such-keyword"); got != 1 {
		t.Fatalf("unknown keyword cost = %d, want 1", got)
	}
	qs := eng.SampleQueries(2)
	if len(qs) < 2 {
		t.Fatal("demo corpus has no sample queries")
	}
	c0 := eng.EstimateCost(qs[0])
	if c0 < 2 {
		t.Fatalf("ambiguous corpus keyword cost = %d, want >= 2", c0)
	}
	both := eng.EstimateCost(fmt.Sprintf("%s %s", qs[0], qs[1]))
	if both != c0+eng.EstimateCost(qs[1]) {
		t.Fatalf("cost not additive over keywords: %d + %d != %d",
			c0, eng.EstimateCost(qs[1]), both)
	}
}
