package qcache

import (
	"fmt"

	"repro/internal/durable"
	"repro/internal/relstore"
)

// persistVersion guards the qcache snapshot-section layout.
const persistVersion = 1

// EncodeSnapshot serialises the resident hot set for the engine's
// snapshot container. Entries are written protected-then-probation,
// each segment MRU first, so decoding re-inserts them in recency order
// and the warm store behaves as if it had never restarted. The encoding
// is deterministic given the store state. Callers must guarantee the
// engine snapshot being persisted is the one the entries are valid for
// — in practice: call under the engine's apply lock, as Checkpoint
// does. Clock state is not persisted; a restored store starts at clock
// zero with every entry valid, which is exactly right because the
// snapshot file and the hot set were written consistently.
func (s *Store) EncodeSnapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var enc durable.Enc
	enc.Byte(persistVersion)
	enc.Uvarint(uint64(len(s.entries)))
	for _, l := range []*lruList{&s.protected, &s.probation} {
		for e := l.head; e != nil; e = e.next {
			enc.Bool(e.protected)
			enc.Byte(e.k.kind)
			enc.String(e.k.key)
			enc.Uvarint(uint64(len(e.footprint)))
			for _, a := range e.footprint {
				enc.String(a.Table)
				enc.Int(a.Col)
			}
			switch e.k.kind {
			case kindSelection:
				enc.Ints(e.rows)
			case kindPlan:
				enc.Uvarint(uint64(len(e.plan)))
				for _, r := range e.plan {
					enc.Ints(r)
				}
			case kindCount:
				enc.Int(e.count)
			}
			enc.Float(e.cost)
			enc.Uvarint(e.uses)
			enc.Uvarint(uint64(e.bytes))
		}
	}
	return enc.Bytes()
}

// DecodeSnapshot restores a persisted hot set into a freshly created
// store. Entries are admitted without the ghost gate — they earned
// admission in the previous process — but still respect the byte
// budget: once the budget is full (it may be smaller than the one the
// snapshot was written under), the remaining colder entries are
// dropped. The restored resident size seeds the high-water mark.
func (s *Store) DecodeSnapshot(payload []byte) error {
	dec := durable.NewDec(payload)
	if v := dec.Byte(); v != persistVersion {
		if dec.Err() != nil {
			return fmt.Errorf("qcache: decode snapshot: %w", dec.Err())
		}
		return fmt.Errorf("qcache: unsupported snapshot version %d", v)
	}
	n := dec.Uvarint()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := uint64(0); i < n; i++ {
		protected := dec.Bool()
		kind := dec.Byte()
		key := dec.String()
		fpLen := dec.Uvarint()
		var fp []relstore.Attr
		for j := uint64(0); j < fpLen; j++ {
			table := dec.String()
			col := dec.Int()
			fp = append(fp, relstore.Attr{Table: table, Col: col})
		}
		e := &entry{k: entryKey{kind: kind, key: key}, footprint: fp}
		switch kind {
		case kindSelection:
			e.rows = dec.Ints()
		case kindPlan:
			rows := dec.Uvarint()
			e.plan = make([][]int, 0, rows)
			for j := uint64(0); j < rows; j++ {
				e.plan = append(e.plan, dec.Ints())
			}
		case kindCount:
			e.count = dec.Int()
		default:
			return fmt.Errorf("qcache: unknown entry kind %q", kind)
		}
		e.cost = dec.Float()
		e.uses = dec.Uvarint()
		e.bytes = int64(dec.Uvarint())
		if dec.Err() != nil {
			return fmt.Errorf("qcache: decode snapshot: %w", dec.Err())
		}
		if _, dup := s.entries[e.k]; dup || s.resident+e.bytes > s.budget {
			continue // colder than what already fits
		}
		s.entries[e.k] = e
		for _, a := range e.footprint {
			set := s.byAttr[a]
			if set == nil {
				set = make(map[*entry]struct{})
				s.byAttr[a] = set
			}
			set[e] = struct{}{}
		}
		e.protected = protected
		if protected {
			s.protected.pushBack(e)
			s.protectedBytes += e.bytes
		} else {
			s.probation.pushBack(e)
		}
		s.resident += e.bytes
	}
	if dec.Err() != nil {
		return fmt.Errorf("qcache: decode snapshot: %w", dec.Err())
	}
	if s.resident > s.highWater {
		s.highWater = s.resident
	}
	return nil
}

// pushBack appends at the cold end; used only by snapshot restore,
// which replays entries warmest-first.
func (l *lruList) pushBack(e *entry) {
	e.next = nil
	e.prev = l.tail
	if l.tail != nil {
		l.tail.next = e
	}
	l.tail = e
	if l.head == nil {
		l.head = e
	}
}
