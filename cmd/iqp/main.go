// Command iqp is an interactive incremental query construction shell over
// the bundled synthetic movie database — the IQP interface of Chapter 3
// as a terminal program. It drives the same Request/Response DTOs as the
// HTTP service (cmd/serve).
//
// Usage:
//
//	go run ./cmd/iqp [-seed N] [-music]
//
// Type a keyword query; the system shows the top-ranked structured
// interpretations and then asks yes/no questions (y/n, or q to give up)
// until at most three candidates remain.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	keysearch "repro"
)

func main() {
	seed := flag.Int64("seed", 7, "dataset generator seed")
	music := flag.Bool("music", false, "use the music (lyrics) dataset instead of movies")
	sql := flag.Bool("sql", false, "also print the SQL equivalent of each candidate query")
	flag.Parse()
	showSQL = *sql

	var eng *keysearch.Engine
	var err error
	if *music {
		eng, err = keysearch.DemoMusic(*seed)
	} else {
		eng, err = keysearch.DemoMovies(*seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d tables, %d rows, %d query templates\n",
		eng.NumTables(), eng.NumRows(), eng.NumTemplates())
	fmt.Printf("try keywords such as: %s\n\n", strings.Join(eng.SampleQueries(6), ", "))

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("keywords> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || line == "quit" || line == "exit" {
			return
		}
		runQuery(eng, in, line)
	}
}

// showSQL toggles SQL rendering of candidates (-sql).
var showSQL bool

func runQuery(eng *keysearch.Engine, in *bufio.Scanner, q string) {
	ctx := context.Background()
	resp, err := eng.Search(ctx, keysearch.SearchRequest{Query: q, K: 5})
	if err != nil {
		fmt.Printf("  %v\n", err)
		return
	}
	fmt.Println("  top interpretations:")
	for i, r := range resp.Results {
		fmt.Printf("    %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
	}

	sess, err := eng.Construct(ctx, keysearch.ConstructRequest{Query: q, StopAtRemaining: 3})
	if err != nil {
		fmt.Printf("  %v\n", err)
		return
	}
	for !sess.Done() {
		question, ok := sess.Next()
		if !ok {
			break
		}
		fmt.Printf("  %s (y/n/q)? ", question.Text)
		if !in.Scan() {
			return
		}
		switch strings.ToLower(strings.TrimSpace(in.Text())) {
		case "y", "yes":
			err = sess.Accept(ctx, question)
		case "q", "quit":
			return
		default:
			err = sess.Reject(ctx, question)
		}
		if err != nil {
			fmt.Printf("  %v\n", err)
			return
		}
	}
	fmt.Printf("  after %d answers, the candidate queries are:\n", sess.Steps())
	for i, r := range sess.Candidates() {
		fmt.Printf("    %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
		if showSQL && r.SQL != "" {
			fmt.Printf("        SQL: %s\n", r.SQL)
		}
		rows, err := r.Rows(3)
		if err != nil {
			continue
		}
		for _, row := range rows {
			fmt.Printf("        %s\n", renderRow(row))
		}
	}
}

func renderRow(row map[string]string) string {
	var parts []string
	for k, v := range row {
		if strings.HasSuffix(k, ".name") || strings.HasSuffix(k, ".title") {
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("%v", row)
	}
	return strings.Join(parts, " ")
}
