// Package core implements IQP — the probabilistic incremental query
// construction system of Chapter 3. It provides:
//
//   - query construction plans as binary decision trees over an
//     interpretation space (Definition 3.5.8), their interaction cost
//     (Definition 3.5.9 / Equation 3.1), and the brute-force minimum-plan
//     algorithm (Algorithm 3.1) over abstract spaces;
//   - the greedy, information-gain-driven interactive construction session
//     (Algorithm 3.2, Equations 3.11–3.13) over real interpretation spaces
//     with lazy query-hierarchy expansion (Section 3.5.3);
//   - the simulated user (accept/reject oracle plus the human time model
//     calibrated against the user study of Section 3.8.4); and
//   - the synthetic scalability simulation of Section 3.8.5.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// PlanItem is one complete query interpretation of an abstract
// interpretation space, identified by Key and carrying its probability
// P(leaf) of being the user's intent.
type PlanItem struct {
	Key  string
	Prob float64
}

// PlanOption is one query construction option over an abstract space:
// Subsumes is the bitmask of the items it subsumes (bit i ↔ item i).
// Abstract spaces are limited to 64 items, which covers the plan-quality
// experiment of Table 3.4 (8–24 interpretations).
type PlanOption struct {
	Key      string
	Subsumes uint64
}

// PlanSpace bundles items and options.
type PlanSpace struct {
	Items   []PlanItem
	Options []PlanOption
}

// Validate checks the space is well-formed for planning.
func (s *PlanSpace) Validate() error {
	if len(s.Items) == 0 {
		return fmt.Errorf("core: empty plan space")
	}
	if len(s.Items) > 64 {
		return fmt.Errorf("core: abstract plan spaces support at most 64 items, got %d", len(s.Items))
	}
	total := 0.0
	for _, it := range s.Items {
		if it.Prob < 0 {
			return fmt.Errorf("core: negative probability for %s", it.Key)
		}
		total += it.Prob
	}
	if total <= 0 {
		return fmt.Errorf("core: zero total probability")
	}
	return nil
}

// fullMask returns the bitmask covering all items.
func (s *PlanSpace) fullMask() uint64 {
	if len(s.Items) == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(s.Items))) - 1
}

// PlanNode is one node of a query construction plan (binary decision
// tree, Definition 3.5.8). Leaf nodes have OptionIdx < 0.
type PlanNode struct {
	// Set is the bitmask of interpretations represented by this node.
	Set uint64
	// OptionIdx is the option decided at this node, or -1 at leaves.
	OptionIdx int
	// Accept/Reject are the children reached by accepting/rejecting.
	Accept, Reject *PlanNode
}

// Plan is a complete query construction plan with its expected
// interaction cost under the space's probabilities.
type Plan struct {
	Root *PlanNode
	Cost float64
}

// planKey memoises subproblems of the brute-force search on the set of
// remaining interpretations. Options are a function of the set (an option
// is useful only while it splits the set), so the set alone identifies the
// subproblem.
type planner struct {
	space *PlanSpace
	memo  map[uint64]memoEntry
	// probs[i] = P(item i); condProb uses renormalisation over the set.
	probs []float64
}

type memoEntry struct {
	cost   float64
	option int // -1 for leaves / unsplittable sets
}

// OptimalPlan runs the brute-force Algorithm 3.1 (with memoisation over
// interpretation subsets) and returns a minimum query construction plan
// and its interaction cost (Definition 3.5.10).
//
// When a multi-item set cannot be split by any remaining option, the plan
// degenerates to a ranked list over that set: the user examines the items
// in descending probability, which costs Σ_i rank(i)·P(i|set) — the
// ranked-list special case of Section 3.5.5.
func OptimalPlan(space *PlanSpace) (*Plan, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	p := &planner{
		space: space,
		memo:  make(map[uint64]memoEntry),
		probs: make([]float64, len(space.Items)),
	}
	for i, it := range space.Items {
		p.probs[i] = it.Prob
	}
	full := space.fullMask()
	cost := p.solve(full)
	root := p.buildTree(full)
	return &Plan{Root: root, Cost: cost}, nil
}

// mass returns the total probability of a set.
func (p *planner) mass(set uint64) float64 {
	total := 0.0
	for set != 0 {
		i := bits.TrailingZeros64(set)
		total += p.probs[i]
		set &= set - 1
	}
	return total
}

// rankedListCost is the expected number of evaluations when scanning the
// set as a probability-ranked list (1-based ranks), conditioned on the set.
func (p *planner) rankedListCost(set uint64) float64 {
	type pair struct{ prob float64 }
	var items []float64
	for s := set; s != 0; s &= s - 1 {
		i := bits.TrailingZeros64(s)
		items = append(items, p.probs[i])
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(items)))
	total := 0.0
	for _, pr := range items {
		total += pr
	}
	if total == 0 {
		return 0
	}
	cost := 0.0
	for r, pr := range items {
		cost += float64(r+1) * (pr / total)
	}
	_ = pair{}
	return cost
}

func (p *planner) solve(set uint64) float64 {
	n := bits.OnesCount64(set)
	if n <= 1 {
		return 0
	}
	if e, ok := p.memo[set]; ok {
		return e.cost
	}
	mass := p.mass(set)
	// The user can always fall back to scanning the ranked query window
	// (the ranked-list QCP of Section 3.5.5), so that cost upper-bounds
	// every subproblem.
	best := p.rankedListCost(set)
	bestOpt := -1
	for oi, opt := range p.space.Options {
		in := set & opt.Subsumes
		out := set &^ opt.Subsumes
		if in == 0 || out == 0 {
			continue // does not split this set
		}
		pin := 0.0
		if mass > 0 {
			pin = p.mass(in) / mass
		}
		// Lemma 3.7.1: Cost = P(R)·Cost(accept) + P(¬R)·Cost(reject) + 1.
		c := pin*p.solve(in) + (1-pin)*p.solve(out) + 1
		if c < best {
			best = c
			bestOpt = oi
		}
	}
	p.memo[set] = memoEntry{cost: best, option: bestOpt}
	return best
}

// buildTree reconstructs the optimal plan tree from the memo table.
func (p *planner) buildTree(set uint64) *PlanNode {
	node := &PlanNode{Set: set, OptionIdx: -1}
	if bits.OnesCount64(set) <= 1 {
		return node
	}
	e := p.memo[set]
	if e.option < 0 {
		return node // ranked-list leaf
	}
	node.OptionIdx = e.option
	opt := p.space.Options[e.option]
	node.Accept = p.buildTree(set & opt.Subsumes)
	node.Reject = p.buildTree(set &^ opt.Subsumes)
	return node
}

// PlanCost evaluates the expected interaction cost of an arbitrary plan
// tree under the space's probabilities (Equation 3.1), treating
// multi-item leaves as ranked lists.
func PlanCost(space *PlanSpace, root *PlanNode) float64 {
	probs := make([]float64, len(space.Items))
	for i, it := range space.Items {
		probs[i] = it.Prob
	}
	p := &planner{space: space, probs: probs}
	total := p.mass(space.fullMask())
	if total == 0 {
		return 0
	}
	var walk func(n *PlanNode, depth float64) float64
	walk = func(n *PlanNode, depth float64) float64 {
		if n == nil {
			return 0
		}
		if n.OptionIdx < 0 {
			mass := p.mass(n.Set)
			if bits.OnesCount64(n.Set) <= 1 {
				return depth * mass / total
			}
			// Ranked-list leaf: depth so far plus expected scan cost.
			return (depth + p.rankedListCost(n.Set)) * mass / total
		}
		return walk(n.Accept, depth+1) + walk(n.Reject, depth+1)
	}
	return walk(root, 0)
}

// GreedyPlan builds a query construction plan with the greedy
// information-gain policy of Algorithm 3.2 applied to an abstract space
// (the configuration of the plan-quality comparison, Table 3.4: the
// threshold is at least the space size, so the hierarchy is fully
// expanded and the only difference from the brute force is the one-step
// option choice). Returns the plan and its cost.
func GreedyPlan(space *PlanSpace) (*Plan, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	probs := make([]float64, len(space.Items))
	for i, it := range space.Items {
		probs[i] = it.Prob
	}
	p := &planner{space: space, probs: probs}
	var build func(set uint64) *PlanNode
	build = func(set uint64) *PlanNode {
		node := &PlanNode{Set: set, OptionIdx: -1}
		if bits.OnesCount64(set) <= 1 {
			return node
		}
		bestOpt := -1
		bestIG := math.Inf(-1)
		h := p.setEntropy(set)
		for oi, opt := range p.space.Options {
			in := set & opt.Subsumes
			out := set &^ opt.Subsumes
			if in == 0 || out == 0 {
				continue
			}
			ig := h - p.conditionalEntropy(set, opt.Subsumes)
			if ig > bestIG {
				bestIG = ig
				bestOpt = oi
			}
		}
		if bestOpt < 0 {
			return node
		}
		opt := p.space.Options[bestOpt]
		node.OptionIdx = bestOpt
		node.Accept = build(set & opt.Subsumes)
		node.Reject = build(set &^ opt.Subsumes)
		return node
	}
	root := build(space.fullMask())
	return &Plan{Root: root, Cost: PlanCost(space, root)}, nil
}

// setEntropy is H(I) of Equation 3.12 over the set, with probabilities
// renormalised to the set.
func (p *planner) setEntropy(set uint64) float64 {
	mass := p.mass(set)
	if mass <= 0 {
		return 0
	}
	h := 0.0
	for s := set; s != 0; s &= s - 1 {
		i := bits.TrailingZeros64(s)
		pr := p.probs[i] / mass
		if pr > 0 {
			h -= pr * math.Log2(pr)
		}
	}
	return h
}

// conditionalEntropy is H(I|O) — the expected entropy after learning
// whether the option subsumes the intended interpretation:
// P(O)·H(I|accept) + P(¬O)·H(I|reject). Equation 3.13 evaluates the
// subsumed branch; we use the full conditional expectation, which is the
// quantity the information gain of Equation 3.11 requires.
func (p *planner) conditionalEntropy(set, subsumes uint64) float64 {
	in := set & subsumes
	out := set &^ subsumes
	mass := p.mass(set)
	if mass <= 0 {
		return 0
	}
	pin := p.mass(in) / mass
	return pin*p.setEntropy(in) + (1-pin)*p.setEntropy(out)
}
