package keysearch

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

var bg = context.Background()

// movieSchema is the running-example schema of the thesis.
func movieSchema() []Table {
	return []Table{
		{
			Name:       "actor",
			Columns:    []Column{{Name: "id"}, {Name: "name", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:       "movie",
			Columns:    []Column{{Name: "id"}, {Name: "title", Text: true}, {Name: "year", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:    "acts",
			Columns: []Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Text: true}},
			ForeignKeys: []ForeignKey{
				{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
				{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			},
		},
	}
}

func builtEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng, err := New(movieSchema(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Tom Hanks"},
		{"actor", "a2", "Tom Cruise"},
		{"actor", "a3", "Jack London"},
		{"movie", "m1", "The Terminal", "2004"},
		{"movie", "m2", "London Boulevard", "2010"},
		{"acts", "a1", "m1", "Viktor"},
		{"acts", "a3", "m2", "Mitchel"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// search is shorthand for a Search call whose error fails the test.
func search(t *testing.T, eng *Engine, q string, k int) []Result {
	t.Helper()
	resp, err := eng.Search(bg, SearchRequest{Query: q, K: k})
	if err != nil {
		t.Fatalf("Search(%q): %v", q, err)
	}
	return resp.Results
}

func TestNewValidatesSchema(t *testing.T) {
	if _, err := New([]Table{{Name: "t"}}); err == nil {
		t.Fatal("empty columns accepted")
	}
	bad := []Table{{
		Name:    "child",
		Columns: []Column{{Name: "pid"}},
		ForeignKeys: []ForeignKey{
			{Column: "pid", RefTable: "ghost", RefColumn: "id"},
		},
	}}
	if _, err := New(bad); err == nil {
		t.Fatal("dangling FK accepted")
	}
}

func TestLifecycleErrors(t *testing.T) {
	eng, err := New(movieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(bg, SearchRequest{Query: "hanks", K: 3}); err == nil {
		t.Fatal("search before Build accepted")
	}
	if err := eng.Insert("ghost", "x"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Build(); err == nil {
		t.Fatal("double Build accepted")
	}
	if err := eng.Insert("actor", "a9", "X"); err == nil {
		t.Fatal("insert after Build accepted")
	}
	if _, err := eng.Search(bg, SearchRequest{Query: "", K: 3}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := eng.Search(bg, SearchRequest{Query: "zzzznope", K: 3}); err == nil {
		t.Fatal("unmatched query accepted")
	}
}

func TestSearchRanksInterpretations(t *testing.T) {
	eng := builtEngine(t)
	results := search(t, eng, "london", 10)
	if len(results) < 2 {
		t.Fatalf("london should be ambiguous, got %d interpretations", len(results))
	}
	// Probabilities are normalised and descending.
	for i, r := range results {
		if r.Probability <= 0 || r.Probability > 1 {
			t.Fatalf("probability out of range: %+v", r)
		}
		if i > 0 && r.Probability > results[i-1].Probability+1e-12 {
			t.Fatal("results not sorted by probability")
		}
		if r.Query == "" || len(r.Tables) == 0 {
			t.Fatalf("result missing rendering: %+v", r)
		}
	}
	// k caps the result count; SpaceSize reports the pre-cut space.
	resp, err := eng.Search(bg, SearchRequest{Query: "london", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Query != results[0].Query {
		t.Fatal("k=1 should return the top interpretation")
	}
	if resp.SpaceSize < len(results) {
		t.Fatalf("SpaceSize = %d, want >= %d", resp.SpaceSize, len(results))
	}
}

func TestSearchRowPreviews(t *testing.T) {
	eng := builtEngine(t)
	resp, err := eng.Search(bg, SearchRequest{Query: "london", K: 2, RowLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range resp.Results {
		for _, row := range r.Preview {
			for _, v := range row {
				if strings.Contains(strings.ToLower(v), "london") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no preview row contains the keyword")
	}
}

func TestResultRows(t *testing.T) {
	eng := builtEngine(t)
	results := search(t, eng, "hanks terminal", 10)
	// Find the join interpretation and execute it.
	for _, r := range results {
		if len(r.Tables) != 3 {
			continue
		}
		rows, err := r.Rows(10)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			continue
		}
		row := rows[0]
		if row["actor.name"] != "Tom Hanks" {
			t.Fatalf("joined row = %v", row)
		}
		if !strings.Contains(row["movie.title"], "Terminal") {
			t.Fatalf("joined row = %v", row)
		}
		return
	}
	t.Fatal("no executable join interpretation found")
}

func TestDiversify(t *testing.T) {
	eng := builtEngine(t)
	div, err := eng.Diversify(bg, DiversifyRequest{Query: "london", K: 3, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(div.Results) == 0 {
		t.Fatal("empty diversification")
	}
	ranked := search(t, eng, "london", 1)
	// DivQ drops empty-result interpretations, so the first diversified
	// interpretation is the most relevant non-empty one — its probability
	// cannot exceed the global top's.
	if div.Results[0].Probability > ranked[0].Probability+1e-12 {
		t.Fatalf("diversified head outranks global top: %v vs %v",
			div.Results[0].Probability, ranked[0].Probability)
	}
	// Every diversified interpretation returns results.
	for _, r := range div.Results {
		rows, err := r.Rows(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("diversified interpretation with empty results: %v", r.Query)
		}
	}
}

func TestConstructionSession(t *testing.T) {
	eng := builtEngine(t)
	c, err := eng.Construct(bg, ConstructRequest{Query: "london 2010", StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the session towards "London Boulevard the movie from 2010":
	// accept questions mentioning movie.title or movie.year, reject the
	// rest.
	for !c.Done() {
		q, ok := c.Next()
		if !ok {
			break
		}
		if strings.Contains(q.Text, "movie.") {
			err = c.Accept(bg, q)
		} else {
			err = c.Reject(bg, q)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	cands := c.Candidates()
	if len(cands) == 0 {
		t.Fatal("construction lost all candidates")
	}
	if c.Steps() == 0 {
		t.Fatal("no questions asked for ambiguous query")
	}
	for _, r := range cands {
		if !strings.Contains(r.Query, "movie") {
			t.Fatalf("candidate does not honour accepted options: %v", r.Query)
		}
	}
}

func TestConstructErrors(t *testing.T) {
	eng, err := New(movieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Construct(bg, ConstructRequest{Query: "x"}); err == nil {
		t.Fatal("construct before Build accepted")
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Construct(bg, ConstructRequest{Query: ""}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := eng.Construct(bg, ConstructRequest{Query: "qqqq"}); err == nil {
		t.Fatal("unmatched query accepted")
	}
}

func TestDemoDatasets(t *testing.T) {
	movies, err := DemoMovies(1)
	if err != nil {
		t.Fatal(err)
	}
	if movies.NumTables() != 7 {
		t.Fatalf("movies tables = %d", movies.NumTables())
	}
	if movies.NumRows() == 0 || movies.NumTemplates() == 0 {
		t.Fatal("demo movies empty")
	}
	qs := movies.SampleQueries(5)
	if len(qs) == 0 {
		t.Fatal("no sample queries")
	}
	res := search(t, movies, qs[0], 3)
	if len(res) == 0 {
		t.Fatal("sample query unusable")
	}

	music, err := DemoMusic(1)
	if err != nil {
		t.Fatal(err)
	}
	if music.NumTables() != 5 {
		t.Fatalf("music tables = %d", music.NumTables())
	}
}

func TestKeywords(t *testing.T) {
	eng := builtEngine(t)
	ks := eng.Keywords("lon", 0)
	found := false
	for _, k := range ks {
		if k == "london" {
			found = true
		}
		if !strings.HasPrefix(k, "lon") {
			t.Fatalf("keyword %q does not match prefix", k)
		}
	}
	if !found {
		t.Fatal("london missing from prefix search")
	}
	if got := eng.Keywords("", 3); len(got) != 3 {
		t.Fatalf("limit not honoured: %d", len(got))
	}
	// The dictionary is sorted.
	all := eng.Keywords("", 0)
	for i := 1; i < len(all); i++ {
		if all[i] < all[i-1] {
			t.Fatal("keywords not sorted")
		}
	}
	unbuilt, err := New(movieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if unbuilt.Keywords("a", 0) != nil {
		t.Fatal("keywords before Build should be nil")
	}
}

func TestResultSQL(t *testing.T) {
	eng := builtEngine(t)
	for _, r := range search(t, eng, "hanks terminal", 5) {
		if !strings.HasPrefix(r.SQL, "SELECT ") || !strings.Contains(r.SQL, "LIKE") {
			t.Fatalf("SQL = %q", r.SQL)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	eng := builtEngine(t)
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRows() != eng.NumRows() || loaded.NumTables() != eng.NumTables() {
		t.Fatal("shape changed across save/load")
	}
	// Search behaviour survives the round trip.
	a := search(t, eng, "london", 0)
	b := search(t, loaded, "london", 0)
	if len(a) != len(b) {
		t.Fatalf("interpretations changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query != b[i].Query {
			t.Fatalf("ranking changed at %d: %q vs %q", i, a[i].Query, b[i].Query)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
