package keysearch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagraph"
	"repro/internal/durable"
	"repro/internal/invindex"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// This file implements the engine's durability subsystem: snapshot
// persistence (SaveSnapshot / OpenSnapshot), the durable state
// directory with its mutation write-ahead log and crash recovery
// (Open), and tombstone-compacting checkpoints (Checkpoint plus the
// background policy gated by WithDurability).
//
// On-disk layout of a state directory (see docs/persistence.md):
//
//	<dir>/snapshot.ksnap   complete engine snapshot (sectioned, CRC'd)
//	<dir>/wal.log          mutation batches since that snapshot
//
// Crash consistency: Apply appends the batch to the WAL (fsync) before
// publishing its snapshot; Checkpoint writes the new snapshot file
// atomically (temp + fsync + rename) before truncating the WAL. A crash
// between those two steps leaves WAL records at or below the snapshot's
// epoch, which recovery skips; a crash mid-append leaves a torn final
// record, which recovery truncates. Open therefore always reconstructs
// exactly the batches Apply acknowledged.

// Snapshot file and WAL names inside a durable state directory.
const (
	snapshotFileName = "snapshot.ksnap"
	walFileName      = "wal.log"
)

// Section names of the engine snapshot container.
const (
	sectionMeta      = "meta"
	sectionDatabase  = "database"
	sectionInvIndex  = "invindex"
	sectionUsage     = "usage"
	sectionDataGraph = "datagraph"
	sectionQCache    = "qcache"
)

// ErrDurabilityDisabled is returned by Checkpoint on an engine built
// without WithDurability.
var ErrDurabilityDisabled = errors.New("keysearch: durability is disabled; create the engine with WithDurability or Open")

// durState is the runtime of a durable engine: the open WAL, the
// checkpoint policy goroutine, and the counters /healthz reports.
// Mutating fields are guarded by the engine's applyMu (every writer —
// Apply, Checkpoint, Close — holds it).
type durState struct {
	dir string
	wal *durable.WAL

	// pending counts WAL batches since the last checkpoint; lastCkpt is
	// the epoch of the on-disk snapshot. Both read lock-free by /healthz.
	pending  atomic.Int64
	lastCkpt atomic.Uint64

	// kick wakes the policy goroutine when pending passes the batch
	// bound; stop ends it. stopOnce makes Close idempotent.
	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// SaveSnapshot serialises the engine's current snapshot — the complete
// physical database (tombstones and RowID high-water marks included),
// per-column posting lists, the inverted index with its statistics and
// term dictionary, template-usage priors, and the data graph when it is
// materialised — to w as a versioned, per-section checksummed container.
// OpenSnapshot restores it without re-running Build, with byte-identical
// search behaviour. Safe to call while the engine serves traffic and
// applies mutations: the snapshot written is the one current at entry.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	s := e.current()
	if s == nil {
		return fmt.Errorf("keysearch: call Build before saving a snapshot")
	}
	// SaveSnapshot runs without the writer lock, so the answer cache may
	// hold entries published for snapshots newer than s; only the locked
	// writers (Build's init, Checkpoint) persist the hot set.
	return e.encodeSnapshot(s, w, false)
}

// encodeSnapshot writes s as a sectioned container. includeCache also
// persists the answer cache's hot set; it is only correct when the
// caller holds applyMu, which guarantees every resident entry is valid
// for exactly the snapshot being written.
func (e *Engine) encodeSnapshot(s *snapshot, w io.Writer, includeCache bool) error {
	sw, err := durable.NewSnapshotWriter(w)
	if err != nil {
		return err
	}

	var meta durable.Enc
	meta.Uvarint(s.epoch)
	meta.Int(e.cfg.maxJoinPath)
	meta.Int(e.cfg.maxTemplates)
	meta.Bool(e.cfg.useCoOccurrence)
	meta.Float(e.cfg.alpha)
	meta.Bool(e.cfg.includeSchemaTerms)
	meta.Bool(e.cfg.segmentPhrases)
	meta.Float(e.cfg.segmentThreshold)
	meta.Bool(e.cfg.enableAggregates)
	if err := sw.Section(sectionMeta, meta.Bytes()); err != nil {
		return err
	}

	var db durable.Enc
	s.db.EncodeSnapshot(&db, relstore.EncodeOptions{Physical: true, Postings: true})
	if err := sw.Section(sectionDatabase, db.Bytes()); err != nil {
		return err
	}

	var ix durable.Enc
	s.ix.EncodeSnapshot(&ix)
	if err := sw.Section(sectionInvIndex, ix.Bytes()); err != nil {
		return err
	}

	if len(s.cat.UsageCount) > 0 {
		var usage durable.Enc
		ids := make([]int, 0, len(s.cat.UsageCount))
		for id := range s.cat.UsageCount {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		usage.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			usage.Int(id)
			usage.Int(s.cat.UsageCount[id])
		}
		if err := sw.Section(sectionUsage, usage.Bytes()); err != nil {
			return err
		}
	}

	if g := s.dg.Load(); g != nil {
		var dg durable.Enc
		g.EncodeSnapshot(&dg)
		if err := sw.Section(sectionDataGraph, dg.Bytes()); err != nil {
			return err
		}
	}

	if includeCache && e.qc != nil {
		if err := sw.Section(sectionQCache, e.qc.EncodeSnapshot()); err != nil {
			return err
		}
	}
	return sw.Close()
}

// OpenSnapshot restores an engine from a snapshot written by
// SaveSnapshot. The build-shaping options persisted in the snapshot
// (join-path bound, template cap, ranking parameters, query-syntax
// flags) are applied first, so a bare OpenSnapshot(r) reproduces the
// saving engine exactly; opts are applied on top for deployment knobs
// (parallelism, caches, WithMutations, WithRebuildIndexes).
//
// The restored engine is built and ready; it is memory-only — attaching
// a state directory (write-ahead log, checkpoints) is Open's job.
func OpenSnapshot(r io.Reader, opts ...Option) (*Engine, error) {
	sr, err := durable.NewSnapshotReader(r)
	if err != nil {
		return nil, err
	}
	sections := make(map[string][]byte)
	for {
		name, payload, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("keysearch: open snapshot: %w", err)
		}
		sections[name] = payload
	}

	meta := sections[sectionMeta]
	if meta == nil {
		return nil, fmt.Errorf("keysearch: open snapshot: missing %s section", sectionMeta)
	}
	md := durable.NewDec(meta)
	epoch := md.Uvarint()
	persisted := []Option{
		WithMaxJoinPath(md.Int()),
		WithMaxTemplates(md.Int()),
	}
	if md.Bool() {
		persisted = append(persisted, WithCoOccurrence())
	}
	persisted = append(persisted, WithAlpha(md.Float()))
	if md.Bool() {
		persisted = append(persisted, WithSchemaTerms())
	}
	segment := md.Bool()
	threshold := md.Float()
	if segment {
		persisted = append(persisted, WithSegmentPhrases(threshold))
	}
	if md.Bool() {
		persisted = append(persisted, WithAggregates())
	}
	if err := md.Err(); err != nil {
		return nil, fmt.Errorf("keysearch: open snapshot: meta: %w", err)
	}
	cfg := newConfig(append(persisted, opts...))

	rawDB := sections[sectionDatabase]
	if rawDB == nil {
		return nil, fmt.Errorf("keysearch: open snapshot: missing %s section", sectionDatabase)
	}
	db, err := relstore.DecodeSnapshot(durable.NewDec(rawDB))
	if err != nil {
		return nil, fmt.Errorf("keysearch: open snapshot: %w", err)
	}
	db.Prepare() // equality indexes are not persisted; re-materialise the canonical set

	var ix *invindex.Index
	if raw := sections[sectionInvIndex]; raw != nil && !cfg.rebuildIndexes {
		ix, err = invindex.DecodeSnapshot(durable.NewDec(raw), db)
		if err != nil {
			return nil, fmt.Errorf("keysearch: open snapshot: %w", err)
		}
	} else {
		ix = invindex.Build(db)
	}

	graph := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(graph, schemagraph.EnumerateOptions{
		MaxNodes: cfg.maxJoinPath,
		MaxTrees: cfg.maxTemplates,
	})
	if raw := sections[sectionUsage]; raw != nil {
		ud := durable.NewDec(raw)
		n := int(ud.Uvarint())
		for i := 0; i < n && ud.Err() == nil; i++ {
			id := ud.Int()
			count := ud.Int()
			cat.RecordUsage(id, count)
		}
		if err := ud.Err(); err != nil {
			return nil, fmt.Errorf("keysearch: open snapshot: usage: %w", err)
		}
	}

	eng := &Engine{cfg: cfg, db: db}
	if cfg.answerCacheBytes > 0 && !cfg.execCacheOff {
		eng.qc = qcache.New(cfg.answerCacheBytes)
		if raw := sections[sectionQCache]; raw != nil {
			// Restore the persisted hot set so the engine restarts warm.
			// The section was written under the writer lock, so every
			// entry is valid for the snapshot decoded above; WAL replay
			// (Open) invalidates through the publish path as usual.
			if err := eng.qc.DecodeSnapshot(raw); err != nil {
				return nil, fmt.Errorf("keysearch: open snapshot: %w", err)
			}
		}
	}
	s := &snapshot{
		epoch: epoch,
		db:    db,
		ix:    ix,
		graph: graph,
		cat:   cat,
		model: eng.newModel(ix, cat),
	}
	if raw := sections[sectionDataGraph]; raw != nil && !cfg.rebuildIndexes {
		g, err := datagraph.DecodeSnapshot(durable.NewDec(raw), db)
		if err != nil {
			return nil, fmt.Errorf("keysearch: open snapshot: %w", err)
		}
		s.dg.Store(g)
	}
	eng.snap.Store(s)
	eng.built = true
	return eng, nil
}

// Open recovers a durable engine from its state directory: the latest
// snapshot file is restored and the write-ahead log's tail — every
// batch acknowledged after that snapshot, tolerating a torn final
// record — is replayed in epoch order. The engine then resumes durable
// operation in dir (WAL appends, background checkpoints).
//
// Open fails with fs.ErrNotExist when dir holds no snapshot; callers
// wanting open-or-build semantics (cmd/serve) test for that, build
// fresh with WithDurability(dir), and get the same directory layout.
func Open(dir string, opts ...Option) (*Engine, error) {
	f, err := os.Open(filepath.Join(dir, snapshotFileName))
	if err != nil {
		return nil, fmt.Errorf("keysearch: open %s: %w", dir, err)
	}
	eng, err := OpenSnapshot(f, opts...)
	f.Close()
	if err != nil {
		return nil, err
	}
	eng.cfg.durDir = dir

	wal, recs, err := durable.RecoverWAL(filepath.Join(dir, walFileName), !eng.cfg.walSyncOff)
	if err != nil {
		return nil, err
	}
	replayed := 0
	for _, rec := range recs {
		cur := eng.Epoch()
		if rec.Epoch <= cur {
			// Older than the snapshot: the crash hit between checkpoint
			// rename and WAL truncation. Already folded in; skip.
			continue
		}
		if rec.Epoch != cur+1 {
			wal.Close()
			return nil, fmt.Errorf("keysearch: open %s: wal gap: record epoch %d after snapshot epoch %d",
				dir, rec.Epoch, cur)
		}
		muts, err := decodeMutations(rec.Body)
		if err != nil {
			wal.Close()
			return nil, fmt.Errorf("keysearch: open %s: %w", dir, err)
		}
		next, _, stale, err := eng.nextSnapshot(muts)
		if err != nil {
			wal.Close()
			return nil, fmt.Errorf("keysearch: open %s: replay epoch %d: %w", dir, rec.Epoch, err)
		}
		// publish (not a bare pointer store): replayed batches must
		// invalidate any restored hot-set entries they touch, exactly as
		// the original Apply did.
		eng.publish(next, stale)
		replayed++
	}

	// Records already folded into the snapshot (skipped above) are not
	// pending replay work; keep the log's count consistent with the
	// pending gauge so the next checkpoint reports honest numbers.
	wal.SetRecords(replayed)
	eng.dur = &durState{
		dir:  dir,
		wal:  wal,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	eng.dur.pending.Store(int64(replayed))
	eng.dur.lastCkpt.Store(eng.Epoch() - uint64(replayed))
	eng.startCheckpointPolicy()
	return eng, nil
}

// initDurability is Build's durable initialisation: create the state
// directory, write the epoch-0 snapshot, truncate any stale WAL, and
// start the checkpoint policy.
func (e *Engine) initDurability() error {
	dir := e.cfg.durDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("keysearch: durability: %w", err)
	}
	// A stale log from a previous incarnation must be truncated BEFORE
	// the fresh snapshot is written: in the other order, a crash between
	// the two steps leaves an epoch-0 snapshot next to old records whose
	// epochs (1..N) would replay cleanly onto the new dataset. Truncate-
	// first only risks the benign window (old snapshot + empty WAL, or
	// no snapshot at all → rebuilt on the next boot).
	wal, _, err := durable.RecoverWAL(filepath.Join(dir, walFileName), !e.cfg.walSyncOff)
	if err != nil {
		return err
	}
	if err := wal.Reset(); err != nil {
		wal.Close()
		return err
	}
	if err := e.writeSnapshotFile(e.current()); err != nil {
		wal.Close()
		return err
	}
	e.dur = &durState{
		dir:  dir,
		wal:  wal,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	e.startCheckpointPolicy()
	return nil
}

// writeSnapshotFile atomically replaces the directory's snapshot file
// with the given snapshot's encoding.
func (e *Engine) writeSnapshotFile(s *snapshot) error {
	path := filepath.Join(e.cfg.durDir, snapshotFileName)
	return durable.WriteFileAtomic(path, func(w io.Writer) error {
		// All writeSnapshotFile callers (initDurability, Checkpoint) hold
		// applyMu, so persisting the hot set here is consistent with s.
		return e.encodeSnapshot(s, w, true)
	})
}

// logBatch appends one acknowledged batch to the WAL. Callers hold
// applyMu.
func (d *durState) logBatch(epoch uint64, muts []Mutation) error {
	return d.wal.Append(epoch, encodeMutations(muts))
}

// noteBatch counts a committed batch and wakes the checkpoint policy
// when the batch bound is reached. Callers hold applyMu.
func (d *durState) noteBatch(bound int) {
	if d.pending.Add(1) >= int64(bound) {
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
}

// encodeMutations serialises one batch as a WAL record body.
func encodeMutations(muts []Mutation) []byte {
	var e durable.Enc
	e.Uvarint(uint64(len(muts)))
	for _, m := range muts {
		e.String(string(m.Op))
		e.String(m.Table)
		e.String(m.Key)
		e.Strings(m.Values)
	}
	return e.Bytes()
}

// decodeMutations parses a WAL record body.
func decodeMutations(body []byte) ([]Mutation, error) {
	d := durable.NewDec(body)
	n := int(d.Uvarint())
	// Cap the pre-allocation by the input size (a mutation encodes to at
	// least 4 bytes), so a corrupt count cannot demand gigabytes.
	muts := make([]Mutation, 0, min(n, d.Remaining()/4+1))
	for i := 0; i < n && d.Err() == nil; i++ {
		muts = append(muts, Mutation{
			Op:     MutationOp(d.String()),
			Table:  d.String(),
			Key:    d.String(),
			Values: d.Strings(),
		})
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("keysearch: wal record: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("keysearch: wal record: %d trailing bytes", d.Remaining())
	}
	return muts, nil
}

// CheckpointStats reports one checkpoint.
type CheckpointStats struct {
	// Epoch is the snapshot epoch persisted by this checkpoint.
	Epoch uint64 `json:"epoch"`
	// Compacted lists tables whose tombstones the checkpoint dropped via
	// rebuild-and-swap (dead/live ratio above the configured threshold).
	Compacted []string `json:"compacted,omitempty"`
	// WALBatchesDropped is the number of logged batches the truncated WAL
	// contained — all now redundant with the snapshot file.
	WALBatchesDropped int `json:"wal_batches_dropped"`
}

// Checkpoint persists the current state and truncates the write-ahead
// log: recovery cost drops back to "read one snapshot". When a table's
// dead/live ratio exceeds the compaction threshold, its tombstones are
// first compacted away by a rebuild-and-swap of that table (published
// like a mutation batch: atomically, without disturbing in-flight
// readers), so churn-heavy tables cannot grow their physical row space
// — and every later Apply's copy-on-write cost — without bound.
//
// Checkpoint serialises with Apply on the writer lock; readers are
// never blocked. The background policy calls it automatically; the
// admin endpoint POST /v1/checkpoint and a graceful shutdown call it
// explicitly.
func (e *Engine) Checkpoint(ctx context.Context) (*CheckpointStats, error) {
	if e.dur == nil {
		return nil, ErrDurabilityDisabled
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	s := e.current()
	var compacted []string
	for _, t := range s.db.Tables() {
		if t.DeadRatio() > e.cfg.compactRatio {
			compacted = append(compacted, t.Schema.Name)
		}
	}
	if len(compacted) > 0 {
		s = e.compactSnapshot(s, compacted)
		// Compaction moves RowIDs at an unchanged epoch, and every cached
		// answer speaks in RowIDs: publish through the answer cache with
		// every attribute of the compacted tables so their entries are
		// dropped atomically with the swap.
		e.publish(s, relstore.AllTableAttrs(s.db, compacted))
	}
	if err := e.writeSnapshotFile(s); err != nil {
		return nil, err
	}
	dropped := e.dur.wal.Records()
	if err := e.dur.wal.Reset(); err != nil {
		return nil, err
	}
	e.dur.pending.Store(0)
	e.dur.lastCkpt.Store(s.epoch)
	return &CheckpointStats{Epoch: s.epoch, Compacted: compacted, WALBatchesDropped: dropped}, nil
}

// compactSnapshot rebuilds the named tables without tombstones and
// re-derives every RowID-keyed structure over the compacted database.
// Row statistics are unchanged — only physical identifiers move — so
// the ranking model inherits the full memoised cache, and search
// responses are byte-identical before and after (the responses never
// expose RowIDs; the differential tests pin this). The epoch is kept:
// compaction changes representation, not logical content.
func (e *Engine) compactSnapshot(s *snapshot, tables []string) *snapshot {
	ndb := s.db.CompactTables(tables)
	ndb.Prepare()
	nix := invindex.Build(ndb)
	model := e.newModel(nix, s.cat)
	model.InheritCache(s.model, nil) // no attribute statistics changed
	next := &snapshot{
		epoch: s.epoch,
		db:    ndb,
		ix:    nix,
		graph: s.graph,
		cat:   s.cat,
		model: model,
	}
	if s.dg.Load() != nil {
		// RowIDs moved: rebuild rather than patch, staying warm.
		next.dg.Store(datagraph.Build(ndb))
	}
	return next
}

// startCheckpointPolicy launches the background goroutine that
// checkpoints when mutation batches are pending and either the
// configured interval elapses or the batch bound is passed. Read-only
// durable engines skip it: with no Apply there is nothing to fold.
func (e *Engine) startCheckpointPolicy() {
	if !e.cfg.mutable {
		return
	}
	d := e.dur
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ticker := time.NewTicker(e.cfg.checkpointInterval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
			case <-d.kick:
			}
			if d.pending.Load() > 0 {
				// Errors here (disk full, directory gone) are retried on
				// the next tick; Apply keeps the WAL as the source of
				// truth in the meantime.
				_, _ = e.Checkpoint(context.Background())
			}
		}
	}()
}

// Close ends durable operation: the checkpoint policy is stopped, a
// final checkpoint folds the WAL tail into the snapshot file, and the
// log is closed. On a memory-only engine Close is a no-op. Close is
// idempotent; the engine keeps serving reads afterwards, but further
// Apply calls fail (their log is gone).
func (e *Engine) Close() error {
	if e.dur == nil {
		return nil
	}
	var err error
	e.dur.stopOnce.Do(func() {
		close(e.dur.stop)
		e.dur.wg.Wait()
		if _, cerr := e.Checkpoint(context.Background()); cerr != nil {
			err = cerr
		}
		if cerr := e.dur.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	})
	return err
}

// Durable reports whether the engine persists to a state directory.
func (e *Engine) Durable() bool { return e.dur != nil }

// DataDir returns the durable state directory ("" when memory-only).
func (e *Engine) DataDir() string {
	if e.dur == nil {
		return ""
	}
	return e.dur.dir
}

// PendingWALBatches returns the number of mutation batches logged since
// the last checkpoint — the replay work a crash right now would cost.
func (e *Engine) PendingWALBatches() int {
	if e.dur == nil {
		return 0
	}
	return int(e.dur.pending.Load())
}

// LastCheckpointEpoch returns the epoch of the on-disk snapshot file.
func (e *Engine) LastCheckpointEpoch() uint64 {
	if e.dur == nil {
		return 0
	}
	return e.dur.lastCkpt.Load()
}
