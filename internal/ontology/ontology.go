// Package ontology models the class hierarchies used by FreeQ (the
// abstract ontology layer over a database schema, Chapter 5) and by the
// YAGO+F matching (Chapter 6): a rooted DAG-free taxonomy of named
// classes, each optionally carrying a set of instance identifiers and a
// set of database tables mapped to it.
package ontology

import (
	"fmt"
	"sort"
)

// Class is one concept of the taxonomy.
type Class struct {
	ID   int
	Name string
	// Parent is the parent class ID, or -1 at the root.
	Parent int
	// Depth is the distance from the root (root = 0).
	Depth int
}

// Ontology is a rooted tree of classes with instance and table
// annotations.
type Ontology struct {
	classes  []Class
	children map[int][]int
	byName   map[string]int

	// instances per class (direct members, not inherited).
	instances map[int]map[string]bool
	// tables mapped to a class (the schema layer of FreeQ / YAGO+F).
	tables map[int][]string
}

// New creates an ontology with a single root class of the given name.
func New(rootName string) *Ontology {
	o := &Ontology{
		children:  make(map[int][]int),
		byName:    make(map[string]int),
		instances: make(map[int]map[string]bool),
		tables:    make(map[int][]string),
	}
	o.classes = append(o.classes, Class{ID: 0, Name: rootName, Parent: -1, Depth: 0})
	o.byName[rootName] = 0
	return o
}

// Root returns the root class ID (always 0).
func (o *Ontology) Root() int { return 0 }

// AddClass adds a class under the given parent and returns its ID.
func (o *Ontology) AddClass(name string, parent int) (int, error) {
	if parent < 0 || parent >= len(o.classes) {
		return 0, fmt.Errorf("ontology: parent %d does not exist", parent)
	}
	if _, dup := o.byName[name]; dup {
		return 0, fmt.Errorf("ontology: class %q already exists", name)
	}
	id := len(o.classes)
	o.classes = append(o.classes, Class{
		ID: id, Name: name, Parent: parent, Depth: o.classes[parent].Depth + 1,
	})
	o.children[parent] = append(o.children[parent], id)
	o.byName[name] = id
	return id, nil
}

// NumClasses returns the number of classes including the root.
func (o *Ontology) NumClasses() int { return len(o.classes) }

// Class returns the class record by ID.
func (o *Ontology) Class(id int) (Class, bool) {
	if id < 0 || id >= len(o.classes) {
		return Class{}, false
	}
	return o.classes[id], true
}

// ByName returns the ID of the named class.
func (o *Ontology) ByName(name string) (int, bool) {
	id, ok := o.byName[name]
	return id, ok
}

// Children returns the direct subclasses.
func (o *Ontology) Children(id int) []int {
	out := make([]int, len(o.children[id]))
	copy(out, o.children[id])
	return out
}

// IsLeaf reports whether the class has no subclasses.
func (o *Ontology) IsLeaf(id int) bool { return len(o.children[id]) == 0 }

// Leaves returns all leaf class IDs in ascending order.
func (o *Ontology) Leaves() []int {
	var out []int
	for _, c := range o.classes {
		if o.IsLeaf(c.ID) {
			out = append(out, c.ID)
		}
	}
	return out
}

// Ancestors returns the path from the class's parent up to the root.
func (o *Ontology) Ancestors(id int) []int {
	var out []int
	for {
		c, ok := o.Class(id)
		if !ok || c.Parent < 0 {
			return out
		}
		out = append(out, c.Parent)
		id = c.Parent
	}
}

// Subtree returns the class and all descendants (preorder).
func (o *Ontology) Subtree(id int) []int {
	var out []int
	stack := []int{id}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		kids := o.children[v]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return out
}

// AddInstance records an instance as a direct member of the class.
func (o *Ontology) AddInstance(class int, instance string) {
	set := o.instances[class]
	if set == nil {
		set = make(map[string]bool)
		o.instances[class] = set
	}
	set[instance] = true
}

// DirectInstances returns the class's direct instances, sorted.
func (o *Ontology) DirectInstances(class int) []string {
	set := o.instances[class]
	out := make([]string, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// DirectInstanceCount returns the number of direct instances.
func (o *Ontology) DirectInstanceCount(class int) int { return len(o.instances[class]) }

// InstancesBelow returns the union of direct instances over the class's
// subtree, sorted.
func (o *Ontology) InstancesBelow(class int) []string {
	set := make(map[string]bool)
	for _, id := range o.Subtree(class) {
		for i := range o.instances[id] {
			set[i] = true
		}
	}
	out := make([]string, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// TotalInstances returns the number of distinct instances in the whole
// ontology.
func (o *Ontology) TotalInstances() int {
	set := make(map[string]bool)
	for _, m := range o.instances {
		for i := range m {
			set[i] = true
		}
	}
	return len(set)
}

// MapTable attaches a database table to a class (the YAGO+F structure of
// Chapter 6 / the FreeQ ontology layer of Chapter 5).
func (o *Ontology) MapTable(class int, table string) {
	o.tables[class] = append(o.tables[class], table)
}

// TablesAt returns the tables mapped directly to the class, in mapping
// order.
func (o *Ontology) TablesAt(class int) []string {
	out := make([]string, len(o.tables[class]))
	copy(out, o.tables[class])
	return out
}

// TablesBelow returns all tables mapped within the class's subtree.
func (o *Ontology) TablesBelow(class int) []string {
	var out []string
	for _, id := range o.Subtree(class) {
		out = append(out, o.tables[id]...)
	}
	return out
}

// ClassOfTable returns the (first) class a table is mapped to, or -1.
func (o *Ontology) ClassOfTable(table string) int {
	for id, ts := range o.tables {
		for _, t := range ts {
			if t == table {
				return id
			}
		}
	}
	return -1
}

// MaxDepth returns the maximum class depth.
func (o *Ontology) MaxDepth() int {
	max := 0
	for _, c := range o.classes {
		if c.Depth > max {
			max = c.Depth
		}
	}
	return max
}

// CountByDepth returns the number of classes at each depth (index =
// depth), the distribution reported in Table 6.1.
func (o *Ontology) CountByDepth() []int {
	out := make([]int, o.MaxDepth()+1)
	for _, c := range o.classes {
		out[c.Depth]++
	}
	return out
}
