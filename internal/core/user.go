package core

import (
	"fmt"
	"time"

	"repro/internal/query"
)

// SimulatedUser is the accept/reject oracle of the automatic experiments
// (Section 3.8.2): it accepts an option iff the option subsumes the
// ground-truth intended interpretation. It also carries the human time
// model used to reproduce the user-study comparison of Figure 3.7.
type SimulatedUser struct {
	// Intended is the ground-truth complete interpretation.
	Intended *query.Interpretation

	// SecondsPerOption is the time a participant spends evaluating one
	// query construction option. Calibrated from the thesis's category-11
	// datum (63 s for ≈7 options): 9 s/option.
	SecondsPerOption float64
	// SecondsPerRank is the time spent scanning one entry of the ranked
	// query list. Calibrated from the category-11 ranking datum
	// (270 s for ranks above 220): 1.2 s/entry.
	SecondsPerRank float64
	// SetupSeconds is the fixed per-task overhead (reading the task,
	// typing keywords): 10 s.
	SetupSeconds float64
}

// NewSimulatedUser returns a user with the calibrated time model.
func NewSimulatedUser(intended *query.Interpretation) *SimulatedUser {
	return &SimulatedUser{
		Intended:         intended,
		SecondsPerOption: 9,
		SecondsPerRank:   1.2,
		SetupSeconds:     10,
	}
}

// Evaluate decides on one option: accept iff it subsumes the intent.
func (u *SimulatedUser) Evaluate(o query.Option) bool {
	return o.Subsumes(u.Intended)
}

// ConstructionTime returns the modelled wall-clock time of a construction
// session with the given interaction cost and the final scan over the
// remaining interpretations.
func (u *SimulatedUser) ConstructionTime(steps, remainingRank int) time.Duration {
	secs := u.SetupSeconds + float64(steps)*u.SecondsPerOption + float64(remainingRank)*u.SecondsPerRank
	return time.Duration(secs * float64(time.Second))
}

// RankingTime returns the modelled wall-clock time of finding the intent
// at the given rank of a plain ranked list.
func (u *SimulatedUser) RankingTime(rank int) time.Duration {
	secs := u.SetupSeconds + float64(rank)*u.SecondsPerRank
	return time.Duration(secs * float64(time.Second))
}

// ConstructionResult reports one automatic construction run.
type ConstructionResult struct {
	// Steps is the number of options the user evaluated (the interaction
	// cost of Definition 3.5.9).
	Steps int
	// RemainingRank is the 1-based rank of the intended interpretation in
	// the final Remaining() list (0 when it was filtered out, which
	// indicates an inconsistent oracle and is reported as an error).
	RemainingRank int
	// Remaining is the size of the final candidate list.
	Remaining int
	// OptionTime is the cumulative wall-clock computation time spent
	// generating options (the system-side response time of Table 3.2).
	OptionTime time.Duration
}

// RunConstruction drives a session to completion with the simulated user:
// the session proposes options, the user evaluates them, and construction
// stops when at most StopAtRemaining interpretations remain or no option
// splits the space further. It returns the interaction statistics.
func RunConstruction(s *Session, u *SimulatedUser) (ConstructionResult, error) {
	var res ConstructionResult
	intendedKey := u.Intended.Key()
	for !s.Done() {
		start := time.Now()
		opt, ok := s.NextOption()
		res.OptionTime += time.Since(start)
		if !ok {
			break
		}
		if u.Evaluate(opt) {
			s.Accept(opt)
		} else {
			s.Reject(opt)
		}
	}
	res.Steps = s.Steps()
	remaining := s.Remaining()
	res.Remaining = len(remaining)
	for i, sc := range remaining {
		if sc.Q.Key() == intendedKey {
			res.RemainingRank = i + 1
			break
		}
	}
	if res.RemainingRank == 0 {
		return res, fmt.Errorf("core: intended interpretation filtered out (inconsistent oracle or incomplete hierarchy)")
	}
	return res, nil
}
