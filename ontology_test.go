package keysearch

import (
	"testing"
)

func TestOntologyBuilding(t *testing.T) {
	o := NewOntology("entity")
	if o.NumClasses() != 1 {
		t.Fatalf("NumClasses = %d", o.NumClasses())
	}
	if err := o.AddClass("person", "entity"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddClass("actor", "person"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddClass("x", "ghost"); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := o.MapTable("actor", "imdb_actor"); err != nil {
		t.Fatal(err)
	}
	if err := o.MapTable("ghost", "t"); err == nil {
		t.Fatal("unknown class accepted for mapping")
	}
	if err := o.AddInstance("actor", "tom_hanks"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddInstance("ghost", "x"); err == nil {
		t.Fatal("unknown class accepted for instance")
	}
}

func TestOntologyMatchingRoundTrip(t *testing.T) {
	o := NewOntology("entity")
	for _, c := range []string{"person", "place"} {
		if err := o.AddClass(c, "entity"); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []string{"p1", "p2", "p3"} {
		if err := o.AddInstance("person", i); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []string{"c1", "c2"} {
		if err := o.AddInstance("place", i); err != nil {
			t.Fatal(err)
		}
	}
	instances := map[string][]string{
		"people_table": {"p1", "p2"},
		"cities_table": {"c1", "c2"},
		"junk_table":   {"z1"},
	}
	matches := o.MatchTables(instances, 0.6)
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	byTable := map[string]OntologyMatch{}
	for _, m := range matches {
		byTable[m.Table] = m
	}
	if byTable["people_table"].Class != "person" || byTable["cities_table"].Class != "place" {
		t.Fatalf("wrong classes: %v", matches)
	}
	if err := o.ApplyMatches(matches); err != nil {
		t.Fatal(err)
	}
	// Applying a match to a removed class fails cleanly.
	bad := []OntologyMatch{{Table: "t", Class: "ghost"}}
	if err := o.ApplyMatches(bad); err == nil {
		t.Fatal("bad match accepted")
	}
}

func TestKnowledgeBaseConstruction(t *testing.T) {
	kb, err := DemoKnowledgeBase(4, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Engine.NumTables() == 0 || kb.Ontology.NumClasses() == 0 {
		t.Fatal("empty knowledge base")
	}
	if len(kb.Instances) == 0 || len(kb.Concepts) == 0 {
		t.Fatal("missing ground truth")
	}
	if mapped := kb.MapGroundTruth(); mapped != len(kb.Concepts) {
		t.Fatalf("mapped %d of %d", mapped, len(kb.Concepts))
	}

	// Find a multi-table keyword and run both construction flavours.
	queries := kb.Engine.SampleQueries(50)
	var q string
	for _, cand := range queries {
		rs, err := kb.Engine.Search(bg, SearchRequest{Query: cand})
		if err == nil && len(rs.Results) >= 4 {
			q = cand
			break
		}
	}
	if q == "" {
		t.Skip("no suitably ambiguous keyword in the demo KB")
	}
	oc, err := kb.Engine.ConstructWithOntology(bg,
		ConstructRequest{Query: q, StopAtRemaining: 1}, kb.Ontology)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !oc.Done() && steps < 200 {
		question, ok := oc.Next()
		if !ok {
			break
		}
		steps++
		if question.Text == "" {
			t.Fatal("empty question")
		}
		if question.IsClassQuestion && len(question.TargetTables) == 0 {
			t.Fatal("class question covers no tables")
		}
		// Always reject: the space must shrink monotonically and the
		// session must terminate.
		before := oc.SpaceSize()
		if err := oc.Reject(bg, question); err != nil {
			t.Fatal(err)
		}
		if oc.SpaceSize() > before {
			t.Fatal("reject grew the space")
		}
	}
	if oc.Steps() != steps {
		t.Fatalf("Steps = %d, drove %d", oc.Steps(), steps)
	}
	// Candidates are eventually materialised (possibly empty after
	// rejecting everything, but the call must be safe).
	_ = oc.Candidates()

	// Error paths.
	if _, err := kb.Engine.ConstructWithOntology(bg, ConstructRequest{Query: ""}, kb.Ontology); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := kb.Engine.ConstructWithOntology(bg, ConstructRequest{Query: "zzzz"}, kb.Ontology); err == nil {
		t.Fatal("unmatched query accepted")
	}
	if _, err := kb.ConstructPlain(bg, ConstructRequest{Query: q, StopAtRemaining: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructWithOntologyAcceptPath(t *testing.T) {
	kb, err := DemoKnowledgeBase(4, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	kb.MapGroundTruth()
	queries := kb.Engine.SampleQueries(50)
	for _, q := range queries {
		rs, err := kb.Engine.Search(bg, SearchRequest{Query: q})
		if err != nil || len(rs.Results) < 3 {
			continue
		}
		intended := rs.Results[len(rs.Results)-1].Tables[0] // a low-ranked reading
		oc, err := kb.Engine.ConstructWithOntology(bg,
			ConstructRequest{Query: q, StopAtRemaining: 1}, kb.Ontology)
		if err != nil {
			continue
		}
		for !oc.Done() {
			question, ok := oc.Next()
			if !ok {
				break
			}
			accept := false
			for _, tbl := range question.TargetTables {
				if tbl == intended {
					accept = true
				}
			}
			if accept {
				err = oc.Accept(bg, question)
			} else {
				err = oc.Reject(bg, question)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		// The intended table's interpretation must survive.
		for _, c := range oc.Candidates() {
			if len(c.Tables) > 0 && c.Tables[0] == intended {
				return // success
			}
		}
		t.Fatalf("intended table %s lost during ontology construction of %q", intended, q)
	}
	t.Skip("no suitable query found")
}
