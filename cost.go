package keysearch

// EstimateCost returns a cheap, admission-grade cost estimate for a
// keyword query: the total posting-list mass (attribute-level document
// frequencies summed over every attribute each keyword occurs in) on
// the current snapshot. The estimate is what the compiled-plan layer
// would go on to enumerate — candidate sets are posting-list driven —
// so it separates sub-millisecond selective lookups from heavy-tail
// multi-join queries by orders of magnitude without planning anything.
// It never executes plans, allocates per-keyword only, and is safe to
// call on the request path before admission.
//
// The floor is 1 (an unparseable or unknown-term query costs one
// unit); a nil or un-built engine also reports 1.
func (e *Engine) EstimateCost(keywords string) int64 {
	s := e.current()
	if s == nil {
		return 1
	}
	toks, _ := parseLabeled(keywords)
	var cost int64
	for _, tok := range toks {
		for _, p := range s.ix.Lookup(tok) {
			cost += int64(p.DocCount)
		}
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}
