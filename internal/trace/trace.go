// Package trace is the per-request tracing substrate of the serving
// stack: one Trace travels with a request through context.Context —
// httpapi → Engine/ShardedEngine → topk → shard → plan execution — and
// records where the time went (stage spans), how much work each layer
// did (counters), and one-off facts worth keeping (annotations).
//
// The design constraint is the disabled path: every recording method is
// a nil-receiver no-op, and code under instrumentation holds a *Trace
// obtained once per request via FromContext (nil when tracing is off).
// A request served with tracing disabled therefore pays one context
// lookup per layer and a handful of nil checks — nothing else — which
// is what the byte-identical differential and the overhead benchmark
// pin (docs/observability.md).
//
// Two recording granularities keep trace size bounded under fan-out:
//
//   - Spans carry start offsets and durations for the once-per-request
//     stages (parse, interpret, rank, execute, previews), forming a tree
//     via parent indexes — the waterfall a slow-query dump renders.
//   - Counters accumulate high-frequency events (per-shard busy
//     nanoseconds, plan executions, cache hits) that would explode the
//     span list if each occurrence were its own span: a 50-interpretation
//     top-k over 8 shards is 400 executions but only 8+ε counters.
//
// All methods are safe for concurrent use: shard workers record into
// the same Trace the coordinator owns.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Trace is one request's recording area. Create with New, thread with
// NewContext/FromContext, snapshot with Snapshot. The zero *Trace (nil)
// is the disabled state: every method no-ops.
type Trace struct {
	// id is immutable after New; start anchors all span offsets to one
	// monotonic clock reading.
	id    string
	start time.Time

	mu     sync.Mutex
	spans  []SpanData
	counts map[string]int64
	notes  map[string]string
}

// SpanData is one recorded stage span. StartUS is the offset from the
// trace's creation in microseconds; Parent is the index of the parent
// span in the trace's span list (-1 for a root span), so a dump can
// render the tree without a separate structure.
type SpanData struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Data is a JSON-marshalable snapshot of one finished (or in-flight)
// trace: the slow-query dump and the query log's stage-timing source.
type Data struct {
	ID          string            `json:"trace_id"`
	Spans       []SpanData        `json:"spans"`
	Counters    map[string]int64  `json:"counters,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// New creates an enabled trace. id may come from the client
// (X-Trace-Id propagation); empty generates a 64-bit random hex ID.
func New(id string) *Trace {
	if id == "" {
		id = newID()
	}
	return &Trace{id: id, start: time.Now()}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a fixed ID keeps
		// tracing functional rather than panicking the request path.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span is a handle on one started span; End records its duration.
// The zero Span (from a nil trace) is inert.
type Span struct {
	t     *Trace
	idx   int
	begin time.Time
}

// Start opens a root-level stage span. End the returned Span exactly
// once; ending it twice extends the recorded duration (harmless, but
// don't).
func (t *Trace) Start(name string) Span {
	return t.StartChild(name, -1)
}

// StartChild opens a span under the given parent span index (-1 for
// root). The index of the new span is Span.Index, so callers can nest
// further children under it.
func (t *Trace) StartChild(name string, parent int) Span {
	if t == nil {
		return Span{}
	}
	now := time.Now()
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, SpanData{
		Name:    name,
		Parent:  parent,
		StartUS: now.Sub(t.start).Microseconds(),
		DurUS:   -1, // open; End fills it
	})
	t.mu.Unlock()
	return Span{t: t, idx: idx, begin: now}
}

// Index returns this span's index in the trace (for StartChild). -1 on
// an inert span.
func (s Span) Index() int {
	if s.t == nil {
		return -1
	}
	return s.idx
}

// End closes the span, recording its duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.begin).Microseconds()
	s.t.mu.Lock()
	s.t.spans[s.idx].DurUS = d
	s.t.mu.Unlock()
}

// Count adds delta to the named counter. Counters are the aggregation
// channel for high-frequency events: per-shard busy time, plan
// executions, cache hits.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[string]int64, 8)
	}
	t.counts[name] += delta
	t.mu.Unlock()
}

// CountDuration accumulates a duration (as nanoseconds) into the named
// counter — the per-shard busy-time channel.
func (t *Trace) CountDuration(name string, d time.Duration) {
	t.Count(name, d.Nanoseconds())
}

// Annotate records a one-off key → value fact (cache hit, shed reason,
// chosen interpretation). Later values overwrite earlier ones.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.notes == nil {
		t.notes = make(map[string]string, 4)
	}
	t.notes[key] = value
	t.mu.Unlock()
}

// Age returns the time elapsed since the trace was created (0 on nil).
func (t *Trace) Age() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Snapshot copies the trace's current state. Open spans report DurUS
// -1. The copy shares nothing with the live trace, so it is safe to
// hand to an async writer while shard workers keep recording.
func (t *Trace) Snapshot() Data {
	if t == nil {
		return Data{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := Data{ID: t.id, Spans: make([]SpanData, len(t.spans))}
	copy(d.Spans, t.spans)
	if len(t.counts) > 0 {
		d.Counters = make(map[string]int64, len(t.counts))
		for k, v := range t.counts {
			d.Counters[k] = v
		}
	}
	if len(t.notes) > 0 {
		d.Annotations = make(map[string]string, len(t.notes))
		for k, v := range t.notes {
			d.Annotations[k] = v
		}
	}
	return d
}

// StageDurations flattens the snapshot's spans to name → microseconds
// (summing repeated names), the shape the query log records. Counters
// that accumulate nanoseconds (suffix "_ns") are folded in as
// microseconds under their name without the suffix, so per-shard busy
// time appears alongside the stage spans.
func (d Data) StageDurations() map[string]int64 {
	if len(d.Spans) == 0 && len(d.Counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(d.Spans))
	for _, sp := range d.Spans {
		if sp.DurUS >= 0 {
			out[sp.Name] += sp.DurUS
		}
	}
	for k, v := range d.Counters {
		if n := len(k); n > 3 && k[n-3:] == "_ns" {
			out[k[:n-3]+"_us"] += v / 1e3
		}
	}
	return out
}

// JSON renders the snapshot as one line of JSON — the slow-query dump
// format.
func (d Data) JSON() []byte {
	b, err := json.Marshal(d)
	if err != nil {
		// Data contains only marshalable types; unreachable.
		return []byte(`{"trace_id":"marshal-error"}`)
	}
	return b
}

// SortedCounterNames returns the counter names in lexical order (tests
// and human-readable dumps).
func (d Data) SortedCounterNames() []string {
	out := make([]string, 0, len(d.Counters))
	for k := range d.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ctxKey is the context key type for trace plumbing.
type ctxKey struct{}

// NewContext returns ctx carrying the trace. A nil trace returns ctx
// unchanged, so the disabled path never grows the context chain.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the request's trace, or nil when tracing is
// disabled — the nil *Trace is the no-op recording target.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
