package keysearch_test

import (
	"fmt"
	"log"

	keysearch "repro"
)

// buildExampleSystem loads the running example of the paper: an ambiguous
// "london" that is both an actor and a movie-title word.
func buildExampleSystem() *keysearch.System {
	sys, err := keysearch.New([]keysearch.Table{
		{
			Name:       "actor",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "name", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:       "movie",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "title", Text: true}, {Name: "year", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:    "acts",
			Columns: []keysearch.Column{{Name: "actor_id"}, {Name: "movie_id"}},
			ForeignKeys: []keysearch.ForeignKey{
				{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
				{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			},
		},
	}, keysearch.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Jack London"},
		{"actor", "a2", "Tom Hanks"},
		{"movie", "m1", "London Boulevard", "2010"},
		{"movie", "m2", "The Terminal", "2004"},
		{"acts", "a1", "m1"},
		{"acts", "a2", "m2"},
	}
	for _, r := range rows {
		if err := sys.Insert(r[0], r[1:]...); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Build(); err != nil {
		log.Fatal(err)
	}
	return sys
}

// ExampleSystem_Search shows keyword-to-structured-query translation: the
// ambiguous keyword is returned with every reading, ranked by
// probability.
func ExampleSystem_Search() {
	sys := buildExampleSystem()
	results, err := sys.Search("london", 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Query)
	}
	// Output:
	// σ_{london}⊂name(actor)
	// σ_{london}⊂title(movie)
}

// ExampleSystem_Construct drives an interactive construction session with
// scripted answers: rejecting the actor reading leaves the movie reading.
func ExampleSystem_Construct() {
	sys := buildExampleSystem()
	sess, err := sys.Construct("london", keysearch.ConstructionConfig{StopAtRemaining: 1})
	if err != nil {
		log.Fatal(err)
	}
	for !sess.Done() {
		q, ok := sess.Next()
		if !ok {
			break
		}
		fmt.Println(q.Text)
		sess.Reject(q) // scripted user: "no, not that reading"
	}
	for _, c := range sess.Candidates() {
		fmt.Println("remaining:", c.Query)
	}
	// Output:
	// "london" is a value of actor.name
	// remaining: σ_{london}⊂title(movie)
}

// ExampleResult_Rows executes the top interpretation of a two-keyword
// query and prints the joined row.
func ExampleResult_Rows() {
	sys := buildExampleSystem()
	results, err := sys.Search("hanks terminal", 1)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := results[0].Rows(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rows[0]["actor.name"], "/", rows[0]["movie.title"])
	// Output:
	// Tom Hanks / The Terminal
}
