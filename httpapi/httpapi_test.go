package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	keysearch "repro"
)

var (
	engOnce sync.Once
	engVal  *keysearch.Engine
	engErr  error
)

// demoEngine builds the bundled movie dataset once for all tests.
func demoEngine(t *testing.T) *keysearch.Engine {
	t.Helper()
	engOnce.Do(func() {
		engVal, engErr = keysearch.DemoMovies(7)
	})
	if engErr != nil {
		t.Fatal(engErr)
	}
	return engVal
}

// post sends a JSON body and decodes the JSON reply into out, returning
// the status code (-1 on transport failure). It only uses t.Error so it
// is safe to call from spawned goroutines.
func post(t *testing.T, client *http.Client, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return -1
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Error(err)
		return -1
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Error(err)
		return -1
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Errorf("decoding %s: %v (body: %s)", url, err, raw)
		}
	}
	return resp.StatusCode
}

func TestHTTPSearchAndDiversify(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	q := eng.SampleQueries(1)[0]

	var sr keysearch.SearchResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/search",
		keysearch.SearchRequest{Query: q, K: 3, RowLimit: 2}, &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if sr.Query != q || sr.SpaceSize == 0 || len(sr.Results) == 0 {
		t.Fatalf("search response shape: %+v", sr)
	}
	for _, r := range sr.Results {
		if r.Query == "" || r.Probability <= 0 || r.Probability > 1 || len(r.Tables) == 0 {
			t.Fatalf("bad result over the wire: %+v", r)
		}
	}
	// RowLimit surfaces executed rows in the JSON payload.
	gotPreview := false
	for _, r := range sr.Results {
		if len(r.Preview) > 0 {
			gotPreview = true
		}
	}
	if !gotPreview {
		t.Fatal("no preview rows over the wire")
	}

	var dr keysearch.SearchResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/diversify",
		keysearch.DiversifyRequest{Query: q, K: 3, Lambda: 0.1}, &dr); code != http.StatusOK {
		t.Fatalf("diversify status = %d", code)
	}
	if len(dr.Results) == 0 {
		t.Fatalf("diversify returned nothing: %+v", dr)
	}

	var rr keysearch.RowsResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/rows",
		keysearch.RowsRequest{Query: q, K: 3}, &rr); code != http.StatusOK {
		t.Fatalf("rows status = %d", code)
	}
	if len(rr.Rows) == 0 || rr.Rows[0].Score <= 0 || len(rr.Rows[0].Row) == 0 {
		t.Fatalf("rows response shape: %+v", rr)
	}

	// Raw JSON carries the documented keys.
	var raw map[string]any
	post(t, ts.Client(), ts.URL+"/v1/search", keysearch.SearchRequest{Query: q, K: 1}, &raw)
	for _, key := range []string{"query", "space_size", "results"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("search JSON lacks %q: %v", key, raw)
		}
	}
}

func TestHTTPConstructSession(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	qs := eng.SampleQueries(2)
	q := qs[0] + " " + qs[1] // two ambiguous keywords → a wide space

	// start → first question.
	var step ConstructStepResponse
	code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "start",
		Start:  &keysearch.ConstructRequest{Query: q, StopAtRemaining: 1},
	}, &step)
	if code != http.StatusOK {
		t.Fatalf("start status = %d", code)
	}
	if step.SessionID == "" {
		t.Fatal("no session_id")
	}
	if step.Done || step.Question == nil || step.Question.Text == "" {
		t.Fatalf("expected a first question for ambiguous %q: %+v", q, step)
	}

	// accept the first question, then reject until the dialogue converges.
	id := step.SessionID
	code = post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "accept", SessionID: id}, &step)
	if code != http.StatusOK {
		t.Fatalf("accept status = %d", code)
	}
	if step.Steps != 1 {
		t.Fatalf("steps after accept = %d", step.Steps)
	}
	for guard := 0; !step.Done && step.Question != nil && guard < 100; guard++ {
		step = ConstructStepResponse{} // omitempty fields must not go stale
		code = post(t, ts.Client(), ts.URL+"/v1/construct",
			ConstructStepRequest{Action: "reject", SessionID: id}, &step)
		if code != http.StatusOK {
			t.Fatalf("reject status = %d", code)
		}
	}
	if !step.Done && step.Question != nil {
		t.Fatalf("dialogue did not terminate: %+v", step)
	}
	if step.Steps < 1 {
		t.Fatalf("no steps recorded: %+v", step)
	}

	// candidates are retrievable explicitly and carry renderings.
	var cands ConstructStepResponse
	code = post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "candidates", SessionID: id}, &cands)
	if code != http.StatusOK {
		t.Fatalf("candidates status = %d", code)
	}
	for _, c := range cands.Candidates {
		if c.Query == "" {
			t.Fatalf("candidate without rendering: %+v", c)
		}
	}

	// cancel deletes the session; a second answer 404s.
	if code := post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "cancel", SessionID: id}, nil); code != http.StatusOK {
		t.Fatalf("cancel status = %d", code)
	}
	var errResp ErrorResponse
	code = post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "accept", SessionID: id}, &errResp)
	if code != http.StatusNotFound || errResp.Error == "" {
		t.Fatalf("answer on cancelled session: status %d, %+v", code, errResp)
	}
}

func TestHTTPErrors(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	// Malformed JSON.
	resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json",
		bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d", resp.StatusCode)
	}

	// Unmatched query.
	var errResp ErrorResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/search",
		keysearch.SearchRequest{Query: "zzzznope"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unmatched query status = %d", code)
	}
	if errResp.Error == "" {
		t.Fatal("error body missing")
	}

	// Unknown construct action.
	if code := post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "frobnicate"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown action status = %d", code)
	}

	// Keywords endpoint.
	kresp, err := ts.Client().Get(ts.URL + "/v1/keywords?prefix=a&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var kr KeywordsResponse
	if err := json.NewDecoder(kresp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	kresp.Body.Close()
	if len(kr.Keywords) == 0 || len(kr.Keywords) > 5 {
		t.Fatalf("keywords = %v", kr.Keywords)
	}

	// Health.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hresp.StatusCode)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	eng := demoEngine(t)
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	srv := New(eng, WithSessionTTL(time.Minute), WithClock(clock))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := eng.SampleQueries(1)[0]
	var step ConstructStepResponse
	post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "start", Start: &keysearch.ConstructRequest{Query: q},
	}, &step)
	if srv.NumSessions() != 1 {
		t.Fatalf("sessions = %d", srv.NumSessions())
	}

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	var errResp ErrorResponse
	code := post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "candidates", SessionID: step.SessionID}, &errResp)
	if code != http.StatusNotFound {
		t.Fatalf("expired session status = %d", code)
	}
	if srv.NumSessions() != 0 {
		t.Fatalf("expired session not evicted: %d live", srv.NumSessions())
	}
}

func TestMaxSessionsEvictsOldest(t *testing.T) {
	eng := demoEngine(t)
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	srv := New(eng, WithMaxSessions(2), WithClock(clock))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := eng.SampleQueries(1)[0]
	ids := make([]string, 3)
	for i := range ids {
		var step ConstructStepResponse
		post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
			Action: "start", Start: &keysearch.ConstructRequest{Query: q},
		}, &step)
		ids[i] = step.SessionID
		// Distinct timestamps give eviction a strict LRU order.
		mu.Lock()
		now = now.Add(time.Second)
		mu.Unlock()
	}
	if srv.NumSessions() != 2 {
		t.Fatalf("sessions = %d, want 2", srv.NumSessions())
	}
	var errResp ErrorResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "candidates", SessionID: ids[0]}, &errResp); code != http.StatusNotFound {
		t.Fatalf("oldest session should be evicted, status = %d", code)
	}
	var ok ConstructStepResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/construct",
		ConstructStepRequest{Action: "candidates", SessionID: ids[2]}, &ok); code != http.StatusOK {
		t.Fatalf("newest session lost, status = %d", code)
	}
}

// TestConcurrentHTTPClients hammers one server (one shared engine) from
// many goroutines — the service-level companion of the engine's -race
// concurrency test.
func TestConcurrentHTTPClients(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	queries := eng.SampleQueries(4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := queries[w%len(queries)]
			var sr keysearch.SearchResponse
			if code := post(t, ts.Client(), ts.URL+"/v1/search",
				keysearch.SearchRequest{Query: q, K: 3}, &sr); code != http.StatusOK {
				errs <- fmt.Errorf("worker %d: search status %d", w, code)
				return
			}
			var step ConstructStepResponse
			if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
				Action: "start", Start: &keysearch.ConstructRequest{Query: q, StopAtRemaining: 3},
			}, &step); code != http.StatusOK {
				errs <- fmt.Errorf("worker %d: start status %d", w, code)
				return
			}
			for guard := 0; !step.Done && step.Question != nil && guard < 50; guard++ {
				id := step.SessionID
				step = ConstructStepResponse{} // omitempty fields must not go stale
				if code := post(t, ts.Client(), ts.URL+"/v1/construct",
					ConstructStepRequest{Action: "reject", SessionID: id}, &step); code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: reject status %d", w, code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
