package expt

import (
	"fmt"

	"repro/internal/yagof"
)

// Table6_1 reports the distribution of categories in the synthetic YAGO
// (Table 6.1).
func Table6_1(env *FreebaseEnv) *Table {
	bands := yagof.CategoryDistribution(env.Onto)
	t := &Table{
		Title:   "Table 6.1: distribution of categories in YAGO",
		Headers: []string{"kind", "classes", "with instances"},
	}
	for _, b := range bands {
		t.AddRow(b.Kind, b.Classes, b.WithInstances)
	}
	return t
}

// Table6_2 reports the distribution of instances across class-size bands
// (Table 6.2).
func Table6_2(env *FreebaseEnv) *Table {
	bands := yagof.InstanceDistribution(env.Onto)
	t := &Table{
		Title:   "Table 6.2: distribution of instances in YAGO",
		Headers: []string{"instances/class", "classes", "instances"},
	}
	for _, b := range bands {
		t.AddRow(b.Label, b.Classes, b.Instances)
	}
	return t
}

// Fig6_2 reports the shared-instance distribution across Freebase domains
// (Figure 6.2).
func Fig6_2(env *FreebaseEnv) ([]yagof.DomainOverlap, *Table) {
	rows := yagof.SharedInstancesByDomain(env.Onto, env.FD.InstancesOf, env.FD.DomainOf)
	t := &Table{
		Title:   "Figure 6.2: distribution of shared instances in Freebase",
		Headers: []string{"domain", "tables", "instances", "shared", "fraction"},
	}
	for _, r := range rows {
		t.AddRow(r.Domain, r.Tables, r.Instances, r.Shared, r.SharedFraction())
	}
	return rows, t
}

// Fig6_3 runs the matcher at one threshold and prints example matches
// (the matching illustration of Figure 6.3 / Section 6.5).
func Fig6_3(env *FreebaseEnv, threshold float64, examples int) ([]yagof.Match, *Table) {
	matches := yagof.MatchTables(env.Onto, env.FD.InstancesOf,
		yagof.MatchConfig{Threshold: threshold, ConceptClassesOnly: true})
	t := &Table{
		Title:   fmt.Sprintf("Figure 6.3: matching YAGO and Freebase concepts (threshold %.2f)", threshold),
		Headers: []string{"table", "matched class", "score"},
	}
	for i, m := range matches {
		if i >= examples {
			t.Notes = append(t.Notes, fmt.Sprintf("... and %d more matches", len(matches)-examples))
			break
		}
		t.AddRow(m.Table, m.ClassName, m.Score)
	}
	return matches, t
}

// Table6_3 characterises the YAGO+F structure resulting from the matching
// (Table 6.3).
func Table6_3(env *FreebaseEnv, matches []yagof.Match) (yagof.Stats, *Table) {
	st := yagof.Characterize(env.Onto, matches, len(env.FD.InstancesOf))
	t := &Table{
		Title:   "Table 6.3: categories and instances in YAGO+F",
		Headers: []string{"statistic", "value"},
	}
	t.AddRow("classes", st.Classes)
	t.AddRow("classes with tables", st.ClassesWithTables)
	t.AddRow("matched tables", st.MatchedTables)
	t.AddRow("unmatched tables", st.UnmatchedTables)
	t.AddRow("mean match score", st.MeanScore)
	for d, n := range st.DepthHistogram {
		if n > 0 {
			t.AddRow(fmt.Sprintf("matched tables at depth %d", d), n)
		}
	}
	return st, t
}

// Fig6_4 sweeps the match threshold and reports matching quality against
// the generator's gold standard (Figure 6.4).
func Fig6_4(env *FreebaseEnv, thresholds []float64) ([]yagof.Quality, *Table) {
	quality := yagof.EvaluateMatching(env.Onto, env.FD.InstancesOf, env.FD.ConceptOf,
		thresholds, yagof.MatchConfig{ConceptClassesOnly: true})
	t := &Table{
		Title:   "Figure 6.4: matching quality vs threshold",
		Headers: []string{"threshold", "matched", "correct", "precision", "recall", "F1"},
	}
	for _, q := range quality {
		t.AddRow(q.Threshold, q.Matched, q.Correct, q.Precision, q.Recall, q.F1)
	}
	return quality, t
}
