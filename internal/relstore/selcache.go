package relstore

import (
	"sort"
	"strings"
	"sync"
)

// SelectionCache memoises keyword-containment selections across the plans
// of one request. A top-k request executes dozens of candidate networks,
// and the same (table, column, keyword-bag) selection recurs in most of
// them — e.g. every network binding "hanks" to actor.name repeats the
// σ_{hanks ∈ name}(actor) selection. The cache computes each distinct
// selection once and shares the resulting row list.
//
// Keys are (table, column position, canonical keyword bag), where the bag
// is canonicalised by CanonicalBag so permutations of the same bag share
// one entry. Values are the ascending RowID lists produced by the posting
// machinery; they are shared between plans and with the posting lists
// themselves, so callers must treat them as read-only.
//
// The cache is safe for concurrent use — plans of one request execute in
// parallel waves — and is scoped to a single request: create one per
// Search / TopKContext / Naive call and drop it afterwards. Because the
// underlying data is immutable after Build, a cached selection can never
// go stale within a request, so caching changes how results are computed,
// never which results are produced.
//
// A cache created with NewSelectionCacheShared additionally consults an
// engine-lifetime SharedStore (repro/internal/qcache) on local misses and
// publishes freshly computed selections and whole-plan results back to
// it, promoting hot work across requests. The shared layer validates
// every entry against the mutation history (see SharedStore), so sharing
// never changes results either.
type SelectionCache struct {
	mu     sync.RWMutex
	m      map[selectionKey][]int
	shared SharedStore
}

// selectionKey identifies one memoised selection within a request. The
// table is keyed by pointer — all plans of one request resolve tables
// from the same snapshot — while the shared engine-lifetime layer keys by
// table name and validates against the mutation history instead.
type selectionKey struct {
	t   *Table
	col int
	bag string
}

// NewSelectionCache creates an empty selection cache.
func NewSelectionCache() *SelectionCache {
	return &SelectionCache{m: make(map[selectionKey][]int)}
}

// NewSelectionCacheShared creates a selection cache backed by an
// engine-lifetime shared store. A nil shared store yields a plain
// per-request cache.
func NewSelectionCacheShared(shared SharedStore) *SelectionCache {
	return &SelectionCache{m: make(map[selectionKey][]int), shared: shared}
}

// Len returns the number of distinct selections memoised so far.
func (c *SelectionCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// CanonicalBag canonicalises a keyword bag: lower-cased, sorted,
// NUL-joined. It is the one canonical key form shared by the per-request
// SelectionCache and the engine-lifetime answer cache, so the two layers
// can never disagree on whether two bags are the same selection.
func CanonicalBag(keywords []string) string {
	if len(keywords) == 0 {
		return ""
	}
	if len(keywords) == 1 {
		return strings.ToLower(keywords[0])
	}
	lowered := make([]string, len(keywords))
	for i, k := range keywords {
		lowered[i] = strings.ToLower(k)
	}
	sort.Strings(lowered)
	return strings.Join(lowered, "\x00")
}

// selection returns the memoised bag-containment selection over the
// table's column, computing it via the posting lists on first use. The
// returned slice is shared and read-only. A nil cache is valid and simply
// computes the selection directly.
func (c *SelectionCache) selection(t *Table, ci int, keywords []string) []int {
	if c == nil {
		return t.selectPostings(ci, keywords)
	}
	key := selectionKey{t: t, col: ci, bag: CanonicalBag(keywords)}
	c.mu.RLock()
	rows, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return rows
	}
	fromShared := false
	if c.shared != nil {
		rows, ok = c.shared.GetSelection(t.Schema.Name, ci, key.bag)
		fromShared = ok
	}
	if !ok {
		rows = t.selectPostings(ci, keywords)
	}
	c.mu.Lock()
	// Re-check under the write lock: a racing goroutine may have stored
	// the same (deterministic) selection; keep one copy either way.
	stored := false
	if prev, ok := c.m[key]; ok {
		rows = prev
	} else {
		c.m[key] = rows
		stored = true
	}
	c.mu.Unlock()
	if stored && !fromShared && c.shared != nil {
		c.shared.PutSelection(t.Schema.Name, ci, key.bag, rows)
	}
	return rows
}
