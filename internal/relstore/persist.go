package relstore

import (
	"fmt"
	"io"

	"repro/internal/durable"
)

// This file is the logical-dump entry point (Database.Save / Load): a
// compact "schema + live rows" serialisation whose indexes are rebuilt
// after load. It used to be a standalone encoding/gob path; it is now
// routed through the snapshot codec of snapshot.go (live rows only, no
// tombstones, no posting lists) wrapped in the same checksummed section
// container the engine's full snapshots use, so there is exactly one
// on-disk vocabulary to maintain and dumps are byte-stable across runs:
// tables are written in creation order and rows in RowID order, so
// saving the same database twice produces identical bytes. Dumps
// written by the old gob path are not readable by this version (Load
// reports a bad-magic error); regenerate them from the source data, or
// convert with a build that still carries the gob reader.

// databaseSection names the logical dump's single container section.
const databaseSection = "database"

// Save serialises the database (schema and live rows) to the writer.
// Tombstoned rows are dropped and RowIDs renumber densely on Load;
// indexes and posting lists are rebuilt lazily after load. Use the
// engine-level snapshot codec instead when physical state (tombstones,
// RowID stability, posting lists) must survive the round trip.
func (db *Database) Save(w io.Writer) error {
	sw, err := durable.NewSnapshotWriter(w)
	if err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	var enc durable.Enc
	db.EncodeSnapshot(&enc, EncodeOptions{})
	if err := sw.Section(databaseSection, enc.Bytes()); err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	if err := sw.Close(); err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save, validating schemas
// and referential declarations.
func Load(r io.Reader) (*Database, error) {
	sr, err := durable.NewSnapshotReader(r)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	for {
		name, payload, err := sr.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("relstore: load: no %s section", databaseSection)
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: load: %w", err)
		}
		if name != databaseSection {
			continue // future sections are skippable by design
		}
		db, err := DecodeSnapshot(durable.NewDec(payload))
		if err != nil {
			return nil, fmt.Errorf("relstore: load: %w", err)
		}
		return db, nil
	}
}
