package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestPromTextBasicFamilies(t *testing.T) {
	p := NewPromText()
	p.Counter("requests_total", "Requests served.", 42, Label{"endpoint", "search"})
	p.Counter("requests_total", "Requests served.", 7, Label{"endpoint", "rows"})
	p.Gauge("in_flight", "Requests in flight.", 3)
	h := NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p.HistogramNS("request_duration_seconds", "Latency.", h, Label{"endpoint", "search"})

	out, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromText(out); err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"# HELP requests_total Requests served.\n# TYPE requests_total counter\n",
		`requests_total{endpoint="search"} 42`,
		`requests_total{endpoint="rows"} 7`,
		"# TYPE in_flight gauge",
		"in_flight 3",
		"# TYPE request_duration_seconds histogram",
		`request_duration_seconds_bucket{endpoint="search",le="+Inf"} 100`,
		`request_duration_seconds_count{endpoint="search"} 100`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// _sum is the exact sum: 1..100 ms = 5.05 s.
	if !strings.Contains(s, `request_duration_seconds_sum{endpoint="search"} 5.05`) {
		t.Fatalf("exact sum missing:\n%s", s)
	}
}

func TestPromHistogramCumulativeBuckets(t *testing.T) {
	h := NewLatencyHistogram()
	// 10 fast (2ms), 5 medium (70ms), 2 slow (3s): known bucket edges.
	for i := 0; i < 10; i++ {
		h.Record(2 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Record(70 * time.Millisecond)
	}
	h.Record(3 * time.Second)
	h.Record(3 * time.Second)

	bounds := []int64{
		int64(5 * time.Millisecond),
		int64(100 * time.Millisecond),
		int64(time.Second),
	}
	cum := h.CumulativeLE(bounds)
	if cum[0] != 10 || cum[1] != 15 || cum[2] != 15 {
		t.Fatalf("cumulative = %v, want [10 15 15]", cum)
	}
	// Values beyond the last bound appear only in +Inf (i.e. Count).
	if h.Count() != 17 {
		t.Fatalf("count = %d", h.Count())
	}
	// Empty histogram and nil-safety of the exporter path.
	if got := NewLatencyHistogram().CumulativeLE(bounds); got[0] != 0 || got[2] != 0 {
		t.Fatalf("empty cumulative = %v", got)
	}
	p := NewPromText()
	p.HistogramNS("x_seconds", "x", nil)
	out, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromText(out); err != nil {
		t.Fatalf("nil-histogram export invalid: %v\n%s", err, out)
	}
}

func TestPromBuilderRejectsMisuse(t *testing.T) {
	p := NewPromText()
	p.Counter("ok_total", "x", 1)
	p.Gauge("ok_total", "x", 1) // type flip
	if _, err := p.Bytes(); err == nil {
		t.Fatal("type redeclaration not rejected")
	}
	p2 := NewPromText()
	p2.Counter("bad name", "x", 1)
	if _, err := p2.Bytes(); err == nil {
		t.Fatal("invalid metric name not rejected")
	}
	p3 := NewPromText()
	p3.Counter("neg_total", "x", -1)
	if _, err := p3.Bytes(); err == nil {
		t.Fatal("negative counter not rejected")
	}
	p4 := NewPromText()
	p4.Counter("l_total", "x", 1, Label{"bad name", "v"})
	if _, err := p4.Bytes(); err == nil {
		t.Fatal("invalid label name not rejected")
	}
}

func TestPromLabelEscaping(t *testing.T) {
	p := NewPromText()
	p.Counter("esc_total", "x", 1, Label{"q", "a\"b\\c\nd"})
	out, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromText(out); err != nil {
		t.Fatalf("escaped output invalid: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

func TestCheckPromTextRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no trailing newline", "# HELP a x\n# TYPE a counter\na 1"},
		{"sample before type", "a 1\n"},
		{"unknown type", "# HELP a x\n# TYPE a widget\na 1\n"},
		{"duplicate sample", "# HELP a x\n# TYPE a counter\na 1\na 2\n"},
		{"reopened family", "# HELP a x\n# TYPE a counter\na 1\n# HELP b x\n# TYPE b counter\nb 1\n# HELP a x\n# TYPE a counter\n"},
		{"interleaved sample", "# HELP a x\n# TYPE a counter\n# HELP b x\n# TYPE b counter\na 1\n"},
		{"negative counter", "# HELP a x\n# TYPE a counter\na -1\n"},
		{"bad value", "# HELP a x\n# TYPE a counter\na zebra\n"},
		{"le not ascending", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"},
		{"not cumulative", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"inf != count", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"},
		{"no inf bucket", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n"},
		{"bare histogram sample", "# HELP h x\n# TYPE h histogram\nh 3\n"},
		{"duplicate label", "# HELP a x\n# TYPE a counter\na{l=\"1\",l=\"2\"} 1\n"},
		{"unterminated labels", "# HELP a x\n# TYPE a counter\na{l=\"1\" 1\n"},
	}
	for _, c := range cases {
		if err := CheckPromText([]byte(c.in)); err == nil {
			t.Errorf("%s: accepted invalid input", c.name)
		}
	}
	if err := CheckPromText(nil); err != nil {
		t.Fatalf("empty payload should be valid: %v", err)
	}
}

// Satellite: Quantile inverse lookup must honour the documented ≤1.6%
// (1/64) relative error bound over the log-linear range, against exact
// order statistics of known distributions.
func TestQuantileInverseLookupErrorBound(t *testing.T) {
	const bound = 1.0 / float64(subCount) // 1.5625%
	distributions := []struct {
		name string
		gen  func(rng *rand.Rand) int64
		n    int
	}{
		{"uniform_1ms_1s", func(rng *rand.Rand) int64 {
			return int64(time.Millisecond) + rng.Int63n(int64(time.Second-time.Millisecond))
		}, 50000},
		{"exponential_10ms", func(rng *rand.Rand) int64 {
			return int64(rng.ExpFloat64() * float64(10*time.Millisecond))
		}, 50000},
		{"bimodal_cache", func(rng *rand.Rand) int64 {
			if rng.Intn(10) < 8 {
				return int64(200*time.Microsecond) + rng.Int63n(int64(100*time.Microsecond))
			}
			return int64(80*time.Millisecond) + rng.Int63n(int64(40*time.Millisecond))
		}, 50000},
	}
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := NewLatencyHistogram()
			vals := make([]int64, d.n)
			for i := range vals {
				v := d.gen(rng)
				vals[i] = v
				h.Record(time.Duration(v))
			}
			// Exact order statistics via sort.
			sorted := append([]int64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999} {
				rank := int(q*float64(d.n) + 0.5)
				if rank < 1 {
					rank = 1
				}
				exact := sorted[rank-1]
				got := int64(h.Quantile(q))
				diff := got - exact
				if diff < 0 {
					diff = -diff
				}
				// Allow the histogram's quantisation bound plus one exact
				// neighbour step for rank-rounding on dense regions.
				tol := int64(float64(exact)*bound) + 1
				if diff > tol {
					t.Errorf("q=%v: got %d, exact %d, |err| %d > tol %d", q, got, exact, diff, tol)
				}
			}
		})
	}
}
