package relstore

import (
	"fmt"
)

// Predicate restricts a join-plan node to rows whose Column value contains
// the whole Keywords bag (the σ_{k ∈ A} selection of Definition 3.5.2).
type Predicate struct {
	Column   string
	Keywords []string
}

// JoinNode is one relation occurrence in a candidate network. The same
// table may appear in several nodes (self-joins such as
// Actor ⋈ Acts1 ⋈ Movie ⋈ Acts2 ⋈ Actor).
type JoinNode struct {
	Table      string
	Predicates []Predicate
}

// JoinEdge joins node From to node To on From.FromColumn = To.ToColumn.
// Edges are undirected for execution purposes; the pair of columns encodes
// the FK → PK relationship from the schema graph.
type JoinEdge struct {
	From, To             int
	FromColumn, ToColumn string
}

// JoinPlan is an executable candidate network: a tree of join nodes.
// It corresponds to a single SQL statement joining the tables as specified
// and selecting rows that contain the keywords (§2.2.6).
type JoinPlan struct {
	Nodes []JoinNode
	Edges []JoinEdge
}

// Validate checks structural well-formedness: edges reference valid nodes
// and the edge set forms a tree over the nodes (connected, acyclic).
func (p *JoinPlan) Validate() error {
	n := len(p.Nodes)
	if n == 0 {
		return fmt.Errorf("relstore: join plan has no nodes")
	}
	if len(p.Edges) != n-1 {
		return fmt.Errorf("relstore: join plan over %d nodes needs %d edges, has %d",
			n, n-1, len(p.Edges))
	}
	adj := make([][]int, n)
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("relstore: join edge references node out of range")
		}
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if count != n {
		return fmt.Errorf("relstore: join plan is not connected")
	}
	return nil
}

// JTT is a joining tree of tuples — one concrete search result: the RowID
// chosen for each node of the join plan, positionally aligned with
// JoinPlan.Nodes.
type JTT struct {
	Rows []int
}

// ResultKey identifies one tuple of a result for the overlap accounting of
// the DivQ metrics (a "primary key" in the thesis's terminology).
type ResultKey struct {
	Table string
	RowID int
}

// Keys returns the result keys of all tuples in the JTT under the plan.
func (j JTT) Keys(p *JoinPlan) []ResultKey {
	out := make([]ResultKey, len(j.Rows))
	for i, r := range j.Rows {
		out[i] = ResultKey{Table: p.Nodes[i].Table, RowID: r}
	}
	return out
}

// ExecuteOptions tunes plan execution.
type ExecuteOptions struct {
	// Limit bounds the number of JTTs materialised; 0 means unlimited.
	Limit int
	// Cache, when non-nil, memoises keyword selections across plans of
	// one request (see SelectionCache). Sharing one cache across the
	// candidate networks of a top-k request is the intended use; a nil
	// cache computes every selection from the posting lists directly.
	Cache *SelectionCache
}

// Execute runs the join plan against the database and materialises the
// joining tuple trees. The plan is compiled (tables and columns resolved
// once), per-node candidates are evaluated from the per-column posting
// lists, semi-join pruning reduces them along the join tree, and index
// nested loops rooted at the most selective node enumerate the results.
// The JTT sequence is identical to the reference scan executor
// (ExecuteScan), including under Limit.
func (db *Database) Execute(p *JoinPlan, opts ExecuteOptions) ([]JTT, error) {
	cp, err := db.Compile(p)
	if err != nil {
		return nil, err
	}
	return cp.Execute(opts)
}

// Count returns the number of results of the plan, bounded by limit
// (0 = unlimited). Unlike Execute it never materialises JTTs — the
// enumeration only counts — so emptiness and cardinality probes (the
// aggregate queries of Section 2.2.7 and DivQ's non-empty filter) run
// allocation-free per result.
func (db *Database) Count(p *JoinPlan, limit int) (int, error) {
	return db.CountCached(p, limit, nil)
}

// CountCached is Count with a shared per-request selection cache.
func (db *Database) CountCached(p *JoinPlan, limit int, cache *SelectionCache) (int, error) {
	cp, err := db.Compile(p)
	if err != nil {
		return 0, err
	}
	return cp.CountRows(limit, cache)
}

// PlanExecutor abstracts how a join plan is evaluated against the current
// snapshot. The single-process executor (LocalExecutor) compiles and runs
// the plan in place; a sharded coordinator scatters the plan across
// partitions and merges the streams. Every implementation must produce
// the exact JTT sequence of Database.Execute — byte-for-byte, including
// under limit — so callers (top-k, DivQ filtering, preview assembly) are
// topology-blind.
type PlanExecutor interface {
	// ExecutePlan materialises the plan's joining tuple trees, bounded
	// by limit (0 = unlimited).
	ExecutePlan(p *JoinPlan, limit int) ([]JTT, error)
	// CountPlan counts the plan's results without materialising them,
	// bounded by limit (0 = unlimited).
	CountPlan(p *JoinPlan, limit int) (int, error)
}

// LocalExecutor is the in-process PlanExecutor: plans run directly
// against DB with an optional per-request selection cache (which may
// carry the engine-lifetime shared answer store).
type LocalExecutor struct {
	DB    *Database
	Cache *SelectionCache
}

// ExecutePlan implements PlanExecutor.
func (l *LocalExecutor) ExecutePlan(p *JoinPlan, limit int) ([]JTT, error) {
	return l.DB.Execute(p, ExecuteOptions{Limit: limit, Cache: l.Cache})
}

// CountPlan implements PlanExecutor.
func (l *LocalExecutor) CountPlan(p *JoinPlan, limit int) (int, error) {
	return l.DB.CountCached(p, limit, l.Cache)
}
