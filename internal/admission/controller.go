// Package admission implements a self-tuning admission governor for
// the serving path: an AIMD (additive-increase / multiplicative-
// decrease) controller that discovers the concurrency knee online from
// windowed latency observations, a resizable cost-banded gate that
// sheds the estimated-heaviest waiters first under queue pressure, and
// a drain-rate-scaled Retry-After estimator.
//
// The package is deliberately free of wall-clock reads in the control
// math: the controller consumes pre-aggregated windows, and the
// Governor that feeds it takes an injectable `now` function, so the
// whole control loop is drivable from a simulated clock in tests.
package admission

import "time"

// Config bounds and tunes the AIMD controller. The zero value is not
// usable; call (Config).withDefaults or construct via NewController,
// which applies defaults for unset fields.
type Config struct {
	// MinLimit is the concurrency floor: back-off never goes below
	// it. Defaults to 1.
	MinLimit int
	// MaxLimit is the concurrency ceiling: additive increase never
	// exceeds it. Defaults to 1024.
	MaxLimit int
	// InitialLimit is the starting concurrency limit. Defaults to
	// MinLimit (start conservative, probe upward).
	InitialLimit int
	// Increase is the additive step applied after a healthy window.
	// Defaults to 1.
	Increase int
	// Backoff is the multiplicative factor applied to the limit when
	// a window degrades, in (0, 1). Defaults to 0.75 — gentler than
	// TCP's 0.5, keeping the sawtooth inside a ±25% band around the
	// knee.
	Backoff float64
	// Degrade is the latency-gradient threshold: a window is
	// degraded when its p99 exceeds the reference p99 by more than
	// this fraction (p99 > ref * (1+Degrade)). Defaults to 0.3.
	Degrade float64
	// MinSamples is the minimum number of completions a window needs
	// before its p99 is trusted; sparser windows hold the limit.
	// Defaults to 8.
	MinSamples int
	// RefDecay is the EWMA weight a healthy window's p99 contributes
	// to the reference latency, in (0, 1]. Defaults to 0.2.
	RefDecay float64
	// Cooldown is the number of windows to hold after a back-off so
	// the reduced limit can show its effect before being judged.
	// Defaults to 1.
	Cooldown int
}

func (c Config) withDefaults() Config {
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 1024
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.Increase <= 0 {
		c.Increase = 1
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.75
	}
	if c.Degrade <= 0 {
		c.Degrade = 0.3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.RefDecay <= 0 || c.RefDecay > 1 {
		c.RefDecay = 0.2
	}
	if c.Cooldown < 0 {
		c.Cooldown = 1
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	}
	return c
}

// Window is one aggregated observation interval handed to the
// controller: how many requests completed and the p99 service latency
// over that interval. Goodput enters the loop as the sample gate —
// windows with fewer than MinSamples completions carry too little
// signal and hold the limit rather than moving it.
type Window struct {
	Completed int
	P99       time.Duration
}

// Decision is the controller's verdict on one window.
type Decision int

const (
	// Hold leaves the limit unchanged (sparse window, cooldown, or
	// already at the ceiling).
	Hold Decision = iota
	// Increase raised the limit additively after a healthy window.
	Increase
	// Backoff cut the limit multiplicatively after a degraded window.
	Backoff
)

func (d Decision) String() string {
	switch d {
	case Increase:
		return "increase"
	case Backoff:
		return "backoff"
	default:
		return "hold"
	}
}

// Controller is the pure AIMD loop: feed it windows, read the limit.
// It performs no locking and reads no clock — callers own both.
type Controller struct {
	cfg   Config
	limit int
	// ref is the EWMA reference p99 in nanoseconds, seeded from the
	// first adequately-sampled window and updated only by healthy
	// windows so a sustained degradation cannot drag the baseline up
	// and mask itself.
	ref  float64
	cool int

	windows   int64
	increases int64
	backoffs  int64
	holds     int64
}

// NewController builds a controller with defaults applied and the
// limit at InitialLimit.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, limit: cfg.InitialLimit}
}

// Limit returns the current concurrency limit.
func (c *Controller) Limit() int { return c.limit }

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Observe feeds one completed window into the loop and returns the
// decision taken. The limit after the call is Limit().
func (c *Controller) Observe(w Window) Decision {
	c.windows++
	if w.Completed < c.cfg.MinSamples {
		c.holds++
		return Hold
	}
	if c.cool > 0 {
		// A back-off just happened; the windows observed since were
		// (partly) produced under the old, too-high limit. Hold until
		// the cut has had a full window to show its effect.
		c.cool--
		c.holds++
		return Hold
	}
	p99 := float64(w.P99)
	if c.ref == 0 {
		c.ref = p99
	}
	if p99 <= c.ref*(1+c.cfg.Degrade) {
		c.ref = (1-c.cfg.RefDecay)*c.ref + c.cfg.RefDecay*p99
		if c.limit < c.cfg.MaxLimit {
			c.limit += c.cfg.Increase
			if c.limit > c.cfg.MaxLimit {
				c.limit = c.cfg.MaxLimit
			}
			c.increases++
			return Increase
		}
		c.holds++
		return Hold
	}
	next := int(float64(c.limit) * c.cfg.Backoff)
	if next >= c.limit {
		next = c.limit - 1
	}
	if next < c.cfg.MinLimit {
		next = c.cfg.MinLimit
	}
	c.limit = next
	c.cool = c.cfg.Cooldown
	c.backoffs++
	return Backoff
}

// ControllerState is a point-in-time snapshot of the loop, exported on
// /healthz so operators can see what the governor is doing.
type ControllerState struct {
	Limit     int     `json:"limit"`
	MinLimit  int     `json:"min_limit"`
	MaxLimit  int     `json:"max_limit"`
	RefP99MS  float64 `json:"ref_p99_ms"`
	Windows   int64   `json:"windows"`
	Increases int64   `json:"increases"`
	Backoffs  int64   `json:"backoffs"`
	Holds     int64   `json:"holds"`
}

// State snapshots the controller.
func (c *Controller) State() ControllerState {
	return ControllerState{
		Limit:     c.limit,
		MinLimit:  c.cfg.MinLimit,
		MaxLimit:  c.cfg.MaxLimit,
		RefP99MS:  c.ref / 1e6,
		Windows:   c.windows,
		Increases: c.increases,
		Backoffs:  c.backoffs,
		Holds:     c.holds,
	}
}
