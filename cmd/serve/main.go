// Command serve runs the keyword-search engine as an HTTP JSON service
// over one of the bundled demo datasets (or a database dump written by
// Engine.SaveTo), optionally persisted in a durable state directory.
//
// Usage:
//
//	go run ./cmd/serve [-addr :8080] [-seed N] [-music] [-db dump] [-ttl 15m]
//	                   [-mutable] [-data-dir DIR] [-answer-cache BYTES]
//	                   [-shards N]
//	                   [-max-concurrent N] [-max-queue N] [-queue-timeout 1s]
//	                   [-request-timeout 5s]
//	                   [-adaptive] [-adapt-min N] [-adapt-max N] [-adapt-window 500ms]
//
// Every flag lands in one validated Config (see config.go), so an
// inconsistent combination — -db with -music, -answer-cache without
// -exec-cache, -shards 0 — fails at startup instead of misserving.
//
// -shards N serves through an N-shard scatter-gather coordinator:
// plan execution is partitioned by row ownership across N shards and
// merged in rank order, with responses byte-identical to -shards 1 on
// the same data (docs/sharding.md). Mutations and durability work
// unchanged — batches commit once through the coordinator under one
// epoch, and a state directory written at any shard count recovers at
// any other. /healthz gains a "shards" block (per-shard row counts,
// cache traffic, merge wave counters).
//
// -answer-cache gives the engine-lifetime materialized answer cache a
// byte budget (0, the default, disables it): hot keyword-bag selections
// and candidate-network results are shared across requests, invalidated
// incrementally by mutation batches, persisted at checkpoint, and
// restored warm on recovery. /healthz reports its occupancy and hit
// counters; see docs/qcache.md.
//
// The overload protection of the serving path comes in two modes.
// Static: -max-concurrent bounds requests executing at once,
// -max-queue bounds the wait line (excess is shed with 429, expired
// waits with 503, both with Retry-After), and -request-timeout gives
// every /v1/ request a default deadline that propagates through the
// engine and maps to 504. Adaptive: -adaptive replaces the static
// limit with the AIMD governor (docs/admission.md) — the concurrency
// limit self-tunes between -adapt-min and -adapt-max from windowed
// p99 observations (-adapt-window), and under queue pressure the
// estimated-heaviest waiters are shed first. -max-queue and
// -queue-timeout size the adaptive queue too. All are off by default;
// /healthz reports every configured limit in its nested "limits"
// object, plus controller state and shed counters.
//
// Quickstart:
//
//	go run ./cmd/serve -mutable -data-dir ./state &
//	curl -s localhost:8080/v1/search -d '{"query":"hanks","k":3}'
//	curl -s localhost:8080/v1/mutate -d '{"mutations":[{"op":"insert","table":"actor","values":["a9001","Nora Ephron"]}]}'
//	curl -s -X POST localhost:8080/v1/checkpoint
//	kill %1   # graceful: drains HTTP, checkpoints, closes the WAL
//	go run ./cmd/serve -mutable -data-dir ./state   # recovers: no rebuild
//
// With -data-dir the boot is open-or-build: an existing state directory
// is recovered (snapshot + write-ahead-log tail, surviving crashes mid-
// write), an empty one is initialised from the selected dataset. On
// SIGINT/SIGTERM the server drains in-flight requests, runs a final
// checkpoint, and closes the log, so the next boot reads one snapshot
// and replays nothing.
//
// See package repro/httpapi for the endpoint and session protocol,
// docs/mutations.md for the live-mutation snapshot model,
// docs/persistence.md for the durability design, and docs/sharding.md
// for the scatter-gather topology.
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	keysearch "repro"
	"repro/httpapi"
)

func main() {
	cfg, err := FromFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}

	eng, err := buildEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine ready: %d tables, %d rows, %d query templates, parallelism %d, mutable %v, durable %v (epoch %d)",
		eng.NumTables(), eng.NumRows(), eng.NumTemplates(), eng.Parallelism(), eng.MutationsEnabled(),
		eng.Durable(), eng.Epoch())
	if stats, ok := eng.AnswerCacheStats(); ok {
		log.Printf("answer cache: budget %d bytes, %d entries restored (%d bytes resident)",
			stats.BudgetBytes, stats.Entries, stats.ResidentBytes)
	}

	// Topology: the engine itself, or an N-shard scatter-gather
	// coordinator over it. Both satisfy keysearch.Searcher, so the HTTP
	// layer is indifferent.
	var topo keysearch.Searcher = eng
	if cfg.Shards > 1 {
		se, err := keysearch.NewShardedEngine(cfg.Shards, eng)
		if err != nil {
			log.Fatal(err)
		}
		topo = se
		log.Printf("topology: %d-shard scatter-gather coordinator", cfg.Shards)
	}

	srv := httpapi.New(topo, cfg.ServerOptions()...)
	switch {
	case cfg.Adaptive:
		log.Printf("admission: adaptive, limit %d..%d, window %v, max-queue %d, queue-timeout %v",
			cfg.AdaptMin, cfg.AdaptCeiling(), cfg.AdaptWindow, cfg.MaxQueue, cfg.QueueTimeout)
	case cfg.MaxConcurrent > 0:
		log.Printf("admission: max-concurrent %d, max-queue %d, queue-timeout %v",
			cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout)
	}
	httpSrv := &http.Server{Addr: cfg.Addr, Handler: logRequests(srv)}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// flush durability (final checkpoint + WAL close) before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("shutting down: draining HTTP...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if eng.Durable() {
			log.Printf("shutting down: final checkpoint + closing WAL...")
		}
		if err := topo.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}()

	log.Printf("serving on %s (try: curl -s localhost%s/v1/search -d '{\"query\":\"hanks\",\"k\":3}')",
		cfg.Addr, cfg.Addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("bye")
}

// buildEngine implements open-or-build: recover the state directory
// when it holds a snapshot, otherwise build from the dump or demo
// dataset (durably when -data-dir is set, so the next boot recovers).
func buildEngine(cfg *Config) (*keysearch.Engine, error) {
	opts := cfg.EngineOptions()
	if cfg.DataDir != "" {
		eng, err := keysearch.Open(cfg.DataDir, opts...)
		if err == nil {
			log.Printf("recovered state directory %s (replaying WAL tail of %d batches)",
				cfg.DataDir, eng.PendingWALBatches())
			return eng, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		log.Printf("state directory %s is empty: building from dataset", cfg.DataDir)
	}
	switch {
	case cfg.DBPath != "":
		f, err := os.Open(cfg.DBPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return keysearch.Load(f, opts...)
	case cfg.Music:
		// The 5-table chain schema needs join paths of length 5.
		return keysearch.DemoMusicWith(cfg.Seed, opts...)
	default:
		return keysearch.DemoMoviesWith(cfg.Seed, opts...)
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
