package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Differential property tests: the posting-list engine must agree exactly
// — same rows, same order — with the retained scan reference on
// randomized tables, predicate bags (including duplicated keywords, empty
// bags, unknown and non-indexed columns), and join plans.

// diffVocab is small so that keyword matches, duplicate tokens within one
// value, and multi-keyword co-occurrence are all common.
var diffVocab = []string{"alpha", "beta", "gamma", "delta", "omega", "42", "7", "zz"}

// randValue builds one cell value of up to n vocabulary tokens, sometimes
// with punctuation and mixed case to exercise tokenization.
func randValue(rng *rand.Rand, n int) string {
	k := rng.Intn(n + 1)
	v := ""
	for i := 0; i < k; i++ {
		w := diffVocab[rng.Intn(len(diffVocab))]
		if rng.Intn(4) == 0 {
			w = "X" + w // prefix fused onto the token: different term
		}
		switch rng.Intn(3) {
		case 0:
			v += w + " "
		case 1:
			v += w + ", "
		default:
			v += w + "-"
		}
	}
	return v
}

// randBag builds a keyword bag of up to n keywords with frequent
// duplicates and occasional mixed case / junk keywords.
func randBag(rng *rand.Rand, n int) []string {
	k := rng.Intn(n + 1)
	bag := make([]string, 0, k)
	for i := 0; i < k; i++ {
		switch rng.Intn(6) {
		case 0:
			if len(bag) > 0 { // duplicate an earlier keyword
				bag = append(bag, bag[rng.Intn(len(bag))])
				continue
			}
			bag = append(bag, diffVocab[rng.Intn(len(diffVocab))])
		case 1:
			bag = append(bag, "ALPHA") // case-insensitivity
		case 2:
			bag = append(bag, "nosuchword")
		default:
			bag = append(bag, diffVocab[rng.Intn(len(diffVocab))])
		}
	}
	return bag
}

func TestDifferentialSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		schema := &TableSchema{Name: "t", Columns: []Column{
			{Name: "a", Indexed: true},
			{Name: "b", Indexed: false}, // selections on non-indexed columns
			{Name: "c", Indexed: iter%2 == 0},
		}}
		tab := NewTable(schema)
		rows := rng.Intn(40)
		for i := 0; i < rows; i++ {
			if _, err := tab.Insert(randValue(rng, 6), randValue(rng, 3), randValue(rng, 2)); err != nil {
				t.Fatal(err)
			}
		}
		for _, col := range []string{"a", "b", "c", "missing"} {
			bag := randBag(rng, 4)
			postings := tab.SelectContains(col, bag)
			scan := tab.SelectContainsScan(col, bag)
			if !sameIDs(postings, scan) {
				t.Fatalf("iter %d: SelectContains(%q, %q) postings=%v scan=%v",
					iter, col, bag, postings, scan)
			}
			// Row-by-row oracle: ContainsBag on every value.
			if ci := schema.ColumnIndex(col); ci >= 0 {
				var oracle []int
				for _, r := range tab.Rows() {
					if ContainsBag(r.Values[ci], bag) {
						oracle = append(oracle, r.RowID)
					}
				}
				if !sameIDs(postings, oracle) {
					t.Fatalf("iter %d: SelectContains(%q, %q)=%v but ContainsBag rows=%v",
						iter, col, bag, postings, oracle)
				}
			}
		}
	}
}

// sameIDs treats nil and empty as equal and demands identical order.
func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randDiffDB builds a small randomized 3-table FK chain a ← b ← c with
// occasionally dangling references.
func randDiffDB(t *testing.T, rng *rand.Rand) *Database {
	t.Helper()
	db := NewDatabase("diff")
	mustCreate := func(s *TableSchema) *Table {
		tab, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	ta := mustCreate(&TableSchema{Name: "a", PrimaryKey: "id", Columns: []Column{
		{Name: "id"}, {Name: "text", Indexed: true},
	}})
	tb := mustCreate(&TableSchema{Name: "b", Columns: []Column{
		{Name: "a_id"}, {Name: "text", Indexed: true}, {Name: "extra"},
	}, ForeignKeys: []ForeignKey{{Column: "a_id", RefTable: "a", RefColumn: "id"}}})
	tc := mustCreate(&TableSchema{Name: "c", Columns: []Column{
		{Name: "a_id"}, {Name: "text", Indexed: true},
	}, ForeignKeys: []ForeignKey{{Column: "a_id", RefTable: "a", RefColumn: "id"}}})
	if err := db.ValidateRefs(); err != nil {
		t.Fatal(err)
	}
	na := 1 + rng.Intn(20)
	for i := 0; i < na; i++ {
		if _, err := ta.Insert(fmt.Sprintf("a%d", i), randValue(rng, 5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rng.Intn(40); i++ {
		ref := fmt.Sprintf("a%d", rng.Intn(na+2)) // sometimes dangling
		if _, err := tb.Insert(ref, randValue(rng, 4), randValue(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rng.Intn(30); i++ {
		ref := fmt.Sprintf("a%d", rng.Intn(na+2))
		if _, err := tc.Insert(ref, randValue(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// randDiffPlan builds a random valid plan over the chain schema: one of
// {a}, {a⋈b}, {a⋈c}, {b⋈a⋈c}, with random predicate sets per node.
func randDiffPlan(rng *rand.Rand) *JoinPlan {
	preds := func(table string) []Predicate {
		var out []Predicate
		for _, col := range []string{"text", "extra", "missing"} {
			switch {
			case rng.Intn(3) == 0:
				out = append(out, Predicate{Column: col, Keywords: randBag(rng, 3)})
			}
		}
		return out
	}
	switch rng.Intn(4) {
	case 0:
		return &JoinPlan{Nodes: []JoinNode{{Table: "a", Predicates: preds("a")}}}
	case 1:
		return &JoinPlan{
			Nodes: []JoinNode{
				{Table: "a", Predicates: preds("a")},
				{Table: "b", Predicates: preds("b")},
			},
			Edges: []JoinEdge{{From: 1, To: 0, FromColumn: "a_id", ToColumn: "id"}},
		}
	case 2:
		return &JoinPlan{
			Nodes: []JoinNode{
				{Table: "c", Predicates: preds("c")},
				{Table: "a", Predicates: preds("a")},
			},
			Edges: []JoinEdge{{From: 0, To: 1, FromColumn: "a_id", ToColumn: "id"}},
		}
	default:
		return &JoinPlan{
			Nodes: []JoinNode{
				{Table: "b", Predicates: preds("b")},
				{Table: "a", Predicates: preds("a")},
				{Table: "c", Predicates: preds("c")},
			},
			Edges: []JoinEdge{
				{From: 0, To: 1, FromColumn: "a_id", ToColumn: "id"},
				{From: 2, To: 1, FromColumn: "a_id", ToColumn: "id"},
			},
		}
	}
}

func TestDifferentialExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 150; iter++ {
		db := randDiffDB(t, rng)
		cache := NewSelectionCache() // shared across every plan of this db
		for p := 0; p < 8; p++ {
			plan := randDiffPlan(rng)
			limit := []int{0, 0, 1, 3}[rng.Intn(4)]
			opts := ExecuteOptions{Limit: limit}
			ref, err := db.ExecuteScan(plan, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.Execute(plan, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameJTTs(ref, got) {
				t.Fatalf("iter %d plan %d limit %d: scan=%v compiled=%v (plan %+v)",
					iter, p, limit, ref, got, plan)
			}
			cached, err := db.Execute(plan, ExecuteOptions{Limit: limit, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			if !sameJTTs(ref, cached) {
				t.Fatalf("iter %d plan %d limit %d: scan=%v cached=%v", iter, p, limit, ref, cached)
			}
			n, err := db.CountCached(plan, limit, cache)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(ref) {
				t.Fatalf("iter %d plan %d limit %d: Count=%d want %d", iter, p, limit, n, len(ref))
			}
		}
	}
}

func sameJTTs(a, b []JTT) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Rows, b[i].Rows) {
			return false
		}
	}
	return true
}

// TestCountNoJTTAllocations pins the allocation contract of Count: the
// counting recursion materialises nothing per result, so counting a plan
// with hundreds of results allocates the same small constant as counting
// one — while Execute's allocations grow with the result count.
func TestCountNoJTTAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := NewDatabase("alloc")
	ta, err := db.CreateTable(&TableSchema{Name: "a", PrimaryKey: "id", Columns: []Column{
		{Name: "id"}, {Name: "text", Indexed: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(&TableSchema{Name: "b", Columns: []Column{
		{Name: "a_id"}, {Name: "text", Indexed: true},
	}, ForeignKeys: []ForeignKey{{Column: "a_id", RefTable: "a", RefColumn: "id"}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ta.Insert(fmt.Sprintf("a%d", i), "alpha beta"); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 25; j++ {
			if _, err := tb.Insert(fmt.Sprintf("a%d", i), "gamma "+diffVocab[rng.Intn(len(diffVocab))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	plan := &JoinPlan{
		Nodes: []JoinNode{
			{Table: "a", Predicates: []Predicate{{Column: "text", Keywords: []string{"alpha"}}}},
			{Table: "b", Predicates: []Predicate{{Column: "text", Keywords: []string{"gamma"}}}},
		},
		Edges: []JoinEdge{{From: 1, To: 0, FromColumn: "a_id", ToColumn: "id"}},
	}
	db.Prepare()
	full, err := db.Count(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full != 500 {
		t.Fatalf("Count = %d, want 500", full)
	}
	countAll := testing.AllocsPerRun(20, func() {
		if _, err := db.Count(plan, 0); err != nil {
			t.Fatal(err)
		}
	})
	countOne := testing.AllocsPerRun(20, func() {
		if _, err := db.Count(plan, 1); err != nil {
			t.Fatal(err)
		}
	})
	execAll := testing.AllocsPerRun(20, func() {
		if _, err := db.Execute(plan, ExecuteOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	// Counting 500 results must allocate no more than counting 1: the
	// per-result work is a counter increment. Execute, by contrast,
	// allocates at least one slice per materialised JTT.
	if countAll > countOne {
		t.Fatalf("Count allocations grow with results: all=%v one=%v", countAll, countOne)
	}
	if execAll < float64(full) {
		t.Fatalf("expected Execute to allocate per JTT (>= %d), got %v", full, execAll)
	}
}
