package keysearch

import "context"

// Searcher is the serving surface of a keyword-search topology: every
// operation the HTTP layer and the load tools need, with no assumption
// about what executes behind it. *Engine implements it in-process;
// *ShardedEngine implements it by scatter-gathering plan execution
// across partitions. Any future topology (replica fan-out, remote
// shards) that satisfies this interface drops into httpapi, cmd/serve,
// and cmd/loadtest without handler changes.
//
// Implementations must be safe for unlimited concurrent use and must
// produce byte-identical responses for the same request over the same
// data — the differential bar every topology in this repo is held to.
type Searcher interface {
	// Search ranks the query's structured interpretations (IQP).
	Search(ctx context.Context, req SearchRequest) (*SearchResponse, error)
	// Diversify ranks relevant-and-diverse interpretations (DivQ).
	Diversify(ctx context.Context, req DiversifyRequest) (*SearchResponse, error)
	// SearchRows retrieves the k globally best concrete result rows.
	SearchRows(ctx context.Context, req RowsRequest) (*RowsResponse, error)
	// Construct starts an interactive query-construction session.
	Construct(ctx context.Context, req ConstructRequest) (*Construction, error)
	// Keywords serves prefix autocomplete from the term dictionary.
	Keywords(prefix string, limit int) []string
	// Apply commits a mutation batch (ErrMutationsDisabled when the
	// topology was built immutable).
	Apply(ctx context.Context, muts []Mutation) (*ApplyResult, error)
	// Checkpoint forces a durability checkpoint (ErrDurabilityDisabled
	// on a memory-only topology).
	Checkpoint(ctx context.Context) (*CheckpointStats, error)
	// EstimateCost prices a keyword query for admission control.
	EstimateCost(keywords string) int64
	// SampleQueries returns representative queries for cost calibration.
	SampleQueries(n int) []string
	// Stats reports the health/observability snapshot for /healthz.
	Stats() EngineStats
	// Close releases background resources (durability runtime).
	Close() error
}

// EngineStats is the topology-independent health snapshot behind
// /healthz: static serving configuration plus the live counters of
// whichever subsystems are enabled. Optional blocks are nil when the
// corresponding subsystem is off.
type EngineStats struct {
	// Parallelism is the interpretation pipeline's worker count;
	// ExecutionCache reports whether per-request selection caching is on.
	Parallelism    int
	ExecutionCache bool
	// Mutable reports whether Apply accepts batches; Epoch is the
	// current snapshot epoch.
	Mutable bool
	Epoch   uint64
	// Durable reports whether a WAL/snapshot directory backs the engine;
	// WALBatches and LastCheckpointEpoch describe its recovery state.
	Durable             bool
	WALBatches          int
	LastCheckpointEpoch uint64
	// AnswerCache carries the engine-lifetime answer cache counters, nil
	// when disabled.
	AnswerCache *AnswerCacheStats
	// Shards carries the scatter-gather coordinator state, nil on a
	// single-process topology.
	Shards *ShardStats
}

// ShardStats is the coordinator block of EngineStats.
type ShardStats struct {
	// Count is the shard count.
	Count int
	// Scatters / CountScatters / MergedResults are coordinator-level
	// merge-wave counters: plan fan-outs, counting fan-outs, and total
	// results emitted by the rank-order merge.
	Scatters      int64
	CountScatters int64
	MergedResults int64
	// Shards holds one entry per shard.
	Shards []ShardStat
}

// ShardStat is one shard's slice of ShardStats.
type ShardStat struct {
	// Rows is the number of live rows the shard owns under the current
	// snapshot.
	Rows int
	// Execs counts partitioned plan runs; Results the joining trees the
	// shard contributed before merge.
	Execs   int64
	Results int64
	// SelectionHits / SelectionsComputed are the shard's traffic against
	// the request-wide shared selection store.
	SelectionHits      int64
	SelectionsComputed int64
}

// Stats implements Searcher for the single-process engine.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Parallelism:         e.Parallelism(),
		ExecutionCache:      e.ExecutionCacheEnabled(),
		Mutable:             e.MutationsEnabled(),
		Epoch:               e.Epoch(),
		Durable:             e.Durable(),
		WALBatches:          e.PendingWALBatches(),
		LastCheckpointEpoch: e.LastCheckpointEpoch(),
	}
	if acs, ok := e.AnswerCacheStats(); ok {
		st.AnswerCache = &acs
	}
	return st
}

// Compile-time checks: both topologies satisfy the serving surface.
var (
	_ Searcher = (*Engine)(nil)
	_ Searcher = (*ShardedEngine)(nil)
)
