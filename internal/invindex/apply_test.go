package invindex

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/relstore"
)

// applyTestDB builds a small two-table database with prepared indexes.
func applyTestDB(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("apply")
	person, err := db.CreateTable(&relstore.TableSchema{
		Name:       "person",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}, {Name: "bio", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	city, err := db.CreateTable(&relstore.TableSchema{
		Name:       "city",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{
		{"p1", "alice rivers", "writer of rivers and stone"},
		{"p2", "bob stone", "stone stone mason"},
		{"p3", "carol", ""},
	} {
		if _, err := person.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]string{{"c1", "london"}, {"c2", "stone harbor"}} {
		if _, err := city.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.Prepare()
	return db
}

// assertIndexesEqual compares every statistic the ranking model and the
// candidate generator read between an incrementally maintained index and
// a freshly built one over the same database.
func assertIndexesEqual(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NumTerms() != want.NumTerms() {
		t.Errorf("NumTerms: got %d, want %d", got.NumTerms(), want.NumTerms())
	}
	if !reflect.DeepEqual(got.terms, want.terms) {
		t.Errorf("terms dictionary diverges:\n got %v\nwant %v", got.terms, want.terms)
	}
	if got.TotalDocs() != want.TotalDocs() {
		t.Errorf("TotalDocs: got %d, want %d", got.TotalDocs(), want.TotalDocs())
	}
	for _, term := range want.terms {
		gp, wp := got.Lookup(term), want.Lookup(term)
		if !reflect.DeepEqual(gp, wp) {
			t.Errorf("Lookup(%q):\n got %+v\nwant %+v", term, gp, wp)
		}
	}
	for _, attr := range want.Attributes() {
		if g, w := got.AttrTokens(attr), want.AttrTokens(attr); g != w {
			t.Errorf("AttrTokens(%s): got %d, want %d", attr, g, w)
		}
		if g, w := got.AttrVocabulary(attr), want.AttrVocabulary(attr); g != w {
			t.Errorf("AttrVocabulary(%s): got %d, want %d", attr, g, w)
		}
		if g, w := got.AttrDocs(attr), want.AttrDocs(attr); g != w {
			t.Errorf("AttrDocs(%s): got %d, want %d", attr, g, w)
		}
		for _, term := range want.terms {
			if g, w := got.TermCount(term, attr), want.TermCount(term, attr); g != w {
				t.Errorf("TermCount(%q, %s): got %d, want %d", term, attr, g, w)
			}
			if g, w := got.DocCount(term, attr), want.DocCount(term, attr); g != w {
				t.Errorf("DocCount(%q, %s): got %d, want %d", term, attr, g, w)
			}
			if g, w := got.ATF(term, attr, 1), want.ATF(term, attr, 1); g != w {
				t.Errorf("ATF(%q, %s): got %v, want %v", term, attr, g, w)
			}
			if g, w := got.IDF(term, attr), want.IDF(term, attr); g != w {
				t.Errorf("IDF(%q, %s): got %v, want %v", term, attr, g, w)
			}
		}
	}
	// Spot-check the global statistic on a vanished term too.
	for _, term := range []string{"stone", "rivers", "ghost"} {
		if g, w := got.GlobalIDF(term), want.GlobalIDF(term); math.Abs(g-w) > 0 {
			t.Errorf("GlobalIDF(%q): got %v, want %v", term, g, w)
		}
	}
}

func TestIndexApplyMatchesBuild(t *testing.T) {
	db := applyTestDB(t)
	ix := Build(db)
	db2, changes, err := db.Apply([]relstore.Mutation{
		{Op: relstore.OpInsert, Table: "person", Values: []string{"p4", "dara stone", "new in london"}},
		{Op: relstore.OpUpdate, Table: "person", Key: "p2", Values: []string{"p2", "bob boulder", "granite mason"}},
		{Op: relstore.OpDelete, Table: "city", Key: "c2"},
		{Op: relstore.OpUpdate, Table: "person", Key: "p3", Values: []string{"p3", "carol", "now has a bio"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Apply(db2, changes)
	assertIndexesEqual(t, got, Build(db2))

	// The source index is untouched.
	assertIndexesEqual(t, ix, Build(db))
	if !ix.Contains("harbor") {
		t.Fatal("source index lost a term")
	}
	if got.Contains("harbor") {
		t.Fatal("deleted term survives in patched index")
	}
	if !got.Contains("granite") {
		t.Fatal("new term missing from patched index")
	}
}

func TestIndexApplyRandomized(t *testing.T) {
	db := applyTestDB(t)
	ix := Build(db)
	rng := rand.New(rand.NewSource(11))
	words := []string{"alice", "stone", "rivers", "london", "mason", "kelp", "onyx", "", "stone stone"}
	serial := 0
	for round := 0; round < 30; round++ {
		var muts []relstore.Mutation
		used := map[string]bool{}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			tb := db.Tables()[rng.Intn(db.NumTables())]
			name := tb.Schema.Name
			switch rng.Intn(3) {
			case 0:
				serial++
				vals := make([]string, len(tb.Schema.Columns))
				vals[0] = name + "k" + string(rune('a'+serial%26)) + string(rune('a'+(serial/26)%26))
				for i := 1; i < len(vals); i++ {
					vals[i] = words[rng.Intn(len(words))]
				}
				if used[name+vals[0]] {
					continue
				}
				used[name+vals[0]] = true
				muts = append(muts, relstore.Mutation{Op: relstore.OpInsert, Table: name, Values: vals})
			default:
				id := -1
				for try := 0; try < 20 && id < 0; try++ {
					cand := rng.Intn(tb.Len())
					if tb.Live(cand) {
						id = cand
					}
				}
				if id < 0 {
					continue
				}
				key := tb.Rows()[id].Values[0]
				if used[name+key] {
					continue
				}
				used[name+key] = true
				if rng.Intn(2) == 0 {
					vals := append([]string(nil), tb.Rows()[id].Values...)
					vals[1+rng.Intn(len(vals)-1)] = words[rng.Intn(len(words))]
					muts = append(muts, relstore.Mutation{Op: relstore.OpUpdate, Table: name, Key: key, Values: vals})
				} else {
					muts = append(muts, relstore.Mutation{Op: relstore.OpDelete, Table: name, Key: key})
				}
			}
		}
		if len(muts) == 0 {
			continue
		}
		db2, changes, err := db.Apply(muts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ix = ix.Apply(db2, changes)
		db = db2
		assertIndexesEqual(t, ix, Build(db))
		if t.Failed() {
			t.Fatalf("diverged at round %d (muts %+v)", round, muts)
		}
	}
}
