package keysearch

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files from the sequential pipeline's output:
//
//	go test -run TestGolden . -update
//
// CI runs without -update, so any drift in ranked interpretations or
// top-k results fails the build until the change is reviewed and the
// files regenerated.
var update = flag.Bool("update", false, "rewrite testdata/golden files from sequential output")

// goldenQuery is the recorded outcome of one keyword query: the ranked
// interpretation response and the globally ranked top rows.
type goldenQuery struct {
	Query  string          `json:"query"`
	Search *SearchResponse `json:"search"`
	Rows   *RowsResponse   `json:"rows"`
}

// goldenDoc is one golden file: a seed dataset plus its recorded queries.
type goldenDoc struct {
	Dataset string        `json:"dataset"`
	Seed    int64         `json:"seed"`
	Queries []goldenQuery `json:"queries"`
}

// goldenDatasets enumerates the seed datasets covered by golden files.
// Queries are derived deterministically from the dataset itself
// (SampleQueries is seed-stable), combined into multi-keyword queries so
// the space includes joins and cross-attribute ambiguity.
var goldenDatasets = []struct {
	name  string
	seed  int64
	build func(seed int64, opts ...Option) (*Engine, error)
}{
	{name: "movies", seed: 7, build: DemoMoviesWith},
	{name: "music", seed: 7, build: DemoMusicWith},
}

// goldenQueries derives the recorded query set from the engine's data.
func goldenQueries(eng *Engine) []string {
	toks := eng.SampleQueries(4)
	var qs []string
	for _, t := range toks {
		qs = append(qs, t)
	}
	if len(toks) >= 2 {
		qs = append(qs, strings.Join(toks[:2], " "))
	}
	if len(toks) >= 3 {
		qs = append(qs, strings.Join(toks[:3], " "))
	}
	return qs
}

// goldenRun produces the full pipeline output document for one engine.
func goldenRun(t *testing.T, eng *Engine, name string, seed int64) *goldenDoc {
	t.Helper()
	ctx := context.Background()
	doc := &goldenDoc{Dataset: name, Seed: seed}
	for _, q := range goldenQueries(eng) {
		sr, err := eng.Search(ctx, SearchRequest{Query: q, K: 10})
		if err != nil {
			t.Fatalf("Search(%q): %v", q, err)
		}
		rr, err := eng.SearchRows(ctx, RowsRequest{Query: q, K: 8})
		if err != nil {
			t.Fatalf("SearchRows(%q): %v", q, err)
		}
		doc.Queries = append(doc.Queries, goldenQuery{Query: q, Search: sr, Rows: rr})
	}
	return doc
}

func marshalGolden(t *testing.T, doc *goldenDoc) []byte {
	t.Helper()
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestGoldenPipeline locks the ranked-interpretation and top-k output of
// the seed datasets: the sequential pipeline must reproduce the recorded
// files byte for byte, and the parallel pipeline must be byte-identical
// to the same recording (the regression net for the sharded/parallel
// refactor). Regenerate with -update after an intentional ranking change.
func TestGoldenPipeline(t *testing.T) {
	for _, ds := range goldenDatasets {
		ds := ds
		t.Run(ds.name, func(t *testing.T) {
			seq, err := ds.build(ds.seed, WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			got := marshalGolden(t, goldenRun(t, seq, ds.name, ds.seed))
			path := filepath.Join("testdata", "golden", ds.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden file: %v (regenerate with: go test -run TestGolden . -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("sequential pipeline output drifted from %s\n(regenerate with: go test -run TestGolden . -update)\ngot %d bytes, want %d bytes", path, len(got), len(want))
			}

			par, err := ds.build(ds.seed, WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}
			gotPar := marshalGolden(t, goldenRun(t, par, ds.name, ds.seed))
			if !bytes.Equal(gotPar, want) {
				t.Fatalf("parallel pipeline output differs from recorded sequential output for %s", path)
			}
		})
	}
}
