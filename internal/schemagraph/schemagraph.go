// Package schemagraph models the undirected schema graph of a relational
// database (Section 2.2.3, Figure 2.2): nodes are tables, edges are foreign
// key → primary key relationships. It provides the two enumeration
// primitives the keyword-search stack is built on:
//
//   - EnumerateJoinTrees: all connected join trees over the schema graph up
//     to a size bound, allowing repeated table occurrences (self-join
//     patterns such as Actor ⋈ Acts ⋈ Movie ⋈ Acts ⋈ Actor). These are the
//     automatically generated query templates of Section 3.5.2.
//   - EnumerateCandidateNetworks: the DISCOVER-style breadth-first
//     enumeration of candidate networks for a keyword query: join trees
//     whose leaves are non-free (minimality) and which cover all keywords
//     (completeness), Section 2.2.3.
package schemagraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relstore"
)

// Edge is one foreign-key relationship between two tables. By convention
// From.FromColumn references To.ToColumn (FK → PK), but traversal treats
// edges as undirected, as in Figure 2.2.
type Edge struct {
	From, To             string
	FromColumn, ToColumn string
}

// Reverse returns the same relationship seen from the other side.
func (e Edge) Reverse() Edge {
	return Edge{From: e.To, To: e.From, FromColumn: e.ToColumn, ToColumn: e.FromColumn}
}

// Graph is the undirected schema graph of a database.
type Graph struct {
	tables []string
	index  map[string]int
	// adjacency: table -> outgoing half-edges (including reversed ones).
	adj map[string][]Edge
}

// FromDatabase builds the schema graph from the declared foreign keys.
func FromDatabase(db *relstore.Database) *Graph {
	g := &Graph{index: make(map[string]int), adj: make(map[string][]Edge)}
	for _, name := range db.TableNames() {
		g.index[name] = len(g.tables)
		g.tables = append(g.tables, name)
	}
	for _, t := range db.Tables() {
		for _, fk := range t.Schema.ForeignKeys {
			e := Edge{From: t.Schema.Name, To: fk.RefTable, FromColumn: fk.Column, ToColumn: fk.RefColumn}
			g.adj[e.From] = append(g.adj[e.From], e)
			g.adj[e.To] = append(g.adj[e.To], e.Reverse())
		}
	}
	g.sortAdj()
	return g
}

// New builds a schema graph directly from table names and edges; used by
// simulations that need synthetic schema graphs without materialised data
// (Section 3.8.5).
func New(tables []string, edges []Edge) *Graph {
	g := &Graph{index: make(map[string]int), adj: make(map[string][]Edge)}
	for _, name := range tables {
		if _, dup := g.index[name]; dup {
			continue
		}
		g.index[name] = len(g.tables)
		g.tables = append(g.tables, name)
	}
	for _, e := range edges {
		g.adj[e.From] = append(g.adj[e.From], e)
		g.adj[e.To] = append(g.adj[e.To], e.Reverse())
	}
	g.sortAdj()
	return g
}

func (g *Graph) sortAdj() {
	for _, list := range g.adj {
		sort.Slice(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if a.To != b.To {
				return a.To < b.To
			}
			if a.FromColumn != b.FromColumn {
				return a.FromColumn < b.FromColumn
			}
			return a.ToColumn < b.ToColumn
		})
	}
}

// Tables returns all table names in insertion order.
func (g *Graph) Tables() []string {
	out := make([]string, len(g.tables))
	copy(out, g.tables)
	return out
}

// NumTables returns the number of nodes.
func (g *Graph) NumTables() int { return len(g.tables) }

// HasTable reports whether the graph contains the table.
func (g *Graph) HasTable(name string) bool {
	_, ok := g.index[name]
	return ok
}

// Neighbors returns the half-edges leaving the table, sorted.
func (g *Graph) Neighbors(table string) []Edge {
	list := g.adj[table]
	out := make([]Edge, len(list))
	copy(out, list)
	return out
}

// Degree returns the number of half-edges at the table.
func (g *Graph) Degree(table string) int { return len(g.adj[table]) }

// JoinTree is a connected tree over table occurrences. Node i is an
// occurrence of table Tables[i]; TreeEdges connect occurrences. The same
// table may occur several times.
type JoinTree struct {
	Tables    []string
	TreeEdges []TreeEdge
}

// TreeEdge joins occurrence From to occurrence To using the schema-graph
// edge columns.
type TreeEdge struct {
	From, To             int
	FromColumn, ToColumn string
}

// Size returns the number of table occurrences.
func (t *JoinTree) Size() int { return len(t.Tables) }

// NumJoins returns the number of joins (edges).
func (t *JoinTree) NumJoins() int { return len(t.TreeEdges) }

// Clone deep-copies the tree.
func (t *JoinTree) Clone() *JoinTree {
	nt := &JoinTree{
		Tables:    make([]string, len(t.Tables)),
		TreeEdges: make([]TreeEdge, len(t.TreeEdges)),
	}
	copy(nt.Tables, t.Tables)
	copy(nt.TreeEdges, t.TreeEdges)
	return nt
}

// String renders the tree as a deterministic human-readable expression,
// e.g. "actor ⋈ acts ⋈ movie".
func (t *JoinTree) String() string {
	return strings.Join(t.Tables, " ⋈ ")
}

// Canonical returns a canonical encoding of the tree: isomorphic trees
// (same multiset of tables connected the same way, regardless of node
// numbering) produce identical strings. Used for deduplication during
// enumeration. The encoding is the AHU tree canonisation applied from
// every possible root, taking the lexicographically smallest result.
func (t *JoinTree) Canonical() string {
	n := len(t.Tables)
	if n == 0 {
		return ""
	}
	adj := make([][]int, n)
	edgeLabel := make(map[[2]int]string)
	for _, e := range t.TreeEdges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
		edgeLabel[[2]int{e.From, e.To}] = e.FromColumn + "=" + e.ToColumn
		edgeLabel[[2]int{e.To, e.From}] = e.ToColumn + "=" + e.FromColumn
	}
	var encode func(v, parent int) string
	encode = func(v, parent int) string {
		var kids []string
		for _, w := range adj[v] {
			if w == parent {
				continue
			}
			kids = append(kids, edgeLabel[[2]int{v, w}]+":"+encode(w, v))
		}
		sort.Strings(kids)
		return t.Tables[v] + "(" + strings.Join(kids, ",") + ")"
	}
	best := ""
	for root := 0; root < n; root++ {
		s := encode(root, -1)
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// EnumerateOptions bounds join-tree enumeration.
type EnumerateOptions struct {
	// MaxNodes bounds the number of table occurrences per tree (the
	// "maximal length of the join path" of Section 3.8.1).
	MaxNodes int
	// MaxTrees, if positive, caps the number of trees returned; enumeration
	// proceeds in breadth-first (smallest-first) order so the cap keeps the
	// shortest join paths, matching the preference of Section 2.2.4.
	MaxTrees int
	// MaxOccurrences bounds how many times one table may occur in a tree
	// (self-join depth). Zero means 2, which covers the self-join templates
	// used in the thesis.
	MaxOccurrences int
}

// EnumerateJoinTrees enumerates connected join trees over the schema graph
// in breadth-first order of size, deduplicated up to isomorphism. These are
// the automatically generated query templates of Section 3.5.2.
func (g *Graph) EnumerateJoinTrees(opts EnumerateOptions) []*JoinTree {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 3
	}
	maxOcc := opts.MaxOccurrences
	if maxOcc <= 0 {
		maxOcc = 2
	}
	seen := make(map[string]bool)
	var out []*JoinTree
	frontier := make([]*JoinTree, 0, len(g.tables))
	emit := func(t *JoinTree) bool {
		key := t.Canonical()
		if seen[key] {
			return false
		}
		seen[key] = true
		out = append(out, t)
		return true
	}
	for _, name := range g.tables {
		t := &JoinTree{Tables: []string{name}}
		if emit(t) {
			frontier = append(frontier, t)
		}
		if opts.MaxTrees > 0 && len(out) >= opts.MaxTrees {
			return out
		}
	}
	for size := 1; size < opts.MaxNodes; size++ {
		var next []*JoinTree
		for _, t := range frontier {
			occ := make(map[string]int, len(t.Tables))
			for _, name := range t.Tables {
				occ[name]++
			}
			for vi, vName := range t.Tables {
				for _, e := range g.adj[vName] {
					if occ[e.To] >= maxOcc {
						continue
					}
					nt := t.Clone()
					nt.Tables = append(nt.Tables, e.To)
					nt.TreeEdges = append(nt.TreeEdges, TreeEdge{
						From: vi, To: len(nt.Tables) - 1,
						FromColumn: e.FromColumn, ToColumn: e.ToColumn,
					})
					if emit(nt) {
						next = append(next, nt)
					}
					if opts.MaxTrees > 0 && len(out) >= opts.MaxTrees {
						return out
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// CandidateNetwork is a join tree annotated with the keywords each
// occurrence must contain: KeywordsAt[i] lists the keywords assigned to
// occurrence i. Occurrences with no keywords are free tuple sets.
type CandidateNetwork struct {
	Tree       *JoinTree
	KeywordsAt [][]string
}

// String renders the CN in the thesis's a:"k" ⋈ b notation.
func (cn *CandidateNetwork) String() string {
	parts := make([]string, len(cn.Tree.Tables))
	for i, table := range cn.Tree.Tables {
		if len(cn.KeywordsAt[i]) > 0 {
			parts[i] = fmt.Sprintf("%s:%q", table, strings.Join(cn.KeywordsAt[i], " "))
		} else {
			parts[i] = table
		}
	}
	return strings.Join(parts, " ⋈ ")
}

// IsMinimal reports whether every leaf occurrence carries at least one
// keyword (no empty leaf nodes, the minimality condition of §2.2.3).
func (cn *CandidateNetwork) IsMinimal() bool {
	deg := make([]int, len(cn.Tree.Tables))
	for _, e := range cn.Tree.TreeEdges {
		deg[e.From]++
		deg[e.To]++
	}
	for i := range cn.Tree.Tables {
		isLeaf := deg[i] <= 1
		if isLeaf && len(cn.KeywordsAt[i]) == 0 {
			return false
		}
	}
	return true
}

// EnumerateCandidateNetworks enumerates the candidate networks for a
// keyword query given the non-free table sets: matches maps each keyword
// to the tables containing it. A valid CN covers every keyword exactly
// once (completeness, Definition 3.5.4(1)) and has no free leaves
// (minimality, Definition 3.5.4(2)).
func (g *Graph) EnumerateCandidateNetworks(matches map[string][]string, opts EnumerateOptions) []*CandidateNetwork {
	keywords := make([]string, 0, len(matches))
	for k := range matches {
		keywords = append(keywords, k)
	}
	sort.Strings(keywords)

	trees := g.EnumerateJoinTrees(opts)
	var out []*CandidateNetwork
	seen := make(map[string]bool)
	for _, t := range trees {
		assignments := assignKeywords(t, keywords, matches)
		for _, asg := range assignments {
			cn := &CandidateNetwork{Tree: t, KeywordsAt: asg}
			if !cn.IsMinimal() {
				continue
			}
			key := cn.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, cn)
			if opts.MaxTrees > 0 && len(out) >= opts.MaxTrees {
				return out
			}
		}
	}
	return out
}

// assignKeywords enumerates all ways to place every keyword onto exactly
// one occurrence of a table that contains it.
func assignKeywords(t *JoinTree, keywords []string, matches map[string][]string) [][][]string {
	var out [][][]string
	cur := make([]int, len(keywords)) // keyword -> occurrence index
	var rec func(k int)
	rec = func(k int) {
		if k == len(keywords) {
			asg := make([][]string, len(t.Tables))
			for i, occ := range cur {
				asg[occ] = append(asg[occ], keywords[i])
			}
			out = append(out, asg)
			return
		}
		allowed := matches[keywords[k]]
		for occ, table := range t.Tables {
			ok := false
			for _, a := range allowed {
				if a == table {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
			cur[k] = occ
			rec(k + 1)
		}
	}
	if len(keywords) > 0 {
		rec(0)
	}
	return out
}
