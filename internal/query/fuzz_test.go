package query

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalizeKeywords locks the invariants of keyword normalisation,
// the very first step of the interpretation pipeline: the output is
// positionally aligned with the input, lower-cased, whitespace-trimmed,
// and idempotent — properties the deterministic merge of the parallel
// pipeline relies on (keyword identity is positional, Definition 3.5.1).
func FuzzNormalizeKeywords(f *testing.F) {
	f.Add("Tom", "HANKS", " terminal ")
	f.Add("", "  ", "\t\n")
	f.Add("Ämile", "ÐURO", "ärzte")
	f.Add("label:Keyword", "123", "ALL-CAPS")
	f.Add("ｗｉｄｅ", "ʼn", "İstanbul")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		in := []string{a, b, c}
		out := normalizeKeywords(in)
		if len(out) != len(in) {
			t.Fatalf("length changed: %d -> %d", len(in), len(out))
		}
		for i, kw := range out {
			if want := strings.ToLower(strings.TrimSpace(in[i])); kw != want {
				t.Errorf("out[%d] = %q, want %q", i, kw, want)
			}
			for _, r := range kw {
				if unicode.IsUpper(r) && unicode.ToLower(r) != r {
					t.Errorf("out[%d] = %q contains lowerable upper-case rune %q", i, kw, r)
				}
			}
			if strings.TrimSpace(kw) != kw {
				t.Errorf("out[%d] = %q keeps leading/trailing space", i, kw)
			}
		}
		again := normalizeKeywords(out)
		for i := range out {
			if again[i] != out[i] {
				t.Errorf("not idempotent at %d: %q -> %q", i, out[i], again[i])
			}
		}
	})
}
