// Package metrics implements the evaluation measures of the thesis:
//
//   - α-nDCG-W (Section 4.5.1, Equations 4.5–4.6): the diversity-aware
//     nDCG adapted to structured results, where an information nugget is a
//     primary key in the result of a query interpretation and gains carry
//     the graded relevance of interpretations, discounted by result
//     overlap with earlier ranks;
//   - WS-recall (Section 4.5.2, Equation 4.7): weighted subtopic recall
//     over primary keys with graded relevance;
//   - plain nDCG and S-recall as the unweighted baselines they extend;
//   - descriptive statistics used by the experiment harness (quartile/
//     boxplot summaries of Figure 3.6, medians of Figure 3.7, Cohen's
//     kappa for assessor agreement of Section 4.6.2, and a paired t-test
//     used for the significance statement of Section 4.6.3).
//
// Result items are abstract: an item has a graded relevance and a set of
// nugget identifiers (primary keys rendered as strings), so the package
// has no dependency on the storage engine.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Item is one ranked result: a query interpretation with its graded
// relevance and the identities of the tuples (primary keys) it returns.
type Item struct {
	Relevance float64
	Nuggets   []string
}

// AlphaNDCGW computes α-nDCG-W@k for every k in 1..len(ranked), per
// Equations 4.5–4.6: the gain of the item at rank k is its relevance
// discounted by (1-α)^r where r aggregates, over the item's nuggets, how
// many earlier items contained each nugget. The result is normalised by
// the gain vector of the ideal ranking, which (per Section 4.6.3) orders
// items by user-assessed relevance.
func AlphaNDCGW(ranked, ideal []Item, alpha float64) []float64 {
	dcg := cumulativeDiscountedGain(ranked, alpha)
	idcg := cumulativeDiscountedGain(ideal, alpha)
	n := len(ranked)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		d := dcg[k]
		var i float64
		if k < len(idcg) {
			i = idcg[k]
		} else if len(idcg) > 0 {
			i = idcg[len(idcg)-1]
		}
		if i > 0 {
			out[k] = d / i
			if out[k] > 1 {
				out[k] = 1
			}
		}
	}
	return out
}

// gains computes the overlap-penalised gain of each rank (Equation 4.5).
func gains(ranked []Item, alpha float64) []float64 {
	seen := make(map[string]int) // nugget -> number of earlier items containing it
	out := make([]float64, len(ranked))
	for k, item := range ranked {
		r := 0
		uniq := uniqueNuggets(item.Nuggets)
		for _, n := range uniq {
			r += seen[n]
		}
		out[k] = item.Relevance * math.Pow(1-alpha, float64(r))
		for _, n := range uniq {
			seen[n]++
		}
	}
	return out
}

// cumulativeDiscountedGain accumulates the log-discounted gains.
func cumulativeDiscountedGain(ranked []Item, alpha float64) []float64 {
	g := gains(ranked, alpha)
	out := make([]float64, len(g))
	sum := 0.0
	for k := range g {
		sum += g[k] / math.Log2(float64(k)+2)
		out[k] = sum
	}
	return out
}

// IdealOrder returns the items sorted by descending relevance — the
// normalisation ranking of Section 4.6.3. Ties keep input order.
func IdealOrder(items []Item) []Item {
	out := make([]Item, len(items))
	copy(out, items)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Relevance > out[j].Relevance })
	return out
}

// NDCG is standard nDCG@k for all k (α-nDCG-W with α = 0).
func NDCG(ranked, ideal []Item) []float64 { return AlphaNDCGW(ranked, ideal, 0) }

// WSRecall computes WS-recall@k for every k per Equation 4.7: the
// aggregated relevance of the subtopics (nuggets) covered by the top-k
// items over the aggregated relevance of all relevant subtopics in the
// universe. The relevance of a nugget is the maximum relevance of any
// universe item returning it (Section 4.6.4).
func WSRecall(ranked, universe []Item) []float64 {
	nuggetRel := NuggetRelevance(universe)
	total := 0.0
	for _, r := range nuggetRel {
		total += r
	}
	out := make([]float64, len(ranked))
	covered := make(map[string]bool)
	sum := 0.0
	for k, item := range ranked {
		for _, n := range uniqueNuggets(item.Nuggets) {
			if !covered[n] {
				covered[n] = true
				sum += nuggetRel[n]
			}
		}
		if total > 0 {
			out[k] = sum / total
		}
	}
	return out
}

// SRecall is the binary instance recall at k: the fraction of distinct
// nuggets of the universe covered by the top-k items (Section 4.5.2's
// unweighted special case).
func SRecall(ranked, universe []Item) []float64 {
	all := make(map[string]bool)
	for _, item := range universe {
		for _, n := range item.Nuggets {
			all[n] = true
		}
	}
	out := make([]float64, len(ranked))
	covered := make(map[string]bool)
	for k, item := range ranked {
		for _, n := range item.Nuggets {
			if all[n] {
				covered[n] = true
			}
		}
		if len(all) > 0 {
			out[k] = float64(len(covered)) / float64(len(all))
		}
	}
	return out
}

// NuggetRelevance computes the per-nugget graded relevance: the maximum
// relevance over the universe items containing the nugget.
func NuggetRelevance(universe []Item) map[string]float64 {
	out := make(map[string]float64)
	for _, item := range universe {
		for _, n := range item.Nuggets {
			if item.Relevance > out[n] {
				out[n] = item.Relevance
			}
		}
	}
	return out
}

func uniqueNuggets(ns []string) []string {
	seen := make(map[string]bool, len(ns))
	var out []string
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// BoxStats is the five-number summary behind the boxplots of Figure 3.6.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of the sample. Quartiles use
// linear interpolation between order statistics.
func Summarize(sample []float64) BoxStats {
	n := len(sample)
	if n == 0 {
		return BoxStats{}
	}
	s := make([]float64, n)
	copy(s, sample)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return BoxStats{
		Min:    s[0],
		Q1:     Percentile(s, 25),
		Median: Percentile(s, 50),
		Q3:     Percentile(s, 75),
		Max:    s[n-1],
		Mean:   sum / float64(n),
		N:      n,
	}
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample, with linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is a convenience over Summarize for a single statistic.
func Median(sample []float64) float64 {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return Percentile(s, 50)
}

// Mean returns the arithmetic mean (0 for empty samples).
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// CohenKappa computes Cohen's kappa agreement between two assessors over
// binary judgements (Section 4.6.2 reports pairwise kappa between study
// participants). Inputs are parallel slices of 0/1 judgements.
func CohenKappa(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: judgement vectors differ in length: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("metrics: empty judgement vectors")
	}
	var n11, n00, n10, n01 float64
	for i := range a {
		switch {
		case a[i] != 0 && b[i] != 0:
			n11++
		case a[i] == 0 && b[i] == 0:
			n00++
		case a[i] != 0:
			n10++
		default:
			n01++
		}
	}
	fn := float64(n)
	po := (n11 + n00) / fn
	pa1 := (n11 + n10) / fn
	pb1 := (n11 + n01) / fn
	pe := pa1*pb1 + (1-pa1)*(1-pb1)
	if pe == 1 {
		return 1, nil
	}
	return (po - pe) / (1 - pe), nil
}

// PairedTTest returns the t statistic of the paired two-sample t-test and
// whether the difference is significant at the 95% confidence level
// (two-sided), using the critical-value table for the t distribution.
// Section 4.6.3 uses this test for the diversification-vs-ranking gain.
func PairedTTest(x, y []float64) (t float64, significant bool, err error) {
	if len(x) != len(y) {
		return 0, false, fmt.Errorf("metrics: paired samples differ in length")
	}
	n := len(x)
	if n < 2 {
		return 0, false, fmt.Errorf("metrics: need at least 2 pairs")
	}
	diffs := make([]float64, n)
	mean := 0.0
	for i := range x {
		diffs[i] = x[i] - y[i]
		mean += diffs[i]
	}
	mean /= float64(n)
	varSum := 0.0
	for _, d := range diffs {
		varSum += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(varSum / float64(n-1))
	if sd == 0 {
		if mean == 0 {
			return 0, false, nil
		}
		return math.Inf(sign(mean)), true, nil
	}
	t = mean / (sd / math.Sqrt(float64(n)))
	return t, math.Abs(t) >= tCritical95(n-1), nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// tCritical95 returns the two-sided 95% critical value of Student's t for
// the given degrees of freedom.
func tCritical95(df int) float64 {
	table := map[int]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
		25: 2.060, 30: 2.042, 40: 2.021, 50: 2.009, 60: 2.000,
		80: 1.990, 100: 1.984, 120: 1.980,
	}
	if v, ok := table[df]; ok {
		return v
	}
	// Walk down to the nearest smaller tabulated df (conservative).
	best := 1.960 // normal approximation for df → ∞
	bestDF := 1 << 30
	for k, v := range table {
		if k >= df && k < bestDF {
			bestDF = k
			best = v
		}
	}
	if bestDF == 1<<30 {
		return 1.960
	}
	return best
}
