package qcache

import (
	"fmt"
	"testing"

	"repro/internal/relstore"
)

func attr(table string, col int) relstore.Attr { return relstore.Attr{Table: table, Col: col} }

// admitSelection drives a selection through the 2Q gate: the first Put
// only records the ghost entry, the second admits.
func admitSelection(v *View, table string, col int, bag string, rows []int) {
	v.PutSelection(table, col, bag, rows)
	v.PutSelection(table, col, bag, rows)
}

func TestAdmissionNeedsSecondObservation(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(10)
	v.PutSelection("actor", 1, "hanks", []int{1, 2, 3})
	if st := s.Stats(); st.Entries != 0 || st.AdmissionRejects != 1 {
		t.Fatalf("first Put should only leave a ghost: %+v", st)
	}
	if _, ok := v.GetSelection("actor", 1, "hanks"); ok {
		t.Fatal("unadmitted entry served")
	}
	v.PutSelection("actor", 1, "hanks", []int{1, 2, 3})
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("second Put should admit: %+v", st)
	}
	rows, ok := v.GetSelection("actor", 1, "hanks")
	if !ok || len(rows) != 3 || rows[0] != 1 {
		t.Fatalf("GetSelection = %v, %v", rows, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.ResidentBytes <= 0 || st.HighWaterBytes != st.ResidentBytes {
		t.Fatalf("byte accounting: %+v", st)
	}
}

func TestPlanAndCountNamespaces(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(10)
	fp := []relstore.Attr{attr("actor", 1), attr("movie", relstore.MembershipCol)}
	plan := [][]int{{1, 2}, {3, 4}}
	v.PutPlan("k", fp, plan)
	v.PutPlan("k", fp, plan)
	v.PutCount("k", fp, 7)
	v.PutCount("k", fp, 7)
	got, ok := v.GetPlan("k")
	if !ok || len(got) != 2 || got[1][0] != 3 {
		t.Fatalf("GetPlan = %v, %v", got, ok)
	}
	n, ok := v.GetCount("k")
	if !ok || n != 7 {
		t.Fatalf("GetCount = %d, %v", n, ok)
	}
	// Same key string, different namespaces: both resident.
	if st := s.Stats(); st.Entries != 2 {
		t.Fatalf("expected 2 entries, got %+v", st)
	}
}

func TestExistingEntryWinsRacingPut(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(10)
	admitSelection(v, "actor", 1, "hanks", []int{1})
	// A racing publisher of the same (deterministic) value must not
	// disturb the resident entry.
	v.PutSelection("actor", 1, "hanks", []int{1})
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate Put changed the store: %+v", st)
	}
}

func TestInvalidateDropsOnlyIntersecting(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(10)
	admitSelection(v, "actor", 1, "hanks", []int{1})
	admitSelection(v, "actor", 2, "drama", []int{2})
	admitSelection(v, "movie", 1, "terminal", []int{3})
	published := false
	s.Invalidate([]relstore.Attr{attr("actor", 1)}, func() { published = true })
	if !published {
		t.Fatal("publish callback not invoked")
	}
	st := s.Stats()
	if st.Entries != 2 || st.Invalidations != 1 {
		t.Fatalf("expected only actor.1 dropped: %+v", st)
	}
	v2 := s.NewView(10)
	if _, ok := v2.GetSelection("actor", 1, "hanks"); ok {
		t.Fatal("invalidated entry served")
	}
	if _, ok := v2.GetSelection("actor", 2, "drama"); !ok {
		t.Fatal("surviving entry not served")
	}
	if _, ok := v2.GetSelection("movie", 1, "terminal"); !ok {
		t.Fatal("surviving entry not served")
	}
}

func TestOldViewRejectedAfterInvalidation(t *testing.T) {
	s := New(1 << 20)
	old := s.NewView(10)
	s.Invalidate([]relstore.Attr{attr("actor", 1)}, nil)
	fresh := s.NewView(10)
	admitSelection(fresh, "actor", 1, "hanks", []int{1})
	// The old view predates the bump: it may still be reading the
	// pre-batch snapshot, so the post-batch entry must not be served...
	if _, ok := old.GetSelection("actor", 1, "hanks"); ok {
		t.Fatal("entry published after the old view's clock was served to it")
	}
	// ...and its own computation must not be published.
	old.PutSelection("actor", 1, "stale", []int{9})
	old.PutSelection("actor", 1, "stale", []int{9})
	if st := s.Stats(); st.StalePutRejects != 2 {
		t.Fatalf("stale puts accepted: %+v", st)
	}
	if _, ok := fresh.GetSelection("actor", 1, "stale"); ok {
		t.Fatal("stale entry resident")
	}
	// Attributes untouched by the batch stay usable from the old view.
	admitSelection(fresh, "movie", 1, "terminal", []int{3})
	if _, ok := old.GetSelection("movie", 1, "terminal"); !ok {
		t.Fatal("old view rejected an untouched attribute")
	}
}

func TestSegmentedLRUPromotionAndDemotion(t *testing.T) {
	s := New(4096)
	v := s.NewView(10)
	// Admit several entries sized so a few promotions overflow the
	// protected segment's 80% share.
	rows := make([]int, 100) // 128 overhead + ~5 key + 800 payload ≈ 935B
	for i := 0; i < 4; i++ {
		admitSelection(v, "t", i, "bag", rows)
	}
	st := s.Stats()
	if st.Entries < 3 {
		t.Fatalf("setup: %+v", st)
	}
	// Hit every entry: each promotes to protected; the cap (3276B)
	// forces demotions back to probation rather than unbounded growth.
	for i := 0; i < 4; i++ {
		v.GetSelection("t", i, "bag")
	}
	s.mu.Lock()
	if s.protectedBytes > s.budget*protectedShare/100 {
		s.mu.Unlock()
		t.Fatalf("protected segment over its share: %d", s.protectedBytes)
	}
	demoted := s.probation.head != nil
	s.mu.Unlock()
	if !demoted {
		t.Fatal("expected demotions into probation")
	}
}

func TestEvictionPrefersLowScore(t *testing.T) {
	s := New(3000)
	cheap := s.NewView(1)
	rows := make([]int, 128) // ~1160B per entry: two fit, three don't
	admitSelection(cheap, "t", 1, "a", rows)
	admitSelection(cheap, "t", 2, "b", rows)
	if st := s.Stats(); st.Entries != 2 {
		t.Fatalf("setup: %+v", st)
	}
	// A denser (pricier) newcomer evicts the cold cheap entries.
	rich := s.NewView(1000)
	admitSelection(rich, "t", 3, "c", rows)
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions: %+v", st)
	}
	if _, ok := rich.GetSelection("t", 3, "c"); !ok {
		t.Fatal("dense newcomer not admitted")
	}
	// Now the reverse: a cheap newcomer must NOT displace denser
	// residents — rejected with zero evictions. Hit the surviving cheap
	// entry once so its use count makes it denser than a fresh twin.
	cheap.GetSelection("t", 2, "b")
	pre := s.Stats()
	admitSelection(cheap, "t", 4, "d", rows)
	st = s.Stats()
	if st.Evictions != pre.Evictions {
		t.Fatalf("cheap newcomer evicted a denser resident: %+v", st)
	}
	if _, ok := cheap.GetSelection("t", 4, "d"); ok {
		t.Fatal("cheap newcomer admitted over denser residents")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	s := New(256)
	v := s.NewView(10)
	admitSelection(v, "t", 1, "big", make([]int, 1000))
	st := s.Stats()
	if st.Entries != 0 || st.ResidentBytes != 0 {
		t.Fatalf("oversized entry admitted: %+v", st)
	}
}

func TestBudgetIsAHardCeiling(t *testing.T) {
	const budget = 8192
	s := New(budget)
	v := s.NewView(10)
	for i := 0; i < 200; i++ {
		rows := make([]int, 10+i%50)
		admitSelection(v, "t", i, "bag", rows)
		st := s.Stats()
		if st.ResidentBytes > budget || st.HighWaterBytes > budget {
			t.Fatalf("budget exceeded at %d: %+v", i, st)
		}
	}
	if st := s.Stats(); st.Entries == 0 || st.Evictions == 0 {
		t.Fatalf("expected churn under pressure: %+v", st)
	}
}

func TestGhostRotationForgetsAncientKeys(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(10)
	v.PutSelection("t", 0, "target", []int{1}) // ghost in generation 0
	// Flood two full generations of distinct keys: the target's ghost
	// rotates out entirely.
	for i := 0; i < 2*ghostGenCap+1; i++ {
		v.PutSelection("t", 1, fmt.Sprintf("junk%d", i), []int{1})
	}
	v.PutSelection("t", 0, "target", []int{1})
	if _, ok := v.GetSelection("t", 0, "target"); ok {
		t.Fatal("forgotten ghost still counted toward admission")
	}
	// But a ghost only one rotation old still admits.
	v.PutSelection("t", 0, "recent", []int{1})
	for i := 0; i < ghostGenCap; i++ {
		v.PutSelection("t", 1, fmt.Sprintf("junk2-%d", i), []int{1})
	}
	v.PutSelection("t", 0, "recent", []int{1})
	if _, ok := v.GetSelection("t", 0, "recent"); !ok {
		t.Fatal("previous-generation ghost not counted toward admission")
	}
}

func TestPersistRoundtrip(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(42)
	admitSelection(v, "actor", 1, "hanks", []int{1, 2, 3})
	fp := []relstore.Attr{attr("actor", 1), attr("movie", relstore.MembershipCol)}
	v.PutPlan("pk", fp, [][]int{{1, 2}, {3}})
	v.PutPlan("pk", fp, [][]int{{1, 2}, {3}})
	v.PutCount("ck", fp, 9)
	v.PutCount("ck", fp, 9)
	v.GetSelection("actor", 1, "hanks") // promote to protected

	payload := s.EncodeSnapshot()
	if string(payload) != string(s.EncodeSnapshot()) {
		t.Fatal("encoding is not deterministic")
	}
	before := s.Stats()

	r := New(1 << 20)
	if err := r.DecodeSnapshot(payload); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.Entries != before.Entries || after.ResidentBytes != before.ResidentBytes {
		t.Fatalf("restore drifted: %+v vs %+v", after, before)
	}
	rv := r.NewView(1)
	if rows, ok := rv.GetSelection("actor", 1, "hanks"); !ok || len(rows) != 3 {
		t.Fatalf("restored selection: %v, %v", rows, ok)
	}
	if plan, ok := rv.GetPlan("pk"); !ok || len(plan) != 2 || plan[0][1] != 2 {
		t.Fatalf("restored plan: %v, %v", plan, ok)
	}
	if n, ok := rv.GetCount("ck"); !ok || n != 9 {
		t.Fatalf("restored count: %d, %v", n, ok)
	}
	// Restored entries still carry their footprints: invalidation works.
	r.Invalidate([]relstore.Attr{attr("movie", relstore.MembershipCol)}, nil)
	rv2 := r.NewView(1)
	if _, ok := rv2.GetPlan("pk"); ok {
		t.Fatal("restored plan survived invalidation of its footprint")
	}
	if _, ok := rv2.GetCount("ck"); ok {
		t.Fatal("restored count survived invalidation of its footprint")
	}
	if _, ok := rv2.GetSelection("actor", 1, "hanks"); !ok {
		t.Fatal("unrelated restored entry dropped")
	}
}

func TestDecodeClampsToSmallerBudget(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(10)
	for i := 0; i < 8; i++ {
		admitSelection(v, "t", i, "bag", make([]int, 64))
	}
	payload := s.EncodeSnapshot()
	small := New(s.Stats().ResidentBytes / 2)
	if err := small.DecodeSnapshot(payload); err != nil {
		t.Fatal(err)
	}
	st := small.Stats()
	if st.ResidentBytes > small.Budget() {
		t.Fatalf("restore exceeded budget: %+v", st)
	}
	if st.Entries == 0 || st.Entries == 8 {
		t.Fatalf("expected a partial restore: %+v", st)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	r := New(1024)
	if err := r.DecodeSnapshot([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("garbage decoded")
	}
	if err := r.DecodeSnapshot(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
}

func TestViewPriceFloor(t *testing.T) {
	s := New(1 << 20)
	v := s.NewView(-5) // degenerate estimate must not zero the score
	if v.price < 1 {
		t.Fatalf("price = %v", v.price)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{relstore.MembershipCol: "*", 0: "0", 7: "7", 12: "12", 123: "123"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}
