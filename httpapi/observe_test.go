package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	keysearch "repro"
	"repro/internal/metrics"
	"repro/internal/qlog"
)

// obsServer builds an observed server over a fresh demo engine: tracing,
// a query log in a temp dir, and a slow-query threshold low enough that
// every request dumps. Returns the server (for Close), the test server,
// the log dir, and the captured slow-query lines.
func obsServer(t *testing.T, shards int, extra ...Option) (*Server, *httptest.Server, string, *[]string) {
	t.Helper()
	eng, err := keysearch.DemoMovies(7)
	if err != nil {
		t.Fatal(err)
	}
	var searcher keysearch.Searcher = eng
	if shards > 1 {
		se, err := keysearch.NewShardedEngine(shards, eng)
		if err != nil {
			t.Fatal(err)
		}
		searcher = se
	}
	dir := t.TempDir()
	logger, err := qlog.Open(dir, qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var slow []string
	opts := append([]Option{
		WithTracing(),
		WithQueryLog(logger),
		WithSlowQueryLog(time.Nanosecond),
		WithSlowQueryOutput(func(format string, v ...any) {
			mu.Lock()
			slow = append(slow, fmt.Sprintf(format, v...))
			mu.Unlock()
		}),
	}, extra...)
	srv := New(searcher, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, dir, &slow
}

// fetchRaw posts (or gets when body is empty) and returns status, body,
// and the X-Trace-Id response header.
func fetchRaw(t *testing.T, base, path, body string, header http.Header) (int, string, string) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(http.MethodGet, base+path, nil)
	} else {
		req, err = http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw), resp.Header.Get("X-Trace-Id")
}

// TestHTTPTracingDifferential is the wire-level differential of the
// observability stack: a fully observed server (tracing + query log +
// slow-query dump) must produce byte-identical response bodies to a
// plain server, on every ranked endpoint, at shard counts 1 and 3.
func TestHTTPTracingDifferential(t *testing.T) {
	for _, shards := range []int{1, 3} {
		plainEng, err := keysearch.DemoMovies(7)
		if err != nil {
			t.Fatal(err)
		}
		var plainSearcher keysearch.Searcher = plainEng
		if shards > 1 {
			se, err := keysearch.NewShardedEngine(shards, plainEng)
			if err != nil {
				t.Fatal(err)
			}
			plainSearcher = se
		}
		tsPlain := httptest.NewServer(New(plainSearcher))
		_, tsObs, _, _ := obsServer(t, shards)

		queries := plainEng.SampleQueries(3)
		for _, q := range queries {
			for _, req := range []struct{ path, body string }{
				{"/v1/search", `{"query":"` + q + `","k":4,"row_limit":2}`},
				{"/v1/diversify", `{"query":"` + q + `","k":3,"lambda":0.5}`},
				{"/v1/rows", `{"query":"` + q + `","k":5}`},
			} {
				// Two passes so cached paths are compared too.
				for pass := 0; pass < 2; pass++ {
					wc, want, plainTID := fetchRaw(t, tsPlain.URL, req.path, req.body, nil)
					gc, got, obsTID := fetchRaw(t, tsObs.URL, req.path, req.body, nil)
					if wc != gc || want != got {
						t.Fatalf("shards=%d %s(%q) pass %d: observed response diverges\n  plain    (%d): %.300s\n  observed (%d): %.300s",
							shards, req.path, q, pass, wc, want, gc, got)
					}
					if plainTID != "" {
						t.Fatalf("untraced server set X-Trace-Id %q", plainTID)
					}
					if obsTID == "" {
						t.Fatalf("traced server did not set X-Trace-Id")
					}
				}
			}
		}

		// A client-supplied trace ID is adopted, so load-generator and
		// server views of one request correlate.
		_, _, tid := fetchRaw(t, tsObs.URL, "/v1/search",
			`{"query":"`+queries[0]+`","k":2}`, http.Header{"X-Trace-Id": []string{"client-supplied-id"}})
		if tid != "client-supplied-id" {
			t.Fatalf("client trace ID not adopted: got %q", tid)
		}
		tsPlain.Close()
	}
}

// TestMetricsEndpoint drives traffic through an observed sharded server
// and asserts GET /metrics passes the strict Prometheus text checker and
// carries the expected families with live values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, _ := obsServer(t, 3)
	eng, err := keysearch.DemoMovies(7)
	if err != nil {
		t.Fatal(err)
	}
	q := eng.SampleQueries(1)[0]
	for i := 0; i < 3; i++ {
		if code, _, _ := fetchRaw(t, ts.URL, "/v1/search", `{"query":"`+q+`","k":3}`, nil); code != http.StatusOK {
			t.Fatalf("search status = %d", code)
		}
	}
	if code, _, _ := fetchRaw(t, ts.URL, "/v1/rows", `{"query":"`+q+`","k":3}`, nil); code != http.StatusOK {
		t.Fatalf("rows status = %d", code)
	}
	// One client error so a non-2xx code shows up labelled.
	if code, _, _ := fetchRaw(t, ts.URL, "/v1/search", `{"unknown_field":1}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad request status = %d", code)
	}

	code, body, _ := fetchRaw(t, ts.URL, "/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := metrics.CheckPromText([]byte(body)); err != nil {
		t.Fatalf("/metrics fails strict exposition check: %v\n%s", err, body)
	}
	for _, want := range []string{
		`keysearch_requests_total{endpoint="search",code="200"}`,
		`keysearch_requests_total{endpoint="search",code="400"}`,
		`keysearch_requests_total{endpoint="rows",code="200"}`,
		`keysearch_request_duration_seconds_bucket{endpoint="search",le="+Inf"}`,
		`keysearch_request_duration_seconds_count{endpoint="search"}`,
		"keysearch_served_total",
		"keysearch_in_flight_requests",
		"keysearch_snapshot_epoch",
		`keysearch_shard_execs_total{shard="0"}`,
		`keysearch_shard_rows{shard="2"}`,
		"keysearch_shard_scatters_total",
		"keysearch_querylog_written_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}
	// The search counter must reflect the three successes.
	if !strings.Contains(body, `keysearch_requests_total{endpoint="search",code="200"} 3`) {
		t.Fatalf("search request counter wrong:\n%s", body)
	}
}

// TestMetricsAdaptiveGovernor asserts the governor families appear when
// adaptive admission is enabled.
func TestMetricsAdaptiveGovernor(t *testing.T) {
	_, ts, _, _ := obsServer(t, 1, WithAdaptiveAdmission(AdaptiveConfig{MaxConcurrent: 4, MaxQueue: 8}))
	eng, err := keysearch.DemoMovies(7)
	if err != nil {
		t.Fatal(err)
	}
	q := eng.SampleQueries(1)[0]
	if code, _, _ := fetchRaw(t, ts.URL, "/v1/search", `{"query":"`+q+`","k":2}`, nil); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	code, body, _ := fetchRaw(t, ts.URL, "/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := metrics.CheckPromText([]byte(body)); err != nil {
		t.Fatalf("/metrics fails strict exposition check: %v\n%s", err, body)
	}
	if !strings.Contains(body, "keysearch_adaptive_limit") {
		t.Fatalf("/metrics lacks governor families:\n%s", body)
	}
}

// TestQueryLogOverHTTP round-trips the query log through real serving:
// ranked requests and a full construct dialogue, then decodes the JSONL
// files and checks the entries record what was asked and what was
// served — including the served interpretation choice of a converged
// construct session.
func TestQueryLogOverHTTP(t *testing.T) {
	srv, ts, dir, slow := obsServer(t, 1)
	eng, err := keysearch.DemoMovies(7)
	if err != nil {
		t.Fatal(err)
	}
	q := eng.SampleQueries(1)[0]

	code, _, searchTID := fetchRaw(t, ts.URL, "/v1/search", `{"query":"`+q+`","k":3}`, nil)
	if code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}

	// Drive a construct dialogue to convergence: start, accept once,
	// then reject until done (mirrors the session test).
	qs := eng.SampleQueries(2)
	wide := qs[0] + " " + qs[1]
	var step ConstructStepResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "start",
		Start:  &keysearch.ConstructRequest{Query: wide, StopAtRemaining: 1},
	}, &step); code != http.StatusOK {
		t.Fatalf("construct start status = %d", code)
	}
	id := step.SessionID
	action := "accept"
	for guard := 0; !step.Done && step.Question != nil && guard < 100; guard++ {
		step = ConstructStepResponse{}
		if code := post(t, ts.Client(), ts.URL+"/v1/construct",
			ConstructStepRequest{Action: action, SessionID: id}, &step); code != http.StatusOK {
			t.Fatalf("construct %s status = %d", action, code)
		}
		action = "reject"
	}

	// Close flushes the async log; entries become readable.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := qlog.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}

	var searchEntry, servedEntry *qlog.Entry
	starts := 0
	for i := range entries {
		e := &entries[i]
		switch {
		case e.Op == "search":
			searchEntry = e
		case e.Op == "construct" && e.Action == "start":
			starts++
		}
		if e.Op == "construct" && e.ServedChoice != "" {
			servedEntry = e
		}
	}
	if searchEntry == nil {
		t.Fatalf("no search entry in query log: %+v", entries)
	}
	if searchEntry.TraceID != searchTID {
		t.Fatalf("search entry trace ID %q != response header %q", searchEntry.TraceID, searchTID)
	}
	if searchEntry.Query != q || searchEntry.Status != http.StatusOK || searchEntry.Outcome != "ok" {
		t.Fatalf("search entry misrecorded: %+v", searchEntry)
	}
	if searchEntry.Interpretation == "" || searchEntry.InterpretationProb <= 0 {
		t.Fatalf("search entry lacks the served interpretation: %+v", searchEntry)
	}
	if searchEntry.Results == 0 || searchEntry.DurationUS <= 0 {
		t.Fatalf("search entry lacks result count or duration: %+v", searchEntry)
	}
	for _, stage := range []string{"parse", "interpret", "rank"} {
		if _, ok := searchEntry.StagesUS[stage]; !ok {
			t.Fatalf("search entry lacks stage %q: %+v", stage, searchEntry.StagesUS)
		}
	}
	if starts != 1 {
		t.Fatalf("want 1 construct-start entry, got %d", starts)
	}
	if servedEntry == nil {
		t.Fatalf("no construct entry with a served choice in query log: %+v", entries)
	}
	if servedEntry.SessionID != id {
		t.Fatalf("served-choice entry session %q != %q", servedEntry.SessionID, id)
	}

	// The nanosecond slow-query threshold dumped every request's trace.
	if len(*slow) == 0 {
		t.Fatal("no slow-query dumps at a 1ns threshold")
	}
	if !strings.Contains((*slow)[0], "op=") || !strings.Contains((*slow)[0], `"spans"`) {
		t.Fatalf("slow-query dump lacks the trace tree: %q", (*slow)[0])
	}
}

// TestHealthzBuildInfo asserts /healthz carries the build block.
func TestHealthzBuildInfo(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()
	h := getHealth(t, ts.Client(), ts.URL)
	if h.Build == nil || h.Build.GoVersion == "" {
		t.Fatalf("/healthz build block missing or empty: %+v", h.Build)
	}
}
