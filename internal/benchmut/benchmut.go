// Package benchmut is the mutation benchmark harness: it measures what
// keeping the index fresh under a changing database costs, comparing the
// incremental path (Engine.Apply with copy-on-write snapshots) against
// the only alternative a frozen engine has — reloading the rows and
// rebuilding every index and statistic from scratch.
//
// The workload is a steady-state mutation batch against the demo movie
// dataset: one batch inserts a block of new actors, deletes them again
// within the same batch (exercising intra-batch visibility), and toggles
// the titles of a block of movies, so repeated batches keep the database
// size bounded while continuously churning posting lists, the inverted
// index, and the ranking statistics. Legs:
//
//   - full-rebuild:  reload the serialised rows and Build a fresh engine
//     (gob decode + posting lists + inverted index + catalogue + model) —
//     the per-batch cost of serving fresh data without Apply,
//   - apply-batch:   one Engine.Apply of the batch,
//   - apply+search:  Apply followed by one Search, the read-after-write
//     freshness path a live ingest pipeline exercises.
//
// Two front-ends consume the harness: the BenchmarkMutations* functions
// (go test -bench=Mutations) for interactive runs and CI smoke, and
// cmd/bench, which writes BENCH_mutations.json so the mutation path's
// perf trajectory is tracked from PR to PR.
package benchmut

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	keysearch "repro"
	"repro/internal/datagen"
)

// Seed pins the dataset; Scale 1.0 keeps the rebuild leg affordable in
// CI while staying large enough that rebuild-vs-apply is meaningful.
const (
	Seed  = 21
	Scale = 1.0
)

// MutatedMovies and ChurnActors size one batch: 2*ChurnActors inserts+
// deletes and MutatedMovies updates per Apply.
const (
	MutatedMovies = 10
	ChurnActors   = 10
)

// BatchSize is the number of mutations per measured batch.
const BatchSize = 2*ChurnActors + MutatedMovies

// Mode selects one benchmark leg.
type Mode string

const (
	// ModeRebuild reloads the dump and rebuilds the engine from scratch.
	ModeRebuild Mode = "full-rebuild"
	// ModeApply applies one incremental mutation batch.
	ModeApply Mode = "apply-batch"
	// ModeApplySearch applies one batch and immediately searches.
	ModeApplySearch Mode = "apply+search"
)

// Modes lists every leg in report order.
func Modes() []Mode { return []Mode{ModeRebuild, ModeApply, ModeApplySearch} }

// Env is the lazily built benchmark environment.
type Env struct {
	once sync.Once
	err  error

	eng        *keysearch.Engine
	dump       []byte   // serialised pristine database for the rebuild leg
	movieKeys  []string // movies whose titles the batch toggles
	origTitles []string
	origYears  []string
	query      string
	parity     int
}

// NewEnv creates an environment; the dataset is built on first use.
func NewEnv() *Env { return &Env{} }

func (e *Env) init() {
	e.once.Do(func() {
		// Generate the dataset directly so the batch builder knows real
		// movie keys and their current values, then feed the engine
		// through the dump — the same bytes the rebuild leg reloads.
		db, err := datagen.IMDB(datagen.IMDBConfig{
			Movies:    int(400 * Scale),
			Actors:    int(300 * Scale),
			Directors: int(80 * Scale),
			Companies: int(40 * Scale),
			Seed:      Seed,
		})
		if err != nil {
			e.err = err
			return
		}
		movies := db.Table("movie")
		for _, row := range movies.Rows()[:MutatedMovies] {
			e.movieKeys = append(e.movieKeys, row.Values[0])
			e.origTitles = append(e.origTitles, row.Values[1])
			e.origYears = append(e.origYears, row.Values[2])
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			e.err = err
			return
		}
		e.dump = buf.Bytes()
		eng, err := keysearch.Load(bytes.NewReader(e.dump),
			keysearch.WithCoOccurrence(), keysearch.WithMutations())
		if err != nil {
			e.err = err
			return
		}
		e.eng = eng
		qs := eng.SampleQueries(1)
		if len(qs) == 0 {
			e.err = fmt.Errorf("benchmut: no sample queries")
			return
		}
		e.query = qs[0]
	})
}

// batch builds one steady-state mutation batch. Odd parities append a
// churn token to each sampled movie title, even parities restore the
// original, so the database alternates between exactly two states.
func (e *Env) batch(parity int) []keysearch.Mutation {
	muts := make([]keysearch.Mutation, 0, BatchSize)
	for i := 0; i < ChurnActors; i++ {
		key := fmt.Sprintf("bench-a%d", i)
		muts = append(muts, keysearch.Mutation{
			Op: keysearch.OpInsert, Table: "actor",
			Values: []string{key, fmt.Sprintf("Transient Benchling %d", i)},
		})
	}
	for i, key := range e.movieKeys {
		title := e.origTitles[i]
		if parity%2 == 1 {
			title += " churned"
		}
		muts = append(muts, keysearch.Mutation{
			Op: keysearch.OpUpdate, Table: "movie", Key: key,
			Values: []string{key, title, e.origYears[i]},
		})
	}
	for i := 0; i < ChurnActors; i++ {
		muts = append(muts, keysearch.Mutation{
			Op: keysearch.OpDelete, Table: "actor", Key: fmt.Sprintf("bench-a%d", i),
		})
	}
	return muts
}

// RunRequest executes one benchmark operation under the given mode.
func (e *Env) RunRequest(mode Mode) error {
	e.init()
	if e.err != nil {
		return e.err
	}
	switch mode {
	case ModeRebuild:
		eng, err := keysearch.Load(bytes.NewReader(e.dump),
			keysearch.WithCoOccurrence(), keysearch.WithMutations())
		if err != nil {
			return err
		}
		if eng.NumRows() == 0 {
			return fmt.Errorf("benchmut: rebuilt engine is empty")
		}
		return nil
	case ModeApply:
		e.parity++
		_, err := e.eng.Apply(context.Background(), e.batch(e.parity))
		return err
	case ModeApplySearch:
		e.parity++
		if _, err := e.eng.Apply(context.Background(), e.batch(e.parity)); err != nil {
			return err
		}
		_, err := e.eng.Search(context.Background(), keysearch.SearchRequest{Query: e.query, K: 3})
		return err
	default:
		return fmt.Errorf("benchmut: unknown mode %q", mode)
	}
}

// Verify cross-checks the harness: after an even number of batches the
// engine must answer byte-identically to the pristine reloaded engine.
func (e *Env) Verify() error {
	e.init()
	if e.err != nil {
		return e.err
	}
	for i := 0; i < 2; i++ {
		if err := e.RunRequest(ModeApply); err != nil {
			return err
		}
	}
	if e.parity%2 == 1 {
		if err := e.RunRequest(ModeApply); err != nil {
			return err
		}
	}
	pristine, err := keysearch.Load(bytes.NewReader(e.dump),
		keysearch.WithCoOccurrence(), keysearch.WithMutations())
	if err != nil {
		return err
	}
	got, gotErr := e.eng.Search(context.Background(), keysearch.SearchRequest{Query: e.query, K: 5, RowLimit: 2})
	want, wantErr := pristine.Search(context.Background(), keysearch.SearchRequest{Query: e.query, K: 5, RowLimit: 2})
	if gotErr != nil || wantErr != nil {
		return fmt.Errorf("benchmut: verify searches failed: %v / %v", gotErr, wantErr)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		return fmt.Errorf("benchmut: mutated engine diverged from pristine rebuild:\n got %.200s\nwant %.200s", gj, wj)
	}
	return nil
}

// Run executes one mode inside a testing benchmark body.
func (e *Env) Run(b *testing.B, mode Mode) {
	if err := e.RunRequest(mode); err != nil { // warm build outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunRequest(mode); err != nil {
			b.Fatal(err)
		}
	}
}

// Row is one measured leg as persisted to BENCH_mutations.json.
type Row struct {
	Name        string `json:"name"`
	Ops         int    `json:"ops"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// SpeedupVsRebuild is the full-rebuild leg's ns/op divided by this
	// row's ns/op — how much cheaper staying fresh is than rebuilding.
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild,omitempty"`
}

// Report is the top-level measurement set.
type Report struct {
	Dataset   string `json:"dataset"`
	BatchSize int    `json:"batch_size"`
	Rows      []Row  `json:"rows"`
}

// Measure runs every leg through testing.Benchmark and derives speedups
// against the full-rebuild baseline.
func Measure() (*Report, error) {
	env := NewEnv()
	if err := env.Verify(); err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:   fmt.Sprintf("demo-movies scaled %.1fx", Scale),
		BatchSize: BatchSize,
	}
	var firstErr error
	for _, mode := range Modes() {
		mode := mode
		r := testing.Benchmark(func(b *testing.B) {
			if firstErr != nil {
				b.Skip("earlier leg failed")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := env.RunRequest(mode); err != nil {
					firstErr = err
					b.Skip(err)
				}
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		rep.Rows = append(rep.Rows, Row{
			Name:        string(mode),
			Ops:         r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	var rebuildNs int64
	for _, r := range rep.Rows {
		if r.Name == string(ModeRebuild) {
			rebuildNs = r.NsPerOp
		}
	}
	for i := range rep.Rows {
		if rebuildNs > 0 && rep.Rows[i].NsPerOp > 0 {
			rep.Rows[i].SpeedupVsRebuild = float64(rebuildNs) / float64(rep.Rows[i].NsPerOp)
		}
	}
	return rep, nil
}
