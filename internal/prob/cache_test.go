package prob

import (
	"testing"

	"repro/internal/invindex"
	"repro/internal/query"
)

// TestInheritCacheInvalidation: entries of stale attributes are dropped,
// everything else survives the transplant.
func TestInheritCacheInvalidation(t *testing.T) {
	oldM := &Model{cache: newScoreCache()}
	newM := &Model{cache: newScoreCache()}

	clean := invindex.AttrRef{Table: "movie", Column: "title"}
	dirty := invindex.AttrRef{Table: "actor", Column: "name"}

	kiClean := query.KeywordInterpretation{Kind: query.KindValue, Keyword: "terminal", Attr: clean}
	kiDirty := query.KeywordInterpretation{Kind: query.KindValue, Keyword: "hanks", Attr: dirty}
	kiSchema := query.KeywordInterpretation{Kind: query.KindTable, Keyword: "actor", Table: "actor"}
	kiColDirty := query.KeywordInterpretation{Kind: query.KindColumn, Keyword: "name", Attr: dirty}

	oldM.cache.prior.Store(7, 0.25)
	oldM.cache.kw.Store(kwKey(kiClean), 0.5)
	oldM.cache.kw.Store(kwKey(kiDirty), 0.5)
	oldM.cache.kw.Store(kwKey(kiSchema), 0.5)
	oldM.cache.kw.Store(kwKey(kiColDirty), 0.5)
	oldM.cache.joint.Store(jointKey([]string{"tom", "hanks"}, dirty), 0.5)
	oldM.cache.joint.Store(jointKey([]string{"the", "terminal"}, clean), 0.5)

	newM.InheritCache(oldM, map[string]bool{dirty.String(): true})

	mustHave := func(m *Model, store string, key any, want bool) {
		t.Helper()
		var ok bool
		switch store {
		case "prior":
			_, ok = m.cache.prior.Load(key)
		case "kw":
			_, ok = m.cache.kw.Load(key)
		case "joint":
			_, ok = m.cache.joint.Load(key)
		}
		if ok != want {
			t.Errorf("%s[%v]: present=%v, want %v", store, key, ok, want)
		}
	}
	mustHave(newM, "prior", 7, true)
	mustHave(newM, "kw", kwKey(kiClean), true)
	mustHave(newM, "kw", kwKey(kiDirty), false)
	// Schema-term probabilities are configuration constants: they survive
	// even when their attribute's data statistics changed.
	mustHave(newM, "kw", kwKey(kiSchema), true)
	mustHave(newM, "kw", kwKey(kiColDirty), true)
	mustHave(newM, "joint", jointKey([]string{"tom", "hanks"}, dirty), false)
	mustHave(newM, "joint", jointKey([]string{"the", "terminal"}, clean), true)
}

// TestInheritCacheSizeCap: an oversized cache only transplants the
// template priors — the kw/joint walk is skipped so Apply latency stays
// bounded regardless of accumulated query diversity.
func TestInheritCacheSizeCap(t *testing.T) {
	oldM := &Model{cache: newScoreCache()}
	newM := &Model{cache: newScoreCache()}
	ki := query.KeywordInterpretation{Kind: query.KindValue, Keyword: "x",
		Attr: invindex.AttrRef{Table: "t", Column: "c"}}
	oldM.cache.prior.Store(1, 0.5)
	oldM.cache.kw.Store(kwKey(ki), 0.5)
	oldM.cache.size.Store(maxInheritedEntries + 1)

	newM.InheritCache(oldM, nil)
	if _, ok := newM.cache.prior.Load(1); !ok {
		t.Fatal("priors must transfer even past the size cap")
	}
	if _, ok := newM.cache.kw.Load(kwKey(ki)); ok {
		t.Fatal("kw entries must not transfer past the size cap")
	}
}

// TestInheritCacheDisabled: no-ops cleanly when either side has no cache.
func TestInheritCacheDisabled(t *testing.T) {
	withCache := &Model{cache: newScoreCache()}
	without := &Model{}
	without.InheritCache(withCache, nil)
	withCache.InheritCache(without, nil)
	withCache.InheritCache(nil, nil)
}
