package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/schemagraph"
)

// SimConfig parameterises the synthetic scalability simulation of
// Section 3.8.5: a random connected schema graph, random query templates
// (connected sub-graphs), keywords occurring in each table with a fixed
// probability, and random probabilities assigned to each keyword
// occurrence.
type SimConfig struct {
	// Tables is the number of tables in the random schema (5–80 in
	// Table 3.2).
	Tables int
	// Keywords is the keyword-query length (2–10 in Table 3.3).
	Keywords int
	// KeywordTableProb is the probability that a keyword occurs in a
	// table (60% in the thesis's experiments).
	KeywordTableProb float64
	// Templates caps the number of query templates enumerated from the
	// random schema (templates are all join trees up to MaxTemplateSize,
	// so the catalogue grows with the schema as in Table 3.2; the cap is a
	// safety bound, default 50000).
	Templates int
	// MaxTemplateSize bounds template join-path length (4 in §3.8.1).
	MaxTemplateSize int
	// Threshold is the greedy algorithm's expansion threshold (10/20/30).
	Threshold int
	// StopAtRemaining is the construction stop criterion (default 5).
	StopAtRemaining int
	// Seed drives the deterministic PRNG.
	Seed int64
}

func (c *SimConfig) defaults() {
	if c.Tables <= 0 {
		c.Tables = 10
	}
	if c.Keywords <= 0 {
		c.Keywords = 3
	}
	if c.KeywordTableProb <= 0 {
		c.KeywordTableProb = 0.6
	}
	if c.Templates <= 0 {
		c.Templates = 50000
	}
	if c.MaxTemplateSize <= 0 {
		c.MaxTemplateSize = 4
	}
	if c.Threshold <= 0 {
		c.Threshold = 20
	}
	if c.StopAtRemaining <= 0 {
		c.StopAtRemaining = 5
	}
}

// SimResult reports one simulated construction run.
type SimResult struct {
	// Interpretations is the size of the keyword query's interpretation
	// space (binding combinations compatible with the templates), computed
	// analytically without materialisation.
	Interpretations int
	// Steps is the number of options the simulated user evaluated.
	Steps int
	// TimePerStep is the average computation time to generate one option.
	TimePerStep time.Duration
}

// randScorer assigns a random probability to every keyword occurrence and
// a uniform prior to templates — the probability model of the simulation.
type randScorer struct {
	probs map[string]float64
	cat   *query.Catalog
}

func (r *randScorer) KeywordProb(ki query.KeywordInterpretation) float64 {
	if p, ok := r.probs[ki.Key()]; ok {
		return p
	}
	return 1e-9
}

func (r *randScorer) Catalog() *query.Catalog { return r.cat }

func (r *randScorer) Rank(space []*query.Interpretation) []prob.Scored {
	out := make([]prob.Scored, len(space))
	total := 0.0
	tplPrior := 1.0
	if n := len(r.cat.Templates); n > 0 {
		tplPrior = 1 / float64(n)
	}
	for i, q := range space {
		s := tplPrior
		for _, b := range q.Bindings {
			s *= r.KeywordProb(b.KI)
		}
		out[i] = prob.Scored{Q: q, Score: s}
		total += s
	}
	if total > 0 {
		for i := range out {
			out[i].Prob = out[i].Score / total
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Q.Key() < out[j].Q.Key()
	})
	return out
}

// RunSimulation builds one random configuration per SimConfig, picks a
// random intended structured query, and simulates its construction,
// returning the statistics of Tables 3.2/3.3.
func RunSimulation(cfg SimConfig) (SimResult, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	tables, g := randomSchema(rng, cfg.Tables)
	cat := enumerateTemplates(g, cfg.MaxTemplateSize, cfg.Templates)

	// Keyword occurrences: keyword i occurs in table t with probability p.
	cands := &query.Candidates{Keywords: make([]string, cfg.Keywords)}
	cands.PerKeyword = make([][]query.KeywordInterpretation, cfg.Keywords)
	scorer := &randScorer{probs: make(map[string]float64), cat: cat}
	for i := 0; i < cfg.Keywords; i++ {
		kw := fmt.Sprintf("kw%d", i)
		cands.Keywords[i] = kw
		for _, t := range tables {
			if rng.Float64() >= cfg.KeywordTableProb {
				continue
			}
			ki := query.KeywordInterpretation{
				Pos: i, Keyword: kw, Kind: query.KindValue,
				Attr: invindex.AttrRef{Table: t, Column: "val"},
			}
			cands.PerKeyword[i] = append(cands.PerKeyword[i], ki)
			scorer.probs[ki.Key()] = rng.Float64() + 1e-6
		}
		if len(cands.PerKeyword[i]) == 0 {
			t := tables[rng.Intn(len(tables))]
			ki := query.KeywordInterpretation{
				Pos: i, Keyword: kw, Kind: query.KindValue,
				Attr: invindex.AttrRef{Table: t, Column: "val"},
			}
			cands.PerKeyword[i] = append(cands.PerKeyword[i], ki)
			scorer.probs[ki.Key()] = rng.Float64() + 1e-6
		}
	}

	res := SimResult{Interpretations: CountInterpretations(cands, cat)}

	intended, err := sampleIntended(rng, cands, cat)
	if err != nil {
		return res, err
	}
	sess, err := NewSession(scorer, cands, SessionConfig{
		Threshold:       cfg.Threshold,
		StopAtRemaining: cfg.StopAtRemaining,
	})
	if err != nil {
		return res, err
	}
	user := NewSimulatedUser(intended)
	run, err := RunConstruction(sess, user)
	if err != nil {
		return res, err
	}
	res.Steps = run.Steps
	if run.Steps > 0 {
		res.TimePerStep = run.OptionTime / time.Duration(run.Steps)
	}
	return res, nil
}

// randomSchema generates a connected random schema graph: a random
// spanning tree plus extra edges up to roughly twice tree density (the
// thesis's "completely connected" simulation graph is approximated by a
// dense connected graph; full cliques make template enumeration
// meaningless).
func randomSchema(rng *rand.Rand, n int) ([]string, *schemagraph.Graph) {
	tables := make([]string, n)
	for i := range tables {
		tables[i] = fmt.Sprintf("t%d", i)
	}
	var edges []schemagraph.Edge
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		edges = append(edges, schemagraph.Edge{
			From: tables[i], To: tables[j],
			FromColumn: fmt.Sprintf("ref_%d", j), ToColumn: "id",
		})
	}
	extra := n
	for e := 0; e < extra; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		edges = append(edges, schemagraph.Edge{
			From: tables[i], To: tables[j],
			FromColumn: fmt.Sprintf("xref_%d_%d", e, j), ToColumn: "id",
		})
	}
	return tables, schemagraph.New(tables, edges)
}

// enumerateTemplates enumerates all join trees of the schema graph up to
// maxSize as query templates, so the catalogue size grows with the schema
// exactly as the interpretation counts of Table 3.2 require. Self-joins
// are disabled in the simulation (each table occurs once per template).
func enumerateTemplates(g *schemagraph.Graph, maxSize, cap int) *query.Catalog {
	trees := g.EnumerateJoinTrees(schemagraph.EnumerateOptions{
		MaxNodes:       maxSize,
		MaxTrees:       cap,
		MaxOccurrences: 1,
	})
	cat := &query.Catalog{Templates: make([]*query.Template, len(trees))}
	for i, tr := range trees {
		cat.Templates[i] = query.NewTemplate(i, tr)
	}
	return cat
}

// CountInterpretations computes the size of the interpretation space
// analytically: for every template, the product over keywords of the
// number of compatible (interpretation, occurrence) pairs. This counts
// binding combinations before the minimality filter, which is how the
// space grows polynomially with tables and exponentially with keywords
// (Section 3.8.5); it saturates at maxInt/2.
func CountInterpretations(c *query.Candidates, cat *query.Catalog) int {
	const cap = int(^uint(0)>>1) / 2
	total := 0
	matched := c.MatchedPositions()
	for _, tpl := range cat.Templates {
		prod := 1
		for _, pos := range matched {
			n := 0
			for _, ki := range c.PerKeyword[pos] {
				n += len(tpl.Occurrences(ki.TargetTable()))
			}
			if n == 0 {
				prod = 0
				break
			}
			if prod > cap/n {
				prod = cap
				break
			}
			prod *= n
		}
		if total > cap-prod {
			return cap
		}
		total += prod
	}
	return total
}

// sampleIntended samples a random minimal complete interpretation from
// the space (template + per-keyword binding), retrying until minimality
// holds.
func sampleIntended(rng *rand.Rand, c *query.Candidates, cat *query.Catalog) (*query.Interpretation, error) {
	matched := c.MatchedPositions()
	for attempt := 0; attempt < 2000; attempt++ {
		tpl := cat.Templates[rng.Intn(len(cat.Templates))]
		bindings := make([]query.Binding, 0, len(matched))
		ok := true
		for _, pos := range matched {
			var choices []query.Binding
			for _, ki := range c.PerKeyword[pos] {
				for _, occ := range tpl.Occurrences(ki.TargetTable()) {
					choices = append(choices, query.Binding{KI: ki, Occ: occ})
				}
			}
			if len(choices) == 0 {
				ok = false
				break
			}
			bindings = append(bindings, choices[rng.Intn(len(choices))])
		}
		if !ok {
			continue
		}
		q := query.NewInterpretation(c.Keywords, tpl, bindings)
		if interpMinimal(q) {
			return q, nil
		}
	}
	return nil, fmt.Errorf("core: could not sample a minimal intended interpretation")
}
