package loadgen

import (
	"context"
	"time"
)

// SaturationOptions configures a saturation search.
type SaturationOptions struct {
	// Base is the run configuration each step starts from (Workers and
	// RateRPS are overridden per step; closed-loop is always used).
	Base Options
	// StartWorkers is the first step's concurrency (default 1).
	StartWorkers int
	// MaxWorkers bounds the ramp (default 128).
	MaxWorkers int
	// StepDuration is how long each concurrency step runs (default the
	// Base duration, or 3s).
	StepDuration time.Duration
	// MinGain is the relative goodput improvement a doubling must
	// deliver to keep ramping (default 0.10, i.e. 10%).
	MinGain float64
}

// SaturationResult reports the discovered saturation point: the highest
// goodput observed across the concurrency ramp, the concurrency that
// achieved it, and every step for the full throughput/latency curve.
type SaturationResult struct {
	SaturationRPS float64   `json:"saturation_rps"`
	AtWorkers     int       `json:"at_workers"`
	Steps         []*Result `json:"steps"`
}

// FindSaturation discovers the server's saturation throughput by
// doubling closed-loop concurrency until goodput stops improving by at
// least MinGain (or MaxWorkers is reached). The returned curve is the
// classic throughput-vs-concurrency ramp: linear at first, flattening
// at saturation — and, on a server with admission control, *staying*
// flat past it instead of collapsing.
func FindSaturation(ctx context.Context, opts SaturationOptions) (*SaturationResult, error) {
	if opts.StartWorkers <= 0 {
		opts.StartWorkers = 1
	}
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = 128
	}
	if opts.StepDuration <= 0 {
		if opts.Base.Duration > 0 {
			opts.StepDuration = opts.Base.Duration
		} else {
			opts.StepDuration = 3 * time.Second
		}
	}
	if opts.MinGain <= 0 {
		opts.MinGain = 0.10
	}

	out := &SaturationResult{}
	best := 0.0
	for w := opts.StartWorkers; w <= opts.MaxWorkers; w *= 2 {
		stepOpts := opts.Base
		stepOpts.Workers = w
		stepOpts.RateRPS = 0 // saturation search is closed-loop
		stepOpts.Duration = opts.StepDuration
		res, err := Run(ctx, stepOpts)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, res)
		if res.GoodputRPS > best {
			if best > 0 && res.GoodputRPS < best*(1+opts.MinGain) {
				// Improved, but below the gain bar: the curve has
				// flattened — record and stop.
				best = res.GoodputRPS
				out.SaturationRPS = best
				out.AtWorkers = w
				break
			}
			best = res.GoodputRPS
			out.SaturationRPS = best
			out.AtWorkers = w
		} else {
			break // goodput fell: past the knee
		}
		if ctx.Err() != nil {
			break
		}
	}
	return out, nil
}
