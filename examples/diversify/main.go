// Diversify: DivQ result diversification over the bundled synthetic
// lyrics database (Chapter 4).
//
// For an ambiguous keyword query, the plain relevance ranking often puts
// near-duplicate interpretations at the top (same keyword reading, small
// structural variations, overlapping results). DivQ re-ranks the
// interpretations to balance relevance against novelty, so the top-k give
// the user an overview of the genuinely different readings.
//
//	go run ./examples/diversify
package main

import (
	"context"
	"fmt"
	"log"

	keysearch "repro"
)

func main() {
	eng, err := keysearch.DemoMusic(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music database: %d tables, %d rows\n\n", eng.NumTables(), eng.NumRows())

	ctx := context.Background()
	queries := eng.SampleQueries(20)
	if len(queries) == 0 {
		log.Fatal("no ambiguous sample queries found")
	}
	// Pick the keyword pair with the most interpretations: two-keyword
	// queries have structurally overlapping readings, which is where
	// diversification shows.
	best, bestN := "", 0
	for i := 0; i < len(queries); i++ {
		for j := i + 1; j < len(queries) && j < i+8; j++ {
			cand := queries[i] + " " + queries[j]
			// K=1: only SpaceSize is needed, so don't wrap the full space.
			rs, err := eng.Search(ctx, keysearch.SearchRequest{Query: cand, K: 1})
			if err != nil {
				continue
			}
			if rs.SpaceSize > bestN {
				best, bestN = cand, rs.SpaceSize
			}
		}
	}
	fmt.Printf("keyword query: %q (%d interpretations)\n", best, bestN)

	const k = 4
	ranked, err := eng.Search(ctx, keysearch.SearchRequest{Query: best, K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-%d by relevance only:\n", k)
	for i, r := range ranked.Results {
		fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
	}

	// Note: DivQ first drops interpretations with empty results (they
	// cannot contribute novelty), so the diversified lists may exclude
	// high-probability readings that return nothing on this data.
	for _, lambda := range []float64{0.5, 0.1} {
		div, err := eng.Diversify(ctx, keysearch.DiversifyRequest{Query: best, K: k, Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-%d diversified (λ=%.1f — %s):\n", k, lambda,
			map[float64]string{0.5: "balanced", 0.1: "novelty-heavy"}[lambda])
		for i, r := range div.Results {
			fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
		}
	}
}
