// Moviesearch: incremental query construction over the bundled synthetic
// movie database (the IQP workflow of Chapter 3).
//
// A keyword query is ambiguous across actors, directors, titles and
// roles. The construction session asks yes/no questions; this example
// scripts a user whose intent is "the keyword is an actor's name" and
// shows how few questions isolate the intended structured query.
//
//	go run ./examples/moviesearch
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	keysearch "repro"
)

func main() {
	eng, err := keysearch.DemoMovies(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movie database: %d tables, %d rows, %d query templates\n\n",
		eng.NumTables(), eng.NumRows(), eng.NumTemplates())

	ctx := context.Background()
	// Pick the most ambiguous keyword pair from the data itself: a person
	// token plus a title word makes the query genuinely multi-reading.
	queries := eng.SampleQueries(40)
	if len(queries) < 2 {
		log.Fatal("no ambiguous sample queries found")
	}
	q, bestN := "", 0
	for i := 0; i < len(queries); i++ {
		for j := i + 1; j < len(queries) && j < i+6; j++ {
			cand := queries[i] + " " + queries[j]
			// K=1: only SpaceSize is needed, so don't wrap the full space.
			rs, err := eng.Search(ctx, keysearch.SearchRequest{Query: cand, K: 1})
			if err != nil {
				continue
			}
			if rs.SpaceSize > bestN {
				q, bestN = cand, rs.SpaceSize
			}
		}
	}
	if q == "" {
		q = queries[0]
	}
	fmt.Printf("keyword query: %q (%d interpretations)\n", q, bestN)

	ranked, err := eng.Search(ctx, keysearch.SearchRequest{Query: q, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop ranked interpretations before construction:")
	for i, r := range ranked.Results {
		fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
	}

	// Interactive construction: our scripted user wants the actor-name
	// reading and answers accordingly.
	sess, err := eng.Construct(ctx, keysearch.ConstructRequest{Query: q, StopAtRemaining: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconstruction session (user intends: actor name):")
	for !sess.Done() {
		question, ok := sess.Next()
		if !ok {
			break
		}
		accept := strings.Contains(question.Text, "actor.name")
		answer := "no"
		if accept {
			answer = "yes"
		}
		fmt.Printf("  Q%d: %s -> %s\n", sess.Steps()+1, question.Text, answer)
		if accept {
			err = sess.Accept(ctx, question)
		} else {
			err = sess.Reject(ctx, question)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\nafter %d questions, remaining candidate queries:\n", sess.Steps())
	for i, r := range sess.Candidates() {
		fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
		rows, err := r.Rows(3)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range rows {
			if name, ok := row["actor.name"]; ok {
				fmt.Printf("       actor: %s\n", name)
			}
		}
	}
}
