// Command bench runs the repo's benchmark grids, writes the measurements
// to JSON files so the perf trajectory is tracked from PR to PR by CI,
// and can gate a build on perf regressions against committed baselines:
//
//   - the interpretation-pipeline grid (keyword count × parallelism, plus
//     score-cache ablations) → BENCH_pipeline.json,
//   - the executor legs (scan reference vs compiled posting-list
//     execution, with and without the per-request selection cache, plus
//     the allocation-free count probe) → BENCH_executor.json, and
//   - the mutation legs (full rebuild vs incremental Engine.Apply vs
//     apply+search) → BENCH_mutations.json, and
//   - the durability legs (fresh build vs open-from-snapshot vs WAL
//     replay, plus checkpoint latency) → BENCH_durability.json, and
//   - the serving-path load legs (closed-loop saturation ramp over real
//     HTTP, an open-loop coordinated-omission-honest steady-state leg,
//     and an 8×-oversubscribed run against an admission-gated server)
//     → BENCH_load.json, and
//   - the adaptive-admission legs (static gate hand-placed at the
//     measured knee vs the AIMD governor discovering it vs no gate at
//     all, each 8×-oversubscribed) → BENCH_admission.json, and
//   - the answer-cache legs (a Zipf-skewed repeated-query stream over
//     real HTTP, cache-off vs the engine-lifetime qcache)
//     → BENCH_qcache.json, and
//   - the sharding legs (single-process serving vs the N-shard
//     scatter-gather coordinator over identical data and ops)
//     → BENCH_shard.json.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_pipeline.json] [-exec-out BENCH_executor.json]
//	                   [-mut-out BENCH_mutations.json] [-dur-out BENCH_durability.json]
//	                   [-load-out BENCH_load.json] [-adm-out BENCH_admission.json]
//	                   [-qc-out BENCH_qcache.json] [-shard-out BENCH_shard.json]
//	                   [-load-rows 1000000] [-shards 4]
//	                   [-only all|pipeline|executor|mutate|durable|load|admission|qcache|shard[,...]] [-quick]
//	                   [-compare base1.json[,base2.json...]] [-threshold 0.25]
//
// The load, admission, qcache, and shard grids are NOT part of -only
// all: each generates a million-row dataset and runs for minutes, so
// they are requested explicitly (-only load, -only shard, or -only
// all,load,admission,qcache,shard). -quick shrinks them to CI size.
//
// The output records ns/op, allocations, and speedups against each grid's
// baseline (sequential for the pipeline, scan for the executor, full
// rebuild for mutations, fresh build for durability), alongside the
// host shape (CPU count, GOMAXPROCS) needed to interpret absolute
// numbers.
//
// # Regression guard
//
// With -compare, bench loads each given baseline file (typically the
// committed BENCH_*.json), re-measures the corresponding grid, and exits
// non-zero when a tracked benchmark's *speedup* column regresses by more
// than -threshold (default 0.25, i.e. 25%). Speedups are ratios measured
// within one run on one machine — scan-vs-postings, rebuild-vs-apply —
// so they transfer across hosts, unlike raw ns/op; this is what makes
// the guard usable on shared CI runners. The baseline kind is detected
// from the file's contents.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchadm"
	"repro/internal/benchdur"
	"repro/internal/benchexec"
	"repro/internal/benchload"
	"repro/internal/benchmut"
	"repro/internal/benchpipe"
	"repro/internal/benchqc"
	"repro/internal/benchshard"
)

// pipelineReport is the top-level shape of BENCH_pipeline.json.
type pipelineReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	NumCPU      int             `json:"num_cpu"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Dataset     string          `json:"dataset"`
	Rows        []benchpipe.Row `json:"rows"`
}

// executorReport is the top-level shape of BENCH_executor.json.
type executorReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchexec.Report
}

// mutationReport is the top-level shape of BENCH_mutations.json.
type mutationReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchmut.Report
}

// durabilityReport is the top-level shape of BENCH_durability.json.
type durabilityReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchdur.Report
}

// loadReport is the top-level shape of BENCH_load.json.
type loadReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchload.Report
}

// admissionReport is the top-level shape of BENCH_admission.json.
type admissionReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchadm.Report
}

// qcacheReport is the top-level shape of BENCH_qcache.json.
type qcacheReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchqc.Report
}

// shardReport is the top-level shape of BENCH_shard.json.
type shardReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchshard.Report
}

// speedups extracts the machine-transferable metric of one report as
// name → speedup-vs-grid-baseline (rows without a speedup are skipped;
// so is each grid's baseline row itself, whose speedup is 1 by
// definition).
type speedups map[string]float64

func pipelineSpeedups(rows []benchpipe.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.SpeedupVsSequential > 0 && r.SpeedupVsSequential != 1 {
			out[r.Name] = r.SpeedupVsSequential
		}
	}
	return out
}

func executorSpeedups(rows []benchexec.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.SpeedupVsScan > 0 && r.Name != string(benchexec.ModeScan) {
			out[r.Name] = r.SpeedupVsScan
		}
	}
	return out
}

func mutationSpeedups(rows []benchmut.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.SpeedupVsRebuild > 0 && r.Name != string(benchmut.ModeRebuild) {
			out[r.Name] = r.SpeedupVsRebuild
		}
	}
	return out
}

func durabilitySpeedups(rows []benchdur.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.SpeedupVsBuild > 0 && r.Name != string(benchdur.ModeBuild) {
			out[r.Name] = r.SpeedupVsBuild
		}
	}
	return out
}

func loadSpeedups(rows []benchload.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.GoodputVsSaturation > 0 {
			out[r.Name] = r.GoodputVsSaturation
		}
	}
	return out
}

func admissionSpeedups(rows []benchadm.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.GoodputVsStaticKnee > 0 {
			out[r.Name] = r.GoodputVsStaticKnee
		}
	}
	return out
}

func qcacheSpeedups(rows []benchqc.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.SpeedupVsCold > 0 {
			out[r.Name] = r.SpeedupVsCold
		}
	}
	return out
}

func shardSpeedups(rows []benchshard.Row) speedups {
	out := make(speedups)
	for _, r := range rows {
		if r.SpeedupVs1Shard > 0 {
			out[r.Name] = r.SpeedupVs1Shard
		}
	}
	return out
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "pipeline grid output file")
	execOut := flag.String("exec-out", "BENCH_executor.json", "executor legs output file")
	mutOut := flag.String("mut-out", "BENCH_mutations.json", "mutation legs output file")
	durOut := flag.String("dur-out", "BENCH_durability.json", "durability legs output file")
	loadOut := flag.String("load-out", "BENCH_load.json", "serving-path load legs output file")
	admOut := flag.String("adm-out", "BENCH_admission.json", "adaptive-admission legs output file")
	qcOut := flag.String("qc-out", "BENCH_qcache.json", "answer-cache legs output file")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "sharding legs output file")
	loadRows := flag.Int("load-rows", 0, "load/admission/qcache/shard grid dataset size in rows (default 1000000, or 25000 with -quick)")
	shards := flag.Int("shards", 0, "shard grid: sharded-leg shard count (default 4)")
	only := flag.String("only", "all", "comma-separated grids to run: all, pipeline, executor, mutate, durable, load, admission, qcache, shard (load, admission, qcache, and shard are not in all)")
	quick := flag.Bool("quick", false, "run the trimmed quick pipeline grid")
	compare := flag.String("compare", "", "comma-separated baseline BENCH_*.json files to guard against (see Regression guard)")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated relative speedup regression vs the baseline")
	flag.Parse()

	want := map[string]bool{}
	for _, part := range strings.Split(*only, ",") {
		switch part = strings.TrimSpace(part); part {
		case "all":
			want["pipeline"], want["executor"], want["mutate"], want["durable"] = true, true, true, true
		case "pipeline", "executor", "mutate", "durable", "load", "admission", "qcache", "shard":
			want[part] = true
		case "":
		default:
			log.Fatalf("unknown -only value %q (want all, pipeline, executor, mutate, durable, load, admission, qcache, or shard)", part)
		}
	}
	if len(want) == 0 {
		log.Fatal("-only selected no grids")
	}

	// Baselines are loaded before measuring, so a bad path fails fast,
	// and the grids they need are forced on.
	type baseline struct {
		path string
		kind string
		sp   speedups
	}
	var baselines []baseline
	if *compare != "" {
		for _, path := range strings.Split(*compare, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			kind, sp, err := loadBaseline(path)
			if err != nil {
				log.Fatal(err)
			}
			baselines = append(baselines, baseline{path: path, kind: kind, sp: sp})
			want[kind] = true
			log.Printf("regression baseline %s (%s): %d tracked speedups", path, kind, len(sp))
		}
	}

	fresh := map[string]speedups{}

	if want["pipeline"] {
		cases := benchpipe.Cases(*quick)
		log.Printf("running %d pipeline benchmark cases (quick=%v)...", len(cases), *quick)
		rows, err := benchpipe.Measure(cases)
		if err != nil {
			log.Fatal(err)
		}
		rep := pipelineReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Dataset:     "demo-movies scaled 2.5x",
			Rows:        rows,
		}
		writeJSON(*out, rep)
		for _, r := range rows {
			log.Printf("%-22s %12d ns/op  speedup %.2fx", r.Name, r.NsPerOp, r.SpeedupVsSequential)
		}
		log.Printf("wrote %s", *out)
		fresh["pipeline"] = pipelineSpeedups(rows)
	}

	if want["executor"] {
		log.Printf("running executor benchmark legs...")
		rep, err := benchexec.Measure()
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*execOut, executorReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			log.Printf("%-16s %12d ns/op  %8d allocs/op  speedup %.2fx vs scan",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsScan)
		}
		log.Printf("wrote %s", *execOut)
		fresh["executor"] = executorSpeedups(rep.Rows)
	}

	if want["mutate"] {
		log.Printf("running mutation benchmark legs...")
		rep, err := benchmut.Measure()
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*mutOut, mutationReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			log.Printf("%-16s %12d ns/op  %8d allocs/op  speedup %.2fx vs rebuild",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsRebuild)
		}
		log.Printf("wrote %s", *mutOut)
		fresh["mutate"] = mutationSpeedups(rep.Rows)
	}

	if want["durable"] {
		log.Printf("running durability benchmark legs...")
		rep, err := benchdur.Measure()
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*durOut, durabilityReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			log.Printf("%-16s %12d ns/op  %8d allocs/op  speedup %.2fx vs build",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsBuild)
		}
		log.Printf("wrote %s", *durOut)
		fresh["durable"] = durabilitySpeedups(rep.Rows)
	}

	if want["load"] {
		log.Printf("running serving-path load legs (quick=%v)...", *quick)
		rep, err := benchload.Measure(benchload.Config{
			Quick:      *quick,
			TargetRows: *loadRows,
		}, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*loadOut, loadReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			extra := ""
			if r.GoodputVsSaturation > 0 {
				extra = fmt.Sprintf("  goodput/saturation %.2f", r.GoodputVsSaturation)
			}
			log.Printf("%-16s %8.0f good/s  p50 %7.1fms  p99 %8.1fms%s", r.Name, r.GoodputRPS, r.P50MS, r.P99MS, extra)
		}
		log.Printf("wrote %s", *loadOut)
		fresh["load"] = loadSpeedups(rep.Rows)
	}

	if want["admission"] {
		log.Printf("running adaptive-admission legs (quick=%v)...", *quick)
		rep, err := benchadm.Measure(benchadm.Config{
			Quick:      *quick,
			TargetRows: *loadRows,
		}, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*admOut, admissionReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			extra := ""
			if r.GoodputVsStaticKnee > 0 {
				extra = fmt.Sprintf("  goodput/static-knee %.2f", r.GoodputVsStaticKnee)
			}
			log.Printf("%-16s %8.0f good/s  p50 %7.1fms  p99 %8.1fms%s", r.Name, r.GoodputRPS, r.P50MS, r.P99MS, extra)
		}
		log.Printf("wrote %s", *admOut)
		fresh["admission"] = admissionSpeedups(rep.Rows)
	}

	if want["qcache"] {
		log.Printf("running answer-cache legs (quick=%v)...", *quick)
		rep, err := benchqc.Measure(benchqc.Config{
			Quick:      *quick,
			TargetRows: *loadRows,
		}, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*qcOut, qcacheReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			extra := ""
			if r.SpeedupVsCold > 0 {
				extra = fmt.Sprintf("  speedup %.2fx  hit rate %.1f%%  high water %d B",
					r.SpeedupVsCold, 100*r.HitRate, r.HighWaterBytes)
			}
			log.Printf("%-16s %8.0f req/s  p50 %7.1fms  p99 %8.1fms%s", r.Name, r.ThroughputRPS, r.P50MS, r.P99MS, extra)
		}
		log.Printf("wrote %s", *qcOut)
		fresh["qcache"] = qcacheSpeedups(rep.Rows)
	}

	if want["shard"] {
		log.Printf("running sharding legs (quick=%v)...", *quick)
		rep, err := benchshard.Measure(benchshard.Config{
			Quick:      *quick,
			TargetRows: *loadRows,
			Shards:     *shards,
		}, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*shardOut, shardReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			extra := ""
			if r.SpeedupVs1Shard > 0 {
				extra = fmt.Sprintf("  speedup %.2fx vs 1 shard  scatters %d", r.SpeedupVs1Shard, r.Scatters)
			}
			log.Printf("%-16s %8.0f req/s  p50 %7.1fms  p99 %8.1fms%s", r.Name, r.ThroughputRPS, r.P50MS, r.P99MS, extra)
		}
		log.Printf("wrote %s", *shardOut)
		fresh["shard"] = shardSpeedups(rep.Rows)
	}

	// Regression guard: every baseline row's speedup must be within
	// threshold of the fresh measurement.
	failed := false
	for _, b := range baselines {
		cur, ok := fresh[b.kind]
		if !ok {
			log.Fatalf("baseline %s needs the %s grid, which did not run", b.path, b.kind)
		}
		for name, base := range b.sp {
			got, ok := cur[name]
			if !ok {
				log.Printf("REGRESSION %s: benchmark %q tracked by %s was not measured", b.kind, name, b.path)
				failed = true
				continue
			}
			if got < base*(1-*threshold) {
				log.Printf("REGRESSION %s: %q speedup %.2fx fell more than %.0f%% below baseline %.2fx",
					b.kind, name, got, *threshold*100, base)
				failed = true
			} else {
				log.Printf("guard ok   %s: %q speedup %.2fx vs baseline %.2fx", b.kind, name, got, base)
			}
		}
	}
	if failed {
		log.Fatal("benchmark regression guard failed")
	}
}

// loadBaseline parses a committed BENCH_*.json and detects which grid it
// describes from its row shape.
func loadBaseline(path string) (string, speedups, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	var probe struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(probe.Rows) == 0 {
		return "", nil, fmt.Errorf("baseline %s: no rows", path)
	}
	has := func(key string) bool {
		for _, row := range probe.Rows {
			if _, ok := row[key]; ok {
				return true
			}
		}
		return false
	}
	switch {
	// goodput_vs_static_knee must be probed before goodput_vs_saturation:
	// both are loadgen-derived reports and a future shape could carry
	// both columns, in which case the more specific admission guard wins.
	case has("goodput_vs_static_knee"):
		var rep admissionReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "admission", admissionSpeedups(rep.Rows), nil
	case has("speedup_vs_cold"):
		var rep qcacheReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "qcache", qcacheSpeedups(rep.Rows), nil
	case has("speedup_vs_1shard"):
		var rep shardReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "shard", shardSpeedups(rep.Rows), nil
	case has("goodput_vs_saturation"):
		var rep loadReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "load", loadSpeedups(rep.Rows), nil
	case has("speedup_vs_build"):
		var rep durabilityReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "durable", durabilitySpeedups(rep.Rows), nil
	case has("speedup_vs_rebuild"):
		var rep mutationReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "mutate", mutationSpeedups(rep.Rows), nil
	case has("speedup_vs_scan"):
		var rep executorReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "executor", executorSpeedups(rep.Rows), nil
	case has("speedup_vs_sequential"):
		var rep pipelineReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		return "pipeline", pipelineSpeedups(rep.Rows), nil
	}
	return "", nil, fmt.Errorf("baseline %s: unrecognised report shape", path)
}

// writeJSON marshals the report with a trailing newline.
func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		log.Fatal(err)
	}
}
